// Consolidated engine observability: the one Metrics() snapshot that
// supersedes the scattered accessor surface (Rebuilds, BackgroundRebuilds,
// QueuedRebuilds, SnapshotStats — all now thin wrappers over it), and the
// Prometheus text exporter behind the /metrics debug endpoint.
//
// Shard invariance: like query answers, every field of EngineMetrics is
// invariant under EngineConfig.Shards — sharding is a lock-contention
// layout, not an observable behavior. Each field's comment states the
// stronger per-field guarantee where one exists.
package fastliveness

import (
	"io"

	"fastliveness/internal/telemetry"
)

// Tracer is the engine's lifecycle hook interface; see
// telemetry.Tracer for the callback contract (fast, non-blocking, no
// calls back into the engine). Set one via EngineConfig.Tracer; embed
// NopTracer to implement a subset.
type Tracer = telemetry.Tracer

// NopTracer ignores every trace event; it is the default when
// EngineConfig.Tracer is nil and the embedding base for partial tracers.
type NopTracer = telemetry.NopTracer

// HistogramSnapshot is a point-in-time latency distribution with
// P50/P90/P99/P999, Count/Sum and element-wise Merge; see
// telemetry.HistogramSnapshot.
type HistogramSnapshot = telemetry.HistogramSnapshot

// engineMetrics is the engine's atomic instrument block. Everything here
// is written with lock-free atomic operations from the hot paths and read
// by Metrics()/WriteMetrics; none of it takes a shard or pool lock.
type engineMetrics struct {
	// builds counts runBuild executions: first builds, eviction refills,
	// staleness rebuilds, background rebuilds — every analysis execution,
	// successful or not (snapshot hits count too; Snapshot.Computes is the
	// full-precompute subset).
	builds telemetry.Counter
	// buildNs observes each build's wall-clock nanoseconds.
	buildNs telemetry.Histogram
	// queries counts individual liveness questions answered: one per entry
	// of every batch, one per Oracle query.
	queries telemetry.Counter
	// batches counts batched query executions.
	batches telemetry.Counter
	// batchNs observes each batch execution's wall-clock nanoseconds
	// (query execution only, not the analysis fetch).
	batchNs telemetry.Histogram
	// quarantined gauges how many functions are currently quarantined
	// (a panicking build recorded, not yet cleared by retry or edit).
	quarantined telemetry.Gauge
	// Rebuild-pool accounting (all zero without a pool).
	rebuildEnqueues telemetry.Counter
	rebuildDiscards telemetry.Counter
	queueDepth      telemetry.Gauge
	// Snapshot-tier latency (the hit/miss/store counts live in
	// snapshotCounters, surfaced as SnapshotStats).
	snapLoadNs telemetry.Histogram
	snapSaveNs telemetry.Histogram
	// Warm-start prefetch accounting (all zero without a rebuild pool and
	// a snapshot tier): loads by outcome, plus prefetches dropped without
	// publishing — dequeued to find the handle busy or resident,
	// superseded mid-load, or still pending at Close.
	prefetchHits     telemetry.Counter
	prefetchMisses   telemetry.Counter
	prefetchSkips    telemetry.Counter
	prefetchDiscards telemetry.Counter
}

// EngineMetrics is one consistent-enough snapshot of everything the
// engine counts: the consolidated form of the old accessor pile, the
// struct behind livecheck -stats, and the data the /metrics endpoint
// renders. Counters are read atomically; fields sourced from different
// instruments may be skewed by in-flight operations (this is a health
// summary, not a transaction log). Every field is invariant under the
// shard count.
type EngineMetrics struct {
	// Funcs is the number of registered functions; Resident of them have
	// a cached analysis right now. Exact at the moment of the snapshot.
	Funcs    int
	Resident int
	// Shards is the effective shard count — configuration echo, the one
	// field that names the sharding without being affected by it.
	Shards int

	// Builds counts analysis executions engine-wide (every build path;
	// see BuildNs for their latency). Queries counts individual liveness
	// questions answered (batch entries + Oracle queries); Batches counts
	// batched executions.
	Builds  int64
	Queries int64
	Batches int64

	// Rebuilds counts staleness-forced re-analyses paid on the query path
	// (the paper's asymmetry, see Engine.Rebuilds). BackgroundRebuilds
	// counts the ones the pool absorbed instead. QueuedRebuilds is the
	// pool queue's current depth; RebuildEnqueues/RebuildDiscards count
	// entries ever queued and entries thrown away (evicted while queued,
	// superseded mid-build, edited mid-build, dropped at Close).
	Rebuilds           int
	BackgroundRebuilds int
	QueuedRebuilds     int
	RebuildEnqueues    int64
	RebuildDiscards    int64

	// Quarantined is how many functions are currently failing fast after
	// a panicking build (ErrQuarantined) and have not yet recovered.
	Quarantined int

	// Warm-start prefetch pipeline traffic (Engine.Prefetch): snapshot
	// loads that hit (published ahead of demand unless superseded), loads
	// that missed (left for the on-demand build, which skips the duplicate
	// store probe), loads skipped on an open breaker, and prefetches
	// discarded without publishing. All zero without a rebuild pool and a
	// snapshot tier.
	PrefetchHits         int64
	PrefetchMisses       int64
	PrefetchBreakerSkips int64
	PrefetchDiscards     int64

	// Snapshot is the disk tier's traffic (hits, misses, stores, computes,
	// bytes, breaker skips) — SnapshotStats verbatim. BreakerState and
	// BreakerTransitions describe the store's circuit breaker; both are
	// per-store, so engines sharing one SnapshotStore see shared values.
	// SnapshotGCRuns/SnapshotGCNs count the store directory's byte-budget
	// GC passes and their cumulative nanoseconds.
	Snapshot           SnapshotStats
	BreakerState       string
	BreakerTransitions int64
	SnapshotGCRuns     int
	SnapshotGCNs       int64

	// Latency distributions, in nanoseconds: analysis builds, batched
	// query executions, and snapshot-tier loads and saves. Mergeable
	// across engines with HistogramSnapshot.Merge.
	BuildNs        HistogramSnapshot
	BatchNs        HistogramSnapshot
	SnapshotLoadNs HistogramSnapshot
	SnapshotSaveNs HistogramSnapshot
}

// Metrics returns a snapshot of every engine counter, gauge and latency
// histogram. It is the consolidated successor of Rebuilds,
// BackgroundRebuilds, QueuedRebuilds and SnapshotStats (all of which now
// delegate here) plus the instruments this layer added. Safe to call
// concurrently with queries, edits and rebuilds; cost is a shard-mutex
// sweep for the rebuild counters plus four histogram copies.
func (e *Engine) Metrics() EngineMetrics {
	m := EngineMetrics{
		Resident: int(e.resident.Load()),
		Shards:   len(e.shards),

		Builds:  e.met.builds.Load(),
		Queries: e.met.queries.Load(),
		Batches: e.met.batches.Load(),

		QueuedRebuilds:  int(e.met.queueDepth.Load()),
		RebuildEnqueues: e.met.rebuildEnqueues.Load(),
		RebuildDiscards: e.met.rebuildDiscards.Load(),
		Quarantined:     int(e.met.quarantined.Load()),

		PrefetchHits:         e.met.prefetchHits.Load(),
		PrefetchMisses:       e.met.prefetchMisses.Load(),
		PrefetchBreakerSkips: e.met.prefetchSkips.Load(),
		PrefetchDiscards:     e.met.prefetchDiscards.Load(),

		Snapshot: e.SnapshotStats(),

		BuildNs:        e.met.buildNs.Snapshot(),
		BatchNs:        e.met.batchNs.Snapshot(),
		SnapshotLoadNs: e.met.snapLoadNs.Snapshot(),
		SnapshotSaveNs: e.met.snapSaveNs.Snapshot(),
	}
	e.regMu.Lock()
	m.Funcs = len(e.funcs)
	e.regMu.Unlock()
	m.Rebuilds = e.Rebuilds()
	m.BackgroundRebuilds = e.BackgroundRebuilds()
	if ss := e.config.SnapshotStore; ss != nil {
		m.BreakerState = ss.BreakerState()
		m.BreakerTransitions = ss.BreakerTransitions()
		m.SnapshotGCRuns, m.SnapshotGCNs = ss.store.GCStats()
	}
	return m
}

// breakerStateValue maps the breaker state string to the numeric gauge
// /metrics exports (closed 0, open 1, half-open 2; -1 when there is no
// snapshot store).
func breakerStateValue(state string) int64 {
	switch state {
	case "closed":
		return 0
	case "open":
		return 1
	case "half-open":
		return 2
	}
	return -1
}

// WriteMetrics writes the engine's metrics in Prometheus text exposition
// format (the payload of the /metrics debug endpoint). Output passes
// telemetry.CheckExposition; series names are stable API once scraped, so
// additions are fine and renames are not.
func (e *Engine) WriteMetrics(w io.Writer) {
	m := e.Metrics()
	WriteEngineMetrics(w, m)
}

// WriteEngineMetrics renders an already-taken metrics snapshot — split
// from WriteMetrics so end-of-run reporters can snapshot once and both
// print and export.
func WriteEngineMetrics(w io.Writer, m EngineMetrics) {
	g := func(name, help string, v int64) { telemetry.WriteGauge(w, "fastliveness_engine_"+name, help, v) }
	c := func(name, help string, v int64) { telemetry.WriteCounter(w, "fastliveness_engine_"+name, help, v) }
	h := func(name, help string, s HistogramSnapshot) {
		telemetry.WriteHistogram(w, "fastliveness_engine_"+name, help, s)
	}
	g("funcs", "registered functions", int64(m.Funcs))
	g("resident", "functions with a cached analysis", int64(m.Resident))
	g("shards", "index shard count", int64(m.Shards))
	c("builds_total", "analysis builds executed", m.Builds)
	c("queries_total", "individual liveness queries answered", m.Queries)
	c("batches_total", "batched query executions", m.Batches)
	c("query_rebuilds_total", "staleness rebuilds paid on the query path", int64(m.Rebuilds))
	c("background_rebuilds_total", "staleness rebuilds absorbed by the pool", int64(m.BackgroundRebuilds))
	g("rebuild_queue_depth", "functions queued for background rebuild", int64(m.QueuedRebuilds))
	c("rebuild_enqueues_total", "functions ever queued for background rebuild", m.RebuildEnqueues)
	c("rebuild_discards_total", "queued or in-flight background rebuilds thrown away", m.RebuildDiscards)
	g("quarantined", "functions currently quarantined after a panicking build", int64(m.Quarantined))
	c("snapshot_hits_total", "builds served by a validated snapshot load", m.Snapshot.Hits)
	c("snapshot_misses_total", "builds that fell through to a full precompute", m.Snapshot.Misses)
	c("snapshot_stores_total", "snapshots written back to disk", m.Snapshot.Stores)
	c("computes_total", "full precomputes executed", m.Snapshot.Computes)
	c("snapshot_loaded_bytes_total", "snapshot bytes read on hits", m.Snapshot.LoadedBytes)
	c("snapshot_stored_bytes_total", "snapshot bytes written on stores", m.Snapshot.StoredBytes)
	c("snapshot_breaker_skips_total", "builds that skipped an open snapshot breaker", m.Snapshot.BreakerSkips)
	c("snapshot_decoded_cache_hits_total", "store loads absorbed by the in-process decoded cache", m.Snapshot.DecodedCacheHits)
	c("snapshot_decoded_cache_misses_total", "store loads that touched a snapshot file", m.Snapshot.DecodedCacheMisses)
	c("snapshot_section_scans_total", "per-section checksum scans run", m.Snapshot.SectionScans)
	c("snapshot_section_skips_total", "per-section checksum scans avoided", m.Snapshot.SectionSkips)
	c("prefetch_hits_total", "warm-start prefetch loads served by a validated snapshot", m.PrefetchHits)
	c("prefetch_misses_total", "warm-start prefetch loads left for the on-demand build", m.PrefetchMisses)
	c("prefetch_breaker_skips_total", "warm-start prefetch loads skipped on an open breaker", m.PrefetchBreakerSkips)
	c("prefetch_discards_total", "warm-start prefetches discarded without publishing", m.PrefetchDiscards)
	g("snapshot_breaker_state", "snapshot breaker state (0 closed, 1 open, 2 half-open, -1 none)", breakerStateValue(m.BreakerState))
	c("snapshot_breaker_transitions_total", "snapshot breaker state changes", m.BreakerTransitions)
	c("snapshot_gc_runs_total", "snapshot directory byte-budget GC passes", int64(m.SnapshotGCRuns))
	c("snapshot_gc_ns_total", "cumulative snapshot GC nanoseconds", m.SnapshotGCNs)
	h("build_ns", "analysis build latency in nanoseconds", m.BuildNs)
	h("batch_ns", "batched query execution latency in nanoseconds", m.BatchNs)
	h("snapshot_load_ns", "snapshot load latency in nanoseconds", m.SnapshotLoadNs)
	h("snapshot_save_ns", "snapshot save latency in nanoseconds", m.SnapshotSaveNs)
}
