package fastliveness_test

import (
	"math/rand"
	"testing"

	"fastliveness"
	"fastliveness/internal/gen"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

func TestInterfereBasics(t *testing.T) {
	f := ir.MustParse(`
func @g(%a, %b) {
b0:
  %x = add %a, %b
  %y = mul %a, %a
  %z = add %x, %y
  br b1
b1:
  %w = add %z, %z
  ret %w
}
`)
	live, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v := func(name string) *ir.Value { return f.ValueByName(name) }
	cases := []struct {
		a, b string
		want bool
	}{
		{"x", "y", true},  // x is used by z strictly after y's def
		{"x", "x", false}, // self
		{"z", "w", false}, // z's last use is w's own def: dies there
		{"a", "x", true},  // a used by y after x's def
		{"z", "x", false}, // x's last use is z's own def: dies there
		{"w", "x", false}, // w defined after x is dead
	}
	for _, c := range cases {
		if got := live.Interfere(v(c.a), v(c.b)); got != c.want {
			t.Errorf("Interfere(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := live.Interfere(v(c.b), v(c.a)); got != c.want {
			t.Errorf("Interfere(%s, %s) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// Soundness of Interfere as a coloring relation: assigning the same
// "register" to non-interfering values and rewriting the program through
// per-register slots must preserve semantics. This runs the classic
// chordal-SSA greedy allocation end to end on generated programs.
func TestInterfereSoundForColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		c := gen.Default(int64(trial)*997 + 5)
		c.TargetBlocks = 6 + rng.Intn(30)
		f := gen.Generate("p", c)
		ssa.Construct(f)
		live, err := fastliveness.Analyze(f, fastliveness.Config{})
		if err != nil {
			t.Fatal(err)
		}

		// Greedy coloring in dominance/program order.
		var vars []*ir.Value
		f.Values(func(v *ir.Value) {
			if v.Op.HasResult() {
				vars = append(vars, v)
			}
		})
		color := map[*ir.Value]int{}
		for _, v := range vars {
			used := map[int]bool{}
			for _, w := range vars {
				if w == v {
					break // only previously colored (program order)
				}
				if live.Interfere(v, w) {
					used[color[w]] = true
				}
			}
			k := 0
			for used[k] {
				k++
			}
			color[v] = k
		}

		// Verification: any two values sharing a color must never be live
		// at the same block boundary.
		df := map[*ir.Value]bool{}
		_ = df
		for i, x := range vars {
			for _, y := range vars[i+1:] {
				if color[x] != color[y] {
					continue
				}
				for _, b := range f.Blocks {
					if live.IsLiveOut(x, b) && live.IsLiveOut(y, b) {
						// Both live-out of b: must be the defining-use
						// overlap Interfere would have caught.
						t.Fatalf("trial %d: %s and %s share r%d but are both live-out of %s",
							trial, x, y, color[x], b)
					}
				}
			}
		}
		// Spot-check behaviour is untouched (coloring is analysis-only,
		// but run the program to make sure the corpus entry is sane).
		if _, err := interp.Run(f, []int64{3, 1, 4}, interp.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
