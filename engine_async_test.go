package fastliveness

// Rebuild-pool lifecycle tests. Deterministic interleavings are forced
// with a registered "gate" test backend: it answers exactly like dataflow
// (so it is set-producing — any edit stales it) but can be armed to block
// the next Analyze until the test releases it, letting the tests park a
// worker mid-build and race evictions/invalidations against it.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/ir"
)

// gateBackend wraps the dataflow backend; Arm makes the next Analyze
// block until the returned release func is called, signalling entry on
// the started channel.
type gateBackend struct {
	inner backend.Backend

	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}

var gate = func() *gateBackend {
	inner, err := backend.Get("dataflow")
	if err != nil {
		panic(err)
	}
	g := &gateBackend{inner: inner}
	backend.Register(g)
	return g
}()

func (g *gateBackend) Name() string { return "gate" }

func (g *gateBackend) Analyze(f *ir.Func) (backend.Result, error) {
	g.mu.Lock()
	started, release := g.started, g.release
	g.started, g.release = nil, nil
	g.mu.Unlock()
	if started != nil {
		close(started)
		<-release
	}
	return g.inner.Analyze(f)
}

// Arm makes the next Analyze call block. It returns a channel that closes
// when that Analyze has started and a func that releases it.
func (g *gateBackend) Arm() (started <-chan struct{}, release func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, r := make(chan struct{}), make(chan struct{})
	g.started, g.release = s, r
	return s, func() { close(r) }
}

// waitFor polls cond for up to 5s — the standard shape for asserting that
// an asynchronous effect (worker drain, goroutine exit) has landed.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Close must stop every worker goroutine (no leaks, measured via
// runtime.NumGoroutine), discard pending queue entries, stay idempotent,
// and leave the engine fully usable in on-demand mode.
func TestEngineCloseDrainsWorkers(t *testing.T) {
	funcs := engineCorpus(t, 8, 55)
	before := runtime.NumGoroutine()
	e := NewEngine(EngineConfig{RebuildWorkers: 4})
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	// Dirty everything so the queue is busy when Close lands.
	for _, f := range funcs {
		splitSomeEdge(t, f)
		e.MarkDirty(f)
	}
	e.Close()
	e.Close() // idempotent
	waitFor(t, "worker goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= before
	})
	if got := e.QueuedRebuilds(); got != 0 {
		t.Fatalf("QueuedRebuilds = %d after Close, want 0", got)
	}
	// Still usable: queries rebuild on demand after Close.
	for _, f := range funcs {
		live, err := e.Liveness(f)
		if err != nil {
			t.Fatal(err)
		}
		if live.Stale() {
			t.Fatalf("%s: stale analysis served after Close", f.Name)
		}
	}
	// MarkDirty after Close is a safe no-op.
	splitSomeEdge(t, funcs[0])
	e.MarkDirty(funcs[0])
	if got := e.QueuedRebuilds(); got != 0 {
		t.Fatalf("QueuedRebuilds = %d after post-Close MarkDirty, want 0", got)
	}
}

// MarkDirty must move re-analysis off the query path: after the pool
// processes a dirty function, the next query is a pure cache hit —
// query-path Rebuilds stays 0 while BackgroundRebuilds counts the work.
func TestEngineMarkDirtyRebuildsAhead(t *testing.T) {
	funcs := engineCorpus(t, 2, 91)
	e, err := AnalyzeProgram(funcs, EngineConfig{RebuildWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	f := funcs[0]
	splitSomeEdge(t, f) // CFG edit: stales the checker
	e.MarkDirty(f)
	waitFor(t, "background rebuild", func() bool { return e.BackgroundRebuilds() == 1 })
	live, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	if live.Stale() {
		t.Fatal("analysis served after background rebuild is stale")
	}
	if got := e.Rebuilds(); got != 0 {
		t.Fatalf("query-path Rebuilds = %d, want 0 (the pool absorbed it)", got)
	}
	// An unregistered function is a safe no-op.
	e.MarkDirty(ir.NewFunc("stranger"))
	// A fresh function is a safe no-op (nothing stale to do).
	e.MarkDirty(funcs[1])
	if got := e.QueuedRebuilds(); got != 0 {
		t.Fatalf("QueuedRebuilds = %d after no-op MarkDirtys, want 0", got)
	}
}

// A build superseded mid-flight (Invalidate bumps the generation while
// the worker is inside Analyze) must be discarded, not cached: queries
// that raced it build on demand and never see the dead result.
func TestEngineSupersededBackgroundBuildDiscarded(t *testing.T) {
	funcs := engineCorpus(t, 1, 77)
	f := funcs[0]
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}, RebuildWorkers: 1})
	defer e.Close()
	e.Add(f)
	if _, err := e.Liveness(f); err != nil {
		t.Fatal(err)
	}
	addSomeUse(t, f) // any edit stales the set-producing gate backend
	started, release := gate.Arm()
	e.MarkDirty(f)
	<-started // worker is parked inside Analyze for f
	e.Invalidate(f)
	release()
	// Liveness waits out the in-flight build (single-flight), sees its
	// result discarded, and builds on demand.
	live, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	if live.Stale() {
		t.Fatal("on-demand rebuild after discarded background build is stale")
	}
	if got := e.BackgroundRebuilds(); got != 0 {
		t.Fatalf("BackgroundRebuilds = %d, want 0 (the build was superseded)", got)
	}
	if got := e.Resident(); got != 1 {
		t.Fatalf("Resident = %d, want 1 (the on-demand rebuild)", got)
	}
}

// A function evicted while queued for an async rebuild must not be
// resurrected into the cache when the worker reaches it: eviction bumps
// the generation and empties the slot, and the worker's dequeue check
// skips empty slots.
func TestEngineEvictedWhileQueuedNotResurrected(t *testing.T) {
	funcs := engineCorpus(t, 4, 33)
	f, g, h2, k := funcs[0], funcs[1], funcs[2], funcs[3]
	// One shard so LRU order is global and deterministic; cache of 2.
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}, RebuildWorkers: 1, MaxCached: 2, Shards: 1})
	defer e.Close()
	e.Add(funcs...)
	if _, err := e.Liveness(f); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Liveness(g); err != nil {
		t.Fatal(err)
	}
	// Park the single worker on g's rebuild so f's dirty entry stays
	// queued behind it.
	addSomeUse(t, g)
	started, release := gate.Arm()
	e.MarkDirty(g)
	<-started
	// Queue f for rebuild, then evict it with cache pressure from two
	// on-demand builds (g is off the LRU while its rebuild is in flight,
	// so the tail is f).
	addSomeUse(t, f)
	e.MarkDirty(f)
	if got := e.QueuedRebuilds(); got != 1 {
		t.Fatalf("QueuedRebuilds = %d with the worker parked, want 1 (f)", got)
	}
	if _, err := e.Liveness(h2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Liveness(k); err != nil { // overflows MaxCached: evicts f
		t.Fatal(err)
	}
	release()
	hf := e.lookup(f)
	waitFor(t, "worker to drain the queue", func() bool {
		if e.QueuedRebuilds() != 0 {
			return false
		}
		hf.shard.mu.Lock()
		defer hf.shard.mu.Unlock()
		return !hf.queued && !hf.building
	})
	hf.shard.mu.Lock()
	resurrected := hf.live != nil
	hf.shard.mu.Unlock()
	if resurrected {
		t.Fatal("evicted function was resurrected into the cache by its queued rebuild")
	}
	if got := e.BackgroundRebuilds(); got != 1 {
		t.Fatalf("BackgroundRebuilds = %d, want 1 (g only)", got)
	}
	// MarkDirty on the evicted function is a safe no-op.
	e.MarkDirty(f)
	if got := e.QueuedRebuilds(); got != 0 {
		t.Fatalf("QueuedRebuilds = %d after MarkDirty on an evicted function, want 0", got)
	}
	// And f still answers correctly on demand.
	ref, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := e.Liveness(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			if live.IsLiveIn(v, b) != ref.IsLiveIn(v, b) {
				t.Fatalf("on-demand rebuild disagrees with fresh analysis at live-in(%s, %s)", v, b)
			}
		})
	}
}
