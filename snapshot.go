// Persistent snapshot tier: the disk layer under the engine's LRU.
//
// The checker's R/T precomputation depends only on CFG structure (§4), so
// it is cacheable across processes keyed by a structural fingerprint of
// the CFG — yesterday's precomputations answer today's queries as long as
// the control flow is unchanged, no matter how many instructions were
// edited in between. SnapshotStore wires internal/snapshot into the
// engine: on an analysis miss (first build, eviction refill, CFG-edit
// rebuild) the engine first tries a fingerprint-matched load from disk and
// only falls back to the full precompute when none validates; successful
// computes are written back asynchronously through the rebuild pool's
// workers, off the build path.
package fastliveness

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/core"
	"fastliveness/internal/ir"
	"fastliveness/internal/retry"
	"fastliveness/internal/snapshot"
)

// Save-retry pacing for transient snapshot write failures (a full /tmp,
// a hiccuping network filesystem): how many extra attempts a failed save
// gets by default, and the backoff bounds between them.
const (
	defaultSaveRetries = 2
	saveBackoffBase    = time.Millisecond
	saveBackoffCap     = 50 * time.Millisecond
)

// errSnapshotBreakerOpen marks a load or save skipped because the store's
// circuit breaker is open: the disk tier is degraded and builds fall
// through to recomputation. Deliberately unexported — callers observe the
// degradation through SnapshotStats.BreakerSkips, not error plumbing.
var errSnapshotBreakerOpen = errors.New("snapshot store circuit breaker is open")

// SnapshotStore is a handle on an on-disk snapshot directory, shareable
// between engines and processes. Open one with OpenSnapshotStore (or
// OpenSnapshotStoreOptions to tune the failure handling) and set it as
// EngineConfig.SnapshotStore.
//
// All of the store's I/O sits behind a circuit breaker: a run of
// consecutive load/save errors — or loads slower than the configured
// latency ceiling — opens it, after which builds skip the disk entirely
// and recompute from IR (counted in SnapshotStats.BreakerSkips). After a
// cooldown the next load runs as a half-open probe; its success closes
// the breaker again. Cache misses (no snapshot for the fingerprint) are
// normal operation, never breaker failures. Transient save errors are
// additionally retried a few times with jittered backoff before giving
// up, since a lost save silently costs a future process its warm start.
type SnapshotStore struct {
	store       *snapshot.Store
	breaker     *retry.Breaker
	saveRetries int

	// Breaker-transition fan-out: the breaker's OnTransition bumps the
	// store-global counter and forwards to every registered observer
	// (engines forwarding to their tracers — see NewEngine). The observer
	// list is copy-on-write under obsMu so the breaker callback never
	// holds a lock while calling out.
	transitions atomic.Int64
	obsMu       sync.Mutex
	obs         atomic.Pointer[[]breakerObserver]
	nextObsID   int
}

// breakerObserver is one registered transition callback with the identity
// its unregister function removes it by.
type breakerObserver struct {
	id int
	fn func(from, to retry.State)
}

// SnapshotStoreOptions tunes OpenSnapshotStoreOptions. The zero value
// matches OpenSnapshotStore: unbounded directory, breaker opening after
// 4 consecutive failures with a one-second cooldown and no latency
// ceiling, and 2 save retries.
type SnapshotStoreOptions struct {
	// MaxBytes bounds the directory's total size — least recently used
	// snapshots are deleted when a save overflows it; <= 0 means unbounded.
	MaxBytes int64
	// BreakerFailures is how many consecutive I/O failures open the
	// breaker. 0 means 4.
	BreakerFailures int
	// BreakerLatency, when positive, is the per-operation ceiling: an
	// operation slower than this counts as a failure even when it
	// succeeds. 0 disables the ceiling.
	BreakerLatency time.Duration
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe load. 0 means one second.
	BreakerCooldown time.Duration
	// SaveRetries is how many extra backoff-paced attempts a transiently
	// failing save gets. 0 means 2; negative disables retries.
	SaveRetries int
	// VerifyArenas opts mmap-backed loads into eager checksum scans of
	// the O(n²) R/T arena sections. By default the aliasing load path
	// verifies the header and the structural sections and defers the
	// arena scans — the sub-linear warm-start trade, in which an on-disk
	// bit flip inside the matrices would go undetected until a copying
	// load touches it. Set this to pay a linear pass per file-backed load
	// for eager end-to-end integrity instead.
	VerifyArenas bool
}

func (o SnapshotStoreOptions) saveRetries() int {
	switch {
	case o.SaveRetries > 0:
		return o.SaveRetries
	case o.SaveRetries < 0:
		return 0
	}
	return defaultSaveRetries
}

// OpenSnapshotStore opens (creating if necessary) a snapshot directory.
// maxBytes bounds the directory's total size — least recently used
// snapshots are deleted when a save overflows it; <= 0 means unbounded.
// Failure handling uses the defaults; see OpenSnapshotStoreOptions.
func OpenSnapshotStore(dir string, maxBytes int64) (*SnapshotStore, error) {
	return OpenSnapshotStoreOptions(dir, SnapshotStoreOptions{MaxBytes: maxBytes})
}

// OpenSnapshotStoreOptions is OpenSnapshotStore with the failure-model
// knobs exposed.
func OpenSnapshotStoreOptions(dir string, opts SnapshotStoreOptions) (*SnapshotStore, error) {
	st, err := snapshot.Open(dir, opts.MaxBytes)
	if err != nil {
		return nil, err
	}
	st.SetVerifyArenas(opts.VerifyArenas)
	ss := &SnapshotStore{store: st, saveRetries: opts.saveRetries()}
	ss.breaker = retry.NewBreaker(retry.BreakerConfig{
		Failures:     opts.BreakerFailures,
		Latency:      opts.BreakerLatency,
		Cooldown:     opts.BreakerCooldown,
		OnTransition: ss.onBreakerTransition,
	})
	return ss, nil
}

// onBreakerTransition is the breaker's OnTransition hook: count the state
// change and fan it out to the registered observers. Runs outside the
// breaker lock, on the goroutine whose load/save caused the transition.
func (s *SnapshotStore) onBreakerTransition(from, to retry.State) {
	s.transitions.Add(1)
	if obs := s.obs.Load(); obs != nil {
		for _, o := range *obs {
			o.fn(from, to)
		}
	}
}

// observeBreaker registers fn to be called on every breaker state change
// and returns its unregister function. Engines call this at construction
// to forward transitions to their tracer and unregister at Shutdown; the
// store may outlive (and be shared by) any number of engines.
func (s *SnapshotStore) observeBreaker(fn func(from, to retry.State)) (unregister func()) {
	s.obsMu.Lock()
	id := s.nextObsID
	s.nextObsID++
	var next []breakerObserver
	if cur := s.obs.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, breakerObserver{id: id, fn: fn})
	s.obs.Store(&next)
	s.obsMu.Unlock()
	return func() {
		s.obsMu.Lock()
		defer s.obsMu.Unlock()
		cur := s.obs.Load()
		if cur == nil {
			return
		}
		kept := make([]breakerObserver, 0, len(*cur))
		for _, o := range *cur {
			if o.id != id {
				kept = append(kept, o)
			}
		}
		s.obs.Store(&kept)
	}
}

// BreakerTransitions reports how many state changes the store's circuit
// breaker has made — store-global, like the breaker itself: engines
// sharing one store observe a shared count.
func (s *SnapshotStore) BreakerTransitions() int64 { return s.transitions.Load() }

// BreakerState reports the store's circuit-breaker position ("closed",
// "open" or "half-open") for logs and stats.
func (s *SnapshotStore) BreakerState() string { return s.breaker.State().String() }

// load is Store.Load behind the breaker. An open breaker skips the disk
// entirely and returns errSnapshotBreakerOpen; cache misses (ErrNotFound)
// pass through as ordinary misses without counting against the breaker.
func (s *SnapshotStore) load(fp uint64) (*snapshot.Snapshot, error) {
	if !s.breaker.Allow() {
		return nil, errSnapshotBreakerOpen
	}
	start := time.Now()
	snap, err := s.store.Load(fp)
	failed := err != nil && !errors.Is(err, snapshot.ErrNotFound)
	s.breaker.Record(time.Since(start), failed)
	return snap, err
}

// save is Store.Save behind the breaker, with backoff-paced retries for
// transient errors. Saves never probe an open breaker — only loads do,
// because a probe that writes could not distinguish "disk recovered" from
// "write buffered to a dying disk" — so a non-closed breaker skips the
// save outright. Save outcomes feed the breaker's failure count only
// while it is closed, keeping them out of half-open probe accounting.
func (s *SnapshotStore) save(snap *snapshot.Snapshot) error {
	var bo *retry.Backoff
	for attempt := 0; ; attempt++ {
		if s.breaker.State() != retry.Closed {
			return errSnapshotBreakerOpen
		}
		start := time.Now()
		err := s.store.Save(snap)
		if s.breaker.State() == retry.Closed {
			s.breaker.Record(time.Since(start), err != nil)
		}
		if err == nil || attempt >= s.saveRetries {
			return err
		}
		if bo == nil {
			bo = retry.NewBackoff(saveBackoffBase, saveBackoffCap, 0)
		}
		time.Sleep(bo.Next())
	}
}

// Dir returns the store's directory.
func (s *SnapshotStore) Dir() string { return s.store.Dir() }

// SizeBytes returns the current total size of the store's snapshot files.
func (s *SnapshotStore) SizeBytes() int64 { return s.store.SizeBytes() }

// Len returns the number of snapshots in the store.
func (s *SnapshotStore) Len() int { return s.store.Len() }

// SnapshotStats counts the engine's traffic against its snapshot tier.
// Hits+Misses is the number of analysis builds that consulted the store;
// Computes counts full precomputes engine-wide (with or without a store),
// so a warm start over an unchanged corpus shows Computes == 0 —
// the measurable form of "the disk tier eliminated the precompute".
type SnapshotStats struct {
	// Hits counts builds served by a validated snapshot load.
	Hits int64
	// Misses counts builds that consulted the store and fell through to a
	// full precompute — no file for the fingerprint, or a file that failed
	// validation (corruption, version skew, a stale structural match).
	Misses int64
	// Stores counts snapshots written back to disk.
	Stores int64
	// Computes counts full precomputes run by this engine, snapshot tier
	// or not. First builds, eviction refills and CFG-edit rebuilds all
	// count; snapshot hits do not.
	Computes int64
	// LoadedBytes and StoredBytes total the snapshot file sizes read on
	// hits and written on stores.
	LoadedBytes int64
	StoredBytes int64
	// BreakerSkips counts builds that would have consulted the store but
	// found its circuit breaker open and recomputed from IR instead (each
	// also counts as a Miss). A nonzero value is the measurable form of
	// "the disk tier degraded but answers stayed correct".
	BreakerSkips int64
	// DecodedCacheHits and DecodedCacheMisses split store loads by whether
	// the store's in-process decoded cache absorbed them without touching
	// the file; SectionScans and SectionSkips count the v3 format's
	// per-section checksum scans run and avoided (a cached hit skips all
	// of them, the aliasing mmap path defers the two O(n²) arena sections,
	// an early validation failure skips the sections never reached).
	// Store-global, like the breaker: engines sharing one SnapshotStore see
	// shared counts. All zero without a store.
	DecodedCacheHits   int64
	DecodedCacheMisses int64
	SectionScans       int64
	SectionSkips       int64
}

// snapshotCounters is the atomic-counter block behind SnapshotStats,
// embedded in Engine.
type snapshotCounters struct {
	snapHits         atomic.Int64
	snapMisses       atomic.Int64
	snapStores       atomic.Int64
	computes         atomic.Int64
	snapLoadedBytes  atomic.Int64
	snapStoredBytes  atomic.Int64
	snapBreakerSkips atomic.Int64
}

// SnapshotStats reports the engine's snapshot-tier traffic so far. All
// counters are zero except Computes when no SnapshotStore is configured.
// Like Stats and Rebuilds, the values are invariant under the shard count.
func (e *Engine) SnapshotStats() SnapshotStats {
	st := SnapshotStats{
		Hits:         e.snap.snapHits.Load(),
		Misses:       e.snap.snapMisses.Load(),
		Stores:       e.snap.snapStores.Load(),
		Computes:     e.snap.computes.Load(),
		LoadedBytes:  e.snap.snapLoadedBytes.Load(),
		StoredBytes:  e.snap.snapStoredBytes.Load(),
		BreakerSkips: e.snap.snapBreakerSkips.Load(),
	}
	if ss := e.config.SnapshotStore; ss != nil {
		s := ss.store.Stats()
		st.DecodedCacheHits = s.DecodedCacheHits
		st.DecodedCacheMisses = s.DecodedCacheMisses
		st.SectionScans = s.SectionScans
		st.SectionSkips = s.SectionSkips
	}
	return st
}

// coreOptions maps the public per-function Config to checker options.
func (c Config) coreOptions() core.Options {
	return core.Options{
		Strategy:            c.Strategy,
		NoSkipSubtrees:      c.NoSkipSubtrees,
		NoReducibleFastPath: c.NoReducibleFastPath,
		SortedT:             c.SortedT,
	}
}

// snapshotTier returns the store to consult for this engine's builds, or
// nil when there is none or the configured backend is not the checker —
// set-producing backends materialize per-instruction sets, which the
// CFG-keyed snapshot format deliberately cannot describe.
func (e *Engine) snapshotTier() *SnapshotStore {
	ss := e.config.SnapshotStore
	if ss == nil {
		return nil
	}
	switch e.config.Config.Backend {
	case "", backend.DefaultName:
		return ss
	}
	return nil
}

// analyze is the engine's single analysis chokepoint: every build — first
// touch, eviction refill, staleness rebuild, background rebuild — funnels
// through here, which is what makes the snapshot tier sit under the whole
// LRU rather than under one code path. Callers hold the function's read
// lock with the handle's building flag set, exactly as they did around the
// direct Analyze call this replaces — which also makes them the sole
// toucher of the handle's verification record.
//
// Verification is epoch-tracked: ir.Verify runs at most once per function
// per edit epoch, and every later build of the same IR — eviction refill,
// snapshot restore, background rebuild — reuses the recorded pass instead
// of re-walking every instruction. Unless Config.SkipVerify opts out
// entirely, the first build after any edit still verifies, so the safety
// contract of direct Analyze is kept; only the redundant re-runs go.
func (e *Engine) analyze(h *handle) (*Liveness, error) {
	f := h.f
	config := e.config.Config
	if !config.SkipVerify {
		if now := backend.EpochsOf(f); !h.verified || h.verifiedAt != now {
			if err := ir.Verify(f); err != nil {
				return nil, err
			}
			h.verified, h.verifiedAt = true, now
		}
		config.SkipVerify = true // verified above (or recorded earlier)
	}
	st := e.snapshotTier()
	if st != nil {
		// A prefetch worker may already have consulted the store for
		// exactly this IR and come up empty; consuming its record here
		// skips the redundant disk probe and keeps the hit/miss accounting
		// at one store consultation per build. The record is epoch-stamped,
		// so any intervening edit re-probes.
		skip := h.snapProbed && h.snapProbedAt == backend.EpochsOf(f)
		h.snapProbed = false
		if !skip {
			if live, res := e.loadSnapshot(st, f); res == snapHit {
				return live, nil
			}
		}
	}
	e.snap.computes.Add(1)
	live, err := Analyze(f, config)
	if st != nil && err == nil {
		e.saveSnapshot(st, live)
	}
	return live, err
}

// snapResult classifies one consultation of the snapshot tier. The build
// path treats everything but a hit as "run the real precompute"; the
// prefetch pipeline additionally tells misses from breaker skips for its
// own accounting.
type snapResult int

const (
	snapHit snapResult = iota
	snapMiss
	snapBreakerOpen
)

// loadSnapshot tries to serve f's analysis from the store. Every failure —
// no file, torn or bit-flipped file, version skew, a fingerprint that
// collides but fails Restore's structural re-validation, an I/O error, an
// open circuit breaker — lands in the same place: report a miss and let
// the caller run the real precompute. The disk tier can therefore never
// produce a wrong answer, only a slower one.
//
// The warm path never builds a CFG: FingerprintFunc derives the key (and
// the block index) straight off the IR, and under format v3 a validating
// RestoreFrom adopts the graph, DFS and dominator tree from the file.
func (e *Engine) loadSnapshot(ss *SnapshotStore, f *ir.Func) (live *Liveness, res snapResult) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		e.met.snapLoadNs.Observe(d.Nanoseconds())
		e.tracer.SnapshotLoad(f.Name, res == snapHit, d)
	}()
	opts := e.config.Config.coreOptions()
	fp, index := snapshot.FingerprintFunc(f, snapshot.FlagsFor(opts))
	s, err := ss.load(fp)
	if err != nil {
		e.snap.snapMisses.Add(1)
		if errors.Is(err, errSnapshotBreakerOpen) {
			e.snap.snapBreakerSkips.Add(1)
			return nil, snapBreakerOpen
		}
		return nil, snapMiss
	}
	cr, err := s.RestoreFrom(f, index, opts)
	if err != nil {
		e.snap.snapMisses.Add(1)
		return nil, snapMiss
	}
	e.snap.snapHits.Add(1)
	e.snap.snapLoadedBytes.Add(s.SizeBytes())
	return livenessFromResult(f, cr, e.config.Config), snapHit
}

// livenessFromResult wraps an adopted checker result as a query handle,
// mirroring the tail of Analyze for the checker backend — same scratch
// routing, same CacheUses wiring — without re-running any analysis.
func livenessFromResult(f *ir.Func, cr *backend.CheckerResult, config Config) *Liveness {
	return &Liveness{
		f:         f,
		prep:      cr.Prep(),
		res:       cr,
		checker:   cr.Checker(),
		cacheUses: config.CacheUses,
	}
}

// saveSnapshot schedules a write-back of a freshly computed checker
// analysis. Capture is done inline — it aliases the checker's write-once
// arenas and copies only the idom array — while the encode and file write
// ride the rebuild pool's workers when the engine has them (rebuild jobs
// take priority; Close drains pending saves to disk). Without a pool the
// save runs inline, so single-shot tools still leave a warm store behind.
//
// Snapshots are keyed by fingerprint, not by function, so a save executing
// long after its function was edited or evicted is still correct: it
// describes the CFG shape it captured, and only a future function with
// that exact shape will load it.
func (e *Engine) saveSnapshot(ss *SnapshotStore, live *Liveness) {
	cr, ok := live.res.(*backend.CheckerResult)
	if !ok {
		return
	}
	snap, err := snapshot.Capture(cr.Prep(), cr.Checker())
	if err != nil {
		return // SortedT dropped its arena: loadable config, not savable
	}
	if ss.store.Contains(snap.FP) {
		return
	}
	job := func() {
		if ss.store.Contains(snap.FP) {
			return // another function with the same shape got there first
		}
		start := time.Now()
		err := ss.save(snap)
		d := time.Since(start)
		e.met.snapSaveNs.Observe(d.Nanoseconds())
		e.tracer.SnapshotSave(err == nil, d)
		if err == nil {
			e.snap.snapStores.Add(1)
			e.snap.snapStoredBytes.Add(snap.SizeBytes())
		}
	}
	if e.pool != nil {
		e.pool.enqueueSave(job)
		return
	}
	job()
}

// Prefetch enqueues a warm-start snapshot load for every registered
// function with no resident analysis, fanned across the rebuild pool's
// workers: each prefetch fingerprints the function, loads and validates
// its snapshot if one exists, and publishes the adopted analysis into the
// cache ahead of the first query — so a warm process front-loads its disk
// tier instead of paying one load per first touch. Prefetches ride the
// pool at a priority between staleness rebuilds (which keep queries fast
// now) and snapshot saves (which only help future processes), share the
// engine's single-flight machinery (a query arriving mid-prefetch waits
// for and reuses it), and obey the store's circuit breaker. A function
// whose snapshot misses is left for the on-demand build, which skips the
// duplicate store probe the prefetch already paid.
//
// Prefetch returns how many loads it enqueued. It is a safe no-op — and
// returns 0 — without a rebuild pool, without a snapshot tier (no store,
// or a non-checker backend), or after Shutdown. Precompute calls it
// implicitly; call it directly to warm the cache without forcing the
// recompute of functions that miss.
func (e *Engine) Prefetch() int {
	return e.prefetchFuncs(e.Funcs())
}

// prefetchFuncs enqueues prefetches for the given registered functions,
// deduplicated per handle via prefetchQueued exactly as MarkDirty
// deduplicates rebuilds via queued.
func (e *Engine) prefetchFuncs(funcs []*ir.Func) int {
	if e.pool == nil || e.snapshotTier() == nil || e.closed.Load() {
		return 0
	}
	n := 0
	for _, f := range funcs {
		h := e.lookup(f)
		if h == nil {
			continue
		}
		s := h.shard
		s.mu.Lock()
		if h.prefetchQueued || h.queued || h.building || h.live != nil || h.err != nil {
			s.mu.Unlock()
			continue
		}
		h.prefetchQueued = true
		s.mu.Unlock()
		if e.pool.enqueuePrefetch(h) {
			n++
		}
	}
	return n
}

// prefetchOne runs one dequeued prefetch on a pool worker, mirroring
// rebuildOne: the decision runs under the shard mutex, the load itself
// runs unlocked with building set (sharing the single-flight path with
// queries) and under the function's read lock, and the publish re-checks
// the generation so a prefetch superseded mid-load by Invalidate or an
// edit is discarded, never cached.
func (e *Engine) prefetchOne(h *handle) {
	st := e.snapshotTier()
	s := h.shard
	s.mu.Lock()
	h.prefetchQueued = false
	if st == nil || h.building || h.queued || h.live != nil || h.err != nil {
		// Already resident, already being built (the builder's own store
		// probe covers it), queued for a rebuild, or sticky-failed: nothing
		// for a prefetch to add.
		s.mu.Unlock()
		e.met.prefetchDiscards.Inc()
		return
	}
	h.building = true
	gen := h.gen
	s.mu.Unlock()

	live, res := e.runPrefetch(h, st)

	s.mu.Lock()
	h.building = false
	s.cond.Broadcast()
	switch {
	case res != snapHit:
		// Miss or breaker skip: the on-demand build recomputes (skipping
		// the store probe recorded via snapProbed). Not a discard — the
		// load ran and its outcome was counted.
	case h.gen != gen || live.Stale():
		// Invalidated, evicted or edited mid-load: the adopted analysis
		// may describe a CFG that no longer exists.
		e.met.prefetchDiscards.Inc()
	default:
		h.live = live
		e.clearQuarantine(h)
		h.elem = s.lru.PushFront(h)
		e.resident.Add(1)
		e.enforceCacheBound(s)
	}
	s.mu.Unlock()
}

// runPrefetch executes one prefetch load under the function's read lock:
// the same epoch-tracked verification as analyze (the prefetcher is the
// sole in-flight builder, so it owns the handle's verification record),
// then the store consultation. On anything but a hit the probe is
// recorded on the handle so the next build of the same IR skips it. A
// function that fails verification is left untouched for the on-demand
// build to diagnose — a prefetch never publishes failures.
func (e *Engine) runPrefetch(h *handle, st *SnapshotStore) (*Liveness, snapResult) {
	h.irMu.RLock()
	defer h.irMu.RUnlock()
	f := h.f
	if !e.config.Config.SkipVerify {
		if now := backend.EpochsOf(f); !h.verified || h.verifiedAt != now {
			if err := ir.Verify(f); err != nil {
				e.met.prefetchMisses.Inc()
				return nil, snapMiss
			}
			h.verified, h.verifiedAt = true, now
		}
	}
	probedAt := backend.EpochsOf(f) // stable: Edit write-locks irMu
	live, res := e.loadSnapshot(st, f)
	switch res {
	case snapHit:
		e.met.prefetchHits.Inc()
	case snapBreakerOpen:
		e.met.prefetchSkips.Inc()
		h.snapProbed, h.snapProbedAt = true, probedAt
	default:
		e.met.prefetchMisses.Inc()
		h.snapProbed, h.snapProbedAt = true, probedAt
	}
	return live, res
}
