package fastliveness

// The concurrency battery for the sharded engine: K goroutines mutate
// functions through Engine.Edit while M goroutines issue batch and Oracle
// queries, and every answer is validated against a fresh dataflow
// recompute of the function pinned by a per-function RWMutex. The
// mutation op set mirrors internal/ir's FuzzMutations sequences (new use,
// φ-safe const insert, edge split, dead-value removal), so every
// intermediate program stays verifiable strict SSA. Run in CI under
// -race: the point is as much the absence of data races in the engine's
// shard/rebuild machinery as the correctness of the answers.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

// mutateFunc applies one random epoch-tracked mutation to f, mirroring
// the FuzzMutations op set. Mutations only add uses, constants and edges
// or remove use-free non-param values, so pointers into the pre-mutation
// value/block set stay valid and strict SSA is preserved.
func mutateFunc(f *ir.Func, rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0: // new use of an existing value in its own block
		var vals []*ir.Value
		f.Values(func(v *ir.Value) {
			if v.Op.HasResult() {
				vals = append(vals, v)
			}
		})
		if len(vals) > 0 {
			v := vals[rng.Intn(len(vals))]
			v.Block.NewValue(ir.OpNeg, v)
		}
	case 1: // constant right after a block's φ prefix
		b := f.Blocks[rng.Intn(len(f.Blocks))]
		b.InsertValueAt(len(b.Phis()), ir.OpConst, int64(rng.Intn(1000)))
	case 2: // split a random CFG edge (stales every backend)
		var cands []*ir.Block
		for _, b := range f.Blocks {
			if len(b.Succs) > 0 {
				cands = append(cands, b)
			}
		}
		if len(cands) > 0 {
			b := cands[rng.Intn(len(cands))]
			b.SplitEdge(rng.Intn(len(b.Succs)))
		}
	case 3: // remove a use-free non-param value, if any
		for _, b := range f.Blocks {
			for idx, v := range b.Values {
				if v.NumUses() == 0 && v.Op != ir.OpParam {
					b.RemoveValueAt(idx)
					return
				}
			}
		}
	}
}

// TestEngineConcurrentEditQueryStress is the edit+query hammer: mutators
// own a function for the duration of an Edit (write side of the
// per-function test lock), queriers pin it shared (read side), issue
// BatchIsLiveIn/Out and Oracle queries through the engine, and compare
// every answer against a fresh dataflow recompute. The engine runs with
// shards, a bounded cache and background rebuild workers, so eviction,
// staleness and async-rebuild races are all in play.
func TestEngineConcurrentEditQueryStress(t *testing.T) {
	const nFuncs = 12
	iters := 48
	if testing.Short() {
		iters = 12
	}
	funcs := engineCorpus(t, nFuncs, 1234)
	e := NewEngine(EngineConfig{
		Parallelism:    2,
		Shards:         4,
		MaxCached:      nFuncs - 2, // keep eviction in play
		RebuildWorkers: 2,
	})
	defer e.Close()
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}

	locks := make([]sync.RWMutex, nFuncs)
	const mutators, queriers = 3, 5
	errs := make(chan error, mutators+queriers)

	var wg sync.WaitGroup
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + m)))
			for i := 0; i < iters; i++ {
				idx := rng.Intn(nFuncs)
				f := funcs[idx]
				locks[idx].Lock()
				e.Edit(f, func() { mutateFunc(f, rng) })
				// The harness itself must keep the program well-formed;
				// verify inside the exclusive section.
				if err := ir.Verify(f); err == nil {
					err = ssa.VerifyStrict(f)
					if err != nil {
						locks[idx].Unlock()
						errs <- fmt.Errorf("mutator %d broke %s: %v", m, f.Name, err)
						return
					}
				} else {
					locks[idx].Unlock()
					errs <- fmt.Errorf("mutator %d broke %s: %v", m, f.Name, err)
					return
				}
				locks[idx].Unlock()
			}
			errs <- nil
		}(m)
	}

	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + q)))
			for i := 0; i < iters; i++ {
				idx := rng.Intn(nFuncs)
				f := funcs[idx]
				locks[idx].RLock()
				if err := checkOneFunc(e, f, rng); err != nil {
					locks[idx].RUnlock()
					errs <- fmt.Errorf("querier %d: %v", q, err)
					return
				}
				locks[idx].RUnlock()
			}
			errs <- nil
		}(q)
	}

	wg.Wait()
	for i := 0; i < mutators+queriers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// checkOneFunc issues a batch live-in, a batch live-out and a handful of
// Oracle queries against f through the engine and validates every answer
// against a fresh dataflow analysis of f's current state. Called with f
// pinned (no concurrent mutation), but the engine underneath is fully
// concurrent — other functions are being edited, rebuilt and evicted
// while this runs.
func checkOneFunc(e *Engine, f *ir.Func, rng *rand.Rand) error {
	ref, err := Analyze(f, Config{Backend: "dataflow"})
	if err != nil {
		return fmt.Errorf("fresh recompute of %s: %w", f.Name, err)
	}
	qs := allQueries(f)
	if len(qs) > 240 {
		off := rng.Intn(len(qs) - 240)
		qs = qs[off : off+240]
	}
	ins, err := e.BatchIsLiveIn(f, qs)
	if err != nil {
		return err
	}
	outs, err := e.BatchIsLiveOut(f, qs)
	if err != nil {
		return err
	}
	for i, q := range qs {
		if want := ref.IsLiveIn(q.V, q.B); ins[i] != want {
			return fmt.Errorf("%s: batch live-in(%s,%s)=%v, fresh recompute=%v", f.Name, q.V, q.B, ins[i], want)
		}
		if want := ref.IsLiveOut(q.V, q.B); outs[i] != want {
			return fmt.Errorf("%s: batch live-out(%s,%s)=%v, fresh recompute=%v", f.Name, q.V, q.B, outs[i], want)
		}
	}
	oracle, err := e.Oracle(f)
	if err != nil {
		return err
	}
	for i := 0; i < 8 && i < len(qs); i++ {
		q := qs[rng.Intn(len(qs))]
		if got, want := oracle.IsLiveIn(q.V, q.B), ref.IsLiveIn(q.V, q.B); got != want {
			return fmt.Errorf("%s: oracle live-in(%s,%s)=%v, fresh recompute=%v", f.Name, q.V, q.B, got, want)
		}
		if got, want := oracle.IsLiveOut(q.V, q.B), ref.IsLiveOut(q.V, q.B); got != want {
			return fmt.Errorf("%s: oracle live-out(%s,%s)=%v, fresh recompute=%v", f.Name, q.V, q.B, got, want)
		}
	}
	return nil
}
