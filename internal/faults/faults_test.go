package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Calls("anything") != 0 || in.Fired("anything") != 0 {
		t.Fatal("nil injector reported traffic")
	}
}

func TestErrorRuleExactSiteAndCounts(t *testing.T) {
	in := New(1)
	in.Add(Rule{Site: "a", Action: ActionError})
	if err := in.Fire("b"); err != nil {
		t.Fatalf("unrelated site fired: %v", err)
	}
	var ie *InjectedError
	if err := in.Fire("a"); !errors.As(err, &ie) || ie.Site != "a" {
		t.Fatalf("Fire(a) = %v, want *InjectedError at a", err)
	}
	if got := in.Calls("a"); got != 1 {
		t.Fatalf("Calls(a) = %d, want 1", got)
	}
	if got := in.Fired("a"); got != 1 {
		t.Fatalf("Fired(a) = %d, want 1", got)
	}
	if got := in.Calls("b"); got != 1 {
		t.Fatalf("Calls(b) = %d, want 1 (calls count even without a rule)", got)
	}
}

func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	in := New(1)
	in.Add(Rule{Site: "s", Action: ActionError, Err: sentinel})
	if err := in.Fire("s"); !errors.Is(err, sentinel) {
		t.Fatalf("Fire = %v, want the armed sentinel", err)
	}
}

func TestAfterAndTimesWindow(t *testing.T) {
	in := New(1)
	// Fail exactly calls 2 and 3 (0-indexed: skip first 2, fire twice).
	in.Add(Rule{Site: "s", Action: ActionError, After: 2, Times: 2})
	var failures []int
	for i := 0; i < 6; i++ {
		if in.Fire("s") != nil {
			failures = append(failures, i)
		}
	}
	if len(failures) != 2 || failures[0] != 2 || failures[1] != 3 {
		t.Fatalf("failures at %v, want [2 3]", failures)
	}
}

func TestProbabilityIsSeededDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := New(seed)
		in.Add(Rule{Site: "s", Action: ActionError, P: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire("s") != nil
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("P=0.5 fired %d/%d times — probability not applied", fired, len(a))
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1)
	in.Add(Rule{Site: "s", Action: ActionPanic, Times: 1})
	func() {
		defer func() {
			r := recover()
			ip, ok := r.(*InjectedPanic)
			if !ok || ip.Site != "s" {
				t.Fatalf("recovered %v, want *InjectedPanic at s", r)
			}
		}()
		in.Fire("s")
		t.Fatal("Fire did not panic")
	}()
	if err := in.Fire("s"); err != nil {
		t.Fatalf("second call after Times=1: %v, want nil", err)
	}
}

func TestDelayComposesWithError(t *testing.T) {
	in := New(1)
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept += d }
	in.Add(
		Rule{Site: "s", Action: ActionDelay, Delay: 7 * time.Millisecond},
		Rule{Site: "s", Action: ActionError},
	)
	if err := in.Fire("s"); err == nil {
		t.Fatal("error rule after delay did not fire")
	}
	if slept != 7*time.Millisecond {
		t.Fatalf("slept %v, want 7ms", slept)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	in := New(9)
	in.Add(Rule{Site: "s", Action: ActionError, P: 0.3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = in.Fire("s")
			}
		}()
	}
	wg.Wait()
	if got := in.Calls("s"); got != 8*200 {
		t.Fatalf("Calls = %d, want %d", got, 8*200)
	}
}
