// Package faults is a deterministic fault injector: code under test (or
// under chaos) declares named sites — "snapshot.load", "backend.analyze" —
// and an Injector decides, per call, whether to inject an error, a panic
// or a delay there. Sites are plain strings, so the seam costs one
// nil-receiver method call when no injector is wired in; rules are
// evaluated under a seeded RNG, so a single-goroutine battery replays the
// exact same fault schedule for a given seed.
//
// The injector exists for the repository's chaos harness: the snapshot
// store's filesystem seam and the fault-injecting backend wrapper
// (internal/backend.Faulty) call Fire at their I/O and analysis
// boundaries, and the chaos tests assert that every injected failure
// degrades to recomputation or a reported error — never a wrong answer.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Action is what a matching rule does to the call that triggered it.
type Action uint8

const (
	// ActionError makes Fire return an error (Rule.Err, or a generic
	// *InjectedError), which the site propagates like a real failure.
	ActionError Action = iota
	// ActionPanic makes Fire panic with an *InjectedPanic — the chaos
	// stand-in for a backend bug, exercised by the engine's recover
	// boundary.
	ActionPanic
	// ActionDelay makes Fire sleep for Rule.Delay and then keep evaluating
	// further rules — the slow-disk / slow-build fault, used to trip
	// latency ceilings rather than error paths.
	ActionDelay
)

// String names the action for test output.
func (a Action) String() string {
	switch a {
	case ActionError:
		return "error"
	case ActionPanic:
		return "panic"
	case ActionDelay:
		return "delay"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Rule arms one fault at one site. The zero probability means "always
// fire when eligible"; After and Times window the rule to a slice of the
// site's call sequence, which is how tests script "the first save fails,
// the retry succeeds" deterministically.
type Rule struct {
	// Site is the exact site name the rule matches.
	Site string
	// Action selects error, panic or delay.
	Action Action
	// Err is returned by ActionError; nil substitutes *InjectedError.
	Err error
	// Delay is how long ActionDelay sleeps.
	Delay time.Duration
	// P is the per-call firing probability in (0,1); outside that range
	// the rule fires on every eligible call.
	P float64
	// After skips the rule for the site's first After calls.
	After int
	// Times caps how often the rule fires; 0 means no cap.
	Times int
}

// InjectedError is the error ActionError injects when Rule.Err is nil.
type InjectedError struct{ Site string }

func (e *InjectedError) Error() string { return "faults: injected error at " + e.Site }

// InjectedPanic is the value ActionPanic panics with.
type InjectedPanic struct{ Site string }

func (p *InjectedPanic) String() string { return "faults: injected panic at " + p.Site }

// ruleState pairs a rule with its per-injector firing count.
type ruleState struct {
	Rule
	fired int
}

// Injector evaluates rules at fault sites. The zero of *Injector — nil —
// is a valid, permanently disabled injector: Fire on a nil receiver returns nil
// immediately, so production call sites carry no conditional wiring.
// All methods are safe for concurrent use; under concurrency the seeded
// RNG still makes each individual decision deterministically, but the
// interleaving of decisions across goroutines follows the schedule of the
// run.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*ruleState
	calls map[string]int
	fired map[string]int
	sleep func(time.Duration) // swappable for tests; time.Sleep by default
}

// New returns an empty injector whose probabilistic rules draw from a RNG
// seeded with seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		calls: make(map[string]int),
		fired: make(map[string]int),
		sleep: time.Sleep,
	}
}

// Add arms rules. Rules at the same site are evaluated in Add order;
// delays fall through to later rules, errors and panics stop evaluation.
func (in *Injector) Add(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range rules {
		r := r
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
}

// Fire evaluates the rules armed for site against this call. It returns
// the injected error (ActionError), panics (ActionPanic), or sleeps and
// continues (ActionDelay); with no matching rule — or a nil injector — it
// returns nil. The call is counted either way, so Calls reports the
// site's real traffic.
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	n := in.calls[site]
	in.calls[site] = n + 1
	var sleeps []time.Duration
	var injected error
	for _, rs := range in.rules {
		if rs.Site != site || n < rs.After {
			continue
		}
		if rs.Times > 0 && rs.fired >= rs.Times {
			continue
		}
		if rs.P > 0 && rs.P < 1 && in.rng.Float64() >= rs.P {
			continue
		}
		rs.fired++
		in.fired[site]++
		switch rs.Action {
		case ActionDelay:
			sleeps = append(sleeps, rs.Delay)
			continue // delays compose with a subsequent error/panic
		case ActionPanic:
			in.mu.Unlock()
			for _, d := range sleeps {
				in.sleep(d)
			}
			panic(&InjectedPanic{Site: site})
		default: // ActionError
			injected = rs.Err
			if injected == nil {
				injected = &InjectedError{Site: site}
			}
		}
		break
	}
	in.mu.Unlock()
	for _, d := range sleeps {
		in.sleep(d)
	}
	return injected
}

// Calls reports how many times Fire has been called for site — the
// "how much disk traffic happened" counter the breaker tests assert on.
func (in *Injector) Calls(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[site]
}

// Fired reports how many rule firings site has suffered.
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}
