// Package graphgen produces random rooted digraphs for property-testing the
// graph analyses (DFS, dominators, the liveness checker core). It is not
// the calibrated benchmark workload generator — that is package gen, which
// emits whole IR functions; graphgen only makes raw CFship graphs, including
// pathological and irreducible shapes the structured generator cannot reach.
package graphgen

import (
	"math/rand"

	"fastliveness/internal/cfg"
)

// Config controls the random graph shape.
type Config struct {
	// MinNodes and MaxNodes bound the node count (inclusive).
	MinNodes, MaxNodes int
	// ExtraEdgeFactor is the expected number of extra random edges per node
	// beyond the spanning skeleton.
	ExtraEdgeFactor float64
	// BackEdgeProb is the probability that an extra edge is aimed backwards
	// (at a node with a smaller index), creating cycles.
	BackEdgeProb float64
	// AllowSelfLoops permits v->v edges on non-entry nodes.
	AllowSelfLoops bool
}

// Default is a reasonable mixed shape: cyclic, often irreducible.
var Default = Config{
	MinNodes:        2,
	MaxNodes:        40,
	ExtraEdgeFactor: 1.6,
	BackEdgeProb:    0.35,
	AllowSelfLoops:  true,
}

// Random builds a random graph where node 0 is the entry with no incoming
// edges and every node is reachable from the entry (a spanning skeleton in
// index order guarantees it).
func Random(rng *rand.Rand, c Config) *cfg.Graph {
	n := c.MinNodes
	if c.MaxNodes > c.MinNodes {
		n += rng.Intn(c.MaxNodes - c.MinNodes + 1)
	}
	g := cfg.NewGraph(n)
	// Spanning skeleton: each node i>0 gets an edge from a random earlier
	// node, so the whole graph is reachable and acyclic so far.
	for i := 1; i < n; i++ {
		g.AddEdge(rng.Intn(i), i)
	}
	// Extra edges, never into the entry.
	extra := int(float64(n) * c.ExtraEdgeFactor)
	for k := 0; k < extra; k++ {
		s := rng.Intn(n)
		var t int
		if rng.Float64() < c.BackEdgeProb {
			t = rng.Intn(n)
		} else if s+1 < n {
			t = s + 1 + rng.Intn(n-s-1)
		} else {
			t = s
		}
		if t == 0 {
			continue // keep the entry pred-free
		}
		if t == s && !c.AllowSelfLoops {
			continue
		}
		g.AddEdge(s, t)
	}
	return g
}

// RandomReducible builds a random graph that is reducible by construction:
// it is the CFG of an imaginary structured program (sequences, if/else,
// while and do-while loops, switches), and structured control flow is
// always reducible. Node 0 is the entry.
func RandomReducible(rng *rand.Rand, c Config) *cfg.Graph {
	budget := c.MinNodes
	if c.MaxNodes > c.MinNodes {
		budget += rng.Intn(c.MaxNodes - c.MinNodes + 1)
	}
	b := &structBuilder{rng: rng}
	entry := b.newNode()
	exit := b.region(entry, &budget, 0)
	// Terminal self-shape: leave exit with no successors (a return block).
	_ = exit
	g := cfg.NewGraph(len(b.succs))
	for s, ts := range b.succs {
		for _, t := range ts {
			g.AddEdge(s, t)
		}
	}
	return g
}

type structBuilder struct {
	rng   *rand.Rand
	succs [][]int
}

func (b *structBuilder) newNode() int {
	b.succs = append(b.succs, nil)
	return len(b.succs) - 1
}

func (b *structBuilder) edge(s, t int) { b.succs[s] = append(b.succs[s], t) }

// region emits a structured region starting at (and including) node cur and
// returns the node where control continues. budget is decremented as nodes
// are created.
func (b *structBuilder) region(cur int, budget *int, depth int) int {
	for *budget > 0 {
		if depth > 6 || b.rng.Intn(4) == 0 {
			// Plain statement: one more node in sequence.
			n := b.newNode()
			*budget--
			b.edge(cur, n)
			cur = n
			continue
		}
		switch b.rng.Intn(4) {
		case 0: // if/else with join
			thenN, elseN, join := b.newNode(), b.newNode(), b.newNode()
			*budget -= 3
			b.edge(cur, thenN)
			b.edge(cur, elseN)
			tEnd := b.region(thenN, budget, depth+1)
			eEnd := b.region(elseN, budget, depth+1)
			b.edge(tEnd, join)
			b.edge(eEnd, join)
			cur = join
		case 1: // while loop
			head, body, exit := b.newNode(), b.newNode(), b.newNode()
			*budget -= 3
			b.edge(cur, head)
			b.edge(head, body)
			b.edge(head, exit)
			bodyEnd := b.region(body, budget, depth+1)
			b.edge(bodyEnd, head) // back edge to the loop header
			cur = exit
		case 2: // do-while loop
			body, exit := b.newNode(), b.newNode()
			*budget -= 2
			b.edge(cur, body)
			bodyEnd := b.region(body, budget, depth+1)
			b.edge(bodyEnd, body) // back edge: bodyEnd tests and repeats
			b.edge(bodyEnd, exit)
			cur = exit
		case 3: // switch with k arms
			k := 2 + b.rng.Intn(3)
			join := b.newNode()
			*budget--
			for i := 0; i < k; i++ {
				arm := b.newNode()
				*budget--
				b.edge(cur, arm)
				armEnd := b.region(arm, budget, depth+1)
				b.edge(armEnd, join)
			}
			cur = join
		}
	}
	return cur
}

// Ladder builds a deterministic "ladder" of rungs nested loops used by the
// scaling benchmarks: a chain of simple loops, n nodes total.
func Ladder(n int) *cfg.Graph {
	if n < 2 {
		n = 2
	}
	g := cfg.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
		if i > 0 && i%2 == 0 {
			g.AddEdge(i, i-1) // small loop
		}
	}
	return g
}
