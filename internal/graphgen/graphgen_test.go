package graphgen

import (
	"math/rand"
	"testing"
)

func TestRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		g := Random(rng, Default)
		if g.N() < Default.MinNodes {
			t.Fatalf("trial %d: %d nodes", trial, g.N())
		}
		// Entry has no predecessors.
		if len(g.Preds[0]) != 0 {
			t.Fatalf("trial %d: entry has predecessors", trial)
		}
		// Every node reachable (spanning skeleton).
		seen := make([]bool, g.N())
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Succs[v] {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		if count != g.N() {
			t.Fatalf("trial %d: only %d of %d reachable", trial, count, g.N())
		}
	}
}

func TestRandomNoSelfLoopsWhenDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := Default
	cfg.AllowSelfLoops = false
	for trial := 0; trial < 100; trial++ {
		g := Random(rng, cfg)
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Succs[v] {
				if w == v {
					t.Fatalf("trial %d: self loop at %d", trial, v)
				}
			}
		}
	}
}

func TestRandomReducibleEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		g := RandomReducible(rng, Default)
		if len(g.Preds[0]) != 0 {
			t.Fatalf("trial %d: entry has predecessors", trial)
		}
		if g.N() < 2 {
			t.Fatalf("trial %d: too small (%d)", trial, g.N())
		}
	}
	// Reducibility itself is asserted in package dom's tests (needs a
	// dominator tree); here we only check structural invariants.
}

func TestLadder(t *testing.T) {
	g := Ladder(10)
	if g.N() != 10 {
		t.Fatalf("nodes = %d", g.N())
	}
	if len(g.Preds[0]) != 0 {
		t.Fatal("entry has preds")
	}
	if Ladder(0).N() != 2 {
		t.Fatal("ladder minimum size broken")
	}
	// Has at least one back edge (the small loops).
	hasBack := false
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs[v] {
			if w < v {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatal("ladder has no loops")
	}
}
