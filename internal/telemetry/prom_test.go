package telemetry

import (
	"strings"
	"testing"
)

func TestWriteHistogramExposition(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 5, 100, 100000} {
		h.Observe(v)
	}
	var b strings.Builder
	WriteHistogram(&b, "test_latency_ns", "test histogram", h.Snapshot())
	out := b.String()
	if err := CheckExposition(out); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE test_latency_ns histogram",
		`test_latency_ns_bucket{le="0"} 1`,
		`test_latency_ns_bucket{le="1"} 3`,
		`test_latency_ns_bucket{le="+Inf"} 6`,
		"test_latency_ns_sum 100107",
		"test_latency_ns_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "a counter").Add(3)
	r.Gauge("aa_depth", "a gauge").Set(-2)
	r.Histogram("mm_ns", "a histogram").Observe(42)
	// Idempotent registration returns the same instrument.
	if r.Counter("zz_total", "a counter").Load() != 3 {
		t.Fatal("re-registration lost the counter")
	}

	var b strings.Builder
	r.Write(&b)
	out := b.String()
	if err := CheckExposition(out); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, out)
	}
	// Sorted name order: aa_depth before mm_ns before zz_total.
	ia, im, iz := strings.Index(out, "aa_depth"), strings.Index(out, "mm_ns"), strings.Index(out, "zz_total")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("instruments not in sorted order:\n%s", out)
	}
	if !strings.Contains(out, "aa_depth -2") {
		t.Errorf("gauge sample missing:\n%s", out)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"undeclared sample", "foo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"bad name", "# TYPE 1foo counter\n1foo 1\n"},
		{"dup family", "# TYPE foo counter\nfoo 1\n# TYPE foo gauge\nfoo 2\n"},
		{"unknown type", "# TYPE foo zebra\nfoo 1\n"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"non-increasing le", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"},
		{"labels on counter", "# TYPE foo counter\nfoo{x=\"1\"} 1\n"},
	}
	for _, c := range cases {
		if err := CheckExposition(c.text); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", c.name, c.text)
		}
	}
}

func TestCheckExpositionAccepts(t *testing.T) {
	ok := "# HELP foo a counter\n# TYPE foo counter\nfoo 7\n" +
		"# HELP h a histogram\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 2\nh_bucket{le=\"10\"} 4\nh_bucket{le=\"+Inf\"} 5\nh_sum 40\nh_count 5\n" +
		"# HELP g a gauge\n# TYPE g gauge\ng -3\n"
	if err := CheckExposition(ok); err != nil {
		t.Fatalf("lint rejected valid exposition: %v", err)
	}
	if err := CheckExposition(""); err != nil {
		t.Fatalf("lint rejected empty exposition: %v", err)
	}
}
