// Prometheus text-exposition writer and lint helper — dependency-free on
// purpose: the repo bakes in no client library, so the engine's /metrics
// endpoint writes the text format (version 0.0.4) directly and CI lints
// the output with CheckExposition instead of a real scraper.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricNameOK reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func metricNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WriteCounter writes one counter sample with its HELP/TYPE header.
func WriteCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// WriteGauge writes one gauge sample with its HELP/TYPE header.
func WriteGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// WriteHistogram writes a histogram snapshot in Prometheus histogram
// convention: cumulative name_bucket{le="..."} series over the non-empty
// buckets (plus the mandatory le="+Inf"), then name_sum and name_count.
// Empty buckets are elided — the series stays cumulative and correct, and
// a 488-bucket histogram does not emit 488 lines per scrape.
func WriteHistogram(w io.Writer, name, help string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := BucketBounds(i)
		// le is inclusive; our buckets are [lo, hi), so the inclusive upper
		// edge is hi-1.
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, hi-1, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// Registry is a small named-instrument set for components that own their
// metrics wholesale (the bench harness's debug endpoint) rather than
// exposing a bespoke struct the way Engine.Metrics does. Registration is
// idempotent by name; Write emits every instrument in sorted name order
// so scrapes are deterministic.
type Registry struct {
	mu     sync.Mutex
	names  []string
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	help   map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		help:   make(map[string]string),
	}
}

func (r *Registry) note(name, help string) {
	if _, ok := r.help[name]; !ok {
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	r.help[name] = help
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
		r.note(name, help)
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.note(name, help)
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
		r.note(name, help)
	}
	return h
}

// Write writes every registered instrument in sorted name order.
// Instrument values are read atomically; the registry lock only guards
// the name→instrument maps.
func (r *Registry) Write(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	counts := make(map[string]*Counter, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	for _, name := range names {
		switch {
		case counts[name] != nil:
			WriteCounter(w, name, help[name], counts[name].Load())
		case gauges[name] != nil:
			WriteGauge(w, name, help[name], gauges[name].Load())
		case hists[name] != nil:
			WriteHistogram(w, name, help[name], hists[name].Snapshot())
		}
	}
}

// CheckExposition lints a Prometheus text-format payload: every sample
// belongs to a # TYPE-declared metric, names are legal, values parse,
// histograms carry cumulative nondecreasing buckets ending in le="+Inf"
// plus _sum and _count, and no metric name is declared twice. It returns
// the first violation found, or nil — the test/CI substitute for a real
// scraper's parser.
func CheckExposition(text string) error {
	type family struct {
		typ string
		// histogram bookkeeping
		lastLe  float64
		lastCum uint64
		anyLe   bool
		infSeen bool
		sum     bool
		count   bool
	}
	families := make(map[string]*family)
	var cur *family
	var curName string
	finish := func() error {
		if cur != nil && cur.typ == "histogram" {
			if !cur.infSeen {
				return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", curName)
			}
			if !cur.sum || !cur.count {
				return fmt.Errorf("histogram %s: missing _sum or _count", curName)
			}
		}
		return nil
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if !metricNameOK(name) {
				return fmt.Errorf("line %d: bad metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := families[name]; dup {
				return fmt.Errorf("line %d: metric %s declared twice", ln+1, name)
			}
			if err := finish(); err != nil {
				return err
			}
			cur = &family{typ: typ}
			curName = name
			families[name] = cur
			continue
		}
		if strings.HasPrefix(line, "#") {
			return fmt.Errorf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: malformed sample %q", ln+1, line)
		}
		series, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", ln+1, val, err)
		}
		name := series
		labels := ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return fmt.Errorf("line %d: unterminated label set %q", ln+1, series)
			}
			name, labels = series[:i], series[i+1:len(series)-1]
		}
		if !metricNameOK(name) {
			return fmt.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		base := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		f, ok := families[base]
		if !ok {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", ln+1, name)
		}
		if f.typ != "histogram" {
			if suffix != "" || labels != "" {
				return fmt.Errorf("line %d: unexpected labels/suffix on %s %s", ln+1, f.typ, name)
			}
			continue
		}
		switch suffix {
		case "_sum":
			f.sum = true
		case "_count":
			f.count = true
		case "_bucket":
			const lePrefix = `le="`
			if !strings.HasPrefix(labels, lePrefix) || !strings.HasSuffix(labels, `"`) {
				return fmt.Errorf("line %d: histogram bucket without le label: %q", ln+1, line)
			}
			le := labels[len(lePrefix) : len(labels)-1]
			cum, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: bucket value %q not a count: %v", ln+1, val, err)
			}
			if cum < f.lastCum {
				return fmt.Errorf("line %d: histogram %s buckets not cumulative (%d after %d)", ln+1, base, cum, f.lastCum)
			}
			if le == "+Inf" {
				f.infSeen = true
				f.lastCum = cum
				break
			}
			if f.infSeen {
				return fmt.Errorf("line %d: histogram %s bucket after le=\"+Inf\"", ln+1, base)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad le bound %q: %v", ln+1, le, err)
			}
			if f.anyLe && bound <= f.lastLe {
				return fmt.Errorf("line %d: histogram %s le bounds not increasing (%v after %v)", ln+1, base, bound, f.lastLe)
			}
			f.anyLe = true
			f.lastLe = bound
			f.lastCum = cum
		default:
			return fmt.Errorf("line %d: bare sample %s for histogram %s", ln+1, name, base)
		}
	}
	return finish()
}
