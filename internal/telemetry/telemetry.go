// Package telemetry holds the lock-free instruments the engine's
// observability layer is built from: atomic counters and gauges, a
// log-bucketed latency histogram whose hot path (Observe) performs no
// allocation and takes no lock, a Tracer hook interface the engine fires
// its lifecycle events through, and a dependency-free Prometheus
// text-exposition writer (prom.go).
//
// The design constraint throughout is the engine's zero-allocation query
// contract: instruments sit directly on hot paths (per-query counters,
// per-build latency observations), so every mutating operation is a single
// atomic RMW on pre-sized storage. Reading is the slow path: Snapshot
// copies the bucket array once and all derived statistics (quantiles,
// mean, merge) work on the copy.
//
// Memory ordering: all fields are updated with atomic adds and read with
// atomic loads, so a snapshot taken concurrently with writers is a
// per-word-consistent view — each bucket value is a real count that was
// current at some moment during the copy, but buckets copied earlier may
// miss observations that buckets copied later include. Derived statistics
// therefore treat the bucket array itself as the source of truth (Count is
// the sum over the copied buckets, never a separately-read counter), which
// keeps every snapshot internally consistent: quantile ranks always refer
// to observations actually present in the copy.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d must be >= 0 for the Prometheus
// exposition to stay well formed; nothing enforces it).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, resident count).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: log-linear (HDR-style). Values below subCount
// get one bucket each (exact); above that, every power-of-two octave
// [2^e, 2^(e+1)) is split into subCount equal sub-buckets, so the relative
// quantile error is bounded by 1/subCount = 12.5% while the whole int64
// range fits in a fixed array of numBuckets counters (~3.8 KiB of
// uint64s) — mergeable by element-wise addition, scrape-able without
// stopping writers.
const (
	subBits  = 3
	subCount = 1 << subBits // sub-buckets per octave; also the exact range

	// Octaves above the exact range: exponents subBits..62 (int64 max has
	// exponent 62), subCount sub-buckets each, plus the exact buckets.
	numBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a non-negative value to its bucket. Values < subCount
// map to their own width-1 bucket; larger values index by (octave,
// sub-bucket). Negative values clamp to bucket 0.
func bucketIndex(v int64) int {
	if v < subCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // floor(log2 v) >= subBits
	sub := int(v>>(uint(exp)-subBits)) & (subCount - 1)
	return subCount + (exp-subBits)*subCount + sub
}

// BucketBounds returns bucket i's half-open value range [lo, hi). The
// final bucket's upper edge saturates at math.MaxInt64, where it is
// inclusive (the bucket holds every value up to and including MaxInt64).
func BucketBounds(i int) (lo, hi int64) {
	if i < subCount {
		return int64(i), int64(i) + 1
	}
	k := i - subCount
	exp := uint(subBits + k/subCount)
	sub := int64(k % subCount)
	width := int64(1) << (exp - subBits)
	lo = int64(1)<<exp + sub*width
	hi = lo + width
	if hi < lo { // 2^63 overflowed: the topmost bucket
		hi = math.MaxInt64
	}
	return lo, hi
}

// Histogram is a fixed-size log-bucketed latency histogram. Observe is
// lock-free and allocation-free; Snapshot copies the buckets for analysis.
// The zero value is ready to use. Values are dimensionless int64s — by
// convention nanoseconds on every engine latency series.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Int64
}

// Observe records one value. Negative values clamp to zero (and
// contribute nothing to Sum), so a misbehaving clock cannot corrupt the
// distribution.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in nanoseconds — the
// one-liner for latency instrumentation sites.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// Snapshot captures the histogram's current state for analysis. The copy
// is per-bucket atomic (see the package comment on memory ordering);
// Count is derived from the copied buckets so the snapshot is always
// internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]uint64, numBuckets), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: a plain value
// with no atomics, safe to marshal, compare, and merge. The zero value is
// a valid empty snapshot.
type HistogramSnapshot struct {
	// Count is the number of observations (the sum over Buckets).
	Count uint64
	// Sum totals the observed values (clamped at zero per observation).
	Sum int64
	// Buckets holds per-bucket observation counts; index i covers
	// BucketBounds(i). Nil for an empty snapshot.
	Buckets []uint64
}

// Merge returns the element-wise sum of s and o — the snapshot that a
// single histogram observing both input streams would have produced.
// Merging is commutative and associative, so per-shard or per-process
// histograms aggregate in any order.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Buckets == nil {
		s.Buckets = make([]uint64, numBuckets)
	} else {
		s.Buckets = append([]uint64(nil), s.Buckets...)
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return s
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1) of
// the observed values: the inclusive upper edge of the bucket holding the
// ceil(q*Count)-th smallest observation. Values below subCount are exact;
// above, the bound overshoots by at most one sub-bucket width (12.5%
// relative). Returns 0 for an empty snapshot. Quantile is nondecreasing
// in q.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			_, hi := BucketBounds(i)
			return hi - 1
		}
	}
	_, hi := BucketBounds(len(s.Buckets) - 1)
	return hi - 1
}

// P50 is Quantile(0.50): the median latency bound.
func (s HistogramSnapshot) P50() int64 { return s.Quantile(0.50) }

// P90 is Quantile(0.90).
func (s HistogramSnapshot) P90() int64 { return s.Quantile(0.90) }

// P99 is Quantile(0.99): the tail the paper's latency-shape claim is
// about.
func (s HistogramSnapshot) P99() int64 { return s.Quantile(0.99) }

// P999 is Quantile(0.999).
func (s HistogramSnapshot) P999() int64 { return s.Quantile(0.999) }

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Tracer is the engine's lifecycle hook interface: one callback per event
// the engine, its rebuild pool, and its snapshot tier emit. Callbacks run
// synchronously on the emitting goroutine — often inside the engine's hot
// paths — so implementations must be fast, must not block, and must not
// call back into the engine (shard locks may be held by the caller's
// frame). All callbacks may be invoked concurrently.
//
// Embed NopTracer to implement only the events of interest and stay
// source-compatible when new callbacks are added.
type Tracer interface {
	// BuildStart fires when an analysis build begins (first build, eviction
	// refill, staleness rebuild — query path or rebuild worker alike).
	BuildStart(fn string)
	// BuildEnd fires when the build finishes; err is nil on success.
	BuildEnd(fn string, d time.Duration, err error)
	// QueryBatch fires once per batched query execution with the batch
	// size and the time spent answering it.
	QueryBatch(fn string, queries int, d time.Duration)
	// SnapshotLoad fires after a snapshot-tier load attempt; hit reports
	// whether a validated snapshot served the build.
	SnapshotLoad(fn string, hit bool, d time.Duration)
	// SnapshotSave fires after a snapshot write-back attempt (possibly on
	// a rebuild-pool worker, long after the build).
	SnapshotSave(ok bool, d time.Duration)
	// QuarantineEnter fires when a panicking build quarantines a function.
	QuarantineEnter(fn string)
	// QuarantineClear fires when a quarantine ends — a successful retry,
	// or an edit that invalidated the recorded failure.
	QuarantineClear(fn string)
	// BreakerTransition fires on snapshot-store circuit-breaker state
	// changes ("closed", "open", "half-open").
	BreakerTransition(from, to string)
	// RebuildEnqueue fires when MarkDirty/Edit queues a function for
	// background re-analysis.
	RebuildEnqueue(fn string)
	// RebuildDiscard fires when queued or in-flight background work is
	// thrown away: the function was evicted or invalidated while queued,
	// the build was superseded mid-flight, an edit landed mid-build, or
	// the pool closed with the entry still pending.
	RebuildDiscard(fn string)
}

// NopTracer is a Tracer that ignores every event; embed it in partial
// implementations. The engine substitutes it for a nil EngineConfig.Tracer
// so instrumentation sites never nil-check.
type NopTracer struct{}

// BuildStart implements Tracer.
func (NopTracer) BuildStart(string) {}

// BuildEnd implements Tracer.
func (NopTracer) BuildEnd(string, time.Duration, error) {}

// QueryBatch implements Tracer.
func (NopTracer) QueryBatch(string, int, time.Duration) {}

// SnapshotLoad implements Tracer.
func (NopTracer) SnapshotLoad(string, bool, time.Duration) {}

// SnapshotSave implements Tracer.
func (NopTracer) SnapshotSave(bool, time.Duration) {}

// QuarantineEnter implements Tracer.
func (NopTracer) QuarantineEnter(string) {}

// QuarantineClear implements Tracer.
func (NopTracer) QuarantineClear(string) {}

// BreakerTransition implements Tracer.
func (NopTracer) BreakerTransition(string, string) {}

// RebuildEnqueue implements Tracer.
func (NopTracer) RebuildEnqueue(string) {}

// RebuildDiscard implements Tracer.
func (NopTracer) RebuildDiscard(string) {}

// NumBuckets reports the fixed bucket count of every Histogram — exposed
// for tests and exporters that iterate bucket bounds.
func NumBuckets() int { return numBuckets }
