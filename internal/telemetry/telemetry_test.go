package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundsExact: every value below subCount owns a width-1 bucket,
// so small latencies (and all count-like observations) are exact.
func TestBucketBoundsExact(t *testing.T) {
	for v := int64(0); v < subCount; v++ {
		i := bucketIndex(v)
		lo, hi := BucketBounds(i)
		if lo != v || hi != v+1 {
			t.Fatalf("value %d: bucket %d bounds [%d,%d), want exact [%d,%d)", v, i, lo, hi, v, v+1)
		}
	}
}

// TestBucketIndexInBounds: every value lands inside its bucket's bounds,
// buckets partition the value space in order, and the index is monotone.
func TestBucketIndexInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	check := func(v int64) {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("value %d: bucket %d out of range [0,%d)", v, i, numBuckets)
		}
		lo, hi := BucketBounds(i)
		// The topmost bucket's saturated edge is inclusive.
		if v < lo || (v >= hi && !(hi == math.MaxInt64 && v == hi)) {
			t.Fatalf("value %d: outside its bucket %d bounds [%d,%d)", v, i, lo, hi)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for n := 0; n < 10000; n++ {
		check(rng.Int63())
	}
	check(int64(1) << 62)
	check(1<<63 - 1)

	// Bucket edges tile the space contiguously.
	for i := 0; i < numBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("buckets %d and %d do not tile: %d vs %d", i, i+1, hi, lo)
		}
	}

	// Monotone: larger values never map to smaller buckets.
	prev := bucketIndex(0)
	for v := int64(1); v < 1<<20; v += 7 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

// TestQuantileMonotone: for any observation mix, Quantile is nondecreasing
// in q, and every quantile is an upper bound >= some observed value's
// bucket floor.
func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Mix exact small values with heavy-tailed large ones.
			if rng.Intn(2) == 0 {
				h.Observe(int64(rng.Intn(8)))
			} else {
				h.Observe(rng.Int63n(1 << uint(3+rng.Intn(40))))
			}
		}
		s := h.Snapshot()
		if s.Count != uint64(n) {
			t.Fatalf("trial %d: count %d, want %d", trial, s.Count, n)
		}
		prev := int64(-1)
		for q := 0.01; q <= 1.0; q += 0.01 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%v)=%d < Quantile(prev)=%d", trial, q, v, prev)
			}
			prev = v
		}
		if s.Quantile(1.0) < s.Quantile(0.999) || s.Quantile(0.999) < s.P99() ||
			s.P99() < s.P90() || s.P90() < s.P50() {
			t.Fatalf("trial %d: named quantiles out of order", trial)
		}
	}
}

// TestQuantileExactSmall: with only width-1 buckets populated, quantiles
// are exact order statistics.
func TestQuantileExactSmall(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 3, 3, 7} { // 8 observations
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q    float64
		want int64
	}{
		{0.125, 0}, {0.25, 1}, {0.375, 1}, {0.5, 2},
		{0.625, 3}, {0.875, 3}, {1.0, 7},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if s.Sum != 20 {
		t.Errorf("Sum = %d, want 20", s.Sum)
	}
}

// TestQuantileErrorBound: the quantile upper bound overshoots the true
// order statistic by at most one sub-bucket width (12.5% relative).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var h Histogram
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 30)
		h.Observe(vals[i])
	}
	s := h.Snapshot()
	// Exact order statistic for p99.
	sorted := append([]int64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rank := int(0.99 * float64(len(sorted)))
	exact := sorted[rank-1]
	got := s.Quantile(0.99)
	if got < exact {
		t.Fatalf("p99 bound %d below exact order statistic %d", got, exact)
	}
	if float64(got) > float64(exact)*1.125+1 {
		t.Fatalf("p99 bound %d overshoots exact %d by more than 12.5%%", got, exact)
	}
}

// TestMergeAssociative: Merge is associative and commutative, and merging
// matches observing the union stream.
func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mk := func(n int) (*Histogram, []int64) {
		h := &Histogram{}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1 << 20)
			h.Observe(vals[i])
		}
		return h, vals
	}
	ha, va := mk(100)
	hb, vb := mk(200)
	hc, vc := mk(50)
	a, b, c := ha.Snapshot(), hb.Snapshot(), hc.Snapshot()

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	comm := c.Merge(a).Merge(b)

	var union Histogram
	for _, vs := range [][]int64{va, vb, vc} {
		for _, v := range vs {
			union.Observe(v)
		}
	}
	want := union.Snapshot()

	for name, got := range map[string]HistogramSnapshot{"left": left, "right": right, "comm": comm} {
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("%s: count/sum %d/%d, want %d/%d", name, got.Count, got.Sum, want.Count, want.Sum)
		}
		for i := range want.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("%s: bucket %d = %d, want %d", name, i, got.Buckets[i], want.Buckets[i])
			}
		}
	}

	// Merge must not mutate its receiver or argument.
	if a.Count != 100 || b.Count != 200 || c.Count != 50 {
		t.Fatalf("Merge mutated an input snapshot: %d/%d/%d", a.Count, b.Count, c.Count)
	}

	// Merging into a zero snapshot is identity.
	var zero HistogramSnapshot
	id := zero.Merge(a)
	if id.Count != a.Count || id.Sum != a.Sum {
		t.Fatalf("zero.Merge(a) = %d/%d, want %d/%d", id.Count, id.Sum, a.Count, a.Sum)
	}
}

// TestEmptySnapshot: the zero snapshot and an unobserved histogram answer
// safely.
func TestEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	var zero HistogramSnapshot
	if zero.Quantile(0.5) != 0 || zero.Mean() != 0 {
		t.Fatal("zero-value snapshot must answer 0")
	}
}

// TestObserveNegative: negative observations clamp to bucket 0 and do not
// corrupt Sum.
func TestObserveNegative(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(3)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 3 {
		t.Fatalf("count/sum = %d/%d, want 2/3", s.Count, s.Sum)
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("negative observation not clamped to bucket 0: %v", s.Buckets[:4])
	}
}

// TestObserveSince smoke-checks the time helper.
func TestObserveSince(t *testing.T) {
	var h Histogram
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < int64(time.Millisecond) {
		t.Fatalf("ObserveSince recorded %d/%d", s.Count, s.Sum)
	}
}

// TestConcurrentObserveSnapshot hammers a histogram, counters and gauges
// from writer goroutines while readers snapshot continuously — the
// scrape-under-load race test (run with -race). Every snapshot must be
// internally consistent: Count equals the bucket sum by construction, and
// the final state must account for every observation.
func TestConcurrentObserveSnapshot(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	var h Histogram
	var c Counter
	var g Gauge

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := h.Snapshot()
				var sum uint64
				for _, n := range s.Buckets {
					sum += n
				}
				if sum != s.Count {
					t.Errorf("snapshot count %d != bucket sum %d", s.Count, sum)
					return
				}
				s.Quantile(0.99)
				c.Load()
				g.Load()
			}
		}()
	}

	var writersWG sync.WaitGroup
	writersWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(rng.Int63n(1 << 22))
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(int64(w + 1))
	}
	writersWG.Wait()
	close(done)
	readers.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count %d, want %d", s.Count, writers*perWriter)
	}
	if c.Load() != writers*perWriter {
		t.Fatalf("counter %d, want %d", c.Load(), writers*perWriter)
	}
	if g.Load() != 0 {
		t.Fatalf("gauge %d, want 0", g.Load())
	}
}

// TestObserveZeroAlloc pins the hot path: Observe and the counter/gauge
// adds must not allocate.
func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		c.Inc()
		g.Set(7)
	}); n != 0 {
		t.Fatalf("hot-path instruments allocate %v allocs/op, want 0", n)
	}
}

// TestNopTracer exercises every no-op callback so the interface stays
// implemented as it grows.
func TestNopTracer(t *testing.T) {
	var tr Tracer = NopTracer{}
	tr.BuildStart("f")
	tr.BuildEnd("f", time.Millisecond, nil)
	tr.QueryBatch("f", 3, time.Microsecond)
	tr.SnapshotLoad("f", true, 0)
	tr.SnapshotSave(false, 0)
	tr.QuarantineEnter("f")
	tr.QuarantineClear("f")
	tr.BreakerTransition("closed", "open")
	tr.RebuildEnqueue("f")
	tr.RebuildDiscard("f")
}
