package core

import (
	"testing"

	"fastliveness/internal/cfg"
)

func TestSingleNodeGraph(t *testing.T) {
	g := cfg.NewGraph(1)
	for _, o := range allOptions() {
		c := New(g, o)
		if c.IsLiveIn(0, []int{0}, 0) {
			t.Fatal("a variable is never live-in at its own definition")
		}
		if c.IsLiveOut(0, []int{0}, 0) {
			t.Fatal("use only at the def node: not live-out")
		}
		if !c.Reducible() {
			t.Fatal("single node is trivially reducible")
		}
	}
}

func TestSingleNodeSelfLoop(t *testing.T) {
	// A self loop on a non-entry node; the entry itself must stay
	// pred-free per the paper's CFG definition.
	g := cfg.NewGraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	for _, o := range allOptions() {
		c := New(g, o)
		// def at 0, use at 1: the self loop makes it live-out at 1.
		if !c.IsLiveOut(0, []int{1}, 1) {
			t.Fatalf("self loop live-out failed (opts %+v)", o)
		}
		// def at 1 (the looping node), use at 1 only: live-out at 1?
		// Definition 3: live-in at a successor; successor is 1 itself and
		// live-in at def block is false ⇒ not live-out.
		if c.IsLiveOut(1, []int{1}, 1) {
			t.Fatalf("use only at def: not live-out, even around a self loop (opts %+v)", o)
		}
	}
}

func TestLinearChain(t *testing.T) {
	const n = 50
	g := cfg.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	c := New(g, Options{})
	// def at 10, use at 40: live-in exactly on (10, 40].
	for q := 0; q < n; q++ {
		want := q > 10 && q <= 40
		if got := c.IsLiveIn(10, []int{40}, q); got != want {
			t.Fatalf("chain IsLiveIn at %d = %v, want %v", q, got, want)
		}
		wantOut := q >= 10 && q < 40
		if got := c.IsLiveOut(10, []int{40}, q); got != wantOut {
			t.Fatalf("chain IsLiveOut at %d = %v, want %v", q, got, wantOut)
		}
	}
	// On a back-edge-free graph every T set is the singleton {v}.
	for v := 0; v < n; v++ {
		ts := c.TSetNodes(v)
		if len(ts) != 1 || ts[0] != v {
			t.Fatalf("T_%d = %v, want {%d}", v, ts, v)
		}
	}
}

func TestEmptyUses(t *testing.T) {
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := New(g, Options{})
	if c.IsLiveIn(0, nil, 1) || c.IsLiveOut(0, nil, 0) {
		t.Fatal("a variable without uses is never live")
	}
}

func TestUsesOutOfRangeIgnored(t *testing.T) {
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := New(g, Options{})
	if c.IsLiveIn(0, []int{-1, 99}, 1) {
		t.Fatal("out-of-range uses must be ignored")
	}
	if !c.IsLiveIn(0, []int{-1, 2, 99}, 1) {
		t.Fatal("valid use among garbage must still be found")
	}
}
