package core

import (
	"fmt"

	"fastliveness/internal/bitset"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
)

// Strategy selects how the T_v sets are precomputed.
type Strategy uint8

const (
	// StrategyExact evaluates Definition 5 / Equation 1 for every node in
	// increasing DFS preorder (well-founded by Theorem 3). It yields
	// exactly the paper's T_v sets.
	StrategyExact Strategy = iota
	// StrategyPropagate is the practical scheme of §5.2: Equation 1 for
	// back-edge targets only, union into back-edge sources, one postorder
	// propagation pass over the reduced graph, then add v to each T_v.
	//
	// Read literally, the propagation drops Definition 5's "t ∉ R_v" filter
	// for nodes that are not back-edge targets, which can produce strict
	// supersets of the exact T_v — and extra candidates break Theorem 2's
	// first-candidate-decides rule on reducible CFGs. We therefore finish
	// with the filter the definition implies, subtracting R_v \ {v} from
	// each T_v. The result is a subset of the exact sets that answers every
	// query identically: any candidate t ∈ R_q is redundant, because a use
	// in R_t ⊆ R_q is already witnessed by the mandatory candidate q
	// itself. The test suite checks both the subset relation and answer
	// equality against brute force.
	StrategyPropagate
)

// String names the strategy for logs and benchmarks.
func (s Strategy) String() string {
	switch s {
	case StrategyExact:
		return "exact"
	case StrategyPropagate:
		return "propagate"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Options tune the checker. The zero value is the paper's configuration
// (propagate strategy, subtree skipping on, reducible fast path on); the
// ablation benchmarks flip individual switches off.
type Options struct {
	Strategy Strategy
	// NoSkipSubtrees disables the §5.1 optimization of skipping a tested
	// node's whole dominance subtree during the T_q walk.
	NoSkipSubtrees bool
	// NoReducibleFastPath disables the Theorem 2 single-test fast path on
	// reducible CFGs.
	NoReducibleFastPath bool
	// SortedT stores the T_v sets as sorted arrays instead of bitsets, the
	// memory-saving variant the paper sketches in §6.1 ("future
	// implementations could use sorted arrays instead of bitsets … and
	// speed up the loop iteration by abandoning bitset_next_set").
	SortedT bool
}

// Checker answers live-in/live-out queries after a CFG-only precomputation.
type Checker struct {
	g    *cfg.Graph
	dfs  *cfg.DFS
	tree *dom.Tree
	opts Options

	// R and T indexed by dominance-preorder number; set bits are dominance
	// preorder numbers too.
	r []*bitset.Set
	t []*bitset.Set
	// tSorted mirrors t as sorted arrays when opts.SortedT is set.
	tSorted [][]int32
	// numMax[n] = MaxNum of the node numbered n (saves an Order lookup in
	// the hot loop).
	numMax []int
	// backTarget[n] reports whether the node numbered n is a back-edge
	// target (needed by the live-out check, Algorithm 2 line 8).
	backTarget []bool

	reducible bool
}

// New runs the precomputation for g. It computes the DFS and dominator tree
// itself; use NewFrom to share existing analyses.
func New(g *cfg.Graph, opts Options) *Checker {
	d := cfg.NewDFS(g)
	return NewFrom(g, d, dom.Iterative(g, d), opts)
}

// NewFrom runs the precomputation against existing DFS and dominator-tree
// analyses of g.
func NewFrom(g *cfg.Graph, d *cfg.DFS, tree *dom.Tree, opts Options) *Checker {
	c := &Checker{g: g, dfs: d, tree: tree, opts: opts}
	c.reducible = dom.IsReducible(d, tree)
	c.precomputeR()
	switch opts.Strategy {
	case StrategyExact:
		c.precomputeTExact()
	case StrategyPropagate:
		c.precomputeTPropagate()
	default:
		panic("core: unknown strategy")
	}
	n := d.NumReachable
	c.numMax = make([]int, n)
	for num, v := range tree.Order {
		c.numMax[num] = tree.MaxNum[v]
	}
	c.backTarget = make([]bool, n)
	for _, e := range d.BackEdges {
		c.backTarget[tree.Num[e.T]] = true
	}
	if opts.SortedT {
		c.tSorted = make([][]int32, n)
		for i, s := range c.t {
			elems := s.Elements()
			arr := make([]int32, len(elems))
			for j, e := range elems {
				arr[j] = int32(e)
			}
			c.tSorted[i] = arr
		}
		c.t = nil
	}
	return c
}

// precomputeR builds the reduced-reachability closure in one pass over the
// nodes in increasing DFS postorder: every reduced edge (v,w) satisfies
// post(w) < post(v), so all successors are final when v is processed.
func (c *Checker) precomputeR() {
	n := c.dfs.NumReachable
	c.r = make([]*bitset.Set, n)
	for _, v := range c.dfs.PostOrder {
		rv := bitset.New(n)
		rv.Add(c.tree.Num[v])
		c.dfs.ReducedSuccs(v, func(w int) {
			rv.Union(c.r[c.tree.Num[w]])
		})
		c.r[c.tree.Num[v]] = rv
	}
}

// precomputeTExact evaluates Equation 1 for every node, iterating in
// increasing DFS preorder; Theorem 3 guarantees each T↑ member was already
// finished.
func (c *Checker) precomputeTExact() {
	n := c.dfs.NumReachable
	c.t = make([]*bitset.Set, n)
	for _, v := range c.dfs.PreOrder {
		vn := c.tree.Num[v]
		tv := bitset.New(n)
		tv.Add(vn)
		rv := c.r[vn]
		for _, e := range c.dfs.BackEdges {
			sn, tn := c.tree.Num[e.S], c.tree.Num[e.T]
			if rv.Has(sn) && !rv.Has(tn) {
				tt := c.t[tn]
				if tt == nil {
					panic("core: Theorem 3 ordering violated")
				}
				tv.Union(tt)
			}
		}
		c.t[vn] = tv
	}
}

// precomputeTPropagate implements the three-pass scheme of §5.2.
func (c *Checker) precomputeTPropagate() {
	n := c.dfs.NumReachable
	tree := c.tree

	// Pass 1: Equation 1 for back-edge targets only, in DFS preorder.
	targetT := make([]*bitset.Set, n) // by dom num, nil for non-targets
	isTarget := make([]bool, n)
	for _, e := range c.dfs.BackEdges {
		isTarget[tree.Num[e.T]] = true
	}
	for _, v := range c.dfs.PreOrder {
		vn := tree.Num[v]
		if !isTarget[vn] {
			continue
		}
		tv := bitset.New(n)
		tv.Add(vn)
		rv := c.r[vn]
		for _, e := range c.dfs.BackEdges {
			sn, tn := tree.Num[e.S], tree.Num[e.T]
			if rv.Has(sn) && !rv.Has(tn) {
				tt := targetT[tn]
				if tt == nil {
					panic("core: Theorem 3 ordering violated (targets)")
				}
				tv.Union(tt)
			}
		}
		targetT[vn] = tv
	}

	// Pass 2: union the targets' sets into each back-edge source.
	u := make([]*bitset.Set, n)
	for _, e := range c.dfs.BackEdges {
		sn, tn := tree.Num[e.S], tree.Num[e.T]
		if u[sn] == nil {
			u[sn] = bitset.New(n)
		}
		u[sn].Union(targetT[tn])
	}

	// Pass 3: propagate the source sets through the reduced graph in
	// increasing postorder (successors first). The sets being merged
	// deliberately exclude the nodes themselves — X_v must collect the
	// union of U_s over all s ∈ R_v, nothing more.
	c.t = make([]*bitset.Set, n)
	for _, v := range c.dfs.PostOrder {
		vn := tree.Num[v]
		tv := u[vn]
		if tv == nil {
			tv = bitset.New(n)
		}
		c.dfs.ReducedSuccs(v, func(w int) {
			tv.Union(c.t[tree.Num[w]])
		})
		c.t[vn] = tv
	}
	// Pass 4: apply Definition 5's t ∉ R_v filter (see the
	// StrategyPropagate doc comment), then add v itself.
	for vn := 0; vn < n; vn++ {
		c.t[vn].Subtract(c.r[vn])
		c.t[vn].Add(vn)
	}
}

// reachableNum returns the dominance preorder number of v, or -1 when v is
// outside the analyzed (entry-reachable) region.
func (c *Checker) reachableNum(v int) int {
	if v < 0 || v >= len(c.tree.Num) {
		return -1
	}
	return c.tree.Num[v]
}

// IsLiveIn implements Algorithms 1 and 3: is the variable defined at node
// def, with the given use nodes (per the paper's Definition 1 placement,
// φ uses already attributed to predecessor blocks), live-in at node q?
//
// The variable must satisfy the strict-SSA dominance property: def
// dominates every use. Nodes unreachable from the entry never carry
// liveness.
func (c *Checker) IsLiveIn(def int, uses []int, q int) bool {
	defN := c.reachableNum(def)
	qN := c.reachableNum(q)
	if defN < 0 || qN < 0 {
		return false
	}
	maxDom := c.tree.MaxNum[def]
	// Guard: q must be strictly dominated by def (Algorithm 3's
	// "q <= def || max_dom < q" test).
	if qN <= defN || maxDom < qN {
		return false
	}
	tq := c.t
	if c.opts.SortedT {
		return c.liveInSortedT(defN, maxDom, qN, uses)
	}
	t := tq[qN].NextSet(defN + 1)
	for t != bitset.None && t <= maxDom {
		if c.anyUseReachableFrom(t, uses) {
			return true
		}
		if c.reducible && !c.opts.NoReducibleFastPath {
			// Theorem 2: on reducible CFGs the first (most dominating)
			// candidate decides the query.
			return false
		}
		next := t + 1
		if !c.opts.NoSkipSubtrees {
			// §5.1: everything in t's dominance subtree has R ⊆ R_t.
			next = c.numMax[t] + 1
		}
		t = tq[qN].NextSet(next)
	}
	return false
}

// anyUseReachableFrom reports whether any use node is reduced-reachable
// from the node numbered tn — the paper's "R_t ∩ uses(a) ≠ ∅" realized as a
// walk over the def-use chain (Algorithm 3's inner loop).
func (c *Checker) anyUseReachableFrom(tn int, uses []int) bool {
	rt := c.r[tn]
	for _, u := range uses {
		un := c.reachableNum(u)
		if un >= 0 && rt.Has(un) {
			return true
		}
	}
	return false
}

// liveInSortedT is the §6.1 sorted-array variant of the T_q walk.
func (c *Checker) liveInSortedT(defN, maxDom, qN int, uses []int) bool {
	arr := c.tSorted[qN]
	// Binary search for the first element > defN.
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(arr[mid]) <= defN {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(arr) && int(arr[i]) <= maxDom; i++ {
		t := int(arr[i])
		if c.anyUseReachableFrom(t, uses) {
			return true
		}
		if c.reducible && !c.opts.NoReducibleFastPath {
			return false
		}
		if !c.opts.NoSkipSubtrees {
			skipTo := c.numMax[t]
			for i+1 < len(arr) && int(arr[i+1]) <= skipTo {
				i++
			}
		}
	}
	return false
}

// IsLiveOut implements Algorithm 2. def, uses and q are as in IsLiveIn.
func (c *Checker) IsLiveOut(def int, uses []int, q int) bool {
	defN := c.reachableNum(def)
	qN := c.reachableNum(q)
	if defN < 0 || qN < 0 {
		return false
	}
	if def == q {
		// Line 2–3: live-out at the defining node iff some use lies
		// elsewhere.
		for _, u := range uses {
			if u != q && c.reachableNum(u) >= 0 {
				return true
			}
		}
		return false
	}
	maxDom := c.tree.MaxNum[def]
	if qN <= defN || maxDom < qN {
		return false // def must strictly dominate q (line 4)
	}
	var t int
	var arr []int32
	var ai int
	if c.opts.SortedT {
		arr = c.tSorted[qN]
		ai = 0
		for ai < len(arr) && int(arr[ai]) <= defN {
			ai++
		}
		if ai < len(arr) {
			t = int(arr[ai])
		} else {
			t = bitset.None
		}
	} else {
		t = c.t[qN].NextSet(defN + 1)
	}
	for t != bitset.None && t <= maxDom {
		// Line 7–9: when t = q and q is not a back-edge target, a use at q
		// itself only witnesses the trivial path and must be ignored.
		dropQ := t == qN && !c.backTarget[qN]
		rt := c.r[t]
		for _, u := range uses {
			un := c.reachableNum(u)
			if un < 0 || !rt.Has(un) {
				continue
			}
			if dropQ && u == q {
				continue
			}
			return true
		}
		if c.reducible && !c.opts.NoReducibleFastPath {
			// Theorem 2 applies to the non-trivial-path variant as well:
			// the most dominating t has the largest R set, and the dropped
			// use q is dropped only when t = q, the least dominating
			// possibility, which then is the only candidate.
			if !(dropQ) {
				return false
			}
			// If we dropped q we must still consider more dominating
			// candidates… but t = q is the *least* dominating element, so
			// there are none beyond it; continue the loop for soundness on
			// equal-R edge cases.
		}
		next := t + 1
		if !c.opts.NoSkipSubtrees {
			next = c.numMax[t] + 1
		}
		if c.opts.SortedT {
			for ai < len(arr) && int(arr[ai]) < next {
				ai++
			}
			if ai < len(arr) {
				t = int(arr[ai])
			} else {
				t = bitset.None
			}
		} else {
			t = c.t[qN].NextSet(next)
		}
	}
	return false
}

// Reducible reports whether the analyzed CFG is reducible.
func (c *Checker) Reducible() bool { return c.reducible }

// RSet returns R of node v (nil for unreachable v). Exposed for tests and
// the worked Figure 3 example; treat as read-only.
func (c *Checker) RSet(v int) *bitset.Set {
	if n := c.reachableNum(v); n >= 0 {
		return c.r[n]
	}
	return nil
}

// TSetNodes returns the node IDs in T_v, in dominance-preorder order.
func (c *Checker) TSetNodes(v int) []int {
	n := c.reachableNum(v)
	if n < 0 {
		return nil
	}
	var nums []int
	if c.opts.SortedT {
		for _, e := range c.tSorted[n] {
			nums = append(nums, int(e))
		}
	} else {
		nums = c.t[n].Elements()
	}
	out := make([]int, len(nums))
	for i, num := range nums {
		out[i] = c.tree.Order[num]
	}
	return out
}

// Tree returns the dominator tree the checker was built with.
func (c *Checker) Tree() *dom.Tree { return c.tree }

// DFS returns the depth-first search the checker was built with.
func (c *Checker) DFS() *cfg.DFS { return c.dfs }

// MemoryBytes reports the payload footprint of the precomputed sets; the
// harness uses it to reproduce the §6.1 break-even discussion and the §8
// quadratic-growth series.
func (c *Checker) MemoryBytes() int {
	total := 0
	for _, s := range c.r {
		total += s.WordBytes()
	}
	for _, s := range c.t {
		total += s.WordBytes()
	}
	for _, a := range c.tSorted {
		total += 4 * len(a)
	}
	return total
}
