package core

import (
	"fmt"

	"fastliveness/internal/bitset"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
)

// Strategy selects how the T_v sets are precomputed.
type Strategy uint8

const (
	// StrategyExact evaluates Definition 5 / Equation 1 for every node in
	// increasing DFS preorder (well-founded by Theorem 3). It yields
	// exactly the paper's T_v sets.
	StrategyExact Strategy = iota
	// StrategyPropagate is the practical scheme of §5.2: Equation 1 for
	// back-edge targets only, union into back-edge sources, one postorder
	// propagation pass over the reduced graph, then add v to each T_v.
	//
	// Read literally, the propagation drops Definition 5's "t ∉ R_v" filter
	// for nodes that are not back-edge targets, which can produce strict
	// supersets of the exact T_v — and extra candidates break Theorem 2's
	// first-candidate-decides rule on reducible CFGs. We therefore finish
	// with the filter the definition implies, subtracting R_v \ {v} from
	// each T_v. The result is a subset of the exact sets that answers every
	// query identically: any candidate t ∈ R_q is redundant, because a use
	// in R_t ⊆ R_q is already witnessed by the mandatory candidate q
	// itself. The test suite checks both the subset relation and answer
	// equality against brute force.
	StrategyPropagate
)

// String names the strategy for logs and benchmarks.
func (s Strategy) String() string {
	switch s {
	case StrategyExact:
		return "exact"
	case StrategyPropagate:
		return "propagate"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Options tune the checker. The zero value is the paper's configuration
// (propagate strategy, subtree skipping on, reducible fast path on); the
// ablation benchmarks flip individual switches off.
type Options struct {
	Strategy Strategy
	// NoSkipSubtrees disables the §5.1 optimization of skipping a tested
	// node's whole dominance subtree during the T_q walk.
	NoSkipSubtrees bool
	// NoReducibleFastPath disables the Theorem 2 single-test fast path on
	// reducible CFGs.
	NoReducibleFastPath bool
	// SortedT stores the T_v sets as sorted arrays instead of bitsets, the
	// memory-saving variant the paper sketches in §6.1 ("future
	// implementations could use sorted arrays instead of bitsets … and
	// speed up the loop iteration by abandoning bitset_next_set").
	SortedT bool
}

// Checker answers live-in/live-out queries after a CFG-only precomputation.
type Checker struct {
	g    *cfg.Graph
	dfs  *cfg.DFS
	tree *dom.Tree
	opts Options

	// R and T as arena matrices: row = dominance-preorder number, set bits
	// are dominance preorder numbers too. One contiguous allocation backs
	// all n rows of each, so precompute performs O(1) allocations instead
	// of O(n) and the T_q candidate walk reads cache-adjacent rows. t is
	// nil when opts.SortedT dropped the arena for the sorted-array variant.
	r *bitset.Matrix
	t *bitset.Matrix
	// tSorted mirrors t as sorted arrays when opts.SortedT is set.
	tSorted [][]int32
	// numMax[n] = MaxNum of the node numbered n (saves an Order lookup in
	// the hot loop).
	numMax []int
	// backTarget[n] reports whether the node numbered n is a back-edge
	// target (needed by the live-out check, Algorithm 2 line 8).
	backTarget []bool

	reducible bool
}

// New runs the precomputation for g. It computes the DFS and dominator tree
// itself; use NewFrom to share existing analyses.
func New(g *cfg.Graph, opts Options) *Checker {
	d := cfg.NewDFS(g)
	return NewFrom(g, d, dom.Iterative(g, d), opts)
}

// NewFrom runs the precomputation against existing DFS and dominator-tree
// analyses of g.
func NewFrom(g *cfg.Graph, d *cfg.DFS, tree *dom.Tree, opts Options) *Checker {
	c := &Checker{g: g, dfs: d, tree: tree, opts: opts}
	c.reducible = dom.IsReducible(d, tree)
	c.precomputeR()
	switch opts.Strategy {
	case StrategyExact:
		c.precomputeTExact()
	case StrategyPropagate:
		c.precomputeTPropagate()
	default:
		panic("core: unknown strategy")
	}
	c.finish()
	return c
}

// Adopt builds a ready-to-query checker around R/T matrices computed
// earlier — by a previous process, typically, with the arenas loaded back
// from a snapshot (internal/snapshot) instead of re-run through the
// precompute passes. The matrices must have been produced by the same
// Strategy over a structurally identical CFG with the same DFS and
// dominator tree; callers guarantee that by keying snapshots on a
// structural fingerprint. Everything cheap is re-derived here from g, d
// and tree (numMax, backTarget, reducibility, the SortedT conversion), so
// the only trusted inputs are the two arenas, and dimension mismatches are
// rejected rather than adopted.
func Adopt(g *cfg.Graph, d *cfg.DFS, tree *dom.Tree, opts Options, r, t *bitset.Matrix) (*Checker, error) {
	n := d.NumReachable
	for _, m := range []struct {
		name string
		m    *bitset.Matrix
	}{{"R", r}, {"T", t}} {
		if m.m == nil {
			return nil, fmt.Errorf("core: adopt: nil %s matrix", m.name)
		}
		if m.m.Rows() != n || m.m.Len() != n {
			return nil, fmt.Errorf("core: adopt: %s matrix is %d×%d, want %d×%d",
				m.name, m.m.Rows(), m.m.Len(), n, n)
		}
	}
	c := &Checker{g: g, dfs: d, tree: tree, opts: opts, r: r, t: t}
	c.reducible = dom.IsReducible(d, tree)
	c.finish()
	return c, nil
}

// finish derives the query-time helpers every construction path needs from
// the R/T arenas and the shared analyses: the per-node dominance-subtree
// bounds, the back-edge-target marks, and — under opts.SortedT — the
// sorted-array T representation (dropping the T arena).
func (c *Checker) finish() {
	n := c.dfs.NumReachable
	c.numMax = make([]int, n)
	for num, v := range c.tree.Order {
		c.numMax[num] = c.tree.MaxNum[v]
	}
	c.backTarget = make([]bool, n)
	for _, e := range c.dfs.BackEdges {
		c.backTarget[c.tree.Num[e.T]] = true
	}
	if c.opts.SortedT {
		c.tSorted = make([][]int32, n)
		for i := 0; i < n; i++ {
			elems := c.t.Row(i).Elements()
			arr := make([]int32, len(elems))
			for j, e := range elems {
				arr[j] = int32(e)
			}
			c.tSorted[i] = arr
		}
		c.t = nil // one release frees the whole T arena
	}
}

// precomputeR builds the reduced-reachability closure in one pass over the
// nodes in increasing DFS postorder: every reduced edge (v,w) satisfies
// post(w) < post(v), so all successors are final when v is processed. The
// rows live in one arena; the pass allocates nothing per node.
func (c *Checker) precomputeR() {
	n := c.dfs.NumReachable
	c.r = bitset.NewMatrix(n, n)
	for _, v := range c.dfs.PostOrder {
		vn := c.tree.Num[v]
		c.r.RowAdd(vn, vn)
		c.dfs.ReducedSuccs(v, func(w int) {
			c.r.RowUnion(vn, c.tree.Num[w])
		})
	}
}

// precomputeTExact evaluates Equation 1 for every node, iterating in
// increasing DFS preorder; Theorem 3 guarantees each T↑ member was already
// finished (the done mask turns an ordering violation into a panic instead
// of a silent read of a half-built arena row).
func (c *Checker) precomputeTExact() {
	n := c.dfs.NumReachable
	c.t = bitset.NewMatrix(n, n)
	done := make([]bool, n)
	for _, v := range c.dfs.PreOrder {
		vn := c.tree.Num[v]
		c.t.RowAdd(vn, vn)
		for _, e := range c.dfs.BackEdges {
			sn, tn := c.tree.Num[e.S], c.tree.Num[e.T]
			if c.r.RowHas(vn, sn) && !c.r.RowHas(vn, tn) {
				if !done[tn] {
					panic("core: Theorem 3 ordering violated")
				}
				c.t.RowUnion(vn, tn)
			}
		}
		done[vn] = true
	}
}

// precomputeTPropagate implements the three-pass scheme of §5.2, on two
// arenas: a compact targets-only matrix for pass 1 and the final T matrix
// that passes 2–4 fill in place.
func (c *Checker) precomputeTPropagate() {
	n := c.dfs.NumReachable
	tree := c.tree

	// Pass 1: Equation 1 for back-edge targets only, in DFS preorder. The
	// scratch arena has one row per distinct target, indexed by targetRow.
	targetRow := make([]int32, n) // by dom num, -1 for non-targets
	for i := range targetRow {
		targetRow[i] = -1
	}
	targets := 0
	for _, e := range c.dfs.BackEdges {
		if tn := tree.Num[e.T]; targetRow[tn] < 0 {
			targetRow[tn] = int32(targets)
			targets++
		}
	}
	tm := bitset.NewMatrix(targets, n)
	done := make([]bool, n)
	for _, v := range c.dfs.PreOrder {
		vn := tree.Num[v]
		ri := targetRow[vn]
		if ri < 0 {
			continue
		}
		tm.RowAdd(int(ri), vn)
		for _, e := range c.dfs.BackEdges {
			sn, tn := tree.Num[e.S], tree.Num[e.T]
			if c.r.RowHas(vn, sn) && !c.r.RowHas(vn, tn) {
				if !done[tn] {
					panic("core: Theorem 3 ordering violated (targets)")
				}
				tm.RowUnion(int(ri), int(targetRow[tn]))
			}
		}
		done[vn] = true
	}

	// Pass 2: union the targets' sets into each back-edge source, seeding
	// the final T rows directly.
	c.t = bitset.NewMatrix(n, n)
	for _, e := range c.dfs.BackEdges {
		sn, tn := tree.Num[e.S], tree.Num[e.T]
		c.t.Row(sn).Union(tm.Row(int(targetRow[tn])))
	}

	// Pass 3: propagate the source sets through the reduced graph in
	// increasing postorder (successors first). The sets being merged
	// deliberately exclude the nodes themselves — X_v must collect the
	// union of U_s over all s ∈ R_v, nothing more.
	for _, v := range c.dfs.PostOrder {
		vn := tree.Num[v]
		c.dfs.ReducedSuccs(v, func(w int) {
			c.t.RowUnion(vn, tree.Num[w])
		})
	}
	// Pass 4: apply Definition 5's t ∉ R_v filter (see the
	// StrategyPropagate doc comment), then add v itself.
	for vn := 0; vn < n; vn++ {
		c.t.Row(vn).Subtract(c.r.Row(vn))
		c.t.RowAdd(vn, vn)
	}
}

// reachableNum returns the dominance preorder number of v, or -1 when v is
// outside the analyzed (entry-reachable) region.
func (c *Checker) reachableNum(v int) int {
	if v < 0 || v >= len(c.tree.Num) {
		return -1
	}
	return c.tree.Num[v]
}

// useView abstracts how the query algorithms read the variable's uses.
// sliceUses reads the def-use chain fresh at query time — the paper's
// default, immune to instruction edits. setUses reads a cached bitset of
// the uses' dominance numbers, turning Algorithm 3's inner per-use loop
// into one word-level intersection. The walks below are generic over the
// view (monomorphized, so neither path pays an interface dispatch or an
// allocation), which keeps the two representations answer-identical by
// construction — there is exactly one copy of the candidate walk.
type useView interface {
	// in reports whether some use is reduced-reachable from the node
	// numbered tn: the paper's "R_t ∩ uses(a) ≠ ∅".
	in(c *Checker, tn int) bool
	// inExcept is in, ignoring a use at the query node itself (dominance
	// number skipN, node id skip) — Algorithm 2's trivial-path rule.
	inExcept(c *Checker, tn, skipN, skip int) bool
	// elsewhere reports whether some use sits at a reachable node other
	// than q (Algorithm 2's lines 2–3 at the defining node).
	elsewhere(c *Checker, qN, q int) bool
}

// sliceUses walks a def-use chain given as CFG node ids.
type sliceUses struct{ uses []int }

func (u sliceUses) in(c *Checker, tn int) bool {
	rt := c.r.Row(tn) // hoist the row view: Has then inlines to two loads
	for _, x := range u.uses {
		if xn := c.reachableNum(x); xn >= 0 && rt.Has(xn) {
			return true
		}
	}
	return false
}

func (u sliceUses) inExcept(c *Checker, tn, skipN, skip int) bool {
	rt := c.r.Row(tn)
	for _, x := range u.uses {
		if x == skip {
			continue
		}
		if xn := c.reachableNum(x); xn >= 0 && rt.Has(xn) {
			return true
		}
	}
	return false
}

func (u sliceUses) elsewhere(c *Checker, qN, q int) bool {
	for _, x := range u.uses {
		if x != q && c.reachableNum(x) >= 0 {
			return true
		}
	}
	return false
}

// setUses reads a use-set built by Checker.UseSet: bits are dominance
// preorder numbers of the (reachable) use nodes.
type setUses struct{ uses *bitset.Set }

func (u setUses) in(c *Checker, tn int) bool { return c.r.RowIntersects(tn, u.uses) }

func (u setUses) inExcept(c *Checker, tn, skipN, skip int) bool {
	return c.r.RowIntersectsExcept(tn, u.uses, skipN)
}

func (u setUses) elsewhere(c *Checker, qN, q int) bool { return u.uses.AnyExcept(qN) }

// UseSet numbers the given use nodes (Definition 1 placement, as for
// IsLiveIn) into a bitset over dominance preorder numbers, dropping
// unreachable nodes — the representation IsLiveInSet/IsLiveOutSet consume.
// dst is refilled and returned when it has the right universe; otherwise
// (nil included) a fresh set is allocated. Callers cache the result per
// variable: it stays valid until the variable's uses change, whereas the
// checker itself stays valid under any non-CFG edit.
func (c *Checker) UseSet(dst *bitset.Set, uses []int) *bitset.Set {
	if dst == nil || dst.Len() != c.dfs.NumReachable {
		dst = bitset.New(c.dfs.NumReachable)
	} else {
		dst.Clear()
	}
	for _, u := range uses {
		if un := c.reachableNum(u); un >= 0 {
			dst.Add(un)
		}
	}
	return dst
}

// IsLiveIn implements Algorithms 1 and 3: is the variable defined at node
// def, with the given use nodes (per the paper's Definition 1 placement,
// φ uses already attributed to predecessor blocks), live-in at node q?
//
// The variable must satisfy the strict-SSA dominance property: def
// dominates every use. Nodes unreachable from the entry never carry
// liveness.
func (c *Checker) IsLiveIn(def int, uses []int, q int) bool {
	return liveIn(c, def, q, sliceUses{uses})
}

// IsLiveInSet is IsLiveIn with the uses given as a Checker.UseSet bitset,
// the zero-allocation cached-uses query path: the candidate test becomes a
// single word-loop intersection R_t ∩ uses instead of a per-use walk.
func (c *Checker) IsLiveInSet(def int, uses *bitset.Set, q int) bool {
	return liveIn(c, def, q, setUses{uses})
}

func liveIn[U useView](c *Checker, def, q int, uses U) bool {
	defN := c.reachableNum(def)
	qN := c.reachableNum(q)
	if defN < 0 || qN < 0 {
		return false
	}
	maxDom := c.tree.MaxNum[def]
	// Guard: q must be strictly dominated by def (Algorithm 3's
	// "q <= def || max_dom < q" test).
	if qN <= defN || maxDom < qN {
		return false
	}
	if c.opts.SortedT {
		return liveInSortedT(c, defN, maxDom, qN, uses)
	}
	tq := c.t.Row(qN)
	t := tq.NextSet(defN + 1)
	for t != bitset.None && t <= maxDom {
		if uses.in(c, t) {
			return true
		}
		if c.reducible && !c.opts.NoReducibleFastPath {
			// Theorem 2: on reducible CFGs the first (most dominating)
			// candidate decides the query.
			return false
		}
		next := t + 1
		if !c.opts.NoSkipSubtrees {
			// §5.1: everything in t's dominance subtree has R ⊆ R_t.
			next = c.numMax[t] + 1
		}
		t = tq.NextSet(next)
	}
	return false
}

// liveInSortedT is the §6.1 sorted-array variant of the T_q walk.
func liveInSortedT[U useView](c *Checker, defN, maxDom, qN int, uses U) bool {
	arr := c.tSorted[qN]
	// Binary search for the first element > defN.
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(arr[mid]) <= defN {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(arr) && int(arr[i]) <= maxDom; i++ {
		t := int(arr[i])
		if uses.in(c, t) {
			return true
		}
		if c.reducible && !c.opts.NoReducibleFastPath {
			return false
		}
		if !c.opts.NoSkipSubtrees {
			skipTo := c.numMax[t]
			for i+1 < len(arr) && int(arr[i+1]) <= skipTo {
				i++
			}
		}
	}
	return false
}

// IsLiveOut implements Algorithm 2. def, uses and q are as in IsLiveIn.
func (c *Checker) IsLiveOut(def int, uses []int, q int) bool {
	return liveOut(c, def, q, sliceUses{uses})
}

// IsLiveOutSet is IsLiveOut over a Checker.UseSet bitset; see IsLiveInSet.
func (c *Checker) IsLiveOutSet(def int, uses *bitset.Set, q int) bool {
	return liveOut(c, def, q, setUses{uses})
}

func liveOut[U useView](c *Checker, def, q int, uses U) bool {
	defN := c.reachableNum(def)
	qN := c.reachableNum(q)
	if defN < 0 || qN < 0 {
		return false
	}
	if def == q {
		// Line 2–3: live-out at the defining node iff some use lies
		// elsewhere.
		return uses.elsewhere(c, qN, q)
	}
	maxDom := c.tree.MaxNum[def]
	if qN <= defN || maxDom < qN {
		return false // def must strictly dominate q (line 4)
	}
	var t int
	var arr []int32
	var ai int
	var tq *bitset.Set
	if c.opts.SortedT {
		arr = c.tSorted[qN]
		ai = 0
		for ai < len(arr) && int(arr[ai]) <= defN {
			ai++
		}
		if ai < len(arr) {
			t = int(arr[ai])
		} else {
			t = bitset.None
		}
	} else {
		tq = c.t.Row(qN)
		t = tq.NextSet(defN + 1)
	}
	for t != bitset.None && t <= maxDom {
		// Line 7–9: when t = q and q is not a back-edge target, a use at q
		// itself only witnesses the trivial path and must be ignored.
		dropQ := t == qN && !c.backTarget[qN]
		if dropQ {
			if uses.inExcept(c, t, qN, q) {
				return true
			}
		} else if uses.in(c, t) {
			return true
		}
		if c.reducible && !c.opts.NoReducibleFastPath {
			// Theorem 2 applies to the non-trivial-path variant as well:
			// the most dominating t has the largest R set, and the dropped
			// use q is dropped only when t = q, the least dominating
			// possibility, which then is the only candidate.
			if !(dropQ) {
				return false
			}
			// If we dropped q we must still consider more dominating
			// candidates… but t = q is the *least* dominating element, so
			// there are none beyond it; continue the loop for soundness on
			// equal-R edge cases.
		}
		next := t + 1
		if !c.opts.NoSkipSubtrees {
			next = c.numMax[t] + 1
		}
		if c.opts.SortedT {
			for ai < len(arr) && int(arr[ai]) < next {
				ai++
			}
			if ai < len(arr) {
				t = int(arr[ai])
			} else {
				t = bitset.None
			}
		} else {
			t = tq.NextSet(next)
		}
	}
	return false
}

// Reducible reports whether the analyzed CFG is reducible.
func (c *Checker) Reducible() bool { return c.reducible }

// RSet returns R of node v (nil for unreachable v) as a view into the R
// arena. Exposed for tests and the worked Figure 3 example; treat as
// read-only.
func (c *Checker) RSet(v int) *bitset.Set {
	if n := c.reachableNum(v); n >= 0 {
		return c.r.Row(n)
	}
	return nil
}

// TSetNodes returns the node IDs in T_v, in dominance-preorder order.
func (c *Checker) TSetNodes(v int) []int {
	n := c.reachableNum(v)
	if n < 0 {
		return nil
	}
	var nums []int
	if c.opts.SortedT {
		for _, e := range c.tSorted[n] {
			nums = append(nums, int(e))
		}
	} else {
		nums = c.t.Row(n).Elements()
	}
	out := make([]int, len(nums))
	for i, num := range nums {
		out[i] = c.tree.Order[num]
	}
	return out
}

// Tree returns the dominator tree the checker was built with.
func (c *Checker) Tree() *dom.Tree { return c.tree }

// DFS returns the depth-first search the checker was built with.
func (c *Checker) DFS() *cfg.DFS { return c.dfs }

// Options returns the options the checker was built with.
func (c *Checker) Options() Options { return c.opts }

// Matrices exposes the R and T arenas for serialization (see Adopt for the
// reverse direction). T is nil for the SortedT variant, which dropped its
// arena after conversion — such checkers cannot be snapshotted. Treat both
// as read-only: they are live query storage.
func (c *Checker) Matrices() (r, t *bitset.Matrix) { return c.r, c.t }

// MemoryBytes reports the payload footprint of the precomputed sets; the
// harness uses it to reproduce the §6.1 break-even discussion and the §8
// quadratic-growth series. Arena-backed storage is accounted by the
// matrices' own footprint method (Matrix.WordBytes, zero for the T arena
// the sorted variant dropped), the sorted arrays by element width — one
// definition per representation, shared by every engine.
func (c *Checker) MemoryBytes() int {
	total := c.r.WordBytes() + c.t.WordBytes()
	for _, a := range c.tSorted {
		total += 4 * len(a)
	}
	return total
}
