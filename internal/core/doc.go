// Package core implements the liveness checking algorithm of Boissinot,
// Hack, Grund, Dupont de Dinechin and Rastello, "Fast Liveness Checking for
// SSA-Form Programs" (CGO 2008). It is the heart of the repository: every
// other layer either feeds it (cfg, dom, ir), competes with it (dataflow,
// lao, pervar, loops), or measures it (bench).
//
// The algorithm splits liveness queries into a variable-independent
// precomputation over the CFG and a cheap online check:
//
//   - R_v (Definition 4): the set of nodes reachable from v in the reduced
//     graph G̃ (the CFG minus DFS back edges, a DAG). Built by
//     Checker.precomputeR as one reverse-postorder sweep.
//   - T_q (Definition 5 / Equation 1): the back-edge targets relevant for
//     queries at q — targets reachable from q along paths that never
//     re-enter a dominance subtree they left. Checker.precomputeTExact
//     evaluates the definition directly (the specification, quadratic);
//     Checker.precomputeTPropagate is the paper's practical §5.2 scheme
//     that propagates T sets along reduced edges in reverse postorder.
//     Options.Strategy selects between them; both must agree, and the
//     cross-check is part of the test suite (core_test.go).
//
// A live-in query (Algorithm 1, refined into Algorithm 3) intersects T_q
// with the dominance subtree of the variable's definition and asks whether
// any use is reduced-reachable (via R) from one of the surviving nodes;
// live-out (Algorithm 2) differs only at the query block itself. Because R
// and T depend only on the CFG, the precomputed data stays valid under any
// program edit that leaves the CFG alone — the paper's headline robustness
// property, and what lets the fastliveness.Engine cache one Checker per
// function while the program around it is rewritten.
//
// Both sets are bitsets indexed by the dominance-tree preorder numbering of
// package dom (§5.1), so "strictly dominated by def" is a contiguous bit
// interval and the most-dominating candidate is the lowest set bit, which
// by Theorem 2 is the only candidate that matters on reducible CFGs
// (Checker.Reducible reports whether that fast path is active;
// Options.NoReducibleFastPath ablates it). Options.SortedT swaps the T
// bitsets for sorted arrays, the §6.1 memory/time trade-off.
package core
