package core

import (
	"math/rand"
	"testing"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/graphgen"
)

// bruteLiveIn is the direct reading of Definition 2: a is live-in at q iff
// there is a path from q to some use that does not contain def. It searches
// the raw graph with def removed.
func bruteLiveIn(g *cfg.Graph, def int, uses []int, q int) bool {
	if q == def {
		return false
	}
	useSet := map[int]bool{}
	for _, u := range uses {
		useSet[u] = true
	}
	seen := make([]bool, g.N())
	stack := []int{q}
	seen[q] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if useSet[v] {
			return true
		}
		for _, w := range g.Succs[v] {
			if w != def && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// bruteLiveOut is Definition 3: live-in at some successor.
func bruteLiveOut(g *cfg.Graph, def int, uses []int, q int) bool {
	for _, s := range g.Succs[q] {
		if bruteLiveIn(g, def, uses, s) {
			return true
		}
	}
	return false
}

// allOptions enumerates every checker configuration the tests must agree
// across.
func allOptions() []Options {
	var out []Options
	for _, strat := range []Strategy{StrategyExact, StrategyPropagate} {
		for _, noSkip := range []bool{false, true} {
			for _, noFast := range []bool{false, true} {
				for _, sortedT := range []bool{false, true} {
					out = append(out, Options{
						Strategy:            strat,
						NoSkipSubtrees:      noSkip,
						NoReducibleFastPath: noFast,
						SortedT:             sortedT,
					})
				}
			}
		}
	}
	return out
}

// checkGraphAgainstBrute exhaustively compares the checker with the brute
// force on every valid (def, uses, q) combination for a few random
// variables.
func checkGraphAgainstBrute(t *testing.T, g *cfg.Graph, rng *rand.Rand, trial int) {
	t.Helper()
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	checkers := make([]*Checker, 0, 16)
	for _, o := range allOptions() {
		checkers = append(checkers, NewFrom(g, d, tree, o))
	}
	n := g.N()
	// For each candidate definition node, build a few random use sets
	// honoring the strict-SSA dominance property (def dominates all uses).
	for def := 0; def < n; def++ {
		if !tree.Reachable(def) {
			continue
		}
		var dominated []int
		for v := 0; v < n; v++ {
			if tree.Reachable(v) && tree.Dominates(def, v) {
				dominated = append(dominated, v)
			}
		}
		for variant := 0; variant < 3; variant++ {
			k := 1 + rng.Intn(3)
			uses := make([]int, 0, k)
			for i := 0; i < k; i++ {
				uses = append(uses, dominated[rng.Intn(len(dominated))])
			}
			// The cached-uses bitset path must answer identically to the
			// fresh def-use walk under every option combination; all
			// checkers share the DFS/tree, so one use-set serves them all.
			useSet := checkers[0].UseSet(nil, uses)
			for q := 0; q < n; q++ {
				if !tree.Reachable(q) {
					continue
				}
				wantIn := bruteLiveIn(g, def, uses, q)
				wantOut := bruteLiveOut(g, def, uses, q)
				for ci, c := range checkers {
					if got := c.IsLiveIn(def, uses, q); got != wantIn {
						t.Fatalf("trial %d cfg=%d nodes: IsLiveIn(def=%d uses=%v q=%d) = %v want %v (opts %+v)\nT_q=%v R:%v",
							trial, n, def, uses, q, got, wantIn, allOptions()[ci], c.TSetNodes(q), c.RSet(q))
					}
					if got := c.IsLiveOut(def, uses, q); got != wantOut {
						t.Fatalf("trial %d cfg=%d nodes: IsLiveOut(def=%d uses=%v q=%d) = %v want %v (opts %+v)",
							trial, n, def, uses, q, got, wantOut, allOptions()[ci])
					}
					if got := c.IsLiveInSet(def, useSet, q); got != wantIn {
						t.Fatalf("trial %d cfg=%d nodes: IsLiveInSet(def=%d uses=%v q=%d) = %v want %v (opts %+v)",
							trial, n, def, uses, q, got, wantIn, allOptions()[ci])
					}
					if got := c.IsLiveOutSet(def, useSet, q); got != wantOut {
						t.Fatalf("trial %d cfg=%d nodes: IsLiveOutSet(def=%d uses=%v q=%d) = %v want %v (opts %+v)",
							trial, n, def, uses, q, got, wantOut, allOptions()[ci])
					}
				}
			}
		}
	}
}

func TestCheckerAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfgShape := graphgen.Config{
		MinNodes: 2, MaxNodes: 18, ExtraEdgeFactor: 1.8, BackEdgeProb: 0.4, AllowSelfLoops: true,
	}
	for trial := 0; trial < 60; trial++ {
		g := graphgen.Random(rng, cfgShape)
		checkGraphAgainstBrute(t, g, rng, trial)
	}
}

func TestCheckerAgainstBruteForceReducible(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	cfgShape := graphgen.Config{
		MinNodes: 2, MaxNodes: 18, ExtraEdgeFactor: 1.0, BackEdgeProb: 0.5, AllowSelfLoops: true,
	}
	for trial := 0; trial < 40; trial++ {
		g := graphgen.RandomReducible(rng, cfgShape)
		checkGraphAgainstBrute(t, g, rng, trial)
	}
}

// figure3 builds the CFG of the paper's Figure 3 (nodes renumbered to
// 0-based: paper node k is node k-1 here). The narrative fixes the
// essential shape: back edges (10,8), (6,5), (7,2) in paper numbering,
// the path 4,5,6,7,2,3,8 and the cross edge 9→6. Variables: w defined at 2
// and used at 4, x defined at 3 and used at 9, y defined at 3 and used
// at 5 (paper numbering).
func figure3() *cfg.Graph {
	g := cfg.NewGraph(11)
	edge := func(s, t int) { g.AddEdge(s-1, t-1) } // paper numbering
	edge(1, 2)
	edge(2, 3)
	edge(3, 4)
	edge(3, 8)
	edge(4, 5)
	edge(5, 6)
	edge(6, 7)
	edge(6, 5) // back edge
	edge(7, 2) // back edge
	edge(8, 9)
	edge(9, 10)
	edge(10, 8) // back edge
	edge(9, 6)  // cross edge
	edge(2, 11)
	return g
}

func TestFigure3(t *testing.T) {
	g := figure3()
	node := func(k int) int { return k - 1 } // paper numbering helper
	for _, o := range allOptions() {
		c := New(g, o)
		// The figure is deliberately irreducible: the cross edge 9→6 enters
		// the {5,6} loop below its header, giving the loop two entries.
		// That is why T_10 is not totally ordered by dominance (8 and 5 are
		// incomparable) — Lemma 3 only applies to reducible CFGs.
		if c.Reducible() {
			t.Fatalf("Figure 3 CFG should be irreducible (opts %+v)", o)
		}
		// "All back edge targets (8, 5, 2) are reachable from 10": T_10
		// must be exactly {10, 8, 5, 2}.
		tset := map[int]bool{}
		for _, v := range c.TSetNodes(node(10)) {
			tset[v+1] = true // back to paper numbering
		}
		for _, want := range []int{10, 8, 5, 2} {
			if !tset[want] {
				t.Fatalf("T_10 = %v missing %d (opts %+v)", tset, want, o)
			}
		}
		if o.Strategy == StrategyExact && len(tset) != 4 {
			t.Fatalf("exact T_10 = %v, want exactly {10,8,5,2}", tset)
		}

		// "the use of x at 9 is reduced reachable from node 8".
		if !c.RSet(node(8)).Has(c.Tree().Num[node(9)]) {
			t.Fatal("9 should be reduced-reachable from 8")
		}
		// But no use of x is reduced reachable from 10 itself.
		if c.RSet(node(10)).Has(c.Tree().Num[node(9)]) {
			t.Fatal("9 must not be reduced-reachable from 10")
		}

		defW, useW := node(2), []int{node(4)}
		defX, useX := node(3), []int{node(9)}
		defY, useY := node(3), []int{node(5)}

		// The paper's three worked queries at node 10 and the trap at 4.
		if !c.IsLiveIn(defX, useX, node(10)) {
			t.Fatalf("x should be live-in at 10 (opts %+v)", o)
		}
		if !c.IsLiveIn(defY, useY, node(10)) {
			t.Fatalf("y should be live-in at 10 (opts %+v)", o)
		}
		if c.IsLiveIn(defW, useW, node(10)) {
			t.Fatalf("w must not be live-in at 10 (opts %+v)", o)
		}
		if c.IsLiveIn(defX, useX, node(4)) {
			t.Fatalf("x must not be live-in at 4 (opts %+v)", o)
		}

		// Cross-check the whole figure against brute force.
		for _, v := range []struct {
			def  int
			uses []int
		}{{defW, useW}, {defX, useX}, {defY, useY}} {
			for q := 0; q < g.N(); q++ {
				if got, want := c.IsLiveIn(v.def, v.uses, q), bruteLiveIn(g, v.def, v.uses, q); got != want {
					t.Fatalf("fig3 live-in(def=%d,q=%d) = %v, want %v (opts %+v)", v.def, q, got, want, o)
				}
				if got, want := c.IsLiveOut(v.def, v.uses, q), bruteLiveOut(g, v.def, v.uses, q); got != want {
					t.Fatalf("fig3 live-out(def=%d,q=%d) = %v, want %v (opts %+v)", v.def, q, got, want, o)
				}
			}
		}
	}
}

// Theorem 2: on reducible CFGs, when a variable is live-in the unique
// deciding t dominates all other candidates — i.e. the first candidate in
// dominance-preorder already answers the query.
func TestTheorem2FirstCandidateDecides(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		g := graphgen.RandomReducible(rng, graphgen.Config{
			MinNodes: 3, MaxNodes: 25, ExtraEdgeFactor: 1.2, BackEdgeProb: 0.5,
		})
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		fast := NewFrom(g, d, tree, Options{})                          // fast path on
		slow := NewFrom(g, d, tree, Options{NoReducibleFastPath: true}) // full loop
		n := g.N()
		for def := 0; def < n; def++ {
			if !tree.Reachable(def) {
				continue
			}
			var dominated []int
			for v := 0; v < n; v++ {
				if tree.Reachable(v) && tree.Dominates(def, v) {
					dominated = append(dominated, v)
				}
			}
			uses := []int{dominated[rng.Intn(len(dominated))]}
			for q := 0; q < n; q++ {
				if fast.IsLiveIn(def, uses, q) != slow.IsLiveIn(def, uses, q) {
					t.Fatalf("trial %d: Theorem 2 fast path diverges at def=%d q=%d", trial, def, q)
				}
				if fast.IsLiveOut(def, uses, q) != slow.IsLiveOut(def, uses, q) {
					t.Fatalf("trial %d: Theorem 2 fast path diverges (live-out) at def=%d q=%d", trial, def, q)
				}
			}
		}
	}
}

// The propagate strategy's post-filtered T sets must be subsets of the
// exact Definition 5 sets (extra candidates were filtered, redundant ones
// may be dropped), must always contain the node itself, and must never
// contain a node reduced-reachable from the owner (other than the owner).
func TestStrategySetRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 60; trial++ {
		g := graphgen.Random(rng, graphgen.Default)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		exact := NewFrom(g, d, tree, Options{Strategy: StrategyExact})
		prop := NewFrom(g, d, tree, Options{Strategy: StrategyPropagate})
		for v := 0; v < g.N(); v++ {
			if !tree.Reachable(v) {
				continue
			}
			em := map[int]bool{}
			for _, x := range exact.TSetNodes(v) {
				em[x] = true
			}
			selfSeen := false
			for _, x := range prop.TSetNodes(v) {
				if x == v {
					selfSeen = true
					continue
				}
				if !em[x] {
					t.Fatalf("trial %d: T_%d: propagate element %d not in exact set", trial, v, x)
				}
				if prop.RSet(v).Has(tree.Num[x]) {
					t.Fatalf("trial %d: T_%d: propagate kept reduced-reachable %d", trial, v, x)
				}
			}
			if !selfSeen {
				t.Fatalf("trial %d: T_%d missing %d itself", trial, v, v)
			}
		}
	}
}

// The headline robustness property: precomputed data survives variable
// edits. Adding uses/defs (changing the query inputs) must need no
// re-analysis — i.e. the checker is oblivious to them by construction. We
// simulate by reusing one checker for many different variables and
// comparing against brute force computed fresh each time.
func TestPrecomputationIsVariableIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	g := graphgen.Random(rng, graphgen.Config{
		MinNodes: 20, MaxNodes: 20, ExtraEdgeFactor: 1.5, BackEdgeProb: 0.4,
	})
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	c := NewFrom(g, d, tree, Options{})
	for round := 0; round < 300; round++ {
		def := rng.Intn(g.N())
		if !tree.Reachable(def) {
			continue
		}
		var dominated []int
		for v := 0; v < g.N(); v++ {
			if tree.Reachable(v) && tree.Dominates(def, v) {
				dominated = append(dominated, v)
			}
		}
		uses := []int{dominated[rng.Intn(len(dominated))]}
		q := rng.Intn(g.N())
		if !tree.Reachable(q) {
			continue
		}
		if got, want := c.IsLiveIn(def, uses, q), bruteLiveIn(g, def, uses, q); got != want {
			t.Fatalf("round %d: live-in mismatch", round)
		}
	}
}

func TestUnreachableNodesNeverLive(t *testing.T) {
	g := cfg.NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // island
	c := New(g, Options{})
	if c.IsLiveIn(3, []int{4}, 4) || c.IsLiveOut(3, []int{4}, 3) {
		t.Fatal("island nodes must not be live")
	}
	if c.IsLiveIn(0, []int{4}, 1) {
		t.Fatal("use on island must not make a variable live")
	}
	if c.RSet(3) != nil || c.TSetNodes(4) != nil {
		t.Fatal("island nodes should have no sets")
	}
}

func TestSelfLoopLiveOut(t *testing.T) {
	// def at 0, use at 1, 1 has a self loop: the variable is live-out at 1
	// through the loop and live-in at 1.
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddEdge(1, 2)
	for _, o := range allOptions() {
		c := New(g, o)
		if !c.IsLiveIn(0, []int{1}, 1) {
			t.Fatalf("live-in at self-loop use (opts %+v)", o)
		}
		if !c.IsLiveOut(0, []int{1}, 1) {
			t.Fatalf("live-out at self-loop use (opts %+v)", o)
		}
		if c.IsLiveIn(0, []int{1}, 2) || c.IsLiveOut(0, []int{1}, 2) {
			t.Fatalf("not live beyond last use (opts %+v)", o)
		}
	}
}

func TestLiveOutAtDefNode(t *testing.T) {
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := New(g, Options{})
	// Use only at the def node: never live-out.
	if c.IsLiveOut(1, []int{1}, 1) {
		t.Fatal("use only at def: not live-out")
	}
	// Use strictly below: live-out at def node.
	if !c.IsLiveOut(1, []int{2}, 1) {
		t.Fatal("use below def: live-out at def")
	}
	// Not live anywhere above the def.
	if c.IsLiveIn(1, []int{2}, 0) || c.IsLiveOut(1, []int{2}, 0) {
		t.Fatal("must not be live above the def")
	}
}

func TestMemoryBytesAndStrategyString(t *testing.T) {
	g := graphgen.Ladder(64)
	cBit := New(g, Options{})
	cSorted := New(g, Options{SortedT: true})
	if cBit.MemoryBytes() <= 0 || cSorted.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
	// T as sorted arrays must be smaller than T as bitsets on this shape
	// (few back edges).
	if cSorted.MemoryBytes() >= cBit.MemoryBytes() {
		t.Fatalf("sorted T should save memory: %d vs %d", cSorted.MemoryBytes(), cBit.MemoryBytes())
	}
	if StrategyExact.String() != "exact" || StrategyPropagate.String() != "propagate" {
		t.Fatal("strategy names wrong")
	}
}

func TestDFSAndTreeAccessors(t *testing.T) {
	g := graphgen.Ladder(8)
	c := New(g, Options{})
	if c.DFS() == nil || c.Tree() == nil {
		t.Fatal("accessors must expose the analyses")
	}
}
