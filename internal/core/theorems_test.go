package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/graphgen"
)

// Lemma 3: on reducible CFGs, the dominance relation totally orders every
// T_q (which is what licenses the Theorem 2 single-test fast path).
func TestLemma3TotalOrderOnReducible(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 150; trial++ {
		g := graphgen.RandomReducible(rng, graphgen.Config{
			MinNodes: 3, MaxNodes: 60, ExtraEdgeFactor: 1.4, BackEdgeProb: 0.5,
		})
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		if !dom.IsReducible(d, tree) {
			t.Fatal("generator produced irreducible graph")
		}
		c := NewFrom(g, d, tree, Options{Strategy: StrategyExact})
		for q := 0; q < g.N(); q++ {
			if !tree.Reachable(q) {
				continue
			}
			nodes := c.TSetNodes(q)
			for i := 0; i < len(nodes); i++ {
				for j := i + 1; j < len(nodes); j++ {
					a, b := nodes[i], nodes[j]
					if !tree.Dominates(a, b) && !tree.Dominates(b, a) {
						t.Fatalf("trial %d: T_%d = %v contains incomparable %d and %d",
							trial, q, nodes, a, b)
					}
				}
			}
			// Lemma 3's proof also shows every other element dominates q.
			for _, x := range nodes {
				if x != q && !tree.StrictlyDominates(x, q) {
					t.Fatalf("trial %d: %d ∈ T_%d does not dominate %d", trial, x, q, x)
				}
			}
		}
	}
}

// The §4.1 monotonicity fact behind both the ordering optimization and the
// subtree skip: if t' strictly dominates t and both are in T_q, then
// R_t ⊆ R_t'.
func TestRSetMonotoneAlongDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 100; trial++ {
		g := graphgen.Random(rng, graphgen.Default)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		c := NewFrom(g, d, tree, Options{Strategy: StrategyExact})
		for q := 0; q < g.N(); q++ {
			if !tree.Reachable(q) {
				continue
			}
			nodes := c.TSetNodes(q)
			for _, a := range nodes {
				for _, b := range nodes {
					if a != b && tree.StrictlyDominates(a, b) {
						if !c.RSet(b).SubsetOf(c.RSet(a)) {
							t.Fatalf("trial %d: R_%d ⊄ R_%d though %d sdom %d (T_%d)",
								trial, b, a, a, b, q)
						}
					}
				}
			}
		}
	}
}

// Definition 4 sanity under testing/quick: R_v is exactly forward
// reachability in the graph minus DFS back edges.
func TestQuickRSetsAreReducedReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphgen.Random(rng, graphgen.Config{
			MinNodes: 2, MaxNodes: 30, ExtraEdgeFactor: 1.5, BackEdgeProb: 0.4, AllowSelfLoops: true,
		})
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		c := NewFrom(g, d, tree, Options{})
		for v := 0; v < g.N(); v++ {
			if !tree.Reachable(v) {
				continue
			}
			// Brute-force reduced reachability.
			want := map[int]bool{v: true}
			stack := []int{v}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range g.Succs[x] {
					if !d.IsBackEdge(x, w) && !want[w] {
						want[w] = true
						stack = append(stack, w)
					}
				}
			}
			rs := c.RSet(v)
			for w := 0; w < g.N(); w++ {
				if !tree.Reachable(w) {
					continue
				}
				if rs.Has(tree.Num[w]) != want[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Duplicate edges and parallel back edges must not confuse the
// precomputation.
func TestDuplicateEdges(t *testing.T) {
	g := cfg.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // duplicate forward
	g.AddEdge(1, 2)
	g.AddEdge(2, 1) // back
	g.AddEdge(2, 1) // duplicate back
	g.AddEdge(2, 3)
	for _, o := range allOptions() {
		c := New(g, o)
		// def at 1, use at 2: live-in at 2, live-out at 1 and 2 (loop).
		if !c.IsLiveIn(1, []int{2}, 2) {
			t.Fatalf("live-in at use failed (opts %+v)", o)
		}
		if !c.IsLiveOut(1, []int{2}, 2) != !bruteLiveOut(g, 1, []int{2}, 2) {
			t.Fatalf("live-out mismatch vs brute (opts %+v)", o)
		}
		if c.IsLiveIn(1, []int{2}, 3) {
			t.Fatalf("live past last use (opts %+v)", o)
		}
	}
}

// NewFrom must be usable with shared analyses (the facade's pattern) and
// must agree with New.
func TestNewFromSharesAnalyses(t *testing.T) {
	g := graphgen.Ladder(40)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	a := New(g, Options{})
	b := NewFrom(g, d, tree, Options{})
	for v := 0; v < g.N(); v++ {
		for q := 0; q < g.N(); q++ {
			if a.IsLiveIn(0, []int{v}, q) != b.IsLiveIn(0, []int{v}, q) {
				t.Fatalf("New and NewFrom disagree at (%d,%d)", v, q)
			}
		}
	}
}
