package loops

import (
	"math/rand"
	"testing"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/dom"
	"fastliveness/internal/gen"
	"fastliveness/internal/graphgen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

func TestSimpleLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (back), 2 -> 3
	g := cfg.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	d := cfg.NewDFS(g)
	f := Build(g, d)
	if f.NumLoops() != 1 {
		t.Fatalf("loops = %d, want 1", f.NumLoops())
	}
	l := f.Loops[0]
	if l.Header != 1 || l.Irreducible || l.Depth != 1 {
		t.Fatalf("loop = %+v", l)
	}
	if f.Depth(0) != 0 || f.Depth(1) != 1 || f.Depth(2) != 1 || f.Depth(3) != 0 {
		t.Fatalf("depths wrong: %d %d %d %d", f.Depth(0), f.Depth(1), f.Depth(2), f.Depth(3))
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1(outer hdr) -> 2(inner hdr) -> 3 -> 2, 3 -> 4 -> 1, 4 -> 5
	g := cfg.NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 1)
	g.AddEdge(4, 5)
	d := cfg.NewDFS(g)
	f := Build(g, d)
	if f.NumLoops() != 2 {
		t.Fatalf("loops = %d, want 2", f.NumLoops())
	}
	inner := f.LoopOf[2]
	outer := f.LoopOf[1]
	if inner == nil || outer == nil || inner == outer {
		t.Fatal("loop assignment broken")
	}
	if inner.Header != 2 || outer.Header != 1 {
		t.Fatalf("headers: inner=%d outer=%d", inner.Header, outer.Header)
	}
	if inner.Parent != outer || inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("nesting broken: parent=%v depths=%d/%d", inner.Parent, inner.Depth, outer.Depth)
	}
	if f.Depth(3) != 2 || f.Depth(4) != 1 || f.Depth(5) != 0 {
		t.Fatalf("node depths: %d %d %d", f.Depth(3), f.Depth(4), f.Depth(5))
	}
	if !f.Contains(outer, 3) || !f.Contains(inner, 3) || f.Contains(inner, 4) {
		t.Fatal("Contains broken")
	}
}

func TestSelfLoop(t *testing.T) {
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddEdge(1, 2)
	d := cfg.NewDFS(g)
	f := Build(g, d)
	if f.NumLoops() != 1 || f.Loops[0].Header != 1 {
		t.Fatalf("self loop not detected: %+v", f.Loops)
	}
	if f.Depth(1) != 1 {
		t.Fatal("self loop depth wrong")
	}
}

func TestIrreducibleLoopMarked(t *testing.T) {
	// Two-entry loop: 0->1, 0->2, 1->2, 2->1.
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	d := cfg.NewDFS(g)
	f := Build(g, d)
	if f.NumLoops() == 0 {
		t.Fatal("no loop found")
	}
	anyIrr := false
	for _, l := range f.Loops {
		anyIrr = anyIrr || l.Irreducible
	}
	if !anyIrr {
		t.Fatal("irreducible loop not marked")
	}
}

// Reference check on random reducible graphs: natural-loop membership per
// back edge must be contained in the Havlak loop of that header.
func TestAgainstNaturalLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		g := graphgen.RandomReducible(rng, graphgen.Default)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		if !dom.IsReducible(d, tree) {
			t.Fatal("generator produced irreducible graph")
		}
		f := Build(g, d)
		for _, l := range f.Loops {
			if l.Irreducible {
				t.Fatalf("trial %d: loop %d marked irreducible in reducible graph", trial, l.Header)
			}
		}
		for _, e := range d.BackEdges {
			nat := naturalLoop(g, e.T, e.S)
			hl := f.LoopOf[e.T]
			if hl == nil {
				t.Fatalf("trial %d: back edge target %d not in a loop", trial, e.T)
			}
			// The loop headed at e.T (walk up to it).
			var headerLoop *Loop
			for x := hl; x != nil; x = x.Parent {
				if x.Header == e.T {
					headerLoop = x
					break
				}
			}
			if headerLoop == nil {
				t.Fatalf("trial %d: no loop headed at %d", trial, e.T)
			}
			members := map[int]bool{}
			for _, b := range headerLoop.Blocks {
				members[b] = true
			}
			for n := range nat {
				if !members[n] {
					t.Fatalf("trial %d: natural loop node %d missing from Havlak loop of %d",
						trial, n, e.T)
				}
			}
		}
	}
}

// naturalLoop computes the classic natural loop of back edge (s,t): t plus
// all nodes that reach s without passing through t.
func naturalLoop(g *cfg.Graph, t, s int) map[int]bool {
	loop := map[int]bool{t: true}
	var stack []int
	if !loop[s] {
		loop[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds[v] {
			if !loop[p] {
				loop[p] = true
				stack = append(stack, p)
			}
		}
	}
	return loop
}

// The extension's headline property: loop-forest liveness equals iterative
// data-flow liveness on reducible SSA programs.
func TestLivenessMatchesDataflow(t *testing.T) {
	for trial := 0; trial < 80; trial++ {
		c := gen.Default(int64(trial) * 137)
		c.TargetBlocks = 4 + trial
		f := gen.Generate("t", c)
		ssa.Construct(f)
		want := dataflow.Analyze(f)
		got, err := Liveness(f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok := true
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() || !ok {
				return
			}
			for _, b := range f.Blocks {
				if got.IsLiveIn(v, b) != want.IsLiveIn(v, b) {
					t.Errorf("trial %d: IsLiveIn(%s,%s) = %v, want %v",
						trial, v, b, got.IsLiveIn(v, b), want.IsLiveIn(v, b))
					ok = false
					return
				}
				if got.IsLiveOut(v, b) != want.IsLiveOut(v, b) {
					t.Errorf("trial %d: IsLiveOut(%s,%s) = %v, want %v",
						trial, v, b, got.IsLiveOut(v, b), want.IsLiveOut(v, b))
					ok = false
					return
				}
			}
		})
		if !ok {
			return
		}
	}
}

func TestLivenessRejectsIrreducible(t *testing.T) {
	found := false
	for trial := 0; trial < 30 && !found; trial++ {
		c := gen.Default(int64(trial) * 7)
		c.TargetBlocks = 40
		c.Irreducible = true
		f := gen.Generate("t", c)
		ssa.Construct(f)
		g, _ := cfg.FromFunc(f)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		if dom.IsReducible(d, tree) {
			continue
		}
		found = true
		if _, err := Liveness(f); err != ErrIrreducible {
			t.Fatalf("want ErrIrreducible, got %v", err)
		}
	}
	if !found {
		t.Skip("no irreducible sample generated")
	}
}
