package loops

import (
	"math/rand"
	"testing"

	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dom"
	"fastliveness/internal/graphgen"
)

// bruteLiveIn mirrors core's test oracle: Definition 2 as path search.
func bruteLiveIn(g *cfg.Graph, def int, uses []int, q int) bool {
	if q == def {
		return false
	}
	useSet := map[int]bool{}
	for _, u := range uses {
		useSet[u] = true
	}
	seen := make([]bool, g.N())
	stack := []int{q}
	seen[q] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if useSet[v] {
			return true
		}
		for _, w := range g.Succs[v] {
			if w != def && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

func bruteLiveOut(g *cfg.Graph, def int, uses []int, q int) bool {
	for _, s := range g.Succs[q] {
		if bruteLiveIn(g, def, uses, s) {
			return true
		}
	}
	return false
}

// The loop-forest checker must agree with brute force and with the R/T
// checker on random reducible graphs, for every strict-SSA query.
func TestLoopForestCheckerAgainstBruteAndCore(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < 80; trial++ {
		g := graphgen.RandomReducible(rng, graphgen.Config{
			MinNodes: 2, MaxNodes: 22, ExtraEdgeFactor: 1.4, BackEdgeProb: 0.5, AllowSelfLoops: true,
		})
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		lc, err := NewChecker(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rt := core.NewFrom(g, d, tree, core.Options{})

		n := g.N()
		for def := 0; def < n; def++ {
			if !tree.Reachable(def) {
				continue
			}
			var dominated []int
			for v := 0; v < n; v++ {
				if tree.Reachable(v) && tree.Dominates(def, v) {
					dominated = append(dominated, v)
				}
			}
			for variant := 0; variant < 3; variant++ {
				k := 1 + rng.Intn(3)
				uses := make([]int, 0, k)
				for i := 0; i < k; i++ {
					uses = append(uses, dominated[rng.Intn(len(dominated))])
				}
				for q := 0; q < n; q++ {
					if !tree.Reachable(q) {
						continue
					}
					wantIn := bruteLiveIn(g, def, uses, q)
					if got := lc.IsLiveIn(def, uses, q); got != wantIn {
						t.Fatalf("trial %d: loop checker IsLiveIn(def=%d uses=%v q=%d)=%v want %v",
							trial, def, uses, q, got, wantIn)
					}
					if got := rt.IsLiveIn(def, uses, q); got != wantIn {
						t.Fatalf("trial %d: R/T checker disagrees with brute at (%d,%v,%d)",
							trial, def, uses, q)
					}
					wantOut := bruteLiveOut(g, def, uses, q)
					if got := lc.IsLiveOut(def, uses, q); got != wantOut {
						t.Fatalf("trial %d: loop checker IsLiveOut(def=%d uses=%v q=%d)=%v want %v",
							trial, def, uses, q, got, wantOut)
					}
				}
			}
		}
	}
}

func TestLoopForestCheckerRejectsIrreducible(t *testing.T) {
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	if _, err := NewChecker(g); err != ErrIrreducible {
		t.Fatalf("want ErrIrreducible, got %v", err)
	}
}

func TestOLEHoisting(t *testing.T) {
	// def before a two-deep loop nest; a query deep inside must hoist to
	// the outermost header excluding the def.
	//
	//	0 → 1(outer hdr) → 2(inner hdr) → 3 → 2, 3 → 4 → 1, 4 → 5
	g := cfg.NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 1)
	g.AddEdge(4, 5)
	c, err := NewChecker(g)
	if err != nil {
		t.Fatal(err)
	}
	// def at 0: from node 3, both loops exclude 0 → hoist to outer header 1.
	if got := c.ole(3, 0); got != 1 {
		t.Fatalf("ole(3, def=0) = %d, want 1", got)
	}
	// def at 1 (the outer header is the def): outer loop contains 1, inner
	// does not → hoist to inner header 2.
	if got := c.ole(3, 1); got != 2 {
		t.Fatalf("ole(3, def=1) = %d, want 2", got)
	}
	// def at 2: both loops containing 3 contain 2 → no hoist.
	if got := c.ole(3, 2); got != 3 {
		t.Fatalf("ole(3, def=2) = %d, want 3", got)
	}
	// Node outside all loops never hoists.
	if got := c.ole(5, 0); got != 5 {
		t.Fatalf("ole(5, def=0) = %d, want 5", got)
	}
	// Liveness via the hoist: def at 0, use at 4 (after inner loop), query
	// deep inside the inner loop.
	if !c.IsLiveIn(0, []int{4}, 3) {
		t.Fatal("value used after the loops must be live inside them")
	}
	if c.IsLiveIn(0, []int{4}, 5) {
		t.Fatal("not live after the last use")
	}
	if c.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
}
