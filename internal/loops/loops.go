// Package loops implements a loop nesting forest (Havlak's algorithm,
// handling reducible and irreducible loops) and the loop-forest-based
// liveness-set computation the paper sketches as future work in §8 ("Our
// technique uses structural properties of the CFG and could take advantage
// of a precomputed loop nesting forest"), later published by Boissinot et
// al. as "Computing Liveness Sets for SSA-Form Programs".
//
// The liveness algorithm needs two passes and no fixed point on reducible
// CFGs: one backward pass over the reduced (back-edge-free) DAG computes
// partial live sets; one pass over the loop forest then extends everything
// live at a loop header to the whole loop.
package loops

import (
	"fastliveness/internal/cfg"
)

// Loop is one loop of the forest.
type Loop struct {
	// Header is the loop header node (the target of its back edges).
	Header int
	// Irreducible marks loops entered beside the header.
	Irreducible bool
	// Blocks lists the member nodes, header included.
	Blocks []int
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are the directly nested loops.
	Children []*Loop
	// Depth is 1 for top-level loops.
	Depth int
}

// Forest is the loop nesting forest of a graph.
type Forest struct {
	// Loops lists every loop, innermost-last (discovery in reverse DFS
	// preorder of headers).
	Loops []*Loop
	// LoopOf maps each node to its innermost containing loop (nil when the
	// node is in no loop).
	LoopOf []*Loop
}

// Build computes the loop nesting forest with Havlak's algorithm.
func Build(g *cfg.Graph, d *cfg.DFS) *Forest {
	n := g.N()
	r := d.NumReachable
	f := &Forest{LoopOf: make([]*Loop, n)}
	if r == 0 {
		return f
	}

	// Work in DFS preorder-number space.
	vertex := d.PreOrder
	backPreds := make([][]int, r)    // by preorder number
	nonBackPreds := make([][]int, r) // may grow for irreducible shapes
	for w := 0; w < r; w++ {
		node := vertex[w]
		for _, p := range g.Preds[node] {
			if !d.Reachable(p) {
				continue
			}
			if d.IsAncestor(node, p) {
				backPreds[w] = append(backPreds[w], d.Pre[p])
			} else {
				nonBackPreds[w] = append(nonBackPreds[w], d.Pre[p])
			}
		}
	}

	// Union-find over preorder numbers.
	uf := make([]int, r)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if uf[x] != x {
			uf[x] = find(uf[x])
		}
		return uf[x]
	}

	header := make([]int, r) // innermost collapsing header per node, -1 = none
	for i := range header {
		header[i] = -1
	}
	loopAt := make([]*Loop, r)

	for w := r - 1; w >= 0; w-- {
		if len(backPreds[w]) == 0 {
			continue
		}
		irreducible := false
		body := map[int]bool{}
		var work []int
		for _, v := range backPreds[w] {
			if v != w {
				x := find(v)
				if !body[x] {
					body[x] = true
					work = append(work, x)
				}
			}
			// A self loop (v == w) makes w a header with an empty extra
			// body.
		}
		for len(work) > 0 {
			x := work[len(work)-1]
			work = work[:len(work)-1]
			for _, yRaw := range nonBackPreds[x] {
				y := find(yRaw)
				if !d.IsAncestor(vertex[w], vertex[y]) {
					// An entry from outside the spanning subtree of w:
					// the loop has a second entry. Havlak defers the
					// offending edge to the enclosing loop.
					irreducible = true
					nonBackPreds[w] = append(nonBackPreds[w], y)
					continue
				}
				if y != w && !body[y] {
					body[y] = true
					work = append(work, y)
				}
			}
		}

		loop := &Loop{Header: vertex[w], Irreducible: irreducible}
		loop.Blocks = append(loop.Blocks, vertex[w])
		for x := range body {
			header[x] = w
			if child := loopAt[x]; child != nil && child.Parent == nil {
				child.Parent = loop
				loop.Children = append(loop.Children, child)
			}
			loop.Blocks = append(loop.Blocks, vertex[x])
			uf[x] = w
		}
		loopAt[w] = loop
		f.Loops = append(f.Loops, loop)
	}

	// Each union-find representative was collapsed into at most one loop;
	// recover full membership and depths from those records.
	f.assignMembership(d, header, loopAt, r)
	return f
}

// assignMembership fills LoopOf, Depth and completes Blocks with full
// member lists (nested members included).
func (f *Forest) assignMembership(d *cfg.DFS, header []int, loopAt []*Loop, r int) {
	var setDepth func(l *Loop, depth int)
	setDepth = func(l *Loop, depth int) {
		l.Depth = depth
		for _, c := range l.Children {
			setDepth(c, depth+1)
		}
	}
	for _, l := range f.Loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}
	// Innermost loop per node: the loop it heads, else the loop that
	// collapsed it.
	for w := 0; w < r; w++ {
		node := d.PreOrder[w]
		switch {
		case loopAt[w] != nil:
			f.LoopOf[node] = loopAt[w]
		case header[w] >= 0:
			f.LoopOf[node] = loopAt[header[w]]
		}
	}
	// Complete the member lists: every node appears in all enclosing
	// loops.
	for _, l := range f.Loops {
		l.Blocks = l.Blocks[:0]
	}
	for node, l := range f.LoopOf {
		for x := l; x != nil; x = x.Parent {
			x.Blocks = append(x.Blocks, node)
		}
	}
}

// NumLoops returns the loop count.
func (f *Forest) NumLoops() int { return len(f.Loops) }

// Contains reports whether loop l contains node v (at any nesting depth).
func (f *Forest) Contains(l *Loop, v int) bool {
	for x := f.LoopOf[v]; x != nil; x = x.Parent {
		if x == l {
			return true
		}
	}
	return false
}

// Depth returns the loop nesting depth of node v (0 outside all loops).
func (f *Forest) Depth(v int) int {
	if l := f.LoopOf[v]; l != nil {
		return l.Depth
	}
	return 0
}
