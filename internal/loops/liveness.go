package loops

import (
	"errors"

	"fastliveness/internal/bitset"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// ErrIrreducible is returned by Liveness for irreducible CFGs, where the
// two-pass loop-forest algorithm does not apply (Ramalingam's transform
// would be needed); callers fall back to the iterative solver.
var ErrIrreducible = errors.New("loops: irreducible control flow")

// Result holds per-block live sets, bit-indexed by value ID, exactly like
// the iterative data-flow result — the two are interchangeable and the test
// suite proves them equal.
type Result struct {
	LiveIn, LiveOut []*bitset.Set
	blockPos        map[*ir.Block]int
}

// Liveness computes full live-in/live-out sets with the loop-nesting-forest
// algorithm (paper §8 outlook; Boissinot et al., "Computing Liveness Sets
// for SSA-Form Programs"): one backward pass over the reduced CFG (a DAG),
// then one pass over the loop forest that extends everything live into a
// loop header to the entire loop. No fixed-point iteration is involved.
func Liveness(f *ir.Func) (*Result, error) {
	g, _ := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	return LivenessFrom(f, g, d, dom.Iterative(g, d))
}

// LivenessFrom is Liveness against existing CFG analyses of f (node i of g
// must correspond to f.Blocks[i], as cfg.FromFunc guarantees), so callers
// that already prepared the graph — the backend layer — don't rebuild it.
func LivenessFrom(f *ir.Func, g *cfg.Graph, d *cfg.DFS, tree *dom.Tree) (*Result, error) {
	if !dom.IsReducible(d, tree) {
		return nil, ErrIrreducible
	}

	nb := len(f.Blocks)
	nv := f.NumValues()
	r := &Result{
		LiveIn:   dataflow.NewSets(nb, nv),
		LiveOut:  dataflow.NewSets(nb, nv),
		blockPos: make(map[*ir.Block]int, nb),
	}
	for i, b := range f.Blocks {
		r.blockPos[b] = i
	}
	ueVar := dataflow.NewSets(nb, nv)
	defs := dataflow.NewSets(nb, nv)
	dataflow.FillLocalSets(f, ueVar, defs, r.blockPos)

	// Pass 1: one backward sweep over the reduced DAG in postorder
	// (successors first). Back edges are simply skipped.
	for _, v := range d.PostOrder {
		out := r.LiveOut[v]
		d.ReducedSuccs(v, func(w int) {
			out.Union(r.LiveIn[w])
		})
		in := r.LiveIn[v]
		in.Copy(out)
		in.Subtract(defs[v])
		in.Union(ueVar[v])
	}

	// Pass 2: loop propagation, outer loops first. Everything live-in at a
	// loop header is live-in and live-out throughout the loop: its
	// definition lies outside the loop (strict SSA: the definition
	// strictly dominates the header) and every loop block can reach the
	// header's upward-exposed uses around the back edge without meeting
	// the definition.
	forest := Build(g, d)
	var walk func(l *Loop)
	walk = func(l *Loop) {
		h := l.Header
		liveLoop := r.LiveIn[h].Clone()
		// Values defined in the header itself (φs included) are live *in*
		// the loop only where the DAG pass already said so; LiveIn(h)
		// excludes them by construction, so liveLoop is ready as is.
		for _, b := range l.Blocks {
			r.LiveIn[b].Union(liveLoop)
			r.LiveOut[b].Union(liveLoop)
		}
		// The header's live-in set must not claim live-in values as
		// live-out unless a successor needs them... it does: every value
		// in liveLoop is live-in at some loop block reachable from every
		// header successor inside the loop; for single-block self loops
		// the back edge itself witnesses it. LiveOut(h) ∪= liveLoop is
		// therefore exact, matching the iterative solver.
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, l := range forest.Loops {
		if l.Parent == nil {
			walk(l)
		}
	}
	return r, nil
}

// IsLiveIn reports whether v is live-in at b.
func (r *Result) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	return r.LiveIn[r.blockPos[b]].Has(v.ID)
}

// IsLiveOut reports whether v is live-out at b.
func (r *Result) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	return r.LiveOut[r.blockPos[b]].Has(v.ID)
}

// LiveInIDs returns the IDs of the values live-in at b, ascending.
func (r *Result) LiveInIDs(b *ir.Block) []int {
	return r.LiveIn[r.blockPos[b]].Elements()
}

// LiveOutIDs returns the IDs of the values live-out at b, ascending.
func (r *Result) LiveOutIDs(b *ir.Block) []int {
	return r.LiveOut[r.blockPos[b]].Elements()
}

// MemoryBytes reports the payload footprint of the live sets, for the
// §6.1-style memory comparison across engines.
func (r *Result) MemoryBytes() int {
	return bitset.TotalWordBytes(r.LiveIn, r.LiveOut)
}
