package loops

import (
	"fastliveness/internal/bitset"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
)

// Checker is the loop-nesting-forest variant of the liveness check — the
// adaptation the paper sketches in §8 ("our algorithm can be adapted to
// most loop nesting forest definitions") and the authors later published:
// on a reducible CFG, a variable defined at d is live-in at q iff one of
// its uses is reachable in the *reduced* (back-edge-free) graph from
//
//	OLE(q, d)  —  the header of the Outermost Loop containing q that
//	              Excludes d; q itself when no such loop exists.
//
// Intuition: inside every loop that contains q but not the definition, the
// value circulates around the back edge, so liveness at q is equivalent to
// liveness at that loop's header; hoisting q to the outermost such header
// reduces the query to plain forward reachability. This replaces the T_q
// machinery entirely: the precomputation is the same reduced-reachability
// closure R plus the loop forest, and a query is a single bitset probe per
// use.
//
// The construction requires a reducible CFG (New returns ErrIrreducible
// otherwise); the R/T checker of internal/core has no such restriction.
type Checker struct {
	g      *cfg.Graph
	tree   *dom.Tree
	forest *Forest

	// r row v is the reduced-reachability set of node v, indexed by node;
	// one arena backs all rows (see bitset.Matrix).
	r *bitset.Matrix
	// loopMembers row i is the member set of forest.Loops[i], indexed by
	// node.
	loopMembers *bitset.Matrix
	loopIndex   map[*Loop]int
	// chain[v] lists the loops containing v, outermost first.
	chain [][]*Loop

	backTarget []bool
}

// NewChecker builds the loop-forest checker for g. The graph must be
// reducible and every node reachable from node 0.
func NewChecker(g *cfg.Graph) (*Checker, error) {
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	if !dom.IsReducible(d, tree) {
		return nil, ErrIrreducible
	}
	n := g.N()
	c := &Checker{
		g:         g,
		tree:      tree,
		forest:    Build(g, d),
		r:         bitset.NewMatrix(n, n),
		loopIndex: map[*Loop]int{},
		chain:     make([][]*Loop, n),
	}

	// Reduced reachability, indexed by plain node id (not dominance
	// numbers — this checker never walks dominance intervals).
	for _, v := range d.PostOrder {
		c.r.RowAdd(v, v)
		d.ReducedSuccs(v, func(w int) {
			c.r.RowUnion(v, w)
		})
	}

	c.loopMembers = bitset.NewMatrix(len(c.forest.Loops), n)
	for i, l := range c.forest.Loops {
		c.loopIndex[l] = i
		for _, b := range l.Blocks {
			c.loopMembers.RowAdd(i, b)
		}
	}
	for v := 0; v < n; v++ {
		var rev []*Loop
		for l := c.forest.LoopOf[v]; l != nil; l = l.Parent {
			rev = append(rev, l)
		}
		// Outermost first.
		for i := len(rev) - 1; i >= 0; i-- {
			c.chain[v] = append(c.chain[v], rev[i])
		}
	}

	c.backTarget = make([]bool, n)
	for _, e := range d.BackEdges {
		c.backTarget[e.T] = true
	}
	return c, nil
}

// ole returns the Outermost-Loop-Excluding hoist point: the header of the
// outermost loop that contains q but not def, or q itself.
func (c *Checker) ole(q, def int) int {
	for _, l := range c.chain[q] {
		if !c.loopMembers.RowHas(c.loopIndex[l], def) {
			return l.Header
		}
	}
	return q
}

// IsLiveIn reports whether a variable defined at def with the given use
// nodes (paper Definition 1 placement) is live-in at q. Inputs follow the
// same contract as core.Checker: strict SSA dominance is assumed.
func (c *Checker) IsLiveIn(def int, uses []int, q int) bool {
	if !c.tree.Reachable(def) || !c.tree.Reachable(q) {
		return false
	}
	// The guard of Algorithm 3: liveness only exists strictly below the
	// definition.
	if !c.tree.StrictlyDominates(def, q) {
		return false
	}
	h := c.ole(q, def)
	for _, u := range uses {
		if u >= 0 && u < c.g.N() && c.tree.Reachable(u) && c.r.RowHas(h, u) {
			return true
		}
	}
	return false
}

// IsLiveOut reports whether the variable is live-out at q, by Definition 3
// (live-in at some successor) with the def-block special case of
// Algorithm 2.
func (c *Checker) IsLiveOut(def int, uses []int, q int) bool {
	if !c.tree.Reachable(def) || !c.tree.Reachable(q) {
		return false
	}
	if def == q {
		for _, u := range uses {
			if u != q && u >= 0 && u < c.g.N() && c.tree.Reachable(u) {
				return true
			}
		}
		return false
	}
	for _, s := range c.g.Succs[q] {
		if c.IsLiveIn(def, uses, s) {
			return true
		}
	}
	return false
}

// MemoryBytes reports the payload of the precomputed sets, for comparison
// with the R/T checker: the loop-forest variant stores R plus one member
// set per loop, but no T sets. Accounting goes through the arenas'
// footprint method, the same definition every matrix-backed engine uses.
func (c *Checker) MemoryBytes() int {
	return c.r.WordBytes() + c.loopMembers.WordBytes()
}
