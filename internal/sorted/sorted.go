// Package sorted implements sets as sorted dense arrays with binary-search
// membership.
//
// This is the representation the LAO code generator uses for its global
// liveness sets (paper §6.2): "sets represented as sorted dense arrays of
// pointers (to variables) … Testing set membership only requires a binary
// search, which takes logarithmic time in the set cardinality." For
// procedures with many variables this is far more memory-efficient than bit
// vectors, which is exactly the trade-off the paper measures against.
//
// Elements are int32 indices into a variable universe table, mirroring LAO's
// dense variable numbering.
package sorted

import "sort"

// Set is a sorted array of distinct int32 elements.
// The zero value is an empty set ready to use.
type Set struct {
	elems []int32
}

// New returns an empty set with capacity hint n.
func New(n int) *Set { return &Set{elems: make([]int32, 0, n)} }

// FromSlice builds a set from arbitrary (possibly unsorted, duplicated)
// values.
func FromSlice(vals []int32) *Set {
	s := New(len(vals))
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

// Len returns the cardinality.
func (s *Set) Len() int { return len(s.elems) }

// search returns the insertion index for v.
func (s *Set) search(v int32) int {
	return sort.Search(len(s.elems), func(i int) bool { return s.elems[i] >= v })
}

// Has reports membership via binary search.
func (s *Set) Has(v int32) bool {
	i := s.search(v)
	return i < len(s.elems) && s.elems[i] == v
}

// Add inserts v, keeping the array sorted. Reports whether the set changed.
func (s *Set) Add(v int32) bool {
	i := s.search(v)
	if i < len(s.elems) && s.elems[i] == v {
		return false
	}
	s.elems = append(s.elems, 0)
	copy(s.elems[i+1:], s.elems[i:])
	s.elems[i] = v
	return true
}

// Remove deletes v if present and reports whether the set changed.
func (s *Set) Remove(v int32) bool {
	i := s.search(v)
	if i >= len(s.elems) || s.elems[i] != v {
		return false
	}
	s.elems = append(s.elems[:i], s.elems[i+1:]...)
	return true
}

// UnionWith merges o into s with a linear merge and reports whether s
// changed. This is the bulk operation the data-flow solver leans on, so it
// avoids allocating: a first pass counts the union size, and when s has
// enough capacity the merge runs backward in place.
func (s *Set) UnionWith(o *Set) bool {
	if o.Len() == 0 {
		return false
	}
	if s.Len() == 0 {
		s.elems = append(s.elems[:0], o.elems...)
		return true
	}
	// Count the union size; also detects the no-change steady state of an
	// iterative solver.
	size := 0
	i, j := 0, 0
	for i < len(s.elems) && j < len(o.elems) {
		switch {
		case s.elems[i] < o.elems[j]:
			i++
		case s.elems[i] > o.elems[j]:
			j++
		default:
			i++
			j++
		}
		size++
	}
	size += len(s.elems) - i + len(o.elems) - j
	if size == len(s.elems) {
		return false
	}
	oldLen := len(s.elems)
	if cap(s.elems) >= size {
		s.elems = s.elems[:size]
	} else {
		grown := make([]int32, size, size+size/2)
		copy(grown, s.elems[:oldLen])
		s.elems = grown
	}
	// Backward merge: read positions never overtake the write position.
	w := size - 1
	i, j = oldLen-1, len(o.elems)-1
	for j >= 0 {
		if i >= 0 && s.elems[i] > o.elems[j] {
			s.elems[w] = s.elems[i]
			i--
		} else {
			if i >= 0 && s.elems[i] == o.elems[j] {
				i--
			}
			s.elems[w] = o.elems[j]
			j--
		}
		w--
	}
	// Remaining s prefix is already in place.
	return true
}

func (s *Set) containsAll(o *Set) bool {
	i, j := 0, 0
	for j < len(o.elems) {
		for i < len(s.elems) && s.elems[i] < o.elems[j] {
			i++
		}
		if i >= len(s.elems) || s.elems[i] != o.elems[j] {
			return false
		}
		j++
	}
	return true
}

// Equal reports element-wise equality.
func (s *Set) Equal(o *Set) bool {
	if len(s.elems) != len(o.elems) {
		return false
	}
	for i, v := range s.elems {
		if o.elems[i] != v {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{elems: make([]int32, len(s.elems))}
	copy(c.elems, s.elems)
	return c
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() { s.elems = s.elems[:0] }

// Elements returns the members in increasing order. The slice aliases
// internal storage.
func (s *Set) Elements() []int32 { return s.elems }

// ForEach calls f on every member in increasing order.
func (s *Set) ForEach(f func(v int32)) {
	for _, v := range s.elems {
		f(v)
	}
}

// MemoryBytes approximates the payload footprint, for the paper's §6.1
// break-even discussion (sorted arrays vs. bitsets).
func (s *Set) MemoryBytes() int { return cap(s.elems) * 4 }
