package sorted

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddKeepsSortedDistinct(t *testing.T) {
	s := New(0)
	in := []int32{5, 1, 9, 5, 3, 9, 0}
	for _, v := range in {
		s.Add(v)
	}
	want := []int32{0, 1, 3, 5, 9}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestHasRemove(t *testing.T) {
	s := FromSlice([]int32{2, 4, 6})
	if !s.Has(4) || s.Has(5) {
		t.Fatal("Has wrong")
	}
	if !s.Remove(4) {
		t.Fatal("Remove(4) should report change")
	}
	if s.Remove(4) {
		t.Fatal("second Remove(4) should be a no-op")
	}
	if s.Has(4) || s.Len() != 2 {
		t.Fatal("Remove did not delete")
	}
}

func TestAddReportsChange(t *testing.T) {
	s := New(4)
	if !s.Add(7) {
		t.Fatal("first Add should change")
	}
	if s.Add(7) {
		t.Fatal("duplicate Add should not change")
	}
}

func TestUnionWith(t *testing.T) {
	a := FromSlice([]int32{1, 3, 5})
	b := FromSlice([]int32{2, 3, 6})
	if !a.UnionWith(b) {
		t.Fatal("union should change a")
	}
	want := []int32{1, 2, 3, 5, 6}
	got := a.Elements()
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	// Unioning a subset must not report change (solver termination depends
	// on this).
	if a.UnionWith(b) {
		t.Fatal("second union should be a fixed point")
	}
	if a.UnionWith(New(0)) {
		t.Fatal("union with empty should not change")
	}
	empty := New(0)
	if !empty.UnionWith(a) {
		t.Fatal("empty ∪ a should change")
	}
	if !empty.Equal(a) {
		t.Fatal("empty ∪ a should equal a")
	}
}

func TestEqualCloneClear(t *testing.T) {
	a := FromSlice([]int32{1, 2, 3})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone unequal")
	}
	b.Add(4)
	if a.Equal(b) || a.Has(4) {
		t.Fatal("clone aliases original")
	}
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("clear failed")
	}
	if a.Equal(FromSlice([]int32{1, 2, 4})) {
		t.Fatal("different sets equal")
	}
}

// Property: Set under random ops behaves like a reference map, and Elements
// is always sorted and duplicate-free.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		ref := map[int32]bool{}
		for op := 0; op < 300; op++ {
			v := int32(rng.Intn(100))
			if rng.Intn(3) == 0 {
				s.Remove(v)
				delete(ref, v)
			} else {
				s.Add(v)
				ref[v] = true
			}
			if s.Has(v) != ref[v] || s.Len() != len(ref) {
				return false
			}
		}
		el := s.Elements()
		if !sort.SliceIsSorted(el, func(i, j int) bool { return el[i] < el[j] }) {
			return false
		}
		for i := 1; i < len(el); i++ {
			if el[i] == el[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnionWith agrees with map union.
func TestQuickUnion(t *testing.T) {
	f := func(xs, ys []int16) bool {
		a, b := New(0), New(0)
		ref := map[int32]bool{}
		for _, x := range xs {
			a.Add(int32(x))
			ref[int32(x)] = true
		}
		for _, y := range ys {
			b.Add(int32(y))
			ref[int32(y)] = true
		}
		a.UnionWith(b)
		if a.Len() != len(ref) {
			return false
		}
		for v := range ref {
			if !a.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
