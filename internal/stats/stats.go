// Package stats provides the small statistical toolbox the workload
// generator and the benchmark harness share: a normal quantile function
// (used to fit per-benchmark lognormal block-count distributions to the
// shape statistics of the paper's Table 1), summary helpers, and aligned
// text tables in the style of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// NormQuantile returns Φ⁻¹(p), the standard normal quantile, using Peter
// Acklam's rational approximation (relative error < 1.15e-9). It panics for
// p outside (0,1).
func NormQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: quantile of p=%v", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// FitLognormal returns (mu, sigma) of a lognormal distribution with the
// given mean whose CDF at x equals pAtX. This is how the generator turns
// Table 1's "average blocks" and "% ≤ 32 blocks" into a sampling
// distribution: solving
//
//	mean     = exp(mu + sigma²/2)
//	P(X ≤ x) = Φ((ln x − mu)/sigma) = pAtX
//
// for sigma via the quadratic sigma²/2 − z·sigma + ln(x/mean) = 0 with
// z = Φ⁻¹(pAtX).
func FitLognormal(mean, x, pAtX float64) (mu, sigma float64) {
	z := NormQuantile(pAtX)
	disc := z*z - 2*math.Log(x/mean)
	if disc < 0 {
		// Inconsistent inputs; fall back to a moderate spread.
		sigma = 0.8
	} else {
		sigma = z + math.Sqrt(disc)
		if sigma <= 0.05 {
			sigma = 0.05
		}
	}
	mu = math.Log(x) - sigma*z
	return mu, sigma
}

// Summary describes a sample of integer observations.
type Summary struct {
	N    int
	Sum  int
	Mean float64
	Max  int
}

// Summarize computes the summary of xs.
func Summarize(xs []int) Summary {
	s := Summary{N: len(xs)}
	for _, x := range xs {
		s.Sum += x
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N > 0 {
		s.Mean = float64(s.Sum) / float64(s.N)
	}
	return s
}

// PctLE returns the percentage of xs that are ≤ limit.
func PctLE(xs []int, limit int) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= limit {
			n++
		}
	}
	return 100 * float64(n) / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs.
func Percentile(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Table accumulates rows and renders them with aligned columns, in the
// plain style of the paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(width)*2 - 2
	for _, w := range width {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// F formats a float with the given decimals, for table cells.
func F(x float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, x)
}
