package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447, 1.0},
		{0.1586553, -1.0},
		{0.9772499, 2.0},
		{0.0013499, -3.0},
		{0.9986501, 3.0},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Symmetry.
	for _, p := range []float64{0.01, 0.1, 0.3, 0.45} {
		if got := NormQuantile(p) + NormQuantile(1-p); math.Abs(got) > 1e-9 {
			t.Errorf("asymmetry at p=%v: %v", p, got)
		}
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%v) should panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

// FitLognormal must hit both its constraints: the mean and the CDF value.
func TestFitLognormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ mean, x, p float64 }{
		{33.35, 32, 0.6951}, // gzip
		{69.28, 32, 0.5963}, // crafty
		{20.31, 32, 0.8461}, // mcf
	}
	for _, c := range cases {
		mu, sigma := FitLognormal(c.mean, c.x, c.p)
		// Empirical check by sampling.
		n := 200000
		sum, le := 0.0, 0
		for i := 0; i < n; i++ {
			v := math.Exp(mu + sigma*rng.NormFloat64())
			sum += v
			if v <= c.x {
				le++
			}
		}
		if gotMean := sum / float64(n); math.Abs(gotMean-c.mean) > 0.08*c.mean {
			t.Errorf("mean(%v): got %.2f, want %.2f", c, gotMean, c.mean)
		}
		if gotP := float64(le) / float64(n); math.Abs(gotP-c.p) > 0.02 {
			t.Errorf("P≤x(%v): got %.3f, want %.3f", c, gotP, c.p)
		}
	}
}

func TestSummaryAndPercentiles(t *testing.T) {
	xs := []int{5, 1, 9, 3}
	s := Summarize(xs)
	if s.N != 4 || s.Sum != 18 || s.Max != 9 || math.Abs(s.Mean-4.5) > 1e-9 {
		t.Fatalf("summary = %+v", s)
	}
	if got := PctLE(xs, 4); math.Abs(got-50) > 1e-9 {
		t.Fatalf("PctLE = %v", got)
	}
	if got := PctLE(nil, 4); got != 0 {
		t.Fatalf("PctLE(nil) = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %d", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Fatalf("P100 = %d", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("P50(nil) = %d", got)
	}
	if s := Summarize(nil); s.Mean != 0 {
		t.Fatal("empty summary mean should be 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[2], "alpha") {
		t.Fatalf("table malformed:\n%s", out)
	}
	// Columns aligned: header and data rows have the same width.
	if len(lines[0]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F broken")
	}
}
