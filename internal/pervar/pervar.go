// Package pervar implements the per-variable SSA liveness algorithm the
// paper discusses as related work [2] (Appel & Palsberg, "Modern Compiler
// Implementation in Java"): for each variable, walk backward from every use
// to the definition along the def-use chain, marking the blocks passed
// through as live.
//
// Like the paper's checker it exploits that a variable can only be live
// inside the dominance subtree of its definition and never traverses the
// instructions inside a block; unlike the checker, its result is an
// explicit set representation that program edits invalidate (§7: "it is as
// vulnerable to program modifications as the data-flow approaches").
//
// It can be run per variable in isolation, which the destruction driver
// exploits; Analyze precomputes all variables for the cross-validation
// tests.
package pervar

import (
	"fastliveness/internal/bitset"
	"fastliveness/internal/ir"
)

// Result records, per variable, the blocks where it is live-in/live-out.
type Result struct {
	// liveIn[blockPos] has bit v.ID set when v is live-in there.
	liveIn, liveOut []*bitset.Set
	blockPos        map[*ir.Block]int
}

// Analyze computes liveness for every value of f.
func Analyze(f *ir.Func) *Result {
	r := newResult(f)
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			r.analyzeValue(v)
		}
	})
	return r
}

// AnalyzeValues computes liveness for the given values only — the property
// the paper highlights about this algorithm (§7): "it can be run on each
// variable separately". Queries about unanalyzed values return false.
func AnalyzeValues(f *ir.Func, values []*ir.Value) *Result {
	r := newResult(f)
	for _, v := range values {
		if v.Op.HasResult() {
			r.analyzeValue(v)
		}
	}
	return r
}

func newResult(f *ir.Func) *Result {
	r := &Result{
		liveIn:   make([]*bitset.Set, len(f.Blocks)),
		liveOut:  make([]*bitset.Set, len(f.Blocks)),
		blockPos: make(map[*ir.Block]int, len(f.Blocks)),
	}
	nv := f.NumValues()
	for i, b := range f.Blocks {
		r.blockPos[b] = i
		r.liveIn[i] = bitset.New(nv)
		r.liveOut[i] = bitset.New(nv)
	}
	return r
}

// analyzeValue marks liveness for one variable by backward walks from its
// uses (paper Definition 1 placement) to its definition.
func (r *Result) analyzeValue(v *ir.Value) {
	def := v.Block
	var walkIn func(b *ir.Block)
	walkIn = func(b *ir.Block) {
		i := r.blockPos[b]
		if r.liveIn[i].Has(v.ID) {
			return
		}
		if b == def {
			// Never live-in at the definition block (Definition 2: the
			// path must not contain def).
			return
		}
		r.liveIn[i].Add(v.ID)
		for _, e := range b.Preds {
			p := r.blockPos[e.B]
			if !r.liveOut[p].Has(v.ID) {
				r.liveOut[p].Add(v.ID)
				walkIn(e.B)
			}
		}
	}
	for _, u := range v.Uses() {
		switch {
		case u.UserBlock != nil:
			walkIn(u.UserBlock)
		case u.User.Op == ir.OpPhi:
			walkIn(u.User.Block.Preds[u.Index].B)
		default:
			walkIn(u.User.Block)
		}
	}
}

// IsLiveIn reports whether v is live-in at b.
func (r *Result) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	return r.liveIn[r.blockPos[b]].Has(v.ID)
}

// IsLiveOut reports whether v is live-out at b.
func (r *Result) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	return r.liveOut[r.blockPos[b]].Has(v.ID)
}

// LiveInIDs returns the IDs of the values live-in at b, ascending.
func (r *Result) LiveInIDs(b *ir.Block) []int {
	return r.liveIn[r.blockPos[b]].Elements()
}

// LiveOutIDs returns the IDs of the values live-out at b, ascending.
func (r *Result) LiveOutIDs(b *ir.Block) []int {
	return r.liveOut[r.blockPos[b]].Elements()
}

// MemoryBytes reports the payload footprint of the live sets.
func (r *Result) MemoryBytes() int {
	return bitset.TotalWordBytes(r.liveIn, r.liveOut)
}
