package pervar

import (
	"testing"

	"fastliveness/internal/dataflow"
	"fastliveness/internal/ir"
)

func TestAnalyzeValuesIsolated(t *testing.T) {
	f := ir.MustParse(`
func @g(%a, %b) {
b0:
  %x = add %a, %b
  %y = mul %a, %a
  br b1
b1:
  %s = add %x, %y
  ret %s
}
`)
	x := f.ValueByName("x")
	y := f.ValueByName("y")
	b1 := f.BlockByName("b1")
	r := pervarAnalyzeOnly(f, x)
	if !r.IsLiveIn(x, b1) {
		t.Fatal("x should be live-in at b1")
	}
	// y was not analyzed: the partial result knows nothing about it.
	if r.IsLiveIn(y, b1) {
		t.Fatal("unanalyzed variable should report false")
	}
	// Analyzing y separately matches the full analysis for y.
	full := Analyze(f)
	ry := pervarAnalyzeOnly(f, y)
	for _, b := range f.Blocks {
		if ry.IsLiveIn(y, b) != full.IsLiveIn(y, b) || ry.IsLiveOut(y, b) != full.IsLiveOut(y, b) {
			t.Fatalf("per-variable run differs from full analysis at %s", b)
		}
	}
}

func pervarAnalyzeOnly(f *ir.Func, v *ir.Value) *Result {
	return AnalyzeValues(f, []*ir.Value{v})
}

func TestMatchesDataflowOnHandPrograms(t *testing.T) {
	srcs := []string{
		`
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`,
		`
func @nested(%n) {
b0:
  %z = const 0
  br h1
h1:
  %i = phi [%z, b0], [%i2, l1]
  %c1 = cmplt %i, %n
  if %c1 -> h2, done
h2:
  %j = phi [%z, h1], [%j2, body]
  %c2 = cmplt %j, %i
  if %c2 -> body, l1
body:
  %j2 = add %j, %i
  br h2
l1:
  %one = const 1
  %i2 = add %i, %one
  br h1
done:
  ret %i
}
`,
		`
func @irreducible(%p) {
b0:
  %a = const 1
  %x = add %a, %a
  if %p -> l1, l2
l1:
  %u = add %x, %a
  br l2
l2:
  %y = add %a, %x
  if %y -> l1, out
out:
  ret %y
}
`,
	}
	for _, src := range srcs {
		f, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("%v\n%s", err, src)
		}
		want := dataflow.Analyze(f)
		got := Analyze(f)
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			for _, b := range f.Blocks {
				if got.IsLiveIn(v, b) != want.IsLiveIn(v, b) {
					t.Errorf("%s: IsLiveIn(%s, %s) = %v, want %v",
						f.Name, v, b, got.IsLiveIn(v, b), want.IsLiveIn(v, b))
				}
				if got.IsLiveOut(v, b) != want.IsLiveOut(v, b) {
					t.Errorf("%s: IsLiveOut(%s, %s) = %v, want %v",
						f.Name, v, b, got.IsLiveOut(v, b), want.IsLiveOut(v, b))
				}
			}
		})
	}
}
