package sparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(10)
	if s.Len() != 0 || s.Has(3) {
		t.Fatal("fresh set not empty")
	}
	s.Add(3)
	s.Add(7)
	s.Add(3) // duplicate
	if s.Len() != 2 || !s.Has(3) || !s.Has(7) || s.Has(5) {
		t.Fatalf("unexpected contents, Len=%d", s.Len())
	}
	s.Remove(3)
	if s.Len() != 1 || s.Has(3) || !s.Has(7) {
		t.Fatal("Remove(3) failed")
	}
	s.Remove(3) // absent: no-op
	if s.Len() != 1 {
		t.Fatal("removing absent element changed length")
	}
}

func TestClearIsO1AndCorrect(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i++ {
		s.Add(i)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear did not empty")
	}
	for i := 0; i < 100; i++ {
		if s.Has(i) {
			t.Fatalf("stale member %d after Clear", i)
		}
	}
	// Re-adding after clear works, including elements whose sparse slots are
	// stale from the previous generation.
	s.Add(42)
	if !s.Has(42) || s.Len() != 1 {
		t.Fatal("Add after Clear broken")
	}
	if s.Has(41) {
		t.Fatal("stale sparse entry validated as member")
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(5)
	if s.Has(-1) || s.Has(5) {
		t.Fatal("out-of-range Has should be false")
	}
}

func TestMembersAliasAndOrderAgnostic(t *testing.T) {
	s := New(50)
	want := []int32{9, 1, 30}
	for _, v := range want {
		s.Add(int(v))
	}
	got := append([]int32(nil), s.Members()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestSwapRemoveKeepsInvariant(t *testing.T) {
	s := New(8)
	for i := 0; i < 8; i++ {
		s.Add(i)
	}
	// Remove from the middle repeatedly; remaining membership must be exact.
	s.Remove(0)
	s.Remove(4)
	s.Remove(7)
	for i := 0; i < 8; i++ {
		want := i != 0 && i != 4 && i != 7
		if s.Has(i) != want {
			t.Fatalf("Has(%d) = %v, want %v", i, s.Has(i), want)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}

// Property: a sparse set behaves like map[int]bool under a random operation
// sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		s := New(n)
		ref := map[int]bool{}
		for op := 0; op < 500; op++ {
			v := rng.Intn(n)
			switch rng.Intn(4) {
			case 0, 1:
				s.Add(v)
				ref[v] = true
			case 2:
				s.Remove(v)
				delete(ref, v)
			case 3:
				if rng.Intn(20) == 0 {
					s.Clear()
					ref = map[int]bool{}
				}
			}
			if s.Len() != len(ref) {
				return false
			}
			if s.Has(v) != ref[v] {
				return false
			}
		}
		count := 0
		s.ForEach(func(v int) {
			if !ref[v] {
				count = -1 << 30
			}
			count++
		})
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
