// Package sparse implements the sparse-set representation of Briggs and
// Torczon (An Efficient Representation for Sparse Sets, LOPLAS 1993).
//
// The paper's "native" baseline, the LAO liveness analysis, performs its
// local (per-block) analysis with exactly this structure (§6.2): O(1) add,
// membership, clear and iteration over a fixed universe, at the price of two
// words per universe element. The trick is mutual indexing: dense[k] lists
// the members, sparse[v] remembers where v sits in dense, and v is a member
// iff sparse[v] < len(dense) and dense[sparse[v]] == v — so Clear is O(1)
// because stale sparse entries are simply never validated.
package sparse

// Set is a Briggs–Torczon sparse set over the universe [0, cap).
type Set struct {
	dense  []int32
	sparse []int32
}

// New returns an empty set over the universe [0, universe).
func New(universe int) *Set {
	if universe < 0 {
		panic("sparse: negative universe")
	}
	return &Set{
		dense:  make([]int32, 0, universe),
		sparse: make([]int32, universe),
	}
}

// Universe returns the universe size.
func (s *Set) Universe() int { return cap(s.dense) }

// Len returns the number of members.
func (s *Set) Len() int { return len(s.dense) }

// Has reports whether v is a member.
func (s *Set) Has(v int) bool {
	if uint(v) >= uint(len(s.sparse)) {
		return false
	}
	i := s.sparse[v]
	return int(i) < len(s.dense) && s.dense[i] == int32(v)
}

// Add inserts v; it is a no-op if v is already present.
func (s *Set) Add(v int) {
	if s.Has(v) {
		return
	}
	s.sparse[v] = int32(len(s.dense))
	s.dense = append(s.dense, int32(v))
}

// Remove deletes v by swapping the last member into its slot; no-op when
// absent. Iteration order is therefore not insertion order after removals.
func (s *Set) Remove(v int) {
	if !s.Has(v) {
		return
	}
	i := s.sparse[v]
	last := s.dense[len(s.dense)-1]
	s.dense[i] = last
	s.sparse[last] = i
	s.dense = s.dense[:len(s.dense)-1]
}

// Clear empties the set in O(1).
func (s *Set) Clear() { s.dense = s.dense[:0] }

// Members returns the members in unspecified order. The returned slice
// aliases internal storage and is invalidated by the next mutation.
func (s *Set) Members() []int32 { return s.dense }

// ForEach calls f on each member in unspecified order.
func (s *Set) ForEach(f func(v int)) {
	for _, v := range s.dense {
		f(int(v))
	}
}
