package retry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	b := NewBackoff(2*time.Millisecond, 50*time.Millisecond, 7)
	prev := time.Duration(0)
	for i := 0; i < 32; i++ {
		d := b.Next()
		if d < 2*time.Millisecond || d > 50*time.Millisecond {
			t.Fatalf("delay %d = %v outside [2ms, 50ms]", i, d)
		}
		hi := 3 * prev
		if hi < 2*time.Millisecond {
			hi = 2 * time.Millisecond
		}
		if hi > 50*time.Millisecond {
			hi = 50 * time.Millisecond
		}
		if d > hi {
			t.Fatalf("delay %d = %v exceeds decorrelated bound %v", i, d, hi)
		}
		prev = d
	}
}

func TestBackoffSeededDeterministic(t *testing.T) {
	a := NewBackoff(time.Millisecond, 100*time.Millisecond, 13)
	b := NewBackoff(time.Millisecond, 100*time.Millisecond, 13)
	for i := 0; i < 16; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(time.Millisecond, time.Second, 3)
	for i := 0; i < 8; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d != time.Millisecond {
		t.Fatalf("first delay after Reset = %v, want base", d)
	}
}

// fakeClock is a hand-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second, Now: clk.Now})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(0, true)
	}
	// A success resets the run.
	b.Allow()
	b.Record(0, false)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(0, true)
	}
	if b.State() != Open {
		t.Fatalf("state = %v after 3 consecutive failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
}

func TestBreakerLatencyCeilingCountsAsFailure(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 2, Latency: 10 * time.Millisecond})
	b.Record(20*time.Millisecond, false)
	b.Record(20*time.Millisecond, false)
	if b.State() != Open {
		t.Fatalf("state = %v after 2 over-ceiling ops, want open", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Now: clk.Now})
	b.Allow()
	b.Record(0, true)
	if b.State() != Open {
		t.Fatal("breaker did not open")
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second call alongside the probe")
	}
	// Probe fails: back to open, new cooldown.
	b.Record(0, true)
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call before the new cooldown")
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	// Probe succeeds: closed, counting from zero again.
	b.Record(0, false)
	if b.State() != Closed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic")
	}
}

func TestBreakerStragglerRecordInOpenIsIgnored(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Hour})
	b.Allow()
	b.Record(0, true)
	// A call admitted before the breaker opened reports now.
	b.Record(0, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open (straggler must not half-close it)", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 5, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					b.Record(0, (i+g)%3 == 0)
				}
				_ = b.State()
			}
		}(g)
	}
	wg.Wait()
}

func TestBreakerOnTransition(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	var got []string
	b := NewBreaker(BreakerConfig{
		Failures: 2, Cooldown: time.Second, Now: clk.Now,
		OnTransition: func(from, to State) {
			got = append(got, from.String()+">"+to.String())
		},
	})
	// Closed -> Open after two failures.
	b.Allow()
	b.Record(0, true)
	b.Allow()
	b.Record(0, true)
	// Open -> HalfOpen via the cooled-down probe, then -> Open on probe
	// failure.
	clk.Advance(2 * time.Second)
	b.Allow()
	b.Record(0, true)
	// Open -> HalfOpen -> Closed on probe success.
	clk.Advance(2 * time.Second)
	b.Allow()
	b.Record(0, false)
	want := "closed>open;open>half-open;half-open>open;open>half-open;half-open>closed"
	if s := strings.Join(got, ";"); s != want {
		t.Fatalf("transitions:\n got %s\nwant %s", s, want)
	}
	// The callback may call back into the breaker: no deadlock.
	reentrant := NewBreaker(BreakerConfig{Failures: 1})
	reentrant.cfg.OnTransition = func(from, to State) { _ = reentrant.State() }
	reentrant.Record(0, true)
	if reentrant.State() != Open {
		t.Fatal("reentrant callback broke the transition")
	}
}
