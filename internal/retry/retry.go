// Package retry holds the failure-model primitives the engine and the
// snapshot tier share: a decorrelated-jitter backoff (the retry pacing of
// quarantined builds and transient snapshot saves) and a consecutive-
// failure/latency circuit breaker (the degradation switch in front of the
// snapshot disk tier).
//
// Both are deliberately tiny and dependency-free; policy — what counts as
// a failure, what to do when the breaker is open — stays with the caller.
package retry

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// autoseed distinguishes Backoffs constructed with seed 0 so independent
// handles do not march in lockstep.
var autoseed atomic.Int64

// Backoff produces decorrelated-jitter delays (the AWS architecture-blog
// scheme): each delay is drawn uniformly from [base, 3*prev], capped, so
// consecutive retries spread apart quickly but never collapse onto a
// shared schedule the way plain exponential backoff does under fan-out.
// Safe for concurrent use.
type Backoff struct {
	base, cap time.Duration

	mu   sync.Mutex
	rng  *rand.Rand
	prev time.Duration
}

// NewBackoff returns a backoff stepping from base up to cap. A zero seed
// self-seeds from a process-global counter; any other seed gives a
// reproducible delay sequence.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	if seed == 0 {
		seed = autoseed.Add(1)
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next delay: min(cap, uniform(base, 3*prev)), starting
// from base.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	hi := 3 * b.prev
	if hi < b.base {
		hi = b.base
	}
	d := b.base
	if hi > b.base {
		d = b.base + time.Duration(b.rng.Int63n(int64(hi-b.base)+1))
	}
	if d > b.cap {
		d = b.cap
	}
	b.prev = d
	return d
}

// Reset forgets the previous delay, so the next Next starts from base
// again — called when the guarded operation succeeds.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.prev = 0
	b.mu.Unlock()
}

// State is a circuit breaker's position.
type State uint8

const (
	// Closed passes traffic through; failures are being counted.
	Closed State = iota
	// Open short-circuits traffic; Allow returns false until the cooldown
	// elapses.
	Open
	// HalfOpen admits exactly one probe; its Record decides between
	// Closed (success) and Open again (failure).
	HalfOpen
)

// String names the state for stats and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "state(?)"
}

// BreakerConfig tunes a Breaker. The zero value opens after
// 4 consecutive failures, applies no latency ceiling, and cools down for
// one second before probing.
type BreakerConfig struct {
	// Failures is how many consecutive failures open the breaker.
	// 0 means 4.
	Failures int
	// Latency, when positive, is the per-operation ceiling: a successful
	// operation slower than this is recorded as a failure anyway — a disk
	// that answers in seconds is as useless to a build as one that errors.
	Latency time.Duration
	// Cooldown is how long an open breaker waits before admitting a
	// half-open probe. 0 means one second.
	Cooldown time.Duration
	// Now is the clock; nil means time.Now. Injectable for deterministic
	// tests.
	Now func() time.Time
	// OnTransition, when non-nil, is called after every state change with
	// the old and new state. It runs outside the breaker's lock (so it may
	// call back into the breaker) but synchronously on the goroutine whose
	// Allow or Record caused the transition — keep it fast. Transitions
	// are reported in order per goroutine; concurrent transitions may
	// interleave their callbacks.
	OnTransition func(from, to State)
}

func (c BreakerConfig) failures() int {
	if c.Failures > 0 {
		return c.Failures
	}
	return 4
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return time.Second
}

func (c BreakerConfig) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Breaker is a consecutive-failure circuit breaker with a latency
// ceiling. Callers bracket the guarded operation with Allow (may I run?)
// and Record (how did it go?); when Allow returns false the caller takes
// its degraded path — for the snapshot tier, "skip the disk, recompute
// from IR". Safe for concurrent use.
//
// Record calls that race a state transition (an operation admitted while
// Closed reporting after the breaker opened, or alongside a half-open
// probe) are folded into the current state's accounting rather than
// tracked per-admission; the breaker is a health summary, not a ledger.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	consecutive int       // failures since the last success (Closed)
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg}
}

// Allow reports whether the caller may run the guarded operation now.
// Open breakers admit nothing until the cooldown elapses, then exactly
// one probe at a time (half-open); every admitted call should be followed
// by Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var ok bool
	from, to := b.state, b.state
	switch b.state {
	case Closed:
		ok = true
	case Open:
		if b.cfg.now().Sub(b.openedAt) >= b.cfg.cooldown() {
			b.state = HalfOpen
			b.probing = true
			to = HalfOpen
			ok = true
		}
	default: // HalfOpen
		if !b.probing {
			b.probing = true
			ok = true
		}
	}
	b.mu.Unlock()
	b.notify(from, to)
	return ok
}

// notify fires the transition callback outside the lock when the state
// actually changed.
func (b *Breaker) notify(from, to State) {
	if from != to && b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// Record reports an admitted operation's outcome: failed says whether it
// errored, and d is how long it took (a successful operation slower than
// the configured latency ceiling counts as a failure). In Closed state a
// run of consecutive failures opens the breaker; in HalfOpen the probe's
// outcome closes or re-opens it.
func (b *Breaker) Record(d time.Duration, failed bool) {
	if b.cfg.Latency > 0 && d > b.cfg.Latency {
		failed = true
	}
	b.mu.Lock()
	from, to := b.state, b.state
	switch b.state {
	case Closed:
		if !failed {
			b.consecutive = 0
		} else {
			b.consecutive++
			if b.consecutive >= b.cfg.failures() {
				b.state = Open
				b.openedAt = b.cfg.now()
				to = Open
			}
		}
	case Open:
		// A straggler admitted before the breaker opened; its outcome
		// carries no new information.
	default: // HalfOpen: the probe's verdict
		b.probing = false
		if failed {
			b.state = Open
			b.openedAt = b.cfg.now()
			to = Open
		} else {
			b.state = Closed
			b.consecutive = 0
			to = Closed
		}
	}
	b.mu.Unlock()
	b.notify(from, to)
}

// State reports the breaker's current position without side effects; an
// Open breaker past its cooldown still reads Open until an Allow promotes
// it to HalfOpen.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
