// Package gen generates random structured programs in slot form. It is the
// stand-in for the paper's workload — the integer SPEC2000 benchmarks
// compiled by the LAO code generator (§6) — which we cannot ship. The
// evaluation never depends on what those programs compute, only on their
// shape: block counts, edges per block, back-edge fraction, reducibility
// and def-use-chain lengths, all of which the paper reports in Table 1 and
// §6.1 precisely so the reader can judge transferability. Package gen is
// calibrated, per benchmark, to reproduce those distributions (see
// spec2000.go), and the harness re-prints Table 1 from the generated corpus
// so the match is auditable.
//
// Programs are emitted with mutable variable slots (no φs); running
// ssa.Construct on the result yields the strict SSA programs every liveness
// engine consumes. Loops are counter-bounded so the interpreter can execute
// any generated program to completion, which the semantic-equivalence tests
// rely on.
package gen

import (
	"fmt"
	"math/rand"

	"fastliveness/internal/ir"
)

// Config tunes one generated function.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// TargetBlocks is the approximate number of basic blocks to emit.
	TargetBlocks int
	// Slots is the number of user variable slots (loop counters are extra).
	Slots int
	// Params is the number of function parameters.
	Params int
	// MaxDepth bounds control-structure nesting.
	MaxDepth int
	// MaxLoopTrip bounds loop trip counts (for interpreter-friendliness).
	MaxLoopTrip int
	// FreshBias is the probability an expression operand reuses the most
	// recent value of the current block; high values drive the
	// single-use-dominated def-use distribution of Table 1.
	FreshBias float64
	// CallProb emits opaque calls with that probability per statement.
	CallProb float64
	// BreakProb, ContinueProb and ReturnProb emit early exits.
	BreakProb, ContinueProb, ReturnProb float64
	// Irreducible adds a second entry into one loop (a "goto"), producing
	// irreducible control flow like the 7 functions the paper found.
	Irreducible bool
	// PressureVals pins that many extra SSA values: defined in the entry
	// block, folded into every return, and preferentially drawn as
	// operands everywhere in between. Their live ranges span the whole
	// CFG — across every loop header on the way to a return — so register
	// pressure rises with the count, the liveness-driven generation bias
	// of Barany's random-program work (PAPERS.md). Zero (the default)
	// leaves generation exactly as calibrated for Table 1.
	PressureVals int
	// PressureBias is the probability an operand draws from the pinned
	// pool instead of the normal sources; only consulted when
	// PressureVals > 0.
	PressureBias float64
}

// Default returns a reasonable mid-size configuration.
func Default(seed int64) Config {
	return Config{
		Seed:         seed,
		TargetBlocks: 36,
		Slots:        6,
		Params:       3,
		MaxDepth:     5,
		MaxLoopTrip:  4,
		FreshBias:    0.72,
		CallProb:     0.08,
		BreakProb:    0.06,
		ContinueProb: 0.04,
		ReturnProb:   0.05,
	}
}

// HighPressure returns a configuration biased toward high register
// pressure: a pool of function-spanning live ranges on top of the default
// structured shape. Register-allocation tests and the differential corpus
// use it so the liveness engines are exercised on dense functions, not
// just the sparse Table 1 calibration.
func HighPressure(seed int64) Config {
	c := Default(seed)
	c.PressureVals = 10
	c.PressureBias = 0.3
	c.FreshBias = 0.5 // more multi-use, longer overlapping ranges
	return c
}

// Generate builds a slot-form function. The result passes ir.Verify, has
// every block reachable, and terminates on every input under interp.Run.
func Generate(name string, c Config) *ir.Func {
	if c.TargetBlocks < 1 {
		c.TargetBlocks = 1
	}
	if c.Slots < 1 {
		c.Slots = 1
	}
	if c.MaxLoopTrip < 1 {
		c.MaxLoopTrip = 1
	}
	if c.MaxDepth < 1 {
		c.MaxDepth = 1
	}
	b := &builder{
		rng:    rand.New(rand.NewSource(c.Seed)),
		f:      ir.NewFunc(name),
		c:      c,
		budget: c.TargetBlocks - 1, // entry block is spent already
	}
	entry := b.f.NewBlock(ir.BlockRet)
	b.f.NumSlots = c.Slots
	for i := 0; i < c.Params; i++ {
		p := entry.NewValueI(ir.OpParam, int64(i))
		p.Name = fmt.Sprintf("p%d", i)
		b.params = append(b.params, p)
	}
	// Initialize the user slots from parameters and constants so the
	// program's behaviour depends on its inputs.
	for s := 0; s < c.Slots; s++ {
		v := b.expr(entry)
		entry.NewValueI(ir.OpSlotStore, int64(s), v)
	}
	// Pin the long-lived pressure values: entry-defined SSA values whose
	// uses (operand draws below, the fold at every return) stretch their
	// ranges across the whole function.
	for i := 0; i < c.PressureVals; i++ {
		b.pinned = append(b.pinned, b.expr(entry))
	}

	end, terminated := b.region(entry, 0, nil)
	if c.Irreducible && len(b.irredCands) == 0 && !terminated {
		// The random build produced no suitable loop; append a small
		// guaranteed-irreducible gadget before the return.
		end = b.irreducibleGadget(end)
	}
	if !terminated {
		b.ret(end)
	}
	if c.Irreducible && len(b.irredCands) > 0 {
		b.injectIrreducible()
	}
	return b.f
}

// irreducibleGadget appends a bounded two-entry loop:
//
//	end ─┬─> h ──> x     h ⇄ x is a loop, entered at h (from end)
//	     └─────────^     and at x (also from end): irreducible.
//
// The loop runs at most MaxLoopTrip iterations via a fresh counter slot.
func (b *builder) irreducibleGadget(end *ir.Block) *ir.Block {
	ctr := b.newCounterSlot()
	z := end.NewValueI(ir.OpConst, 0)
	end.NewValueI(ir.OpSlotStore, ctr, z)
	cond := b.cond(end)
	h := b.newBlock()
	x := b.newBlock()
	exit := b.newBlock()
	end.Kind = ir.BlockIf
	end.SetControl(cond)
	end.AddEdgeTo(h)
	end.AddEdgeTo(x)

	cv := h.NewValueI(ir.OpSlotLoad, ctr)
	k := h.NewValueI(ir.OpConst, int64(1+b.rng.Intn(b.c.MaxLoopTrip)))
	hc := h.NewValue(ir.OpCmpLT, cv, k)
	h.Kind = ir.BlockIf
	h.SetControl(hc)
	h.AddEdgeTo(x)
	h.AddEdgeTo(exit)

	c2 := x.NewValueI(ir.OpSlotLoad, ctr)
	one := x.NewValueI(ir.OpConst, 1)
	x.NewValueI(ir.OpSlotStore, ctr, x.NewValue(ir.OpAdd, c2, one))
	b.br(x, h)
	return exit
}

type loopCtx struct {
	latch, exit *ir.Block
}

type irredCand struct {
	pre  *ir.Block // plain block branching to the loop header
	body *ir.Block // first block of the loop body
}

type builder struct {
	rng        *rand.Rand
	f          *ir.Func
	c          Config
	budget     int
	params     []*ir.Value
	pinned     []*ir.Value // entry-defined long-lived values (PressureVals)
	irredCands []irredCand
}

func (b *builder) newBlock() *ir.Block {
	b.budget--
	return b.f.NewBlock(ir.BlockRet)
}

func (b *builder) br(from, to *ir.Block) {
	from.Kind = ir.BlockPlain
	from.AddEdgeTo(to)
}

func (b *builder) iff(from *ir.Block, cond *ir.Value, t, e *ir.Block) {
	from.Kind = ir.BlockIf
	from.SetControl(cond)
	from.AddEdgeTo(t)
	from.AddEdgeTo(e)
}

func (b *builder) ret(from *ir.Block) {
	from.Kind = ir.BlockRet
	r := b.expr(from)
	// Fold every pinned value into the result so its live range reaches
	// each function exit — live across everything on the way there.
	for _, v := range b.pinned {
		r = from.NewValue(ir.OpAdd, r, v)
	}
	from.SetControl(r)
}

// operand picks an expression input in the current block: a recent value of
// the block, a parameter, a slot load, or a constant.
func (b *builder) operand(blk *ir.Block) *ir.Value {
	// The freshest still-unused result of this block (dominance-safe by
	// construction): consuming it keeps variables single-use, the dominant
	// def-use shape of Table 1.
	freshResult := func() *ir.Value {
		for i := len(blk.Values) - 1; i >= 0 && i >= len(blk.Values)-6; i-- {
			v := blk.Values[i]
			if v.Op.HasResult() && v.Op != ir.OpPhi && v.NumUses() == 0 {
				return v
			}
		}
		return nil
	}
	if len(b.pinned) > 0 && b.rng.Float64() < b.c.PressureBias {
		return b.pinned[b.rng.Intn(len(b.pinned))]
	}
	r := b.rng.Float64()
	if r < b.c.FreshBias {
		if v := freshResult(); v != nil {
			return v
		}
	}
	switch b.rng.Intn(6) {
	case 0:
		if len(b.params) > 0 {
			return b.params[b.rng.Intn(len(b.params))]
		}
		fallthrough
	case 1, 2:
		return blk.NewValueI(ir.OpSlotLoad, int64(b.rng.Intn(b.c.Slots)))
	case 3:
		// An older value from this block, if any: the multi-use tail.
		var results []*ir.Value
		for _, v := range blk.Values {
			if v.Op.HasResult() && v.Op != ir.OpPhi {
				results = append(results, v)
			}
		}
		if len(results) > 0 {
			return results[b.rng.Intn(len(results))]
		}
		fallthrough
	default:
		return blk.NewValueI(ir.OpConst, int64(b.rng.Intn(19)-9))
	}
}

var binOps = []ir.Op{
	ir.OpAdd, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
	ir.OpXor, ir.OpShl, ir.OpShr, ir.OpDiv, ir.OpMod, ir.OpCmpEQ, ir.OpCmpLT,
}

// expr emits a small expression tree into blk and returns its root.
func (b *builder) expr(blk *ir.Block) *ir.Value {
	if b.rng.Float64() < b.c.CallProb {
		n := b.rng.Intn(3)
		args := make([]*ir.Value, n)
		for i := range args {
			args[i] = b.operand(blk)
		}
		return blk.NewValueAux(ir.OpCall, 0, fmt.Sprintf("ext%d", b.rng.Intn(8)), args...)
	}
	op := binOps[b.rng.Intn(len(binOps))]
	return blk.NewValue(op, b.operand(blk), b.operand(blk))
}

// cond emits a branch condition.
func (b *builder) cond(blk *ir.Block) *ir.Value {
	op := ir.OpCmpLT
	if b.rng.Intn(2) == 0 {
		op = ir.OpCmpEQ
	}
	return blk.NewValue(op, b.operand(blk), b.operand(blk))
}

// region emits statements starting in cur until the block budget runs out
// or an early exit terminates it. It returns the block where control
// continues and whether the region terminated (returned/broke/continued on
// every path).
func (b *builder) region(cur *ir.Block, depth int, lc *loopCtx) (*ir.Block, bool) {
	for b.budget > 0 {
		r := b.rng.Float64()
		// Early exits.
		if lc != nil && r < b.c.BreakProb {
			b.br(cur, lc.exit)
			return nil, true
		}
		if lc != nil && r < b.c.BreakProb+b.c.ContinueProb {
			b.br(cur, lc.latch)
			return nil, true
		}
		retProb := b.c.ReturnProb
		if b.budget > 60 {
			// Damp early returns while lots of budget remains, so large
			// procedures actually reach their block target: a single
			// both-arms-return conditional would otherwise end the whole
			// function.
			retProb *= 60 / float64(b.budget)
		}
		if depth > 0 && r < b.c.BreakProb+b.c.ContinueProb+retProb {
			b.ret(cur)
			return nil, true
		}

		// Plain statements: a burst of assignments.
		for n := 1 + b.rng.Intn(3); n > 0; n-- {
			slot := int64(b.rng.Intn(b.c.Slots))
			cur.NewValueI(ir.OpSlotStore, slot, b.expr(cur))
		}
		if depth >= b.c.MaxDepth || b.rng.Intn(3) == 0 {
			// Sequence: fall through to a new plain block to burn budget.
			// Sub-regions may stop early (their caller continues with the
			// remaining budget); the top-level region keeps going so the
			// procedure actually reaches its block target.
			if b.budget <= 0 || (depth > 0 && b.rng.Intn(4) == 0) {
				break
			}
			next := b.newBlock()
			b.br(cur, next)
			cur = next
			continue
		}
		var term bool
		cur, term = b.controlStmt(cur, depth, lc)
		if term {
			return nil, true
		}
	}
	return cur, false
}

// controlStmt emits one structured control statement and returns the join
// block (or termination).
func (b *builder) controlStmt(cur *ir.Block, depth int, lc *loopCtx) (*ir.Block, bool) {
	// The mix targets the §6.1 shape: ~1.3 edges per block with back edges
	// around 3.6% of all edges — conditionals dominate, loops are sparser.
	switch b.rng.Intn(8) {
	case 0, 1, 2, 3: // if / if-else
		return b.ifStmt(cur, depth, lc)
	case 4: // while
		return b.whileStmt(cur, depth), false
	case 5: // do-while
		return b.doWhileStmt(cur, depth)
	default: // switch
		return b.switchStmt(cur, depth, lc)
	}
}

func (b *builder) ifStmt(cur *ir.Block, depth int, lc *loopCtx) (*ir.Block, bool) {
	cond := b.cond(cur)
	thenB := b.newBlock()
	elseB := b.newBlock()
	b.iff(cur, cond, thenB, elseB)
	tEnd, tTerm := b.region(thenB, depth+1, lc)
	eEnd, eTerm := b.region(elseB, depth+1, lc)
	if tTerm && eTerm {
		return nil, true
	}
	join := b.newBlock()
	if !tTerm {
		b.br(tEnd, join)
	}
	if !eTerm {
		b.br(eEnd, join)
	}
	return join, false
}

// whileStmt emits a counter-bounded while loop; the loop always terminates
// because the counter increments monotonically toward a constant bound.
func (b *builder) whileStmt(cur *ir.Block, depth int) *ir.Block {
	ctr := b.newCounterSlot()
	z := cur.NewValueI(ir.OpConst, 0)
	cur.NewValueI(ir.OpSlotStore, ctr, z)
	header := b.newBlock()
	pre := cur
	b.br(cur, header)

	c := header.NewValueI(ir.OpSlotLoad, ctr)
	k := header.NewValueI(ir.OpConst, int64(1+b.rng.Intn(b.c.MaxLoopTrip)))
	cond := header.NewValue(ir.OpCmpLT, c, k)
	body := b.newBlock()
	exit := b.newBlock()
	latch := b.newBlock()
	b.iff(header, cond, body, exit)

	bEnd, bTerm := b.region(body, depth+1, &loopCtx{latch: latch, exit: exit})
	if !bTerm {
		b.br(bEnd, latch)
	}
	if len(latch.Preds) == 0 {
		// Every path through the body returned or broke; the latch is
		// unreachable and must go.
		b.f.RemoveBlock(latch)
	} else {
		c2 := latch.NewValueI(ir.OpSlotLoad, ctr)
		one := latch.NewValueI(ir.OpConst, 1)
		inc := latch.NewValue(ir.OpAdd, c2, one)
		latch.NewValueI(ir.OpSlotStore, ctr, inc)
		b.br(latch, header)
		b.irredCands = append(b.irredCands, irredCand{pre: pre, body: body})
	}
	return exit
}

// doWhileStmt emits a bottom-tested loop.
func (b *builder) doWhileStmt(cur *ir.Block, depth int) (*ir.Block, bool) {
	ctr := b.newCounterSlot()
	z := cur.NewValueI(ir.OpConst, 0)
	cur.NewValueI(ir.OpSlotStore, ctr, z)
	body := b.newBlock()
	pre := cur
	b.br(cur, body)
	latch := b.newBlock()
	exit := b.newBlock()

	bEnd, bTerm := b.region(body, depth+1, &loopCtx{latch: latch, exit: exit})
	if !bTerm {
		b.br(bEnd, latch)
	}
	if len(latch.Preds) == 0 {
		b.f.RemoveBlock(latch)
		if len(exit.Preds) == 0 {
			// No break either: control never leaves through the loop
			// bottom; the whole statement terminated.
			b.f.RemoveBlock(exit)
			return nil, true
		}
		return exit, false
	}
	c2 := latch.NewValueI(ir.OpSlotLoad, ctr)
	one := latch.NewValueI(ir.OpConst, 1)
	inc := latch.NewValue(ir.OpAdd, c2, one)
	latch.NewValueI(ir.OpSlotStore, ctr, inc)
	k := latch.NewValueI(ir.OpConst, int64(1+b.rng.Intn(b.c.MaxLoopTrip)))
	cond := latch.NewValue(ir.OpCmpLT, inc, k)
	latch.Kind = ir.BlockIf
	latch.SetControl(cond)
	latch.AddEdgeTo(body)
	latch.AddEdgeTo(exit)
	// In a bottom-tested loop the body block IS the loop header, so the
	// irreducibility candidate jumps into the latch instead: an edge from
	// before the loop to the latch gives the loop a second entry.
	b.irredCands = append(b.irredCands, irredCand{pre: pre, body: latch})
	return exit, false
}

func (b *builder) switchStmt(cur *ir.Block, depth int, lc *loopCtx) (*ir.Block, bool) {
	cond := b.expr(cur)
	arms := 2 + b.rng.Intn(3)
	cur.Kind = ir.BlockSwitch
	cur.SetControl(cond)
	join := b.newBlock()
	joinUsed := false
	for i := 0; i < arms; i++ {
		arm := b.newBlock()
		cur.AddEdgeTo(arm)
		aEnd, aTerm := b.region(arm, depth+1, lc)
		if !aTerm {
			b.br(aEnd, join)
			joinUsed = true
		}
	}
	if !joinUsed {
		b.f.RemoveBlock(join)
		return nil, true
	}
	return join, false
}

func (b *builder) newCounterSlot() int64 {
	s := int64(b.f.NumSlots)
	b.f.NumSlots++
	return s
}

// injectIrreducible turns loops into two-entry loops by branching from the
// block before a loop header directly into the loop body — the classic
// goto-into-loop shape (§2.1: "To create irreducible control flow, loops
// with multiple entries are necessary"). It converts up to three suitable
// candidates (the paper found ~8.6 irreducibility-contributing back edges
// per irreducible function).
func (b *builder) injectIrreducible() {
	want := 1 + b.rng.Intn(3)
	order := b.rng.Perm(len(b.irredCands))
	for _, i := range order {
		cand := b.irredCands[i]
		pre := cand.pre
		if pre.Kind != ir.BlockPlain {
			// The candidate's pre-header was converted by an earlier
			// injection (or is otherwise unsuitable); try the next one.
			continue
		}
		cond := b.cond(pre)
		pre.Kind = ir.BlockIf
		pre.SetControl(cond)
		pre.AddEdgeTo(cand.body)
		want--
		if want == 0 {
			return
		}
	}
}
