package gen

import (
	"math"
	"math/rand"
	"strconv"
	"strings"

	"fastliveness/internal/ir"
	"fastliveness/internal/stats"
)

// Spec describes one benchmark program of the paper's corpus: the shape
// statistics of Table 1 (basic blocks per procedure, uses per variable) and
// Table 2 (procedure and query counts). The generator reproduces the shape;
// the harness re-derives the statistics from the generated corpus and
// prints them next to these reference numbers.
type Spec struct {
	Name string
	// Procs is the number of compiled procedures (Table 2 "# Proc.").
	Procs int
	// AvgBlocks, PctLE32, PctLE64 describe the per-procedure basic block
	// distribution (Table 1).
	AvgBlocks        float64
	PctLE32, PctLE64 float64
	// SumBlocks is Table 1's "Sum" column, for reference output.
	SumBlocks int
	// MaxUses and UsePct give the uses-per-variable distribution
	// (Table 1): the maximum and the CDF at 1..4 uses.
	MaxUses int
	UsePct  [4]float64
	// Queries is Table 2's "# Queries", the liveness queries SSA
	// destruction issued; used for reference output.
	Queries int
	// IrreducibleFuncs is how many of the generated procedures receive a
	// second loop entry. The paper found 7 irreducible functions among
	// 4823 (§6.1); we spread them over the two largest benchmarks.
	IrreducibleFuncs int
}

// SPEC2000 is the integer SPEC2000 subset of the paper (§6), with the
// shape statistics transcribed from Table 1 and Table 2.
var SPEC2000 = []Spec{
	{Name: "164.gzip", Procs: 82, AvgBlocks: 33.35, PctLE32: 69.51, PctLE64: 85.36, SumBlocks: 2735,
		MaxUses: 51, UsePct: [4]float64{65.64, 86.38, 92.81, 95.94}, Queries: 90659},
	{Name: "175.vpr", Procs: 225, AvgBlocks: 34.45, PctLE32: 68.88, PctLE64: 84.44, SumBlocks: 7752,
		MaxUses: 75, UsePct: [4]float64{70.36, 88.90, 93.93, 96.28}, Queries: 55670},
	{Name: "176.gcc", Procs: 2019, AvgBlocks: 38.96, PctLE32: 72.85, PctLE64: 86.03, SumBlocks: 78666,
		MaxUses: 422, UsePct: [4]float64{73.99, 87.81, 92.42, 94.84}, Queries: 1109202, IrreducibleFuncs: 4},
	{Name: "181.mcf", Procs: 26, AvgBlocks: 20.31, PctLE32: 84.61, PctLE64: 100.00, SumBlocks: 528,
		MaxUses: 46, UsePct: [4]float64{66.91, 83.50, 89.33, 94.46}, Queries: 2369},
	{Name: "186.crafty", Procs: 109, AvgBlocks: 69.28, PctLE32: 59.63, PctLE64: 76.14, SumBlocks: 7551,
		MaxUses: 620, UsePct: [4]float64{72.98, 90.09, 93.85, 95.75}, Queries: 858121},
	{Name: "197.parser", Procs: 323, AvgBlocks: 23.60, PctLE32: 84.82, PctLE64: 93.49, SumBlocks: 7623,
		MaxUses: 96, UsePct: [4]float64{65.12, 86.75, 94.26, 96.62}, Queries: 38719},
	{Name: "254.gap", Procs: 852, AvgBlocks: 32.89, PctLE32: 67.60, PctLE64: 87.44, SumBlocks: 28020,
		MaxUses: 156, UsePct: [4]float64{70.46, 85.95, 91.26, 94.54}, Queries: 245540, IrreducibleFuncs: 2},
	{Name: "255.vortex", Procs: 923, AvgBlocks: 26.46, PctLE32: 77.57, PctLE64: 90.68, SumBlocks: 24425,
		MaxUses: 254, UsePct: [4]float64{65.99, 90.80, 95.02, 96.97}, Queries: 88554, IrreducibleFuncs: 1},
	{Name: "256.bzip2", Procs: 74, AvgBlocks: 22.97, PctLE32: 78.37, PctLE64: 91.89, SumBlocks: 1700,
		MaxUses: 36, UsePct: [4]float64{69.89, 89.89, 94.47, 96.17}, Queries: 10100},
	{Name: "300.twolf", Procs: 190, AvgBlocks: 56.97, PctLE32: 59.47, PctLE64: 77.36, SumBlocks: 10825,
		MaxUses: 165, UsePct: [4]float64{69.71, 87.59, 93.23, 95.92}, Queries: 184621},
}

// SpecByName returns the benchmark with the given name, or nil.
func SpecByName(name string) *Spec {
	for i := range SPEC2000 {
		if SPEC2000[i].Name == name {
			return &SPEC2000[i]
		}
	}
	return nil
}

// TotalProcs is the corpus size; the paper compiled 4823 procedures.
func TotalProcs() int {
	n := 0
	for _, s := range SPEC2000 {
		n += s.Procs
	}
	return n
}

// blockTarget samples a per-procedure block-count target from a lognormal
// distribution fitted to the benchmark's average and %≤32 statistics.
func (s *Spec) blockTarget(rng *rand.Rand) int {
	mu, sigma := stats.FitLognormal(s.AvgBlocks, 32, s.PctLE32/100)
	x := math.Exp(mu + sigma*rng.NormFloat64())
	n := int(math.Round(x))
	if n < 3 {
		n = 3
	}
	// The paper's overall maximum block count is 2240 (§6.1); clamp the
	// lognormal tail accordingly.
	if n > 2240 {
		n = 2240
	}
	return n
}

// ProcConfig derives the generator configuration for the i-th procedure of
// the benchmark. The derivation is deterministic in (benchmark, i).
func (s *Spec) ProcConfig(i int) Config {
	seed := int64(1)
	for _, c := range []byte(s.Name) {
		seed = seed*131 + int64(c)
	}
	seed = seed*1000003 + int64(i)
	rng := rand.New(rand.NewSource(seed))
	blocks := s.blockTarget(rng)

	c := Default(seed * 31)
	c.TargetBlocks = blocks
	// Bigger procedures juggle more variables; a mild sublinear growth
	// matches the "hot variable with hundreds of uses" tail of Table 1.
	c.Slots = 3 + blocks/12
	if c.Slots > 24 {
		c.Slots = 24
	}
	c.Params = 2 + rng.Intn(4)
	c.MaxDepth = 4 + rng.Intn(3)
	// Tune the single-use bias per benchmark from Table 1's %≤1 column.
	c.FreshBias = 0.47 + 0.005*s.UsePct[0]
	c.Irreducible = i < s.IrreducibleFuncs
	if c.Irreducible && c.TargetBlocks < 40 {
		// Irreducibility needs loops to subvert; give the handful of
		// flagged procedures (7 of 4823) room to grow some.
		c.TargetBlocks = 40
	}
	return c
}

// GenerateProc builds the i-th procedure of the benchmark in slot form.
func (s *Spec) GenerateProc(i int) *ir.Func {
	c := s.ProcConfig(i)
	return Generate(procName(s.Name, i), c)
}

func procName(bench string, i int) string {
	return strings.ReplaceAll(bench, ".", "_") + "_p" + strconv.Itoa(i)
}
