package gen

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
)

func TestGeneratedProgramsAreWellFormed(t *testing.T) {
	for trial := 0; trial < 150; trial++ {
		c := Default(int64(trial))
		c.TargetBlocks = 3 + trial%90
		c.Irreducible = trial%7 == 0
		f := Generate("t", c)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g, _ := cfg.FromFunc(f)
		d := cfg.NewDFS(g)
		if d.NumReachable != len(f.Blocks) {
			t.Fatalf("trial %d: %d of %d blocks reachable",
				trial, d.NumReachable, len(f.Blocks))
		}
		if f.NumSlots < c.Slots {
			t.Fatalf("trial %d: slots shrank", trial)
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 80; trial++ {
		c := Default(int64(trial) * 3)
		c.TargetBlocks = 3 + trial
		c.Irreducible = trial%4 == 0
		f := Generate("t", c)
		for run := 0; run < 4; run++ {
			args := []int64{rng.Int63n(1000) - 500, rng.Int63n(1000) - 500, rng.Int63()}
			if _, err := interp.Run(f, args, interp.Options{MaxSteps: 1 << 22}); err != nil {
				t.Fatalf("trial %d args %v: %v", trial, args, err)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	c := Default(12345)
	a := ir.Print(Generate("t", c))
	b := ir.Print(Generate("t", c))
	if a != b {
		t.Fatal("generation is not deterministic")
	}
	c2 := c
	c2.Seed++
	if ir.Print(Generate("t", c2)) == a {
		t.Fatal("different seeds should generate different programs")
	}
}

func TestIrreducibleInjection(t *testing.T) {
	// With enough blocks, asking for irreducibility must produce an
	// irreducible CFG for most seeds; require at least one in a small
	// sample and verify the flag actually changes the classification.
	found := false
	for trial := 0; trial < 20; trial++ {
		c := Default(int64(trial) * 991)
		c.TargetBlocks = 40
		c.Irreducible = true
		f := Generate("t", c)
		g, _ := cfg.FromFunc(f)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		if !dom.IsReducible(d, tree) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no irreducible CFG generated in 20 attempts")
	}
	// Structured output without the flag must always be reducible.
	for trial := 0; trial < 40; trial++ {
		c := Default(int64(trial) * 17)
		c.TargetBlocks = 40
		f := Generate("t", c)
		g, _ := cfg.FromFunc(f)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		if !dom.IsReducible(d, tree) {
			t.Fatalf("trial %d: structured program is irreducible", trial)
		}
	}
}

// Generated programs must round-trip through the textual format, in slot
// form and in SSA form.
func TestPrintParseRoundTripOnGenerated(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		c := Default(int64(trial)*61 + 1)
		c.TargetBlocks = 4 + trial
		f := Generate("t", c)
		p1 := ir.Print(f)
		f2, err := ir.Parse(p1)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, p1)
		}
		if err := ir.Verify(f2); err != nil {
			t.Fatalf("trial %d: verify: %v", trial, err)
		}
		// The parser canonicalizes predecessor order (it wires edges in
		// block-text order), so the first round trip may reorder pred
		// comments and φ operands; from then on printing must be a fixed
		// point.
		p2 := ir.Print(f2)
		f3, err := ir.Parse(p2)
		if err != nil {
			t.Fatalf("trial %d: reparse: %v", trial, err)
		}
		if p3 := ir.Print(f3); p3 != p2 {
			t.Fatalf("trial %d: printing is not a fixed point after normalization", trial)
		}
		// Semantics survive the round trip.
		for _, args := range [][]int64{{1, 2, 3}, {-7, 0, 99}} {
			a, err1 := interp.Run(f, args, interp.Options{})
			b, err2 := interp.Run(f2, args, interp.Options{})
			if err1 != nil || err2 != nil || a.Ret != b.Ret {
				t.Fatalf("trial %d: semantics changed by round trip", trial)
			}
		}
	}
}

func TestSpecTable(t *testing.T) {
	if len(SPEC2000) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10", len(SPEC2000))
	}
	if TotalProcs() != 4823 {
		t.Fatalf("total procedures = %d, want the paper's 4823", TotalProcs())
	}
	if SpecByName("176.gcc") == nil || SpecByName("nope") != nil {
		t.Fatal("SpecByName broken")
	}
	irr := 0
	for _, s := range SPEC2000 {
		irr += s.IrreducibleFuncs
	}
	if irr != 7 {
		t.Fatalf("suite has %d irreducible functions, want the paper's 7", irr)
	}
}

func TestSpecProcGeneration(t *testing.T) {
	s := SpecByName("181.mcf") // smallest benchmark
	for i := 0; i < s.Procs; i++ {
		f := s.GenerateProc(i)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
	}
	// Deterministic.
	a := ir.Print(s.GenerateProc(3))
	b := ir.Print(s.GenerateProc(3))
	if a != b {
		t.Fatal("suite generation not deterministic")
	}
}

// The pressure-biased mode must stay well-formed, reachable and
// terminating, and its pinned values must genuinely span the function:
// defined at the entry, folded into every return.
func TestHighPressureWellFormedAndPinned(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		c := HighPressure(int64(trial))
		c.TargetBlocks = 4 + trial%60
		c.Irreducible = trial%9 == 0
		f := Generate("hp", c)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g, _ := cfg.FromFunc(f)
		d := cfg.NewDFS(g)
		if d.NumReachable != len(f.Blocks) {
			t.Fatalf("trial %d: %d of %d blocks reachable", trial, d.NumReachable, len(f.Blocks))
		}
		if _, err := interp.Run(f, []int64{3, -5, 11}, interp.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every return folds the pinned pool: rets must carry long add
		// chains reading entry-defined values.
		entry := f.Entry()
		crossBlock := 0
		for _, b := range f.Blocks {
			if b.Kind != ir.BlockRet || b.Control == nil || b == entry {
				continue
			}
			for _, v := range b.Values {
				for _, a := range v.Args {
					if a.Block == entry {
						crossBlock++
					}
				}
			}
		}
		if crossBlock == 0 && len(f.Blocks) > 1 {
			t.Fatalf("trial %d: no return folds entry-defined pressure values", trial)
		}
	}
}

// PressureVals = 0 must not consume randomness: the default stream — and
// with it the Table 1 calibration — is byte-identical to before the
// pressure mode existed. The golden hash pins the stream itself, so any
// change that perturbs default generation (e.g. an unconditional rng draw
// on the pressure path) fails here instead of silently shifting the
// calibration. Update the constant only for a deliberate generator change.
func TestPressureModeOffIsInert(t *testing.T) {
	const golden = uint64(0x2ab5915f9d78edd5)
	h := fnv.New64a()
	h.Write([]byte(ir.Print(Generate("f", Default(42)))))
	if got := h.Sum64(); got != golden {
		t.Fatalf("default generation stream hash %#x, golden %#x — default Config consumed different randomness", got, golden)
	}
}
