// Package lao reimplements the "native" liveness analysis of the LAO code
// generator as the paper describes it in §6.2, faithfully enough to serve
// as the runtime baseline for the Table 2 experiments:
//
//   - the universe of variables to consider is collected into a table first
//     and assigned dense indices; for SSA destruction the table can be
//     restricted to φ-related variables (φ results and arguments), which is
//     LAO's documented optimization;
//   - local (per-block) analysis uses the sparse sets of Briggs & Torczon;
//   - global live-in/live-out sets are sorted dense arrays of variable
//     indices, with binary-search membership tests;
//   - the data-flow solver is a classic iterative worklist implemented as a
//     stack initialized with the blocks in CFG postorder (Cooper et al.).
//
// φ uses follow paper Definition 1, exactly as every other engine here.
package lao

import (
	"fastliveness/internal/ir"
	"fastliveness/internal/sorted"
	"fastliveness/internal/sparse"
)

// Options configure the analysis.
type Options struct {
	// PhiRelatedOnly restricts the variable universe to φ results and φ
	// arguments, the only variables SSA destruction queries.
	PhiRelatedOnly bool
}

// Result holds the analysis output.
type Result struct {
	// LiveIn and LiveOut are indexed by block position; elements are dense
	// variable indices.
	LiveIn, LiveOut []*sorted.Set
	// Iterations counts worklist pops.
	Iterations int

	varIndex []int32 // value ID -> dense index, -1 if untracked
	numVars  int
	blockPos []int32 // block ID -> position
}

// Analyze runs the LAO-style liveness analysis on f.
func Analyze(f *ir.Func, opts Options) *Result {
	r := &Result{
		blockPos: make([]int32, f.NumBlocks()),
		varIndex: make([]int32, f.NumValues()),
	}
	for i, b := range f.Blocks {
		r.blockPos[b.ID] = int32(i)
	}
	for i := range r.varIndex {
		r.varIndex[i] = -1
	}

	// Phase 1: collect the variable universe table.
	add := func(v *ir.Value) {
		if r.varIndex[v.ID] < 0 {
			r.varIndex[v.ID] = int32(r.numVars)
			r.numVars++
		}
	}
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		if !opts.PhiRelatedOnly {
			add(v)
			return
		}
		if v.Op == ir.OpPhi {
			add(v)
			for _, a := range v.Args {
				add(a)
			}
		}
	})

	// Phase 2: local analysis. One Briggs–Torczon sparse set serves as the
	// per-block deduplication scratch (its O(1) Clear is the whole point);
	// the per-block results are stored compactly as sorted arrays, like
	// every other global set here.
	nb := len(f.Blocks)
	rawUses := make([][]int32, nb) // may contain duplicates
	ueVar := make([]*sorted.Set, nb)
	defs := make([]*sorted.Set, nb)
	for i, b := range f.Blocks {
		defs[i] = sorted.New(4)
		for _, v := range b.Values {
			if v.Op.HasResult() {
				if vi := r.varIndex[v.ID]; vi >= 0 {
					defs[i].Add(vi)
				}
			}
			if v.Op == ir.OpPhi {
				for ai, a := range v.Args {
					p := b.Preds[ai].B
					if a.Block != p {
						if vi := r.varIndex[a.ID]; vi >= 0 {
							pp := r.blockPos[p.ID]
							rawUses[pp] = append(rawUses[pp], vi)
						}
					}
				}
				continue
			}
			for _, a := range v.Args {
				if a.Block != b {
					if vi := r.varIndex[a.ID]; vi >= 0 {
						rawUses[i] = append(rawUses[i], vi)
					}
				}
			}
		}
		if c := b.Control; c != nil && c.Block != b {
			if vi := r.varIndex[c.ID]; vi >= 0 {
				rawUses[i] = append(rawUses[i], vi)
			}
		}
	}
	scratch := sparse.New(r.numVars)
	for i := range rawUses {
		scratch.Clear()
		ueVar[i] = sorted.New(len(rawUses[i]))
		for _, vi := range rawUses[i] {
			if !scratch.Has(int(vi)) {
				scratch.Add(int(vi))
				ueVar[i].Add(vi)
			}
		}
	}

	// Phase 3: global solve over sorted arrays.
	r.LiveIn = make([]*sorted.Set, nb)
	r.LiveOut = make([]*sorted.Set, nb)
	for i := range r.LiveIn {
		r.LiveIn[i] = sorted.New(4)
		r.LiveOut[i] = sorted.New(4)
	}
	// Seed the stack so that blocks pop in CFG postorder: liveness flows
	// backward, so processing a block after its successors converges in
	// very few sweeps (Cooper et al.).
	post := postorder(f)
	stack := make([]*ir.Block, len(post))
	for i, b := range post {
		stack[len(post)-1-i] = b
	}
	onStack := make([]bool, f.NumBlocks())
	for _, b := range post {
		onStack[b.ID] = true
	}
	solveScratch := sorted.New(8)
	visited := make([]bool, f.NumBlocks())
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		onStack[b.ID] = false
		r.Iterations++
		i := r.blockPos[b.ID]

		out := r.LiveOut[i]
		outChanged := false
		for _, e := range b.Succs {
			if out.UnionWith(r.LiveIn[r.blockPos[e.B.ID]]) {
				outChanged = true
			}
		}
		if visited[b.ID] && !outChanged {
			// Live-out unchanged since the last visit, so live-in is
			// already a fixed point for this block.
			continue
		}
		visited[b.ID] = true
		in := solveScratch
		in.Clear()
		out.ForEach(func(v int32) {
			if !defs[i].Has(v) {
				in.Add(v)
			}
		})
		ueVar[i].ForEach(func(v int32) { in.Add(v) })
		if !in.Equal(r.LiveIn[i]) {
			solveScratch = r.LiveIn[i]
			r.LiveIn[i] = in
			for _, e := range b.Preds {
				if !onStack[e.B.ID] {
					onStack[e.B.ID] = true
					stack = append(stack, e.B)
				}
			}
		}
	}
	return r
}

func postorder(f *ir.Func) []*ir.Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, f.NumBlocks())
	out := make([]*ir.Block, 0, len(f.Blocks))
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := make([]frame, 0, len(f.Blocks))
	stack = append(stack, frame{b: f.Entry()})
	seen[f.Entry().ID] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.b.Succs) {
			s := fr.b.Succs[fr.next].B
			fr.next++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		out = append(out, fr.b)
		stack = stack[:len(stack)-1]
	}
	return out
}

// Tracked reports whether v is in the analysis universe.
func (r *Result) Tracked(v *ir.Value) bool {
	return v.ID < len(r.varIndex) && r.varIndex[v.ID] >= 0
}

// IsLiveIn reports whether v is live-in at b. Untracked variables report
// false; callers restrict queries to the universe they requested.
func (r *Result) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	vi := r.varIndex[v.ID]
	if vi < 0 {
		return false
	}
	return r.LiveIn[r.blockPos[b.ID]].Has(vi)
}

// IsLiveOut reports whether v is live-out at b.
func (r *Result) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	vi := r.varIndex[v.ID]
	if vi < 0 {
		return false
	}
	return r.LiveOut[r.blockPos[b.ID]].Has(vi)
}

// NumVars returns the universe size.
func (r *Result) NumVars() int { return r.numVars }

// AvgLiveIn is the fill-ratio statistic of §6.2.
func (r *Result) AvgLiveIn() float64 {
	if len(r.LiveIn) == 0 {
		return 0
	}
	total := 0
	for _, s := range r.LiveIn {
		total += s.Len()
	}
	return float64(total) / float64(len(r.LiveIn))
}

// MemoryBytes approximates the set payload, for the §6.1 break-even
// comparison against the checker's bitsets.
func (r *Result) MemoryBytes() int {
	total := 0
	for _, s := range r.LiveIn {
		total += s.MemoryBytes()
	}
	for _, s := range r.LiveOut {
		total += s.MemoryBytes()
	}
	return total
}
