package lao

import (
	"testing"

	"fastliveness/internal/dataflow"
	"fastliveness/internal/ir"
)

const loopSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

func TestFullUniverseMatchesDataflow(t *testing.T) {
	f := ir.MustParse(loopSrc)
	want := dataflow.Analyze(f)
	got := Analyze(f, Options{})
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		for _, b := range f.Blocks {
			if got.IsLiveIn(v, b) != want.IsLiveIn(v, b) {
				t.Fatalf("IsLiveIn(%s, %s) differs from dataflow", v, b)
			}
			if got.IsLiveOut(v, b) != want.IsLiveOut(v, b) {
				t.Fatalf("IsLiveOut(%s, %s) differs from dataflow", v, b)
			}
		}
	})
	if got.NumVars() == 0 || got.Iterations == 0 {
		t.Fatal("analysis did no work")
	}
	if got.AvgLiveIn() <= 0 {
		t.Fatal("fill ratio should be positive")
	}
	if got.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
}

func TestPhiRelatedOnly(t *testing.T) {
	f := ir.MustParse(loopSrc)
	r := Analyze(f, Options{PhiRelatedOnly: true})
	// φ-related: i (result), zero, inext (args). Not: n, one, cmp.
	wantTracked := map[string]bool{"i": true, "zero": true, "inext": true,
		"n": false, "one": false, "cmp": false}
	for name, want := range wantTracked {
		v := f.ValueByName(name)
		if v == nil {
			t.Fatalf("value %%%s missing", name)
		}
		if got := r.Tracked(v); got != want {
			t.Errorf("Tracked(%%%s) = %v, want %v", name, got, want)
		}
	}
	if r.NumVars() != 3 {
		t.Fatalf("universe = %d, want 3", r.NumVars())
	}
	// Tracked variables must agree with the full analysis.
	full := dataflow.Analyze(f)
	for _, name := range []string{"i", "zero", "inext"} {
		v := f.ValueByName(name)
		for _, b := range f.Blocks {
			if r.IsLiveIn(v, b) != full.IsLiveIn(v, b) {
				t.Fatalf("φ-related IsLiveIn(%%%s, %s) mismatch", name, b)
			}
			if r.IsLiveOut(v, b) != full.IsLiveOut(v, b) {
				t.Fatalf("φ-related IsLiveOut(%%%s, %s) mismatch", name, b)
			}
		}
	}
	// Untracked variables answer false rather than guessing.
	n := f.ValueByName("n")
	for _, b := range f.Blocks {
		if r.IsLiveIn(n, b) || r.IsLiveOut(n, b) {
			t.Fatal("untracked variable should report false")
		}
	}
	// The φ-related universe must be cheaper than the full one.
	fullLao := Analyze(f, Options{})
	if r.NumVars() >= fullLao.NumVars() {
		t.Fatal("φ-related universe should be smaller")
	}
	if r.AvgLiveIn() > fullLao.AvgLiveIn() {
		t.Fatal("φ-related fill ratio should not exceed the full one")
	}
}
