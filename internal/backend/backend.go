// Package backend unifies the repository's five liveness engines — the
// paper's R/T checker (internal/core), the bit-vector data-flow baseline
// (internal/dataflow), the LAO-style native solver (internal/lao), the
// Appel–Palsberg per-variable walker (internal/pervar) and the loop-forest
// engine (internal/loops) — behind one interface, so that consumers
// (the public fastliveness API, the CLIs, the benchmark harness and the
// differential tests) select an engine by name instead of hard-wiring one.
//
// The paper's evaluation (§6.2, Tables 1–2) is exactly such a comparison of
// engines answering the same queries; the registry here is what lets every
// comparison iterate over Names() instead of re-wiring each engine by hand.
//
// Contract: Analyze requires a structurally valid function (ir.Verify) in
// strict SSA with every block reachable from the entry. Backends built on
// Prepare enforce reachability themselves; the set-based baselines assume
// it. All backends answer queries under the paper's Definition 1 φ
// convention and agree answer-for-answer — internal/backend/difftest
// cross-validates every registered backend against the data-flow ground
// truth on random reducible and irreducible programs.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"fastliveness/internal/ir"
)

// Invalidation classifies what program edits invalidate a Result.
type Invalidation uint8

const (
	// InvalidatedByCFGChanges marks results whose precomputation depends
	// only on the CFG (the paper's headline property): adding or removing
	// instructions, variables or uses never invalidates them; only block
	// or edge edits do.
	InvalidatedByCFGChanges Invalidation = iota
	// InvalidatedByAnyEdit marks results that store explicit per-block
	// live sets; any program edit (even instruction-only) invalidates
	// them. Results of this kind enumerate sets natively, so LiveInSet
	// and LiveOutSet cost O(live values), not one query per value.
	InvalidatedByAnyEdit
)

// String names the invalidation kind for stats and logs.
func (i Invalidation) String() string {
	switch i {
	case InvalidatedByCFGChanges:
		return "cfg-changes"
	case InvalidatedByAnyEdit:
		return "any-edit"
	}
	return fmt.Sprintf("invalidation(%d)", uint8(i))
}

// Result answers liveness queries for one analyzed function. Implementations
// wrapping explicit set representations are safe for concurrent queries;
// the checker-backed result reuses a scratch buffer and is not (the public
// fastliveness.Querier provides the concurrent handle there).
type Result interface {
	// IsLiveIn reports whether v is live-in at b (paper Definition 2).
	IsLiveIn(v *ir.Value, b *ir.Block) bool
	// IsLiveOut reports whether v is live-out at b (paper Definition 3).
	IsLiveOut(v *ir.Value, b *ir.Block) bool
	// LiveInSet enumerates the values live-in at b, in a deterministic
	// per-backend order (ascending value ID for the set engines, program
	// order for the checker); callers needing a specific order sort.
	LiveInSet(b *ir.Block) []*ir.Value
	// LiveOutSet enumerates the values live-out at b; see LiveInSet.
	LiveOutSet(b *ir.Block) []*ir.Value
	// MemoryBytes reports the payload footprint of the precomputed or
	// materialized sets (the §6.1 comparison axis).
	MemoryBytes() int
	// Invalidation reports which program edits invalidate this result.
	Invalidation() Invalidation
	// Epochs reports the function edit epochs this result was computed
	// at; Stale compares them against the live function under the
	// result's Invalidation class.
	Epochs() Epochs
	// Backend names the backend that produced this result. For the
	// adaptive backend this is the name of the engine it selected.
	Backend() string
}

// Backend is one liveness engine.
type Backend interface {
	// Name is the registry key.
	Name() string
	// Analyze runs the engine on f.
	Analyze(f *ir.Func) (Result, error)
}

// PrepBackend is implemented by backends that consume the shared CFG
// preparation (graph, DFS, dominator tree) instead of rebuilding it.
type PrepBackend interface {
	Backend
	// AnalyzeWithPrep analyzes f against an existing Prepare result for f.
	AnalyzeWithPrep(f *ir.Func, p *Prep) (Result, error)
}

// AnalyzeWith runs b on f, routing through AnalyzeWithPrep when b supports
// it (sharing p) and falling back to plain Analyze otherwise. p may be nil,
// in which case prep-consuming backends prepare on their own.
func AnalyzeWith(b Backend, f *ir.Func, p *Prep) (Result, error) {
	if pb, ok := b.(PrepBackend); ok && p != nil {
		return pb.AnalyzeWithPrep(f, p)
	}
	return b.Analyze(f)
}

// DefaultName is the backend used when a Config leaves the name empty: the
// paper's R/T checker.
const DefaultName = "checker"

// AutoName is the adaptive per-function selector.
const AutoName = "auto"

var registry = struct {
	sync.RWMutex
	m map[string]Backend
}{m: make(map[string]Backend)}

// Register adds b under b.Name(). Registering a duplicate name panics:
// backend names are part of the public configuration surface.
func Register(b Backend) {
	registry.Lock()
	defer registry.Unlock()
	name := b.Name()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry.m[name] = b
}

// Get looks a backend up by name; the empty name resolves to DefaultName.
func Get(name string) (Backend, error) {
	if name == "" {
		name = DefaultName
	}
	registry.RLock()
	b, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %v)", name, Names())
	}
	return b, nil
}

// Names returns every registered backend name, sorted.
func Names() []string {
	registry.RLock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	registry.RUnlock()
	sort.Strings(out)
	return out
}
