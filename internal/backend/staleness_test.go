package backend

import (
	"strings"
	"testing"

	"fastliveness/internal/ir"
)

const stalenessSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

// analyzeAll runs every registered backend on f, skipping none (the test
// program is reducible, so the loops engine applies too).
func analyzeAll(t *testing.T, f *ir.Func) map[string]Result {
	t.Helper()
	out := map[string]Result{}
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Analyze(f)
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		out[name] = res
	}
	return out
}

// Every Result must record the epochs it was computed at, and Stale must
// apply the result's invalidation class: instruction edits stale exactly
// the set-producing results, CFG edits stale everything.
func TestStalePerInvalidationClass(t *testing.T) {
	f := ir.MustParse(stalenessSrc)
	results := analyzeAll(t, f)
	for name, res := range results {
		if res.Epochs() != EpochsOf(f) {
			t.Errorf("backend %s: recorded epochs %+v, function at %+v", name, res.Epochs(), EpochsOf(f))
		}
		if Stale(res, f) {
			t.Errorf("backend %s: fresh result reads as stale", name)
		}
	}

	// Instruction-only edit: a new use of %one in exit.
	one, exit := f.ValueByName("one"), f.BlockByName("exit")
	exit.NewValue(ir.OpAdd, one, one)
	for name, res := range results {
		wantStale := res.Invalidation() == InvalidatedByAnyEdit
		if got := Stale(res, f); got != wantStale {
			t.Errorf("backend %s (%s) after instruction edit: Stale = %v, want %v",
				name, res.Invalidation(), got, wantStale)
		}
	}

	// CFG edit: split an edge. Now everything is stale, checker included.
	f.Entry().SplitEdge(0)
	for name, res := range results {
		if !Stale(res, f) {
			t.Errorf("backend %s: not stale after a CFG edit", name)
		}
	}
}

// The fail-closed debug wrapper must answer normally while fresh and
// panic on the first query after an edit of the invalidating class.
func TestCheckedFailsClosed(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f := ir.MustParse(stalenessSrc)
			b, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := b.Analyze(f)
			if err != nil {
				t.Fatal(err)
			}
			checked := Checked(res, f)
			one, exit := f.ValueByName("one"), f.BlockByName("exit")
			if checked.IsLiveIn(one, exit) {
				t.Fatal("unexpected live-in answer on the fresh program")
			}

			// Instruction edit: the checker-backed wrapper keeps serving
			// (and sees the new use); set-producing wrappers fail closed.
			exit.NewValue(ir.OpAdd, one, one)
			if res.Invalidation() == InvalidatedByCFGChanges {
				if !checked.IsLiveIn(one, exit) {
					t.Fatal("checker-backed Checked should survive the instruction edit and see the new use")
				}
			} else {
				mustPanicStale(t, "instruction edit", func() { checked.IsLiveIn(one, exit) })
			}

			// CFG edit: every backend's wrapper fails closed, on queries
			// and set enumeration alike.
			f.Entry().SplitEdge(0)
			mustPanicStale(t, "CFG edit", func() { checked.IsLiveOut(one, exit) })
			mustPanicStale(t, "CFG edit", func() { checked.LiveInSet(exit) })
		})
	}
}

func mustPanicStale(t *testing.T, stage string, query func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: stale query did not panic", stage)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "stale") {
			t.Fatalf("%s: panic %v does not name staleness", stage, r)
		}
	}()
	query()
}

// A Refreshing handle is never stale: its metadata accessors refresh
// first, so Stale reports false across edits and the Checked wrapper
// composes with it instead of panicking on a result the handle would
// have refreshed anyway.
func TestRefreshingComposesWithChecked(t *testing.T) {
	f := ir.MustParse(stalenessSrc)
	db, err := Get("dataflow")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRefreshing(db, f)
	if err != nil {
		t.Fatal(err)
	}
	checked := Checked(fresh, f)
	one, exit := f.ValueByName("one"), f.BlockByName("exit")
	exit.NewValue(ir.OpAdd, one, one)
	if Stale(fresh, f) {
		t.Fatal("a self-refreshing handle should never read as stale")
	}
	if !checked.IsLiveIn(one, exit) {
		t.Fatal("Checked∘Refreshing should answer against the edited program")
	}
}

// Refreshing must rebuild exactly when its backend's invalidation class
// demands: never for the checker across instruction edits, once per
// edit-then-query for a set-producing backend — and the refreshed answers
// must track the edit.
func TestRefreshingRebuildPolicy(t *testing.T) {
	for _, name := range []string{"checker", "dataflow"} {
		t.Run(name, func(t *testing.T) {
			f := ir.MustParse(stalenessSrc)
			b, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewRefreshing(b, f)
			if err != nil {
				t.Fatal(err)
			}
			one, exit := f.ValueByName("one"), f.BlockByName("exit")
			if fresh.IsLiveIn(one, exit) {
				t.Fatal("unexpected live-in before the edit")
			}
			exit.NewValue(ir.OpAdd, one, one)
			if !fresh.IsLiveIn(one, exit) {
				t.Fatal("refreshing oracle should see the new use")
			}
			wantRebuilds := 0
			if name == "dataflow" {
				wantRebuilds = 1
			}
			if got := fresh.Rebuilds(); got != wantRebuilds {
				t.Fatalf("Rebuilds = %d after one instruction edit, want %d", got, wantRebuilds)
			}
			// Repeat queries without further edits: no extra rebuilds.
			fresh.IsLiveOut(one, exit)
			fresh.LiveOutSet(exit)
			if got := fresh.Rebuilds(); got != wantRebuilds {
				t.Fatalf("Rebuilds = %d after quiescent queries, want %d", got, wantRebuilds)
			}
		})
	}
}

// The async-aware Refreshing paths: NewRefreshingFrom adopts a result
// built elsewhere (no second analysis), and Refresh rebuilds eagerly off
// the hot path with a returnable error, so the next query is a pure hit.
func TestRefreshingAsyncPaths(t *testing.T) {
	f := ir.MustParse(stalenessSrc)
	db, err := Get("dataflow")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRefreshingFrom(db, f, res)
	if fresh.Result() != res {
		t.Fatal("NewRefreshingFrom should serve the adopted result while fresh")
	}
	if err := fresh.Refresh(); err != nil {
		t.Fatalf("Refresh on a fresh handle: %v", err)
	}
	if got := fresh.Rebuilds(); got != 0 {
		t.Fatalf("Rebuilds = %d after no-op Refresh, want 0", got)
	}
	one, exit := f.ValueByName("one"), f.BlockByName("exit")
	exit.NewValue(ir.OpAdd, one, one)
	if err := fresh.Refresh(); err != nil {
		t.Fatalf("Refresh after edit: %v", err)
	}
	if got := fresh.Rebuilds(); got != 1 {
		t.Fatalf("Rebuilds = %d after eager Refresh, want 1", got)
	}
	// The query after the eager refresh pays no rebuild of its own and
	// answers against the edited program.
	if !fresh.IsLiveIn(one, exit) {
		t.Fatal("refreshed handle should see the new use")
	}
	if got := fresh.Rebuilds(); got != 1 {
		t.Fatalf("Rebuilds = %d after post-Refresh query, want 1", got)
	}
}
