package backend

import (
	"sync/atomic"

	"fastliveness/internal/faults"
	"fastliveness/internal/ir"
)

// Fault-injection sites a Faulty backend fires on every Analyze: the
// per-function site first (FaultSiteAnalyze + ":" + function name), then
// the generic one, so tests can target one function or all of them.
const FaultSiteAnalyze = "backend.analyze"

// Faulty wraps another backend with a fault-injection seam at its Analyze
// boundary, for chaos tests that need analyses to fail, panic or stall on
// a deterministic schedule. Registration is global and permanent (the
// registry forbids duplicates), so a test binary registers one Faulty and
// re-arms it per test with SetInjector; a nil injector — the initial
// state — makes it behave exactly like the wrapped backend.
type Faulty struct {
	name     string
	inner    Backend
	injector atomic.Pointer[faults.Injector]
}

// NewFaulty wraps inner under the given registry name and registers it.
func NewFaulty(name string, inner Backend) *Faulty {
	b := &Faulty{name: name, inner: inner}
	Register(b)
	return b
}

// SetInjector arms (or, with nil, disarms) the injector the next Analyze
// calls will fire.
func (b *Faulty) SetInjector(in *faults.Injector) {
	b.injector.Store(in)
}

// Name is the registry key.
func (b *Faulty) Name() string { return b.name }

// Analyze fires the armed injector — injected errors surface as analysis
// errors, injected panics unwind exactly like a backend bug — and then
// delegates to the wrapped backend.
func (b *Faulty) Analyze(f *ir.Func) (Result, error) {
	in := b.injector.Load()
	if err := in.Fire(FaultSiteAnalyze + ":" + f.Name); err != nil {
		return nil, err
	}
	if err := in.Fire(FaultSiteAnalyze); err != nil {
		return nil, err
	}
	return b.inner.Analyze(f)
}
