package backend

import (
	"fmt"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Prep is the CFG-level preparation every graph-based engine starts from:
// the extracted graph, its DFS and its dominator tree. It used to be
// rebuilt inside fastliveness.Analyze and again inside each engine; one
// Prepare call now serves the checker, the loop-forest engine, the
// adaptive selector and the public Liveness handle alike.
type Prep struct {
	F *ir.Func
	// Graph is the extracted CFG; node i corresponds to F.Blocks[i].
	Graph *cfg.Graph
	// Index maps block ID to graph node (-1 for stale IDs).
	Index []int
	// DFS is the depth-first search from the entry.
	DFS *cfg.DFS
	// Tree is the dominator tree.
	Tree *dom.Tree
}

// Prepare verifies f structurally, extracts its CFG, and builds the DFS and
// dominator tree. It fails if f is malformed or has blocks unreachable from
// the entry (both would make liveness undefined).
func Prepare(f *ir.Func) (*Prep, error) {
	if err := ir.Verify(f); err != nil {
		return nil, err
	}
	return PrepareUnverified(f)
}

// PrepareUnverified is Prepare for a caller that warrants f already passes
// ir.Verify — the engine verifies once per function per edit epoch and then
// reuses that result across every rebuild, refill, and snapshot restore, so
// the verifier's full IR walk stays off the per-build path. The CFG-level
// checks (reachability here, the dominator and dimension validation in the
// snapshot path) still run; only the instruction-level invariant walk is
// skipped.
func PrepareUnverified(f *ir.Func) (*Prep, error) {
	g, index := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	if d.NumReachable != g.N() {
		return nil, fmt.Errorf("backend: %s: %d of %d blocks unreachable from entry",
			f.Name, g.N()-d.NumReachable, g.N())
	}
	return &Prep{F: f, Graph: g, Index: index, DFS: d, Tree: dom.Iterative(g, d)}, nil
}

// Node maps a block to its CFG node. It panics for blocks that are not part
// of the prepared CFG — querying across a CFG edit is a contract violation,
// not a recoverable condition.
func (p *Prep) Node(b *ir.Block) int {
	if b.ID >= len(p.Index) || p.Index[b.ID] < 0 {
		panic(fmt.Sprintf("backend: block %s is not part of the analyzed CFG", b))
	}
	return p.Index[b.ID]
}

// Reducible reports whether the prepared CFG is reducible.
func (p *Prep) Reducible() bool { return dom.IsReducible(p.DFS, p.Tree) }

// UseNodes reads v's def-use chain (the paper's Definition 1 placement)
// into scratch as CFG nodes, returning the reused slice. Every query
// surface that owns a scratch buffer (CheckerResult, Liveness, Querier)
// translates through this one helper so the Index conventions live in a
// single place.
func (p *Prep) UseNodes(scratch []int, v *ir.Value) []int {
	scratch = v.UseBlockIDs(scratch[:0])
	for i, id := range scratch {
		scratch[i] = p.Index[id]
	}
	return scratch
}
