package backend

import (
	"fmt"

	"fastliveness/internal/ir"
)

// Epochs is a snapshot of a function's two edit counters (ir.Func.CFGEpoch
// and InstrEpoch). Every Result records the snapshot it was computed at;
// comparing it against the function's current counters — through Stale —
// turns the invalidation contract each backend declares (Invalidation)
// into a runtime-checkable property instead of prose.
type Epochs struct {
	// CFG is the block/edge edit counter at analysis time.
	CFG uint64
	// Instr is the instruction edit counter at analysis time.
	Instr uint64
}

// EpochsOf snapshots f's current edit counters.
func EpochsOf(f *ir.Func) Epochs {
	return Epochs{CFG: f.CFGEpoch(), Instr: f.InstrEpoch()}
}

// Stale reports whether r no longer describes f, per r's declared
// invalidation class: a CFG edit since analysis stales every result; an
// instruction edit stales only results invalidated by any edit
// (materialized sets). The checker's CFG-only precomputation therefore
// reads as fresh across instruction edits — the paper's §4 property as a
// counter comparison, O(1) per check.
//
// r must have been computed for f (results do not record which function
// they analyzed beyond the epochs; callers pair them).
func Stale(r Result, f *ir.Func) bool {
	e := r.Epochs()
	if e.CFG != f.CFGEpoch() {
		return true
	}
	return r.Invalidation() == InvalidatedByAnyEdit && e.Instr != f.InstrEpoch()
}

// Checked wraps r in fail-closed staleness checking against f: every query
// or enumeration first runs Stale and panics when the result no longer
// describes the function. It is the debug-mode companion of the engine's
// transparent-rebuild path — tests and paranoid callers wrap analyses so a
// query against a dead analysis becomes a loud failure instead of a
// silently wrong answer.
func Checked(r Result, f *ir.Func) Result {
	return &checkedResult{r: r, f: f}
}

type checkedResult struct {
	r Result
	f *ir.Func
}

func (c *checkedResult) guard() {
	if Stale(c.r, c.f) {
		rec, now := c.r.Epochs(), EpochsOf(c.f)
		panic(fmt.Sprintf(
			"backend: stale %s result for %s: computed at epochs cfg=%d/instr=%d, function now at cfg=%d/instr=%d (invalidation class %s)",
			c.r.Backend(), c.f.Name, rec.CFG, rec.Instr, now.CFG, now.Instr, c.r.Invalidation()))
	}
}

func (c *checkedResult) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	c.guard()
	return c.r.IsLiveIn(v, b)
}

func (c *checkedResult) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	c.guard()
	return c.r.IsLiveOut(v, b)
}

func (c *checkedResult) LiveInSet(b *ir.Block) []*ir.Value {
	c.guard()
	return c.r.LiveInSet(b)
}

func (c *checkedResult) LiveOutSet(b *ir.Block) []*ir.Value {
	c.guard()
	return c.r.LiveOutSet(b)
}

func (c *checkedResult) MemoryBytes() int           { return c.r.MemoryBytes() }
func (c *checkedResult) Invalidation() Invalidation { return c.r.Invalidation() }
func (c *checkedResult) Backend() string            { return c.r.Backend() }
func (c *checkedResult) Epochs() Epochs             { return c.r.Epochs() }

// Refreshing is a self-rebuilding analysis handle: it owns a Result for f
// and transparently re-runs its backend whenever the function's epochs say
// the current result is stale for its invalidation class. This is the
// paper's robustness asymmetry as a policy object — with the checker it
// never rebuilds across instruction edits, with a set-producing backend it
// re-analyzes exactly as often as the edits demand, and Rebuilds reports
// the difference. It satisfies Result and thereby the regalloc/destruct
// Oracle shapes, which is how those passes run against any backend with no
// manual refresh hooks.
//
// Like the IR itself, a Refreshing handle is single-goroutine: rebuilds
// mutate the handle.
type Refreshing struct {
	b        Backend
	f        *ir.Func
	res      Result
	rebuilds int
}

// NewRefreshing analyzes f with b and returns the self-rebuilding handle.
func NewRefreshing(b Backend, f *ir.Func) (*Refreshing, error) {
	res, err := b.Analyze(f)
	if err != nil {
		return nil, err
	}
	return &Refreshing{b: b, f: f, res: res}, nil
}

// NewRefreshingFrom adopts an already-computed result for f instead of
// analyzing inline — the async-aware construction path: a concurrent
// engine (or its background rebuild pool) that has a fresh result on hand
// wraps it into a single-goroutine self-refreshing handle without paying
// a second analysis. res must have been produced by b (or an equivalent
// backend) for f; if it is already stale, the first query simply rebuilds.
func NewRefreshingFrom(b Backend, f *ir.Func, res Result) *Refreshing {
	return &Refreshing{b: b, f: f, res: res}
}

// Refresh eagerly re-analyzes now if the held result is stale, returning
// the error instead of panicking like the query-path ensure does. It
// exists for callers that rebuild off the hot path — a background worker
// or a between-passes hook can Refresh where an error is returnable, so
// the next query finds the handle fresh and never hits the fail-closed
// panic. A no-op (and nil) when the result is already fresh.
func (r *Refreshing) Refresh() error {
	if !Stale(r.res, r.f) {
		return nil
	}
	res, err := r.b.Analyze(r.f)
	if err != nil {
		return err
	}
	r.res = res
	r.rebuilds++
	return nil
}

// ensure re-analyzes when stale. Re-analysis can fail — an edit broke the
// function structurally, or a CFG edit made it irreducible under a
// reducibility-limited backend — and the Result query methods have no
// error channel, so the handle fails closed with a panic (like Prep.Node
// and Checked) rather than answering from a dead analysis. Callers
// editing CFGs under such a backend should re-run NewRefreshing, where
// the error is returnable.
func (r *Refreshing) ensure() Result {
	if Stale(r.res, r.f) {
		res, err := r.b.Analyze(r.f)
		if err != nil {
			panic(fmt.Sprintf("backend: re-analysis of %s with %s after edit: %v", r.f.Name, r.b.Name(), err))
		}
		r.res = res
		r.rebuilds++
	}
	return r.res
}

// Rebuilds reports how many re-analyses staleness has forced so far.
func (r *Refreshing) Rebuilds() int { return r.rebuilds }

// Result returns the current (fresh) underlying result, rebuilding first
// if needed.
func (r *Refreshing) Result() Result { return r.ensure() }

// Every Result method refreshes first, the metadata accessors included:
// a Refreshing handle is never stale (Epochs reports post-refresh
// counters, so Stale and the Checked wrapper compose with it), and with
// the "auto" backend a rebuild may select a different engine, which
// Backend/Invalidation/MemoryBytes must reflect.
func (r *Refreshing) IsLiveIn(v *ir.Value, b *ir.Block) bool  { return r.ensure().IsLiveIn(v, b) }
func (r *Refreshing) IsLiveOut(v *ir.Value, b *ir.Block) bool { return r.ensure().IsLiveOut(v, b) }
func (r *Refreshing) LiveInSet(b *ir.Block) []*ir.Value       { return r.ensure().LiveInSet(b) }
func (r *Refreshing) LiveOutSet(b *ir.Block) []*ir.Value      { return r.ensure().LiveOutSet(b) }
func (r *Refreshing) MemoryBytes() int                        { return r.ensure().MemoryBytes() }
func (r *Refreshing) Invalidation() Invalidation              { return r.ensure().Invalidation() }
func (r *Refreshing) Backend() string                         { return r.ensure().Backend() }
func (r *Refreshing) Epochs() Epochs                          { return r.ensure().Epochs() }
