package backend

import (
	"fastliveness/internal/core"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/ir"
	"fastliveness/internal/lao"
	"fastliveness/internal/loops"
	"fastliveness/internal/pervar"
)

func init() {
	Register(checkerBackend{})
	Register(dataflowBackend{})
	Register(laoBackend{})
	Register(pervarBackend{})
	Register(loopsBackend{})
	Register(autoBackend{})
}

// ---- checker: the paper's R/T liveness checker (internal/core) ----

type checkerBackend struct{}

func (checkerBackend) Name() string { return "checker" }

func (b checkerBackend) Analyze(f *ir.Func) (Result, error) {
	p, err := Prepare(f)
	if err != nil {
		return nil, err
	}
	return b.AnalyzeWithPrep(f, p)
}

func (checkerBackend) AnalyzeWithPrep(f *ir.Func, p *Prep) (Result, error) {
	return NewCheckerResult(p, core.Options{}), nil
}

// CheckerResult adapts the R/T checker. Unlike the set-based results its
// query methods reuse a scratch buffer (the def-use chain translated to CFG
// nodes), so one CheckerResult is not safe for concurrent queries; the
// public fastliveness package recognizes this type and layers its
// per-goroutine Querier on the underlying Checker instead.
type CheckerResult struct {
	prep    *Prep
	checker *core.Checker
	scratch []int
	epochs  Epochs
}

// NewCheckerResult runs the R/T precomputation against p with explicit
// checker options (strategies and ablations); the registry's "checker"
// backend uses the paper's default options.
func NewCheckerResult(p *Prep, opts core.Options) *CheckerResult {
	return &CheckerResult{
		prep:    p,
		checker: core.NewFrom(p.Graph, p.DFS, p.Tree, opts),
		epochs:  EpochsOf(p.F),
	}
}

// NewCheckerResultFrom wraps an already-built checker — the snapshot-restore
// path, where the R/T arenas were adopted from disk via core.Adopt instead
// of recomputed. Epochs are read from p.F at wrap time, exactly as
// NewCheckerResult does, so staleness tracking is indistinguishable between
// the two construction paths.
func NewCheckerResultFrom(p *Prep, c *core.Checker) *CheckerResult {
	return &CheckerResult{prep: p, checker: c, epochs: EpochsOf(p.F)}
}

// Checker exposes the underlying core checker.
func (r *CheckerResult) Checker() *core.Checker { return r.checker }

// Prep exposes the CFG preparation the checker was built from.
func (r *CheckerResult) Prep() *Prep { return r.prep }

func (r *CheckerResult) useNodes(v *ir.Value) []int {
	r.scratch = r.prep.UseNodes(r.scratch, v)
	return r.scratch
}

// IsLiveIn implements Result (paper Algorithm 3).
func (r *CheckerResult) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	return r.checker.IsLiveIn(r.prep.Node(v.Block), r.useNodes(v), r.prep.Node(b))
}

// IsLiveOut implements Result (paper Algorithm 2).
func (r *CheckerResult) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	return r.checker.IsLiveOut(r.prep.Node(v.Block), r.useNodes(v), r.prep.Node(b))
}

// LiveInSet enumerates by querying every value — the checker deliberately
// provides only the characteristic function. Callers that enumerate sets
// on a hot path should use a set-producing backend (see AnalyzeSets).
func (r *CheckerResult) LiveInSet(b *ir.Block) []*ir.Value {
	return enumerate(r.prep.F, b, r.IsLiveIn)
}

// LiveOutSet enumerates by querying every value; see LiveInSet.
func (r *CheckerResult) LiveOutSet(b *ir.Block) []*ir.Value {
	return enumerate(r.prep.F, b, r.IsLiveOut)
}

// MemoryBytes implements Result.
func (r *CheckerResult) MemoryBytes() int { return r.checker.MemoryBytes() }

// Invalidation implements Result: only CFG edits invalidate R/T sets.
func (r *CheckerResult) Invalidation() Invalidation { return InvalidatedByCFGChanges }

// Epochs implements Result.
func (r *CheckerResult) Epochs() Epochs { return r.epochs }

// Backend implements Result.
func (r *CheckerResult) Backend() string { return "checker" }

// enumerate filters f's values through a characteristic function, in
// program order.
func enumerate(f *ir.Func, b *ir.Block, live func(*ir.Value, *ir.Block) bool) []*ir.Value {
	var out []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() && live(v, b) {
			out = append(out, v)
		}
	})
	return out
}

// ---- shared adapter for the set-producing engines ----

// setsResult adapts an engine that materializes explicit per-block live
// sets. Queries are read-only lookups, safe for concurrent use. liveInIDs
// and liveOutIDs enumerate value IDs per block when the engine exposes its
// sets by value ID; when nil (the LAO backend, whose sets hold dense
// variable indices), enumeration falls back to per-value membership tests.
type setsResult struct {
	name                  string
	f                     *ir.Func
	isLiveIn, isLiveOut   func(*ir.Value, *ir.Block) bool
	liveInIDs, liveOutIDs func(*ir.Block) []int
	memoryBytes           int
	valByID               []*ir.Value
	epochs                Epochs
}

func newSetsResult(name string, f *ir.Func) *setsResult {
	r := &setsResult{name: name, f: f, valByID: make([]*ir.Value, f.NumValues()), epochs: EpochsOf(f)}
	f.Values(func(v *ir.Value) { r.valByID[v.ID] = v })
	return r
}

func (r *setsResult) IsLiveIn(v *ir.Value, b *ir.Block) bool  { return r.isLiveIn(v, b) }
func (r *setsResult) IsLiveOut(v *ir.Value, b *ir.Block) bool { return r.isLiveOut(v, b) }

func (r *setsResult) LiveInSet(b *ir.Block) []*ir.Value {
	return r.fromIDs(b, r.liveInIDs, r.isLiveIn)
}

func (r *setsResult) LiveOutSet(b *ir.Block) []*ir.Value {
	return r.fromIDs(b, r.liveOutIDs, r.isLiveOut)
}

func (r *setsResult) fromIDs(b *ir.Block, ids func(*ir.Block) []int, live func(*ir.Value, *ir.Block) bool) []*ir.Value {
	if ids == nil {
		return enumerate(r.f, b, live)
	}
	var out []*ir.Value
	for _, id := range ids(b) {
		if v := r.valByID[id]; v != nil {
			out = append(out, v)
		}
	}
	return out
}

func (r *setsResult) MemoryBytes() int           { return r.memoryBytes }
func (r *setsResult) Invalidation() Invalidation { return InvalidatedByAnyEdit }
func (r *setsResult) Epochs() Epochs             { return r.epochs }
func (r *setsResult) Backend() string            { return r.name }

// ---- dataflow: textbook iterative bit-vector solver ----

type dataflowBackend struct{}

func (dataflowBackend) Name() string { return "dataflow" }

func (dataflowBackend) Analyze(f *ir.Func) (Result, error) {
	df := dataflow.Analyze(f)
	r := newSetsResult("dataflow", f)
	r.isLiveIn, r.isLiveOut = df.IsLiveIn, df.IsLiveOut
	r.liveInIDs, r.liveOutIDs = df.LiveInIDs, df.LiveOutIDs
	r.memoryBytes = df.MemoryBytes()
	return r, nil
}

// ---- lao: the paper's §6.2 "native" baseline (full variable universe) ----

type laoBackend struct{}

func (laoBackend) Name() string { return "lao" }

func (laoBackend) Analyze(f *ir.Func) (Result, error) {
	la := lao.Analyze(f, lao.Options{})
	r := newSetsResult("lao", f)
	r.isLiveIn, r.isLiveOut = la.IsLiveIn, la.IsLiveOut
	r.memoryBytes = la.MemoryBytes()
	return r, nil
}

// ---- pervar: Appel–Palsberg per-variable backward walks ----

type pervarBackend struct{}

func (pervarBackend) Name() string { return "pervar" }

func (pervarBackend) Analyze(f *ir.Func) (Result, error) {
	pv := pervar.Analyze(f)
	r := newSetsResult("pervar", f)
	r.isLiveIn, r.isLiveOut = pv.IsLiveIn, pv.IsLiveOut
	r.liveInIDs, r.liveOutIDs = pv.LiveInIDs, pv.LiveOutIDs
	r.memoryBytes = pv.MemoryBytes()
	return r, nil
}

// ---- loops: the §8 loop-nesting-forest engine (reducible CFGs only) ----

type loopsBackend struct{}

func (loopsBackend) Name() string { return "loops" }

func (b loopsBackend) Analyze(f *ir.Func) (Result, error) {
	p, err := Prepare(f)
	if err != nil {
		return nil, err
	}
	return b.AnalyzeWithPrep(f, p)
}

// AnalyzeWithPrep returns loops.ErrIrreducible (wrapped) on irreducible
// control flow; callers that must not fail use the auto backend, which
// falls back to the checker there.
func (loopsBackend) AnalyzeWithPrep(f *ir.Func, p *Prep) (Result, error) {
	lf, err := loops.LivenessFrom(f, p.Graph, p.DFS, p.Tree)
	if err != nil {
		return nil, err
	}
	r := newSetsResult("loops", f)
	r.isLiveIn, r.isLiveOut = lf.IsLiveIn, lf.IsLiveOut
	r.liveInIDs, r.liveOutIDs = lf.LiveInIDs, lf.LiveOutIDs
	r.memoryBytes = lf.MemoryBytes()
	return r, nil
}

// ---- auto: adaptive per-function selection ----

// autoBackend picks an engine per function: the loop-forest engine on
// reducible CFGs (two passes, no fixed point, explicit sets for free) and
// the R/T checker on irreducible ones (where the loop-forest algorithm
// does not apply but checker queries remain exact). The returned Result
// reports the chosen engine's name via Backend(), which is how per-backend
// stats see through the selection.
type autoBackend struct{}

func (autoBackend) Name() string { return AutoName }

func (b autoBackend) Analyze(f *ir.Func) (Result, error) {
	p, err := Prepare(f)
	if err != nil {
		return nil, err
	}
	return b.AnalyzeWithPrep(f, p)
}

func (autoBackend) AnalyzeWithPrep(f *ir.Func, p *Prep) (Result, error) {
	if p.Reducible() {
		return loopsBackend{}.AnalyzeWithPrep(f, p)
	}
	return checkerBackend{}.AnalyzeWithPrep(f, p)
}

// AnalyzeSets picks the cheapest set-producing backend for callers that
// will enumerate full live-in/live-out sets: the loop-forest engine on
// reducible CFGs, the iterative data-flow solver otherwise. This is what
// fastliveness.Liveness delegates LiveIn/LiveOut enumeration to, instead
// of issuing one checker query per value.
func AnalyzeSets(f *ir.Func, p *Prep) (Result, error) {
	if p == nil {
		var err error
		if p, err = Prepare(f); err != nil {
			return nil, err
		}
	}
	if p.Reducible() {
		return loopsBackend{}.AnalyzeWithPrep(f, p)
	}
	return dataflowBackend{}.Analyze(f)
}
