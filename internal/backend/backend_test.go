package backend

import (
	"errors"
	"reflect"
	"testing"

	"fastliveness/internal/ir"
	"fastliveness/internal/loops"
)

const reducibleSrc = `
func @red(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

// Two-entry cycle a<->b: classic irreducible control flow.
const irreducibleSrc = `
func @irr(%p) {
entry:
  %c = cmplt %p, %p
  if %c -> a, b
a:
  %x = add %p, %p
  br b
b:
  %y = add %p, %c
  if %y -> a, exit
exit:
  ret %p
}
`

func TestRegistryHoldsAllFiveEnginesPlusAuto(t *testing.T) {
	want := []string{"auto", "checker", "dataflow", "lao", "loops", "pervar"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, b.Name())
		}
	}
}

func TestGetEmptyResolvesToDefault(t *testing.T) {
	b, err := Get("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != DefaultName {
		t.Fatalf("empty name resolved to %q, want %q", b.Name(), DefaultName)
	}
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("Get of unknown backend should fail")
	}
}

type dummyBackend struct{ name string }

func (d dummyBackend) Name() string                   { return d.name }
func (dummyBackend) Analyze(*ir.Func) (Result, error) { return nil, nil }

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(dummyBackend{name: DefaultName})
}

// The loops backend must reject irreducible control flow with the loops
// package's sentinel error, visible through the registry; the adaptive
// backend must not fail there but fall back to the R/T checker.
func TestIrreducibleParity(t *testing.T) {
	f := ir.MustParse(irreducibleSrc)
	p, err := Prepare(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reducible() {
		t.Fatal("test program should be irreducible")
	}

	lb, err := Get("loops")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lb.Analyze(f); !errors.Is(err, loops.ErrIrreducible) {
		t.Fatalf("loops backend on irreducible CFG: err = %v, want loops.ErrIrreducible", err)
	}

	ab, err := Get(AutoName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ab.Analyze(f)
	if err != nil {
		t.Fatalf("auto backend must not fail on irreducible CFGs: %v", err)
	}
	if res.Backend() != "checker" {
		t.Fatalf("auto picked %q on irreducible CFG, want checker", res.Backend())
	}
	if res.Invalidation() != InvalidatedByCFGChanges {
		t.Fatalf("checker result invalidation = %v, want %v",
			res.Invalidation(), InvalidatedByCFGChanges)
	}
}

func TestAutoPicksLoopsOnReducible(t *testing.T) {
	f := ir.MustParse(reducibleSrc)
	ab, err := Get(AutoName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ab.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend() != "loops" {
		t.Fatalf("auto picked %q on reducible CFG, want loops", res.Backend())
	}
	if res.Invalidation() != InvalidatedByAnyEdit {
		t.Fatalf("loops result invalidation = %v, want %v",
			res.Invalidation(), InvalidatedByAnyEdit)
	}
}

func TestAnalyzeSetsSelection(t *testing.T) {
	red := ir.MustParse(reducibleSrc)
	res, err := AnalyzeSets(red, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend() != "loops" {
		t.Fatalf("AnalyzeSets on reducible CFG used %q, want loops", res.Backend())
	}
	irr := ir.MustParse(irreducibleSrc)
	res, err = AnalyzeSets(irr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend() != "dataflow" {
		t.Fatalf("AnalyzeSets on irreducible CFG used %q, want dataflow", res.Backend())
	}
}

// AnalyzeWith must share one Prep with prep-aware backends instead of
// rebuilding the CFG analyses.
func TestAnalyzeWithSharesPrep(t *testing.T) {
	f := ir.MustParse(reducibleSrc)
	p, err := Prepare(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("checker")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeWith(b, f, p)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := res.(*CheckerResult)
	if !ok {
		t.Fatalf("checker backend returned %T", res)
	}
	if cr.Prep() != p {
		t.Fatal("AnalyzeWith rebuilt the prep instead of sharing it")
	}
}

func TestPrepareRejectsUnreachable(t *testing.T) {
	f := ir.NewFunc("orphan")
	entry := f.NewBlock(ir.BlockRet)
	entry.SetControl(entry.NewValueI(ir.OpConst, 1))
	f.NewBlock(ir.BlockRet) // never linked to the entry
	if _, err := Prepare(f); err == nil {
		t.Fatal("Prepare should reject unreachable blocks")
	}
}

func TestInvalidationStrings(t *testing.T) {
	if got := InvalidatedByCFGChanges.String(); got != "cfg-changes" {
		t.Errorf("InvalidatedByCFGChanges = %q", got)
	}
	if got := InvalidatedByAnyEdit.String(); got != "any-edit" {
		t.Errorf("InvalidatedByAnyEdit = %q", got)
	}
	if got := Invalidation(9).String(); got != "invalidation(9)" {
		t.Errorf("unknown kind = %q", got)
	}
}
