package difftest

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fastliveness/internal/backend"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/graphgen"
	"fastliveness/internal/ir"
	"fastliveness/internal/regalloc"
	"fastliveness/internal/ssa"
)

// The acceptance criterion of the backend layer: every registered backend
// answers every query identically to the data-flow ground truth on ≥ 100
// random functions, reducible and irreducible alike.
func TestAllBackendsAgreeOnRandomCorpus(t *testing.T) {
	funcs := Corpus(120, 20260730)
	if err := ValidateAll(funcs); err != nil {
		t.Fatal(err)
	}
}

// The checker's storage representations — arena vs sorted-array T sets,
// fresh vs cached use reads, both precompute strategies — must answer
// identically to the ground truth, through both query handle kinds,
// before and after a cache-flushing ResetSets.
func TestCheckerStorageConfigsAgree(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 16
	}
	for _, f := range Corpus(n, 20260731) {
		if err := ValidateCheckerStorage(f); err != nil {
			t.Fatal(err)
		}
	}
}

// The corpus must genuinely exercise both CFG classes and be strict SSA —
// otherwise the agreement test above proves less than it claims.
func TestCorpusShape(t *testing.T) {
	funcs := Corpus(120, 20260730)
	if len(funcs) < 100 {
		t.Fatalf("corpus has %d functions, want >= 100", len(funcs))
	}
	reducible, irreducible := 0, 0
	for _, f := range funcs {
		if err := ssa.VerifyStrict(f); err != nil {
			t.Fatalf("%s: not strict SSA: %v", f.Name, err)
		}
		p, err := backend.Prepare(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if p.Reducible() {
			reducible++
		} else {
			irreducible++
		}
	}
	if reducible < 10 || irreducible < 10 {
		t.Fatalf("corpus mix too thin: %d reducible, %d irreducible", reducible, irreducible)
	}
}

func TestFromGraphMirrorsGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := graphgen.Random(rng, graphgen.Default)
		f := FromGraph(rng, g, "mirror")
		if err := ssa.VerifyStrict(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(f.Blocks) != g.N() {
			t.Fatalf("trial %d: %d blocks, graph has %d nodes", trial, len(f.Blocks), g.N())
		}
		for i, b := range f.Blocks {
			if len(b.Succs) != len(g.Succs[i]) {
				t.Fatalf("trial %d: block %d has %d successors, node has %d",
					trial, i, len(b.Succs), len(g.Succs[i]))
			}
			for j, e := range b.Succs {
				if e.B != f.Blocks[g.Succs[i][j]] {
					t.Fatalf("trial %d: edge %d->%d mismatches graph", trial, i, j)
				}
			}
		}
	}
}

// liar wraps a correct Result but negates one live-in answer; compare must
// report it as a Mismatch rather than letting it through.
type liar struct {
	backend.Result
	v *ir.Value
	b *ir.Block
}

func (l liar) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	if v == l.v && b == l.b {
		return !l.Result.IsLiveIn(v, b)
	}
	return l.Result.IsLiveIn(v, b)
}

func TestCompareCatchesDisagreement(t *testing.T) {
	funcs := Corpus(4, 99)
	f := funcs[0]
	b, err := backend.Get(GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	var target *ir.Value
	f.Values(func(v *ir.Value) {
		if target == nil && v.Op.HasResult() {
			target = v
		}
	})
	err = compare("liar", f, liar{Result: res, v: target, b: f.Blocks[0]}, dataflow.Analyze(f))
	var m *Mismatch
	if !errors.As(err, &m) {
		t.Fatalf("compare accepted a lying backend: %v", err)
	}
	if m.Backend != "liar" || !strings.Contains(m.Error(), "ground truth") {
		t.Fatalf("unhelpful mismatch: %v", m)
	}
}

// Per-block live-set sizes — register pressure — must agree with the
// ground truth for every set-producing backend, and the oracle-driven
// pressure walk must report identical profiles through every backend.
func TestPressureAgreesAcrossBackends(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 12
	}
	for _, f := range Corpus(n, 20260802) {
		if err := ValidatePressure(f); err != nil {
			t.Fatal(err)
		}
	}
}

// The corpus must actually contain the pressure-biased functions the
// regalloc subsystem relies on: some functions must be markedly denser
// than the sparse calibrated default.
func TestCorpusIncludesHighPressureFunctions(t *testing.T) {
	funcs := Corpus(64, 20260730)
	maxP := 0
	for _, f := range funcs {
		p := regalloc.MeasurePressure(f, dataflow.Analyze(f))
		if p.Max > maxP {
			maxP = p.Max
		}
	}
	if maxP < 12 {
		t.Fatalf("densest corpus function has max pressure %d, want >= 12 (pressure bias missing?)", maxP)
	}
}
