// Package difftest cross-validates every registered liveness backend
// against the iterative data-flow solver, the repository's ground truth.
// The data-flow baseline is the textbook algorithm whose correctness is
// independent of everything the other engines exploit (dominance, loop
// structure, reducibility), which is what makes it the reference: if a
// backend disagrees with it on any query, the backend is wrong.
//
// The corpus mixes the two random program sources on purpose. Package gen
// emits calibrated structured programs (φ-rich after SSA construction,
// optionally with irreducible "goto" gadgets); package graphgen emits raw
// rooted digraphs, including pathological and irreducible shapes the
// structured generator cannot reach, which FromGraph turns into strict-SSA
// functions by placing definitions and uses along the dominator tree.
// This is the differential-testing discipline of Barany's "Liveness-Driven
// Random Program Generation" applied to the paper's §6.2 engine comparison:
// every engine must answer every query identically.
package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"fastliveness"
	"fastliveness/internal/backend"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/dom"
	"fastliveness/internal/gen"
	"fastliveness/internal/graphgen"
	"fastliveness/internal/ir"
	"fastliveness/internal/loops"
	"fastliveness/internal/regalloc"
	"fastliveness/internal/ssa"
)

// GroundTruth names the backend all others are validated against.
const GroundTruth = "dataflow"

// Corpus returns n random strict-SSA functions: half from the structured
// generator (every third one with an irreducible gadget, every fourth one
// pressure-biased à la Barany so dense functions are represented, not just
// the sparse Table 1 shape), half synthesized from raw random digraphs
// (irreducible with the default graphgen mix). Generation is deterministic
// in seed.
func Corpus(n int, seed int64) []*ir.Func {
	rng := rand.New(rand.NewSource(seed))
	funcs := make([]*ir.Func, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("diff%03d", i)
		if i%2 == 0 {
			c := gen.Default(seed + int64(i))
			if i%8 == 2 {
				c = gen.HighPressure(seed + int64(i))
			}
			c.TargetBlocks = 4 + rng.Intn(40)
			c.Irreducible = i%6 == 0
			f := gen.Generate(name, c)
			ssa.Construct(f)
			funcs = append(funcs, f)
		} else {
			g := graphgen.Random(rng, graphgen.Config{
				MinNodes: 2, MaxNodes: 32, ExtraEdgeFactor: 1.5,
				BackEdgeProb: 0.4, AllowSelfLoops: true,
			})
			funcs = append(funcs, FromGraph(rng, g, name))
		}
	}
	return funcs
}

// FromGraph synthesizes a strict-SSA function whose CFG is exactly g
// (block i ↔ node i, successors in edge order). Definitions are placed by
// walking the dominator tree, each taking operands only from values defined
// in dominating blocks, so the result passes ssa.VerifyStrict without
// needing φs; graphgen guarantees every node is reachable from node 0.
func FromGraph(rng *rand.Rand, g *cfg.Graph, name string) *ir.Func {
	f := ir.NewFunc(name)
	blocks := make([]*ir.Block, g.N())
	for i := range blocks {
		kind := ir.BlockRet
		switch {
		case len(g.Succs[i]) == 1:
			kind = ir.BlockPlain
		case len(g.Succs[i]) == 2:
			kind = ir.BlockIf
		case len(g.Succs[i]) > 2:
			kind = ir.BlockSwitch
		}
		blocks[i] = f.NewBlock(kind)
	}
	for i, b := range blocks {
		for _, t := range g.Succs[i] {
			b.AddEdgeTo(blocks[t])
		}
	}

	// Seed the entry with parameters so every block has operands in scope.
	entry := blocks[0]
	avail := make([]*ir.Value, 0, 8)
	for i := 0; i < 2; i++ {
		avail = append(avail, entry.NewValueI(ir.OpParam, int64(i)))
	}

	// Dominator-tree walk: define values against dominating definitions,
	// and give every branch/switch/ret a control it is allowed to see.
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	pick := func() *ir.Value { return avail[rng.Intn(len(avail))] }
	var walk func(node int)
	walk = func(node int) {
		b := blocks[node]
		defs := 1 + rng.Intn(3)
		for i := 0; i < defs; i++ {
			var v *ir.Value
			if rng.Intn(6) == 0 {
				v = b.NewValueI(ir.OpConst, int64(rng.Intn(100)))
			} else {
				v = b.NewValue(ir.OpAdd, pick(), pick())
			}
			avail = append(avail, v)
		}
		if b.Kind != ir.BlockPlain {
			b.SetControl(pick())
		}
		mark := len(avail)
		for _, c := range tree.Children[node] {
			walk(c)
			avail = avail[:mark] // defs of a sibling subtree are out of scope
		}
	}
	walk(0)
	return f
}

// Mismatch describes one disagreement between a backend and the ground
// truth.
type Mismatch struct {
	Backend string
	Func    string
	Query   string // e.g. "live-in(%v3, b2)"
	Got     bool
	Want    bool
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("difftest: backend %s on %s: %s = %v, ground truth %s says %v",
		m.Backend, m.Func, m.Query, m.Got, GroundTruth, m.Want)
}

// Validate runs every registered backend on f and checks every
// IsLiveIn/IsLiveOut answer, every enumerated live set, and the Interfere
// relation of the public API against the data-flow ground truth. The
// loops backend is allowed — required — to fail with loops.ErrIrreducible
// on irreducible control flow; any other analysis failure, and any answer
// disagreement, is returned as an error.
func Validate(f *ir.Func) error {
	truth := dataflow.Analyze(f)
	for _, name := range backend.Names() {
		b, err := backend.Get(name)
		if err != nil {
			return err
		}
		res, err := b.Analyze(f)
		if err != nil {
			if name == "loops" && errors.Is(err, loops.ErrIrreducible) {
				continue
			}
			return fmt.Errorf("difftest: backend %s on %s: %w", name, f.Name, err)
		}
		if err := compare(name, f, res, truth); err != nil {
			return err
		}
	}
	return compareInterfere(f)
}

// interferePairCap bounds the quadratic pair walk of compareInterfere; on
// bigger functions the pairs are stride-sampled deterministically.
const interferePairCap = 4096

// compareInterfere cross-checks the public API's Interfere relation: the
// checker-backed and the dataflow-backed analyses route the live-out test
// of the Budimlić algorithm through different engines, and the concurrent
// Querier handle routes it through its own scratch, so all three must
// classify every sampled value pair identically.
func compareInterfere(f *ir.Func) error {
	chk, err := fastliveness.Analyze(f, fastliveness.Config{Backend: "checker"})
	if err != nil {
		return err
	}
	df, err := fastliveness.Analyze(f, fastliveness.Config{Backend: GroundTruth})
	if err != nil {
		return err
	}
	var vals []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vals = append(vals, v)
		}
	})
	n := len(vals)
	stride := 1
	if n*n > interferePairCap {
		// Keep the stride coprime to n: y = vals[k%n], so a shared factor
		// would confine y to one residue class and blind the sweep to
		// whole columns of the pair matrix.
		for stride = n * n / interferePairCap; gcd(stride, n) != 1; stride++ {
		}
	}
	qr := chk.NewQuerier()
	for k := 0; k < n*n; k += stride {
		x, y := vals[k/n], vals[k%n]
		want := chk.Interfere(x, y)
		if got := df.Interfere(x, y); got != want {
			return fmt.Errorf("difftest: %s: Interfere(%s, %s) = %v via %s, %v via checker",
				f.Name, x, y, got, GroundTruth, want)
		}
		if got := qr.Interfere(x, y); got != want {
			return fmt.Errorf("difftest: %s: Querier.Interfere(%s, %s) = %v, Liveness says %v",
				f.Name, x, y, got, want)
		}
	}
	return nil
}

// compare checks res against the ground truth on every (value, block) pair
// and on whole-set enumeration.
func compare(name string, f *ir.Func, res backend.Result, truth *dataflow.Result) error {
	var firstErr error
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() || firstErr != nil {
			return
		}
		for _, b := range f.Blocks {
			if got, want := res.IsLiveIn(v, b), truth.IsLiveIn(v, b); got != want {
				firstErr = &Mismatch{Backend: name, Func: f.Name,
					Query: fmt.Sprintf("live-in(%s, %s)", v, b), Got: got, Want: want}
				return
			}
			if got, want := res.IsLiveOut(v, b), truth.IsLiveOut(v, b); got != want {
				firstErr = &Mismatch{Backend: name, Func: f.Name,
					Query: fmt.Sprintf("live-out(%s, %s)", v, b), Got: got, Want: want}
				return
			}
		}
	})
	if firstErr != nil {
		return firstErr
	}
	// Enumerated sets must hold exactly the values the queries say are
	// live; backends enumerate in different (deterministic) orders, so
	// compare as ID sets.
	for _, b := range f.Blocks {
		for _, dir := range []struct {
			kind string
			set  func(*ir.Block) []*ir.Value
			live func(*ir.Value, *ir.Block) bool
		}{
			{"live-in", res.LiveInSet, truth.IsLiveIn},
			{"live-out", res.LiveOutSet, truth.IsLiveOut},
		} {
			got := ids(dir.set(b))
			var want []int
			f.Values(func(v *ir.Value) {
				if v.Op.HasResult() && dir.live(v, b) {
					want = append(want, v.ID)
				}
			})
			sort.Ints(want)
			if !equalInts(got, want) {
				return fmt.Errorf("difftest: backend %s on %s: %s set of %s = %v, ground truth %v",
					name, f.Name, dir.kind, b, got, want)
			}
		}
	}
	return nil
}

// CheckerConfigs enumerates the checker configurations the arena storage
// rewrite must keep answer-identical: both T-set strategies × bitset vs
// sorted-array T storage × fresh vs cached use reads. Validate covers the
// registered backends under default options; this axis covers the
// checker's own representation space.
func CheckerConfigs() []fastliveness.Config {
	var out []fastliveness.Config
	for _, strat := range []fastliveness.Strategy{fastliveness.StrategyExact, fastliveness.StrategyPropagate} {
		for _, sorted := range []bool{false, true} {
			for _, cache := range []bool{false, true} {
				out = append(out, fastliveness.Config{Strategy: strat, SortedT: sorted, CacheUses: cache})
			}
		}
	}
	return out
}

// ValidateCheckerStorage cross-checks the checker under every
// CheckerConfigs combination against the data-flow ground truth on f:
// every live-in/live-out query through the Liveness handle and through a
// Querier (each owns its own use-set cache on the CacheUses paths), and
// the whole sweep again after ResetSets — on an unedited program the
// epoch flush and cache rebuild must change no answer.
func ValidateCheckerStorage(f *ir.Func) error {
	truth := dataflow.Analyze(f)
	for _, cfg := range CheckerConfigs() {
		live, err := fastliveness.Analyze(f, cfg)
		if err != nil {
			return fmt.Errorf("difftest: checker config %+v on %s: %w", cfg, f.Name, err)
		}
		qr := live.NewQuerier()
		sweep := func(stage string) error {
			var firstErr error
			f.Values(func(v *ir.Value) {
				if !v.Op.HasResult() || firstErr != nil {
					return
				}
				for _, b := range f.Blocks {
					wantIn, wantOut := truth.IsLiveIn(v, b), truth.IsLiveOut(v, b)
					if got := live.IsLiveIn(v, b); got != wantIn {
						firstErr = fmt.Errorf("difftest: checker %+v on %s (%s): live-in(%s, %s) = %v, ground truth %v",
							cfg, f.Name, stage, v, b, got, wantIn)
						return
					}
					if got := live.IsLiveOut(v, b); got != wantOut {
						firstErr = fmt.Errorf("difftest: checker %+v on %s (%s): live-out(%s, %s) = %v, ground truth %v",
							cfg, f.Name, stage, v, b, got, wantOut)
						return
					}
					if got := qr.IsLiveIn(v, b); got != wantIn {
						firstErr = fmt.Errorf("difftest: checker %+v on %s (%s): Querier live-in(%s, %s) = %v, ground truth %v",
							cfg, f.Name, stage, v, b, got, wantIn)
						return
					}
					if got := qr.IsLiveOut(v, b); got != wantOut {
						firstErr = fmt.Errorf("difftest: checker %+v on %s (%s): Querier live-out(%s, %s) = %v, ground truth %v",
							cfg, f.Name, stage, v, b, got, wantOut)
						return
					}
				}
			})
			return firstErr
		}
		if err := sweep("fresh"); err != nil {
			return err
		}
		live.ResetSets()
		if err := sweep("after ResetSets"); err != nil {
			return err
		}
	}
	return nil
}

// ValidatePressure cross-checks per-block liveness *sizes* — register
// pressure, the quantity the regalloc subsystem is built on — against the
// data-flow ground truth: every set-producing backend's materialized
// live-in/live-out cardinalities must match the ground truth's, and the
// oracle-driven regalloc.MeasurePressure walk must report identical
// per-block pressure through every backend (checker included) as through
// the ground truth itself. Membership checks (Validate) would catch any
// set disagreement too; this pins the derived counts the allocator and
// the spill heuristics consume directly.
func ValidatePressure(f *ir.Func) error {
	truth := dataflow.Analyze(f)
	want := regalloc.MeasurePressure(f, truth)
	for _, name := range backend.Names() {
		b, err := backend.Get(name)
		if err != nil {
			return err
		}
		res, err := b.Analyze(f)
		if err != nil {
			if name == "loops" && errors.Is(err, loops.ErrIrreducible) {
				continue
			}
			return fmt.Errorf("difftest: backend %s on %s: %w", name, f.Name, err)
		}
		if res.Invalidation() == backend.InvalidatedByAnyEdit {
			for i, blk := range f.Blocks {
				if got, wantN := len(res.LiveInSet(blk)), truth.LiveIn[i].Count(); got != wantN {
					return fmt.Errorf("difftest: backend %s on %s: |live-in(%s)| = %d, ground truth %d",
						name, f.Name, blk, got, wantN)
				}
				if got, wantN := len(res.LiveOutSet(blk)), truth.LiveOut[i].Count(); got != wantN {
					return fmt.Errorf("difftest: backend %s on %s: |live-out(%s)| = %d, ground truth %d",
						name, f.Name, blk, got, wantN)
				}
			}
		}
		got := regalloc.MeasurePressure(f, res)
		if got.Max != want.Max {
			return fmt.Errorf("difftest: backend %s on %s: max pressure %d, ground truth %d",
				name, f.Name, got.Max, want.Max)
		}
		for i, blk := range f.Blocks {
			if got.PerBlock[i] != want.PerBlock[i] {
				return fmt.Errorf("difftest: backend %s on %s: pressure(%s) = %d, ground truth %d",
					name, f.Name, blk, got.PerBlock[i], want.PerBlock[i])
			}
		}
	}
	return nil
}

// ValidateAll is Validate over a whole corpus, failing on the first
// disagreement.
func ValidateAll(funcs []*ir.Func) error {
	for _, f := range funcs {
		if err := Validate(f); err != nil {
			return err
		}
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func ids(vs []*ir.Value) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = v.ID
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
