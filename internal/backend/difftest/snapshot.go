package difftest

import (
	"fmt"

	"fastliveness/internal/backend"
	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/ir"
	"fastliveness/internal/snapshot"
)

// ValidateSnapshot proves the disk tier can never change an answer, on one
// function: a checker restored from a saved-and-reloaded snapshot must
// agree with the data-flow ground truth on every query (exactly the
// Validate discipline), the snapshot must stay valid — same fingerprint,
// still answer-identical — after an instruction-only edit, and a CFG edit
// must change the fingerprint and make Restore fail closed rather than
// answer from the dead shape.
//
// The function is mutated (one added use, one split edge); pass a
// throwaway corpus function, not one another check still needs.
func ValidateSnapshot(f *ir.Func, dir string) error {
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		return err
	}
	p, err := backend.Prepare(f)
	if err != nil {
		return err
	}
	fresh := backend.NewCheckerResult(p, core.Options{})
	snap, err := snapshot.Capture(p, fresh.Checker())
	if err != nil {
		return fmt.Errorf("difftest: capture %s: %w", f.Name, err)
	}
	if err := st.Save(snap); err != nil {
		return fmt.Errorf("difftest: save %s: %w", f.Name, err)
	}
	loaded, err := st.Load(snap.FP)
	if err != nil {
		return fmt.Errorf("difftest: load %s: %w", f.Name, err)
	}
	restored, err := loaded.Restore(f, core.Options{})
	if err != nil {
		return fmt.Errorf("difftest: restore %s: %w", f.Name, err)
	}
	if err := compare("snapshot", f, restored, dataflow.Analyze(f)); err != nil {
		return err
	}

	// Instruction-only edit: the cache key must not move (the checker's
	// CFG-only contract made persistent), and the same on-disk bytes must
	// answer for the *edited* program — against a ground truth recomputed
	// after the edit.
	var someVal *ir.Value
	f.Values(func(v *ir.Value) {
		if someVal == nil && v.Op.HasResult() {
			someVal = v
		}
	})
	if someVal == nil {
		return fmt.Errorf("difftest: %s has no result-producing value", f.Name)
	}
	someVal.Block.NewValue(ir.OpNeg, someVal)
	g, _ := cfg.FromFunc(f)
	if fp := snapshot.Fingerprint(g, snap.Flags); fp != snap.FP {
		return fmt.Errorf("difftest: %s: instruction edit moved the fingerprint %016x -> %016x",
			f.Name, snap.FP, fp)
	}
	restored, err = loaded.Restore(f, core.Options{})
	if err != nil {
		return fmt.Errorf("difftest: restore %s after instruction edit: %w", f.Name, err)
	}
	if err := compare("snapshot-after-instr-edit", f, restored, dataflow.Analyze(f)); err != nil {
		return err
	}

	// CFG edit: the fingerprint must move (the snapshot no longer describes
	// this shape) and a restore forced across the mismatch must error, not
	// answer.
	split := false
	for _, b := range f.Blocks {
		if len(b.Succs) > 0 {
			b.SplitEdge(0)
			split = true
			break
		}
	}
	if !split {
		return fmt.Errorf("difftest: %s has no edge to split", f.Name)
	}
	g, _ = cfg.FromFunc(f)
	if fp := snapshot.Fingerprint(g, snap.Flags); fp == snap.FP {
		return fmt.Errorf("difftest: %s: CFG edit left the fingerprint at %016x", f.Name, fp)
	}
	if _, err := loaded.Restore(f, core.Options{}); err == nil {
		return fmt.Errorf("difftest: %s: restore across a CFG edit succeeded; want fail-closed error", f.Name)
	}
	return nil
}
