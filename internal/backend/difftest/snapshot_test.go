package difftest

import (
	"testing"
)

// The acceptance criterion of the persistent snapshot tier: over the
// random reducible + irreducible corpus, a checker restored from disk is
// answer-identical to the ground truth, stays so after instruction-only
// edits without a new cache key, and fails closed across CFG edits.
func TestSnapshotRestoredCheckerAgrees(t *testing.T) {
	n := 48
	if testing.Short() {
		n = 12
	}
	dir := t.TempDir()
	for _, f := range Corpus(n, 20260807) {
		if err := ValidateSnapshot(f, dir); err != nil {
			t.Fatal(err)
		}
	}
}
