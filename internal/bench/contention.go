package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastliveness"
	"fastliveness/internal/ir"
)

// The engine contention benchmark: a mutating whole-program corpus is
// hammered by W querier goroutines issuing per-function query batches
// while one mutator goroutine edits random functions through Engine.Edit
// at a fixed pace. Per-function sharding means queriers on different
// functions never contend on a cache mutex, and the background rebuild
// pool absorbs the mutator's staleness off the query path — the scaling
// of batch-query throughput with W is the number this table reports.
//
// Batches are capped below the engine's internal fan-out threshold so a
// single batch never recruits extra goroutines: all measured parallelism
// comes from the concurrent queriers, not from intra-batch sharding.

// contentionBatchCap keeps batches below the engine's internal
// batch-parallel threshold (256).
const contentionBatchCap = 240

// mutatorPace is the fixed delay between mutations: an edit-heavy but
// not pathological workload (~1k edits/sec), identical at every worker
// count so rows are comparable.
const mutatorPace = time.Millisecond

// cfgEditPeriod makes every Nth mutation a CFG edit (stales the
// checker); the rest are instruction edits (the checker survives them).
const cfgEditPeriod = 8

// EngineRow is one contention measurement at a fixed querier count.
type EngineRow struct {
	Queriers           int     `json:"queriers"`
	Batches            int64   `json:"batches"`
	Queries            int64   `json:"queries"`
	WallNs             int64   `json:"wall_ns"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
	Speedup            float64 `json:"speedup"`
	Edits              int64   `json:"edits"`
	QueryRebuilds      int     `json:"query_rebuilds"`
	BackgroundRebuilds int     `json:"background_rebuilds"`
}

// EngineContention is the full contention report: the corpus and engine
// shape, plus one row per querier count. Speedups are relative to the
// first row.
type EngineContention struct {
	Funcs          int         `json:"funcs"`
	Blocks         int         `json:"blocks"`
	Shards         int         `json:"shards"`
	RebuildWorkers int         `json:"rebuild_workers"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	Note           string      `json:"note"`
	Rows           []EngineRow `json:"rows"`
}

// MeasureEngineContention runs the contention benchmark: for each entry
// in queriers it builds a fresh clone of the n-function corpus, stands up
// a sharded engine with a background rebuild pool, precomputes, then runs
// that many querier goroutines against one paced mutator for the window
// and reports batch-query throughput. window <= 0 selects a default.
func MeasureEngineContention(nFuncs int, queriers []int, shards, rebuildWorkers int, window time.Duration) *EngineContention {
	if window <= 0 {
		window = 300 * time.Millisecond
	}
	master := BuildProgram(nFuncs, 2008)
	blocks := 0
	for _, f := range master {
		blocks += len(f.Blocks)
	}
	rep := &EngineContention{
		Funcs:          nFuncs,
		Blocks:         blocks,
		RebuildWorkers: rebuildWorkers,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Note: fmt.Sprintf("wall-clock throughput scaling saturates at the hardware's core count (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
	}
	for _, w := range queriers {
		row, effectiveShards := contentionRow(master, w, shards, rebuildWorkers, window)
		rep.Shards = effectiveShards
		rep.Rows = append(rep.Rows, row)
	}
	for i := range rep.Rows {
		rep.Rows[i].Speedup = rep.Rows[i].QueriesPerSec / rep.Rows[0].QueriesPerSec
	}
	return rep
}

// contentionRow measures one querier count over a fresh clone of the
// corpus, so earlier rows' mutations never skew later ones. The second
// return is the engine's effective shard count (resolving a zero config).
func contentionRow(master []*ir.Func, queriers, shards, rebuildWorkers int, window time.Duration) (EngineRow, int) {
	funcs := make([]*ir.Func, len(master))
	for i, f := range master {
		funcs[i] = ir.Clone(f)
	}
	e, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{
		Shards:         shards,
		RebuildWorkers: rebuildWorkers,
	})
	if err != nil {
		panic(err)
	}
	defer e.Close()

	// Per-function query batches and mutation anchors, collected before
	// the run; mutations only add values and edges, so the pointers stay
	// valid throughout.
	batches := make([][]fastliveness.Query, len(funcs))
	anchors := make([]*ir.Value, len(funcs))
	for i, f := range funcs {
		qs := programQueries(f)
		if len(qs) > contentionBatchCap {
			qs = qs[:contentionBatchCap]
		}
		batches[i] = qs
		f.Values(func(v *ir.Value) {
			if anchors[i] == nil && v.Op.HasResult() {
				anchors[i] = v
			}
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var nBatches, nQueries, nEdits atomic.Int64

	// One paced mutator: mostly instruction edits (the checker survives
	// them), every cfgEditPeriod-th a CFG edit (forces re-analysis, which
	// the rebuild pool absorbs via Edit's MarkDirty).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := lcg(97)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(mutatorPace):
			}
			idx := int(rng() % uint64(len(funcs)))
			f := funcs[idx]
			e.Edit(f, func() {
				if i%cfgEditPeriod == cfgEditPeriod-1 {
					for _, b := range f.Blocks {
						if len(b.Succs) > 0 {
							b.SplitEdge(0)
							break
						}
					}
				} else if v := anchors[idx]; v != nil {
					v.Block.NewValue(ir.OpNeg, v)
				}
			})
			nEdits.Add(1)
		}
	}()

	start := time.Now()
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := lcg(uint64(1000 + q))
			for {
				select {
				case <-stop:
					return
				default:
				}
				idx := int(rng() % uint64(len(funcs)))
				if _, err := e.BatchIsLiveIn(funcs[idx], batches[idx]); err != nil {
					panic(err)
				}
				nBatches.Add(1)
				nQueries.Add(int64(len(batches[idx])))
			}
		}(q)
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	return EngineRow{
		Queriers:           queriers,
		Batches:            nBatches.Load(),
		Queries:            nQueries.Load(),
		WallNs:             elapsed.Nanoseconds(),
		QueriesPerSec:      float64(nQueries.Load()) / elapsed.Seconds(),
		Edits:              nEdits.Load(),
		QueryRebuilds:      e.Rebuilds(),
		BackgroundRebuilds: e.BackgroundRebuilds(),
	}, e.Shards()
}

// lcg returns a tiny deterministic generator (64-bit LCG) — enough to
// spread goroutines over the corpus without math/rand's lock.
func lcg(seed uint64) func() uint64 {
	state := seed*2862933555777941757 + 3037000493
	return func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state >> 1
	}
}

// EngineContentionSection renders the report as the text table appended
// to -table engine output.
func EngineContentionSection(rep *EngineContention) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sharded-engine contention: %d queriers vs. one mutator over %d functions (%d blocks)\n",
		len(rep.Rows), rep.Funcs, rep.Blocks)
	fmt.Fprintf(&sb, "shards=%d rebuild-workers=%d GOMAXPROCS=%d; %s.\n\n",
		rep.Shards, rep.RebuildWorkers, rep.GOMAXPROCS,
		"batch-query throughput by concurrent querier count")
	fmt.Fprintf(&sb, "%9s %12s %14s %9s %7s %9s %9s\n",
		"queriers", "batches", "queries/sec", "speedup", "edits", "q-rebuild", "bg-rebuild")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%9d %12d %14.0f %9.2f %7d %9d %9d\n",
			r.Queriers, r.Batches, r.QueriesPerSec, r.Speedup, r.Edits,
			r.QueryRebuilds, r.BackgroundRebuilds)
	}
	return sb.String()
}

// EngineContentionJSON emits the report in the BENCH_*.json format.
func EngineContentionJSON(rep *EngineContention) (string, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
