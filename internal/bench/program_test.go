package bench

import (
	"fmt"
	"runtime"
	"testing"

	"fastliveness"
)

// programCorpusSize satisfies the program-level experiment's floor of a
// ≥100-function corpus.
const programCorpusSize = 128

// BenchmarkProgramPrecompute measures whole-program precompute wall time
// by worker count. On a machine with ≥4 cores the workers=4 case runs
// >1.5x faster than workers=1 (the work is embarrassingly parallel across
// functions); on fewer cores the speedup saturates at the core count.
func BenchmarkProgramPrecompute(b *testing.B) {
	funcs := BuildProgram(programCorpusSize, 2008)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PrecomputeOnce(funcs, w)
			}
		})
	}
}

// BenchmarkProgramBatchQueries measures the batched query API against the
// one-at-a-time API on the same query stream.
func BenchmarkProgramBatchQueries(b *testing.B) {
	funcs := BuildProgram(16, 2008)
	engine, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]fastliveness.Query, len(funcs))
	total := 0
	for i, f := range funcs {
		batches[i] = programQueries(f)
		total += len(batches[i])
	}
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, f := range funcs {
				for _, q := range batches[j] {
					live, err := engine.Liveness(f)
					if err != nil {
						b.Fatal(err)
					}
					live.IsLiveIn(q.V, q.B)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/query")
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, f := range funcs {
				if _, err := engine.BatchIsLiveIn(f, batches[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/query")
	})
}

// TestProgramParallelSpeedup asserts the >1.5x-at-4-workers scaling claim
// on hardware that can express it; single- and dual-core machines (and CI
// sandboxes) skip, since wall-clock parallel speedup is bounded by the
// core count.
func TestProgramParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation and timing in -short mode")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("GOMAXPROCS=%d: 4-worker wall-clock speedup needs >=4 cores", p)
	}
	funcs := BuildProgram(programCorpusSize, 2008)
	times := ProgramSpeedups(funcs, []int{1, 4}, 5)
	speedup := float64(times[0]) / float64(times[1])
	t.Logf("precompute over %d funcs: 1 worker %v, 4 workers %v (%.2fx)",
		len(funcs), times[0], times[1], speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx, want >1.5x", speedup)
	}
}

// TestProgramBatchByteIdentical checks, over the whole program corpus,
// that the engine's batched answers are positionally identical to the
// per-query Liveness.IsLiveIn/IsLiveOut answers.
func TestProgramBatchByteIdentical(t *testing.T) {
	n := 32
	if testing.Short() {
		n = 8
	}
	funcs := BuildProgram(n, 99)
	engine, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range funcs {
		qs := programQueries(f)
		ins, err := engine.BatchIsLiveIn(f, qs)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := engine.BatchIsLiveOut(f, qs)
		if err != nil {
			t.Fatal(err)
		}
		live, err := engine.Liveness(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			if ins[i] != live.IsLiveIn(q.V, q.B) || outs[i] != live.IsLiveOut(q.V, q.B) {
				t.Fatalf("%s: batch answer differs from single query at %s@%s", f.Name, q.V, q.B)
			}
		}
	}
}
