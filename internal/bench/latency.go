package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fastliveness"
	"fastliveness/internal/backend"
	"fastliveness/internal/ir"
	"fastliveness/internal/telemetry"
)

// LatencyRow is one backend's per-query latency distribution over the
// recorded SSA-destruction query stream, replayed through an engine
// Oracle with a benign instruction edit interleaved every editEvery
// queries. Each query is timed individually into a telemetry.Histogram,
// so the row reports the tail — where the paper's invalidation asymmetry
// lives: an instruction edit leaves the checker's CFG-only
// precomputation valid but stales every set-producing backend, whose
// inline re-analysis lands on the next query as a latency spike. With
// edits more frequent than 1 in 100 queries, those spikes sit inside
// p99 for the set backends and nowhere at all for the checker.
type LatencyRow struct {
	Name     string  `json:"name"`
	Procs    int     `json:"procs"`
	Skipped  int     `json:"skipped"`
	Queries  int     `json:"queries"`
	Edits    int     `json:"edits"`
	Rebuilds int     `json:"rebuilds"`
	MeanNs   float64 `json:"ns_per_op"`
	P50Ns    int64   `json:"p50_ns"`
	P90Ns    int64   `json:"p90_ns"`
	P99Ns    int64   `json:"p99_ns"`
	P999Ns   int64   `json:"p999_ns"`
}

// LatencyRegistry collects the per-backend replay histograms
// (bench_query_ns_<backend>) so cmd/benchtables -debug-addr can expose
// a live /metrics view of a run in progress.
var LatencyRegistry = telemetry.NewRegistry()

// benignEdit inserts and immediately removes a copy of v — the program
// is unchanged, but the function's instruction epoch advances twice, so
// analyses keyed on it go stale exactly as a real rewrite would.
func benignEdit(v *ir.Value) {
	tmp := v.Block.NewValue(ir.OpCopy, v)
	v.Block.RemoveValue(tmp)
}

// MeasureLatency replays each procedure's recorded destruction query
// stream through a per-backend engine Oracle, timing every query into a
// log-bucketed histogram and performing a benign instruction edit every
// editEvery queries (0 disables editing). Engines run with no rebuild
// pool, so a staled analysis is rebuilt inline on the query that
// observes it — the latency the distribution is meant to capture.
// Verification is disabled for the replay (the corpus is already
// verified) so set-backend rebuild cost is re-analysis, not re-checking.
func MeasureLatency(corpora []*Corpus, editEvery int) ([]LatencyRow, error) {
	type item struct {
		p  Proc
		qs []Query
	}
	var items []item
	for _, c := range corpora {
		for _, p := range c.Procs {
			if qs := RecordQueries(p); len(qs) > 0 {
				items = append(items, item{p, qs})
			}
		}
	}
	var rows []LatencyRow
	for _, name := range backend.Names() {
		h := LatencyRegistry.Histogram("bench_query_ns_"+metricName(name),
			"per-query replay latency, backend "+name)
		row := LatencyRow{Name: name}
		for _, it := range items {
			// A fresh clone per backend: edits below must not accumulate
			// across backends, or later rows would replay a grown function.
			f := ir.Clone(it.p.F)
			valByID := make([]*ir.Value, f.NumValues())
			f.Values(func(v *ir.Value) { valByID[v.ID] = v })
			blockByID := make([]*ir.Block, f.NumBlocks())
			for _, b := range f.Blocks {
				blockByID[b.ID] = b
			}

			e := fastliveness.NewEngine(fastliveness.EngineConfig{
				Config: fastliveness.Config{Backend: name, SkipVerify: true},
			})
			e.Add(f)
			o, err := e.Oracle(f)
			if err != nil {
				row.Skipped++ // e.g. the loops backend on irreducible CFGs
				continue
			}
			row.Procs++
			editV := valByID[it.qs[0].V.ID]
			sinceEdit := 0
			for _, q := range it.qs {
				if editEvery > 0 && sinceEdit >= editEvery {
					sinceEdit = 0
					benignEdit(editV)
					row.Edits++
				}
				v, b := valByID[q.V.ID], blockByID[q.B.ID]
				start := time.Now()
				o.IsLiveOut(v, b)
				h.Observe(time.Since(start).Nanoseconds())
				sinceEdit++
			}
			row.Rebuilds += e.Rebuilds()
		}
		s := h.Snapshot()
		row.Queries = int(s.Count)
		row.MeanNs = s.Mean()
		row.P50Ns = s.P50()
		row.P90Ns = s.P90()
		row.P99Ns = s.P99()
		row.P999Ns = s.P999()
		rows = append(rows, row)
	}
	return rows, nil
}

// metricName maps a backend name onto the Prometheus metric-name
// alphabet (defensive: current backend names are already legal).
func metricName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// LatencyTable renders the per-backend latency distributions.
func LatencyTable(corpora []*Corpus, editEvery int) string {
	rows, err := MeasureLatency(corpora, editEvery)
	if err != nil {
		return "latency table: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("Per-query latency distribution over the recorded destruction stream,\n")
	fmt.Fprintf(&sb, "one engine per backend (no rebuild pool), benign instruction edit every %d queries.\n", editEvery)
	sb.WriteString("An instruction edit leaves the checker's CFG-only precomputation valid but\n")
	sb.WriteString("stales the set backends, whose inline re-analysis shows up at the tail (p99).\n\n")
	fmt.Fprintf(&sb, "%-10s %6s %5s | %9s %7s %8s | %10s %8s %8s %8s %9s\n",
		"Backend", "#Proc", "Skip", "#Queries", "Edits", "Rebuild",
		"MeanNs", "p50", "p90", "p99", "p99.9")
	sb.WriteString(strings.Repeat("-", 110))
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6d %5d | %9d %7d %8d | %10.1f %8d %8d %8d %9d\n",
			r.Name, r.Procs, r.Skipped, r.Queries, r.Edits, r.Rebuilds,
			r.MeanNs, r.P50Ns, r.P90Ns, r.P99Ns, r.P999Ns)
	}
	return sb.String()
}

// LatencyJSON renders the rows machine-readably for BENCH_*.json.
func LatencyJSON(rows []LatencyRow) (string, error) {
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
