package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/pipeline"
)

// PipelineRow is one backend's end-to-end measurement of the full pass
// pipeline (construct → split-edges → destruct → regalloc over an
// engine): wall time per procedure, the staleness-forced re-analyses the
// editing passes caused, and the per-pass breakdown. Every backend runs
// on identical slot-form clones, so the rows differ only in the engine —
// the checker-vs-set-backend invalidation asymmetry, measured end to end
// instead of asserted.
type PipelineRow struct {
	Name       string               `json:"name"`
	Procs      int                  `json:"procs"`
	Skipped    int                  `json:"skipped"`
	NsPerProc  float64              `json:"ns_per_op"`
	Rebuilds   int                  `json:"rebuilds"`
	Queries    int                  `json:"queries"`
	CFGEdits   uint64               `json:"cfg_edits"`
	InstrEdits uint64               `json:"instr_edits"`
	Spills     int                  `json:"spills"`
	Copies     int                  `json:"copies"`
	Regs       int                  `json:"regs"`
	Passes     []pipeline.PassStats `json:"passes"`
}

// pipelineProtos generates the slot-form corpus the pipeline rows share:
// up to limit procedures per SPEC2000 benchmark, *before* SSA
// construction — constructing is the pipeline's own first pass.
func pipelineProtos(limit int) []*ir.Func {
	var protos []*ir.Func
	for i := range gen.SPEC2000 {
		spec := &gen.SPEC2000[i]
		n := spec.Procs
		if limit > 0 && limit < n {
			n = limit
		}
		for j := 0; j < n; j++ {
			protos = append(protos, spec.GenerateProc(j))
		}
	}
	return protos
}

// MeasurePipeline runs the full pipeline once per registered backend over
// identical clones of the slot-form corpus (limit procedures per
// benchmark) with base register budget k.
func MeasurePipeline(limit, k int) ([]PipelineRow, error) {
	protos := pipelineProtos(limit)
	var rows []PipelineRow
	for _, name := range backend.Names() {
		funcs := make([]*ir.Func, len(protos))
		for i, p := range protos {
			funcs[i] = ir.Clone(p)
		}
		start := time.Now()
		rep, err := pipeline.Run(funcs, pipeline.Config{Backend: name, Regs: k})
		if err != nil {
			return nil, fmt.Errorf("pipeline with backend %s: %w", name, err)
		}
		elapsed := time.Since(start).Nanoseconds()
		row := PipelineRow{
			Name:     name,
			Procs:    rep.Funcs,
			Skipped:  rep.Skipped,
			Rebuilds: rep.Rebuilds,
			Queries:  rep.Queries,
			Spills:   rep.Spills,
			Copies:   rep.Copies,
			Regs:     rep.Regs,
			Passes:   rep.Passes,
		}
		for _, ps := range rep.Passes {
			row.CFGEdits += ps.CFGEdits
			row.InstrEdits += ps.InstrEdits
		}
		if rep.Funcs > 0 {
			row.NsPerProc = float64(elapsed) / float64(rep.Funcs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PipelineTable renders the per-backend pipeline comparison with a
// per-pass breakdown.
func PipelineTable(limit, k int) string {
	rows, err := MeasurePipeline(limit, k)
	if err != nil {
		return "pipeline table: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("End-to-end pass pipeline (construct -> split-edges -> destruct -> regalloc)\n")
	sb.WriteString("per backend over identical slot-form clones, one engine per run, base k = " + fmt.Sprint(k) + ".\n")
	sb.WriteString("Rebuild = engine re-analyses forced by stale edit epochs. Edge splitting is\n")
	sb.WriteString("the pipeline's only CFG edit and runs before any analysis, so the checker's\n")
	sb.WriteString("CFG-only precomputation serves destruction and the whole spill loop with 0\n")
	sb.WriteString("rebuilds; set-producing backends re-analyze per edit-then-query.\n\n")
	fmt.Fprintf(&sb, "%-10s %7s %6s | %12s %8s | %10s | %6s %8s | %7s %7s\n",
		"Backend", "#Proc", "Skip", "Ns/proc", "Rebuild", "#Queries", "dCFG", "dInstr", "Copies", "Spills")
	sb.WriteString(strings.Repeat("-", 104))
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %6d | %12.1f %8d | %10d | %6d %8d | %7d %7d\n",
			r.Name, r.Procs, r.Skipped, r.NsPerProc, r.Rebuilds, r.Queries,
			r.CFGEdits, r.InstrEdits, r.Copies, r.Spills)
	}
	sb.WriteString("\nPer-pass rebuild/query breakdown:\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s", r.Name)
		for _, ps := range r.Passes {
			fmt.Fprintf(&sb, "  %s %d/%d", ps.Pass, ps.Rebuilds, ps.Queries)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PipelineJSON renders the rows machine-readably, the format of the
// BENCH_*.json performance trajectory (ns_per_op is the end-to-end
// pipeline cost per procedure).
func PipelineJSON(rows []PipelineRow) (string, error) {
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
