package bench

import (
	"math"
	"strings"
	"testing"

	"fastliveness/internal/gen"
	"fastliveness/internal/ssa"
)

// TestTable1Calibration guards the generator against drifting away from the
// paper's corpus shape. Tolerances are loose — we reproduce distributions,
// not exact numbers — but tight enough to catch regressions.
func TestTable1Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus generation in -short mode")
	}
	perBench := 50
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol
	}
	var totBlocks, totVars float64
	var sumAvgErr float64
	n := 0
	for i := range gen.SPEC2000 {
		spec := &gen.SPEC2000[i]
		c := BuildCorpus(spec, perBench)
		s := Shape(c)
		// Per-benchmark: average block count within 45% (a 50-proc sample
		// of a heavy-tailed distribution is noisy), %≤32 within 18 points.
		if !within(s.Blocks.Mean, spec.AvgBlocks, 0.45*spec.AvgBlocks) {
			t.Errorf("%s: avg blocks %.1f, paper %.1f", spec.Name, s.Blocks.Mean, spec.AvgBlocks)
		}
		if !within(s.PctLE32, spec.PctLE32, 18) {
			t.Errorf("%s: %%≤32 = %.1f, paper %.1f", spec.Name, s.PctLE32, spec.PctLE32)
		}
		// Uses-per-variable CDF within 9 points at every knot.
		for k := 0; k < 4; k++ {
			if !within(s.UsePct[k], spec.UsePct[k], 9) {
				t.Errorf("%s: uses %%≤%d = %.1f, paper %.1f", spec.Name, k+1, s.UsePct[k], spec.UsePct[k])
			}
		}
		sumAvgErr += s.Blocks.Mean - spec.AvgBlocks
		totBlocks += float64(s.Blocks.Sum)
		totVars += float64(s.NumVars)
		n++
		// Back-edge fraction in a plausible band around the paper's 3.6%.
		frac := 100 * float64(s.BackEdges) / float64(s.EdgesTotal)
		if frac < 1.5 || frac > 7 {
			t.Errorf("%s: back-edge fraction %.1f%%, paper ~3.6%%", spec.Name, frac)
		}
	}
	if totVars == 0 || totBlocks == 0 {
		t.Fatal("empty corpus")
	}
}

func TestTable1AndEdgeStatsRender(t *testing.T) {
	corpora := BuildAll(8)
	t1 := Table1(corpora)
	for _, want := range []string{"164.gzip", "(paper)", "Total", "%<=32", "MaxUses"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, t1)
		}
	}
	es := EdgeStats(corpora)
	for _, want := range []string{"back edges", "irreducible", "4823"} {
		if !strings.Contains(es, want) {
			t.Fatalf("EdgeStats output missing %q:\n%s", want, es)
		}
	}
}

func TestRecordQueriesAndMeasure(t *testing.T) {
	c := BuildCorpus(gen.SpecByName("164.gzip"), 12)
	totalQ := 0
	for _, p := range c.Procs {
		qs := RecordQueries(p)
		totalQ += len(qs)
		for _, q := range qs {
			if q.V == nil || q.B == nil {
				t.Fatal("query with nil value/block")
			}
			// The query's value and block must belong to the original
			// function.
			if q.V.Block.Func != p.F {
				t.Fatal("query value not from the original function")
			}
		}
		// Recording twice gives the identical stream (determinism).
		qs2 := RecordQueries(p)
		if len(qs2) != len(qs) {
			t.Fatal("query recording not deterministic")
		}
		for i := range qs {
			if qs[i] != qs2[i] {
				t.Fatal("query stream differs between recordings")
			}
		}
	}
	if totalQ == 0 {
		t.Fatal("no queries recorded across the corpus")
	}

	row := MeasureCorpus(c)
	if row.Procs != 12 || row.Queries != totalQ {
		t.Fatalf("row mismatch: %+v (want %d queries)", row, totalQ)
	}
	if row.NativePre <= 0 || row.NewPre <= 0 || row.NativeQ <= 0 || row.NewQ <= 0 {
		t.Fatalf("non-positive timings: %+v", row)
	}
	pre, q, both := row.Speedups()
	if pre <= 0 || q <= 0 || both <= 0 {
		t.Fatalf("non-positive speedups: %f %f %f", pre, q, both)
	}
	// The paper's shape: precomputation much faster, queries slower.
	if pre < 1 {
		t.Errorf("expected precompute speedup > 1, got %.2f", pre)
	}
	if q > 1 {
		t.Errorf("expected query slowdown (speedup < 1), got %.2f", q)
	}
}

func TestTable2Renders(t *testing.T) {
	corpora := []*Corpus{BuildCorpus(gen.SpecByName("256.bzip2"), 6)}
	out := Table2(corpora)
	for _, want := range []string{"256.bzip2", "(paper)", "Total", "Spdup", "Both"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestAuxReports(t *testing.T) {
	corpora := []*Corpus{BuildCorpus(gen.SpecByName("181.mcf"), 5)}
	if out := FullPrecompStats(corpora); !strings.Contains(out, "fill") {
		t.Fatalf("FullPrecompStats output unexpected:\n%s", out)
	}
	if out := DestructionStats(corpora); !strings.Contains(out, "q/var") {
		t.Fatalf("DestructionStats output unexpected:\n%s", out)
	}
	if out := ScalingSeries([]int{32, 64}); !strings.Contains(out, "checker-bytes") {
		t.Fatalf("ScalingSeries output unexpected:\n%s", out)
	}
}

// The corpus must survive strictness verification end to end.
func TestCorpusIsStrictSSA(t *testing.T) {
	c := BuildCorpus(gen.SpecByName("197.parser"), 15)
	for _, p := range c.Procs {
		if err := ssa.VerifyStrict(p.F); err != nil {
			t.Fatalf("%s: %v", p.F.Name, err)
		}
	}
}

func TestMeasureRegalloc(t *testing.T) {
	c := BuildCorpus(gen.SpecByName("181.mcf"), 6)
	rows, wl, err := MeasureRegalloc([]*Corpus{c}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Procs != 6 || wl.Queries == 0 || wl.LiveIn == 0 || wl.LiveOut == 0 {
		t.Fatalf("degenerate workload: %+v", wl)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Procs == 0 && r.Skipped == 0 {
			t.Fatalf("backend %s measured nothing", r.Name)
		}
		if r.Procs > 0 && (r.AllocNs <= 0 || r.Queries == 0 || r.QueryNs <= 0) {
			t.Fatalf("backend %s has empty timings: %+v", r.Name, r)
		}
		if r.Invalidation == "cfg-changes" && r.Refreshes != 0 {
			t.Fatalf("backend %s survives instruction edits but refreshed %d times", r.Name, r.Refreshes)
		}
		if r.Invalidation == "any-edit" && wl.Spills > 0 && r.Skipped == 0 && r.Refreshes == 0 {
			t.Fatalf("backend %s is edit-invalidated and the workload spilled, but never refreshed", r.Name)
		}
	}
	for _, want := range []string{"checker", "dataflow", "auto"} {
		if !names[want] {
			t.Fatalf("rows missing backend %s: %v", want, names)
		}
	}
	out, err := RegallocJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name"`, `"ns_per_op"`, `"query_ns_per_op"`, `"refreshes"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %s:\n%s", want, out)
		}
	}
	table := RegallocTable([]*Corpus{c}, 6)
	for _, want := range []string{"register-allocation workload", "AllocNs", "Refresh", "#Queries"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestMeasurePipelineShape covers the end-to-end pipeline table: every
// backend appears, identical decision counters across backends (identical
// answers drive identical passes), the checker completes the whole
// instruction-editing tail with zero rebuilds while edit-invalidated
// backends pay at least one per edited proc, and both emitters render.
func TestMeasurePipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline sweep in -short mode")
	}
	rows, err := MeasurePipeline(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]PipelineRow{}
	for _, r := range rows {
		names[r.Name] = r
		if r.Procs == 0 && r.Skipped == 0 {
			t.Fatalf("backend %s measured nothing", r.Name)
		}
		if r.Procs > 0 && (r.NsPerProc <= 0 || r.Queries == 0) {
			t.Fatalf("backend %s has empty measurements: %+v", r.Name, r)
		}
		if len(r.Passes) != 4 {
			t.Fatalf("backend %s reports %d passes, want 4", r.Name, len(r.Passes))
		}
		for _, ps := range r.Passes {
			if ps.Pass == "split-edges" && ps.InstrEdits != 0 {
				t.Fatalf("backend %s: edge splitting reported instruction edits: %+v", r.Name, ps)
			}
			if ps.Pass != "split-edges" && ps.CFGEdits != 0 {
				t.Fatalf("backend %s: pass %s reported CFG edits: %+v", r.Name, ps.Pass, ps)
			}
		}
	}
	chk, ok := names["checker"]
	if !ok {
		t.Fatalf("rows missing the checker: %v", rows)
	}
	if chk.Rebuilds != 0 {
		t.Fatalf("checker pipeline rebuilt %d times, want 0", chk.Rebuilds)
	}
	df, ok := names["dataflow"]
	if !ok {
		t.Fatalf("rows missing dataflow: %v", rows)
	}
	if df.Rebuilds == 0 && (df.Copies > 0 || df.Spills > 0) {
		t.Fatal("dataflow pipeline edited but never rebuilt")
	}
	// Identical clones + identical answers => identical decisions.
	if chk.Queries != df.Queries || chk.Spills != df.Spills || chk.Copies != df.Copies ||
		chk.CFGEdits != df.CFGEdits || chk.InstrEdits != df.InstrEdits {
		t.Fatalf("checker and dataflow disagree on decision counters:\nchecker:  %+v\ndataflow: %+v", chk, df)
	}

	out, err := PipelineJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name"`, `"ns_per_op"`, `"rebuilds"`, `"cfg_edits"`, `"instr_edits"`, `"passes"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %s:\n%s", want, out)
		}
	}
	table := PipelineTable(1, 8)
	for _, want := range []string{"pass pipeline", "Rebuild", "#Queries", "Per-pass rebuild/query breakdown"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
