package bench

import (
	"encoding/json"
	"testing"
	"time"
)

// TestEngineContentionReport runs a tiny contention measurement end to end
// (small corpus, short window) and checks the report's shape: one row per
// querier count, real query traffic, mutation traffic, a plausible
// speedup baseline, and round-trippable JSON. Throughput scaling itself is
// hardware-bound, so it is reported, not asserted.
func TestEngineContentionReport(t *testing.T) {
	window := 60 * time.Millisecond
	if testing.Short() {
		window = 25 * time.Millisecond
	}
	rep := MeasureEngineContention(12, []int{1, 2}, 4, 2, window)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	if rep.Funcs != 12 || rep.Blocks == 0 {
		t.Fatalf("corpus shape funcs=%d blocks=%d", rep.Funcs, rep.Blocks)
	}
	if rep.Shards != 4 || rep.RebuildWorkers != 2 {
		t.Fatalf("engine shape shards=%d workers=%d", rep.Shards, rep.RebuildWorkers)
	}
	for i, r := range rep.Rows {
		if r.Queriers != []int{1, 2}[i] {
			t.Fatalf("row %d queriers = %d", i, r.Queriers)
		}
		if r.Batches == 0 || r.Queries == 0 || r.QueriesPerSec <= 0 {
			t.Fatalf("row %d saw no query traffic: %+v", i, r)
		}
		if r.Edits == 0 {
			t.Fatalf("row %d saw no mutation traffic: %+v", i, r)
		}
	}
	if rep.Rows[0].Speedup != 1.0 {
		t.Fatalf("baseline speedup = %v, want 1.0", rep.Rows[0].Speedup)
	}
	out, err := EngineContentionJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back EngineContention
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Rows[1].Queries != rep.Rows[1].Queries {
		t.Fatal("JSON round trip lost row data")
	}
	if EngineContentionSection(rep) == "" {
		t.Fatal("empty text section")
	}
}
