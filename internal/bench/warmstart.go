package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"fastliveness"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

// The warm-start benchmark: the same whole-program corpus analyzed through
// an empty snapshot store (cold start — every function pays its full
// precompute, then writes the snapshot back) and again through the
// populated store (warm start — every function maps its precomputation
// from disk, validates it, and re-derives only the linear parts). The
// savings column is the fraction of per-function precompute time a warm
// process start no longer pays, 1 - warm/cold; the storeless baseline
// (compute only, no write-back) is reported alongside so the cold row's
// write-back share is visible rather than hidden in the ratio.
//
// Methodology notes, reflected in the JSON "note" field:
//   - Only Engine.Precompute is timed; corpus generation and Engine.Add
//     stay outside the clock.
//   - Each warm rep opens a fresh SnapshotStore handle on the populated
//     directory, modeling a new process (no in-memory snapshot cache
//     carry-over); min-over-reps absorbs scheduler noise.
//   - IR verification is skipped on both sides (Config.SkipVerify): it is
//     input validation, paid identically cold and warm, and including it
//     would only dilute the quantity being measured — the precompute
//     pipeline itself.
//   - GC is pinned back (SetGCPercent 1000, explicit runtime.GC before
//     each timed section) so collections triggered by one mode's
//     allocations don't land in the other mode's timing; cold builds
//     allocate tens of MB of matrices and are otherwise overcharged.

// WarmStartRow is one corpus size's cold-vs-warm measurement.
type WarmStartRow struct {
	Funcs          int     `json:"funcs"`
	Blocks         int     `json:"blocks"`
	BaselineNs     int64   `json:"baseline_ns"` // no store: compute only
	ColdNs         int64   `json:"cold_ns"`     // empty store: compute + write-back
	WarmNs         int64   `json:"warm_ns"`     // populated store: load + re-derive
	ColdPerFn      float64 `json:"cold_ns_per_func"`
	WarmPerFn      float64 `json:"warm_ns_per_func"`
	Savings        float64 `json:"savings"`             // 1 - warm/cold
	SavingsVsBase  float64 `json:"savings_vs_baseline"` // 1 - warm/baseline
	Hits           int64   `json:"snapshot_hits"`
	Misses         int64   `json:"snapshot_misses"`
	StoreBytes     int64   `json:"store_bytes"`
	QueryAllocsPer float64 `json:"warm_query_allocs_per_op"` // steady-state, must be 0
}

// WarmStart is the full report, one row per corpus size.
type WarmStart struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Reps       int `json:"reps"`
	// GateMinSavings is the savings floor this artifact claims to clear;
	// TestPerfGate enforces max(its own 0.80 floor, this value) per row, so
	// a format generation that raises the bar cannot silently regress to
	// the old one.
	GateMinSavings float64        `json:"gate_min_savings"`
	Note           string         `json:"note"`
	Rows           []WarmStartRow `json:"rows"`
}

// MeasureWarmStart measures each corpus size with min-over-reps timing.
// Parallelism is pinned to 1 and rebuild workers to 0, so each number is
// the serial sum of per-function start-up costs — exactly the quantity the
// snapshot tier is built to cut — and cold-run write-backs happen inline,
// inside the cold timing where they belong.
func MeasureWarmStart(sizes []int, reps int) (*WarmStart, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &WarmStart{
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Reps:           reps,
		GateMinSavings: 0.90,
		Note: "per-function precompute at process start: baseline = no store (compute only), cold = empty store " +
			"(compute + snapshot write-back), warm = populated v3 store, fresh handle per rep (header and " +
			"structural section checksums verified; CFG/DFS/dom arrays and the dense R/T arenas adopted zero-copy " +
			"from the mapping, arena scans deferred per the store's default policy; no structural re-derivation); " +
			"savings = 1 - warm/cold, min over reps, Precompute timed alone, verification skipped on both sides, " +
			"GC pinned during timing, parallelism 1 and rebuild workers 0 throughout (the prefetch pipeline is " +
			"pool-backed and therefore idle here — timings are the serial per-function cost)",
	}
	for _, n := range sizes {
		row, err := warmStartRow(n, reps)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// buildWarmProgram generates the warm-start corpus: deep, loopy functions
// from ~500 to ~8000 blocks, large ones dominating the total and every
// third one irreducible. The precompute this tier skips grows
// quadratically with block count while the restore path stays linear, so
// the population that motivates a persistent cache — the big procedures
// that dominate a real program's analysis time, as they do the paper's
// corpus — is the one measured.
func buildWarmProgram(n int, seed int64) []*ir.Func {
	targets := []int{8192, 2048, 4096, 1024, 6144, 3072, 512, 7168}
	funcs := make([]*ir.Func, n)
	for i := range funcs {
		c := gen.Default(seed + int64(i)*6151)
		c.TargetBlocks = targets[i%len(targets)]
		c.MaxDepth = 9
		c.Irreducible = i%3 == 0
		f := gen.Generate(fmt.Sprintf("w%04d", i), c)
		ssa.Construct(f)
		funcs[i] = f
	}
	return funcs
}

func warmStartRow(nFuncs, reps int) (WarmStartRow, error) {
	funcs := buildWarmProgram(nFuncs, 7001)
	row := WarmStartRow{Funcs: nFuncs}
	for _, f := range funcs {
		row.Blocks += len(f.Blocks)
	}

	run := func(store *fastliveness.SnapshotStore) (*fastliveness.Engine, time.Duration, error) {
		e := fastliveness.NewEngine(fastliveness.EngineConfig{
			Parallelism:   1,
			Config:        fastliveness.Config{SkipVerify: true},
			SnapshotStore: store,
		})
		e.Add(funcs...)
		runtime.GC()
		start := time.Now()
		if err := e.Precompute(); err != nil {
			return nil, 0, err
		}
		return e, time.Since(start), nil
	}

	prevGC := debug.SetGCPercent(1000)
	defer debug.SetGCPercent(prevGC)

	// Baseline: no store at all.
	for r := 0; r < reps; r++ {
		e, d, err := run(nil)
		if err != nil {
			return row, err
		}
		e.Close()
		if r == 0 || d.Nanoseconds() < row.BaselineNs {
			row.BaselineNs = d.Nanoseconds()
		}
	}

	// Cold: a fresh empty store per rep, so every rep pays the full
	// compute + encode + write cost. The last rep's store stays on disk
	// and feeds the warm runs.
	var warmDir string
	for r := 0; r < reps; r++ {
		dir, err := os.MkdirTemp("", "flsnap-bench-*")
		if err != nil {
			return row, err
		}
		store, err := fastliveness.OpenSnapshotStore(dir, 0)
		if err != nil {
			return row, err
		}
		e, d, err := run(store)
		if err != nil {
			return row, err
		}
		if r == 0 || d.Nanoseconds() < row.ColdNs {
			row.ColdNs = d.Nanoseconds()
		}
		if s := e.SnapshotStats(); s.Misses != int64(nFuncs) {
			return row, fmt.Errorf("cold run: %d misses, want %d", s.Misses, nFuncs)
		}
		e.Close()
		if r == reps-1 {
			warmDir = dir
			row.StoreBytes = store.SizeBytes()
		} else {
			os.RemoveAll(dir)
		}
	}
	defer os.RemoveAll(warmDir)

	// Warm: every rep opens the populated store afresh, as a new process
	// would, so nothing survives between reps but the files themselves.
	var warmEngine *fastliveness.Engine
	for r := 0; r < reps; r++ {
		store, err := fastliveness.OpenSnapshotStore(warmDir, 0)
		if err != nil {
			return row, err
		}
		e, d, err := run(store)
		if err != nil {
			return row, err
		}
		if r == 0 || d.Nanoseconds() < row.WarmNs {
			row.WarmNs = d.Nanoseconds()
		}
		stats := e.SnapshotStats()
		if stats.Hits != int64(nFuncs) {
			return row, fmt.Errorf("warm run: %d hits, want %d", stats.Hits, nFuncs)
		}
		row.Hits, row.Misses = stats.Hits, stats.Misses
		if warmEngine != nil {
			warmEngine.Close()
		}
		warmEngine = e
	}
	defer warmEngine.Close()

	row.ColdPerFn = float64(row.ColdNs) / float64(nFuncs)
	row.WarmPerFn = float64(row.WarmNs) / float64(nFuncs)
	row.Savings = 1 - float64(row.WarmNs)/float64(row.ColdNs)
	row.SavingsVsBase = 1 - float64(row.WarmNs)/float64(row.BaselineNs)

	// Steady-state queries against a snapshot-loaded handle must allocate
	// nothing, same as a freshly computed one.
	f := funcs[0]
	live, err := warmEngine.Liveness(f)
	if err != nil {
		return row, err
	}
	var vals []*ir.Value
	f.Values(func(v *ir.Value) {
		if len(vals) < 16 && v.Op.HasResult() {
			vals = append(vals, v)
		}
	})
	sweep := func() {
		for _, v := range vals {
			for _, b := range f.Blocks {
				live.IsLiveIn(v, b)
				live.IsLiveOut(v, b)
			}
		}
	}
	sweep() // warm the scratch buffer
	row.QueryAllocsPer = testing.AllocsPerRun(10, sweep)
	return row, nil
}

// WarmStartSection renders the report as the text table for -table
// warmstart.
func WarmStartSection(rep *WarmStart) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Persistent snapshot tier: cold vs. warm engine start (min over %d reps, parallelism 1)\n",
		rep.Reps)
	sb.WriteString("savings = fraction of per-function precompute a warm start skips (vs. empty-store cold start)\n\n")
	fmt.Fprintf(&sb, "%7s %8s %14s %14s %14s %9s %12s %10s\n",
		"funcs", "blocks", "baseline-ns", "cold-ns", "warm-ns", "savings", "store-bytes", "q-allocs")
	for _, r := range rep.Rows {
		fmt.Fprintf(&sb, "%7d %8d %14d %14d %14d %8.1f%% %12d %10.1f\n",
			r.Funcs, r.Blocks, r.BaselineNs, r.ColdNs, r.WarmNs, r.Savings*100,
			r.StoreBytes, r.QueryAllocsPer)
	}
	return sb.String()
}

// WarmStartJSON emits the report in the BENCH_*.json format.
func WarmStartJSON(rep *WarmStart) (string, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
