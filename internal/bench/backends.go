package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"fastliveness/internal/backend"
	"fastliveness/internal/loops"
)

// BackendRow is one backend's measurement over a corpus: the paper-style
// engine comparison (§6.2) generalized from two engines to every backend in
// the registry. PreNs is the average analysis cost per procedure with the
// shared CFG preparation (verify, graph, DFS, dominator tree) excluded for
// every backend alike — the same accounting as Table 2's precompute column —
// QueryNs the average cost per SSA-destruction query (the Table 2
// workload), Bytes the average materialized-set footprint per procedure.
type BackendRow struct {
	Name    string  `json:"name"`
	Procs   int     `json:"procs"`
	Skipped int     `json:"skipped"` // irreducible procedures (loops backend)
	PreNs   float64 `json:"ns_per_op"`
	Queries int     `json:"queries"`
	QueryNs float64 `json:"query_ns_per_op"`
	Bytes   int     `json:"bytes"`
	// Invalidation reports what edits invalidate this backend's results:
	// "cfg-changes" for the checker, "any-edit" for the set engines, and
	// the "+"-joined union for the adaptive backend when its per-function
	// choices mix kinds.
	Invalidation string `json:"invalidation"`
}

// MeasureBackends times every registered backend over the corpora:
// analysis per procedure, the recorded destruction query stream, and set
// memory. Backends that reject a procedure (the loops backend on
// irreducible CFGs) skip it and report the count. The per-procedure setup
// — CFG preparation and the destruction query recording — runs once per
// procedure and is shared by every backend, both to keep the measurement
// fair (each row times exactly the engine, never the prep) and to keep the
// full-corpus run from repeating the expensive recording per backend.
func MeasureBackends(corpora []*Corpus) ([]BackendRow, error) {
	type acc struct {
		row            BackendRow
		b              backend.Backend
		preNs, queryNs float64
		bytes          int
		kinds          map[string]bool
	}
	accs := make([]*acc, 0, len(backend.Names()))
	for _, name := range backend.Names() {
		b, err := backend.Get(name)
		if err != nil {
			return nil, err
		}
		accs = append(accs, &acc{row: BackendRow{Name: name}, b: b, kinds: map[string]bool{}})
	}
	for _, c := range corpora {
		for _, p := range c.Procs {
			f := p.F
			prep, err := backend.Prepare(f)
			if err != nil {
				return nil, fmt.Errorf("preparing %s: %w", f.Name, err)
			}
			queries := RecordQueries(p)
			for _, a := range accs {
				res, err := backend.AnalyzeWith(a.b, f, prep)
				if err != nil {
					if errors.Is(err, loops.ErrIrreducible) {
						a.row.Skipped++
						continue
					}
					return nil, fmt.Errorf("backend %s on %s: %w", a.row.Name, f.Name, err)
				}
				a.row.Procs++
				a.bytes += res.MemoryBytes()
				a.kinds[res.Invalidation().String()] = true
				a.preNs += timeOp(perProcBudget, func() {
					if _, err := backend.AnalyzeWith(a.b, f, prep); err != nil {
						panic(err)
					}
				})
				if len(queries) == 0 {
					continue
				}
				stream := timeOp(perProcBudget, func() {
					for _, q := range queries {
						res.IsLiveOut(q.V, q.B)
					}
				})
				a.row.Queries += len(queries)
				a.queryNs += stream
			}
		}
	}
	rows := make([]BackendRow, 0, len(accs))
	for _, a := range accs {
		if a.row.Procs > 0 {
			a.row.PreNs = a.preNs / float64(a.row.Procs)
			a.row.Bytes = a.bytes / a.row.Procs
		}
		if a.row.Queries > 0 {
			a.row.QueryNs = a.queryNs / float64(a.row.Queries)
		}
		ks := make([]string, 0, len(a.kinds))
		for k := range a.kinds {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		a.row.Invalidation = strings.Join(ks, "+")
		rows = append(rows, a.row)
	}
	return rows, nil
}

// BackendTable renders the per-backend comparison in the style of the
// paper's engine tables: every registered backend on the same corpus and
// the same destruction query stream.
func BackendTable(corpora []*Corpus) string {
	rows, err := MeasureBackends(corpora)
	if err != nil {
		return "backend table: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("Per-backend comparison over the corpus (§6.2 generalized to the registry)\n")
	sb.WriteString("PreNs = analysis per procedure, shared CFG prep excluded for all backends;\n")
	sb.WriteString("QueryNs = per destruction query; Bytes = materialized sets per procedure;\n")
	sb.WriteString("Skip = irreducible rejections.\n\n")
	fmt.Fprintf(&sb, "%-10s %7s %6s | %12s %10s %9s | %10s %-12s\n",
		"Backend", "#Proc", "Skip", "PreNs", "#Queries", "QueryNs", "Bytes", "Invalidated")
	sb.WriteString(strings.Repeat("-", 96))
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %6d | %12.1f %10d %9.1f | %10d %-12s\n",
			r.Name, r.Procs, r.Skipped, r.PreNs, r.Queries, r.QueryNs, r.Bytes, r.Invalidation)
	}
	return sb.String()
}

// BackendJSON renders the rows as machine-readable JSON (one object per
// backend with name/ns_per_op/bytes keys), the format of the repository's
// BENCH_*.json performance trajectory.
func BackendJSON(rows []BackendRow) (string, error) {
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
