package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"fastliveness"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

// BuildProgram generates a whole-program corpus: n strict-SSA functions of
// mixed shapes (a spread of sizes plus the occasional irreducible CFG),
// deterministically from the seed. This is the workload of the
// program-level engine experiments — many independent functions whose
// precomputations can proceed in parallel.
func BuildProgram(n int, seed int64) []*ir.Func {
	funcs := make([]*ir.Func, n)
	for i := range funcs {
		c := gen.Default(seed + int64(i)*6151)
		c.TargetBlocks = 16 + (i*29)%80
		c.Irreducible = i%13 == 5
		f := gen.Generate(fmt.Sprintf("p%04d", i), c)
		ssa.Construct(f)
		funcs[i] = f
	}
	return funcs
}

// PrecomputeOnce analyzes the whole program with the given worker count
// and returns the wall-clock time. MaxCached 0 keeps every analysis
// resident, so the measurement is pure precompute fan-out.
func PrecomputeOnce(funcs []*ir.Func, workers int) time.Duration {
	start := time.Now()
	if _, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{
		Parallelism: workers,
	}); err != nil {
		panic(err)
	}
	return time.Since(start)
}

// ProgramSpeedups measures whole-program precompute wall time at each
// worker count, repeating each measurement `reps` times and keeping the
// minimum (the standard noise filter for wall-clock scaling numbers).
// The returned slice is parallel to workers; speedups are relative to
// workers[0].
func ProgramSpeedups(funcs []*ir.Func, workers []int, reps int) []time.Duration {
	if reps < 1 {
		reps = 1
	}
	best := make([]time.Duration, len(workers))
	for i, w := range workers {
		for r := 0; r < reps; r++ {
			d := PrecomputeOnce(funcs, w)
			if r == 0 || d < best[i] {
				best[i] = d
			}
		}
	}
	return best
}

// ProgramTable renders the program-level engine experiment: precompute
// wall time and speedup by worker count over an n-function corpus, plus a
// batched-vs-single query comparison on the same corpus. This is the
// scaling seam the paper leaves open — its precomputation is per function
// (§6.1) and embarrassingly parallel across a program.
func ProgramTable(nFuncs int, workers []int, reps int) string {
	funcs := BuildProgram(nFuncs, 2008)
	blocks := 0
	for _, f := range funcs {
		blocks += len(f.Blocks)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Program-level engine: parallel precompute over %d functions (%d blocks total)\n",
		len(funcs), blocks)
	fmt.Fprintf(&sb, "GOMAXPROCS=%d; wall-clock speedup saturates at the hardware's core count.\n\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(&sb, "%8s %14s %10s\n", "workers", "wall-ns", "speedup")
	times := ProgramSpeedups(funcs, workers, reps)
	for i, w := range workers {
		fmt.Fprintf(&sb, "%8d %14d %10.2f\n", w, times[i].Nanoseconds(),
			float64(times[0])/float64(times[i]))
	}
	sb.WriteByte('\n')
	sb.WriteString(batchQuerySection(funcs))
	return sb.String()
}

// batchQuerySection compares the engine's per-query path (a cache lookup
// plus one IsLiveIn per question) against its batched API on the same
// query stream: same answers, the lookup overhead paid once per batch.
func batchQuerySection(funcs []*ir.Func) string {
	engine, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{})
	if err != nil {
		panic(err)
	}
	var sb strings.Builder
	sb.WriteString("Batched queries vs. per-query engine lookups (all (var, block) pairs per function)\n\n")
	fmt.Fprintf(&sb, "%10s %14s %14s %10s\n", "queries", "single-ns/q", "batch-ns/q", "speedup")
	var nQ int
	var singleNs, batchNs float64
	for _, f := range funcs {
		qs := programQueries(f)
		if len(qs) == 0 {
			continue
		}
		s := timeOp(perProcBudget, func() {
			for _, q := range qs {
				live, err := engine.Liveness(f)
				if err != nil {
					panic(err)
				}
				live.IsLiveIn(q.V, q.B)
			}
		})
		b := timeOp(perProcBudget, func() {
			if _, err := engine.BatchIsLiveIn(f, qs); err != nil {
				panic(err)
			}
		})
		nQ += len(qs)
		singleNs += s
		batchNs += b
	}
	fmt.Fprintf(&sb, "%10d %14.2f %14.2f %10.2f\n", nQ,
		singleNs/float64(nQ), batchNs/float64(nQ), singleNs/batchNs)
	return sb.String()
}

// programQueries enumerates every (variable, block) pair of f as an engine
// query batch.
func programQueries(f *ir.Func) []fastliveness.Query {
	var qs []fastliveness.Query
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		for _, b := range f.Blocks {
			qs = append(qs, fastliveness.Query{V: v, B: b})
		}
	})
	return qs
}
