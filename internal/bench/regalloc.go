package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/ir"
	"fastliveness/internal/loops"
	"fastliveness/internal/regalloc"
)

// RegallocQuery is one oracle query of the register allocator's stream,
// expressed against the pre-allocation function.
type RegallocQuery struct {
	Out bool // IsLiveOut (scan death points) vs IsLiveIn (entry occupancy)
	V   *ir.Value
	B   *ir.Block
}

// RegallocWorkload summarizes what the allocator did over a corpus — the
// shape of the query stream every backend is then timed on.
type RegallocWorkload struct {
	Procs       int     `json:"procs"`
	Queries     int     `json:"queries"`
	LiveIn      int     `json:"live_in_queries"`
	LiveOut     int     `json:"live_out_queries"`
	Spills      int     `json:"spills"`
	Rounds      int     `json:"rounds"`
	AvgPressure float64 `json:"avg_max_pressure"`
	K           int     `json:"k"`
}

// RegallocRow is one backend's measurement on the register-allocation
// workload: AllocNs is the end-to-end cost per procedure of analyzing with
// that backend and running the allocator against it — including the
// re-analyses (Refreshes) set-producing backends need after every spill
// round, the cost the checker's CFG-only precomputation avoids — and
// QueryNs the replay cost per query of the recorded allocator stream.
type RegallocRow struct {
	Name         string  `json:"name"`
	Procs        int     `json:"procs"`
	Skipped      int     `json:"skipped"`
	AllocNs      float64 `json:"ns_per_op"`
	Queries      int     `json:"queries"`
	QueryNs      float64 `json:"query_ns_per_op"`
	Refreshes    int     `json:"refreshes"`
	Invalidation string  `json:"invalidation"`
}

// recordingAllocOracle records the allocator's query stream for replay,
// answering from a self-refreshing data-flow oracle (backend.Refreshing —
// the one implementation of the epoch refresh policy; data-flow sets are
// invalidated by any edit, and the allocator's spill rounds edit between
// scans).
type recordingAllocOracle struct {
	inner   *backend.Refreshing
	maxID   int // values with IDs >= maxID are spill artifacts
	queries []RegallocQuery
}

func newRecordingAllocOracle(clone *ir.Func, maxID int) (*recordingAllocOracle, error) {
	db, err := backend.Get("dataflow")
	if err != nil {
		return nil, err
	}
	inner, err := backend.NewRefreshing(db, clone)
	if err != nil {
		return nil, err
	}
	return &recordingAllocOracle{inner: inner, maxID: maxID}, nil
}

func (o *recordingAllocOracle) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	if v.ID < o.maxID {
		o.queries = append(o.queries, RegallocQuery{Out: false, V: v, B: b})
	}
	return o.inner.IsLiveIn(v, b)
}

func (o *recordingAllocOracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	if v.ID < o.maxID {
		o.queries = append(o.queries, RegallocQuery{Out: true, V: v, B: b})
	}
	return o.inner.IsLiveOut(v, b)
}

// recordRegalloc runs the allocator on a clone of p.F with a recording
// data-flow oracle and returns the query stream mapped back onto p.F, the
// register budget that succeeded (k doubled past ErrTooFewRegisters so
// every backend later replays the identical workload), and the per-proc
// stats. Queries about spill-inserted values are dropped; like the
// destruction recorder, they are a small fraction of the stream.
func recordRegalloc(p Proc, k int) ([]RegallocQuery, int, regalloc.Stats, error) {
	kEff := k
	for {
		clone := ir.Clone(p.F)
		o, err := newRecordingAllocOracle(clone, p.F.NumValues())
		if err != nil {
			return nil, 0, regalloc.Stats{}, err
		}
		alloc, err := regalloc.Run(clone, o, kEff)
		if errors.Is(err, regalloc.ErrTooFewRegisters) {
			kEff *= 2
			continue
		}
		if err != nil {
			return nil, 0, regalloc.Stats{}, fmt.Errorf("recording regalloc on %s: %w", p.F.Name, err)
		}
		valByID := make([]*ir.Value, p.F.NumValues())
		p.F.Values(func(v *ir.Value) { valByID[v.ID] = v })
		blockByID := make([]*ir.Block, p.F.NumBlocks())
		for _, b := range p.F.Blocks {
			blockByID[b.ID] = b
		}
		out := make([]RegallocQuery, len(o.queries))
		for i, q := range o.queries {
			out[i] = RegallocQuery{Out: q.Out, V: valByID[q.V.ID], B: blockByID[q.B.ID]}
		}
		return out, kEff, alloc.Stats, nil
	}
}

// MeasureRegalloc times every registered backend on the register-allocation
// workload: the end-to-end allocator run with that backend as the oracle
// (set-producing backends re-analyze after every spill round; the checker
// never does), and the recorded query-stream replay, Table-2-style. The
// recording pass — one per procedure, shared by every backend — fixes the
// register budget and the stream, so all rows describe identical work.
func MeasureRegalloc(corpora []*Corpus, k int) ([]RegallocRow, RegallocWorkload, error) {
	type acc struct {
		row       RegallocRow
		b         backend.Backend
		allocNs   float64
		queryNs   float64
		refreshes int
		kinds     map[string]bool
	}
	accs := make([]*acc, 0, len(backend.Names()))
	for _, name := range backend.Names() {
		b, err := backend.Get(name)
		if err != nil {
			return nil, RegallocWorkload{}, err
		}
		accs = append(accs, &acc{row: RegallocRow{Name: name}, b: b, kinds: map[string]bool{}})
	}
	var wl RegallocWorkload
	wl.K = k
	var pressureSum int
	for _, c := range corpora {
		for _, p := range c.Procs {
			f := p.F
			prep, err := backend.Prepare(f)
			if err != nil {
				return nil, wl, fmt.Errorf("preparing %s: %w", f.Name, err)
			}
			queries, kEff, stats, err := recordRegalloc(p, k)
			if err != nil {
				return nil, wl, err
			}
			wl.Procs++
			wl.Queries += stats.Queries()
			wl.LiveIn += stats.LiveInQueries
			wl.LiveOut += stats.LiveOutQueries
			wl.Spills += stats.Spills
			wl.Rounds += stats.Rounds
			pressureSum += regalloc.MeasurePressure(f, dataflow.Analyze(f)).Max

			for _, a := range accs {
				res, err := backend.AnalyzeWith(a.b, f, prep)
				if err != nil {
					if errors.Is(err, loops.ErrIrreducible) {
						a.row.Skipped++
						continue
					}
					return nil, wl, fmt.Errorf("backend %s on %s: %w", a.row.Name, f.Name, err)
				}
				a.row.Procs++
				a.kinds[res.Invalidation().String()] = true

				// End-to-end allocator run against this backend. Run
				// mutates its input, so it gets a fresh clone outside the
				// timed region and is timed single-shot; the per-corpus
				// average smooths the noise. The self-refreshing wrapper
				// re-analyzes exactly when the clone's epochs say the spill
				// edits staled the sets — never for the checker — and its
				// rebuild count is the Refresh column.
				clone := ir.Clone(f)
				start := time.Now()
				fresh, err := backend.NewRefreshing(a.b, clone)
				if err != nil {
					return nil, wl, fmt.Errorf("backend %s on clone of %s: %w", a.row.Name, f.Name, err)
				}
				if _, err := regalloc.Run(clone, fresh, kEff); err != nil {
					return nil, wl, fmt.Errorf("backend %s allocating %s (k=%d): %w", a.row.Name, f.Name, kEff, err)
				}
				a.allocNs += float64(time.Since(start).Nanoseconds())
				a.refreshes += fresh.Rebuilds()

				if len(queries) == 0 {
					continue
				}
				stream := timeOp(perProcBudget, func() {
					for _, q := range queries {
						if q.Out {
							res.IsLiveOut(q.V, q.B)
						} else {
							res.IsLiveIn(q.V, q.B)
						}
					}
				})
				a.row.Queries += len(queries)
				a.queryNs += stream
			}
		}
	}
	if wl.Procs > 0 {
		wl.AvgPressure = float64(pressureSum) / float64(wl.Procs)
	}
	rows := make([]RegallocRow, 0, len(accs))
	for _, a := range accs {
		if a.row.Procs > 0 {
			a.row.AllocNs = a.allocNs / float64(a.row.Procs)
		}
		if a.row.Queries > 0 {
			a.row.QueryNs = a.queryNs / float64(a.row.Queries)
		}
		a.row.Refreshes = a.refreshes
		ks := make([]string, 0, len(a.kinds))
		for kind := range a.kinds {
			ks = append(ks, kind)
		}
		sort.Strings(ks)
		a.row.Invalidation = strings.Join(ks, "+")
		rows = append(rows, a.row)
	}
	return rows, wl, nil
}

// RegallocTable renders the per-backend comparison on the allocator
// workload — the second client pass after SSA destruction, measured on its
// genuine query stream with query counts reported.
func RegallocTable(corpora []*Corpus, k int) string {
	rows, wl, err := MeasureRegalloc(corpora, k)
	if err != nil {
		return "regalloc table: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("Per-backend comparison on the register-allocation workload (dominance-order\n")
	sb.WriteString("scan allocator, k = " + fmt.Sprint(k) + "; budget doubled per proc until allocatable).\n")
	fmt.Fprintf(&sb, "Workload: %d procs, %d queries (%d live-in, %d live-out), %d spills over %d rounds,\n",
		wl.Procs, wl.Queries, wl.LiveIn, wl.LiveOut, wl.Spills, wl.Rounds)
	fmt.Fprintf(&sb, "avg max pressure %.2f.\n", wl.AvgPressure)
	sb.WriteString("AllocNs = analyze + allocate per procedure, including the automatic\n")
	sb.WriteString("epoch-driven re-analyses (Refresh column) the spill edits force on\n")
	sb.WriteString("set-producing backends; QueryNs = recorded-stream replay per query.\n\n")
	fmt.Fprintf(&sb, "%-10s %7s %6s | %12s %8s | %10s %9s | %-12s\n",
		"Backend", "#Proc", "Skip", "AllocNs", "Refresh", "#Queries", "QueryNs", "Invalidated")
	sb.WriteString(strings.Repeat("-", 96))
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %6d | %12.1f %8d | %10d %9.1f | %-12s\n",
			r.Name, r.Procs, r.Skipped, r.AllocNs, r.Refreshes, r.Queries, r.QueryNs, r.Invalidation)
	}
	return sb.String()
}

// RegallocJSON renders the rows as machine-readable JSON, the format of
// the BENCH_*.json performance trajectory (ns_per_op here is the
// end-to-end allocation cost per procedure).
func RegallocJSON(rows []RegallocRow) (string, error) {
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
