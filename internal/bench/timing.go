package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"fastliveness"
	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/destruct"
	"fastliveness/internal/dom"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/lao"
	"fastliveness/internal/ssa"
)

// Query is one liveness question from the SSA-destruction workload,
// expressed against the pre-destruction function.
type Query struct {
	V *ir.Value
	B *ir.Block
}

// recordingOracle answers destruction queries from a data-flow analysis of
// the clone and records them.
type recordingOracle struct {
	r       *dataflow.Result
	maxID   int // values with IDs >= maxID are destruction-inserted copies
	queries []Query
}

func (o *recordingOracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	if v.ID < o.maxID {
		o.queries = append(o.queries, Query{V: v, B: b})
	}
	return o.r.IsLiveOut(v, b)
}

// RecordQueries runs SSA destruction on a clone of p.F and returns the
// liveness queries it issued, mapped back onto p.F. Queries about
// destruction-inserted copies (which do not exist in p.F) are dropped; they
// are a small fraction of the stream.
func RecordQueries(p Proc) []Query {
	f := p.F
	clone := ir.Clone(f)
	o := &recordingOracle{r: dataflow.Analyze(clone), maxID: f.NumValues()}
	destruct.Run(clone, o, destruct.ModeCoalesce)

	// Map clone values/blocks back by ID (Clone preserves IDs).
	valByID := make([]*ir.Value, f.NumValues())
	f.Values(func(v *ir.Value) { valByID[v.ID] = v })
	blockByID := make([]*ir.Block, f.NumBlocks())
	for _, b := range f.Blocks {
		blockByID[b.ID] = b
	}
	out := make([]Query, len(o.queries))
	for i, q := range o.queries {
		out[i] = Query{V: valByID[q.V.ID], B: blockByID[q.B.ID]}
	}
	return out
}

// timeOp measures ns per op with adaptive repetition, after one untimed
// warmup call.
func timeOp(budget time.Duration, op func()) float64 {
	op()
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed >= budget || reps >= 1<<22 {
			return float64(elapsed.Nanoseconds()) / float64(reps)
		}
		if elapsed <= 0 {
			reps *= 16
			continue
		}
		reps *= 4
	}
}

// ProcTiming is the Table 2 measurement for one procedure.
type ProcTiming struct {
	Queries   int
	NativePre float64 // ns per precomputation
	NewPre    float64
	NativeQ   float64 // ns per query
	NewQ      float64
}

// perProcBudget keeps full-corpus runs tractable; raise for more stable
// numbers.
const perProcBudget = 400 * time.Microsecond

// MeasureProc times both liveness approaches on one procedure: the
// precomputation (LAO-style data-flow over φ-related variables vs. the
// checker's R/T sets) and the SSA-destruction query stream (sorted-array
// lookups vs. Algorithm 3).
//
// Per the paper's prerequisites (§1), the DFS and the dominator tree are
// considered available compiler infrastructure, so the "New" precomputation
// covers exactly the R/T construction, while the "Native" precomputation
// covers LAO's whole φ-related data-flow solve.
func MeasureProc(p Proc) ProcTiming {
	f := p.F
	queries := RecordQueries(p)

	var t ProcTiming
	t.Queries = len(queries)
	t.NativePre = timeOp(perProcBudget, func() {
		lao.Analyze(f, lao.Options{PhiRelatedOnly: true})
	})
	g, _ := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	t.NewPre = timeOp(perProcBudget, func() {
		core.NewFrom(g, d, tree, core.Options{})
	})
	if len(queries) == 0 {
		return t
	}

	native := lao.Analyze(f, lao.Options{PhiRelatedOnly: true})
	nativeStream := timeOp(perProcBudget, func() {
		for _, q := range queries {
			native.IsLiveOut(q.V, q.B)
		}
	})
	t.NativeQ = nativeStream / float64(len(queries))

	checker, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		panic(err)
	}
	newStream := timeOp(perProcBudget, func() {
		for _, q := range queries {
			checker.IsLiveOut(q.V, q.B)
		}
	})
	t.NewQ = newStream / float64(len(queries))
	return t
}

// Row aggregates a corpus for Table 2.
type Row struct {
	Name      string
	Procs     int
	NativePre float64 // avg ns per proc
	NewPre    float64
	Queries   int
	NativeQ   float64 // avg ns per query
	NewQ      float64
}

// Speedups returns (precompute, query, both) speedups, paper-style: the
// "both" column weighs precomputation per procedure and query cost per
// query.
func (r Row) Speedups() (pre, query, both float64) {
	pre = r.NativePre / r.NewPre
	if r.NewQ > 0 {
		query = r.NativeQ / r.NewQ
	}
	nativeTotal := float64(r.Procs)*r.NativePre + float64(r.Queries)*r.NativeQ
	newTotal := float64(r.Procs)*r.NewPre + float64(r.Queries)*r.NewQ
	if newTotal > 0 {
		both = nativeTotal / newTotal
	}
	return
}

// MeasureCorpus runs MeasureProc over the corpus and aggregates.
func MeasureCorpus(c *Corpus) Row {
	row := Row{Name: c.Spec.Name, Procs: len(c.Procs)}
	var preN, preF, qN, qF float64
	for _, p := range c.Procs {
		t := MeasureProc(p)
		preN += t.NativePre
		preF += t.NewPre
		qN += t.NativeQ * float64(t.Queries)
		qF += t.NewQ * float64(t.Queries)
		row.Queries += t.Queries
	}
	row.NativePre = preN / float64(row.Procs)
	row.NewPre = preF / float64(row.Procs)
	if row.Queries > 0 {
		row.NativeQ = qN / float64(row.Queries)
		row.NewQ = qF / float64(row.Queries)
	}
	return row
}

// paperTable2 carries the paper's Table 2 reference values
// (cycles; the speedup ratios are what our reproduction should match).
var paperTable2 = map[string]struct {
	procs                     int
	nativePre, newPre, preSpd float64
	queries                   int
	nativeQ, newQ, qSpd, both float64
}{
	"164.gzip":   {82, 174000.82, 55054.62, 3.12, 90659, 86.84, 162.23, 0.53, 1.16},
	"175.vpr":    {225, 116963.18, 54291.50, 2.17, 55670, 85.71, 179.38, 0.48, 1.41},
	"176.gcc":    {2019, 205923.64, 67310.79, 3.03, 1109202, 88.17, 339.54, 0.26, 1.00},
	"181.mcf":    {26, 65544.73, 35696.62, 1.85, 2369, 84.09, 190.37, 0.44, 1.39},
	"186.crafty": {109, 437037.94, 156418.57, 2.78, 858121, 81.07, 166.14, 0.49, 0.73},
	"197.parser": {323, 85194.79, 40392.45, 2.13, 38719, 86.54, 177.81, 0.49, 1.54},
	"254.gap":    {852, 191000.39, 55515.27, 3.45, 245540, 87.38, 168.82, 0.52, 2.08},
	"255.vortex": {923, 71444.18, 42651.30, 1.67, 88554, 85.09, 187.21, 0.45, 1.32},
	"256.bzip2":  {74, 137544.10, 40178.87, 3.45, 10100, 95.00, 184.86, 0.51, 2.32},
	"300.twolf":  {190, 446186.87, 94197.44, 4.76, 184621, 94.89, 193.81, 0.49, 1.92},
	"Total":      {4823, 177655.50, 60375.69, 2.94, 2683555, 86.09, 241.06, 0.36, 1.16},
}

// Table2 renders the runtime experiment in the paper's Table 2 layout.
// Measured rows are in nanoseconds; paper rows are in cycles (714 ns per
// 1000 cycles on their 1.4 GHz Pentium M) — the comparable columns are the
// three speedups.
func Table2(corpora []*Corpus) string {
	t := NewTable2Formatter()
	var total Row
	var totalPreN, totalPreF float64
	for _, c := range corpora {
		row := MeasureCorpus(c)
		t.add(row)
		totalPreN += row.NativePre * float64(row.Procs)
		totalPreF += row.NewPre * float64(row.Procs)
		total.Procs += row.Procs
		total.Queries += row.Queries
		total.NativeQ += row.NativeQ * float64(row.Queries)
		total.NewQ += row.NewQ * float64(row.Queries)
	}
	total.Name = "Total"
	total.NativePre = totalPreN / float64(total.Procs)
	total.NewPre = totalPreF / float64(total.Procs)
	if total.Queries > 0 {
		total.NativeQ /= float64(total.Queries)
		total.NewQ /= float64(total.Queries)
	}
	t.add(total)
	var sb strings.Builder
	sb.WriteString("Table 2: Results of the Runtime Experiments (measured ns vs. paper cycles)\n")
	sb.WriteString("Native = LAO-style iterative data-flow (φ-related, sorted arrays);\n")
	sb.WriteString("New = this paper's checker. Comparable columns: the three speedups.\n\n")
	sb.WriteString(t.String())
	return sb.String()
}

type table2Formatter struct {
	sb   strings.Builder
	rows int
}

// NewTable2Formatter builds the two-line-per-benchmark Table 2 renderer.
func NewTable2Formatter() *table2Formatter {
	f := &table2Formatter{}
	fmt.Fprintf(&f.sb, "%-12s %7s | %12s %12s %6s | %9s %9s %9s %6s | %6s\n",
		"Benchmark", "#Proc", "NativePre", "NewPre", "Spdup",
		"#Queries", "NativeQ", "NewQ", "Spdup", "Both")
	f.sb.WriteString(strings.Repeat("-", 118))
	f.sb.WriteByte('\n')
	return f
}

func (f *table2Formatter) add(r Row) {
	pre, q, both := r.Speedups()
	fmt.Fprintf(&f.sb, "%-12s %7d | %12.1f %12.1f %6.2f | %9d %9.1f %9.1f %6.2f | %6.2f\n",
		r.Name, r.Procs, r.NativePre, r.NewPre, pre,
		r.Queries, r.NativeQ, r.NewQ, q, both)
	if p, ok := paperTable2[r.Name]; ok {
		fmt.Fprintf(&f.sb, "%-12s %7d | %12.1f %12.1f %6.2f | %9d %9.1f %9.1f %6.2f | %6.2f\n",
			"  (paper)", p.procs, p.nativePre, p.newPre, p.preSpd,
			p.queries, p.nativeQ, p.newQ, p.qSpd, p.both)
	}
	f.rows++
}

func (f *table2Formatter) String() string { return f.sb.String() }

// FullPrecompStats reproduces the §6.2 in-text comparison: a full (not
// φ-related) native liveness precomputation against the checker's, with
// live-set fill ratios.
func FullPrecompStats(corpora []*Corpus) string {
	var phiFill, fullFill float64
	var phiTime, fullTime, newTime float64
	procs := 0
	for _, c := range corpora {
		for _, p := range c.Procs {
			f := p.F
			procs++
			phiTime += timeOp(perProcBudget, func() {
				lao.Analyze(f, lao.Options{PhiRelatedOnly: true})
			})
			fullTime += timeOp(perProcBudget, func() {
				lao.Analyze(f, lao.Options{})
			})
			g, _ := cfg.FromFunc(f)
			d := cfg.NewDFS(g)
			tree := dom.Iterative(g, d)
			newTime += timeOp(perProcBudget, func() {
				core.NewFrom(g, d, tree, core.Options{})
			})
			phiFill += lao.Analyze(f, lao.Options{PhiRelatedOnly: true}).AvgLiveIn()
			fullFill += lao.Analyze(f, lao.Options{}).AvgLiveIn()
		}
	}
	n := float64(procs)
	var sb strings.Builder
	sb.WriteString("§6.2 in-text: full vs φ-related native precomputation (measured vs. paper)\n\n")
	fmt.Fprintf(&sb, "%-52s %10s %10s\n", "", "measured", "paper")
	fmt.Fprintf(&sb, "%-52s %10.2f %10s\n", "avg live-in fill, φ-related universe", phiFill/n, "3.16")
	fmt.Fprintf(&sb, "%-52s %10.2f %10s\n", "avg live-in fill, full universe", fullFill/n, "18.52")
	fmt.Fprintf(&sb, "%-52s %10.2f %10s\n", "full native pre / φ-related native pre", fullTime/phiTime, "~1.6")
	fmt.Fprintf(&sb, "%-52s %10.2f %10s\n", "full native pre / checker pre (speedup)", fullTime/newTime, "~4.7")
	return sb.String()
}

// ScalingSeries reproduces the §6.1/§8 discussion of quadratic
// precomputation cost: checker precompute time and set memory against CFG
// size, next to the native baseline's set memory.
func ScalingSeries(sizes []int) string {
	var sb strings.Builder
	sb.WriteString("§6.1/§8: precomputation scaling with CFG size (quadratic sets)\n\n")
	fmt.Fprintf(&sb, "%8s %14s %14s %16s %16s\n",
		"blocks", "checker-ns", "native-ns", "checker-bytes", "native-bytes")
	for _, n := range sizes {
		c := gen.Default(int64(n) * 1911)
		c.TargetBlocks = n
		c.Slots = 8
		f := gen.Generate("scale", c)
		ssa.Construct(f)
		g, _ := cfg.FromFunc(f)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		runtime.GC()
		checkerNs := timeOp(8*perProcBudget, func() {
			core.NewFrom(g, d, tree, core.Options{})
		})
		runtime.GC()
		nativeNs := timeOp(8*perProcBudget, func() {
			lao.Analyze(f, lao.Options{})
		})
		ck := core.NewFrom(g, d, tree, core.Options{})
		nat := lao.Analyze(f, lao.Options{})
		fmt.Fprintf(&sb, "%8d %14.0f %14.0f %16d %16d\n",
			len(f.Blocks), checkerNs, nativeNs, ck.MemoryBytes(), nat.MemoryBytes())
	}
	return sb.String()
}

// DestructionStats summarizes the query workload itself: queries per
// procedure and per φ-related variable (the paper reports 5.19 queries per
// variable on average, 26.53 for crafty).
func DestructionStats(corpora []*Corpus) string {
	var sb strings.Builder
	sb.WriteString("SSA destruction query workload (queries per φ-related variable)\n\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %12s %10s\n", "Benchmark", "#Proc", "#Queries", "φ-rel vars", "q/var")
	totQ, totV, totP := 0, 0, 0
	for _, c := range corpora {
		q, vars := 0, 0
		for _, p := range c.Procs {
			q += len(RecordQueries(p))
			vars += lao.Analyze(p.F, lao.Options{PhiRelatedOnly: true}).NumVars()
		}
		ratio := 0.0
		if vars > 0 {
			ratio = float64(q) / float64(vars)
		}
		fmt.Fprintf(&sb, "%-12s %10d %10d %12d %10.2f\n", c.Spec.Name, len(c.Procs), q, vars, ratio)
		totQ += q
		totV += vars
		totP += len(c.Procs)
	}
	fmt.Fprintf(&sb, "%-12s %10d %10d %12d %10.2f   (paper: 5.19 q/var)\n",
		"Total", totP, totQ, totV, float64(totQ)/float64(totV))
	return sb.String()
}
