// Package bench is the evaluation harness: it rebuilds the paper's corpus
// from the calibrated generator and regenerates every table and figure of
// the evaluation section (§6). cmd/benchtables is its CLI; bench_test.go at
// the repository root exposes the same measurements as testing.B
// benchmarks.
package bench

import (
	"fmt"
	"strings"

	"fastliveness/internal/cfg"
	"fastliveness/internal/destruct"
	"fastliveness/internal/dom"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
	"fastliveness/internal/stats"
)

// Proc is one compiled procedure of the corpus.
type Proc struct {
	// F is the procedure in strict SSA form, critical edges already split
	// (the destruction pass's one CFG change, done before any analysis so
	// every engine sees the final CFG).
	F *ir.Func
	// PreSplitBlocks is the block count before critical-edge splitting —
	// Table 1 describes the compiler's CFGs, not the destruction-ready
	// ones.
	PreSplitBlocks int
}

// Corpus is the generated stand-in for one SPEC2000int benchmark.
type Corpus struct {
	Spec  *gen.Spec
	Procs []Proc
}

// BuildCorpus generates, SSA-constructs and edge-splits up to limit
// procedures of the benchmark (limit <= 0 means all of them).
func BuildCorpus(spec *gen.Spec, limit int) *Corpus {
	n := spec.Procs
	if limit > 0 && limit < n {
		n = limit
	}
	c := &Corpus{Spec: spec, Procs: make([]Proc, 0, n)}
	for i := 0; i < n; i++ {
		f := spec.GenerateProc(i)
		ssa.Construct(f)
		pre := len(f.Blocks)
		destruct.Prepare(f)
		c.Procs = append(c.Procs, Proc{F: f, PreSplitBlocks: pre})
	}
	return c
}

// BuildAll builds every benchmark's corpus with the same per-benchmark
// limit.
func BuildAll(limit int) []*Corpus {
	out := make([]*Corpus, 0, len(gen.SPEC2000))
	for i := range gen.SPEC2000 {
		out = append(out, BuildCorpus(&gen.SPEC2000[i], limit))
	}
	return out
}

// ShapeStats are the measured Table 1 statistics of one corpus.
type ShapeStats struct {
	Blocks     stats.Summary
	PctLE32    float64
	PctLE64    float64
	MaxUses    int
	UsePct     [4]float64
	NumVars    int
	EdgesTotal int
	BackEdges  int
	// IrreducibleFuncs counts procedures with irreducible control flow;
	// IrreducibleEdges the §6.1 "back edges whose target does not dominate
	// the source".
	IrreducibleFuncs int
	IrreducibleEdges int
}

// Shape measures the corpus.
func Shape(c *Corpus) ShapeStats {
	var out ShapeStats
	var blockCounts []int
	useBuckets := [5]int{} // ≤1, ≤2, ≤3, ≤4 cumulative handled below; raw counts per cap
	for _, p := range c.Procs {
		blockCounts = append(blockCounts, p.PreSplitBlocks)
		g, _ := cfg.FromFunc(p.F)
		d := cfg.NewDFS(g)
		tree := dom.Iterative(g, d)
		out.EdgesTotal += g.NumEdges()
		out.BackEdges += len(d.BackEdges)
		if irr := dom.IrreducibleBackEdges(d, tree); irr > 0 {
			out.IrreducibleFuncs++
			out.IrreducibleEdges += irr
		}
		p.F.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			out.NumVars++
			n := v.NumUses()
			if n > out.MaxUses {
				out.MaxUses = n
			}
			switch {
			case n <= 1:
				useBuckets[0]++
			case n == 2:
				useBuckets[1]++
			case n == 3:
				useBuckets[2]++
			case n == 4:
				useBuckets[3]++
			default:
				useBuckets[4]++
			}
		})
	}
	out.Blocks = stats.Summarize(blockCounts)
	out.PctLE32 = stats.PctLE(blockCounts, 32)
	out.PctLE64 = stats.PctLE(blockCounts, 64)
	if out.NumVars > 0 {
		cum := 0
		for i := 0; i < 4; i++ {
			cum += useBuckets[i]
			out.UsePct[i] = 100 * float64(cum) / float64(out.NumVars)
		}
	}
	return out
}

// Table1 renders the quantitative evaluation in the paper's Table 1 layout,
// one measured row and one reference row (the paper's numbers) per
// benchmark.
func Table1(corpora []*Corpus) string {
	t := stats.NewTable("Benchmark", "Avg", "Sum", "%<=32", "%<=64",
		"MaxUses", "%<=1", "%<=2", "%<=3", "%<=4")
	var all []float64
	totals := ShapeStats{}
	totalBlocks := []int{}
	_ = all
	grand := struct {
		vars    int
		buckets [4]float64
		maxUses int
	}{}
	for _, c := range corpora {
		s := Shape(c)
		t.AddRow(c.Spec.Name,
			stats.F(s.Blocks.Mean, 2), fmt.Sprint(s.Blocks.Sum),
			stats.F(s.PctLE32, 2), stats.F(s.PctLE64, 2),
			fmt.Sprint(s.MaxUses),
			stats.F(s.UsePct[0], 2), stats.F(s.UsePct[1], 2),
			stats.F(s.UsePct[2], 2), stats.F(s.UsePct[3], 2))
		t.AddRow("  (paper)",
			stats.F(c.Spec.AvgBlocks, 2), fmt.Sprint(c.Spec.SumBlocks),
			stats.F(c.Spec.PctLE32, 2), stats.F(c.Spec.PctLE64, 2),
			fmt.Sprint(c.Spec.MaxUses),
			stats.F(c.Spec.UsePct[0], 2), stats.F(c.Spec.UsePct[1], 2),
			stats.F(c.Spec.UsePct[2], 2), stats.F(c.Spec.UsePct[3], 2))
		for _, p := range c.Procs {
			totalBlocks = append(totalBlocks, p.PreSplitBlocks)
		}
		for i := 0; i < 4; i++ {
			grand.buckets[i] += s.UsePct[i] * float64(s.NumVars)
		}
		grand.vars += s.NumVars
		if s.MaxUses > grand.maxUses {
			grand.maxUses = s.MaxUses
		}
		totals.EdgesTotal += s.EdgesTotal
		totals.BackEdges += s.BackEdges
	}
	sum := stats.Summarize(totalBlocks)
	t.AddRow("Total",
		stats.F(sum.Mean, 2), fmt.Sprint(sum.Sum),
		stats.F(stats.PctLE(totalBlocks, 32), 2), stats.F(stats.PctLE(totalBlocks, 64), 2),
		fmt.Sprint(grand.maxUses),
		stats.F(grand.buckets[0]/float64(grand.vars), 2),
		stats.F(grand.buckets[1]/float64(grand.vars), 2),
		stats.F(grand.buckets[2]/float64(grand.vars), 2),
		stats.F(grand.buckets[3]/float64(grand.vars), 2))
	t.AddRow("  (paper)", "35.21", "169825", "72.71", "87.18", "620",
		"71.30", "87.85", "92.76", "95.31")
	var sb strings.Builder
	sb.WriteString("Table 1: Results of Quantitative Evaluation (measured vs. paper)\n")
	sb.WriteString("Block statistics are per procedure; uses-per-variable on SSA variables.\n\n")
	sb.WriteString(t.String())
	return sb.String()
}

// EdgeStats renders the in-text §6.1 statistics: edges per block, back-edge
// count and fraction, irreducible edges and functions.
func EdgeStats(corpora []*Corpus) string {
	edges, back, irrE, irrF, blocks, procs := 0, 0, 0, 0, 0, 0
	for _, c := range corpora {
		s := Shape(c)
		edges += s.EdgesTotal
		back += s.BackEdges
		irrE += s.IrreducibleEdges
		irrF += s.IrreducibleFuncs
		blocks += s.Blocks.Sum
		procs += len(c.Procs)
	}
	var sb strings.Builder
	sb.WriteString("In-text statistics of §6.1 (measured vs. paper)\n\n")
	fmt.Fprintf(&sb, "%-46s %10s %10s\n", "", "measured", "paper")
	fmt.Fprintf(&sb, "%-46s %10d %10s\n", "procedures compiled", procs, "4823")
	fmt.Fprintf(&sb, "%-46s %10d %10s\n", "total CFG edges", edges, "238427")
	fmt.Fprintf(&sb, "%-46s %10d %10s\n", "back edges", back, "8701")
	fmt.Fprintf(&sb, "%-46s %10.2f %10s\n", "edges per block", float64(edges)/float64(blocks), "~1.3")
	fmt.Fprintf(&sb, "%-46s %9.1f%% %10s\n", "back-edge fraction of all edges",
		100*float64(back)/float64(edges), "~3.6%")
	fmt.Fprintf(&sb, "%-46s %10d %10s\n", "irreducible-contributing back edges", irrE, "60")
	fmt.Fprintf(&sb, "%-46s %10d %10s\n", "functions with irreducible control flow", irrF, "7")
	return sb.String()
}
