package dataflow

import (
	"testing"

	"fastliveness/internal/ir"
)

const loopSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

func analyzeLoop(t *testing.T) (*ir.Func, *Result) {
	t.Helper()
	f := ir.MustParse(loopSrc)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f, Analyze(f)
}

func blk(f *ir.Func, name string) *ir.Block { return f.BlockByName(name) }
func val(f *ir.Func, name string) *ir.Value { return f.ValueByName(name) }

func TestLoopLiveness(t *testing.T) {
	f, r := analyzeLoop(t)
	n := val(f, "n")
	one := val(f, "one")
	zero := val(f, "zero")
	i := val(f, "i")
	inext := val(f, "inext")
	cmp := val(f, "cmp")

	entry, head, body, exit := blk(f, "entry"), blk(f, "head"), blk(f, "body"), blk(f, "exit")

	// n is live through the whole loop: used by cmp in head every
	// iteration.
	if !r.IsLiveOut(n, entry) || !r.IsLiveIn(n, head) || !r.IsLiveIn(n, body) || !r.IsLiveOut(n, body) {
		t.Fatal("n liveness wrong")
	}
	if r.IsLiveIn(n, exit) {
		t.Fatal("n must not be live-in at exit")
	}
	// one is used in body only.
	if !r.IsLiveIn(one, head) || !r.IsLiveIn(one, body) || r.IsLiveIn(one, exit) {
		t.Fatal("one liveness wrong")
	}
	// zero is a φ argument used at entry (Definition 1): live nowhere as
	// live-in, not live-out of entry.
	if r.IsLiveOut(zero, entry) || r.IsLiveIn(zero, head) {
		t.Fatal("φ argument zero must be consumed inside entry")
	}
	// i: φ def in head. Not live-in at head. Used by cmp (head), by ret
	// control (exit) and by inext (body).
	if r.IsLiveIn(i, head) {
		t.Fatal("φ result must not be live-in at its block")
	}
	if !r.IsLiveOut(i, head) || !r.IsLiveIn(i, body) || !r.IsLiveIn(i, exit) {
		t.Fatal("i liveness wrong")
	}
	// inext is a φ argument used at body: live-in nowhere else, dead at
	// head.
	if r.IsLiveOut(inext, body) || r.IsLiveIn(inext, head) {
		t.Fatal("inext must be consumed inside body")
	}
	// cmp is the if control of head, used in head itself: dead outside.
	if r.IsLiveIn(cmp, body) || r.IsLiveOut(cmp, head) || r.IsLiveIn(cmp, head) {
		t.Fatal("cmp must be local to head")
	}
	if r.Iterations < 4 {
		t.Fatalf("solver did too few iterations: %d", r.Iterations)
	}
}

func TestLiveOutIsUnionOfSuccessorLiveIn(t *testing.T) {
	f, r := analyzeLoop(t)
	for i, b := range f.Blocks {
		want := make(map[int]bool)
		for _, e := range b.Succs {
			for _, id := range r.LiveIn[idxOf(t, f, e.B)].Elements() {
				want[id] = true
			}
		}
		got := r.LiveOut[i].Elements()
		if len(got) != len(want) {
			t.Fatalf("block %s: liveout %v vs union %v", b, got, want)
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("block %s: liveout %v vs union %v", b, got, want)
			}
		}
	}
}

func idxOf(t *testing.T, f *ir.Func, b *ir.Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	t.Fatal("block not found")
	return -1
}

func TestStraightLine(t *testing.T) {
	f := ir.MustParse(`
func @straight(%a, %b) {
b0:
  %s = add %a, %b
  br b1
b1:
  %u = mul %s, %s
  ret %u
}
`)
	r := Analyze(f)
	s := val(f, "s")
	a := val(f, "a")
	b0, b1 := blk(f, "b0"), blk(f, "b1")
	if !r.IsLiveOut(s, b0) || !r.IsLiveIn(s, b1) {
		t.Fatal("s should flow into b1")
	}
	if r.IsLiveOut(a, b0) || r.IsLiveIn(a, b1) {
		t.Fatal("a dies in b0")
	}
	if r.IsLiveIn(s, b0) {
		t.Fatal("s not live-in at its def block")
	}
	if r.AvgLiveIn() <= 0 {
		t.Fatal("AvgLiveIn should be positive")
	}
}

func TestDiamondPhi(t *testing.T) {
	f := ir.MustParse(`
func @diamond(%p) {
b0:
  %c1 = const 1
  %c2 = const 2
  if %p -> b1, b2
b1:
  %x = add %p, %c1
  br b3
b2:
  %y = add %p, %c2
  br b3
b3:
  %m = phi [%x, b1], [%y, b2]
  ret %m
}
`)
	r := Analyze(f)
	x, y, m := val(f, "x"), val(f, "y"), val(f, "m")
	b1, b2, b3 := blk(f, "b1"), blk(f, "b2"), blk(f, "b3")
	// φ args die in their predecessors.
	if r.IsLiveOut(x, b1) || r.IsLiveOut(y, b2) || r.IsLiveIn(x, b3) || r.IsLiveIn(y, b3) {
		t.Fatal("φ args must not cross into the φ block")
	}
	// x is not live anywhere in the other branch.
	if r.IsLiveIn(x, b2) || r.IsLiveOut(x, b2) {
		t.Fatal("x leaked into sibling branch")
	}
	if r.IsLiveIn(m, b3) {
		t.Fatal("φ result live-in at own block")
	}
}

func TestUnusedValueNeverLive(t *testing.T) {
	f := ir.MustParse(`
func @dead(%a) {
b0:
  %d = add %a, %a
  br b1
b1:
  ret %a
}
`)
	r := Analyze(f)
	d := val(f, "d")
	for _, b := range f.Blocks {
		if r.IsLiveIn(d, b) || r.IsLiveOut(d, b) {
			t.Fatalf("dead value live at %s", b)
		}
	}
}
