// Package dataflow implements the textbook baseline: iterative backward
// data-flow liveness analysis with bit-vector sets.
//
// This is the "conventional liveness analysis" the paper contrasts itself
// with (§1, §6.2): it computes the full live-in/live-out sets of every
// block, is invalidated by any program edit, and serves here both as a
// baseline for the runtime experiments and as ground truth for the
// cross-validation test suite.
//
// The worklist is a stack seeded with the blocks in CFG postorder, the
// strategy Cooper, Harvey and Kennedy found effective for liveness and the
// one the LAO solver uses.
//
// φ convention (paper Definition 1): the i-th argument of a φ is used at
// the i-th predecessor of the φ's block. Hence φ arguments appear in the
// predecessor's upward-exposed set, are not live-in at the φ block, and a
// block's live-out is exactly the union of its successors' live-ins.
package dataflow

import (
	"fastliveness/internal/bitset"
	"fastliveness/internal/ir"
)

// Result holds the per-block liveness sets, bit-indexed by ir.Value ID.
type Result struct {
	// LiveIn and LiveOut are indexed by block position (ir.Func.Blocks
	// order).
	LiveIn, LiveOut []*bitset.Set
	// UEVar and Defs are the block-local sets the solver started from.
	UEVar, Defs []*bitset.Set
	// Iterations counts worklist pops, for the evaluation harness.
	Iterations int

	blockPos map[*ir.Block]int
}

// Analyze runs the analysis on f.
func Analyze(f *ir.Func) *Result {
	nb := len(f.Blocks)
	nv := f.NumValues()
	r := &Result{
		LiveIn:   newSets(nb, nv),
		LiveOut:  newSets(nb, nv),
		UEVar:    newSets(nb, nv),
		Defs:     newSets(nb, nv),
		blockPos: make(map[*ir.Block]int, nb),
	}
	for i, b := range f.Blocks {
		r.blockPos[b] = i
	}

	FillLocalSets(f, r.UEVar, r.Defs, r.blockPos)

	// Stack worklist seeded so blocks pop in postorder: liveness flows
	// backward, so processing a block after its successors converges
	// quickly (Cooper et al.).
	post := postorder(f)
	stack := make([]*ir.Block, len(post))
	for i, b := range post {
		stack[len(post)-1-i] = b
	}
	onStack := make(map[*ir.Block]bool, nb)
	for _, b := range post {
		onStack[b] = true
	}
	scratch := bitset.New(nv)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		onStack[b] = false
		r.Iterations++
		i := r.blockPos[b]

		out := r.LiveOut[i]
		for _, e := range b.Succs {
			out.Union(r.LiveIn[r.blockPos[e.B]])
		}
		scratch.Copy(out)
		scratch.Subtract(r.Defs[i])
		scratch.Union(r.UEVar[i])
		if !scratch.Equal(r.LiveIn[i]) {
			r.LiveIn[i].Copy(scratch)
			for _, e := range b.Preds {
				if !onStack[e.B] {
					onStack[e.B] = true
					stack = append(stack, e.B)
				}
			}
		}
	}
	return r
}

// FillLocalSets computes the block-local inputs of the analysis: ueVar[i]
// receives the upward-exposed uses of block i (with φ arguments attributed
// to predecessors per paper Definition 1) and defs[i] the values defined in
// it. Shared with the loop-forest liveness engine, which starts from the
// same local sets.
func FillLocalSets(f *ir.Func, ueVar, defs []*bitset.Set, blockPos map[*ir.Block]int) {
	for i, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op.HasResult() {
				defs[i].Add(v.ID)
			}
			if v.Op == ir.OpPhi {
				// φ arguments are used at the predecessors.
				for ai, a := range v.Args {
					p := b.Preds[ai].B
					if a.Block != p {
						ueVar[blockPos[p]].Add(a.ID)
					}
				}
				continue
			}
			for _, a := range v.Args {
				if a.Block != b {
					ueVar[i].Add(a.ID)
				}
			}
		}
		if c := b.Control; c != nil && c.Block != b {
			ueVar[i].Add(c.ID)
		}
	}
}

// NewSets allocates n bitsets over the given universe, arena-backed: the
// returned sets are row views into one contiguous bitset.Matrix, so a
// whole per-block vector family (live-in, live-out, UEVar, defs) costs a
// constant number of allocations and iterates cache-contiguously. Shared
// with the loop-forest liveness engine.
func NewSets(n, universe int) []*bitset.Set {
	return newSets(n, universe)
}

func newSets(n, universe int) []*bitset.Set {
	return bitset.NewMatrix(n, universe).Views()
}

// postorder returns the blocks reachable from the entry in DFS postorder.
func postorder(f *ir.Func) []*ir.Block {
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	var out []*ir.Block
	type frame struct {
		b    *ir.Block
		next int
	}
	if len(f.Blocks) == 0 {
		return nil
	}
	stack := []frame{{b: f.Entry()}}
	seen[f.Entry()] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.b.Succs) {
			s := fr.b.Succs[fr.next].B
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		out = append(out, fr.b)
		stack = stack[:len(stack)-1]
	}
	return out
}

// IsLiveIn reports whether v is live-in at block b.
func (r *Result) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	return r.LiveIn[r.blockPos[b]].Has(v.ID)
}

// IsLiveOut reports whether v is live-out at block b.
func (r *Result) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	return r.LiveOut[r.blockPos[b]].Has(v.ID)
}

// LiveInIDs returns the IDs of the values live-in at b, ascending.
func (r *Result) LiveInIDs(b *ir.Block) []int {
	return r.LiveIn[r.blockPos[b]].Elements()
}

// LiveOutIDs returns the IDs of the values live-out at b, ascending.
func (r *Result) LiveOutIDs(b *ir.Block) []int {
	return r.LiveOut[r.blockPos[b]].Elements()
}

// MemoryBytes reports the payload footprint of the live sets (the local
// UEVar/Defs sets are solver inputs, not part of the queryable result).
func (r *Result) MemoryBytes() int {
	return bitset.TotalWordBytes(r.LiveIn, r.LiveOut)
}

// AvgLiveIn returns the mean live-in set cardinality over all blocks — the
// "fill ratio" statistic the paper reports in §6.2 (3.16 for φ-related
// SPEC2000 liveness, 18.52 for the full analysis).
func (r *Result) AvgLiveIn() float64 {
	if len(r.LiveIn) == 0 {
		return 0
	}
	total := 0
	for _, s := range r.LiveIn {
		total += s.Count()
	}
	return float64(total) / float64(len(r.LiveIn))
}
