package pipeline_test

import (
	"fmt"
	"reflect"
	"testing"

	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/pipeline"
)

// slotCorpus generates n deterministic slot-form functions (the
// pipeline's expected input: construction is its first pass), mixing
// shapes and including irreducible control flow.
func slotCorpus(tb testing.TB, n int, seed int64, irreducible bool) []*ir.Func {
	tb.Helper()
	funcs := make([]*ir.Func, n)
	for i := range funcs {
		c := gen.Default(seed + int64(i)*7919)
		c.TargetBlocks = 10 + (i*13)%30
		c.Irreducible = irreducible && i%3 == 1
		funcs[i] = gen.Generate(fmt.Sprintf("p%02d", i), c)
	}
	return funcs
}

// The acceptance property of the whole PR: the checker-backed pipeline
// completes SSA destruction and the full spill loop — thousands of
// instruction edits interleaved with queries — with ZERO staleness-forced
// rebuilds, on one analysis taken after the single CFG-editing pass. The
// per-pass report must also show the typed edit classes: construct and
// the editing tail touch only InstrEpoch, edge splitting only CFGEpoch.
func TestCheckerPipelineZeroRebuilds(t *testing.T) {
	funcs := slotCorpus(t, 8, 42, true)
	rep, err := pipeline.Run(funcs, pipeline.Config{Backend: "checker", Regs: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Funcs != len(funcs) || rep.Skipped != 0 {
		t.Fatalf("completed %d funcs (%d skipped), want all %d", rep.Funcs, rep.Skipped, len(funcs))
	}
	if rep.Rebuilds != 0 {
		t.Fatalf("checker pipeline forced %d rebuilds, want 0", rep.Rebuilds)
	}
	if rep.Phis == 0 || rep.Queries == 0 {
		t.Fatalf("workload too trivial to prove anything: %+v", rep)
	}
	if rep.Spills == 0 {
		t.Fatalf("k=4 should force spills on this corpus: %+v", rep)
	}
	byName := map[string]pipeline.PassStats{}
	for _, ps := range rep.Passes {
		byName[ps.Pass] = ps
	}
	if ps := byName["construct"]; ps.CFGEdits != 0 || ps.InstrEdits == 0 {
		t.Fatalf("construct pass edits: %+v (want instruction-only)", ps)
	}
	if ps := byName["split-edges"]; ps.InstrEdits != 0 || ps.CFGEdits == 0 {
		t.Fatalf("split-edges pass edits: %+v (want CFG-only)", ps)
	}
	for _, name := range []string{"destruct", "regalloc"} {
		if ps := byName[name]; ps.CFGEdits != 0 {
			t.Fatalf("%s pass performed CFG edits: %+v", name, ps)
		}
	}
	if byName["destruct"].InstrEdits == 0 || byName["regalloc"].InstrEdits == 0 {
		t.Fatal("editing passes should report instruction edits")
	}
}

// Set-producing backends pay for the same edits: the identical pipeline
// must report staleness-forced rebuilds in both editing passes.
func TestSetBackendPipelineRebuilds(t *testing.T) {
	funcs := slotCorpus(t, 8, 42, true)
	rep, err := pipeline.Run(funcs, pipeline.Config{Backend: "dataflow", Regs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rebuilds == 0 {
		t.Fatal("set-producing pipeline should have been forced to rebuild")
	}
	for _, ps := range rep.Passes {
		if (ps.Pass == "destruct" || ps.Pass == "regalloc") && ps.Rebuilds == 0 && ps.InstrEdits > 0 {
			t.Fatalf("pass %s edited (%d instr edits) without any rebuild", ps.Pass, ps.InstrEdits)
		}
	}
}

// Every backend must drive the pipeline to the *identical* output
// program: pass decisions are pure functions of liveness answers, and all
// backends answer identically. This is the differential suite's
// query-equivalence property lifted to whole-pass equivalence.
func TestPipelineOutputsAgreeAcrossBackends(t *testing.T) {
	protos := slotCorpus(t, 6, 7, false) // reducible so the loops engine applies
	var want []string
	for _, name := range []string{"checker", "dataflow", "loops", "pervar", "lao", "auto"} {
		funcs := make([]*ir.Func, len(protos))
		for i, p := range protos {
			funcs[i] = ir.Clone(p)
		}
		rep, err := pipeline.Run(funcs, pipeline.Config{Backend: name, Regs: 4, Verify: true})
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		if rep.Skipped != 0 {
			t.Fatalf("backend %s skipped %d reducible funcs", name, rep.Skipped)
		}
		got := make([]string, len(funcs))
		for i, f := range funcs {
			got[i] = ir.Print(f)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("backend %s produced a different program for %s:\n--- checker\n%s\n--- %s\n%s",
					name, protos[i].Name, want[i], name, got[i])
			}
		}
	}
}

// The loops backend cannot analyze irreducible control flow: such
// functions are skipped and counted, everything else completes.
func TestPipelineSkipsIrreducibleForLoops(t *testing.T) {
	funcs := slotCorpus(t, 6, 42, true)
	rep, err := pipeline.Run(funcs, pipeline.Config{Backend: "loops", Regs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatal("corpus contains irreducible functions; loops should skip some")
	}
	if rep.Funcs+rep.Skipped != len(funcs) {
		t.Fatalf("funcs %d + skipped %d != corpus %d", rep.Funcs, rep.Skipped, len(funcs))
	}
	if rep.Funcs == 0 {
		t.Fatal("reducible functions should complete")
	}
}

// Driving the pipeline through an engine with shards and background
// rebuild workers must not change a single report counter or output
// program: functions are marked dirty only after they finish the chain,
// so the async machinery refreshes finished functions without touching
// the per-pass accounting. Wall-time fields are the only legitimate
// difference and are normalized away.
func TestPipelineAsyncEngineEquivalence(t *testing.T) {
	protos := slotCorpus(t, 8, 42, true)
	run := func(cfg pipeline.Config) (*pipeline.Report, []string) {
		funcs := make([]*ir.Func, len(protos))
		for i, p := range protos {
			funcs[i] = ir.Clone(p)
		}
		rep, err := pipeline.Run(funcs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep.Passes = append([]pipeline.PassStats(nil), rep.Passes...)
		for i := range rep.Passes {
			rep.Passes[i].Ns = 0
		}
		out := make([]string, len(funcs))
		for i, f := range funcs {
			out[i] = ir.Print(f)
		}
		return rep, out
	}
	// dataflow so the post-chain MarkDirty actually queues work (the
	// checker survives the editing tail and marks nothing dirty).
	base := pipeline.Config{Backend: "dataflow", Regs: 4, Verify: true}
	wantRep, wantOut := run(base)
	async := base
	async.Shards = 4
	async.RebuildWorkers = 2
	gotRep, gotOut := run(async)
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Fatalf("async engine changed the report:\nsync  %+v\nasync %+v", wantRep, gotRep)
	}
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("async engine changed the output program for %s", protos[i].Name)
		}
	}
}
