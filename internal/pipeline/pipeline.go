// Package pipeline is a small pass driver: it chains the repository's
// compiler passes — SSA construction, critical-edge splitting, SSA
// destruction, register allocation — over one fastliveness.Engine, with
// per-pass edit-epoch and rebuild accounting.
//
// The driver exists to make the paper's §4 robustness property *visible
// end to end*: every pass edits the IR through the epoch-tracked mutation
// API (ir.Func.CFGEpoch/InstrEpoch), every liveness query goes through an
// engine oracle that rebuilds exactly when those epochs say its analysis
// is stale, and the per-pass report shows which edits each pass made and
// what re-analyses they forced. With the checker backend the whole
// instruction-editing tail of the pipeline (destruction's copy insertion
// and φ elimination, the allocator's spill loop) runs on the single
// analysis taken after edge splitting — zero rebuilds; with a
// set-producing backend each edit-then-query pays one. cmd/benchtables
// -table pipeline and cmd/livecheck -pipeline render the comparison.
//
// Rebuild policy is thereby a parameter (the backend's invalidation
// class), not a property hard-wired at call sites — the framing of
// Tavares et al.'s parameterized sparse-analysis design, applied to the
// paper's invalidation taxonomy.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"fastliveness"
	"fastliveness/internal/destruct"
	"fastliveness/internal/ir"
	"fastliveness/internal/loops"
	"fastliveness/internal/regalloc"
	"fastliveness/internal/ssa"
)

// DefaultRegs is the register budget when Config.Regs is zero.
const DefaultRegs = 8

// Config tunes a pipeline run. The zero value drives the default pass
// chain with the paper's checker and DefaultRegs registers.
type Config struct {
	// Backend names the liveness engine serving every oracle query
	// (fastliveness.Config.Backend); empty means the checker.
	Backend string
	// Regs is the base register budget for the regalloc pass; the pass
	// doubles it per function until allocation succeeds (recorded in the
	// report so identical workloads stay comparable). 0 means DefaultRegs.
	Regs int
	// Verify checks the function after every pass: ir.Verify always,
	// plus ssa.VerifyStrict while the program is in pure SSA form (slot
	// phases — the raw input and everything after destruction — get the
	// structural check only, since strict-SSA verification rejects slot
	// ops by design).
	Verify bool
	// Shards sets the engine's shard count (0 = the engine default). A
	// contention knob only: per-pass counters and answers are
	// shard-invariant.
	Shards int
	// RebuildWorkers starts that many background rebuild workers on the
	// engine. The driver marks each function dirty only after it completes
	// the whole chain — no pass ever queries it again — so the workers
	// refresh finished functions for later consumers without perturbing a
	// single per-pass counter: Rebuilds still counts exactly the
	// staleness the passes themselves paid on the query path.
	RebuildWorkers int
}

// Context is the state a Pass runs against: one function, the shared
// engine, and the run configuration. Oracle hands out auto-refreshing,
// query-counted liveness oracles.
type Context struct {
	Engine *fastliveness.Engine
	F      *ir.Func
	Config Config

	queries int
	// perFunc collects pass-specific counters for the current function;
	// committed to the report only when the function completes the whole
	// chain.
	perFunc *funcTotals
}

type funcTotals struct {
	phis, copies, spills, maxK int
}

// countingOracle wraps the engine's auto-refreshing oracle and counts
// queries into the pass accounting. It satisfies both destruct.Oracle and
// regalloc.Oracle.
type countingOracle struct {
	o *fastliveness.Oracle
	c *Context
}

func (co countingOracle) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	co.c.queries++
	return co.o.IsLiveIn(v, b)
}

func (co countingOracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	co.c.queries++
	return co.o.IsLiveOut(v, b)
}

// Oracle returns an auto-refreshing oracle for the context's function,
// analyzing it with the configured backend on first use. The error is
// typically loops.ErrIrreducible when the loops backend meets irreducible
// control flow; Run skips such functions.
func (c *Context) Oracle() (countingOracle, error) {
	o, err := c.Engine.Oracle(c.F)
	if err != nil {
		return countingOracle{}, err
	}
	return countingOracle{o: o, c: c}, nil
}

// Pass is one transformation step of the chain.
type Pass struct {
	// Name labels the pass in reports ("construct", "split-edges", ...).
	Name string
	// Run transforms ctx.F in place, querying liveness through
	// ctx.Oracle if needed.
	Run func(ctx *Context) error
}

// DefaultPasses is the canonical chain: construct SSA from slot form (a
// no-op on programs already in SSA), split critical edges (the one CFG
// edit, done before any analysis), destroy SSA (Sreedhar-III coalescing —
// the Table 2 query workload), then allocate registers (the spill-loop
// workload). Custom chains may be passed to RunPasses.
func DefaultPasses() []Pass {
	return []Pass{
		{Name: "construct", Run: func(c *Context) error {
			if c.F.NumSlots > 0 {
				ssa.Construct(c.F)
			}
			return nil
		}},
		{Name: "split-edges", Run: func(c *Context) error {
			destruct.Prepare(c.F)
			return nil
		}},
		{Name: "destruct", Run: func(c *Context) error {
			oracle, err := c.Oracle()
			if err != nil {
				return err
			}
			st := destruct.Run(c.F, oracle, destruct.ModeCoalesce)
			c.perFunc.phis += st.Phis
			c.perFunc.copies += st.Copies
			return nil
		}},
		{Name: "regalloc", Run: func(c *Context) error {
			oracle, err := c.Oracle()
			if err != nil {
				return err
			}
			k := c.Config.Regs
			if k <= 0 {
				k = DefaultRegs
			}
			for {
				alloc, err := regalloc.Run(c.F, oracle, k)
				if errors.Is(err, regalloc.ErrTooFewRegisters) {
					// The budget cannot fit this function's unspillable
					// values; widen and retry on the (already spill-edited,
					// still semantically equivalent) function. The failed
					// attempt's spill edits remain in the program, so its
					// partial stats count toward the report.
					if alloc != nil {
						c.perFunc.spills += alloc.Stats.Spills
					}
					k *= 2
					continue
				}
				if err != nil {
					return err
				}
				c.perFunc.spills += alloc.Stats.Spills
				if k > c.perFunc.maxK {
					c.perFunc.maxK = k
				}
				return nil
			}
		}},
	}
}

// PassStats aggregates one pass's work across every completed function.
type PassStats struct {
	Pass string `json:"pass"`
	// CFGEdits and InstrEdits are the function epoch deltas the pass
	// caused (summed): which edit class the pass belongs to, measured
	// rather than asserted.
	CFGEdits   uint64 `json:"cfg_edits"`
	InstrEdits uint64 `json:"instr_edits"`
	// Rebuilds counts engine re-analyses forced by stale epochs during
	// the pass.
	Rebuilds int `json:"rebuilds"`
	// Queries counts oracle liveness queries the pass issued.
	Queries int `json:"queries"`
	// Ns is wall time spent in the pass.
	Ns int64 `json:"ns"`
}

// Report is the outcome of a pipeline run.
type Report struct {
	// Backend is the engine configuration the run used ("checker" for
	// the empty name).
	Backend string `json:"backend"`
	// Funcs counts functions that completed the whole chain; Skipped
	// those aborted because the configured backend cannot analyze them
	// (the loops engine on irreducible control flow). Skipped functions
	// contribute to no other counter.
	Funcs   int `json:"funcs"`
	Skipped int `json:"skipped"`
	// Regs is the base register budget; MaxRegs the widest budget the
	// doubling retry needed.
	Regs    int `json:"regs"`
	MaxRegs int `json:"max_regs"`
	// Phis/Copies/Spills summarize what the editing passes did.
	Phis   int `json:"phis"`
	Copies int `json:"copies"`
	Spills int `json:"spills"`
	// Rebuilds is the engine's total count of staleness-forced
	// re-analyses — the pipeline's headline number: 0 for the checker,
	// one per edit-then-query for set-producing backends.
	Rebuilds int `json:"rebuilds"`
	// Queries sums oracle queries across passes.
	Queries int         `json:"queries"`
	Passes  []PassStats `json:"passes"`
}

// Run drives every function through the default pass chain with a fresh
// engine. Functions the configured backend cannot analyze (irreducible
// CFGs under "loops") are skipped and counted; any other pass failure
// aborts the run.
func Run(funcs []*ir.Func, cfg Config) (*Report, error) {
	return RunPasses(funcs, DefaultPasses(), cfg)
}

// RunPasses is Run with an explicit pass chain.
func RunPasses(funcs []*ir.Func, passes []Pass, cfg Config) (*Report, error) {
	eng := fastliveness.NewEngine(fastliveness.EngineConfig{
		Config:         fastliveness.Config{Backend: cfg.Backend},
		Shards:         cfg.Shards,
		RebuildWorkers: cfg.RebuildWorkers,
	})
	defer eng.Close()
	eng.Add(funcs...)

	name := cfg.Backend
	if name == "" {
		name = "checker"
	}
	regs := cfg.Regs
	if regs <= 0 {
		regs = DefaultRegs
	}
	report := &Report{Backend: name, Regs: regs, Passes: make([]PassStats, len(passes))}
	for i, p := range passes {
		report.Passes[i].Pass = p.Name
	}

	perPass := make([]PassStats, len(passes))
	for _, f := range funcs {
		for i := range perPass {
			perPass[i] = PassStats{}
		}
		totals := funcTotals{}
		skipped := false
		for i, p := range passes {
			ctx := &Context{Engine: eng, F: f, Config: cfg, perFunc: &totals}
			cfgBefore, instrBefore := f.CFGEpoch(), f.InstrEpoch()
			rebuildsBefore := eng.Rebuilds()
			start := time.Now()
			err := p.Run(ctx)
			if err != nil {
				if errors.Is(err, loops.ErrIrreducible) {
					skipped = true
					break
				}
				return nil, fmt.Errorf("pipeline: pass %s on %s: %w", p.Name, f.Name, err)
			}
			if cfg.Verify {
				verr := ir.Verify(f)
				if verr == nil && f.NumSlots == 0 {
					verr = ssa.VerifyStrict(f)
				}
				if verr != nil {
					return nil, fmt.Errorf("pipeline: pass %s broke %s: %w", p.Name, f.Name, verr)
				}
			}
			perPass[i].CFGEdits = f.CFGEpoch() - cfgBefore
			perPass[i].InstrEdits = f.InstrEpoch() - instrBefore
			perPass[i].Rebuilds = eng.Rebuilds() - rebuildsBefore
			perPass[i].Queries = ctx.queries
			perPass[i].Ns = time.Since(start).Nanoseconds()
		}
		// The chain is done with f — no pass queries it again — so hand
		// any staleness its last passes left to the background workers
		// (a no-op without RebuildWorkers, or when the backend survived
		// the edits, as the checker does).
		eng.MarkDirty(f)
		if skipped {
			report.Skipped++
			continue
		}
		report.Funcs++
		report.Phis += totals.phis
		report.Copies += totals.copies
		report.Spills += totals.spills
		if totals.maxK > report.MaxRegs {
			report.MaxRegs = totals.maxK
		}
		for i := range passes {
			report.Passes[i].CFGEdits += perPass[i].CFGEdits
			report.Passes[i].InstrEdits += perPass[i].InstrEdits
			report.Passes[i].Rebuilds += perPass[i].Rebuilds
			report.Passes[i].Queries += perPass[i].Queries
			report.Passes[i].Ns += perPass[i].Ns
			report.Rebuilds += perPass[i].Rebuilds
			report.Queries += perPass[i].Queries
		}
	}
	return report, nil
}
