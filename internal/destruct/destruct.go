// Package destruct translates strict SSA out of SSA form, replacing
// φ-functions by moves through storage slots. It reproduces the pass the
// paper instruments for its runtime evaluation (§6.2): the third variant of
// Sreedhar et al.'s algorithm, which coalesces φ-related variables into
// congruence classes and only inserts copies where classes would interfere,
// using the SSA-based interference test of Budimlić et al. — "basically, it
// decides whether one variable is live directly after the instruction that
// defines the other one". Those decisions are exactly the liveness-query
// workload of Table 2.
//
// The lowering is slot-based: every congruence class containing a φ gets a
// slot; each φ's predecessors store the incoming value (or its freshly
// inserted copy) at block end, and the φ becomes a load. Because critical
// edges are split first (Prepare) and every SSA value keeps its identity,
// the classic lost-copy and swap problems cannot arise; the interpreter
// cross-checks semantic preservation in the tests.
package destruct

import (
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Oracle answers the liveness queries the pass issues. The production
// choice is the paper's checker (the fastliveness facade); the baselines
// (lao, dataflow) implement it too, which is how the harness compares them
// on an identical query stream.
type Oracle interface {
	IsLiveOut(v *ir.Value, b *ir.Block) bool
}

// Mode selects the coalescing strategy.
type Mode uint8

const (
	// ModeCoalesce is Sreedhar-III-style: merge φ congruence classes
	// unless an interference query says otherwise. This issues the
	// liveness-query workload.
	ModeCoalesce Mode = iota
	// ModeMethodI inserts a copy for every φ operand and result
	// unconditionally (Sreedhar's Method I): no queries, maximal copies.
	// Used as the query-free ablation baseline.
	ModeMethodI
)

// Stats reports what the pass did.
type Stats struct {
	// Phis is the number of φ-functions eliminated.
	Phis int
	// Copies is the number of copy instructions inserted.
	Copies int
	// CoalescedArgs counts φ operands merged without a copy.
	CoalescedArgs int
	// InterferenceTests counts variable-pair interference decisions; each
	// performs at most one IsLiveOut query plus a local scan.
	InterferenceTests int
	// Classes is the number of congruence classes (slots) created.
	Classes int
}

// Prepare splits critical edges — the pass's only CFG edit. It must run
// before the liveness analysis whose Oracle feeds Run, so that queries are
// made against the final CFG: the paper's precomputation survives
// everything except CFG changes, and this is the one CFG change the pass
// needs. The split-before-analyze ordering is no longer just a calling
// convention: Prepare advances the function's CFGEpoch, so an analysis
// taken too early reads as stale (backend.Stale), fails closed under the
// backend.Checked debug wrapper, and is rebuilt automatically by an
// engine-served oracle. Run itself performs instruction edits only
// (copies, stores, loads, φ removal), which the checker's precomputation
// survives by construction.
func Prepare(f *ir.Func) int {
	return f.SplitCriticalEdges()
}

// Run destroys SSA form in place. The function must be strict SSA with
// critical edges already split (Prepare), and oracle must answer liveness
// for it.
func Run(f *ir.Func, oracle Oracle, mode Mode) Stats {
	d := &destroyer{f: f, oracle: oracle, mode: mode}
	d.analyze()
	d.buildClasses()
	d.lower()
	return d.stats
}

type destroyer struct {
	f      *ir.Func
	oracle Oracle
	mode   Mode
	stats  Stats

	tree           *dom.Tree
	nodeOf         map[*ir.Block]int
	pos            map[*ir.Value]int // position within its block
	parent         map[*ir.Value]*ir.Value
	classPhiBlocks map[*ir.Value]map[*ir.Block]bool // class root -> blocks with a φ member

	phis []*ir.Value
}

func (d *destroyer) analyze() {
	g, _ := cfg.FromFunc(d.f)
	dfs := cfg.NewDFS(g)
	d.tree = dom.Iterative(g, dfs)
	d.nodeOf = make(map[*ir.Block]int, len(d.f.Blocks))
	for i, b := range d.f.Blocks {
		d.nodeOf[b] = i
	}
	d.pos = map[*ir.Value]int{}
	for _, b := range d.f.Blocks {
		for i, v := range b.Values {
			d.pos[v] = i
		}
		for _, v := range b.Phis() {
			d.phis = append(d.phis, v)
		}
	}
	d.parent = map[*ir.Value]*ir.Value{}
	d.classPhiBlocks = map[*ir.Value]map[*ir.Block]bool{}
}

// find is union-find with path compression over congruence classes.
func (d *destroyer) find(v *ir.Value) *ir.Value {
	p := d.parent[v]
	if p == nil {
		return v
	}
	root := d.find(p)
	d.parent[v] = root
	return root
}

func (d *destroyer) union(a, b *ir.Value) {
	ra, rb := d.find(a), d.find(b)
	if ra == rb {
		return
	}
	d.parent[rb] = ra
	// Merge φ-block ownership.
	if m := d.classPhiBlocks[rb]; m != nil {
		am := d.phiBlocks(ra)
		for blk := range m {
			am[blk] = true
		}
		delete(d.classPhiBlocks, rb)
	}
}

func (d *destroyer) phiBlocks(root *ir.Value) map[*ir.Block]bool {
	m := d.classPhiBlocks[root]
	if m == nil {
		m = map[*ir.Block]bool{}
		d.classPhiBlocks[root] = m
	}
	return m
}

// members returns the values currently in v's class. Classes are small
// (φ webs), so a scan over recorded members is fine: we track them lazily.
type classMembers map[*ir.Value][]*ir.Value

// buildClasses processes every φ and tries to coalesce each operand's class
// with the φ's class.
func (d *destroyer) buildClasses() {
	members := classMembers{}
	memberOf := func(v *ir.Value) []*ir.Value {
		r := d.find(v)
		if members[r] == nil {
			members[r] = []*ir.Value{r}
		}
		return members[r]
	}
	merge := func(a, b *ir.Value) {
		ma, mb := memberOf(a), memberOf(b)
		ra, rb := d.find(a), d.find(b)
		if ra == rb {
			return
		}
		d.union(ra, rb)
		root := d.find(ra)
		all := append(append([]*ir.Value(nil), ma...), mb...)
		delete(members, ra)
		delete(members, rb)
		members[root] = all
	}

	for _, phi := range d.phis {
		d.phiBlocks(d.find(phi))[phi.Block] = true
	}

	for _, phi := range d.phis {
		for i := 0; i < len(phi.Args); i++ {
			arg := phi.Args[i]
			pred := phi.Block.Preds[i].B
			needCopy := false
			switch {
			case d.mode == ModeMethodI:
				needCopy = true
			case d.find(arg) == d.find(phi):
				// Already coalesced (e.g. the same value on another edge).
			case arg.Op == ir.OpParam || arg.Op == ir.OpConst:
				// Rematerializable operands are cheaper to copy than to
				// tie their (whole-function) live range to the class.
				needCopy = true
			default:
				needCopy = d.classesInterfere(memberOf(phi), memberOf(arg))
			}
			if needCopy {
				cp := pred.NewValue(ir.OpCopy, arg)
				cp.Name = ""
				d.pos[cp] = len(pred.Values) - 1
				phi.SetArg(i, cp)
				d.stats.Copies++
				merge(phi, cp)
			} else {
				d.stats.CoalescedArgs++
				merge(phi, arg)
			}
		}
	}
}

// classesInterfere reports whether any member pair across the two classes
// interferes. It also forbids classes holding two φs of the same block,
// which could never share one slot (their edge stores would clobber each
// other).
func (d *destroyer) classesInterfere(a, b []*ir.Value) bool {
	ra, rb := d.find(a[0]), d.find(b[0])
	ba, bb := d.classPhiBlocks[ra], d.classPhiBlocks[rb]
	for blk := range bb {
		if ba[blk] {
			return true
		}
	}
	for _, x := range a {
		for _, y := range b {
			if d.interfere(x, y) {
				return true
			}
		}
	}
	return false
}

// interfere is the Budimlić et al. SSA interference test: order the two
// variables so def(x) dominates def(y); they interfere iff x is live
// directly after y's definition — block-level, iff x is live-out of y's
// block or has a use in it after y's definition point.
func (d *destroyer) interfere(x, y *ir.Value) bool {
	if x == y {
		return false
	}
	bx, by := d.nodeOf[x.Block], d.nodeOf[y.Block]
	switch {
	case d.tree.Dominates(bx, by):
		// x defined above: proceed.
	case d.tree.Dominates(by, bx):
		x, y = y, x
	default:
		// Neither definition dominates the other: in strict SSA their live
		// ranges cannot overlap.
		return false
	}
	if x.Block == y.Block && d.pos[x] > d.pos[y] {
		x, y = y, x
	}
	d.stats.InterferenceTests++
	if d.oracle.IsLiveOut(x, y.Block) {
		return true
	}
	// Local refinement: a use of x within y's block at or after y's
	// definition keeps x live across y's definition.
	yPos := d.pos[y]
	for _, u := range x.Uses() {
		switch {
		case u.UserBlock == y.Block:
			return true // control use at block end
		case u.User == nil:
			continue
		case u.User.Op == ir.OpPhi:
			if u.User.Block.Preds[u.Index].B == y.Block {
				return true // φ use at this block's end
			}
		case u.User.Block == y.Block && d.pos[u.User] > yPos:
			return true
		}
	}
	return false
}

// lower rewrites every φ into slot traffic: predecessors store the incoming
// value at block end, the φ becomes a load.
func (d *destroyer) lower() {
	slotOf := map[*ir.Value]int64{}
	slot := func(phi *ir.Value) int64 {
		r := d.find(phi)
		s, ok := slotOf[r]
		if !ok {
			s = int64(d.f.NumSlots)
			d.f.NumSlots++
			slotOf[r] = s
			d.stats.Classes++
		}
		return s
	}
	// Stores first (they read φ args).
	for _, phi := range d.phis {
		s := slot(phi)
		for i, arg := range phi.Args {
			pred := phi.Block.Preds[i].B
			pred.NewValueI(ir.OpSlotStore, s, arg)
		}
	}
	// Then replace each φ by a load at its position.
	for _, phi := range d.phis {
		s := slot(phi)
		load := phi.Block.InsertValueFront(ir.OpSlotLoad)
		load.AuxInt = s
		load.Name = phi.Name
		phi.ReplaceUsesWith(load)
		phi.Block.RemoveValue(phi)
		d.stats.Phis++
	}
}
