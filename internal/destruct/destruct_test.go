package destruct

import (
	"math/rand"
	"testing"

	"fastliveness/internal/dataflow"
	"fastliveness/internal/gen"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

// dfOracle adapts the data-flow baseline as the liveness oracle and counts
// queries.
type dfOracle struct {
	r       *dataflow.Result
	queries int
}

func (o *dfOracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	o.queries++
	return o.r.IsLiveOut(v, b)
}

func destroy(t *testing.T, f *ir.Func, mode Mode) (Stats, *dfOracle) {
	t.Helper()
	Prepare(f)
	if err := ssa.VerifyStrict(f); err != nil {
		t.Fatalf("after Prepare: %v", err)
	}
	o := &dfOracle{r: dataflow.Analyze(f)}
	st := Run(f, o, mode)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("after Run: %v", err)
	}
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpPhi {
			t.Fatalf("φ %s remains after destruction", v)
		}
	})
	return st, o
}

func TestLostCopyProblem(t *testing.T) {
	// The classic lost-copy shape: the φ value is used after the loop,
	// and the back edge copies the next value over it. A naive copy
	// placement loses x's old value.
	src := `
func @lostcopy(%n) {
b0:
  %zero = const 0
  %one = const 1
  br head
head:
  %x = phi [%zero, b0], [%xnext, head2]
  %xnext = add %x, %one
  %c = cmplt %xnext, %n
  if %c -> head2, exit
head2:
  br head
exit:
  ret %x
}
`
	for _, mode := range []Mode{ModeCoalesce, ModeMethodI} {
		f := ir.MustParse(src)
		want := map[int64]int64{}
		for _, n := range []int64{0, 1, 3, 7} {
			r, err := interp.Run(f, []int64{n}, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want[n] = r.Ret
		}
		destroy(t, f, mode)
		for _, n := range []int64{0, 1, 3, 7} {
			r, err := interp.Run(f, []int64{n}, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Ret != want[n] {
				t.Fatalf("mode %d: lostcopy(%d) = %d, want %d", mode, n, r.Ret, want[n])
			}
		}
	}
}

func TestSwapProblem(t *testing.T) {
	// Two φs exchanging values every iteration: naive sequential copies on
	// the back edge corrupt one of them.
	src := `
func @swap(%n) {
b0:
  %zero = const 0
  %one = const 1
  %two = const 2
  br head
head:
  %a = phi [%one, b0], [%b, latch]
  %b = phi [%two, b0], [%a, latch]
  %i = phi [%zero, b0], [%i2, latch]
  %c = cmplt %i, %n
  if %c -> latch, exit
latch:
  %i2 = add %i, %one
  br head
exit:
  %ten = const 10
  %hi = mul %a, %ten
  %r = add %hi, %b
  ret %r
}
`
	for _, mode := range []Mode{ModeCoalesce, ModeMethodI} {
		f := ir.MustParse(src)
		destroy(t, f, mode)
		for n, want := range map[int64]int64{0: 12, 1: 21, 2: 12, 5: 21} {
			r, err := interp.Run(f, []int64{n}, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Ret != want {
				t.Fatalf("mode %d: swap(%d) = %d, want %d", mode, n, r.Ret, want)
			}
		}
	}
}

// The central test: destruction preserves semantics on generated programs.
func TestDestructionSemanticEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		cfg := gen.Default(int64(trial) * 311)
		cfg.TargetBlocks = 4 + rng.Intn(70)
		cfg.Irreducible = trial%6 == 0
		f := gen.Generate("t", cfg)
		ssa.Construct(f)
		ref := ir.Clone(f)

		mode := ModeCoalesce
		if trial%3 == 2 {
			mode = ModeMethodI
		}
		st, o := destroy(t, f, mode)
		if mode == ModeMethodI && o.queries != 0 {
			t.Fatalf("trial %d: Method I issued %d queries", trial, o.queries)
		}
		if st.Phis == 0 && hasPhis(ref) {
			t.Fatalf("trial %d: no φs eliminated", trial)
		}

		for run := 0; run < 5; run++ {
			args := []int64{rng.Int63n(400) - 200, rng.Int63n(400) - 200, rng.Int63()}
			want, err := interp.Run(ref, args, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d: reference run: %v", trial, err)
			}
			got, err := interp.Run(f, args, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d: destructed run: %v", trial, err)
			}
			if got.Ret != want.Ret {
				t.Fatalf("trial %d mode %d args %v: destructed returns %d, SSA %d",
					trial, mode, args, got.Ret, want.Ret)
			}
		}
	}
}

func hasPhis(f *ir.Func) bool {
	found := false
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpPhi {
			found = true
		}
	})
	return found
}

// Coalescing must insert no more copies than Method I, and generally far
// fewer; it must also issue interference queries.
func TestCoalescingReducesCopies(t *testing.T) {
	totalCoalesce, totalMethodI, totalQueries := 0, 0, 0
	for trial := 0; trial < 40; trial++ {
		cfg := gen.Default(int64(trial) * 17)
		cfg.TargetBlocks = 10 + trial
		f1 := gen.Generate("t", cfg)
		ssa.Construct(f1)
		f2 := ir.Clone(f1)

		s1, o := destroy(t, f1, ModeCoalesce)
		s2, _ := destroy(t, f2, ModeMethodI)
		if s1.Copies > s2.Copies {
			t.Fatalf("trial %d: coalescing inserted more copies (%d) than Method I (%d)",
				trial, s1.Copies, s2.Copies)
		}
		if s1.Phis != s2.Phis {
			t.Fatalf("trial %d: φ counts differ: %d vs %d", trial, s1.Phis, s2.Phis)
		}
		totalCoalesce += s1.Copies
		totalMethodI += s2.Copies
		totalQueries += o.queries
	}
	if totalMethodI == 0 {
		t.Skip("no φs in corpus")
	}
	if totalCoalesce >= totalMethodI {
		t.Fatalf("coalescing saved nothing: %d vs %d copies", totalCoalesce, totalMethodI)
	}
	if totalQueries == 0 {
		t.Fatal("coalescing issued no liveness queries")
	}
}

func TestCloneIndependence(t *testing.T) {
	var f *ir.Func
	for seed := int64(99); ; seed++ {
		cfg := gen.Default(seed)
		f = gen.Generate("t", cfg)
		ssa.Construct(f)
		if hasPhis(f) {
			break
		}
		if seed > 199 {
			t.Fatal("no φ-bearing program found")
		}
	}
	c := ir.Clone(f)
	if err := ssa.VerifyStrict(c); err != nil {
		t.Fatalf("clone not strict: %v", err)
	}
	before := ir.Print(c)
	destroy(t, f, ModeCoalesce) // mutate original
	if ir.Print(c) != before {
		t.Fatal("mutating the original changed the clone")
	}
	if ir.Print(f) == before {
		t.Fatal("destruction did not change the function")
	}
}
