package interp

import (
	"errors"
	"testing"

	"fastliveness/internal/ir"
)

func run(t *testing.T, src string, args ...int64) int64 {
	t.Helper()
	f := ir.MustParse(src)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, args, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Ret
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"add", 3, 4, 7},
		{"sub", 3, 4, -1},
		{"mul", 3, 4, 12},
		{"div", 12, 4, 3},
		{"div", 12, 0, 0}, // total semantics
		{"mod", 13, 4, 1},
		{"mod", 13, 0, 0},
		{"and", 6, 3, 2},
		{"or", 6, 3, 7},
		{"xor", 6, 3, 5},
		{"shl", 1, 4, 16},
		{"shl", 1, 64, 1}, // masked shift
		{"shr", 16, 2, 4},
		{"cmpeq", 5, 5, 1},
		{"cmpeq", 5, 6, 0},
		{"cmplt", 5, 6, 1},
		{"cmplt", 6, 5, 0},
	}
	for _, c := range cases {
		src := `
func @f(%a, %b) {
b0:
  %r = ` + c.op + ` %a, %b
  ret %r
}
`
		if got := run(t, src, c.a, c.b); got != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUnaryAndCopy(t *testing.T) {
	src := `
func @f(%a) {
b0:
  %n = neg %a
  %m = not %n
  %c = copy %m
  ret %c
}
`
	if got := run(t, src, 5); got != ^(-5 + 0) {
		t.Errorf("got %d", got)
	}
}

func TestBranchesAndPhi(t *testing.T) {
	src := `
func @max(%a, %b) {
b0:
  %c = cmplt %a, %b
  if %c -> b1, b2
b1:
  br b3
b2:
  br b3
b3:
  %m = phi [%b, b1], [%a, b2]
  ret %m
}
`
	if got := run(t, src, 3, 9); got != 9 {
		t.Errorf("max(3,9) = %d", got)
	}
	if got := run(t, src, 9, 3); got != 9 {
		t.Errorf("max(9,3) = %d", got)
	}
}

func TestLoopSum(t *testing.T) {
	// sum of 0..n-1 via slots.
	src := `
func @sum(%n) {
b0:
  slots 2
  %z = const 0
  slotstore 0, %z
  slotstore 1, %z
  br head
head:
  %i = slotload 0
  %c = cmplt %i, %n
  if %c -> body, exit
body:
  %acc = slotload 1
  %i2 = slotload 0
  %acc2 = add %acc, %i2
  slotstore 1, %acc2
  %one = const 1
  %i3 = add %i2, %one
  slotstore 0, %i3
  br head
exit:
  %r = slotload 1
  ret %r
}
`
	if got := run(t, src, 5); got != 10 {
		t.Errorf("sum(5) = %d, want 10", got)
	}
	if got := run(t, src, 0); got != 0 {
		t.Errorf("sum(0) = %d, want 0", got)
	}
}

func TestSwitchSemantics(t *testing.T) {
	src := `
func @sw(%x) {
b0:
  switch %x -> b1, b2, b3
b1:
  %r1 = const 10
  ret %r1
b2:
  %r2 = const 20
  ret %r2
b3:
  %r3 = const 30
  ret %r3
}
`
	for x, want := range map[int64]int64{0: 10, 1: 20, 2: 30, 3: 10, -1: 30, -2: 20} {
		if got := run(t, src, x); got != want {
			t.Errorf("sw(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestSimultaneousPhis(t *testing.T) {
	// The classic swap: both φs must read the values from the previous
	// iteration, not each other's fresh results.
	src := `
func @swap(%n) {
b0:
  slots 1
  %zero = const 0
  %one = const 1
  %two = const 2
  slotstore 0, %zero
  br head
head:
  %a = phi [%one, b0], [%b, latch]
  %b = phi [%two, b0], [%a, latch]
  %i = slotload 0
  %c = cmplt %i, %n
  if %c -> latch, exit
latch:
  %i2 = add %i, %one
  slotstore 0, %i2
  br head
exit:
  %d = const 10
  %r = mul %a, %d
  %r2 = add %r, %b
  ret %r2
}
`
	// After 0 swaps: a=1 b=2 -> 12; after 1 swap: a=2 b=1 -> 21.
	if got := run(t, src, 0); got != 12 {
		t.Errorf("swap(0) = %d, want 12", got)
	}
	if got := run(t, src, 1); got != 21 {
		t.Errorf("swap(1) = %d, want 21", got)
	}
	if got := run(t, src, 2); got != 12 {
		t.Errorf("swap(2) = %d, want 12", got)
	}
}

func TestCallsDeterministicAndArgSensitive(t *testing.T) {
	src := `
func @c(%a) {
b0:
  %r = call @ext, %a
  ret %r
}
`
	x := run(t, src, 1)
	y := run(t, src, 1)
	z := run(t, src, 2)
	if x != y {
		t.Fatal("calls must be deterministic")
	}
	if x == z {
		t.Fatal("calls must depend on arguments")
	}
	src2 := `
func @c(%a) {
b0:
  %r = call @other, %a
  ret %r
}
`
	if run(t, src2, 1) == x {
		t.Fatal("calls must depend on the callee name")
	}
}

func TestFuelExhaustion(t *testing.T) {
	src := `
func @inf() {
b0:
  br b1
b1:
  br b1
}
`
	f := ir.MustParse(src)
	_, err := Run(f, nil, Options{MaxSteps: 1000})
	var fe *ErrFuel
	if !errors.As(err, &fe) {
		t.Fatalf("want ErrFuel, got %v", err)
	}
	if fe.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestTraceAndMissingArgs(t *testing.T) {
	src := `
func @t(%a, %b) {
b0:
  %s = add %a, %b
  br b1
b1:
  ret %s
}
`
	f := ir.MustParse(src)
	res, err := Run(f, []int64{7}, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 7 { // missing %b reads 0
		t.Fatalf("ret = %d, want 7", res.Ret)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace = %v", res.Trace)
	}
	if res.Steps == 0 {
		t.Fatal("steps not counted")
	}
}

func TestBareRet(t *testing.T) {
	if got := run(t, "func @v() {\nb0:\n ret\n}"); got != 0 {
		t.Fatalf("bare ret = %d", got)
	}
}
