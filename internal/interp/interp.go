// Package interp executes IR functions. The paper validated its checker
// inside a production compiler whose correctness was a given; this
// repository instead proves its transformation passes (SSA construction,
// SSA destruction) semantics-preserving by running programs before and
// after each pass on random inputs and comparing results.
//
// Semantics are total and deterministic so generated programs can always be
// compared: division and modulo by zero yield 0, shifts mask their amount
// to 6 bits, calls hash their arguments (an opaque pure function), and slot
// storage is zero-initialized.
package interp

import (
	"fmt"

	"fastliveness/internal/ir"
)

// Result is the outcome of a run.
type Result struct {
	// Ret is the returned value (0 for a bare ret).
	Ret int64
	// Steps is the number of values + terminators executed.
	Steps int
	// Trace, when tracing was requested, records the IDs of the blocks
	// executed, in order.
	Trace []int
}

// ErrFuel is returned when execution exceeds the step budget.
type ErrFuel struct{ Steps int }

// Error describes the exhausted budget.
func (e *ErrFuel) Error() string {
	return fmt.Sprintf("interp: step budget of %d exhausted", e.Steps)
}

// Options control execution.
type Options struct {
	// MaxSteps bounds execution; ≤0 means a default of 1<<20.
	MaxSteps int
	// RecordTrace captures the executed block IDs in Result.Trace.
	RecordTrace bool
}

// Run executes f with the given arguments. Missing arguments read as 0,
// extra arguments are ignored.
func Run(f *ir.Func, args []int64, opts Options) (Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	env := make([]int64, f.NumValues())
	slots := make([]int64, f.NumSlots)
	var res Result

	b := f.Entry()
	predIdx := -1 // index of the incoming edge in b.Preds
	for {
		if opts.RecordTrace {
			res.Trace = append(res.Trace, b.ID)
		}
		// φs evaluate simultaneously on block entry, reading the
		// environment of the edge just taken.
		phis := b.Phis()
		if len(phis) > 0 {
			if predIdx < 0 {
				return res, fmt.Errorf("interp: φ in entry block %s", b)
			}
			vals := make([]int64, len(phis))
			for i, phi := range phis {
				vals[i] = env[phi.Args[predIdx].ID]
			}
			for i, phi := range phis {
				env[phi.ID] = vals[i]
			}
			res.Steps += len(phis)
		}
		for _, v := range b.Values[len(phis):] {
			res.Steps++
			if res.Steps > maxSteps {
				return res, &ErrFuel{Steps: maxSteps}
			}
			env[v.ID] = eval(v, env, slots, args)
		}
		res.Steps++
		if res.Steps > maxSteps {
			return res, &ErrFuel{Steps: maxSteps}
		}
		switch b.Kind {
		case ir.BlockRet:
			if b.Control != nil {
				res.Ret = env[b.Control.ID]
			}
			return res, nil
		case ir.BlockPlain:
			predIdx = b.Succs[0].I
			b = b.Succs[0].B
		case ir.BlockIf:
			e := b.Succs[1]
			if env[b.Control.ID] != 0 {
				e = b.Succs[0]
			}
			predIdx = e.I
			b = e.B
		case ir.BlockSwitch:
			c := env[b.Control.ID]
			n := int64(len(b.Succs))
			i := c % n
			if i < 0 {
				i += n
			}
			e := b.Succs[i]
			predIdx = e.I
			b = e.B
		default:
			return res, fmt.Errorf("interp: bad block kind %v", b.Kind)
		}
	}
}

func eval(v *ir.Value, env, slots []int64, args []int64) int64 {
	a := func(i int) int64 { return env[v.Args[i].ID] }
	switch v.Op {
	case ir.OpParam:
		if int(v.AuxInt) < len(args) {
			return args[v.AuxInt]
		}
		return 0
	case ir.OpConst:
		return v.AuxInt
	case ir.OpAdd:
		return a(0) + a(1)
	case ir.OpSub:
		return a(0) - a(1)
	case ir.OpMul:
		return a(0) * a(1)
	case ir.OpDiv:
		if a(1) == 0 {
			return 0
		}
		return a(0) / a(1)
	case ir.OpMod:
		if a(1) == 0 {
			return 0
		}
		return a(0) % a(1)
	case ir.OpAnd:
		return a(0) & a(1)
	case ir.OpOr:
		return a(0) | a(1)
	case ir.OpXor:
		return a(0) ^ a(1)
	case ir.OpShl:
		return a(0) << (uint64(a(1)) & 63)
	case ir.OpShr:
		return int64(uint64(a(0)) >> (uint64(a(1)) & 63))
	case ir.OpNeg:
		return -a(0)
	case ir.OpNot:
		return ^a(0)
	case ir.OpCmpEQ:
		if a(0) == a(1) {
			return 1
		}
		return 0
	case ir.OpCmpLT:
		if a(0) < a(1) {
			return 1
		}
		return 0
	case ir.OpCopy:
		return a(0)
	case ir.OpPhi:
		panic("interp: φ evaluated out of band")
	case ir.OpCall:
		// An opaque pure function: FNV-style mixing of callee name and
		// arguments.
		h := uint64(14695981039346656037)
		for _, c := range []byte(v.AuxStr) {
			h = (h ^ uint64(c)) * 1099511628211
		}
		for _, arg := range v.Args {
			h = (h ^ uint64(env[arg.ID])) * 1099511628211
		}
		return int64(h)
	case ir.OpSlotLoad:
		return slots[v.AuxInt]
	case ir.OpSlotStore:
		slots[v.AuxInt] = a(0)
		return 0
	}
	panic("interp: unhandled op " + v.Op.String())
}
