package regalloc_test

import (
	"errors"
	"testing"

	"fastliveness"
	"fastliveness/internal/backend"
	"fastliveness/internal/backend/difftest"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/regalloc"
	"fastliveness/internal/ssa"
)

// corpusSize satisfies the acceptance criterion: the verifier and the
// semantic cross-check run over ≥ 120 random functions mixing structured
// (reducible and irreducible, sparse and pressure-biased) and
// graph-synthesized shapes.
const corpusSize = 132

func corpus(t *testing.T) []*ir.Func {
	t.Helper()
	n := corpusSize
	if testing.Short() {
		n = 24
	}
	return difftest.Corpus(n, 20260801)
}

func analyze(t *testing.T, f *ir.Func) *fastliveness.Liveness {
	t.Helper()
	live, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	return live
}

// Spill-free allocation at k = max pressure: the dominance-order scan must
// achieve the chordal bound — never more registers than the widest program
// point — and leave the program untouched.
func TestSpillFreeMeetsPressureBound(t *testing.T) {
	for _, f := range corpus(t) {
		live := analyze(t, f)
		p := regalloc.MeasurePressure(f, live)
		before := f.NumValues()
		alloc, err := regalloc.Run(f, live, p.Max)
		if err != nil {
			t.Fatalf("%s: k = max pressure %d: %v", f.Name, p.Max, err)
		}
		if alloc.Stats.Spills != 0 {
			t.Fatalf("%s: spilled %d values at k = max pressure %d", f.Name, alloc.Stats.Spills, p.Max)
		}
		if f.NumValues() != before {
			t.Fatalf("%s: spill-free run added values", f.Name)
		}
		if alloc.NumRegs > p.Max {
			t.Fatalf("%s: used %d registers, max pressure %d", f.Name, alloc.NumRegs, p.Max)
		}
		if err := regalloc.VerifyAllocation(f, alloc); err != nil {
			t.Fatal(err)
		}
		if alloc.Stats.Queries() == 0 {
			t.Fatalf("%s: allocator issued no oracle queries", f.Name)
		}
	}
}

// Constrained budgets force the greedy spill loop. With the checker as
// oracle no Refresh hook is needed — spill code never touches the CFG, so
// the paper's precomputation stays valid across rounds — and the result
// must still verify and preserve semantics through destruction.
func TestSpillingAllocatesValidly(t *testing.T) {
	spilled, tooFew := 0, 0
	funcs := corpus(t)
	for i, f := range funcs {
		live := analyze(t, f)
		p := regalloc.MeasurePressure(f, live)
		maxPhis := 0
		for _, b := range f.Blocks {
			if n := len(b.Phis()); n > maxPhis {
				maxPhis = n
			}
		}
		k := p.Max/2 + 1
		if min := maxPhis + 2; k < min {
			k = min
		}
		if k >= p.Max {
			continue // too narrow to force spills; covered by the test above
		}
		ref := ir.Clone(f)
		alloc, err := regalloc.Run(f, live, k)
		if errors.Is(err, regalloc.ErrTooFewRegisters) {
			tooFew++
			continue
		}
		if err != nil {
			t.Fatalf("%s: k=%d (max pressure %d): %v", f.Name, k, p.Max, err)
		}
		if alloc.Stats.Spills == 0 {
			t.Fatalf("%s: k=%d below max pressure %d but nothing spilled", f.Name, k, p.Max)
		}
		spilled++
		if err := regalloc.VerifyAllocation(f, alloc); err != nil {
			t.Fatal(err)
		}
		if err := regalloc.CrossCheck(ref, f, 6, 1<<18, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if spilled == 0 {
		t.Fatal("corpus produced no successfully spilled allocation; test proves nothing")
	}
	if tooFew > spilled/4 {
		t.Fatalf("%d of %d constrained runs gave ErrTooFewRegisters — spiller too weak", tooFew, spilled+tooFew)
	}
}

// The semantic cross-check also holds for spill-free allocations (Run must
// not perturb the program at all on the happy path).
func TestSpillFreeCrossCheck(t *testing.T) {
	funcs := corpus(t)
	for i, f := range funcs {
		if i%3 != 0 {
			continue // a sample suffices; the full sweep runs above
		}
		ref := ir.Clone(f)
		live := analyze(t, f)
		p := regalloc.MeasurePressure(f, live)
		if _, err := regalloc.Run(f, live, p.Max); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if err := regalloc.CrossCheck(ref, f, 4, 1<<18, int64(2000+i)); err != nil {
			t.Fatal(err)
		}
	}
}

// A set-producing oracle is invalidated by the allocator's own spill
// edits; wrapped in backend.Refreshing it re-analyzes automatically —
// exactly once per edited-then-queried round, observable via Rebuilds —
// and the result must agree with the checker-driven allocation on
// validity.
func TestSetOracleSelfRefreshes(t *testing.T) {
	c := gen.HighPressure(7)
	c.TargetBlocks = 28
	f := gen.Generate("refresh", c)
	ssa.Construct(f)
	ref := ir.Clone(f)

	db, err := backend.Get("dataflow")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := backend.NewRefreshing(db, f)
	if err != nil {
		t.Fatal(err)
	}
	p := regalloc.MeasurePressure(f, oracle)
	k := p.Max/2 + 1
	if k < 4 {
		k = 4
	}
	alloc, err := regalloc.Run(f, oracle, k)
	if err != nil {
		t.Fatalf("k=%d (max pressure %d): %v", k, p.Max, err)
	}
	if alloc.Stats.Spills == 0 {
		t.Fatalf("k=%d below max pressure %d but nothing spilled", k, p.Max)
	}
	if oracle.Rebuilds() == 0 {
		t.Fatal("spill edits should have forced the set-producing oracle to rebuild")
	}
	if err := regalloc.VerifyAllocation(f, alloc); err != nil {
		t.Fatal(err)
	}
	if err := regalloc.CrossCheck(ref, f, 8, 1<<18, 99); err != nil {
		t.Fatal(err)
	}
}

// The checker-backed oracle must survive the same spill workload with
// zero rebuilds — the paper's headline property, now asserted through the
// epoch machinery rather than by convention.
func TestCheckerOracleZeroRebuilds(t *testing.T) {
	c := gen.HighPressure(7)
	c.TargetBlocks = 28
	f := gen.Generate("norebuild", c)
	ssa.Construct(f)

	cb, err := backend.Get("checker")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := backend.NewRefreshing(cb, f)
	if err != nil {
		t.Fatal(err)
	}
	p := regalloc.MeasurePressure(f, oracle)
	k := p.Max/2 + 1
	if k < 4 {
		k = 4
	}
	alloc, err := regalloc.Run(f, oracle, k)
	if err != nil {
		t.Fatalf("k=%d (max pressure %d): %v", k, p.Max, err)
	}
	if alloc.Stats.Spills == 0 {
		t.Fatalf("k=%d below max pressure %d but nothing spilled", k, p.Max)
	}
	if got := oracle.Rebuilds(); got != 0 {
		t.Fatalf("checker oracle rebuilt %d times across the spill loop, want 0", got)
	}
	if err := regalloc.VerifyAllocation(f, alloc); err != nil {
		t.Fatal(err)
	}
}

// Pressure profiles must agree across oracles — the checker-driven walk
// and the ground-truth sets describe the same program.
func TestMeasurePressureMatchesGroundTruth(t *testing.T) {
	for _, f := range corpus(t) {
		live := analyze(t, f)
		got := regalloc.MeasurePressure(f, live)
		want := regalloc.MeasurePressure(f, dataflow.Analyze(f))
		if got.Max != want.Max {
			t.Fatalf("%s: checker-driven max pressure %d, ground truth %d", f.Name, got.Max, want.Max)
		}
		for i := range want.PerBlock {
			if got.PerBlock[i] != want.PerBlock[i] {
				t.Fatalf("%s: block %s pressure %d, ground truth %d",
					f.Name, f.Blocks[i], got.PerBlock[i], want.PerBlock[i])
			}
		}
		if got.Queries == 0 {
			t.Fatalf("%s: pressure walk issued no queries", f.Name)
		}
	}
}

// The pressure-biased generator mode must actually raise pressure: the
// whole point of the Barany-style bias is a corpus that stresses the
// allocator, and a silent regression here would hollow out every test
// that relies on it.
func TestHighPressureModeRaisesPressure(t *testing.T) {
	lo, hi := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		base := gen.Generate("lo", gen.Default(seed))
		ssa.Construct(base)
		lo += regalloc.MeasurePressure(base, dataflow.Analyze(base)).Max

		dense := gen.Generate("hi", gen.HighPressure(seed))
		ssa.Construct(dense)
		hi += regalloc.MeasurePressure(dense, dataflow.Analyze(dense)).Max
	}
	if hi <= lo {
		t.Fatalf("high-pressure corpus max-pressure sum %d not above default %d", hi, lo)
	}
}

// Querier (the concurrent handle) satisfies the Oracle shape too and must
// drive the allocator to the same assignment as the owning Liveness.
func TestQuerierOracleMatchesLiveness(t *testing.T) {
	c := gen.HighPressure(11)
	c.TargetBlocks = 20
	f := gen.Generate("qr", c)
	ssa.Construct(f)
	live := analyze(t, f)
	p := regalloc.MeasurePressure(f, live)
	a1, err := regalloc.Run(f, live, p.Max)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := regalloc.Run(f, live.NewQuerier(), p.Max)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a1.Reg {
		if a1.Reg[id] != a2.Reg[id] {
			t.Fatalf("value ID %d: Liveness oracle assigned r%d, Querier oracle r%d", id, a1.Reg[id], a2.Reg[id])
		}
	}
}
