package regalloc

import "fastliveness/internal/ir"

// spill demotes v: rematerializable values (constants) are re-cloned at
// each use; everything else goes through a fresh slot — one
// store right after the definition, one reload right before each use
// (spill-everywhere). The rewrite edits instructions only, never the CFG,
// which is exactly the edit class the paper's checker survives without
// re-analysis. The original value stays in place with a short
// definition-to-store (or dead) range, so it still receives a register for
// its definition point; all inserted values are marked unspillable, which
// bounds the spill loop.
func (a *Allocator) spill(v *ir.Value) {
	a.stats.Spills++
	a.spilled = append(a.spilled, v)
	a.unspillable[v.ID] = true
	if v.Op == ir.OpConst {
		// Rematerialize: clone the constant at every use — no slot
		// traffic, and the original becomes a dead definition occupying a
		// register only at its own program point. (Parameters are not
		// rematerializable: ir.Verify pins OpParam to the entry block.)
		for len(v.Uses()) > 0 {
			u := v.Uses()[len(v.Uses())-1]
			a.markArtifact(placeAtUse(u, func(b *ir.Block, at int) *ir.Value {
				if at < 0 {
					return b.NewValueI(v.Op, v.AuxInt)
				}
				return b.InsertValueAt(at, v.Op, v.AuxInt)
			}))
			a.stats.Remats++
		}
		return
	}
	slot := int64(a.f.NumSlots)
	a.f.NumSlots++
	db := v.Block
	var store *ir.Value
	if v.Op == ir.OpPhi {
		store = db.InsertValueAfterPhis(ir.OpSlotStore, v)
		store.AuxInt = slot
	} else {
		store = db.InsertValueAt(db.ValueIndex(v)+1, ir.OpSlotStore, slot, v)
	}
	a.stats.Stores++
	a.markArtifact(store)

	// Rewrite every use except the store through a reload at the use point.
	for {
		var u ir.Use
		found := false
		for _, cand := range v.Uses() {
			if cand.User == store {
				continue
			}
			u = cand
			found = true
			break
		}
		if !found {
			break
		}
		a.markArtifact(placeAtUse(u, func(b *ir.Block, at int) *ir.Value {
			if at < 0 {
				return b.NewValueI(ir.OpSlotLoad, slot)
			}
			return b.InsertValueAt(at, ir.OpSlotLoad, slot)
		}))
		a.stats.Reloads++
	}
}

// placeAtUse creates a value at u's Definition 1 use point — before the
// using instruction, at the end of the φ-predecessor, or at the end of the
// controlling block — and rewires the use to it. mk receives the block to
// create in and the insertion index (-1 = append at the block's end).
func placeAtUse(u ir.Use, mk func(b *ir.Block, at int) *ir.Value) *ir.Value {
	switch {
	case u.UserBlock != nil:
		v := mk(u.UserBlock, -1)
		u.UserBlock.SetControl(v)
		return v
	case u.User.Op == ir.OpPhi:
		v := mk(u.User.Block.Preds[u.Index].B, -1)
		u.User.SetArg(u.Index, v)
		return v
	default:
		blk := u.User.Block
		v := mk(blk, blk.ValueIndex(u.User))
		u.User.SetArg(u.Index, v)
		return v
	}
}

// markArtifact records a spill-inserted value as unspillable (its live
// range is already minimal; respilling it could loop forever).
func (a *Allocator) markArtifact(v *ir.Value) {
	for len(a.unspillable) <= v.ID {
		a.unspillable = append(a.unspillable, false)
	}
	a.unspillable[v.ID] = true
}
