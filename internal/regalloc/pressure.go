package regalloc

import (
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Pressure is the register-pressure profile of a function: how many values
// are simultaneously live at the widest point of each block. It is the
// quantity that decides whether a register budget k needs spilling at all,
// and — because strict-SSA interference graphs are chordal — Max is
// exactly the number of registers a spill-free allocation needs (the
// VerifyAllocation bound).
type Pressure struct {
	// PerBlock is the maximum number of simultaneously-live values at any
	// point of each block, indexed like ir.Func.Blocks. Definitions count
	// at their own program point even when dead (they occupy a register
	// there), and a block's φs count simultaneously at its entry.
	PerBlock []int
	// Max is the function-wide maximum and MaxBlock a block attaining it.
	Max      int
	MaxBlock *ir.Block
	// Queries counts the IsLiveOut queries issued.
	Queries int
}

// MeasurePressure computes the pressure profile through the oracle alone:
// one IsLiveOut query per (value, dominated block) pair builds each
// block's live-at-end set — in strict SSA a value can only be live where
// its definition dominates, so the dominance-preorder interval of the
// definition bounds the sweep — and a backward in-block walk refines the
// end sets to the per-point maximum.
func MeasurePressure(f *ir.Func, oracle Oracle) Pressure {
	g, index := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)

	p := Pressure{PerBlock: make([]int, len(f.Blocks))}
	atEnd := make([][]*ir.Value, len(f.Blocks))
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		dn := index[v.Block.ID]
		if tree.Num[dn] < 0 {
			return // unreachable definition: live nowhere
		}
		for num := tree.Num[dn]; num <= tree.MaxNum[dn]; num++ {
			b := f.Blocks[tree.Order[num]]
			p.Queries++
			if oracle.IsLiveOut(v, b) {
				atEnd[tree.Order[num]] = append(atEnd[tree.Order[num]], v)
			}
		}
	})

	// live is a stamped membership set over value IDs, reset per block.
	stamp := make([]int, f.NumValues())
	epoch := 0
	count := 0
	add := func(v *ir.Value) {
		if stamp[v.ID] != epoch {
			stamp[v.ID] = epoch
			count++
		}
	}
	has := func(v *ir.Value) bool { return stamp[v.ID] == epoch }
	remove := func(v *ir.Value) {
		if stamp[v.ID] == epoch {
			stamp[v.ID] = 0
			count--
		}
	}

	for bi, b := range f.Blocks {
		epoch = bi + 1
		count = 0
		for _, v := range atEnd[bi] {
			add(v)
		}
		// Values consumed at the block's very end: the control operand and
		// φ operands of successors (paper Definition 1 places those uses
		// here, one instant before live-out).
		if c := b.Control; c != nil {
			add(c)
		}
		for _, e := range b.Succs {
			for _, phi := range e.B.Phis() {
				add(phi.Args[e.I])
			}
		}
		maxP := count
		phis := b.Phis()
		for i := len(b.Values) - 1; i >= len(phis); i-- {
			v := b.Values[i]
			if v.Op.HasResult() {
				if !has(v) && count+1 > maxP {
					maxP = count + 1 // dead definition: occupies at its point
				}
				remove(v)
			}
			for _, arg := range v.Args {
				add(arg)
			}
			if count > maxP {
				maxP = count
			}
		}
		// Block entry: every φ defines simultaneously, dead or not, on top
		// of the values live through the φ group.
		entry := count
		for _, phi := range phis {
			if !has(phi) {
				entry++
			}
		}
		if entry > maxP {
			maxP = entry
		}
		p.PerBlock[bi] = maxP
		if maxP > p.Max || p.MaxBlock == nil {
			p.Max = maxP
			p.MaxBlock = b
		}
	}
	return p
}
