// Package regalloc is an SSA-based register allocator driven by the
// liveness oracle — the repository's second real client workload after SSA
// destruction (internal/destruct), and the other pass the paper names as a
// consumer of fast liveness checking (§1: JIT register allocation, §6.2:
// the Budimlić interference test "register allocators are built on").
//
// The allocator is a dominance-order scan in the style of Hack et al.:
// interference graphs of strict-SSA programs are chordal, and walking the
// dominator tree in preorder visits definitions in a perfect elimination
// order, so greedily assigning each definition the lowest free register
// colors the program with max-pressure registers — the chordal optimum —
// without ever materializing an interference graph. Where the register
// budget k is exceeded, the allocator spills greedily (furthest next use,
// à la Belady) and rescans.
//
// Every decision is a liveness query:
//
//   - block-entry occupancy: one IsLiveIn(v, b) per value defined on the
//     dominator path — which registers are taken when the scan enters b;
//   - death points: one IsLiveOut(v, b) per last in-block use — whether a
//     register frees mid-block or stays occupied past the block;
//   - register pressure (MeasurePressure): IsLiveOut over each value's
//     dominance subtree, refined by a backward in-block walk.
//
// The paper's headline property is what makes the spill loop cheap with
// the checker as oracle: spill code insertion adds stores, reloads and
// rematerialized constants but never touches the CFG, so the checker's
// R/T precomputation — and every answer it gives — stays valid across
// rounds. Set-producing oracles (dataflow, lao, pervar, loops) are
// invalidated by any edit; since every IR mutation now bumps the
// function's edit epochs, staleness is the oracle's own problem, not this
// package's — pass a self-refreshing oracle (backend.Refreshing, or the
// fastliveness Engine's Oracle) and it re-analyzes exactly when the spill
// edits demand, while the checker never does. cmd/benchtables -table
// regalloc and -table pipeline measure exactly that asymmetry on the
// allocator's genuine query stream.
package regalloc

import (
	"errors"
	"fmt"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Oracle answers the liveness queries the allocator issues. It is the
// destruct.Oracle shape extended with the live-in query the scan needs for
// block-entry occupancy. The production choice is the paper's checker (a
// *fastliveness.Liveness or Querier satisfies it directly); every
// internal/backend Result satisfies it too, which is how the harness times
// all engines on the identical stream.
type Oracle interface {
	IsLiveIn(v *ir.Value, b *ir.Block) bool
	IsLiveOut(v *ir.Value, b *ir.Block) bool
}

// ErrTooFewRegisters is returned (wrapped) when some program point needs
// more than k registers even after every spillable value has been spilled
// — e.g. a block with more φs than registers, or an instruction whose
// operands and live-through values alone exceed k.
var ErrTooFewRegisters = errors.New("regalloc: register budget too small")

// Stats reports what the allocator did and what it asked the oracle.
type Stats struct {
	// Rounds is the number of dominance-order scans (1 = spill-free).
	Rounds int
	// Spills is the number of values spilled or rematerialized.
	Spills int
	// Stores, Reloads and Remats count inserted spill instructions.
	Stores, Reloads, Remats int
	// LiveInQueries and LiveOutQueries count oracle calls; Queries() sums.
	LiveInQueries, LiveOutQueries int
}

// Queries is the total number of oracle queries issued.
func (s Stats) Queries() int { return s.LiveInQueries + s.LiveOutQueries }

// Allocation is the result of a successful Run.
type Allocation struct {
	// K is the register budget the allocation respects.
	K int
	// Reg maps value ID -> assigned register in [0, K), or -1 for values
	// that define no result. Every result-defining value has a register:
	// spilled values keep one for their (now short) def-to-store range,
	// reloads and rematerialized constants for their load-to-use range.
	Reg []int
	// NumRegs is the number of distinct registers actually used. For
	// spill-free runs it is at most the function's max register pressure
	// (the chordal bound); VerifyAllocation checks exactly that.
	NumRegs int
	// Spilled lists the values demoted to slots or rematerialized, in
	// spill order.
	Spilled []*ir.Value
	Stats   Stats
}

// RegOf returns v's register, or -1.
func (a *Allocation) RegOf(v *ir.Value) int {
	if v.ID >= len(a.Reg) {
		return -1
	}
	return a.Reg[v.ID]
}

// Run allocates k registers for the strict-SSA function f, spilling (in
// place: stores after definitions, reloads before uses, constants and
// parameters rematerialized) until the scan fits. The oracle must answer
// liveness for f *as currently edited* at every query: the paper's checker
// does so natively (spill code never touches the CFG), and oracles built
// on materialized sets must self-refresh — wrap them in
// backend.Refreshing or use a fastliveness Engine Oracle, both of which
// detect the spill edits through the function's instruction epoch. There
// is no manual refresh hook. On success f is unchanged except for inserted
// spill code, and the returned Allocation maps every result-defining value
// — including spill artifacts — to a register. On ErrTooFewRegisters the
// returned Allocation is partial — Stats and Spilled only, no register
// assignment — describing the failed attempt, whose spill edits remain in
// f; other errors return a nil Allocation.
func Run(f *ir.Func, oracle Oracle, k int) (*Allocation, error) {
	if k < 1 {
		return nil, fmt.Errorf("regalloc: k = %d, need at least one register", k)
	}
	a := New(f, oracle, k)
	maxRounds := f.NumValues() + 2 // each round spills a distinct value
	for {
		if a.Scan() {
			break
		}
		if a.stats.Rounds > maxRounds {
			return nil, fmt.Errorf("regalloc: %s: spill loop did not converge after %d rounds", f.Name, a.stats.Rounds)
		}
		victim := a.chooseVictim()
		if victim == nil {
			// Report the failed attempt's work alongside the error: the
			// spill edits stay in f, so callers that retry with a wider
			// budget (the pipeline's doubling loop) can keep their spill
			// accounting consistent with the emitted program. The partial
			// Allocation carries Stats and Spilled only — no register
			// assignment.
			return &Allocation{K: k, Spilled: a.spilled, Stats: a.stats},
				fmt.Errorf("%w: %s needs more than %d registers to define %s in %s (k too small for its unspillable values)",
					ErrTooFewRegisters, f.Name, k, a.fault.v, a.fault.b)
		}
		a.spill(victim)
		a.grow()
	}
	if a.err != nil {
		return nil, a.err
	}
	reg := make([]int, len(a.reg))
	for i, r := range a.reg {
		reg[i] = int(r)
	}
	return &Allocation{
		K:       k,
		Reg:     reg,
		NumRegs: a.numRegs,
		Spilled: a.spilled,
		Stats:   a.stats,
	}, nil
}

// Allocator holds the reusable state of the dominance-order scan for one
// function. New prepares it once; Scan may be called repeatedly (the spill
// loop does, and the allocation-regression tests pin that steady-state
// rescans allocate nothing).
type Allocator struct {
	f      *ir.Func
	oracle Oracle
	k      int

	tree   *dom.Tree
	blocks []*ir.Block // CFG node -> block (creation order, like cfg.FromFunc)

	reg         []int32 // value ID -> register, -1 = none
	pos         []int32 // value ID -> index within its block
	unspillable []bool  // value ID -> spill artifact or already spilled

	occ      []bool      // register -> occupied at the current scan point
	owner    []*ir.Value // register -> owning value while occupied
	domStack []*ir.Value // values defined along the current dominator path
	frames   []scanFrame

	numRegs int
	stats   Stats
	spilled []*ir.Value
	fault   scanFault
	err     error
}

type scanFrame struct {
	node int
	next int // next dominator-tree child to visit
	mark int // domStack length on entry
}

// scanFault describes the first point of a failed scan: the value that
// found no free register and the owners occupying all k registers there.
type scanFault struct {
	v      *ir.Value
	b      *ir.Block
	pos    int32 // in-block position of v; -1 for φ definitions
	owners []*ir.Value
}

// New prepares an allocator for f with the given oracle and budget.
func New(f *ir.Func, oracle Oracle, k int) *Allocator {
	g, _ := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	a := &Allocator{
		f:      f,
		oracle: oracle,
		k:      k,
		tree:   dom.Iterative(g, d),
		blocks: append([]*ir.Block(nil), f.Blocks...),
		occ:    make([]bool, k),
		owner:  make([]*ir.Value, k),
	}
	a.grow()
	return a
}

// grow extends the value-ID-indexed tables after spill code added values.
func (a *Allocator) grow() {
	n := a.f.NumValues()
	for len(a.reg) < n {
		a.reg = append(a.reg, -1)
	}
	for len(a.pos) < n {
		a.pos = append(a.pos, 0)
	}
	for len(a.unspillable) < n {
		a.unspillable = append(a.unspillable, false)
	}
}

func (a *Allocator) liveIn(v *ir.Value, b *ir.Block) bool {
	a.stats.LiveInQueries++
	return a.oracle.IsLiveIn(v, b)
}

func (a *Allocator) liveOut(v *ir.Value, b *ir.Block) bool {
	a.stats.LiveOutQueries++
	return a.oracle.IsLiveOut(v, b)
}

// Scan runs one dominance-order scan over the current program, reusing
// every buffer from earlier scans (steady-state rescans allocate nothing).
// It reports whether the register budget sufficed; on false, the fault is
// recorded for the spill machinery.
func (a *Allocator) Scan() bool {
	a.stats.Rounds++
	for i := range a.reg {
		a.reg[i] = -1
	}
	a.numRegs = 0
	// In-block positions, for last-use and death tests.
	for _, b := range a.f.Blocks {
		for i, v := range b.Values {
			a.pos[v.ID] = int32(i)
		}
	}
	a.domStack = a.domStack[:0]
	a.frames = a.frames[:0]
	a.frames = append(a.frames, scanFrame{node: 0, mark: 0})
	for len(a.frames) > 0 {
		fr := &a.frames[len(a.frames)-1]
		if fr.next == 0 {
			if !a.scanBlock(a.blocks[fr.node]) {
				return false
			}
		}
		if fr.next < len(a.tree.Children[fr.node]) {
			c := a.tree.Children[fr.node][fr.next]
			fr.next++
			a.frames = append(a.frames, scanFrame{node: c, mark: len(a.domStack)})
			continue
		}
		a.domStack = a.domStack[:fr.mark]
		a.frames = a.frames[:len(a.frames)-1]
	}
	return true
}

// scanBlock assigns registers within b: entry occupancy from live-in
// queries over the dominator path, φs as a simultaneous group, then a
// forward walk freeing dying operands before each definition.
func (a *Allocator) scanBlock(b *ir.Block) bool {
	for r := 0; r < a.k; r++ {
		a.occ[r] = false
		a.owner[r] = nil
	}
	for _, v := range a.domStack {
		r := a.reg[v.ID]
		if r < 0 {
			continue
		}
		if a.liveIn(v, b) {
			if a.occ[r] && a.err == nil {
				a.err = fmt.Errorf("regalloc: internal: %s and %s both live-in at %s share r%d",
					a.owner[r], v, b, r)
			}
			a.occ[r] = true
			a.owner[r] = v
		}
	}
	phis := b.Phis()
	for _, v := range phis {
		if !a.assign(v, b, -1) {
			return false
		}
	}
	// φs define simultaneously at block entry; only after the whole group
	// holds registers may the dead ones release theirs.
	for _, v := range phis {
		if a.diesAt(v, b, -1) {
			a.release(v)
		}
	}
	for _, v := range b.Values[len(phis):] {
		vpos := a.pos[v.ID]
		for _, arg := range v.Args {
			r := a.reg[arg.ID]
			if r >= 0 && a.occ[r] && a.owner[r] == arg && a.diesAt(arg, b, vpos) {
				a.release(arg)
			}
		}
		if !v.Op.HasResult() {
			continue
		}
		if !a.assign(v, b, vpos) {
			return false
		}
		if a.diesAt(v, b, vpos) {
			a.release(v) // dead past its definition point: occupy only there
		}
	}
	return true
}

// assign gives v the lowest free register, recording a fault when none is.
func (a *Allocator) assign(v *ir.Value, b *ir.Block, vpos int32) bool {
	for r := 0; r < a.k; r++ {
		if a.occ[r] {
			continue
		}
		a.occ[r] = true
		a.owner[r] = v
		a.reg[v.ID] = int32(r)
		a.domStack = append(a.domStack, v)
		if r+1 > a.numRegs {
			a.numRegs = r + 1
		}
		return true
	}
	a.fault.v = v
	a.fault.b = b
	a.fault.pos = vpos
	a.fault.owners = a.fault.owners[:0]
	for r := 0; r < a.k; r++ {
		a.fault.owners = append(a.fault.owners, a.owner[r])
	}
	return false
}

// release frees v's register (v stays assigned; the register is just
// reusable past v's death point).
func (a *Allocator) release(v *ir.Value) {
	r := a.reg[v.ID]
	if r >= 0 && a.owner[r] == v {
		a.occ[r] = false
		a.owner[r] = nil
	}
}

// diesAt reports whether v is dead after position vpos of block b: no use
// later in b, no use anchored at b's end (control operand, φ operand of a
// successor), and not live-out. Called with vpos = the position of v's last
// potential death point; issues at most one IsLiveOut query.
func (a *Allocator) diesAt(v *ir.Value, b *ir.Block, vpos int32) bool {
	for _, u := range v.Uses() {
		switch {
		case u.UserBlock != nil:
			if u.UserBlock == b {
				return false // control operand: used at b's end
			}
		case u.User.Op == ir.OpPhi:
			if u.User.Block.Preds[u.Index].B == b {
				return false // φ operand: used at b's end
			}
		case u.User.Block == b && a.pos[u.User.ID] > vpos:
			return false // a later use within b
		}
	}
	return !a.liveOut(v, b)
}

// chooseVictim picks the spill candidate from the recorded fault: the
// spillable owner with the furthest next use in the fault block (absence of
// a next use counts as furthest — Belady's rule at block granularity).
// φs of the fault block are excluded when the fault is at the φ group
// itself: a spilled φ still occupies a register across the simultaneous
// entry definitions, so spilling one cannot relieve that fault. Returns
// nil when no owner qualifies.
func (a *Allocator) chooseVictim() *ir.Value {
	var best *ir.Value
	bestDist := int32(-1)
	for _, w := range a.fault.owners {
		if w == nil || a.unspillable[w.ID] {
			continue
		}
		if a.fault.pos < 0 && w.Op == ir.OpPhi && w.Block == a.fault.b {
			continue
		}
		dist := a.nextUseDistance(w)
		if dist > bestDist || (dist == bestDist && best != nil && w.ID < best.ID) {
			best, bestDist = w, dist
		}
	}
	return best
}

// nextUseDistance returns how far past the fault point w's next use in the
// fault block is, or a sentinel "beyond the block" distance when w has no
// further in-block use.
func (a *Allocator) nextUseDistance(w *ir.Value) int32 {
	const beyond = int32(1) << 30
	next := beyond
	for _, u := range w.Uses() {
		if u.User == nil || u.UserBlock != nil || u.User.Op == ir.OpPhi {
			continue
		}
		if u.User.Block == a.fault.b && a.pos[u.User.ID] > a.fault.pos {
			if d := a.pos[u.User.ID] - a.fault.pos - 1; d < next {
				next = d
			}
		}
	}
	return next
}
