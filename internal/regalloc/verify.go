package regalloc

import (
	"fmt"
	"math/rand"

	"fastliveness/internal/dataflow"
	"fastliveness/internal/destruct"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
)

// VerifyAllocation checks an allocation's validity against an independent
// ground truth — an iterative data-flow analysis of the (post-spill)
// function, never the oracle that drove the scan:
//
//   - every result-defining value holds a register in [0, K);
//   - no two simultaneously-live values share a register, checked at every
//     program point by a backward walk per block (with the paper's
//     Definition 1 end-of-block uses and simultaneous φ definitions);
//   - a spill-free allocation uses at most max-pressure registers — the
//     chordal-coloring optimum the dominance-order scan promises.
func VerifyAllocation(f *ir.Func, alloc *Allocation) error {
	truth := dataflow.Analyze(f)
	var verr error
	f.Values(func(v *ir.Value) {
		if verr != nil || !v.Op.HasResult() {
			return
		}
		r := alloc.RegOf(v)
		if r < 0 || r >= alloc.K {
			verr = fmt.Errorf("regalloc: %s: %s has register %d, want one in [0,%d)", f.Name, v, r, alloc.K)
		}
	})
	if verr != nil {
		return verr
	}

	valByID := make([]*ir.Value, f.NumValues())
	f.Values(func(v *ir.Value) { valByID[v.ID] = v })
	holder := make([]*ir.Value, alloc.K)
	inSet := make([]int, f.NumValues())
	epoch := 0
	occupy := func(v *ir.Value, b *ir.Block) error {
		r := alloc.RegOf(v)
		if w := holder[r]; w != nil && w != v {
			return fmt.Errorf("regalloc: %s: %s and %s are simultaneously live in %s but share r%d",
				f.Name, w, v, b, r)
		}
		holder[r] = v
		return nil
	}
	for _, b := range f.Blocks {
		epoch++
		for i := range holder {
			holder[i] = nil
		}
		// Live at block end: live-out plus the values Definition 1 uses at
		// the block's end (control operand, φ operands of successors).
		add := func(v *ir.Value) error {
			if inSet[v.ID] == epoch {
				return nil
			}
			inSet[v.ID] = epoch
			return occupy(v, b)
		}
		for _, id := range truth.LiveOutIDs(b) {
			if err := add(valByID[id]); err != nil {
				return err
			}
		}
		if c := b.Control; c != nil {
			if err := add(c); err != nil {
				return err
			}
		}
		for _, e := range b.Succs {
			for _, phi := range e.B.Phis() {
				if err := add(phi.Args[e.I]); err != nil {
					return err
				}
			}
		}
		phis := b.Phis()
		for i := len(b.Values) - 1; i >= len(phis); i-- {
			v := b.Values[i]
			if v.Op.HasResult() {
				if inSet[v.ID] == epoch {
					inSet[v.ID] = 0
					if holder[alloc.RegOf(v)] == v {
						holder[alloc.RegOf(v)] = nil
					}
				} else if w := holder[alloc.RegOf(v)]; w != nil {
					// Dead definition: it still occupies its register at
					// its own program point.
					return fmt.Errorf("regalloc: %s: dead definition %s clashes with live %s on r%d in %s",
						f.Name, v, w, alloc.RegOf(v), b)
				}
			}
			for _, arg := range v.Args {
				if err := add(arg); err != nil {
					return err
				}
			}
		}
		// Entry point: all φs define simultaneously on top of the values
		// live through the group.
		for _, phi := range phis {
			if inSet[phi.ID] == epoch {
				continue // live φ: already holds its register
			}
			if err := occupy(phi, b); err != nil {
				return err
			}
		}
	}

	if alloc.Stats.Spills == 0 {
		bound := MeasurePressure(f, truth).Max
		if alloc.NumRegs > bound {
			return fmt.Errorf("regalloc: %s: spill-free allocation uses %d registers, max pressure is %d",
				f.Name, alloc.NumRegs, bound)
		}
	}
	return nil
}

// CrossCheck proves the allocator's program rewrite (spill stores, reloads,
// rematerialized constants) semantics-preserving: it lowers a clone of the
// allocated function out of SSA through internal/destruct and runs both it
// and ref — the function as it was before Run — on random inputs under the
// interpreter, comparing results. Reference runs that exhaust maxSteps are
// skipped (graph-synthesized corpora need not terminate); the lowered run
// gets a proportionally larger budget, so a genuine divergence still
// surfaces as a fuel error.
func CrossCheck(ref, allocated *ir.Func, trials int, maxSteps int, seed int64) error {
	lowered := ir.Clone(allocated)
	destruct.Prepare(lowered)
	oracle := dataflow.Analyze(lowered)
	destruct.Run(lowered, oracle, destruct.ModeCoalesce)

	rng := rand.New(rand.NewSource(seed))
	nparams := len(ref.Params())
	for t := 0; t < trials; t++ {
		args := make([]int64, nparams)
		for i := range args {
			args[i] = rng.Int63n(64) - 16
		}
		want, err := interp.Run(ref, args, interp.Options{MaxSteps: maxSteps})
		if err != nil {
			if _, fuel := err.(*interp.ErrFuel); fuel {
				continue // non-terminating input: nothing to compare
			}
			return fmt.Errorf("regalloc: crosscheck reference run of %s: %w", ref.Name, err)
		}
		got, err := interp.Run(lowered, args, interp.Options{MaxSteps: 16*want.Steps + 1024})
		if err != nil {
			return fmt.Errorf("regalloc: crosscheck %s(%v) after allocation: %w", ref.Name, args, err)
		}
		if got.Ret != want.Ret {
			return fmt.Errorf("regalloc: %s(%v) = %d after allocation+destruction, want %d",
				ref.Name, args, got.Ret, want.Ret)
		}
	}
	return nil
}
