// Package ssa builds strict SSA form from "slot form" programs (mutable
// variable slots accessed with slotload/slotstore) and verifies the
// dominance property the paper's prerequisites demand (§1: "The program is
// in SSA form and the dominance property must hold").
//
// Two independent constructions are provided and cross-checked:
//
//   - Construct: the classic algorithm of Cytron et al. — φ placement at
//     iterated dominance frontiers followed by a renaming walk over the
//     dominator tree (the paper's reference [10], and the construction its
//     Figure 2 illustrates);
//   - ConstructBraun: the incremental algorithm of Braun et al. (CC 2013),
//     which needs no dominance frontiers and produces pruned, mostly
//     minimal SSA directly.
//
// The test suite proves both outputs strict, φ-consistent and semantically
// equivalent to the slot program under the interpreter.
package ssa

import (
	"fmt"

	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// VerifyStrict checks the SSA dominance property: every use of a value is
// dominated by its definition, with φ uses placed at the corresponding
// predecessor (paper Definition 1) and same-block uses required to follow
// the definition in program order. It also rejects leftover slot
// operations, so a passing function is pure strict SSA.
func VerifyStrict(f *ir.Func) error {
	if err := ir.Verify(f); err != nil {
		return err
	}
	g, index := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)

	// Block position and in-block order for same-block checks.
	valPos := make(map[*ir.Value]int)
	for _, b := range f.Blocks {
		for i, v := range b.Values {
			valPos[v] = i
		}
	}
	node := func(b *ir.Block) int { return index[b.ID] }

	for _, b := range f.Blocks {
		if !d.Reachable(node(b)) {
			return fmt.Errorf("%s: block %s unreachable from entry", f.Name, b)
		}
		for _, v := range b.Values {
			if v.Op == ir.OpSlotLoad || v.Op == ir.OpSlotStore {
				return fmt.Errorf("%s: slot operation %s remains after SSA construction", f.Name, v)
			}
			for i, a := range v.Args {
				var useBlock *ir.Block
				if v.Op == ir.OpPhi {
					useBlock = b.Preds[i].B
				} else {
					useBlock = b
				}
				if a.Block == useBlock {
					if v.Op != ir.OpPhi && valPos[a] >= valPos[v] {
						return fmt.Errorf("%s: %s uses %s before its definition in %s",
							f.Name, v, a, b)
					}
					// A φ use at the predecessor is at the block end: any
					// position is fine.
					continue
				}
				if !tree.StrictlyDominates(node(a.Block), node(useBlock)) {
					return fmt.Errorf("%s: %s (defined in %s) does not dominate its use by %s (at %s)",
						f.Name, a, a.Block, v, useBlock)
				}
			}
		}
		if c := b.Control; c != nil && c.Block != b {
			if !tree.StrictlyDominates(node(c.Block), node(b)) {
				return fmt.Errorf("%s: control %s of %s not dominated by its definition",
					f.Name, c, b)
			}
		}
	}
	return nil
}
