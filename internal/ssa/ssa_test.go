package ssa

import (
	"math/rand"
	"testing"

	"fastliveness/internal/gen"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
)

// figure2Src is the paper's Figure 2 example in slot form: two branches
// assigning x, a join using it.
const figure2Src = `
func @figure2(%p, %y) {
b0:
  slots 1
  if %p -> b1, b2
b1:
  %c1 = const 1
  slotstore 0, %c1
  br b3
b2:
  %c2 = const 2
  slotstore 0, %c2
  br b3
b3:
  %x = slotload 0
  %z = add %x, %y
  ret %z
}
`

func TestFigure2CytronPlacesPhiAtJoin(t *testing.T) {
	f := ir.MustParse(figure2Src)
	Construct(f)
	if err := VerifyStrict(f); err != nil {
		t.Fatalf("not strict after construction: %v", err)
	}
	b3 := f.BlockByName("b3")
	phis := b3.Phis()
	if len(phis) != 1 {
		t.Fatalf("join block has %d φs, want 1 (x3 = φ(x1, x2))", len(phis))
	}
	phi := phis[0]
	if len(phi.Args) != 2 {
		t.Fatalf("φ has %d args", len(phi.Args))
	}
	// The φ merges the two stored constants.
	got := map[int64]bool{}
	for _, a := range phi.Args {
		if a.Op != ir.OpConst {
			t.Fatalf("φ arg %s is not the stored constant", a)
		}
		got[a.AuxInt] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("φ args merge %v, want {1,2}", got)
	}
	// No slot ops remain and the add now uses the φ.
	z := f.ValueByName("z")
	if z.Args[0] != phi {
		t.Fatalf("z uses %s, want the φ", z.Args[0])
	}
}

func TestFigure2BraunMatches(t *testing.T) {
	f := ir.MustParse(figure2Src)
	ConstructBraun(f)
	if err := VerifyStrict(f); err != nil {
		t.Fatalf("not strict after Braun construction: %v", err)
	}
	if n := len(f.BlockByName("b3").Phis()); n != 1 {
		t.Fatalf("Braun placed %d φs at the join, want 1", n)
	}
}

func TestNoPhiForSingleReachingDef(t *testing.T) {
	// The slot is stored once before the branch: no φ is needed, and Braun
	// must not create one (its output is pruned/minimal).
	src := `
func @nophi(%p) {
b0:
  slots 1
  %c = const 7
  slotstore 0, %c
  if %p -> b1, b2
b1:
  br b3
b2:
  br b3
b3:
  %x = slotload 0
  ret %x
}
`
	f := ir.MustParse(src)
	ConstructBraun(f)
	if err := VerifyStrict(f); err != nil {
		t.Fatal(err)
	}
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpPhi {
			t.Fatalf("Braun inserted unnecessary φ %s", v)
		}
	})
	// Cytron inserts none either (single def block: empty frontier
	// worklist reaches b3? b3 is in DF of b0? No: only stores trigger
	// placement, and the single store's block dominates the join).
	f2 := ir.MustParse(src)
	Construct(f2)
	if err := VerifyStrict(f2); err != nil {
		t.Fatal(err)
	}
}

func TestLoopPhi(t *testing.T) {
	// i = 0; while (i < n) { i = i + 1 }; return i — the classic loop φ.
	src := `
func @loop(%n) {
b0:
  slots 1
  %z = const 0
  slotstore 0, %z
  br head
head:
  %i = slotload 0
  %c = cmplt %i, %n
  if %c -> body, exit
body:
  %i2 = slotload 0
  %one = const 1
  %i3 = add %i2, %one
  slotstore 0, %i3
  br head
exit:
  %r = slotload 0
  ret %r
}
`
	for name, construct := range map[string]func(*ir.Func){
		"cytron": Construct, "braun": ConstructBraun,
	} {
		f := ir.MustParse(src)
		construct(f)
		if err := VerifyStrict(f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		head := f.BlockByName("head")
		if len(head.Phis()) != 1 {
			t.Fatalf("%s: loop header has %d φs, want 1", name, len(head.Phis()))
		}
		// Execute: f(5) must return 5.
		res, err := interp.Run(f, []int64{5}, interp.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Ret != 5 {
			t.Fatalf("%s: loop(5) = %d, want 5", name, res.Ret)
		}
	}
}

func TestUninitializedSlotReadsZero(t *testing.T) {
	src := `
func @uninit(%p) {
b0:
  slots 2
  if %p -> b1, b2
b1:
  %c = const 9
  slotstore 0, %c
  br b2
b2:
  %x = slotload 0
  ret %x
}
`
	for name, construct := range map[string]func(*ir.Func){
		"cytron": Construct, "braun": ConstructBraun,
	} {
		f := ir.MustParse(src)
		want0, _ := interp.Run(ir.MustParse(src), []int64{0}, interp.Options{})
		want1, _ := interp.Run(ir.MustParse(src), []int64{1}, interp.Options{})
		construct(f)
		if err := VerifyStrict(f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got0, err := interp.Run(f, []int64{0}, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got1, err := interp.Run(f, []int64{1}, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got0.Ret != want0.Ret || got1.Ret != want1.Ret {
			t.Fatalf("%s: semantics changed: (%d,%d) vs (%d,%d)",
				name, got0.Ret, got1.Ret, want0.Ret, want1.Ret)
		}
		if want0.Ret != 0 || want1.Ret != 9 {
			t.Fatalf("slot-form semantics unexpected: %d, %d", want0.Ret, want1.Ret)
		}
	}
}

// The central semantic test: on hundreds of generated programs, both SSA
// constructions preserve the slot program's input/output behaviour.
func TestConstructionSemanticEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7001))
	for trial := 0; trial < 120; trial++ {
		cfg := gen.Default(int64(trial) * 77)
		cfg.TargetBlocks = 4 + rng.Intn(60)
		cfg.Irreducible = trial%5 == 0
		slotF := gen.Generate("t", cfg)
		if err := ir.Verify(slotF); err != nil {
			t.Fatalf("trial %d: generated program invalid: %v", trial, err)
		}

		cytron := gen.Generate("t", cfg)
		Construct(cytron)
		if err := VerifyStrict(cytron); err != nil {
			t.Fatalf("trial %d: cytron output: %v", trial, err)
		}
		braunF := gen.Generate("t", cfg)
		ConstructBraun(braunF)
		if err := VerifyStrict(braunF); err != nil {
			t.Fatalf("trial %d: braun output: %v", trial, err)
		}

		for run := 0; run < 6; run++ {
			args := []int64{rng.Int63n(200) - 100, rng.Int63n(200) - 100, rng.Int63n(7)}
			want, err := interp.Run(slotF, args, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d: slot form did not terminate: %v", trial, err)
			}
			gotC, err := interp.Run(cytron, args, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d: cytron run: %v", trial, err)
			}
			gotB, err := interp.Run(braunF, args, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d: braun run: %v", trial, err)
			}
			if gotC.Ret != want.Ret {
				t.Fatalf("trial %d args %v: cytron returns %d, slot form %d",
					trial, args, gotC.Ret, want.Ret)
			}
			if gotB.Ret != want.Ret {
				t.Fatalf("trial %d args %v: braun returns %d, slot form %d",
					trial, args, gotB.Ret, want.Ret)
			}
		}
	}
}

// SSA construction does not touch the CFG, so the executed block sequence
// must be identical before and after — a much stronger check than comparing
// return values.
func TestConstructionPreservesTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	for trial := 0; trial < 50; trial++ {
		cfg := gen.Default(int64(trial)*41 + 11)
		cfg.TargetBlocks = 4 + rng.Intn(40)
		slotF := gen.Generate("t", cfg)
		ssaF := gen.Generate("t", cfg)
		Construct(ssaF)
		for run := 0; run < 3; run++ {
			args := []int64{rng.Int63n(100) - 50, rng.Int63n(100) - 50}
			want, err1 := interp.Run(slotF, args, interp.Options{RecordTrace: true})
			got, err2 := interp.Run(ssaF, args, interp.Options{RecordTrace: true})
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: %v / %v", trial, err1, err2)
			}
			if len(want.Trace) != len(got.Trace) {
				t.Fatalf("trial %d: trace lengths differ: %d vs %d",
					trial, len(want.Trace), len(got.Trace))
			}
			for i := range want.Trace {
				if want.Trace[i] != got.Trace[i] {
					t.Fatalf("trial %d: traces diverge at step %d: block %d vs %d",
						trial, i, want.Trace[i], got.Trace[i])
				}
			}
		}
	}
}

// Braun must never produce more φs than Cytron-with-pruning on the same
// program (it yields pruned SSA directly).
func TestBraunIsPruned(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		cfg := gen.Default(int64(trial)*13 + 5)
		cfg.TargetBlocks = 4 + trial%50

		cytron := gen.Generate("t", cfg)
		Construct(cytron)
		removed := PruneDeadPhis(cytron)
		_ = removed
		countPhis := func(f *ir.Func) int {
			n := 0
			f.Values(func(v *ir.Value) {
				if v.Op == ir.OpPhi {
					n++
				}
			})
			return n
		}
		braunF := gen.Generate("t", cfg)
		ConstructBraun(braunF)
		if got, limit := countPhis(braunF), countPhis(cytron); got > limit {
			t.Fatalf("trial %d: braun has %d φs, pruned cytron %d", trial, got, limit)
		}
	}
}

func TestPruneDeadPhis(t *testing.T) {
	// A loop φ-cycle with no real use: i is updated but never read outside
	// the φ web feeding itself.
	src := `
func @deadphi(%n) {
b0:
  slots 2
  %z = const 0
  slotstore 0, %z
  slotstore 1, %z
  br head
head:
  %i = slotload 0
  %one = const 1
  %i2 = add %i, %one
  slotstore 0, %i2
  %c = slotload 1
  %c2 = cmplt %c, %n
  if %c2 -> head2, exit
head2:
  %c3 = slotload 1
  %c4 = add %c3, %one
  slotstore 1, %c4
  br head
exit:
  %r = slotload 1
  ret %r
}
`
	f := ir.MustParse(src)
	Construct(f)
	if err := VerifyStrict(f); err != nil {
		t.Fatal(err)
	}
	// Slot 0's φ web is used by the add chain (i2 = i+1), which is itself
	// only stored back into slot 0 — but the add is a real (non-φ) use, so
	// the φ stays. Deleting the add first would let pruning collapse it;
	// here we just check pruning never breaks the program.
	before := f.NumValues()
	removed := PruneDeadPhis(f)
	if err := VerifyStrict(f); err != nil {
		t.Fatalf("after pruning: %v", err)
	}
	if removed < 0 || before < removed {
		t.Fatal("nonsense removal count")
	}
	res, err := interp.Run(f, []int64{3}, interp.Options{})
	if err != nil || res.Ret != 3 {
		t.Fatalf("deadphi(3) = %d (%v), want 3", res.Ret, err)
	}
}

func TestVerifyStrictCatchesViolations(t *testing.T) {
	// Use before def in the same block.
	f := ir.NewFunc("bad")
	b0 := f.NewBlock(ir.BlockRet)
	c := b0.NewValueI(ir.OpConst, 1)
	add := b0.NewValue(ir.OpAdd, c, c)
	// Swap so add precedes its operand definition.
	b0.Values[0], b0.Values[1] = b0.Values[1], b0.Values[0]
	_ = add
	if err := VerifyStrict(f); err == nil {
		t.Fatal("VerifyStrict accepted use before def")
	}

	// Use not dominated by def.
	f2 := ir.NewFunc("bad2")
	e := f2.NewBlock(ir.BlockIf)
	l := f2.NewBlock(ir.BlockPlain)
	r := f2.NewBlock(ir.BlockPlain)
	j := f2.NewBlock(ir.BlockRet)
	p := e.NewValueI(ir.OpParam, 0)
	e.SetControl(p)
	e.AddEdgeTo(l)
	e.AddEdgeTo(r)
	x := l.NewValue(ir.OpCopy, p)
	l.AddEdgeTo(j)
	r.AddEdgeTo(j)
	j.NewValue(ir.OpCopy, x) // x does not dominate j
	if err := VerifyStrict(f2); err == nil {
		t.Fatal("VerifyStrict accepted non-dominating use")
	}

	// Leftover slot ops.
	f3 := ir.MustParse(`
func @slots() {
b0:
  slots 1
  %x = slotload 0
  ret %x
}
`)
	if err := VerifyStrict(f3); err == nil {
		t.Fatal("VerifyStrict accepted slot ops")
	}
}
