package ssa

import (
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Construct converts a slot-form function into strict SSA with the
// algorithm of Cytron, Ferrante, Rosen, Wegman and Zadeck: φ-functions are
// placed at the iterated dominance frontier of each slot's definition
// blocks, then a renaming walk over the dominator tree replaces loads with
// the reaching definition and removes all slot operations.
//
// Slots that can be read before any store observe the constant 0: an
// initializing store is added in the entry block on demand, which keeps the
// output strict even for programs (or irreducible goto shapes) where a path
// skips the original initialization.
func Construct(f *ir.Func) {
	if f.NumSlots == 0 {
		return
	}
	g, index := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	if d.NumReachable != len(f.Blocks) {
		panic("ssa: remove unreachable blocks before SSA construction")
	}
	tree := dom.Iterative(g, d)
	df := dom.Frontiers(g, d, tree)
	node := func(b *ir.Block) int { return index[b.ID] }

	nSlots := f.NumSlots

	// Guarantee a definition of every used slot in the entry block, so the
	// renaming stacks are never empty at a load.
	ensureEntryDefs(f)

	// Collect definition blocks per slot.
	defBlocks := make([][]int, nSlots)
	seenDef := make([][]bool, nSlots)
	for s := 0; s < nSlots; s++ {
		seenDef[s] = make([]bool, g.N())
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpSlotStore {
				s := int(v.AuxInt)
				if !seenDef[s][node(b)] {
					seenDef[s][node(b)] = true
					defBlocks[s] = append(defBlocks[s], node(b))
				}
			}
		}
	}

	// φ placement at iterated dominance frontiers (minimal SSA).
	// phiFor[slot][node] is the inserted φ.
	phiFor := make([]map[int]*ir.Value, nSlots)
	for s := 0; s < nSlots; s++ {
		phiFor[s] = map[int]*ir.Value{}
		work := append([]int(nil), defBlocks[s]...)
		onWork := make([]bool, g.N())
		for _, n := range work {
			onWork[n] = true
		}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[n] {
				if phiFor[s][y] != nil {
					continue
				}
				phi := f.Blocks[y].InsertValueFront(ir.OpPhi)
				phiFor[s][y] = phi
				if !onWork[y] {
					onWork[y] = true
					work = append(work, y)
				}
			}
		}
	}

	// Renaming walk over the dominator tree. φ arguments are collected on
	// the side (a φ's argument list must align with predecessor order, and
	// predecessors are visited out of order). phiList fixes the
	// installation order below: installing per map order would be correct
	// but nondeterministic, and the order AddArg records uses is
	// observable — clients that iterate def-use chains to place code
	// (the allocator's spill rewrite) must behave identically run to run.
	stacks := make([][]*ir.Value, nSlots)
	phiArgs := map[*ir.Value][]*ir.Value{}
	var phiList []*ir.Value
	for s := 0; s < nSlots; s++ {
		for n := 0; n < g.N(); n++ {
			if phi := phiFor[s][n]; phi != nil {
				phiArgs[phi] = make([]*ir.Value, len(phi.Block.Preds))
				phiList = append(phiList, phi)
			}
		}
	}

	var walk func(n int)
	walk = func(n int) {
		b := f.Blocks[n]
		var localPush []int // slots pushed in this block, popped on exit
		// φs first: they define their slot.
		for s := 0; s < nSlots; s++ {
			if phi := phiFor[s][n]; phi != nil {
				stacks[s] = append(stacks[s], phi)
				localPush = append(localPush, s)
			}
		}
		// Rewrite the body. Values is mutated (loads/stores removed), so
		// iterate over a snapshot.
		for _, v := range append([]*ir.Value(nil), b.Values...) {
			switch v.Op {
			case ir.OpSlotLoad:
				s := int(v.AuxInt)
				cur := stacks[s][len(stacks[s])-1]
				v.ReplaceUsesWith(cur)
				b.RemoveValue(v)
			case ir.OpSlotStore:
				s := int(v.AuxInt)
				stacks[s] = append(stacks[s], v.Args[0])
				localPush = append(localPush, s)
				b.RemoveValue(v)
			}
		}
		// Feed successor φs through this predecessor edge.
		for _, e := range b.Succs {
			succ := e.B
			predIdx := e.I
			for s := 0; s < nSlots; s++ {
				if phi := phiFor[s][node(succ)]; phi != nil {
					phiArgs[phi][predIdx] = stacks[s][len(stacks[s])-1]
				}
			}
		}
		// Recurse into dominator-tree children.
		for _, c := range tree.Children[n] {
			walk(c)
		}
		// Pop this block's definitions.
		for i := len(localPush) - 1; i >= 0; i-- {
			s := localPush[i]
			stacks[s] = stacks[s][:len(stacks[s])-1]
		}
	}
	walk(0)

	// Install the collected φ arguments, in the deterministic phiList
	// order (slot-major, then CFG node).
	for _, phi := range phiList {
		for _, a := range phiArgs[phi] {
			if a == nil {
				panic("ssa: φ argument not reached by renaming (unreachable predecessor?)")
			}
			phi.AddArg(a)
		}
	}

	f.NumSlots = 0
}

// ensureEntryDefs prepends `const 0; slotstore` for every used slot, so the
// renaming stacks are never empty at a load. The first real store shadows
// the initializer, and unread initializers feed no load, so semantics are
// unchanged except that reads of never-stored slots observe 0 — the same
// semantics the interpreter gives slot storage.
func ensureEntryDefs(f *ir.Func) {
	used := make([]bool, f.NumSlots)
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpSlotLoad || v.Op == ir.OpSlotStore {
			used[v.AuxInt] = true
		}
	})
	entry := f.Entry()
	any := false
	for s := len(used) - 1; s >= 0; s-- {
		if used[s] {
			any = true
		}
	}
	if !any {
		return
	}
	// Build the initializer sequence at the end, then rotate it to the
	// front of the entry block (the entry has no φs to respect, and the
	// initializers use nothing defined before them).
	firstNew := len(entry.Values)
	zero := entry.NewValueI(ir.OpConst, 0)
	zero.Name = "ssa.init0"
	for s := 0; s < len(used); s++ {
		if used[s] {
			entry.NewValueI(ir.OpSlotStore, int64(s), zero)
		}
	}
	entry.RotateValuesToFront(firstNew)
}
