package ssa

import "fastliveness/internal/ir"

// PruneDeadPhis removes φ-functions whose values can never reach a real
// (non-φ) use, including cyclic φ webs that only feed each other. The
// Cytron construction inserts φs at every iterated dominance frontier of a
// store, which is minimal but not pruned; this pass brings it to pruned
// SSA. It returns the number of φs removed.
func PruneDeadPhis(f *ir.Func) int {
	// Mark φs that (transitively) reach a non-φ use or a block control.
	useful := map[*ir.Value]bool{}
	var mark func(v *ir.Value)
	mark = func(v *ir.Value) {
		if v.Op != ir.OpPhi || useful[v] {
			return
		}
		useful[v] = true
		for _, a := range v.Args {
			mark(a)
		}
	}
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpPhi {
			return
		}
		for _, a := range v.Args {
			mark(a)
		}
	})
	for _, b := range f.Blocks {
		if b.Control != nil {
			mark(b.Control)
		}
	}

	// Remove the rest. Dead φs may reference each other, so break their
	// argument links first.
	var dead []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpPhi && !useful[v] {
			dead = append(dead, v)
		}
	})
	for _, v := range dead {
		// Stop using anything, in particular the other dead φs.
		v.ClearArgs()
	}
	for _, v := range dead {
		v.Block.RemoveValue(v)
	}
	return len(dead)
}
