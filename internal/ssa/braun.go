package ssa

import (
	"fastliveness/internal/ir"
)

// ConstructBraun converts a slot-form function into strict SSA with the
// incremental algorithm of Braun, Buchwald, Hack, Leißa, Mallon and Zwinkau
// ("Simple and Efficient Construction of Static Single Assignment Form",
// CC 2013). It requires no dominance information: blocks are filled in
// reverse postorder, a block is sealed once all its predecessors are
// filled, and reads in unsealed blocks create operandless φs completed at
// sealing time. Trivial φs are removed recursively, so the output is
// pruned and, on reducible CFGs, minimal.
func ConstructBraun(f *ir.Func) {
	if f.NumSlots == 0 {
		return
	}
	b := &braun{
		f:          f,
		currentDef: make([]map[*ir.Block]*ir.Value, f.NumSlots),
		sealed:     map[*ir.Block]bool{},
		filled:     map[*ir.Block]bool{},
		incomplete: map[*ir.Block]map[int]*ir.Value{},
		phiSlot:    map[*ir.Value]int{},
		building:   map[*ir.Value]bool{},
		replaced:   map[*ir.Value]*ir.Value{},
	}
	for s := range b.currentDef {
		b.currentDef[s] = map[*ir.Block]*ir.Value{}
	}

	order := reversePostorder(f)
	// The entry can be sealed immediately: it has no predecessors.
	b.sealBlock(f.Entry())
	for _, blk := range order {
		b.fillBlock(blk)
		b.filled[blk] = true
		// Seal every successor whose predecessors are now all filled.
		for _, e := range blk.Succs {
			b.trySeal(e.B)
		}
	}
	// Reverse postorder covers only reachable blocks, so by now every
	// reachable predecessor is filled and everything seals.
	for _, blk := range order {
		b.trySeal(blk)
	}
	if len(b.incomplete) > 0 {
		panic("ssa: blocks with unreachable predecessors; remove unreachable blocks before SSA construction")
	}
	f.NumSlots = 0
}

type braun struct {
	f          *ir.Func
	currentDef []map[*ir.Block]*ir.Value // per slot
	sealed     map[*ir.Block]bool
	filled     map[*ir.Block]bool
	incomplete map[*ir.Block]map[int]*ir.Value // unsealed block -> slot -> φ
	phiSlot    map[*ir.Value]int
	building   map[*ir.Value]bool // φs whose operand lists are being filled
	// replaced forwards removed trivial φs to their replacement; the
	// replacement may itself be removed later, so chains are followed.
	replaced map[*ir.Value]*ir.Value
	zeroInit *ir.Value
}

func (b *braun) trySeal(blk *ir.Block) {
	if b.sealed[blk] {
		return
	}
	for _, e := range blk.Preds {
		if !b.filled[e.B] {
			return
		}
	}
	b.sealBlock(blk)
}

func (b *braun) sealBlock(blk *ir.Block) {
	// Mark sealed and detach the pending map first: operand completion can
	// re-enter readVariable on this very block (self loops, cycles), which
	// must observe the sealed state and the φs' currentDef entries rather
	// than registering fresh incomplete φs that the loop below would miss.
	pending := b.incomplete[blk]
	delete(b.incomplete, blk)
	b.sealed[blk] = true
	for slot, phi := range pending {
		b.addPhiOperands(slot, phi)
	}
}

func (b *braun) fillBlock(blk *ir.Block) {
	for _, v := range append([]*ir.Value(nil), blk.Values...) {
		switch v.Op {
		case ir.OpSlotLoad:
			def := b.readVariable(int(v.AuxInt), blk)
			v.ReplaceUsesWith(def)
			blk.RemoveValue(v)
		case ir.OpSlotStore:
			b.writeVariable(int(v.AuxInt), blk, v.Args[0])
			blk.RemoveValue(v)
		}
	}
}

func (b *braun) writeVariable(slot int, blk *ir.Block, v *ir.Value) {
	b.currentDef[slot][blk] = v
}

func (b *braun) readVariable(slot int, blk *ir.Block) *ir.Value {
	if v := b.currentDef[slot][blk]; v != nil {
		// The cached definition may have been removed as a trivial φ since
		// it was recorded; path-compress to the live replacement.
		v = b.resolve(v)
		b.currentDef[slot][blk] = v
		return v
	}
	return b.readVariableRecursive(slot, blk)
}

func (b *braun) readVariableRecursive(slot int, blk *ir.Block) *ir.Value {
	var v *ir.Value
	switch {
	case !b.sealed[blk]:
		// Incomplete CFG knowledge: place an operandless φ to be completed
		// when the block seals.
		v = blk.InsertValueFront(ir.OpPhi)
		b.phiSlot[v] = slot
		m := b.incomplete[blk]
		if m == nil {
			m = map[int]*ir.Value{}
			b.incomplete[blk] = m
		}
		m[slot] = v
	case len(blk.Preds) == 0:
		// Reading an undefined slot at the entry: it observes 0, matching
		// the interpreter's zero-initialized slot storage.
		v = b.zeroConst()
	case len(blk.Preds) == 1:
		v = b.readVariable(slot, blk.Preds[0].B)
	default:
		// Break potential cycles with an operandless φ before recursing.
		phi := blk.InsertValueFront(ir.OpPhi)
		b.phiSlot[phi] = slot
		b.writeVariable(slot, blk, phi)
		v = b.addPhiOperands(slot, phi)
	}
	b.writeVariable(slot, blk, v)
	return v
}

func (b *braun) addPhiOperands(slot int, phi *ir.Value) *ir.Value {
	// Guard against reentrant triviality checks: while operands are being
	// added, a recursive removal of some operand φ may reach this φ via
	// its use list and misjudge the partial operand list as trivial. Such
	// φs are skipped and re-examined below, once complete.
	b.building[phi] = true
	for _, e := range phi.Block.Preds {
		phi.AddArg(b.readVariable(slot, e.B))
	}
	delete(b.building, phi)
	return b.tryRemoveTrivialPhi(phi)
}

// tryRemoveTrivialPhi removes φs of the shape φ(x, x, φ-itself, x) that
// merge a single value, replacing them by that value and re-examining φ
// users that may have become trivial in turn.
func (b *braun) tryRemoveTrivialPhi(phi *ir.Value) *ir.Value {
	if phi.Block == nil {
		// Already removed by an earlier step of the recursion.
		return phi
	}
	if b.building[phi] {
		// Operand list incomplete; addPhiOperands re-checks when done.
		return phi
	}
	var same *ir.Value
	for _, a := range phi.Args {
		if a == same || a == phi {
			continue // self-reference or duplicate
		}
		if same != nil {
			return phi // merges at least two values: not trivial
		}
		same = a
	}
	if same == nil {
		// Unreachable φ referencing only itself; keep 0 semantics.
		same = b.zeroConst()
	}
	// Collect φ users before rewriting.
	var phiUsers []*ir.Value
	for _, u := range phi.Uses() {
		if u.User != nil && u.User.Op == ir.OpPhi && u.User != phi {
			phiUsers = append(phiUsers, u.User)
		}
	}
	phi.ReplaceUsesWith(same)
	// The φ may be recorded as a current definition; redirect those
	// entries.
	slot := b.phiSlot[phi]
	for blk, def := range b.currentDef[slot] {
		if def == phi {
			b.currentDef[slot][blk] = same
		}
	}
	phi.Block.RemoveValue(phi)
	b.replaced[phi] = same
	for _, u := range phiUsers {
		b.tryRemoveTrivialPhi(u)
	}
	// The recursion may have found `same` itself trivial and removed it;
	// follow the forwarding chain so callers never see a detached value.
	return b.resolve(same)
}

// resolve follows removed-φ forwarding to the live replacement.
func (b *braun) resolve(v *ir.Value) *ir.Value {
	for {
		w := b.replaced[v]
		if w == nil {
			return v
		}
		v = w
	}
}

func (b *braun) zeroConst() *ir.Value {
	if b.zeroInit == nil {
		entry := b.f.Entry()
		z := entry.NewValueI(ir.OpConst, 0)
		z.Name = "braun.init0"
		// Move it to the front so every later value may use it.
		entry.RotateValuesToFront(len(entry.Values) - 1)
		b.zeroInit = z
	}
	return b.zeroInit
}

// reversePostorder lists the reachable blocks, entry first.
func reversePostorder(f *ir.Func) []*ir.Block {
	seen := map[*ir.Block]bool{f.Entry(): true}
	var post []*ir.Block
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: f.Entry()}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(fr.b.Succs) {
			s := fr.b.Succs[fr.next].B
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
