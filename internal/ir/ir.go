package ir

import (
	"fmt"
	"sync/atomic"
)

// Func is a single function: a CFG of blocks. Blocks[0] is the entry.
//
// Every mutation method classifies itself into one of two edit classes and
// bumps the matching monotonic epoch: CFG edits (block or edge add/remove,
// edge splitting) advance CFGEpoch, instruction edits (value insert/remove,
// operand or control rewrites, in-block reordering) advance InstrEpoch.
// Analyses snapshot the epochs they were computed at, so staleness is a
// counter comparison instead of a calling convention — the paper's §4
// contract ("CFG-only precomputation survives instruction edits") becomes
// checkable at runtime (see internal/backend.Stale).
type Func struct {
	Name string
	// Blocks in creation order; Blocks[0] is the entry block r.
	Blocks []*Block
	// NumSlots is the number of mutable variable slots a slot-form program
	// uses. Pure SSA functions have 0 or simply no slot ops left.
	NumSlots int

	nextValueID int
	nextBlockID int

	// cfgEpoch and instrEpoch count the two edit classes. They only ever
	// increase; any single mutation may advance its epoch by more than one
	// (compound edits count their parts). The counters are atomic so a
	// staleness check (an epoch load) may race a mutation on another
	// goroutine without torn reads — this is the lock-free seam the
	// program-level engine's per-query freshness test rides on. The IR
	// structure itself is NOT synchronized: a bumped epoch says "an edit
	// happened", it does not make concurrent structural reads safe, so
	// functions must still not be edited concurrently with IR walks
	// (the engine's Edit method provides that exclusion when needed).
	cfgEpoch   atomic.Uint64
	instrEpoch atomic.Uint64
}

// CFGEpoch returns the function's CFG edit counter: it advances whenever
// blocks or edges are added, removed or split. Analyses of every
// invalidation class are stale once it moves. The load is atomic and may
// race mutations on other goroutines.
func (f *Func) CFGEpoch() uint64 { return f.cfgEpoch.Load() }

// InstrEpoch returns the function's instruction edit counter: it advances
// whenever values are inserted, removed or reordered, or operands
// (including φ operands and block controls) are rewritten. Only analyses
// that materialize per-block sets are stale when it moves; the paper's
// checker survives. The load is atomic and may race mutations on other
// goroutines.
func (f *Func) InstrEpoch() uint64 { return f.instrEpoch.Load() }

// bumpCFG records a CFG edit. The bump is published after the structural
// change in program order; see the field comment for what that does and
// does not guarantee.
func (f *Func) bumpCFG() { f.cfgEpoch.Add(1) }

// bumpInstr records an instruction edit.
func (f *Func) bumpInstr() { f.instrEpoch.Add(1) }

// NewFunc returns an empty function with the given name.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewBlock appends a fresh block with the given kind (a CFG edit).
func (f *Func) NewBlock(kind BlockKind) *Block {
	b := &Block{ID: f.nextBlockID, Kind: kind, Func: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	f.bumpCFG()
	return b
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NumValues returns an upper bound on value IDs (IDs are dense in creation
// order and never reused, so this is the universe size for ID-indexed
// tables).
func (f *Func) NumValues() int { return f.nextValueID }

// NumBlocks returns an upper bound on block IDs.
func (f *Func) NumBlocks() int { return f.nextBlockID }

// Values calls fn for every value in every block, in block and program
// order.
func (f *Func) Values(fn func(v *Value)) {
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			fn(v)
		}
	}
}

// ValueByName returns the first value whose Name is name, or nil. Intended
// for tests and tools working on parsed programs.
func (f *Func) ValueByName(name string) *Value {
	var found *Value
	f.Values(func(v *Value) {
		if found == nil && v.Name == name {
			found = v
		}
	})
	return found
}

// BlockByName returns the block with the given printed name, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.name() == name {
			return b
		}
	}
	return nil
}

// Edge is one half of a CFG edge. In Block.Succs, an Edge holds the
// destination block B and the index I of the reverse entry in B.Preds;
// in Block.Preds it holds the source block and the index into its Succs.
// The cross-indices keep φ argument positions stable even with duplicate
// edges and under edge splitting.
type Edge struct {
	B *Block
	I int
}

// Block is a basic block: a list of values ended by an implicit terminator
// described by Kind and Control.
type Block struct {
	ID   int
	Kind BlockKind
	Func *Func
	// Name is an optional label (parser-assigned); printing falls back to
	// b<ID>.
	Name string

	// Values in program order. All φs must come first.
	Values []*Value

	// Control is the terminator operand: the condition for BlockIf and
	// BlockSwitch, the optional result for BlockRet, nil for BlockPlain.
	Control *Value

	Succs []Edge
	Preds []Edge
}

func (b *Block) name() string {
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("b%d", b.ID)
}

// String returns the block's printed label.
func (b *Block) String() string { return b.name() }

// AddEdgeTo wires a CFG edge from b to c, maintaining cross-indices (a CFG
// edit).
func (b *Block) AddEdgeTo(c *Block) {
	i := len(b.Succs)
	j := len(c.Preds)
	b.Succs = append(b.Succs, Edge{c, j})
	c.Preds = append(c.Preds, Edge{b, i})
	b.Func.bumpCFG()
}

// NumPreds returns the predecessor count.
func (b *Block) NumPreds() int { return len(b.Preds) }

// NumSuccs returns the successor count.
func (b *Block) NumSuccs() int { return len(b.Succs) }

// Phis returns the leading φ values of the block.
func (b *Block) Phis() []*Value {
	n := 0
	for n < len(b.Values) && b.Values[n].Op == OpPhi {
		n++
	}
	return b.Values[:n]
}

// Use records a single use of a value: either by another value (User != nil,
// operand position Index) or as a block's control operand (UserBlock !=
// nil).
type Use struct {
	User      *Value
	Index     int
	UserBlock *Block
}

// Value is one SSA value / instruction.
type Value struct {
	ID    int
	Op    Op
	Block *Block
	Args  []*Value

	// AuxInt carries the constant for OpConst, the parameter index for
	// OpParam and the slot number for slot ops.
	AuxInt int64
	// AuxStr carries the callee name for OpCall.
	AuxStr string
	// Name is an optional human-readable name used by the printer/parser
	// (e.g. the pre-SSA variable it came from, "x3").
	Name string

	uses []Use
}

// String returns the printed operand name of the value.
func (v *Value) String() string {
	if v == nil {
		return "%<nil>"
	}
	if v.Name != "" {
		return "%" + v.Name
	}
	return fmt.Sprintf("%%v%d", v.ID)
}

// NewValue appends a value with the given op and arguments to b.
func (b *Block) NewValue(op Op, args ...*Value) *Value {
	return b.NewValueAux(op, 0, "", args...)
}

// NewValueI appends a value carrying AuxInt.
func (b *Block) NewValueI(op Op, auxInt int64, args ...*Value) *Value {
	return b.NewValueAux(op, auxInt, "", args...)
}

// NewValueAux appends a value with explicit aux fields.
func (b *Block) NewValueAux(op Op, auxInt int64, auxStr string, args ...*Value) *Value {
	v := b.newDetached(op, auxInt, auxStr, args...)
	b.Values = append(b.Values, v)
	return v
}

// newDetached allocates a value owned by b but not yet placed in b.Values.
// It bumps InstrEpoch on behalf of every placement path (NewValue*,
// InsertValue*).
func (b *Block) newDetached(op Op, auxInt int64, auxStr string, args ...*Value) *Value {
	f := b.Func
	v := &Value{ID: f.nextValueID, Op: op, Block: b, AuxInt: auxInt, AuxStr: auxStr}
	f.nextValueID++
	f.bumpInstr()
	for _, a := range args {
		v.AddArg(a)
	}
	return v
}

// InsertValueFront places a new value at the front of the block, before any
// existing values — used for φ insertion, which must precede ordinary
// values.
func (b *Block) InsertValueFront(op Op, args ...*Value) *Value {
	v := b.newDetached(op, 0, "", args...)
	b.Values = append(b.Values, nil)
	copy(b.Values[1:], b.Values)
	b.Values[0] = v
	return v
}

// InsertValueAt places a new value at index i of the block's value list;
// existing values at i and later shift right. The caller is responsible for
// keeping the φ-prefix invariant (never insert a non-φ before a φ). Spill
// code insertion uses it to place stores right after definitions and
// reloads right before uses.
func (b *Block) InsertValueAt(i int, op Op, auxInt int64, args ...*Value) *Value {
	v := b.newDetached(op, auxInt, "", args...)
	b.Values = append(b.Values, nil)
	copy(b.Values[i+1:], b.Values[i:])
	b.Values[i] = v
	return v
}

// InsertValueAfterPhis places a new value right after the block's φs.
func (b *Block) InsertValueAfterPhis(op Op, args ...*Value) *Value {
	v := b.newDetached(op, 0, "", args...)
	n := len(b.Phis())
	b.Values = append(b.Values, nil)
	copy(b.Values[n+1:], b.Values[n:])
	b.Values[n] = v
	return v
}

// AddArg appends a to v's arguments and records the use (an instruction
// edit: it extends a's def-use chain, e.g. a φ operand for a new
// predecessor).
func (v *Value) AddArg(a *Value) {
	if a == nil {
		panic("ir: nil argument")
	}
	if a.Block == nil {
		panic("ir: argument " + a.String() + " is detached (removed from its block)")
	}
	a.uses = append(a.uses, Use{User: v, Index: len(v.Args)})
	v.Args = append(v.Args, a)
	a.Block.Func.bumpInstr()
}

// SetArg replaces argument i with a, updating use lists (an instruction
// edit — this is how φ operands and ordinary operands are rewritten).
func (v *Value) SetArg(i int, a *Value) {
	if a.Block == nil {
		panic("ir: argument " + a.String() + " is detached (removed from its block)")
	}
	old := v.Args[i]
	old.removeUse(Use{User: v, Index: i})
	v.Args[i] = a
	a.uses = append(a.uses, Use{User: v, Index: i})
	a.Block.Func.bumpInstr()
}

// ClearArgs removes all of v's arguments, maintaining use lists. Passes use
// it to unlink values (e.g. dead φ webs) before removal. An instruction
// edit.
func (v *Value) ClearArgs() { v.resetArgs() }

// resetArgs removes all of v's argument use records and clears Args.
func (v *Value) resetArgs() {
	for i, a := range v.Args {
		a.removeUse(Use{User: v, Index: i})
	}
	if len(v.Args) > 0 && v.Block != nil {
		v.Block.Func.bumpInstr()
	}
	v.Args = v.Args[:0]
}

func (a *Value) removeUse(u Use) {
	for i, x := range a.uses {
		if x.User == u.User && x.Index == u.Index && x.UserBlock == u.UserBlock {
			a.uses[i] = a.uses[len(a.uses)-1]
			a.uses = a.uses[:len(a.uses)-1]
			return
		}
	}
	panic("ir: use record not found for " + a.String())
}

// SetControl sets b's control operand, maintaining the operand's use list
// (an instruction edit: it rewrites a use, not the edge structure).
func (b *Block) SetControl(v *Value) {
	if b.Control != nil {
		b.Control.removeUse(Use{UserBlock: b})
	}
	b.Control = v
	if v != nil {
		v.uses = append(v.uses, Use{UserBlock: b})
	}
	b.Func.bumpInstr()
}

// Uses returns the current use records of v. The slice aliases internal
// storage and is invalidated by mutations.
func (v *Value) Uses() []Use { return v.uses }

// NumUses returns how many places use v.
func (v *Value) NumUses() int { return len(v.uses) }

// UseBlockIDs appends to dst the IDs of the blocks where v is used,
// following paper Definition 1: a non-φ use at the user's block, a φ use at
// the φ block's corresponding predecessor, a control use at the controlling
// block. Duplicates are possible; callers that need distinct blocks dedup.
func (v *Value) UseBlockIDs(dst []int) []int {
	for _, u := range v.uses {
		switch {
		case u.UserBlock != nil:
			dst = append(dst, u.UserBlock.ID)
		case u.User.Op == OpPhi:
			dst = append(dst, u.User.Block.Preds[u.Index].B.ID)
		default:
			dst = append(dst, u.User.Block.ID)
		}
	}
	return dst
}

// ReplaceUsesWith rewrites every use of v to use w instead.
func (v *Value) ReplaceUsesWith(w *Value) {
	if v == w {
		return
	}
	for len(v.uses) > 0 {
		u := v.uses[len(v.uses)-1]
		if u.UserBlock != nil {
			u.UserBlock.SetControl(w)
		} else {
			u.User.SetArg(u.Index, w)
		}
	}
}

// RemoveValue deletes v from its block (an instruction edit). v must have
// no remaining uses.
func (b *Block) RemoveValue(v *Value) {
	for i, x := range b.Values {
		if x == v {
			b.RemoveValueAt(i)
			return
		}
	}
	panic("ir: value not found in its block")
}

// RemoveValueAt deletes the value at index i of the block's value list,
// returning it (an instruction edit). The value must have no remaining
// uses; its own argument uses are unlinked. After removal the value is
// detached (Block == nil) and must not be used as an operand again.
func (b *Block) RemoveValueAt(i int) *Value {
	v := b.Values[i]
	if len(v.uses) != 0 {
		panic("ir: removing value that still has uses: " + v.String())
	}
	v.resetArgs()
	copy(b.Values[i:], b.Values[i+1:])
	b.Values = b.Values[:len(b.Values)-1]
	v.Block = nil
	b.Func.bumpInstr()
	return v
}

// RotateValuesToFront moves the values at indices [i, len) to the front of
// the block, preserving both sub-orders (an instruction edit). SSA
// construction uses it to place freshly appended entry-block initializers
// before the body. The caller is responsible for the φ-prefix invariant
// and for intra-block dominance (the rotated values must not use values
// they are moved in front of).
func (b *Block) RotateValuesToFront(i int) {
	if i <= 0 || i >= len(b.Values) {
		return
	}
	tail := append([]*Value(nil), b.Values[i:]...)
	copy(b.Values[len(tail):], b.Values[:i])
	copy(b.Values, tail)
	b.Func.bumpInstr()
}

// ValueIndex returns v's position within its block, or -1.
func (b *Block) ValueIndex(v *Value) int {
	for i, x := range b.Values {
		if x == v {
			return i
		}
	}
	return -1
}

// SplitEdge splits the CFG edge b.Succs[si], inserting and returning a new
// BlockPlain block (a CFG edit). φ argument positions in the destination
// are preserved because the destination's pred slot is reused in place.
// Splitting critical edges before SSA destruction avoids the classic
// lost-copy and swap problems.
func (b *Block) SplitEdge(si int) *Block {
	c := b.Succs[si].B
	pi := b.Succs[si].I
	e := b.Func.NewBlock(BlockPlain)
	b.Succs[si] = Edge{e, 0}
	e.Preds = []Edge{{b, si}}
	e.Succs = []Edge{{c, pi}}
	c.Preds[pi] = Edge{e, 0}
	b.Func.bumpCFG()
	return e
}

// SplitCriticalEdges splits every edge whose source has multiple successors
// and whose destination has multiple predecessors. It returns the number of
// edges split.
func (f *Func) SplitCriticalEdges() int {
	n := 0
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for si := 0; si < len(b.Succs); si++ {
			if len(b.Succs[si].B.Preds) >= 2 {
				b.SplitEdge(si)
				n++
			}
		}
	}
	return n
}

// RemoveBlock deletes an empty, fully disconnected block from the function
// (a CFG edit).
func (f *Func) RemoveBlock(b *Block) {
	if len(b.Preds) != 0 || len(b.Succs) != 0 || len(b.Values) != 0 || b.Control != nil {
		panic("ir: RemoveBlock on a block that is still wired or non-empty")
	}
	for i, x := range f.Blocks {
		if x == b {
			copy(f.Blocks[i:], f.Blocks[i+1:])
			f.Blocks = f.Blocks[:len(f.Blocks)-1]
			f.bumpCFG()
			return
		}
	}
	panic("ir: block not in function")
}

// Params returns the OpParam values of the entry block in parameter order.
func (f *Func) Params() []*Value {
	var ps []*Value
	for _, v := range f.Entry().Values {
		if v.Op == OpParam {
			ps = append(ps, v)
		}
	}
	return ps
}
