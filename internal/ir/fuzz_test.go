package ir

import "testing"

// FuzzParse checks that the parser never panics and that anything it
// accepts survives verification and a print/parse round trip.
// Run the corpus as a plain test with `go test`, or fuzz with
// `go test -fuzz FuzzParse ./internal/ir`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func @f() {\nb0:\n ret\n}",
		"func @f(%a, %b) {\nb0:\n %x = add %a, %b\n ret %x\n}",
		"func @l(%n) {\nh:\n %i = phi [%n, h]\n br h\n}",
		"func @s() {\nb0:\n slots 2\n %c = const 1\n slotstore 0, %c\n %l = slotload 0\n ret %l\n}",
		"func @w(%x) {\nb0:\n switch %x -> b1, b1\nb1:\n %m = phi [%x, b0], [%x, b0]\n ret %m\n}",
		"func @bad() {\nb0:\n %x = frobnicate\n}",
		"func @f() {\nb0:\n if %q -> b0, b0\n}",
		"func @\xff() {}",
		"func @f() {\nb0: ; preds: b0\n br b0\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as there was no panic
		}
		// Accepted input must be structurally sound…
		if err := Verify(fn); err != nil {
			t.Fatalf("parser accepted unverifiable program: %v\ninput:\n%s", err, src)
		}
		// …and printable + reparsable to a fixed point.
		p1 := Print(fn)
		fn2, err := Parse(p1)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\nprinted:\n%s", err, p1)
		}
		if p2 := Print(fn2); p2 != p1 {
			t.Fatalf("print not a fixed point:\n--- first\n%s\n--- second\n%s", p1, p2)
		}
	})
}
