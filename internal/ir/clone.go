package ir

// Clone returns a deep copy of f: fresh blocks and values with identical
// IDs, ops, aux data, arguments, controls and edges. The copy shares
// nothing with the original, so passes may destroy one while tests compare
// against the other.
func Clone(f *Func) *Func {
	nf := &Func{
		Name:        f.Name,
		NumSlots:    f.NumSlots,
		nextValueID: f.nextValueID,
		nextBlockID: f.nextBlockID,
	}
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	valueMap := make(map[*Value]*Value, f.nextValueID)
	for _, b := range f.Blocks {
		nb := &Block{
			ID:   b.ID,
			Kind: b.Kind,
			Func: nf,
			Name: b.Name,
		}
		nf.Blocks = append(nf.Blocks, nb)
		blockMap[b] = nb
	}
	// Create values without args first so forward references (φs) resolve.
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, v := range b.Values {
			nv := &Value{
				ID:     v.ID,
				Op:     v.Op,
				Block:  nb,
				AuxInt: v.AuxInt,
				AuxStr: v.AuxStr,
				Name:   v.Name,
			}
			nb.Values = append(nb.Values, nv)
			valueMap[v] = nv
		}
	}
	// Edges preserve cross-indices by construction (same order).
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, e := range b.Succs {
			nb.Succs = append(nb.Succs, Edge{blockMap[e.B], e.I})
		}
		for _, e := range b.Preds {
			nb.Preds = append(nb.Preds, Edge{blockMap[e.B], e.I})
		}
	}
	// Arguments and controls, with use-list maintenance.
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for i, v := range b.Values {
			nv := nb.Values[i]
			for _, a := range v.Args {
				nv.AddArg(valueMap[a])
			}
		}
		if b.Control != nil {
			nb.SetControl(valueMap[b.Control])
		}
	}
	return nf
}
