package ir

import "fmt"

// Verify checks the structural invariants of f and returns the first
// violation found, or nil. It does not check SSA strictness (definition
// dominates use); that needs a dominator tree and lives in package ssa.
//
// Invariants checked:
//   - the entry block has no predecessors (the paper's r),
//   - block kind matches successor arity and control presence,
//   - edge cross-indices are mutually consistent,
//   - φs come first in their block and have one argument per predecessor,
//   - fixed-arity ops have the right number of arguments, none nil,
//   - use lists exactly mirror Args/Control references,
//   - values belong to the block that contains them, IDs are unique,
//   - slot references stay below Func.NumSlots.
//
// Verify runs before every analysis precompute (backend.Prepare), so it is
// on the hot path of every engine build and rebuild. All bookkeeping is
// ID-indexed slices — IDs are small dense ints assigned by the function's
// own counters — and no error string is formatted until a violation is
// found, so a verification pass costs O(blocks + values + references) with
// no map traffic and no allocation beyond the three scratch slices.
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	if len(f.Entry().Preds) != 0 {
		return fmt.Errorf("%s: entry block %s has predecessors", f.Name, f.Entry())
	}

	// Block identity: placed blocks, ID-indexed. IDs outside the counter's
	// range mean corrupt bookkeeping (NewBlock assigns them densely).
	maxBlockID := -1
	for _, b := range f.Blocks {
		if b.ID < 0 || b.ID >= f.nextBlockID {
			return fmt.Errorf("%s: block with ID %d outside [0,%d)", f.Name, b.ID, f.nextBlockID)
		}
		if b.ID > maxBlockID {
			maxBlockID = b.ID
		}
	}
	seenBlock := make([]*Block, maxBlockID+1)
	for _, b := range f.Blocks {
		if b.Func != f {
			return fmt.Errorf("%s: block %s belongs to wrong func", f.Name, b)
		}
		if seenBlock[b.ID] != nil {
			return fmt.Errorf("%s: duplicate block ID %d", f.Name, b.ID)
		}
		seenBlock[b.ID] = b
		if err := verifyBlockShape(f, b); err != nil {
			return err
		}
	}

	// Edge cross-index consistency, both directions.
	for _, b := range f.Blocks {
		for i, e := range b.Succs {
			if e.B == nil {
				return fmt.Errorf("%s: %s succ %d is nil", f.Name, b, i)
			}
			if e.I >= len(e.B.Preds) || e.B.Preds[e.I].B != b || e.B.Preds[e.I].I != i {
				return fmt.Errorf("%s: edge %s->%s: succ cross-index broken", f.Name, b, e.B)
			}
		}
		for j, e := range b.Preds {
			if e.B == nil {
				return fmt.Errorf("%s: %s pred %d is nil", f.Name, b, j)
			}
			if e.I >= len(e.B.Succs) || e.B.Succs[e.I].B != b || e.B.Succs[e.I].I != j {
				return fmt.Errorf("%s: edge %s<-%s: pred cross-index broken", f.Name, b, e.B)
			}
		}
	}

	// Value identity: placed values, ID-indexed like blocks, plus a
	// per-value count of incoming references (arguments and block controls)
	// that the use lists must match.
	maxValueID := -1
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.ID < 0 || v.ID >= f.nextValueID {
				return fmt.Errorf("%s: value with ID %d outside [0,%d)", f.Name, v.ID, f.nextValueID)
			}
			if v.ID > maxValueID {
				maxValueID = v.ID
			}
		}
	}
	seenValue := make([]*Value, maxValueID+1)
	refCount := make([]int32, maxValueID+1)
	placed := func(a *Value) bool {
		return a.ID >= 0 && a.ID <= maxValueID && seenValue[a.ID] == a
	}

	for _, b := range f.Blocks {
		inPhis := true
		for _, v := range b.Values {
			if v.Block != b {
				return fmt.Errorf("%s: value %s in %s has Block=%v", f.Name, v, b, v.Block)
			}
			if prev := seenValue[v.ID]; prev != nil {
				return fmt.Errorf("%s: duplicate value ID %d (%s, %s)", f.Name, v.ID, prev, v)
			}
			seenValue[v.ID] = v
			if v.Op == OpPhi {
				if !inPhis {
					return fmt.Errorf("%s: φ %s in %s appears after non-φ values", f.Name, v, b)
				}
				if len(v.Args) != len(b.Preds) {
					return fmt.Errorf("%s: φ %s in %s has %d args for %d preds",
						f.Name, v, b, len(v.Args), len(b.Preds))
				}
			} else {
				inPhis = false
				if want := v.Op.ArgLen(); want >= 0 && len(v.Args) != want {
					return fmt.Errorf("%s: %s (%s) has %d args, want %d",
						f.Name, v, v.Op, len(v.Args), want)
				}
			}
			if v.Op == OpParam && b != f.Entry() {
				return fmt.Errorf("%s: param %s outside entry block", f.Name, v)
			}
			if (v.Op == OpSlotLoad || v.Op == OpSlotStore) &&
				(v.AuxInt < 0 || v.AuxInt >= int64(f.NumSlots)) {
				return fmt.Errorf("%s: %s references slot %d outside [0,%d)",
					f.Name, v, v.AuxInt, f.NumSlots)
			}
			for i, a := range v.Args {
				if a == nil {
					return fmt.Errorf("%s: %s arg %d is nil", f.Name, v, i)
				}
				if !a.Op.HasResult() {
					return fmt.Errorf("%s: %s uses result-less value %s", f.Name, v, a)
				}
				if a.ID >= 0 && a.ID <= maxValueID {
					refCount[a.ID]++ // detached targets are rejected below
				}
			}
		}
		if b.Control != nil {
			if !b.Control.Op.HasResult() {
				return fmt.Errorf("%s: %s control %s has no result", f.Name, b, b.Control)
			}
			if c := b.Control; c.ID >= 0 && c.ID <= maxValueID {
				refCount[c.ID]++
			}
		}
	}

	// Every reference must appear exactly once in the target's use list, and
	// nothing else may: use counts match reference counts, and every use
	// record resolves to an actual in-function reference. (Note refCount is
	// filled during the same walk that populates seenValue, so a value's
	// count is only trustworthy once the walk is complete — which it is
	// here.)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if len(v.uses) != int(refCount[v.ID]) {
				return fmt.Errorf("%s: %s has %d use records, want %d",
					f.Name, v, len(v.uses), refCount[v.ID])
			}
			for _, u := range v.uses {
				switch {
				case u.User != nil && u.UserBlock == nil:
					if !placed(u.User) || u.Index < 0 || u.Index >= len(u.User.Args) ||
						u.User.Args[u.Index] != v {
						return fmt.Errorf("%s: %s has stray use record %+v", f.Name, v, u)
					}
				case u.User == nil && u.UserBlock != nil:
					ub := u.UserBlock
					if u.Index != 0 || ub.ID < 0 || ub.ID > maxBlockID ||
						seenBlock[ub.ID] != ub || ub.Control != v {
						return fmt.Errorf("%s: %s has stray use record %+v", f.Name, v, u)
					}
				default:
					return fmt.Errorf("%s: %s has stray use record %+v", f.Name, v, u)
				}
			}
		}
	}

	// Arguments and controls must be values that are placed in some block of
	// this function. (Format the reference description only on failure —
	// this loop runs per argument of every value.)
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			for _, a := range v.Args {
				if !placed(a) {
					return fmt.Errorf("%s: %s references detached value %s", f.Name, v, a)
				}
			}
		}
		if a := b.Control; a != nil && !placed(a) {
			return fmt.Errorf("%s: %s control references detached value %s", f.Name, b, a)
		}
	}
	return nil
}

func verifyBlockShape(f *Func, b *Block) error {
	switch b.Kind {
	case BlockPlain:
		if len(b.Succs) != 1 {
			return fmt.Errorf("%s: plain block %s has %d successors", f.Name, b, len(b.Succs))
		}
		if b.Control != nil {
			return fmt.Errorf("%s: plain block %s has a control value", f.Name, b)
		}
	case BlockIf:
		if len(b.Succs) != 2 {
			return fmt.Errorf("%s: if block %s has %d successors", f.Name, b, len(b.Succs))
		}
		if b.Control == nil {
			return fmt.Errorf("%s: if block %s has no control value", f.Name, b)
		}
	case BlockSwitch:
		if len(b.Succs) < 1 {
			return fmt.Errorf("%s: switch block %s has no successors", f.Name, b)
		}
		if b.Control == nil {
			return fmt.Errorf("%s: switch block %s has no control value", f.Name, b)
		}
	case BlockRet:
		if len(b.Succs) != 0 {
			return fmt.Errorf("%s: ret block %s has %d successors", f.Name, b, len(b.Succs))
		}
	default:
		return fmt.Errorf("%s: block %s has invalid kind %d", f.Name, b, int(b.Kind))
	}
	return nil
}
