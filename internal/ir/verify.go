package ir

import "fmt"

// Verify checks the structural invariants of f and returns the first
// violation found, or nil. It does not check SSA strictness (definition
// dominates use); that needs a dominator tree and lives in package ssa.
//
// Invariants checked:
//   - the entry block has no predecessors (the paper's r),
//   - block kind matches successor arity and control presence,
//   - edge cross-indices are mutually consistent,
//   - φs come first in their block and have one argument per predecessor,
//   - fixed-arity ops have the right number of arguments, none nil,
//   - use lists exactly mirror Args/Control references,
//   - values belong to the block that contains them, IDs are unique,
//   - slot references stay below Func.NumSlots.
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: function has no blocks", f.Name)
	}
	if len(f.Entry().Preds) != 0 {
		return fmt.Errorf("%s: entry block %s has predecessors", f.Name, f.Entry())
	}

	seenBlockID := map[int]bool{}
	for _, b := range f.Blocks {
		if b.Func != f {
			return fmt.Errorf("%s: block %s belongs to wrong func", f.Name, b)
		}
		if seenBlockID[b.ID] {
			return fmt.Errorf("%s: duplicate block ID %d", f.Name, b.ID)
		}
		seenBlockID[b.ID] = true
		if err := verifyBlockShape(f, b); err != nil {
			return err
		}
	}

	// Edge cross-index consistency, both directions.
	for _, b := range f.Blocks {
		for i, e := range b.Succs {
			if e.B == nil {
				return fmt.Errorf("%s: %s succ %d is nil", f.Name, b, i)
			}
			if e.I >= len(e.B.Preds) || e.B.Preds[e.I].B != b || e.B.Preds[e.I].I != i {
				return fmt.Errorf("%s: edge %s->%s: succ cross-index broken", f.Name, b, e.B)
			}
		}
		for j, e := range b.Preds {
			if e.B == nil {
				return fmt.Errorf("%s: %s pred %d is nil", f.Name, b, j)
			}
			if e.I >= len(e.B.Succs) || e.B.Succs[e.I].B != b || e.B.Succs[e.I].I != j {
				return fmt.Errorf("%s: edge %s<-%s: pred cross-index broken", f.Name, b, e.B)
			}
		}
	}

	// Value invariants and use-list bookkeeping.
	type useKey struct {
		user      *Value
		index     int
		userBlock *Block
	}
	wantUses := map[*Value]map[useKey]bool{}
	record := func(a *Value, k useKey) {
		m := wantUses[a]
		if m == nil {
			m = map[useKey]bool{}
			wantUses[a] = m
		}
		if m[k] {
			panic("ir.Verify: duplicate use key") // impossible by construction
		}
		m[k] = true
	}

	seenValueID := map[int]*Value{}
	for _, b := range f.Blocks {
		inPhis := true
		for _, v := range b.Values {
			if v.Block != b {
				return fmt.Errorf("%s: value %s in %s has Block=%v", f.Name, v, b, v.Block)
			}
			if prev, dup := seenValueID[v.ID]; dup {
				return fmt.Errorf("%s: duplicate value ID %d (%s, %s)", f.Name, v.ID, prev, v)
			}
			seenValueID[v.ID] = v
			if v.Op == OpPhi {
				if !inPhis {
					return fmt.Errorf("%s: φ %s in %s appears after non-φ values", f.Name, v, b)
				}
				if len(v.Args) != len(b.Preds) {
					return fmt.Errorf("%s: φ %s in %s has %d args for %d preds",
						f.Name, v, b, len(v.Args), len(b.Preds))
				}
			} else {
				inPhis = false
				if want := v.Op.ArgLen(); want >= 0 && len(v.Args) != want {
					return fmt.Errorf("%s: %s (%s) has %d args, want %d",
						f.Name, v, v.Op, len(v.Args), want)
				}
			}
			if v.Op == OpParam && b != f.Entry() {
				return fmt.Errorf("%s: param %s outside entry block", f.Name, v)
			}
			if (v.Op == OpSlotLoad || v.Op == OpSlotStore) &&
				(v.AuxInt < 0 || v.AuxInt >= int64(f.NumSlots)) {
				return fmt.Errorf("%s: %s references slot %d outside [0,%d)",
					f.Name, v, v.AuxInt, f.NumSlots)
			}
			for i, a := range v.Args {
				if a == nil {
					return fmt.Errorf("%s: %s arg %d is nil", f.Name, v, i)
				}
				if !a.Op.HasResult() {
					return fmt.Errorf("%s: %s uses result-less value %s", f.Name, v, a)
				}
				record(a, useKey{user: v, index: i})
			}
		}
		if b.Control != nil {
			if !b.Control.Op.HasResult() {
				return fmt.Errorf("%s: %s control %s has no result", f.Name, b, b.Control)
			}
			record(b.Control, useKey{userBlock: b})
		}
	}

	// Every recorded reference must appear exactly once in the use list, and
	// nothing else may.
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			want := wantUses[v]
			if len(v.uses) != len(want) {
				return fmt.Errorf("%s: %s has %d use records, want %d",
					f.Name, v, len(v.uses), len(want))
			}
			for _, u := range v.uses {
				if !want[useKey{user: u.User, index: u.Index, userBlock: u.UserBlock}] {
					return fmt.Errorf("%s: %s has stray use record %+v", f.Name, v, u)
				}
			}
		}
	}

	// Arguments and controls must be values that are placed in some block of
	// this function.
	for _, b := range f.Blocks {
		check := func(a *Value, what string) error {
			if a.Block == nil || seenValueID[a.ID] != a {
				return fmt.Errorf("%s: %s references detached value %s", f.Name, what, a)
			}
			return nil
		}
		for _, v := range b.Values {
			for _, a := range v.Args {
				if err := check(a, v.String()); err != nil {
					return err
				}
			}
		}
		if b.Control != nil {
			if err := check(b.Control, b.String()+" control"); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyBlockShape(f *Func, b *Block) error {
	switch b.Kind {
	case BlockPlain:
		if len(b.Succs) != 1 {
			return fmt.Errorf("%s: plain block %s has %d successors", f.Name, b, len(b.Succs))
		}
		if b.Control != nil {
			return fmt.Errorf("%s: plain block %s has a control value", f.Name, b)
		}
	case BlockIf:
		if len(b.Succs) != 2 {
			return fmt.Errorf("%s: if block %s has %d successors", f.Name, b, len(b.Succs))
		}
		if b.Control == nil {
			return fmt.Errorf("%s: if block %s has no control value", f.Name, b)
		}
	case BlockSwitch:
		if len(b.Succs) < 1 {
			return fmt.Errorf("%s: switch block %s has no successors", f.Name, b)
		}
		if b.Control == nil {
			return fmt.Errorf("%s: switch block %s has no control value", f.Name, b)
		}
	case BlockRet:
		if len(b.Succs) != 0 {
			return fmt.Errorf("%s: ret block %s has %d successors", f.Name, b, len(b.Succs))
		}
	default:
		return fmt.Errorf("%s: block %s has invalid kind %d", f.Name, b, int(b.Kind))
	}
	return nil
}
