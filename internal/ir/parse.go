package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a function in the textual format produced by Print. Everything
// after ';' on a line is a comment. The first labeled block is the entry.
// φ arguments are matched to predecessors by block label, so the textual
// order of φ operands does not need to match edge order.
func Parse(src string) (*Func, error) {
	p := &parser{
		vals:   map[string]*Value{},
		blocks: map[string]*Block{},
	}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.f, nil
}

// MustParse is Parse for tests and examples with known-good sources.
func MustParse(src string) *Func {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type phiOperand struct {
	valName   string
	blockName string
}

type valueFixup struct {
	v    *Value
	ln   int
	args []string     // non-φ operand names (without %)
	phi  []phiOperand // φ operands
}

type termFixup struct {
	b       *Block
	ln      int
	kind    BlockKind
	control string // value name or ""
	succs   []string
}

type parser struct {
	f      *Func
	vals   map[string]*Value
	blocks map[string]*Block
	cur    *Block
	vfix   []valueFixup
	tfix   []termFixup
	params []string
}

func (p *parser) errf(ln int, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", ln, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		ln := i + 1
		line := raw
		if j := strings.IndexByte(line, ';'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if p.f != nil {
				return p.errf(ln, "duplicate func header")
			}
			if err := p.header(ln, line); err != nil {
				return err
			}
		case line == "}":
			// end of function; ignore trailing content
		case strings.HasPrefix(line, "slots "):
			if p.f == nil {
				return p.errf(ln, "slots before func header")
			}
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "slots ")))
			if err != nil || n < 0 {
				return p.errf(ln, "bad slot count %q", line)
			}
			p.f.NumSlots = n
		case strings.HasSuffix(line, ":"):
			if p.f == nil {
				return p.errf(ln, "block label before func header")
			}
			name := strings.TrimSuffix(line, ":")
			if !validLabel(name) {
				return p.errf(ln, "bad block label %q", name)
			}
			if p.blocks[name] != nil {
				return p.errf(ln, "duplicate block label %q", name)
			}
			// Kind is provisional; the terminator line fixes it.
			b := p.f.NewBlock(BlockRet)
			b.Name = name
			p.blocks[name] = b
			if len(p.f.Blocks) == 1 {
				p.defineParams(b)
			}
			p.cur = b
		default:
			if p.f == nil {
				return p.errf(ln, "instruction before func header")
			}
			if p.cur == nil {
				return p.errf(ln, "instruction outside any block")
			}
			if err := p.instruction(ln, line); err != nil {
				return err
			}
		}
	}
	if p.f == nil {
		return fmt.Errorf("no func header found")
	}
	if len(p.f.Blocks) == 0 {
		return fmt.Errorf("function %s has no blocks", p.f.Name)
	}
	return p.link()
}

func (p *parser) header(ln int, line string) error {
	rest := strings.TrimPrefix(line, "func ")
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "@") {
		return p.errf(ln, "function name must start with @")
	}
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return p.errf(ln, "malformed func header %q", line)
	}
	name := strings.TrimSpace(rest[1:open])
	if name == "" {
		return p.errf(ln, "empty function name")
	}
	p.f = NewFunc(name)
	paramsStr := strings.TrimSpace(rest[open+1 : closeIdx])
	if paramsStr != "" {
		for _, ps := range strings.Split(paramsStr, ",") {
			ps = strings.TrimSpace(ps)
			vn, ok := operandName(ps)
			if !ok {
				return p.errf(ln, "bad parameter %q", ps)
			}
			p.params = append(p.params, vn)
		}
	}
	return nil
}

func (p *parser) defineParams(entry *Block) {
	for i, name := range p.params {
		v := entry.NewValueI(OpParam, int64(i))
		v.Name = name
		p.vals[name] = v
	}
}

// instruction parses a value line or terminator line inside p.cur.
func (p *parser) instruction(ln int, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "br":
		if len(fields) != 2 {
			return p.errf(ln, "br wants one target")
		}
		p.tfix = append(p.tfix, termFixup{b: p.cur, ln: ln, kind: BlockPlain, succs: fields[1:]})
		p.cur = nil
		return nil
	case "if", "switch":
		// if %v -> a, b      switch %v -> a, b, c
		arrow := strings.Index(line, "->")
		if arrow < 0 {
			return p.errf(ln, "%s needs '->'", fields[0])
		}
		ctrl, ok := operandName(strings.TrimSpace(line[len(fields[0]):arrow]))
		if !ok {
			return p.errf(ln, "%s needs a %%value control", fields[0])
		}
		var succs []string
		for _, s := range strings.Split(line[arrow+2:], ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				return p.errf(ln, "empty successor label")
			}
			succs = append(succs, s)
		}
		kind := BlockIf
		if fields[0] == "switch" {
			kind = BlockSwitch
		} else if len(succs) != 2 {
			return p.errf(ln, "if wants exactly two targets")
		}
		p.tfix = append(p.tfix, termFixup{b: p.cur, ln: ln, kind: kind, control: ctrl, succs: succs})
		p.cur = nil
		return nil
	case "ret":
		t := termFixup{b: p.cur, ln: ln, kind: BlockRet}
		if len(fields) == 2 {
			vn, ok := operandName(fields[1])
			if !ok {
				return p.errf(ln, "bad ret operand %q", fields[1])
			}
			t.control = vn
		} else if len(fields) > 2 {
			return p.errf(ln, "ret wants at most one operand")
		}
		p.tfix = append(p.tfix, t)
		p.cur = nil
		return nil
	case "slotstore":
		// slotstore N, %v
		rest := strings.TrimSpace(strings.TrimPrefix(line, "slotstore"))
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 {
			return p.errf(ln, "slotstore wants 'slot, %%value'")
		}
		slot, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return p.errf(ln, "bad slot number %q", parts[0])
		}
		vn, ok := operandName(strings.TrimSpace(parts[1]))
		if !ok {
			return p.errf(ln, "bad slotstore operand %q", parts[1])
		}
		v := p.cur.NewValueI(OpSlotStore, slot)
		p.vfix = append(p.vfix, valueFixup{v: v, ln: ln, args: []string{vn}})
		return nil
	}

	// %name = op ...
	eq := strings.Index(line, "=")
	if !strings.HasPrefix(fields[0], "%") || eq < 0 {
		return p.errf(ln, "cannot parse instruction %q", line)
	}
	resName, ok := operandName(strings.TrimSpace(line[:eq]))
	if !ok {
		return p.errf(ln, "bad result name %q", line[:eq])
	}
	if p.vals[resName] != nil {
		return p.errf(ln, "duplicate value name %%%s", resName)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	rf := strings.Fields(rhs)
	if len(rf) == 0 {
		return p.errf(ln, "missing op after '='")
	}
	op := OpByName(rf[0])
	if op == OpInvalid || op == OpSlotStore {
		return p.errf(ln, "unknown op %q", rf[0])
	}
	if !op.HasResult() {
		return p.errf(ln, "op %s produces no result", op)
	}
	operands := strings.TrimSpace(rhs[len(rf[0]):])
	var v *Value
	fix := valueFixup{ln: ln}
	switch op {
	case OpConst, OpParam, OpSlotLoad:
		n, err := strconv.ParseInt(operands, 10, 64)
		if err != nil {
			return p.errf(ln, "%s wants an integer, got %q", op, operands)
		}
		v = p.cur.NewValueI(op, n)
	case OpPhi:
		v = p.cur.NewValue(OpPhi)
		ops, err := parsePhiOperands(operands)
		if err != nil {
			return p.errf(ln, "%v", err)
		}
		fix.phi = ops
	case OpCall:
		parts := splitOperands(operands)
		if len(parts) == 0 || !strings.HasPrefix(parts[0], "@") {
			return p.errf(ln, "call wants '@callee[, args...]'")
		}
		v = p.cur.NewValueAux(OpCall, 0, strings.TrimPrefix(parts[0], "@"))
		for _, a := range parts[1:] {
			vn, ok := operandName(a)
			if !ok {
				return p.errf(ln, "bad call operand %q", a)
			}
			fix.args = append(fix.args, vn)
		}
	default:
		v = p.cur.NewValue(op)
		for _, a := range splitOperands(operands) {
			vn, ok := operandName(a)
			if !ok {
				return p.errf(ln, "bad operand %q", a)
			}
			fix.args = append(fix.args, vn)
		}
		if want := op.ArgLen(); want >= 0 && len(fix.args) != want {
			return p.errf(ln, "%s wants %d operands, got %d", op, want, len(fix.args))
		}
	}
	v.Name = resName
	p.vals[resName] = v
	fix.v = v
	p.vfix = append(p.vfix, fix)
	return nil
}

// link builds edges, resolves controls and patches value arguments.
func (p *parser) link() error {
	// Every block needs a terminator record.
	seen := map[*Block]bool{}
	for _, t := range p.tfix {
		seen[t.b] = true
	}
	for _, b := range p.f.Blocks {
		if !seen[b] {
			return fmt.Errorf("block %s has no terminator", b)
		}
	}

	// Edges first (in terminator order so φ pred indices are meaningful).
	entry := p.f.Entry()
	for _, t := range p.tfix {
		t.b.Kind = t.kind
		for _, s := range t.succs {
			tb := p.blocks[s]
			if tb == nil {
				return p.errf(t.ln, "unknown block label %q", s)
			}
			if tb == entry {
				// The paper's CFG definition (§2.1): the entry r has no
				// incoming edge; parsed programs must satisfy it so that
				// every accepted program verifies.
				return p.errf(t.ln, "edge into the entry block %s", entry)
			}
			t.b.AddEdgeTo(tb)
		}
	}
	// Controls.
	for _, t := range p.tfix {
		if t.control == "" {
			continue
		}
		cv := p.vals[t.control]
		if cv == nil {
			return p.errf(t.ln, "unknown value %%%s", t.control)
		}
		t.b.SetControl(cv)
	}
	// Value arguments.
	for _, fx := range p.vfix {
		if fx.v.Op == OpPhi {
			if err := p.linkPhi(fx); err != nil {
				return err
			}
			continue
		}
		for _, an := range fx.args {
			av := p.vals[an]
			if av == nil {
				return p.errf(fx.ln, "unknown value %%%s", an)
			}
			fx.v.AddArg(av)
		}
	}
	return nil
}

// linkPhi orders φ operands to match the block's predecessor order, matching
// by block label and consuming duplicates in textual order.
func (p *parser) linkPhi(fx valueFixup) error {
	b := fx.v.Block
	if len(fx.phi) != len(b.Preds) {
		return p.errf(fx.ln, "φ %s has %d operands for %d predecessors",
			fx.v, len(fx.phi), len(b.Preds))
	}
	used := make([]bool, len(fx.phi))
	for _, pe := range b.Preds {
		found := -1
		for i, op := range fx.phi {
			if !used[i] && op.blockName == pe.B.name() {
				found = i
				break
			}
		}
		if found < 0 {
			return p.errf(fx.ln, "φ %s has no operand for predecessor %s", fx.v, pe.B)
		}
		used[found] = true
		av := p.vals[fx.phi[found].valName]
		if av == nil {
			return p.errf(fx.ln, "unknown value %%%s", fx.phi[found].valName)
		}
		fx.v.AddArg(av)
	}
	return nil
}

// parsePhiOperands parses "[%a, b0], [%b, b1]".
func parsePhiOperands(s string) ([]phiOperand, error) {
	var out []phiOperand
	s = strings.TrimSpace(s)
	for s != "" {
		if !strings.HasPrefix(s, "[") {
			return nil, fmt.Errorf("φ operand must start with '[': %q", s)
		}
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return nil, fmt.Errorf("unterminated φ operand: %q", s)
		}
		inner := s[1:end]
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("φ operand wants '[%%v, block]': %q", inner)
		}
		vn, ok := operandName(strings.TrimSpace(parts[0]))
		if !ok {
			return nil, fmt.Errorf("bad φ value %q", parts[0])
		}
		bn := strings.TrimSpace(parts[1])
		if !validLabel(bn) {
			return nil, fmt.Errorf("bad φ block label %q", bn)
		}
		out = append(out, phiOperand{valName: vn, blockName: bn})
		s = strings.TrimSpace(s[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("φ needs at least one operand")
	}
	return out, nil
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// operandName strips the leading % and validates the identifier.
func operandName(s string) (string, bool) {
	if !strings.HasPrefix(s, "%") {
		return "", false
	}
	name := s[1:]
	if name == "" || !validLabel(name) {
		return "", false
	}
	return name, true
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
