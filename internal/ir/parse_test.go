package ir

import (
	"strings"
	"testing"
)

const loopSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head: ; preds: entry, body
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

func TestParseLoop(t *testing.T) {
	f, err := Parse(loopSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if f.Name != "loop" {
		t.Fatalf("name = %q", f.Name)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	head := f.BlockByName("head")
	if head == nil || head.Kind != BlockIf {
		t.Fatalf("head missing or wrong kind")
	}
	phi := f.ValueByName("i")
	if phi == nil || phi.Op != OpPhi || len(phi.Args) != 2 {
		t.Fatalf("φ i malformed: %v", phi)
	}
	// φ argument order must match predecessor order.
	for i, pe := range head.Preds {
		arg := phi.Args[i]
		switch pe.B.Name {
		case "entry":
			if arg.Name != "zero" {
				t.Fatalf("φ arg for entry = %s", arg)
			}
		case "body":
			if arg.Name != "inext" {
				t.Fatalf("φ arg for body = %s", arg)
			}
		default:
			t.Fatalf("unexpected pred %s", pe.B)
		}
	}
	if got := len(f.Params()); got != 1 {
		t.Fatalf("params = %d", got)
	}
}

func TestPhiOperandOrderIndependent(t *testing.T) {
	// Same function but φ operands written in the opposite textual order.
	swapped := strings.Replace(loopSrc,
		"phi [%zero, entry], [%inext, body]",
		"phi [%inext, body], [%zero, entry]", 1)
	f := MustParse(swapped)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	head := f.BlockByName("head")
	phi := f.ValueByName("i")
	for i, pe := range head.Preds {
		want := map[string]string{"entry": "zero", "body": "inext"}[pe.B.Name]
		if phi.Args[i].Name != want {
			t.Fatalf("pred %s: φ arg = %s, want %%%s", pe.B, phi.Args[i], want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		loopSrc,
		`
func @straight(%a, %b) {
b0:
  %s = add %a, %b
  %t = mul %s, %s
  %u = call @opaque, %t, %a
  ret %u
}
`,
		`
func @switches(%x) {
b0:
  switch %x -> b1, b2, b3
b1:
  br b4
b2:
  br b4
b3:
  br b4
b4:
  %m = phi [%x, b1], [%x, b2], [%x, b3]
  ret %m
}
`,
		`
func @slots() {
b0:
  slots 2
  %c = const 7
  slotstore 0, %c
  %l = slotload 0
  slotstore 1, %l
  ret %l
}
`,
		`
func @noretval() {
b0:
  ret
}
`,
	}
	for _, src := range srcs {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse 1: %v\n%s", err, src)
		}
		if err := Verify(f1); err != nil {
			t.Fatalf("verify 1: %v\n%s", err, src)
		}
		p1 := Print(f1)
		f2, err := Parse(p1)
		if err != nil {
			t.Fatalf("parse 2: %v\nprinted:\n%s", err, p1)
		}
		if err := Verify(f2); err != nil {
			t.Fatalf("verify 2: %v", err)
		}
		p2 := Print(f2)
		if p1 != p2 {
			t.Fatalf("round trip not stable:\n--- first\n%s\n--- second\n%s", p1, p2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no header", "b0:\n ret\n", "before func header"},
		{"no blocks", "func @f() {\n}\n", "no blocks"},
		{"dup label", "func @f() {\nb0:\n ret\nb0:\n ret\n}", "duplicate block label"},
		{"dup value", "func @f() {\nb0:\n %x = const 1\n %x = const 2\n ret\n}", "duplicate value name"},
		{"unknown op", "func @f() {\nb0:\n %x = frobnicate 1\n ret\n}", "unknown op"},
		{"unknown value", "func @f() {\nb0:\n %x = copy %y\n ret\n}", "unknown value"},
		{"unknown target", "func @f() {\nb0:\n br nowhere\n}", "unknown block label"},
		{"no terminator", "func @f() {\nb0:\n %x = const 1\n}", "no terminator"},
		{"if arity", "func @f() {\nb0:\n %x = const 1\n if %x -> b0\n}", "exactly two targets"},
		{"phi arity", "func @f(%a) {\nb0:\n br b1\nb1:\n %p = phi [%a, b0], [%a, b9]\n ret\n}", "φ"},
		{"bad slot", "func @f() {\nb0:\n slots x\n ret\n}", "bad slot"},
		{"add arity", "func @f(%a) {\nb0:\n %x = add %a\n ret\n}", "wants 2 operands"},
		{"bad operand", "func @f() {\nb0:\n %x = copy 17\n ret\n}", "bad operand"},
		{"slotstore form", "func @f() {\nb0:\n slotstore 0\n ret\n}", "slotstore wants"},
		{"assign to slotstore", "func @f(%a) {\nb0:\n %x = slotstore 0, %a\n ret\n}", "unknown op"},
		{"double header", "func @f() {\nfunc @g() {\nb0:\n ret\n}", "duplicate func header"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error containing %q, got success", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := `
 ; leading comment
func @c() {   ; trailing comment
b0:           ; preds: none
  %x = const 5 ; five
  ret %x
}
`
	f := MustParse(src)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	if f.ValueByName("x").AuxInt != 5 {
		t.Fatal("const not parsed")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a function")
}

func TestParseDuplicateEdgePhiByLabel(t *testing.T) {
	// A switch with two cases to the same target: the φ has two operands
	// labeled with the same block; textual order disambiguates.
	src := `
func @dup(%x) {
b0:
  %a = const 10
  %b = const 20
  switch %x -> b1, b1
b1:
  %m = phi [%a, b0], [%b, b0]
  ret %m
}
`
	f := MustParse(src)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	m := f.ValueByName("m")
	if m.Args[0].Name != "a" || m.Args[1].Name != "b" {
		t.Fatalf("duplicate-edge φ args = %s, %s", m.Args[0], m.Args[1])
	}
}
