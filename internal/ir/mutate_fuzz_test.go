package ir_test

// FuzzMutations drives random sequences of the epoch-tracked mutation
// methods and checks the PR-5 edit-tracking contract: every mutation
// keeps ir.Verify and ssa.VerifyStrict passing, epochs never decrease,
// the epoch of the touched edit class strictly increases, and pure-CFG
// edits leave InstrEpoch alone (the separation the checker's survival
// property rides on). Lives in an external test package because the
// strict-SSA verifier (package ssa) imports ir.

import (
	"testing"

	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

const fuzzBaseSrc = `
func @mut(%a, %b) {
entry:
  %one = const 1
  %x = add %a, %b
  %cmp = cmplt %x, %a
  if %cmp -> left, right
left:
  %y = add %x, %one
  br join
right:
  %z = mul %x, %x
  br join
join:
  %m = phi [%y, left], [%z, right]
  %w = add %m, %one
  ret %w
}
`

// resultValues lists the current result-defining values in program order.
func resultValues(f *ir.Func) []*ir.Value {
	var out []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			out = append(out, v)
		}
	})
	return out
}

func FuzzMutations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{3, 3, 3, 0, 0, 2, 2})
	f.Add([]byte{5, 4, 1, 0, 3, 2, 5, 4, 1, 0, 3, 2})
	f.Add([]byte{0xff, 0x80, 0x41, 0x07, 0x00, 0x13, 0x29})
	f.Fuzz(func(t *testing.T, data []byte) {
		fn := ir.MustParse(fuzzBaseSrc)
		if len(data) > 96 {
			data = data[:96] // bound per-input work
		}
		check := func(step int, wantCFGBump, wantInstrBump bool, cfgBefore, instrBefore uint64) {
			t.Helper()
			cfgNow, instrNow := fn.CFGEpoch(), fn.InstrEpoch()
			if cfgNow < cfgBefore || instrNow < instrBefore {
				t.Fatalf("step %d: epochs went backwards (cfg %d->%d, instr %d->%d)",
					step, cfgBefore, cfgNow, instrBefore, instrNow)
			}
			if wantCFGBump && cfgNow == cfgBefore {
				t.Fatalf("step %d: CFG edit did not advance CFGEpoch (%d)", step, cfgNow)
			}
			if !wantCFGBump && cfgNow != cfgBefore {
				t.Fatalf("step %d: instruction edit advanced CFGEpoch (%d->%d)", step, cfgBefore, cfgNow)
			}
			if wantInstrBump && instrNow == instrBefore {
				t.Fatalf("step %d: instruction edit did not advance InstrEpoch (%d)", step, instrNow)
			}
			if !wantInstrBump && instrNow != instrBefore {
				t.Fatalf("step %d: pure CFG edit advanced InstrEpoch (%d->%d)", step, instrBefore, instrNow)
			}
			if err := ir.Verify(fn); err != nil {
				t.Fatalf("step %d: ir.Verify: %v", step, err)
			}
			if err := ssa.VerifyStrict(fn); err != nil {
				t.Fatalf("step %d: ssa.VerifyStrict: %v", step, err)
			}
		}
		byteAt := func(i int) int {
			if i >= len(data) {
				return 0
			}
			return int(data[i])
		}
		for i := 0; i < len(data); i += 2 {
			op, sel := byteAt(i)%6, byteAt(i+1)
			cfgBefore, instrBefore := fn.CFGEpoch(), fn.InstrEpoch()
			switch op {
			case 0:
				// Append a new use of an existing value in its own block:
				// the definition precedes it, so strictness is preserved.
				vals := resultValues(fn)
				v := vals[sel%len(vals)]
				v.Block.NewValue(ir.OpNeg, v)
				check(i, false, true, cfgBefore, instrBefore)
			case 1:
				// Insert a constant right after a block's φ prefix.
				b := fn.Blocks[sel%len(fn.Blocks)]
				b.InsertValueAt(len(b.Phis()), ir.OpConst, int64(sel))
				check(i, false, true, cfgBefore, instrBefore)
			case 2:
				// Remove a use-free non-param value, if any (params keep
				// their indices; everything else is fair game).
				for _, b := range fn.Blocks {
					removed := false
					for idx, v := range b.Values {
						if v.NumUses() == 0 && v.Op != ir.OpParam {
							b.RemoveValueAt(idx)
							removed = true
							break
						}
					}
					if removed {
						check(i, false, true, cfgBefore, instrBefore)
						break
					}
				}
			case 3:
				// Split a random CFG edge: a pure CFG edit — InstrEpoch
				// must not move.
				var cands []*ir.Block
				for _, b := range fn.Blocks {
					if len(b.Succs) > 0 {
						cands = append(cands, b)
					}
				}
				b := cands[sel%len(cands)]
				b.SplitEdge(sel % len(b.Succs))
				check(i, true, false, cfgBefore, instrBefore)
			case 4:
				// Append a constant to a φ-free block and rotate it to the
				// front (argument-free, so intra-block dominance holds).
				var cands []*ir.Block
				for _, b := range fn.Blocks {
					if len(b.Phis()) == 0 {
						cands = append(cands, b)
					}
				}
				b := cands[sel%len(cands)]
				b.NewValueI(ir.OpConst, int64(sel))
				b.RotateValuesToFront(len(b.Values) - 1)
				check(i, false, true, cfgBefore, instrBefore)
			case 5:
				// Rewrite an operand in place (same value back): exercises
				// the SetArg bookkeeping, including φ operands.
				var target *ir.Value
				fn.Values(func(v *ir.Value) {
					if target == nil && len(v.Args) > 0 {
						target = v
					}
				})
				if target != nil {
					j := sel % len(target.Args)
					target.SetArg(j, target.Args[j])
					check(i, false, true, cfgBefore, instrBefore)
				}
			}
		}
	})
}
