package ir

import "fmt"

// Op identifies the operation a Value performs.
type Op uint8

// The operation set is deliberately small: the liveness algorithms only care
// about which values an instruction defines and uses, so a handful of
// arithmetic, memory-slot, control and φ operations suffice to express every
// CFG/def-use shape the paper's evaluation exercises.
const (
	OpInvalid Op = iota

	// OpParam is a function parameter; it lives in the entry block and takes
	// AuxInt = parameter index.
	OpParam
	// OpConst produces the constant AuxInt.
	OpConst

	// Pure arithmetic. Division and modulo by zero evaluate to zero (the
	// interpreter defines total semantics so generated programs never trap).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg
	OpNot

	// OpCmpEQ / OpCmpLT produce 1 or 0.
	OpCmpEQ
	OpCmpLT

	// OpCopy forwards its argument; SSA destruction introduces these.
	OpCopy

	// OpPhi selects among its arguments by incoming edge: argument i
	// corresponds to Block.Preds[i] (paper Definition 1).
	OpPhi

	// OpCall models an opaque pure call. AuxStr names the callee; the
	// interpreter hashes the arguments so calls are deterministic but
	// unpredictable. It keeps multi-use values realistic.
	OpCall

	// OpSlotLoad / OpSlotStore access mutable variable slots (AuxInt = slot
	// number). They exist only in non-SSA "slot form" programs; SSA
	// construction removes every one of them. OpSlotStore stores Args[0]
	// and produces no result.
	OpSlotLoad
	OpSlotStore
)

type opInfo struct {
	name      string
	argLen    int  // -1 = variable
	hasResult bool // defines a value usable by others
	hasAuxInt bool
	hasAuxStr bool
}

var opTable = [...]opInfo{
	OpInvalid:   {name: "invalid"},
	OpParam:     {name: "param", argLen: 0, hasResult: true, hasAuxInt: true},
	OpConst:     {name: "const", argLen: 0, hasResult: true, hasAuxInt: true},
	OpAdd:       {name: "add", argLen: 2, hasResult: true},
	OpSub:       {name: "sub", argLen: 2, hasResult: true},
	OpMul:       {name: "mul", argLen: 2, hasResult: true},
	OpDiv:       {name: "div", argLen: 2, hasResult: true},
	OpMod:       {name: "mod", argLen: 2, hasResult: true},
	OpAnd:       {name: "and", argLen: 2, hasResult: true},
	OpOr:        {name: "or", argLen: 2, hasResult: true},
	OpXor:       {name: "xor", argLen: 2, hasResult: true},
	OpShl:       {name: "shl", argLen: 2, hasResult: true},
	OpShr:       {name: "shr", argLen: 2, hasResult: true},
	OpNeg:       {name: "neg", argLen: 1, hasResult: true},
	OpNot:       {name: "not", argLen: 1, hasResult: true},
	OpCmpEQ:     {name: "cmpeq", argLen: 2, hasResult: true},
	OpCmpLT:     {name: "cmplt", argLen: 2, hasResult: true},
	OpCopy:      {name: "copy", argLen: 1, hasResult: true},
	OpPhi:       {name: "phi", argLen: -1, hasResult: true},
	OpCall:      {name: "call", argLen: -1, hasResult: true, hasAuxStr: true},
	OpSlotLoad:  {name: "slotload", argLen: 0, hasResult: true, hasAuxInt: true},
	OpSlotStore: {name: "slotstore", argLen: 1, hasAuxInt: true},
}

// String returns the lower-case mnemonic of the op.
func (op Op) String() string {
	if int(op) < len(opTable) {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// HasResult reports whether values with this op define a usable result.
func (op Op) HasResult() bool { return opTable[op].hasResult }

// ArgLen returns the required argument count, or -1 when variable.
func (op Op) ArgLen() int { return opTable[op].argLen }

// OpByName maps a mnemonic back to its Op; it returns OpInvalid for unknown
// names. The parser uses it.
func OpByName(name string) Op {
	for op, info := range opTable {
		if info.name == name && Op(op) != OpInvalid {
			return Op(op)
		}
	}
	return OpInvalid
}

// BlockKind describes how a block transfers control.
type BlockKind uint8

const (
	// BlockPlain has exactly one successor and no control value.
	BlockPlain BlockKind = iota
	// BlockIf has exactly two successors (then, else) selected by whether
	// the control value is non-zero.
	BlockIf
	// BlockSwitch has one or more successors; the control value selects
	// successor control mod len(Succs).
	BlockSwitch
	// BlockRet has no successors; the optional control value is the result.
	BlockRet
)

// String returns the lower-case kind name.
func (k BlockKind) String() string {
	switch k {
	case BlockPlain:
		return "plain"
	case BlockIf:
		return "if"
	case BlockSwitch:
		return "switch"
	case BlockRet:
		return "ret"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}
