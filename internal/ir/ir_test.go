package ir

import (
	"sort"
	"testing"
)

// buildDiamond constructs:
//
//	   b0 (if)
//	  /        \
//	b1          b2
//	  \        /
//	   b3: phi, ret
func buildDiamond(t *testing.T) (*Func, map[string]*Value) {
	t.Helper()
	f := NewFunc("diamond")
	b0 := f.NewBlock(BlockIf)
	b1 := f.NewBlock(BlockPlain)
	b2 := f.NewBlock(BlockPlain)
	b3 := f.NewBlock(BlockRet)

	p := b0.NewValueI(OpParam, 0)
	c1 := b0.NewValueI(OpConst, 1)
	c2 := b0.NewValueI(OpConst, 2)
	b0.SetControl(p)
	b0.AddEdgeTo(b1)
	b0.AddEdgeTo(b2)

	x := b1.NewValue(OpAdd, p, c1)
	b1.AddEdgeTo(b3)
	y := b2.NewValue(OpAdd, p, c2)
	b2.AddEdgeTo(b3)

	phi := b3.NewValue(OpPhi, x, y)
	b3.SetControl(phi)

	if err := Verify(f); err != nil {
		t.Fatalf("diamond does not verify: %v", err)
	}
	return f, map[string]*Value{"p": p, "c1": c1, "c2": c2, "x": x, "y": y, "phi": phi}
}

func TestBuildAndVerifyDiamond(t *testing.T) {
	f, vs := buildDiamond(t)
	if f.NumBlocks() != 4 || f.NumValues() != 6 {
		t.Fatalf("counts: blocks=%d values=%d", f.NumBlocks(), f.NumValues())
	}
	if got := vs["p"].NumUses(); got != 3 { // control of b0, x, y
		t.Fatalf("p has %d uses, want 3", got)
	}
	if got := vs["phi"].NumUses(); got != 1 { // ret control
		t.Fatalf("phi has %d uses, want 1", got)
	}
}

func TestEdgeCrossIndices(t *testing.T) {
	f, _ := buildDiamond(t)
	for _, b := range f.Blocks {
		for i, e := range b.Succs {
			if e.B.Preds[e.I].B != b || e.B.Preds[e.I].I != i {
				t.Fatalf("cross index broken at %s->%s", b, e.B)
			}
		}
	}
}

func TestUseBlockIDsPhiPlacement(t *testing.T) {
	f, vs := buildDiamond(t)
	b1 := f.Blocks[1]
	b2 := f.Blocks[2]
	// Per Definition 1 the φ's arguments are used at the predecessors, not
	// at the φ block.
	got := vs["x"].UseBlockIDs(nil)
	if len(got) != 1 || got[0] != b1.ID {
		t.Fatalf("x use blocks = %v, want [%d]", got, b1.ID)
	}
	got = vs["y"].UseBlockIDs(nil)
	if len(got) != 1 || got[0] != b2.ID {
		t.Fatalf("y use blocks = %v, want [%d]", got, b2.ID)
	}
	// p is used by b0's control and by x (in b1) and y (in b2).
	got = vs["p"].UseBlockIDs(nil)
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("p use blocks = %v, want %v", got, want)
	}
}

func TestSetArgMaintainsUses(t *testing.T) {
	f, vs := buildDiamond(t)
	x := vs["x"]
	if x.Args[1] != vs["c1"] {
		t.Fatal("precondition: x arg1 is c1")
	}
	x.SetArg(1, vs["c2"])
	if err := Verify(f); err != nil {
		t.Fatalf("after SetArg: %v", err)
	}
	if vs["c1"].NumUses() != 0 {
		t.Fatalf("c1 still has %d uses", vs["c1"].NumUses())
	}
	if vs["c2"].NumUses() != 2 {
		t.Fatalf("c2 has %d uses, want 2", vs["c2"].NumUses())
	}
}

func TestReplaceUsesWith(t *testing.T) {
	f, vs := buildDiamond(t)
	// Replace all uses of p with c1: covers value args and block controls.
	vs["p"].ReplaceUsesWith(vs["c1"])
	if err := Verify(f); err != nil {
		t.Fatalf("after ReplaceUsesWith: %v", err)
	}
	if vs["p"].NumUses() != 0 {
		t.Fatalf("p still used %d times", vs["p"].NumUses())
	}
	if f.Blocks[0].Control != vs["c1"] {
		t.Fatal("control not rewritten")
	}
	if vs["x"].Args[0] != vs["c1"] || vs["y"].Args[0] != vs["c1"] {
		t.Fatal("args not rewritten")
	}
	// Self-replacement is a no-op.
	n := vs["c1"].NumUses()
	vs["c1"].ReplaceUsesWith(vs["c1"])
	if vs["c1"].NumUses() != n {
		t.Fatal("self ReplaceUsesWith changed use count")
	}
}

func TestRemoveValue(t *testing.T) {
	f, vs := buildDiamond(t)
	vs["p"].ReplaceUsesWith(vs["c1"])
	f.Blocks[0].RemoveValue(vs["p"])
	if err := Verify(f); err != nil {
		t.Fatalf("after RemoveValue: %v", err)
	}
	for _, v := range f.Blocks[0].Values {
		if v == vs["p"] {
			t.Fatal("p still in block")
		}
	}
	// Removing a value that still has uses must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveValue with live uses should panic")
		}
	}()
	f.Blocks[3].RemoveValue(vs["phi"])
}

func TestInsertValueFrontAndAfterPhis(t *testing.T) {
	f, vs := buildDiamond(t)
	b3 := f.Blocks[3]
	phi2 := b3.InsertValueFront(OpPhi, vs["x"], vs["y"])
	if b3.Values[0] != phi2 {
		t.Fatal("InsertValueFront did not place at front")
	}
	cp := b3.InsertValueAfterPhis(OpCopy, phi2)
	if b3.Values[2] != cp {
		t.Fatalf("InsertValueAfterPhis placed at %d", b3.ValueIndex(cp))
	}
	if len(b3.Phis()) != 2 {
		t.Fatalf("Phis len = %d, want 2", len(b3.Phis()))
	}
	if err := Verify(f); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
}

func TestSplitEdgePreservesPhiIndices(t *testing.T) {
	f, vs := buildDiamond(t)
	b0 := f.Blocks[0]
	b3 := f.Blocks[3]
	phi := vs["phi"]
	wantArg0 := phi.Args[0]
	// Split b1->b3 (b1 is b0.Succs[0]).
	b1 := b0.Succs[0].B
	e := b1.SplitEdge(0)
	if err := Verify(f); err != nil {
		t.Fatalf("after SplitEdge: %v", err)
	}
	if e.Preds[0].B != b1 || e.Succs[0].B != b3 {
		t.Fatal("split block wired wrong")
	}
	if phi.Args[0] != wantArg0 {
		t.Fatal("φ argument moved during edge split")
	}
	if b3.Preds[phi.Block.Preds[0].I].B != e && b3.Preds[0].B != e {
		t.Fatal("b3 pred not replaced by split block")
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// b0 -if-> {b1, b2}; b1 and b2 both jump to b3; additionally b0 -> b3
	// directly making (b0,b3) critical.
	f := NewFunc("crit")
	b0 := f.NewBlock(BlockIf)
	b1 := f.NewBlock(BlockPlain)
	b3 := f.NewBlock(BlockRet)
	c := b0.NewValueI(OpConst, 0)
	b0.SetControl(c)
	b0.AddEdgeTo(b1)
	b0.AddEdgeTo(b3) // critical: b0 has 2 succs, b3 has 2 preds
	b1.AddEdgeTo(b3)
	if err := Verify(f); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	n := f.SplitCriticalEdges()
	if n != 1 {
		t.Fatalf("split %d edges, want 1", n)
	}
	if err := Verify(f); err != nil {
		t.Fatalf("after split: %v", err)
	}
	for _, b := range f.Blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for _, e := range b.Succs {
			if len(e.B.Preds) >= 2 {
				t.Fatalf("critical edge %s->%s remains", b, e.B)
			}
		}
	}
}

func TestVerifyCatchesPhiAfterNonPhi(t *testing.T) {
	f, vs := buildDiamond(t)
	b3 := f.Blocks[3]
	b3.NewValue(OpCopy, vs["phi"])       // non-φ
	b3.NewValue(OpPhi, vs["x"], vs["y"]) // φ after non-φ: invalid
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted φ after non-φ")
	}
}

func TestVerifyCatchesPhiArity(t *testing.T) {
	f, vs := buildDiamond(t)
	phi := vs["phi"]
	phi.AddArg(vs["c1"]) // now 3 args for 2 preds
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted φ arity mismatch")
	}
}

func TestVerifyCatchesEntryPreds(t *testing.T) {
	f, _ := buildDiamond(t)
	f.Blocks[3].Kind = BlockPlain
	f.Blocks[3].SetControl(nil)
	f.Blocks[3].AddEdgeTo(f.Blocks[0])
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted entry block with preds")
	}
}

func TestVerifyCatchesKindArity(t *testing.T) {
	f := NewFunc("bad")
	b := f.NewBlock(BlockPlain) // plain with no successor
	_ = b
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted plain block without successor")
	}
}

func TestVerifyCatchesBrokenUseList(t *testing.T) {
	f, vs := buildDiamond(t)
	// Corrupt the use list directly.
	vs["c1"].uses = nil
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted corrupted use list")
	}
}

func TestVerifyCatchesSlotRange(t *testing.T) {
	f := NewFunc("slots")
	b := f.NewBlock(BlockRet)
	f.NumSlots = 2
	b.NewValueI(OpSlotLoad, 5)
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted out-of-range slot")
	}
}

func TestVerifyCatchesArgOfResultless(t *testing.T) {
	f := NewFunc("void")
	b := f.NewBlock(BlockRet)
	f.NumSlots = 1
	c := b.NewValueI(OpConst, 1)
	st := b.NewValueI(OpSlotStore, 0, c)
	b.NewValue(OpCopy, st) // uses a result-less value
	if err := Verify(f); err == nil {
		t.Fatal("Verify accepted use of result-less value")
	}
}

func TestBlockAndValueNames(t *testing.T) {
	f := NewFunc("names")
	b := f.NewBlock(BlockRet)
	if b.String() != "b0" {
		t.Fatalf("default block name = %q", b)
	}
	b.Name = "entry"
	if b.String() != "entry" {
		t.Fatalf("named block = %q", b)
	}
	v := b.NewValueI(OpConst, 3)
	if v.String() != "%v0" {
		t.Fatalf("default value name = %q", v)
	}
	v.Name = "x"
	if v.String() != "%x" {
		t.Fatalf("named value = %q", v)
	}
	if f.BlockByName("entry") != b || f.BlockByName("zz") != nil {
		t.Fatal("BlockByName broken")
	}
	if f.ValueByName("x") != v || f.ValueByName("zz") != nil {
		t.Fatal("ValueByName broken")
	}
}

func TestOpTable(t *testing.T) {
	if OpByName("add") != OpAdd || OpByName("phi") != OpPhi {
		t.Fatal("OpByName lookup broken")
	}
	if OpByName("nosuchop") != OpInvalid {
		t.Fatal("OpByName should return OpInvalid for unknown")
	}
	if OpByName("invalid") != OpInvalid {
		t.Fatal("OpByName must not resolve the invalid op")
	}
	if OpAdd.String() != "add" || OpAdd.ArgLen() != 2 || !OpAdd.HasResult() {
		t.Fatal("OpAdd metadata wrong")
	}
	if OpSlotStore.HasResult() {
		t.Fatal("slotstore must not have a result")
	}
	if OpPhi.ArgLen() != -1 {
		t.Fatal("phi should be variadic")
	}
	for _, k := range []BlockKind{BlockPlain, BlockIf, BlockSwitch, BlockRet} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestInsertValueAt(t *testing.T) {
	f, vs := buildDiamond(t)
	b1 := f.Blocks[1]
	i := b1.ValueIndex(vs["x"])
	neg := b1.InsertValueAt(i+1, OpNeg, 0, vs["x"])
	if b1.Values[i+1] != neg {
		t.Fatalf("InsertValueAt placed at %d, want %d", b1.ValueIndex(neg), i+1)
	}
	st := b1.InsertValueAt(i+2, OpSlotStore, 0, neg)
	if b1.Values[i+2] != st {
		t.Fatalf("store placed at %d, want %d", b1.ValueIndex(st), i+2)
	}
	f.NumSlots = 1
	if err := Verify(f); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
}
