// Package ir defines the SSA intermediate representation the liveness
// engines operate on: functions of basic blocks holding values
// (instructions), with maintained def-use chains.
//
// The representation follows the prerequisites the paper lists in §1:
//   - a control-flow graph G = (V, E, r) whose entry r has no incoming edge,
//   - strict SSA (each variable has a single definition that dominates all
//     its uses),
//   - def-use chains per variable, cheap to keep current under edits.
//
// A "variable" in the paper's sense is simply a *Value with a result here —
// SSA makes values and variables interchangeable. φ-functions use their
// arguments at the corresponding predecessor block (paper Definition 1);
// Value.UseBlockIDs implements exactly that placement, and is what the
// fastliveness facade reads fresh at query time, so liveness answers track
// program edits without re-analysis.
//
// The query side of the paper needs only stable block identities and
// def-use chains; the transformation side (SplitEdge, SplitCriticalEdges)
// provides the one CFG change SSA destruction performs up front (§6.2), and
// parse.go/print.go give the textual round-trip format (.ssair) that
// cmd/livecheck and the test suite use. Programs may also exist in non-SSA
// "slot form" (OpSlotLoad/OpSlotStore on mutable variable slots); package
// ssa converts slot form into strict SSA.
package ir
