// Package ir defines the SSA intermediate representation the liveness
// engines operate on: functions of basic blocks holding values
// (instructions), with maintained def-use chains.
//
// The representation follows the prerequisites the paper lists in §1:
//   - a control-flow graph G = (V, E, r) whose entry r has no incoming edge,
//   - strict SSA (each variable has a single definition that dominates all
//     its uses),
//   - def-use chains per variable, cheap to keep current under edits.
//
// A "variable" in the paper's sense is simply a *Value with a result here —
// SSA makes values and variables interchangeable. φ-functions use their
// arguments at the corresponding predecessor block (paper Definition 1);
// Value.UseBlockIDs implements exactly that placement, and is what the
// fastliveness facade reads fresh at query time, so liveness answers track
// program edits without re-analysis.
//
// The query side of the paper needs only stable block identities and
// def-use chains; the transformation side (SplitEdge, SplitCriticalEdges)
// provides the one CFG change SSA destruction performs up front (§6.2), and
// parse.go/print.go give the textual round-trip format (.ssair) that
// cmd/livecheck and the test suite use. Programs may also exist in non-SSA
// "slot form" (OpSlotLoad/OpSlotStore on mutable variable slots); package
// ssa converts slot form into strict SSA.
//
// # Edit tracking
//
// Every mutation is classified into one of the paper's two edit classes
// and counted by a monotonic epoch on Func:
//
//   - CFG edits (NewBlock, AddEdgeTo, SplitEdge, SplitCriticalEdges,
//     RemoveBlock) advance CFGEpoch. They invalidate every liveness
//     analysis, including the paper's checker.
//   - Instruction edits (NewValue*, InsertValue*, RemoveValue[At],
//     RotateValuesToFront, AddArg, SetArg, ClearArgs, SetControl) advance
//     InstrEpoch. They invalidate only analyses that materialize explicit
//     per-block sets; the checker's CFG-only precomputation survives them —
//     the paper's §4 headline property, now a checked invariant rather
//     than a calling convention (internal/backend.Stale compares an
//     analysis result's recorded epochs against the function's).
//
// Passes must therefore mutate through these methods, never through raw
// slice surgery on Blocks/Values/Succs/Preds, or staleness detection is
// silently defeated. The FuzzMutations test drives random method sequences
// and asserts the epochs advance exactly when the relevant class is
// touched.
package ir
