package ir

import (
	"fmt"
	"strings"
)

// Print renders f in the textual format accepted by Parse:
//
//	func @name(%p, %q) {
//	b0:
//	  %x = add %p, %q
//	  if %x -> b1, b2
//	b1:                       ; preds: b0
//	  %y = phi [%x, b0], [%z, b3]
//	  ret %y
//	}
//
// Every value prints with a stable operand name (Name if set, else v<ID>).
func Print(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func @%s(", f.Name)
	for i, p := range f.Params() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(") {\n")
	if f.NumSlots > 0 {
		fmt.Fprintf(&sb, "  slots %d\n", f.NumSlots)
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if len(b.Preds) > 0 {
			sb.WriteString(" ; preds:")
			for _, e := range b.Preds {
				sb.WriteString(" ")
				sb.WriteString(e.B.String())
			}
		}
		sb.WriteString("\n")
		for _, v := range b.Values {
			if v.Op == OpParam {
				// Parameters are printed in the function header.
				continue
			}
			sb.WriteString("  ")
			sb.WriteString(valueString(v))
			sb.WriteString("\n")
		}
		sb.WriteString("  ")
		sb.WriteString(terminatorString(b))
		sb.WriteString("\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

func valueString(v *Value) string {
	var sb strings.Builder
	if v.Op.HasResult() {
		fmt.Fprintf(&sb, "%s = ", v)
	}
	sb.WriteString(v.Op.String())
	switch v.Op {
	case OpPhi:
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " [%s, %s]", a, v.Block.Preds[i].B)
		}
	case OpConst, OpParam, OpSlotLoad:
		fmt.Fprintf(&sb, " %d", v.AuxInt)
	case OpSlotStore:
		fmt.Fprintf(&sb, " %d, %s", v.AuxInt, v.Args[0])
	case OpCall:
		fmt.Fprintf(&sb, " @%s", v.AuxStr)
		for _, a := range v.Args {
			fmt.Fprintf(&sb, ", %s", a)
		}
	default:
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s", a)
		}
	}
	return sb.String()
}

func terminatorString(b *Block) string {
	switch b.Kind {
	case BlockPlain:
		return fmt.Sprintf("br %s", b.Succs[0].B)
	case BlockIf:
		return fmt.Sprintf("if %s -> %s, %s", b.Control, b.Succs[0].B, b.Succs[1].B)
	case BlockSwitch:
		var sb strings.Builder
		fmt.Fprintf(&sb, "switch %s ->", b.Control)
		for i, e := range b.Succs {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, " %s", e.B)
		}
		return sb.String()
	case BlockRet:
		if b.Control != nil {
			return fmt.Sprintf("ret %s", b.Control)
		}
		return "ret"
	}
	return "???"
}
