// Package cfg provides the control-flow-graph analyses the liveness checker
// precomputation rests on (paper §2.1): a depth-first search with edge
// classification (tree, back, forward, cross), preorder/postorder
// numberings, and the reducibility test.
//
// The paper's reduced graph G̃ — the CFG with DFS back edges removed, a DAG
// (Definition 4) — is not materialized anywhere; instead DFS.IsBackEdge
// lets every traversal skip back edges in place, which is all the R/T
// precomputation of package core needs. The DFS also exposes the back-edge
// list itself, since T sets (Definition 5) are sets of back-edge targets.
//
// The graph form is deliberately abstract — nodes are dense integers with
// successor/predecessor adjacency, node 0 the entry r — so the algorithmic
// packages (dom, core, loops) can be exercised on raw random graphs
// (package graphgen) as well as on IR functions via FromFunc, which returns
// the block-ID-to-node index the fastliveness facade keeps for query
// translation. dot.go renders graphs for debugging.
package cfg
