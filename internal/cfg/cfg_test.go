package cfg

import (
	"math/rand"
	"testing"

	"fastliveness/internal/ir"
)

// figure1Graph builds a graph in the spirit of the paper's Figure 1: a DFS
// subtree hanging off a path, with a back edge and two cross edges.
//
//	0 -> 1 -> 2 -> 3      (tree path)
//	3 -> 1                (back edge)
//	0 -> 4 ; 4 -> 5       (second subtree, visited after 1's subtree)
//	4 -> 2                (cross edge into the finished subtree)
//	5 -> 3                (cross edge)
//	1 -> 3                (forward edge)
func figure1Graph() *Graph {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(4, 5)
	g.AddEdge(4, 2)
	g.AddEdge(5, 3)
	g.AddEdge(1, 3)
	return g
}

func TestFigure1EdgeClassification(t *testing.T) {
	g := figure1Graph()
	d := NewDFS(g)
	if d.NumReachable != 6 {
		t.Fatalf("reachable = %d, want 6", d.NumReachable)
	}
	classes := d.ClassifyAll()
	want := map[Edge]EdgeClass{
		{0, 1}: TreeEdge,
		{1, 2}: TreeEdge,
		{2, 3}: TreeEdge,
		{3, 1}: BackEdge,
		{0, 4}: TreeEdge,
		{4, 5}: TreeEdge,
		{4, 2}: CrossEdge,
		{5, 3}: CrossEdge,
		{1, 3}: ForwardEdge,
	}
	for e, wc := range want {
		got, ok := classes[e]
		if !ok || len(got) != 1 {
			t.Fatalf("edge %v: classes=%v", e, got)
		}
		if got[0] != wc {
			t.Errorf("edge %v: class = %v, want %v", e, got[0], wc)
		}
	}
	if len(d.BackEdges) != 1 || d.BackEdges[0] != (Edge{3, 1}) {
		t.Fatalf("BackEdges = %v, want [{3 1}]", d.BackEdges)
	}
	if targets := d.BackEdgeTargets(); len(targets) != 1 || targets[0] != 1 {
		t.Fatalf("BackEdgeTargets = %v", targets)
	}
}

func TestEdgeClassStrings(t *testing.T) {
	for _, c := range []EdgeClass{TreeEdge, BackEdge, ForwardEdge, CrossEdge} {
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	if TreeEdge.String() != "tree" || BackEdge.String() != "back" {
		t.Fatal("unexpected class names")
	}
}

func TestDFSOrders(t *testing.T) {
	g := figure1Graph()
	d := NewDFS(g)
	// Pre and PreOrder must be mutually inverse; same for Post.
	for i, v := range d.PreOrder {
		if d.Pre[v] != i {
			t.Fatalf("PreOrder[%d]=%d but Pre[%d]=%d", i, v, v, d.Pre[v])
		}
	}
	for i, v := range d.PostOrder {
		if d.Post[v] != i {
			t.Fatalf("PostOrder[%d]=%d but Post[%d]=%d", i, v, v, d.Post[v])
		}
	}
	// Every non-root reachable node's parent must have a smaller preorder.
	for _, v := range d.PreOrder {
		if p := d.Parent[v]; p >= 0 && d.Pre[p] >= d.Pre[v] {
			t.Fatalf("parent %d of %d has preorder %d >= %d", p, v, d.Pre[p], d.Pre[v])
		}
	}
}

func TestDFSUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3) // 2,3 unreachable
	d := NewDFS(g)
	if d.NumReachable != 2 {
		t.Fatalf("reachable = %d", d.NumReachable)
	}
	if d.Reachable(2) || d.Reachable(3) {
		t.Fatal("2/3 should be unreachable")
	}
	if d.Pre[2] != -1 || d.Post[3] != -1 || d.Parent[2] != -1 {
		t.Fatal("unreachable nodes should have -1 markers")
	}
	if d.IsAncestor(2, 3) || d.IsAncestor(0, 2) {
		t.Fatal("ancestor queries on unreachable nodes must be false")
	}
}

func TestSelfLoopIsBackEdge(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	d := NewDFS(g)
	if len(d.BackEdges) != 1 || d.BackEdges[0] != (Edge{1, 1}) {
		t.Fatalf("self loop not classified as back edge: %v", d.BackEdges)
	}
	if !d.IsBackEdge(1, 1) {
		t.Fatal("IsBackEdge(1,1) = false")
	}
}

func TestReducedSuccsSkipsBackEdges(t *testing.T) {
	g := figure1Graph()
	d := NewDFS(g)
	var succ3 []int
	d.ReducedSuccs(3, func(w int) { succ3 = append(succ3, w) })
	if len(succ3) != 0 {
		t.Fatalf("node 3's only successor is via a back edge; got %v", succ3)
	}
	var succ1 []int
	d.ReducedSuccs(1, func(w int) { succ1 = append(succ1, w) })
	if len(succ1) != 2 { // 2 (tree) and 3 (forward)
		t.Fatalf("reduced succs of 1 = %v", succ1)
	}
}

// The reduced graph must always be acyclic: every reduced edge goes to a
// node with a smaller postorder number.
func TestReducedGraphAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 1+rng.Intn(50))
		d := NewDFS(g)
		for _, v := range d.PreOrder {
			d.ReducedSuccs(v, func(w int) {
				if d.Post[w] >= d.Post[v] {
					t.Fatalf("trial %d: reduced edge %d->%d does not decrease postorder", trial, v, w)
				}
			})
		}
	}
}

// randomGraph builds a connected random graph without importing graphgen
// (which would create an import cycle in tests via cfg).
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(rng.Intn(i), i)
	}
	for k := 0; k < 2*n; k++ {
		s, t := rng.Intn(n), rng.Intn(n)
		if t != 0 {
			g.AddEdge(s, t)
		}
	}
	return g
}

func TestBackEdgeInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := randomGraph(rng, 2+rng.Intn(60))
		d := NewDFS(g)
		// Collected back edges are exactly the edges whose target is a DFS
		// ancestor of the source.
		want := map[Edge]int{}
		for s := 0; s < g.N(); s++ {
			if !d.Reachable(s) {
				continue
			}
			for _, w := range g.Succs[s] {
				if d.IsAncestor(w, s) {
					want[Edge{s, w}]++
				}
			}
		}
		got := map[Edge]int{}
		for _, e := range d.BackEdges {
			got[e]++
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: back edge sets differ: got %v want %v", trial, got, want)
		}
		for e, c := range want {
			if got[e] != c {
				t.Fatalf("trial %d: edge %v count %d want %d", trial, e, got[e], c)
			}
		}
	}
}

func TestFromFunc(t *testing.T) {
	f := ir.MustParse(`
func @g(%a) {
b0:
  if %a -> b1, b2
b1:
  br b3
b2:
  br b3
b3:
  ret
}
`)
	g, index := FromFunc(f)
	if g.N() != 4 {
		t.Fatalf("nodes = %d", g.N())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Successor sets must match the IR.
	for i, b := range f.Blocks {
		if index[b.ID] != i {
			t.Fatalf("index[%d] = %d, want %d", b.ID, index[b.ID], i)
		}
		if len(g.Succs[i]) != len(b.Succs) {
			t.Fatalf("node %d succ count mismatch", i)
		}
	}
	// Duplicate edges must be preserved.
	f2 := ir.MustParse(`
func @dup(%x) {
b0:
  switch %x -> b1, b1
b1:
  ret
}
`)
	g2, _ := FromFunc(f2)
	if len(g2.Succs[0]) != 2 || g2.Succs[0][0] != 1 || g2.Succs[0][1] != 1 {
		t.Fatalf("duplicate edge lost: %v", g2.Succs[0])
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	d := NewDFS(NewGraph(0))
	if d.NumReachable != 0 {
		t.Fatal("empty graph should have no reachable nodes")
	}
	d1 := NewDFS(NewGraph(1))
	if d1.NumReachable != 1 || d1.Pre[0] != 0 || d1.Post[0] != 0 {
		t.Fatal("single node graph mishandled")
	}
	if d1.String() == "" {
		t.Fatal("String should describe the DFS")
	}
}
