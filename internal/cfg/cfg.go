package cfg

import (
	"fmt"
	"strings"

	"fastliveness/internal/ir"
)

// Graph is a rooted directed graph. Node 0 is the entry (the paper's r).
// Parallel edges are allowed; self-loops are allowed anywhere but the entry.
type Graph struct {
	Succs [][]int
	Preds [][]int
}

// NewGraph returns an edgeless graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{Succs: make([][]int, n), Preds: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Succs) }

// AddEdge inserts a directed edge from s to t.
func (g *Graph) AddEdge(s, t int) {
	g.Succs[s] = append(g.Succs[s], t)
	g.Preds[t] = append(g.Preds[t], s)
}

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ss := range g.Succs {
		n += len(ss)
	}
	return n
}

// FromFunc extracts the CFG of f. Node i corresponds to f.Blocks[i]; block
// IDs are not used because they may be sparse after edits. The returned
// index maps block ID to node.
//
// FromFunc runs at the head of every analysis build — including snapshot
// restores, where it is most of what is left to pay — so the adjacency
// rows are carved out of two flat arenas sized from the blocks' own
// degree counts (the IR's edge cross-indices guarantee in-degree ==
// len(b.Preds)): a handful of allocations total instead of two growing
// appends per node, and the arenas are pointer-free so the collector
// never scans the edges. Edge order is identical to the naive
// AddEdge-per-successor construction.
func FromFunc(f *ir.Func) (*Graph, []int) {
	n := len(f.Blocks)
	index := make([]int, f.NumBlocks())
	for i := range index {
		index[i] = -1
	}
	nEdges := 0
	for i, b := range f.Blocks {
		index[b.ID] = i
		nEdges += len(b.Succs)
	}

	g := &Graph{Succs: make([][]int, n), Preds: make([][]int, n)}
	sArena := make([]int, nEdges)
	sOff := 0
	for i, b := range f.Blocks {
		row := sArena[sOff : sOff+len(b.Succs)]
		sOff += len(b.Succs)
		for j, e := range b.Succs {
			row[j] = index[e.B.ID]
		}
		g.Succs[i] = row
	}
	// Pred rows, in the same (source, successor-index) order AddEdge would
	// have produced: carve each row empty at its node's offset, then fill
	// by appending (within the row's fixed capacity) while walking the
	// successor lists source-first.
	pArena := make([]int, nEdges)
	pOff := 0
	for i, b := range f.Blocks {
		g.Preds[i] = pArena[pOff:pOff:pOff+len(b.Preds)]
		pOff += len(b.Preds)
	}
	for i := range f.Blocks {
		for _, t := range g.Succs[i] {
			g.Preds[t] = append(g.Preds[t], i)
		}
	}
	return g, index
}

// Edge is a directed edge.
type Edge struct {
	S, T int
}

// EdgeClass is the DFS classification of an edge (paper Figure 1).
type EdgeClass uint8

const (
	// TreeEdge is an edge of the DFS spanning tree.
	TreeEdge EdgeClass = iota
	// BackEdge leads to a DFS ancestor of its source.
	BackEdge
	// ForwardEdge leads from a DFS ancestor to a non-child descendant.
	ForwardEdge
	// CrossEdge is any other edge; it always points to an already finished
	// subtree.
	CrossEdge
)

// String returns the class name used in Figure 1.
func (c EdgeClass) String() string {
	switch c {
	case TreeEdge:
		return "tree"
	case BackEdge:
		return "back"
	case ForwardEdge:
		return "forward"
	case CrossEdge:
		return "cross"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// DFS holds the result of a depth-first search from the entry.
type DFS struct {
	// Pre and Post are the preorder/postorder numbers, -1 for nodes not
	// reachable from the entry.
	Pre, Post []int
	// PreOrder and PostOrder list reachable nodes in visit/finish order.
	PreOrder, PostOrder []int
	// Parent is the DFS tree parent, -1 for the root and unreachable nodes.
	Parent []int
	// BackEdges lists the edges (s,t) where t is a DFS ancestor of s, in
	// discovery order; the paper's E↑.
	BackEdges []Edge
	// NumReachable counts nodes reachable from the entry.
	NumReachable int

	g *Graph
	// subtreeMax[v] is the largest preorder number inside v's DFS subtree;
	// used for ancestor tests.
	subtreeMax []int
}

// NewDFS runs an iterative depth-first search over g from node 0,
// classifying edges. Successors are explored in adjacency order, so the
// traversal is deterministic.
//
// Like FromFunc, this runs on every build including snapshot restores, so
// the six per-node arrays come out of one arena (pointer-free, one GC
// object) and the visit-order lists are pre-sized to n instead of grown.
func NewDFS(g *Graph) *DFS {
	n := g.N()
	arena := make([]int, 6*n)
	d := &DFS{
		Pre:        arena[0:n:n],
		Post:       arena[n : 2*n : 2*n],
		Parent:     arena[2*n : 3*n : 3*n],
		subtreeMax: arena[3*n : 4*n : 4*n],
		PreOrder:   arena[4*n : 4*n : 5*n],
		PostOrder:  arena[5*n : 5*n : 6*n],
		g:          g,
	}
	for i := 0; i < n; i++ {
		d.Pre[i], d.Post[i], d.Parent[i] = -1, -1, -1
	}
	if n == 0 {
		return d
	}

	type frame struct {
		node int
		next int // next successor index to explore
	}
	stack := make([]frame, 0, n)
	onStack := make([]bool, n) // true while the node's frame is open

	push := func(v, parent int) {
		d.Pre[v] = len(d.PreOrder)
		d.PreOrder = append(d.PreOrder, v)
		d.Parent[v] = parent
		onStack[v] = true
		stack = append(stack, frame{node: v})
	}
	push(0, -1)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		v := fr.node
		if fr.next < len(g.Succs[v]) {
			w := g.Succs[v][fr.next]
			fr.next++
			if d.Pre[w] == -1 {
				push(w, v)
			} else if onStack[w] {
				// w's frame is still open, so w is an ancestor of v (or v
				// itself for self-loops): a back edge.
				d.BackEdges = append(d.BackEdges, Edge{v, w})
			}
			// Forward and cross edges are classified on demand by Classify;
			// only back edges need to be collected eagerly.
			continue
		}
		onStack[v] = false
		d.Post[v] = len(d.PostOrder)
		d.PostOrder = append(d.PostOrder, v)
		d.subtreeMax[v] = len(d.PreOrder) - 1
		stack = stack[:len(stack)-1]
	}
	d.NumReachable = len(d.PreOrder)
	return d
}

// Reachable reports whether v was reached from the entry.
func (d *DFS) Reachable(v int) bool { return d.Pre[v] >= 0 }

// IsAncestor reports whether a is an ancestor of v in the DFS tree
// (every node is an ancestor of itself). It runs in O(1) using the
// preorder-interval property of DFS subtrees.
func (d *DFS) IsAncestor(a, v int) bool {
	if !d.Reachable(a) || !d.Reachable(v) {
		return false
	}
	return d.Pre[a] <= d.Pre[v] && d.Pre[v] <= d.subtreeMax[a]
}

// ClassifyAll returns the class of every edge, in adjacency order per node,
// correctly distinguishing duplicate edges (the first s->t occurrence that
// triggered discovery is the tree edge, later ones are forward edges).
func (d *DFS) ClassifyAll() map[Edge][]EdgeClass {
	out := make(map[Edge][]EdgeClass)
	for s := range d.g.Succs {
		if !d.Reachable(s) {
			continue
		}
		usedTree := map[int]bool{}
		for _, t := range d.g.Succs[s] {
			var c EdgeClass
			switch {
			case d.Parent[t] == s && !usedTree[t]:
				c = TreeEdge
				usedTree[t] = true
			case d.IsAncestor(t, s):
				c = BackEdge
			case d.IsAncestor(s, t):
				c = ForwardEdge
			default:
				c = CrossEdge
			}
			e := Edge{s, t}
			out[e] = append(out[e], c)
		}
	}
	return out
}

// IsBackEdge reports whether (s,t) is a DFS back edge.
func (d *DFS) IsBackEdge(s, t int) bool {
	return d.Reachable(s) && d.IsAncestor(t, s)
}

// BackEdgeTargets returns the distinct targets of back edges, in first-seen
// order.
func (d *DFS) BackEdgeTargets() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range d.BackEdges {
		if !seen[e.T] {
			seen[e.T] = true
			out = append(out, e.T)
		}
	}
	return out
}

// ReducedSuccs calls fn for every reduced-graph successor of v, i.e. every
// successor not reached through a back edge. The reduced graph G̃ (paper
// Definition 4's domain) is a DAG.
func (d *DFS) ReducedSuccs(v int, fn func(w int)) {
	for _, w := range d.g.Succs[v] {
		if !d.IsBackEdge(v, w) {
			fn(w)
		}
	}
}

// String summarizes the DFS for debugging.
func (d *DFS) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dfs: %d reachable, %d back edges\n", d.NumReachable, len(d.BackEdges))
	for _, e := range d.BackEdges {
		fmt.Fprintf(&sb, "  back %d->%d\n", e.S, e.T)
	}
	return sb.String()
}
