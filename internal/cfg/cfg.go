package cfg

import (
	"errors"
	"fmt"
	"strings"

	"fastliveness/internal/ir"
)

// Graph is a rooted directed graph. Node 0 is the entry (the paper's r).
// Parallel edges are allowed; self-loops are allowed anywhere but the entry.
type Graph struct {
	Succs [][]int
	Preds [][]int
}

// NewGraph returns an edgeless graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{Succs: make([][]int, n), Preds: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Succs) }

// AddEdge inserts a directed edge from s to t.
func (g *Graph) AddEdge(s, t int) {
	g.Succs[s] = append(g.Succs[s], t)
	g.Preds[t] = append(g.Preds[t], s)
}

// NumEdges returns the total edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, ss := range g.Succs {
		n += len(ss)
	}
	return n
}

// FromFunc extracts the CFG of f. Node i corresponds to f.Blocks[i]; block
// IDs are not used because they may be sparse after edits. The returned
// index maps block ID to node.
//
// FromFunc runs at the head of every analysis build — including snapshot
// restores, where it is most of what is left to pay — so the adjacency
// rows are carved out of two flat arenas sized from the blocks' own
// degree counts (the IR's edge cross-indices guarantee in-degree ==
// len(b.Preds)): a handful of allocations total instead of two growing
// appends per node, and the arenas are pointer-free so the collector
// never scans the edges. Edge order is identical to the naive
// AddEdge-per-successor construction.
func FromFunc(f *ir.Func) (*Graph, []int) {
	n := len(f.Blocks)
	index := make([]int, f.NumBlocks())
	for i := range index {
		index[i] = -1
	}
	nEdges := 0
	for i, b := range f.Blocks {
		index[b.ID] = i
		nEdges += len(b.Succs)
	}

	g := &Graph{Succs: make([][]int, n), Preds: make([][]int, n)}
	sArena := make([]int, nEdges)
	sOff := 0
	for i, b := range f.Blocks {
		row := sArena[sOff : sOff+len(b.Succs)]
		sOff += len(b.Succs)
		for j, e := range b.Succs {
			row[j] = index[e.B.ID]
		}
		g.Succs[i] = row
	}
	// Pred rows, in the same (source, successor-index) order AddEdge would
	// have produced: carve each row empty at its node's offset, then fill
	// by appending (within the row's fixed capacity) while walking the
	// successor lists source-first.
	pArena := make([]int, nEdges)
	pOff := 0
	for i, b := range f.Blocks {
		g.Preds[i] = pArena[pOff:pOff:pOff+len(b.Preds)]
		pOff += len(b.Preds)
	}
	for i := range f.Blocks {
		for _, t := range g.Succs[i] {
			g.Preds[t] = append(g.Preds[t], i)
		}
	}
	return g, index
}

// AdoptGraph assembles a Graph whose adjacency rows are carved out of the
// four flat arrays — the snapshot-restore path, where the arrays alias a
// read-only file mapping and FromFunc's arena construction (and its cost)
// is skipped entirely. The arrays use FromFunc's layout: succOff/predOff
// are n+1 prefix offsets into succs/preds, and each pred row lists its
// node's incoming sources in (source, successor-index) order.
//
// The arrays arrive from disk, so their shape is validated rather than
// trusted: offsets must be monotone prefix sums covering both edge arrays
// exactly, every endpoint must be a real node, and the pred rows must be
// the exact source-order inverse of the succ rows — one O(n+e) cursor
// walk. A buffer that lies about any of it returns an error instead of a
// graph that would answer adjacency queries wrongly. The rows are aliased,
// not copied, so the adopted graph must never be mutated (AddEdge).
func AdoptGraph(succOff, succs, predOff, preds []int) (*Graph, error) {
	n := len(succOff) - 1
	if n < 0 || len(predOff) != n+1 {
		return nil, fmt.Errorf("cfg: adopt: offset arrays have %d/%d entries", len(succOff), len(predOff))
	}
	if len(succs) != len(preds) {
		return nil, fmt.Errorf("cfg: adopt: %d successor vs %d predecessor entries", len(succs), len(preds))
	}
	if n == 0 {
		if succOff[0] != 0 || predOff[0] != 0 || len(succs) != 0 {
			return nil, errors.New("cfg: adopt: nonempty edges for empty graph")
		}
		return &Graph{}, nil
	}
	if succOff[0] != 0 || predOff[0] != 0 || succOff[n] != len(succs) || predOff[n] != len(preds) {
		return nil, errors.New("cfg: adopt: offsets do not cover the edge arrays")
	}
	for i := 0; i < n; i++ {
		if succOff[i+1] < succOff[i] || predOff[i+1] < predOff[i] {
			return nil, fmt.Errorf("cfg: adopt: offsets decrease at node %d", i)
		}
	}
	for _, t := range succs {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("cfg: adopt: successor %d out of range", t)
		}
	}
	// Pred rows must be the exact inverse FromFunc produces: walking the
	// succ rows source-first, each edge (s,t) appends s to t's pred row.
	cursor := make([]int, n)
	for s := 0; s < n; s++ {
		for _, t := range succs[succOff[s]:succOff[s+1]] {
			i := predOff[t] + cursor[t]
			if i >= predOff[t+1] || preds[i] != s {
				return nil, fmt.Errorf("cfg: adopt: pred rows are not the inverse of succ rows at edge %d->%d", s, t)
			}
			cursor[t]++
		}
	}
	for t := 0; t < n; t++ {
		if cursor[t] != predOff[t+1]-predOff[t] {
			return nil, fmt.Errorf("cfg: adopt: node %d has %d extra pred entries", t, predOff[t+1]-predOff[t]-cursor[t])
		}
	}
	g := &Graph{Succs: make([][]int, n), Preds: make([][]int, n)}
	for i := 0; i < n; i++ {
		g.Succs[i] = succs[succOff[i]:succOff[i+1]:succOff[i+1]]
		g.Preds[i] = preds[predOff[i]:predOff[i+1]:predOff[i+1]]
	}
	return g, nil
}

// Edge is a directed edge.
type Edge struct {
	S, T int
}

// EdgeClass is the DFS classification of an edge (paper Figure 1).
type EdgeClass uint8

const (
	// TreeEdge is an edge of the DFS spanning tree.
	TreeEdge EdgeClass = iota
	// BackEdge leads to a DFS ancestor of its source.
	BackEdge
	// ForwardEdge leads from a DFS ancestor to a non-child descendant.
	ForwardEdge
	// CrossEdge is any other edge; it always points to an already finished
	// subtree.
	CrossEdge
)

// String returns the class name used in Figure 1.
func (c EdgeClass) String() string {
	switch c {
	case TreeEdge:
		return "tree"
	case BackEdge:
		return "back"
	case ForwardEdge:
		return "forward"
	case CrossEdge:
		return "cross"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// DFS holds the result of a depth-first search from the entry.
type DFS struct {
	// Pre and Post are the preorder/postorder numbers, -1 for nodes not
	// reachable from the entry.
	Pre, Post []int
	// PreOrder and PostOrder list reachable nodes in visit/finish order.
	PreOrder, PostOrder []int
	// Parent is the DFS tree parent, -1 for the root and unreachable nodes.
	Parent []int
	// BackEdges lists the edges (s,t) where t is a DFS ancestor of s, in
	// discovery order; the paper's E↑.
	BackEdges []Edge
	// NumReachable counts nodes reachable from the entry.
	NumReachable int

	g *Graph
	// subtreeMax[v] is the largest preorder number inside v's DFS subtree;
	// used for ancestor tests.
	subtreeMax []int
}

// NewDFS runs an iterative depth-first search over g from node 0,
// classifying edges. Successors are explored in adjacency order, so the
// traversal is deterministic.
//
// Like FromFunc, this runs on every build including snapshot restores, so
// the six per-node arrays come out of one arena (pointer-free, one GC
// object) and the visit-order lists are pre-sized to n instead of grown.
func NewDFS(g *Graph) *DFS {
	n := g.N()
	arena := make([]int, 6*n)
	d := &DFS{
		Pre:        arena[0:n:n],
		Post:       arena[n : 2*n : 2*n],
		Parent:     arena[2*n : 3*n : 3*n],
		subtreeMax: arena[3*n : 4*n : 4*n],
		PreOrder:   arena[4*n : 4*n : 5*n],
		PostOrder:  arena[5*n : 5*n : 6*n],
		g:          g,
	}
	for i := 0; i < n; i++ {
		d.Pre[i], d.Post[i], d.Parent[i] = -1, -1, -1
	}
	if n == 0 {
		return d
	}

	type frame struct {
		node int
		next int // next successor index to explore
	}
	stack := make([]frame, 0, n)
	onStack := make([]bool, n) // true while the node's frame is open

	push := func(v, parent int) {
		d.Pre[v] = len(d.PreOrder)
		d.PreOrder = append(d.PreOrder, v)
		d.Parent[v] = parent
		onStack[v] = true
		stack = append(stack, frame{node: v})
	}
	push(0, -1)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		v := fr.node
		if fr.next < len(g.Succs[v]) {
			w := g.Succs[v][fr.next]
			fr.next++
			if d.Pre[w] == -1 {
				push(w, v)
			} else if onStack[w] {
				// w's frame is still open, so w is an ancestor of v (or v
				// itself for self-loops): a back edge.
				d.BackEdges = append(d.BackEdges, Edge{v, w})
			}
			// Forward and cross edges are classified on demand by Classify;
			// only back edges need to be collected eagerly.
			continue
		}
		onStack[v] = false
		d.Post[v] = len(d.PostOrder)
		d.PostOrder = append(d.PostOrder, v)
		d.subtreeMax[v] = len(d.PreOrder) - 1
		stack = stack[:len(stack)-1]
	}
	d.NumReachable = len(d.PreOrder)
	return d
}

// SubtreeMax exposes the per-node maximum preorder number inside each
// node's DFS subtree (the interval bound behind IsAncestor). The snapshot
// package persists it alongside the public arrays so a restore can adopt
// the DFS instead of re-running it. Read-only: the slice is the DFS's own
// backing array.
func (d *DFS) SubtreeMax() []int { return d.subtreeMax }

// AdoptDFS assembles a DFS over g from precomputed arrays — the
// snapshot-restore counterpart of NewDFS, skipping the traversal. The
// arrays arrive from disk, so AdoptDFS validates that they describe a
// self-consistent spanning tree of preorder intervals before trusting
// them: pre/post must be inverse permutations of the order lists,
// unreachable nodes must be marked so in all three per-node arrays, the
// root must be node 0 with no parent, every non-root's parent interval
// must enclose its own, and every claimed back edge must run to a DFS
// ancestor under those intervals. Any violation returns an error, never a
// DFS that would answer IsAncestor/IsBackEdge incoherently. The slices are
// aliased, not copied, so the adopted DFS (like its graph) is read-only.
func AdoptDFS(g *Graph, pre, post, parent, subtreeMax, preOrder, postOrder []int, backEdges []Edge) (*DFS, error) {
	n := g.N()
	r := len(preOrder)
	if len(pre) != n || len(post) != n || len(parent) != n || len(subtreeMax) != n {
		return nil, fmt.Errorf("cfg: adopt dfs: per-node arrays sized %d/%d/%d/%d for %d nodes",
			len(pre), len(post), len(parent), len(subtreeMax), n)
	}
	if r > n || len(postOrder) != r {
		return nil, fmt.Errorf("cfg: adopt dfs: order lists sized %d/%d for %d nodes", r, len(postOrder), n)
	}
	for i, v := range preOrder {
		if v < 0 || v >= n || pre[v] != i {
			return nil, fmt.Errorf("cfg: adopt dfs: preorder[%d] = %d inconsistent with pre", i, v)
		}
	}
	for i, v := range postOrder {
		if v < 0 || v >= n || post[v] != i {
			return nil, fmt.Errorf("cfg: adopt dfs: postorder[%d] = %d inconsistent with post", i, v)
		}
	}
	reach := 0
	for v := 0; v < n; v++ {
		if pre[v] < 0 {
			if pre[v] != -1 || post[v] != -1 || parent[v] != -1 {
				return nil, fmt.Errorf("cfg: adopt dfs: unreachable node %d has partial visit state", v)
			}
			continue
		}
		reach++
		if post[v] < 0 || post[v] >= r {
			return nil, fmt.Errorf("cfg: adopt dfs: reachable node %d has post %d", v, post[v])
		}
		if subtreeMax[v] < pre[v] || subtreeMax[v] >= r {
			return nil, fmt.Errorf("cfg: adopt dfs: node %d has subtree bound %d outside [%d,%d)", v, subtreeMax[v], pre[v], r)
		}
		if pre[v] == 0 {
			if v != 0 || parent[v] != -1 {
				return nil, fmt.Errorf("cfg: adopt dfs: preorder starts at node %d (parent %d)", v, parent[v])
			}
			continue
		}
		p := parent[v]
		if p < 0 || p >= n || pre[p] < 0 || pre[p] >= pre[v] ||
			pre[v] > subtreeMax[p] || subtreeMax[v] > subtreeMax[p] {
			return nil, fmt.Errorf("cfg: adopt dfs: node %d's interval escapes its parent %d", v, p)
		}
	}
	if reach != r {
		return nil, fmt.Errorf("cfg: adopt dfs: %d nodes marked reachable, order lists %d", reach, r)
	}
	if r > 0 && preOrder[0] != 0 {
		return nil, errors.New("cfg: adopt dfs: entry is not the first preorder node")
	}
	d := &DFS{
		Pre: pre, Post: post, Parent: parent,
		PreOrder: preOrder, PostOrder: postOrder,
		BackEdges:    backEdges,
		NumReachable: r,
		g:            g,
		subtreeMax:   subtreeMax,
	}
	for _, e := range backEdges {
		if e.S < 0 || e.S >= n || e.T < 0 || e.T >= n || !d.IsAncestor(e.T, e.S) {
			return nil, fmt.Errorf("cfg: adopt dfs: claimed back edge %d->%d is not ancestor-directed", e.S, e.T)
		}
	}
	return d, nil
}

// Reachable reports whether v was reached from the entry.
func (d *DFS) Reachable(v int) bool { return d.Pre[v] >= 0 }

// IsAncestor reports whether a is an ancestor of v in the DFS tree
// (every node is an ancestor of itself). It runs in O(1) using the
// preorder-interval property of DFS subtrees.
func (d *DFS) IsAncestor(a, v int) bool {
	if !d.Reachable(a) || !d.Reachable(v) {
		return false
	}
	return d.Pre[a] <= d.Pre[v] && d.Pre[v] <= d.subtreeMax[a]
}

// ClassifyAll returns the class of every edge, in adjacency order per node,
// correctly distinguishing duplicate edges (the first s->t occurrence that
// triggered discovery is the tree edge, later ones are forward edges).
func (d *DFS) ClassifyAll() map[Edge][]EdgeClass {
	out := make(map[Edge][]EdgeClass)
	for s := range d.g.Succs {
		if !d.Reachable(s) {
			continue
		}
		usedTree := map[int]bool{}
		for _, t := range d.g.Succs[s] {
			var c EdgeClass
			switch {
			case d.Parent[t] == s && !usedTree[t]:
				c = TreeEdge
				usedTree[t] = true
			case d.IsAncestor(t, s):
				c = BackEdge
			case d.IsAncestor(s, t):
				c = ForwardEdge
			default:
				c = CrossEdge
			}
			e := Edge{s, t}
			out[e] = append(out[e], c)
		}
	}
	return out
}

// IsBackEdge reports whether (s,t) is a DFS back edge.
func (d *DFS) IsBackEdge(s, t int) bool {
	return d.Reachable(s) && d.IsAncestor(t, s)
}

// BackEdgeTargets returns the distinct targets of back edges, in first-seen
// order.
func (d *DFS) BackEdgeTargets() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range d.BackEdges {
		if !seen[e.T] {
			seen[e.T] = true
			out = append(out, e.T)
		}
	}
	return out
}

// ReducedSuccs calls fn for every reduced-graph successor of v, i.e. every
// successor not reached through a back edge. The reduced graph G̃ (paper
// Definition 4's domain) is a DAG.
func (d *DFS) ReducedSuccs(v int, fn func(w int)) {
	for _, w := range d.g.Succs[v] {
		if !d.IsBackEdge(v, w) {
			fn(w)
		}
	}
}

// String summarizes the DFS for debugging.
func (d *DFS) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dfs: %d reachable, %d back edges\n", d.NumReachable, len(d.BackEdges))
	for _, e := range d.BackEdges {
		fmt.Fprintf(&sb, "  back %d->%d\n", e.S, e.T)
	}
	return sb.String()
}
