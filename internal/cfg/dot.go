package cfg

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz format. When a DFS is supplied, edges
// are styled by class — back edges dashed, cross edges dotted — echoing the
// paper's Figure 1 conventions. labels may be nil (nodes print their
// index).
func (g *Graph) Dot(name string, d *DFS, labels []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box];\n", name)
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprint(v)
		if labels != nil && v < len(labels) && labels[v] != "" {
			label = labels[v]
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", v, label)
	}
	var classes map[Edge][]EdgeClass
	if d != nil {
		classes = d.ClassifyAll()
	}
	emitted := map[Edge]int{}
	for s := 0; s < g.N(); s++ {
		for _, t := range g.Succs[s] {
			style := ""
			if classes != nil {
				e := Edge{s, t}
				cls := classes[e]
				if i := emitted[e]; i < len(cls) {
					switch cls[i] {
					case BackEdge:
						style = " [style=dashed, constraint=false]"
					case CrossEdge:
						style = " [style=dotted]"
					case ForwardEdge:
						style = " [color=gray]"
					}
				}
				emitted[e]++
			}
			fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", s, t, style)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
