package bitset

import (
	"math/rand"
	"testing"
)

// TestMatrixDifferential drives a Matrix and a mirror of independent Sets
// through the same random operation sequence and demands they agree on
// every observable: Has, NextSet, Count, Elements, and the word-level
// Row* ops against their Set-API counterparts. This is the storage
// rewrite's safety net — the arena must be semantically invisible.
func TestMatrixDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(12)
		n := rng.Intn(200) // deliberately crosses the 64/128-bit word edges
		m := NewMatrix(rows, n)
		mirror := make([]*Set, rows)
		for i := range mirror {
			mirror[i] = New(n)
		}
		extra := New(n) // a standalone set rows interoperate with
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				extra.Add(i)
			}
		}
		for step := 0; step < 300; step++ {
			i := rng.Intn(rows)
			j := rng.Intn(rows)
			switch op := rng.Intn(8); {
			case op == 0 && n > 0:
				x := rng.Intn(n)
				m.RowAdd(i, x)
				mirror[i].Add(x)
			case op == 1 && n > 0:
				x := rng.Intn(n)
				m.Row(i).Remove(x)
				mirror[i].Remove(x)
			case op == 2:
				if got, want := m.RowUnion(i, j), mirror[i].Union(mirror[j]); i != j && got != want {
					t.Fatalf("trial %d step %d: RowUnion(%d,%d) changed=%v, Set says %v",
						trial, step, i, j, got, want)
				}
			case op == 3:
				m.Row(i).Subtract(mirror[j].Clone()) // clone: subtracting the live mirror of row i from itself must still mirror
				mirror[i].Subtract(mirror[j])
			case op == 4:
				m.Row(i).Union(extra)
				mirror[i].Union(extra)
			case op == 5:
				m.Row(i).Clear()
				mirror[i].Clear()
			case op == 6:
				m.Row(i).Copy(mirror[j])
				mirror[i].Copy(mirror[j])
			case op == 7:
				if got, want := m.RowIntersects(i, extra), mirror[i].Intersects(extra); got != want {
					t.Fatalf("trial %d step %d: RowIntersects=%v, Set says %v", trial, step, got, want)
				}
			}
			// Observables after every step.
			for r := 0; r < rows; r++ {
				if !m.Row(r).Equal(mirror[r]) {
					t.Fatalf("trial %d step %d: row %d = %v, mirror %v", trial, step, r, m.Row(r), mirror[r])
				}
				if got, want := m.Row(r).Count(), mirror[r].Count(); got != want {
					t.Fatalf("trial %d step %d: row %d Count=%d, want %d", trial, step, r, got, want)
				}
			}
			if n == 0 {
				continue
			}
			x := rng.Intn(n)
			if got, want := m.RowHas(i, x), mirror[i].Has(x); got != want {
				t.Fatalf("trial %d step %d: RowHas(%d,%d)=%v, want %v", trial, step, i, x, got, want)
			}
			if got, want := m.RowNextSet(i, x), mirror[i].NextSet(x); got != want {
				t.Fatalf("trial %d step %d: RowNextSet(%d,%d)=%d, want %d", trial, step, i, x, got, want)
			}
			except := rng.Intn(n)
			inter := mirror[i].Clone()
			inter.Intersect(extra)
			if got, want := m.RowIntersectsExcept(i, extra, except), inter.AnyExcept(except); got != want {
				t.Fatalf("trial %d step %d: RowIntersectsExcept(%d, except=%d)=%v, want %v",
					trial, step, i, except, got, want)
			}
		}
	}
}

func TestMatrixShape(t *testing.T) {
	m := NewMatrix(3, 70)
	if m.Rows() != 3 || m.Len() != 70 {
		t.Fatalf("shape = %d×%d, want 3×70", m.Rows(), m.Len())
	}
	// 70 bits → 2 words per row → 3*2*8 bytes, and the Set-view accounting
	// must agree with the arena accounting (the §6.1 unification).
	if m.WordBytes() != 48 {
		t.Fatalf("WordBytes = %d, want 48", m.WordBytes())
	}
	if got := TotalWordBytes(m.Views()); got != m.WordBytes() {
		t.Fatalf("TotalWordBytes over views = %d, arena says %d", got, m.WordBytes())
	}
	if m.Row(1) != m.Row(1) {
		t.Fatal("Row must return a stable pointer")
	}
	var nilM *Matrix
	if nilM.WordBytes() != 0 {
		t.Fatal("nil matrix must weigh zero bytes")
	}
	// Mutation through a view is visible to the word-level API and stays in
	// its row.
	m.Row(1).Add(69)
	if !m.RowHas(1, 69) || m.RowHas(0, 69) || m.RowHas(2, 69) {
		t.Fatal("view mutation leaked across rows")
	}
	if m.RowNextSet(1, 0) != 69 || m.RowNextSet(0, 0) != None {
		t.Fatal("RowNextSet disagrees with view mutation")
	}
}

func TestSetAnyExcept(t *testing.T) {
	s := New(130)
	if s.AnyExcept(5) {
		t.Fatal("empty set has no elements at all")
	}
	s.Add(77)
	if s.AnyExcept(77) {
		t.Fatal("{77} has nothing except 77")
	}
	if !s.AnyExcept(5) || !s.AnyExcept(-1) || !s.AnyExcept(999) {
		t.Fatal("{77} has an element except 5 / out-of-range")
	}
	s.Add(128)
	if !s.AnyExcept(77) || !s.AnyExcept(128) {
		t.Fatal("two elements: AnyExcept of either is true")
	}
}
