// Package bitset provides dense, fixed-universe bit sets.
//
// The liveness checker of Boissinot et al. stores one reduced-reachability
// set R_v and one back-edge-target set T_v per CFG node, both as bitsets
// indexed by dominance-tree preorder numbers (paper §5.1). The operations
// here mirror the primitives the paper's Algorithm 3 relies on, in
// particular NextSet, the Go analogue of the paper's bitset_next_set.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// None is returned by NextSet when no further bit is set. It plays the role
// of MAX_INT in the paper's pseudocode.
const None = int(^uint(0) >> 1)

// Set is a fixed-capacity bit set over the universe [0, Len()).
// The zero value is an empty set of capacity zero; use New for a sized set.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set holding elements in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if uint(i) >= uint(s.n) {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if uint(i) >= uint(s.n) {
		panic("bitset: index " + strconv.Itoa(i) + " out of range [0," + strconv.Itoa(s.n) + ")")
	}
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// AnyExcept reports whether the set contains any element other than i.
// An out-of-range i excludes nothing. The set-based live-out check uses it
// for Algorithm 2's "some use lies elsewhere" test at the defining node.
func (s *Set) AnyExcept(i int) bool {
	mi, mb := -1, uint64(0)
	if uint(i) < uint(s.n) {
		mi, mb = i/wordBits, 1<<uint(i%wordBits)
	}
	for wi, w := range s.words {
		if wi == mi {
			w &^= mb
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// Union adds every element of o to s and reports whether s changed.
// The sets must share the same universe size.
func (s *Set) Union(o *Set) bool {
	s.same(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect removes from s every element not in o.
func (s *Set) Intersect(o *Set) {
	s.same(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Subtract removes every element of o from s.
func (s *Set) Subtract(o *Set) {
	s.same(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	s.same(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Copy overwrites s with the contents of o.
func (s *Set) Copy(o *Set) {
	s.same(o)
	copy(s.words, o.words)
}

// Clone returns a fresh set with the same universe and contents.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.same(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

func (s *Set) same(o *Set) {
	if s.n != o.n {
		panic("bitset: universe size mismatch: " + strconv.Itoa(s.n) + " vs " + strconv.Itoa(o.n))
	}
}

// NextSet returns the position of the first set bit at or after from, or
// None when no further bit is set. It is the paper's bitset_next_set.
func (s *Set) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return None
	}
	wi := from / wordBits
	w := s.words[wi] >> uint(from%wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return None
}

// ForEach calls f for every element of the set in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			f(wi*wordBits + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Elements returns the elements of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// WordBytes returns the memory footprint of the payload in bytes. Used by
// the benchmark harness to reproduce the paper's memory discussion (§6.1).
func (s *Set) WordBytes() int { return len(s.words) * 8 }

// TotalWordBytes sums WordBytes over slices of sets — the one definition of
// set-payload footprint every engine's MemoryBytes reports, so the §6.1
// cross-backend memory comparison can never use inconsistent accounting.
func TotalWordBytes(sets ...[]*Set) int {
	total := 0
	for _, ss := range sets {
		for _, s := range ss {
			total += s.WordBytes()
		}
	}
	return total
}

// String renders the set as {a, b, c} for debugging and test failures.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
