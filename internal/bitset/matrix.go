package bitset

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
)

// Matrix is an arena of fixed-width bit sets: rows × n bits in one
// contiguous []uint64, row i occupying words[i*wpr : (i+1)*wpr]. The
// liveness engines store one set per CFG node with identical universes
// (the R and T sets of the checker, the live-in/live-out vectors of the
// set-producing baselines), so backing them all with one allocation
// replaces O(n) little heap objects per function with O(1) and lays the
// T_q candidate walk out cache-line-contiguously — the constant-factor
// concern of the paper's §5–§6.1 precompute/query trade-off.
//
// Rows are reachable two ways: the word-level Row* methods below index the
// arena directly, and Row(i) returns a *Set view sharing the arena, so a
// row participates in the whole existing Set API (Union, Subtract, Clone,
// Elements, ...) and interoperates with standalone sets and with rows of
// other matrices.
type Matrix struct {
	words []uint64
	rows  []Set // one header per row, words aliasing the arena
	wpr   int   // words per row
	n     int   // universe per row
}

// NewMatrix returns an all-zero matrix of the given row count, each row a
// set over the universe [0, n).
func NewMatrix(rows, n int) *Matrix {
	if rows < 0 || n < 0 {
		panic("bitset: negative matrix dimension")
	}
	wpr := (n + wordBits - 1) / wordBits
	m := &Matrix{words: make([]uint64, rows*wpr), wpr: wpr, n: n}
	m.rows = make([]Set, rows)
	for i := range m.rows {
		m.rows[i] = Set{words: m.words[i*wpr : (i+1)*wpr : (i+1)*wpr], n: n}
	}
	return m
}

// AdoptMatrix wraps an existing word arena as a rows × n matrix without
// copying: the matrix aliases words, so the caller's buffer (a decoded
// snapshot, an mmap'd file) becomes live set storage with zero per-row
// allocation. The arena must hold exactly rows*wordsPerRow(n) words; a
// mismatch is an error, not a panic — adopted data arrives from disk, and
// corrupt inputs must degrade gracefully.
func AdoptMatrix(words []uint64, rows, n int) (*Matrix, error) {
	if rows < 0 || n < 0 {
		return nil, errors.New("bitset: negative matrix dimension")
	}
	wpr := (n + wordBits - 1) / wordBits
	if len(words) != rows*wpr {
		return nil, fmt.Errorf("bitset: adopt %d words for %d×%d matrix (want %d)",
			len(words), rows, n, rows*wpr)
	}
	m := &Matrix{words: words, wpr: wpr, n: n}
	m.rows = make([]Set, rows)
	for i := range m.rows {
		m.rows[i] = Set{words: m.words[i*wpr : (i+1)*wpr : (i+1)*wpr], n: n}
	}
	return m, nil
}

// Words exposes the backing arena: rows*wordsPerRow contiguous uint64s, row
// i at [i*wpr, (i+1)*wpr). It is the zero-copy export AdoptMatrix is the
// import for — serializers write these words verbatim and re-adopt them on
// load. The slice aliases live storage; treat it as read-only unless the
// matrix is otherwise unreferenced. Nil matrices export nil.
func (m *Matrix) Words() []uint64 {
	if m == nil {
		return nil
	}
	return m.words
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return len(m.rows) }

// Len returns the per-row universe size.
func (m *Matrix) Len() int { return m.n }

// Row returns row i as a *Set view over the arena. The view is live — Set
// mutators write the matrix — and stable: repeated calls return the same
// pointer, so holding Row results is allocation-free.
func (m *Matrix) Row(i int) *Set { return &m.rows[i] }

// Views returns all rows as a []*Set, for call sites built around slices
// of sets (the data-flow solver's live vectors). The slice costs one
// allocation; the sets alias the arena.
func (m *Matrix) Views() []*Set {
	out := make([]*Set, len(m.rows))
	for i := range m.rows {
		out[i] = &m.rows[i]
	}
	return out
}

// RowAdd inserts x into row i.
func (m *Matrix) RowAdd(i, x int) {
	if uint(x) >= uint(m.n) {
		panic("bitset: index " + strconv.Itoa(x) + " out of range [0," + strconv.Itoa(m.n) + ")")
	}
	m.words[i*m.wpr+x/wordBits] |= 1 << uint(x%wordBits)
}

// RowHas reports whether x is in row i, with Set.Has's out-of-range
// tolerance (false).
func (m *Matrix) RowHas(i, x int) bool {
	if uint(x) >= uint(m.n) {
		return false
	}
	return m.words[i*m.wpr+x/wordBits]&(1<<uint(x%wordBits)) != 0
}

// RowUnion unions row src into row dst (both of m) and reports whether dst
// changed. This is the precompute workhorse: one bounds check, then a pure
// word loop over two arena slices.
func (m *Matrix) RowUnion(dst, src int) bool {
	if dst == src {
		return false
	}
	d := m.words[dst*m.wpr : (dst+1)*m.wpr]
	s := m.words[src*m.wpr : (src+1)*m.wpr]
	changed := false
	for i, w := range s {
		nw := d[i] | w
		if nw != d[i] {
			d[i] = nw
			changed = true
		}
	}
	return changed
}

// RowIntersects reports whether row i and s share an element — the query
// hot path's "R_t ∩ uses(a) ≠ ∅" as a single word loop. The universes must
// match.
func (m *Matrix) RowIntersects(i int, s *Set) bool {
	m.same(s)
	row := m.words[i*m.wpr : (i+1)*m.wpr]
	for wi, w := range s.words {
		if row[wi]&w != 0 {
			return true
		}
	}
	return false
}

// RowIntersectsExcept is RowIntersects with the element except masked out
// of the intersection — the live-out check's "a use at q itself only
// witnesses the trivial path" rule, without leaving word granularity. An
// out-of-range except masks nothing.
func (m *Matrix) RowIntersectsExcept(i int, s *Set, except int) bool {
	m.same(s)
	row := m.words[i*m.wpr : (i+1)*m.wpr]
	ei, eb := -1, uint64(0)
	if uint(except) < uint(m.n) {
		ei, eb = except/wordBits, 1<<uint(except%wordBits)
	}
	for wi, w := range s.words {
		x := row[wi] & w
		if wi == ei {
			x &^= eb
		}
		if x != 0 {
			return true
		}
	}
	return false
}

// RowNextSet returns the position of the first set bit of row i at or
// after from, or None — bitset_next_set against the arena, for one-shot
// probes. Walks that rescan the same row (the T_q candidate loop) hoist
// Row(i) once and use Set.NextSet instead, amortizing the row lookup.
func (m *Matrix) RowNextSet(i, from int) int {
	if from < 0 {
		from = 0
	}
	if from >= m.n {
		return None
	}
	row := m.words[i*m.wpr : (i+1)*m.wpr]
	wi := from / wordBits
	if w := row[wi] >> uint(from%wordBits); w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(row); wi++ {
		if row[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(row[wi])
		}
	}
	return None
}

// WordBytes returns the arena footprint in bytes — the one footprint
// definition matrix-backed engines report from MemoryBytes, consistent
// with summing Set.WordBytes over the row views. Nil matrices (a checker
// that dropped its T arena for the sorted-array variant) weigh zero.
func (m *Matrix) WordBytes() int {
	if m == nil {
		return 0
	}
	return len(m.words) * 8
}

func (m *Matrix) same(s *Set) {
	if s.n != m.n {
		panic("bitset: universe size mismatch: " + strconv.Itoa(m.n) + " vs " + strconv.Itoa(s.n))
	}
}
