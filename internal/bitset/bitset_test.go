package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicAddHasRemove(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("after Add(%d), Has = false", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Remove(64) did not remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after remove = %d, want 7", got)
	}
}

func TestHasOutOfRangeIsFalse(t *testing.T) {
	s := New(10)
	if s.Has(-1) || s.Has(10) || s.Has(1<<30) {
		t.Fatal("out-of-range Has should be false")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range should panic")
		}
	}()
	New(4).Add(4)
}

func TestUnionIntersectSubtract(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Clone()
	if !u.Union(b) {
		t.Fatal("Union should report change")
	}
	if u.Union(b) {
		t.Fatal("second Union should report no change")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Has(i) != want {
			t.Fatalf("union Has(%d) = %v, want %v", i, u.Has(i), want)
		}
	}
	x := a.Clone()
	x.Intersect(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if x.Has(i) != want {
			t.Fatalf("intersect Has(%d) = %v, want %v", i, x.Has(i), want)
		}
	}
	d := a.Clone()
	d.Subtract(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Has(i) != want {
			t.Fatalf("subtract Has(%d) = %v, want %v", i, d.Has(i), want)
		}
	}
}

func TestIntersects(t *testing.T) {
	a := New(200)
	b := New(200)
	if a.Intersects(b) {
		t.Fatal("empty sets should not intersect")
	}
	a.Add(150)
	if a.Intersects(b) {
		t.Fatal("disjoint sets should not intersect")
	}
	b.Add(150)
	if !a.Intersects(b) {
		t.Fatal("sets sharing 150 should intersect")
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	for _, i := range []int{3, 64, 65, 190, 299} {
		s.Add(i)
	}
	cases := []struct{ from, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 65},
		{66, 190}, {191, 299}, {299, 299}, {300, None}, {1000, None},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(64).NextSet(0); got != None {
		t.Errorf("NextSet on empty = %d, want None", got)
	}
}

func TestNextSetScanMatchesHas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		// Walk via NextSet and via Has; the sequences must agree.
		var viaNext []int
		for i := s.NextSet(0); i != None; i = s.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		var viaHas []int
		for i := 0; i < n; i++ {
			if s.Has(i) {
				viaHas = append(viaHas, i)
			}
		}
		if len(viaNext) != len(viaHas) {
			t.Fatalf("n=%d: NextSet walk found %d elements, Has walk %d", n, len(viaNext), len(viaHas))
		}
		for i := range viaNext {
			if viaNext[i] != viaHas[i] {
				t.Fatalf("n=%d: element %d differs: %d vs %d", n, i, viaNext[i], viaHas[i])
			}
		}
		if got, want := s.Count(), len(viaHas); got != want {
			t.Fatalf("Count = %d, want %d", got, want)
		}
	}
}

func TestElementsAndForEachOrder(t *testing.T) {
	s := New(128)
	want := []int{5, 17, 63, 64, 100}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestCloneEqualCopy(t *testing.T) {
	a := New(77)
	a.Add(0)
	a.Add(76)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Add(33)
	if a.Equal(b) {
		t.Fatal("mutating clone changed original equality")
	}
	if a.Has(33) {
		t.Fatal("clone aliases original storage")
	}
	c := New(77)
	c.Copy(b)
	if !c.Equal(b) {
		t.Fatal("Copy produced unequal set")
	}
	if a.Equal(New(78)) {
		t.Fatal("sets with different universes must not be Equal")
	}
}

func TestSubsetOf(t *testing.T) {
	a := New(50)
	b := New(50)
	a.Add(10)
	b.Add(10)
	b.Add(20)
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !New(50).SubsetOf(a) {
		t.Fatal("empty set is a subset of everything")
	}
}

func TestClearEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	s.Add(99)
	if s.Empty() {
		t.Fatal("set with element reported empty")
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear did not empty the set")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
	s.Add(1)
	s.Add(9)
	if got := s.String(); got != "{1, 9}" {
		t.Fatalf("String = %q", got)
	}
}

func TestWordBytes(t *testing.T) {
	if got := New(1).WordBytes(); got != 8 {
		t.Fatalf("WordBytes(1) = %d, want 8", got)
	}
	if got := New(64).WordBytes(); got != 8 {
		t.Fatalf("WordBytes(64) = %d, want 8", got)
	}
	if got := New(65).WordBytes(); got != 16 {
		t.Fatalf("WordBytes(65) = %d, want 16", got)
	}
	if got := New(0).WordBytes(); got != 0 {
		t.Fatalf("WordBytes(0) = %d, want 0", got)
	}
}

// Property: Union is commutative and associative with respect to membership.
func TestQuickUnionProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		n := 1 << 12
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x) % n)
		}
		for _, y := range ys {
			b.Add(int(y) % n)
		}
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			return false
		}
		// Membership matches the slice-level union.
		want := map[int]bool{}
		for _, x := range xs {
			want[int(x)%n] = true
		}
		for _, y := range ys {
			want[int(y)%n] = true
		}
		if ab.Count() != len(want) {
			return false
		}
		for k := range want {
			if !ab.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersects(a,b) == !(a ∩ b).Empty().
func TestQuickIntersects(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		n := 1 << 12
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Add(int(x) % n)
		}
		for _, y := range ys {
			b.Add(int(y) % n)
		}
		c := a.Clone()
		c.Intersect(b)
		return a.Intersects(b) == !c.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
