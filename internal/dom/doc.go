// Package dom computes dominator trees, the dominance-preorder numbering
// the paper's bitset implementation indexes by (§5.1), and dominance
// frontiers (used by SSA construction, not by the checker itself).
//
// The numbering is the load-bearing part for liveness checking: a node's
// dominance subtree occupies the contiguous interval [Num[v], MaxNum[v]],
// so "w strictly dominated by v" is an O(1) interval test, the §5.1
// subtree-skipping optimization walks T sets in preorder, and Theorem 2's
// "most-dominating relevant back-edge target" is simply the lowest set bit
// of a T bitset. Package core depends on exactly these properties.
//
// Two independent constructions are provided and cross-checked by the test
// suite: the iterative algorithm of Cooper, Harvey and Kennedy ("A Simple,
// Fast Dominance Algorithm") — the default, dom.Iterative — and the classic
// Lengauer–Tarjan algorithm with path compression (lt.go). Both run in
// effectively O(|E|) on the CFG sizes the paper reports (§6.1: avg 35
// blocks, max ~2240). IrreducibleBackEdges and IsReducible implement the
// §6.1 reducibility measurement: a back edge contributes irreducibility
// when its target does not dominate its source.
package dom
