package dom

import (
	"errors"
	"fmt"

	"fastliveness/internal/cfg"
)

// Tree is a dominator tree over a graph's nodes, with the preorder
// numbering of §5.1: a node's dominance subtree occupies the contiguous
// interval [Num[v], MaxNum[v]], so "w strictly dominated by v" is the O(1)
// test Num[v] < Num[w] && Num[w] <= MaxNum[v].
type Tree struct {
	// Idom maps node -> immediate dominator; -1 for the entry and for nodes
	// unreachable from it.
	Idom []int
	// Children lists each node's dominator-tree children in CFG-DFS
	// preorder, which makes the numbering deterministic.
	Children [][]int
	// Num and MaxNum give the dominance-preorder interval; -1/-1 for
	// unreachable nodes.
	Num, MaxNum []int
	// Order maps a preorder number back to its node.
	Order []int
}

// Iterative computes the dominator tree with the Cooper–Harvey–Kennedy
// fixed-point algorithm over the reverse postorder of d.
func Iterative(g *cfg.Graph, d *cfg.DFS) *Tree {
	n := g.N()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 || d.NumReachable == 0 {
		return build(g, d, idom)
	}
	entry := 0
	idom[entry] = entry // temporary self-loop, removed below

	// Reverse postorder of reachable nodes.
	rpo := make([]int, 0, d.NumReachable)
	for i := len(d.PostOrder) - 1; i >= 0; i-- {
		rpo = append(rpo, d.PostOrder[i])
	}

	intersect := func(a, b int) int {
		for a != b {
			for d.Post[a] < d.Post[b] {
				a = idom[a]
			}
			for d.Post[b] < d.Post[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds[b] {
				if !d.Reachable(p) || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = -1
	return build(g, d, idom)
}

// FromIdom rebuilds a dominator tree from a precomputed immediate-dominator
// array — the snapshot-restore path: idom is the only part of the tree worth
// persisting, everything else (children order, the dominance-preorder
// numbering) is re-derived deterministically exactly as Iterative's build
// step does. The array arrives from disk, so it is validated rather than
// trusted: wrong length, out-of-range entries, a dominated entry node, or
// an idom relation that fails to span the reachable nodes (a cycle, say)
// all return an error instead of producing a tree that would answer
// dominance queries wrongly.
func FromIdom(g *cfg.Graph, d *cfg.DFS, idom []int) (*Tree, error) {
	n := g.N()
	if len(idom) != n {
		return nil, fmt.Errorf("dom: idom array has %d entries for %d nodes", len(idom), n)
	}
	for v, p := range idom {
		if p < -1 || p >= n {
			return nil, fmt.Errorf("dom: idom[%d] = %d out of range", v, p)
		}
		if d.Reachable(v) {
			if v == 0 && p != -1 {
				return nil, fmt.Errorf("dom: entry node has idom %d", p)
			}
			if v != 0 && (p < 0 || !d.Reachable(p)) {
				return nil, fmt.Errorf("dom: reachable node %d has idom %d", v, p)
			}
		}
	}
	t := build(g, d, idom)
	if len(t.Order) != d.NumReachable {
		return nil, fmt.Errorf("dom: idom relation spans %d of %d reachable nodes",
			len(t.Order), d.NumReachable)
	}
	return t, nil
}

// Adopt assembles a Tree from fully precomputed arrays — the
// snapshot-restore path one step past FromIdom: children order and the
// dominance-preorder numbering are adopted too, so nothing linear is
// re-derived. childOff is an n+1 prefix-offset array into the flat
// children list (node v's children are children[childOff[v]:childOff[v+1]]).
//
// Like FromIdom, the arrays come from disk and are validated rather than
// trusted — idom gets FromIdom's checks, and the numbering is pinned to
// the children structure by the preorder-nesting invariants (a node's
// first child is numbered Num+1, each next child starts where its
// sibling's subtree ended, MaxNum closes over the last child, and the
// root's interval covers every reachable node). Together with the
// Num/Order bijection those force exactly the numbering build would have
// produced for this children order, so a buffer that lies about any of it
// fails here instead of mis-answering Dominates. The slices are aliased,
// not copied; the adopted tree is read-only.
func Adopt(g *cfg.Graph, d *cfg.DFS, idom, num, maxNum, order, childOff, children []int) (*Tree, error) {
	n := g.N()
	r := d.NumReachable
	if len(idom) != n || len(num) != n || len(maxNum) != n || len(childOff) != n+1 {
		return nil, fmt.Errorf("dom: adopt: per-node arrays sized %d/%d/%d/%d for %d nodes",
			len(idom), len(num), len(maxNum), len(childOff), n)
	}
	if len(order) != r {
		return nil, fmt.Errorf("dom: adopt: order has %d entries for %d reachable nodes", len(order), r)
	}
	wantChildren := 0
	if r > 0 {
		wantChildren = r - 1
	}
	if childOff[0] != 0 || childOff[n] != len(children) || len(children) != wantChildren {
		return nil, fmt.Errorf("dom: adopt: children offsets cover %d of %d entries (want %d)",
			childOff[n], len(children), wantChildren)
	}
	for v, p := range idom {
		if p < -1 || p >= n {
			return nil, fmt.Errorf("dom: adopt: idom[%d] = %d out of range", v, p)
		}
		if d.Reachable(v) {
			if v == 0 && p != -1 {
				return nil, fmt.Errorf("dom: adopt: entry node has idom %d", p)
			}
			if v != 0 && (p < 0 || !d.Reachable(p)) {
				return nil, fmt.Errorf("dom: adopt: reachable node %d has idom %d", v, p)
			}
		}
	}
	for i, v := range order {
		if v < 0 || v >= n || num[v] != i {
			return nil, fmt.Errorf("dom: adopt: order[%d] = %d inconsistent with num", i, v)
		}
	}
	numbered := 0
	for v := 0; v < n; v++ {
		if childOff[v+1] < childOff[v] {
			return nil, fmt.Errorf("dom: adopt: children offsets decrease at node %d", v)
		}
		if num[v] < 0 {
			if num[v] != -1 || maxNum[v] != -1 || d.Reachable(v) {
				return nil, fmt.Errorf("dom: adopt: node %d has inconsistent numbering state", v)
			}
			if childOff[v+1] != childOff[v] {
				return nil, fmt.Errorf("dom: adopt: unnumbered node %d has children", v)
			}
			continue
		}
		numbered++
		if !d.Reachable(v) {
			return nil, fmt.Errorf("dom: adopt: unreachable node %d is numbered", v)
		}
		// Preorder nesting: the children partition (num[v], maxNum[v]]
		// into consecutive subtree intervals.
		next := num[v] + 1
		for _, c := range children[childOff[v]:childOff[v+1]] {
			if c < 0 || c >= n || idom[c] != v || num[c] != next {
				return nil, fmt.Errorf("dom: adopt: node %d's child %d breaks the preorder nesting", v, c)
			}
			next = maxNum[c] + 1
		}
		if maxNum[v] != next-1 || maxNum[v] >= r {
			return nil, fmt.Errorf("dom: adopt: node %d's interval [%d,%d] does not close over its children",
				v, num[v], maxNum[v])
		}
	}
	if numbered != r {
		return nil, fmt.Errorf("dom: adopt: %d nodes numbered, %d reachable", numbered, r)
	}
	if r > 0 && (order[0] != 0 || maxNum[0] != r-1) {
		return nil, errors.New("dom: adopt: root interval does not cover the reachable nodes")
	}
	t := &Tree{
		Idom:     idom,
		Children: make([][]int, n),
		Num:      num,
		MaxNum:   maxNum,
		Order:    order,
	}
	for v := 0; v < n; v++ {
		t.Children[v] = children[childOff[v]:childOff[v+1]:childOff[v+1]]
	}
	return t, nil
}

// build derives children lists and the dominance-preorder numbering from an
// idom array.
func build(g *cfg.Graph, d *cfg.DFS, idom []int) *Tree {
	n := g.N()
	t := &Tree{
		Idom:     idom,
		Children: make([][]int, n),
		Num:      make([]int, n),
		MaxNum:   make([]int, n),
	}
	for i := range t.Num {
		t.Num[i], t.MaxNum[i] = -1, -1
	}
	// Deterministic children order: CFG-DFS preorder of the child.
	for _, v := range d.PreOrder {
		if p := idom[v]; p >= 0 {
			t.Children[p] = append(t.Children[p], v)
		}
	}
	if n == 0 || !d.Reachable(0) {
		return t
	}
	// Preorder numbering with explicit stack; MaxNum assigned on frame pop.
	t.Order = make([]int, 0, d.NumReachable)
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: 0}}
	t.Num[0] = 0
	t.Order = append(t.Order, 0)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(t.Children[fr.node]) {
			c := t.Children[fr.node][fr.next]
			fr.next++
			t.Num[c] = len(t.Order)
			t.Order = append(t.Order, c)
			stack = append(stack, frame{node: c})
			continue
		}
		t.MaxNum[fr.node] = len(t.Order) - 1
		stack = stack[:len(stack)-1]
	}
	return t
}

// Reachable reports whether v is covered by the tree (reachable from entry).
func (t *Tree) Reachable(v int) bool { return t.Num[v] >= 0 }

// Dominates reports whether a dominates b (reflexively).
func (t *Tree) Dominates(a, b int) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	return t.Num[a] <= t.Num[b] && t.Num[b] <= t.MaxNum[a]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *Tree) StrictlyDominates(a, b int) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	return t.Num[a] < t.Num[b] && t.Num[b] <= t.MaxNum[a]
}

// NumReachable returns the number of nodes the tree covers.
func (t *Tree) NumReachable() int { return len(t.Order) }

// IsReducible implements the paper's §2.1 criterion: the CFG is reducible
// iff every DFS back edge's target dominates its source.
func IsReducible(d *cfg.DFS, t *Tree) bool {
	for _, e := range d.BackEdges {
		if !t.Dominates(e.T, e.S) {
			return false
		}
	}
	return true
}

// IrreducibleBackEdges counts DFS back edges whose target does not dominate
// their source — the paper reports 60 such edges across SPEC2000int (§6.1).
func IrreducibleBackEdges(d *cfg.DFS, t *Tree) int {
	n := 0
	for _, e := range d.BackEdges {
		if !t.Dominates(e.T, e.S) {
			n++
		}
	}
	return n
}

// Frontiers computes dominance frontiers per Cooper–Harvey–Kennedy: for
// each join point, walk each predecessor's idom chain up to the join's
// idom. Used by the Cytron SSA construction pass.
func Frontiers(g *cfg.Graph, d *cfg.DFS, t *Tree) [][]int {
	n := g.N()
	df := make([][]int, n)
	mark := make([]int, n) // last join added to df[v], +1; avoids duplicates
	for i := range mark {
		mark[i] = -1
	}
	for _, b := range d.PreOrder {
		if len(g.Preds[b]) < 2 || b == 0 {
			// The entry r has no incoming edges in a well-formed CFG
			// (paper §2.1); skipping it keeps the idom-chain walk below
			// well-founded even on malformed inputs.
			continue
		}
		for _, p := range g.Preds[b] {
			if !d.Reachable(p) {
				continue
			}
			for runner := p; runner != t.Idom[b]; runner = t.Idom[runner] {
				if mark[runner] == b {
					break // already walked this chain for b
				}
				mark[runner] = b
				df[runner] = append(df[runner], b)
			}
		}
	}
	return df
}
