package dom

import "fastliveness/internal/cfg"

// LengauerTarjan computes the dominator tree with the classic
// Lengauer–Tarjan algorithm (the "simple" variant with path compression).
// It produces exactly the same Tree as Iterative; the test suite holds the
// two against each other and against a set-based reference.
func LengauerTarjan(g *cfg.Graph, d *cfg.DFS) *Tree {
	n := g.N()
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	r := d.NumReachable
	if n == 0 || r == 0 {
		return build(g, d, idom)
	}

	// All arrays below are indexed by DFS preorder number.
	parent := make([]int, r)   // DFS tree parent (preorder number)
	semi := make([]int, r)     // semidominator (preorder number)
	vertex := d.PreOrder       // preorder number -> node
	ancestor := make([]int, r) // forest link, -1 = root of its tree
	label := make([]int, r)    // minimum-semi vertex on the forest path
	dom := make([]int, r)
	bucket := make([][]int, r) // vertices whose semidominator is this one

	for i := 0; i < r; i++ {
		semi[i] = i
		label[i] = i
		ancestor[i] = -1
		if p := d.Parent[vertex[i]]; p >= 0 {
			parent[i] = d.Pre[p]
		} else {
			parent[i] = -1
		}
	}

	// eval with iterative path compression.
	var compressStack []int
	eval := func(v int) int {
		if ancestor[v] == -1 {
			return v
		}
		// Collect the path to the tree root, then compress top-down.
		compressStack = compressStack[:0]
		for u := v; ancestor[ancestor[u]] != -1; u = ancestor[u] {
			compressStack = append(compressStack, u)
		}
		for i := len(compressStack) - 1; i >= 0; i-- {
			u := compressStack[i]
			if semi[label[ancestor[u]]] < semi[label[u]] {
				label[u] = label[ancestor[u]]
			}
			ancestor[u] = ancestor[ancestor[u]]
		}
		return label[v]
	}

	for w := r - 1; w >= 1; w-- {
		// Step 2: semidominators, via preds of vertex[w].
		for _, pn := range g.Preds[vertex[w]] {
			if !d.Reachable(pn) {
				continue
			}
			u := eval(d.Pre[pn])
			if semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		bucket[semi[w]] = append(bucket[semi[w]], w)
		ancestor[w] = parent[w] // link(parent[w], w)

		// Step 3: implicit idoms for parent[w]'s bucket.
		for _, v := range bucket[parent[w]] {
			u := eval(v)
			if semi[u] < semi[v] {
				dom[v] = u
			} else {
				dom[v] = parent[w]
			}
		}
		bucket[parent[w]] = bucket[parent[w]][:0]
	}

	// Step 4: explicit idoms in preorder.
	for w := 1; w < r; w++ {
		if dom[w] != semi[w] {
			dom[w] = dom[dom[w]]
		}
	}
	for w := 1; w < r; w++ {
		idom[vertex[w]] = vertex[dom[w]]
	}
	return build(g, d, idom)
}
