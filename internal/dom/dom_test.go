package dom

import (
	"math/rand"
	"testing"

	"fastliveness/internal/cfg"
	"fastliveness/internal/graphgen"
)

// slowDominators computes the full dominance relation by the textbook
// set-based fixed point: Dom(v) = {v} ∪ ⋂_{p∈preds(v)} Dom(p).
// dom[v][w] = true iff w dominates v. Unreachable v have empty rows.
func slowDominators(g *cfg.Graph, d *cfg.DFS) [][]bool {
	n := g.N()
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	dom := make([][]bool, n)
	for v := 0; v < n; v++ {
		dom[v] = make([]bool, n)
		if !d.Reachable(v) {
			continue
		}
		if v == 0 {
			dom[v][0] = true
		} else {
			copy(dom[v], full)
		}
	}
	for changed := true; changed; {
		changed = false
		for v := 1; v < n; v++ {
			if !d.Reachable(v) {
				continue
			}
			nw := make([]bool, n)
			first := true
			for _, p := range g.Preds[v] {
				if !d.Reachable(p) {
					continue
				}
				if first {
					copy(nw, dom[p])
					first = false
				} else {
					for i := range nw {
						nw[i] = nw[i] && dom[p][i]
					}
				}
			}
			nw[v] = true
			for i := range nw {
				if nw[i] != dom[v][i] {
					dom[v] = nw
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func checkTreeAgainstSlow(t *testing.T, g *cfg.Graph, trial int) {
	t.Helper()
	d := cfg.NewDFS(g)
	ref := slowDominators(g, d)
	for _, name := range []string{"iterative", "lengauer-tarjan"} {
		var tree *Tree
		if name == "iterative" {
			tree = Iterative(g, d)
		} else {
			tree = LengauerTarjan(g, d)
		}
		for v := 0; v < g.N(); v++ {
			for w := 0; w < g.N(); w++ {
				want := ref[v][w] // w dominates v
				if got := tree.Dominates(w, v); got != want {
					t.Fatalf("trial %d (%s): Dominates(%d,%d) = %v, want %v\nidom=%v",
						trial, name, w, v, got, want, tree.Idom)
				}
			}
		}
	}
}

func TestDominatorsAgainstSlowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		g := graphgen.Random(rng, graphgen.Default)
		checkTreeAgainstSlow(t, g, trial)
	}
}

func TestDominatorsOnReducibleGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		g := graphgen.RandomReducible(rng, graphgen.Default)
		checkTreeAgainstSlow(t, g, trial)
	}
}

func TestIterativeEqualsLengauerTarjan(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 300; trial++ {
		g := graphgen.Random(rng, graphgen.Config{
			MinNodes: 2, MaxNodes: 120, ExtraEdgeFactor: 2.2, BackEdgeProb: 0.4, AllowSelfLoops: true,
		})
		d := cfg.NewDFS(g)
		a := Iterative(g, d)
		b := LengauerTarjan(g, d)
		for v := 0; v < g.N(); v++ {
			if a.Idom[v] != b.Idom[v] {
				t.Fatalf("trial %d: idom[%d]: iterative=%d LT=%d", trial, v, a.Idom[v], b.Idom[v])
			}
		}
	}
}

func TestNumberingIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 150; trial++ {
		g := graphgen.Random(rng, graphgen.Default)
		d := cfg.NewDFS(g)
		tree := Iterative(g, d)
		n := g.N()
		// Order/Num inverse.
		for num, v := range tree.Order {
			if tree.Num[v] != num {
				t.Fatalf("Order[%d]=%d but Num=%d", num, v, tree.Num[v])
			}
		}
		// Interval property: w is dominated by v iff Num[w] ∈ [Num[v], MaxNum[v]].
		for v := 0; v < n; v++ {
			if !tree.Reachable(v) {
				continue
			}
			for w := 0; w < n; w++ {
				if !tree.Reachable(w) {
					continue
				}
				inInterval := tree.Num[v] <= tree.Num[w] && tree.Num[w] <= tree.MaxNum[v]
				// Walk the idom chain as ground truth.
				dominates := false
				for x := w; x != -1; x = tree.Idom[x] {
					if x == v {
						dominates = true
						break
					}
				}
				if inInterval != dominates {
					t.Fatalf("trial %d: interval test (%d,%d): interval=%v chain=%v",
						trial, v, w, inInterval, dominates)
				}
			}
		}
		// The paper's §5.1 requirement: if v dominates w, num(v) <= num(w).
		for w := 0; w < n; w++ {
			if p := tree.Idom[w]; p >= 0 && tree.Num[p] >= tree.Num[w] {
				t.Fatalf("idom %d of %d numbered after it", p, w)
			}
		}
	}
}

func TestReducibility(t *testing.T) {
	// Structured graphs must be reducible.
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 80; trial++ {
		g := graphgen.RandomReducible(rng, graphgen.Default)
		d := cfg.NewDFS(g)
		tree := Iterative(g, d)
		if !IsReducible(d, tree) {
			t.Fatalf("trial %d: structured graph reported irreducible", trial)
		}
		if IrreducibleBackEdges(d, tree) != 0 {
			t.Fatalf("trial %d: irreducible back edges in structured graph", trial)
		}
	}
	// The canonical irreducible shape: a two-entry loop.
	//   0 -> 1, 0 -> 2, 1 -> 2, 2 -> 1
	g := cfg.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	d := cfg.NewDFS(g)
	tree := Iterative(g, d)
	if IsReducible(d, tree) {
		t.Fatal("two-entry loop reported reducible")
	}
	if IrreducibleBackEdges(d, tree) == 0 {
		t.Fatal("expected at least one irreducible back edge")
	}
}

func TestDominatesBasics(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3.
	g := cfg.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	d := cfg.NewDFS(g)
	tree := Iterative(g, d)
	if tree.Idom[3] != 0 {
		t.Fatalf("idom[3] = %d, want 0", tree.Idom[3])
	}
	if !tree.Dominates(0, 3) || tree.Dominates(1, 3) || tree.Dominates(2, 3) {
		t.Fatal("diamond dominance wrong")
	}
	if !tree.Dominates(3, 3) {
		t.Fatal("dominance must be reflexive")
	}
	if tree.StrictlyDominates(3, 3) {
		t.Fatal("strict dominance must be irreflexive")
	}
	if !tree.StrictlyDominates(0, 1) {
		t.Fatal("0 should strictly dominate 1")
	}
	if tree.NumReachable() != 4 {
		t.Fatalf("NumReachable = %d", tree.NumReachable())
	}
}

func TestUnreachableNodes(t *testing.T) {
	g := cfg.NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4) // island
	d := cfg.NewDFS(g)
	for _, tree := range []*Tree{Iterative(g, d), LengauerTarjan(g, d)} {
		if tree.Reachable(3) || tree.Reachable(4) {
			t.Fatal("island reported reachable")
		}
		if tree.Idom[3] != -1 || tree.Num[4] != -1 {
			t.Fatal("island should have -1 markers")
		}
		if tree.Dominates(0, 3) || tree.Dominates(3, 4) {
			t.Fatal("dominance with unreachable nodes must be false")
		}
	}
}

func TestFrontiers(t *testing.T) {
	// Classic diamond with a loop:
	//   0 -> 1 -> 2 -> 4; 1 -> 3 -> 4; 4 -> 1 (back), 4 -> 5
	g := cfg.NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	g.AddEdge(4, 1)
	g.AddEdge(4, 5)
	d := cfg.NewDFS(g)
	tree := Iterative(g, d)
	df := Frontiers(g, d, tree)
	want := map[int][]int{
		1: {1}, // the loop: 1 is in its own frontier via the back edge
		2: {4},
		3: {4},
		4: {1},
	}
	for v, fr := range want {
		got := df[v]
		if len(got) != len(fr) {
			t.Fatalf("DF[%d] = %v, want %v", v, got, fr)
		}
		m := map[int]bool{}
		for _, x := range got {
			m[x] = true
		}
		for _, x := range fr {
			if !m[x] {
				t.Fatalf("DF[%d] = %v, want %v", v, got, fr)
			}
		}
	}
	if len(df[0]) != 0 || len(df[5]) != 0 {
		t.Fatalf("DF[0]=%v DF[5]=%v, want empty", df[0], df[5])
	}
}

// Frontier definition check on random graphs: w ∈ DF(v) iff v dominates
// some pred of w but does not strictly dominate w.
func TestFrontiersDefinitionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 120; trial++ {
		g := graphgen.Random(rng, graphgen.Default)
		d := cfg.NewDFS(g)
		tree := Iterative(g, d)
		df := Frontiers(g, d, tree)
		n := g.N()
		inDF := make([]map[int]bool, n)
		for v := 0; v < n; v++ {
			inDF[v] = map[int]bool{}
			for _, w := range df[v] {
				inDF[v][w] = true
			}
		}
		for v := 0; v < n; v++ {
			if !tree.Reachable(v) {
				continue
			}
			for w := 0; w < n; w++ {
				if !tree.Reachable(w) {
					continue
				}
				want := false
				if len(g.Preds[w]) >= 2 {
					for _, p := range g.Preds[w] {
						if tree.Reachable(p) && tree.Dominates(v, p) && !tree.StrictlyDominates(v, w) {
							want = true
							break
						}
					}
				}
				if inDF[v][w] != want {
					t.Fatalf("trial %d: DF(%d) contains %d = %v, want %v",
						trial, v, w, inDF[v][w], want)
				}
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := cfg.NewGraph(0)
	d := cfg.NewDFS(g)
	if tree := Iterative(g, d); len(tree.Order) != 0 {
		t.Fatal("empty graph should produce empty tree")
	}
	if tree := LengauerTarjan(g, d); len(tree.Order) != 0 {
		t.Fatal("empty graph should produce empty LT tree")
	}
}
