//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the mapped bytes plus a release
// function. The mapping is MAP_SHARED over an immutable file (Save only
// ever renames complete files into place), so the kernel's page cache is
// the single copy of the payload for every process that loads the same
// snapshot — the point of the format's mmap-friendly alignment. Filesystems
// that refuse mmap fall back to a plain read; callers cannot tell the
// difference beyond the copy.
func mapFile(path string) ([]byte, func() error, error) {
	if forceReadFallback.Load() {
		return readFallback(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size <= 0 || size != int64(int(size)) {
		// Empty (below any valid header, let Decode say so) or too large to
		// address; read the honest way.
		return readFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED|populateFlag)
	if err != nil {
		return readFallback(path)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
