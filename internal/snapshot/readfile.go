package snapshot

import "os"

// readFallback is mapFile's portable slow path: a plain read into a fresh
// buffer, with a no-op release.
func readFallback(path string) ([]byte, func() error, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return buf, func() error { return nil }, nil
}
