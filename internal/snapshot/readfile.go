package snapshot

import (
	"os"
	"sync/atomic"
)

// forceReadFallback, when set, routes every mapFile call through
// readFallback. Test hook; see SetForceReadFallback.
var forceReadFallback atomic.Bool

// SetForceReadFallback forces (or, with false, re-enables mmap for) the
// plain-read load path, so CI on mmap-capable platforms can cover the
// code mmap-refusing filesystems and platforms always run — typically
// together with SetForceCopyDecode to exercise the fully portable load.
// Test instrumentation only; toggle it before any loads, not concurrently
// with them.
func SetForceReadFallback(v bool) { forceReadFallback.Store(v) }

// readFallback is mapFile's portable slow path: a plain read into a fresh
// buffer, with a no-op release.
func readFallback(path string) ([]byte, func() error, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return buf, func() error { return nil }, nil
}
