package snapshot_test

// Concurrency battery for the store: Save, Load, GC and the stats
// methods racing across goroutines and across two Store handles sharing
// one directory (the cross-process simulation). Run under -race; the
// assertions are that nothing panics, no load ever returns a wrong
// snapshot, and errors are limited to the benign not-found kind.

import (
	"errors"
	"sync"
	"testing"

	"fastliveness/internal/faults"
	"fastliveness/internal/snapshot"
)

func TestStoreConcurrentSaveLoadGC(t *testing.T) {
	dir := t.TempDir()
	const n = 12
	snaps := make([]*snapshot.Snapshot, n)
	var total int64
	for i := range snaps {
		snaps[i] = captureOne(t, i, 29)
		total += snaps[i].SizeBytes()
	}
	// A budget around a third of the corpus forces GC on most saves.
	st, err := snapshot.Open(dir, total/3)
	if err != nil {
		t.Fatal(err)
	}
	// A second handle on the same directory: saves and GCs race across
	// handles exactly like across processes.
	st2, err := snapshot.Open(dir, total/3)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			store := st
			if g%2 == 1 {
				store = st2
			}
			for i := 0; i < 60; i++ {
				s := snaps[(g*7+i)%n]
				if err := store.Save(s); err != nil {
					t.Errorf("save %016x: %v", s.FP, err)
					return
				}
				got, err := store.Load(snaps[(g+i)%n].FP)
				switch {
				case errors.Is(err, snapshot.ErrNotFound):
					// GC'd by a racing saver — the normal miss.
				case err != nil:
					t.Errorf("load: %v", err)
					return
				case got.FP != snaps[(g+i)%n].FP:
					t.Errorf("load returned fingerprint %016x, want %016x", got.FP, snaps[(g+i)%n].FP)
					return
				}
				_ = store.SizeBytes()
				_ = store.Len()
			}
		}(g)
	}
	wg.Wait()
}

// Concurrent loads with an armed injector: injected failures must surface
// like real disk errors without corrupting the cache — a later clean load
// of the same fingerprint still validates.
func TestStoreConcurrentLoadsWithInjectedFaults(t *testing.T) {
	st, err := snapshot.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	snaps := make([]*snapshot.Snapshot, n)
	for i := range snaps {
		snaps[i] = captureOne(t, i, 31)
		if err := st.Save(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	in := faults.New(17)
	in.Add(faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionError, P: 0.5})
	st.SetFaultInjector(in)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := snaps[(g+i)%n]
				got, err := st.Load(s.FP)
				var ie *faults.InjectedError
				switch {
				case errors.As(err, &ie):
					// Expected injected failure.
				case err != nil:
					t.Errorf("load: %v", err)
					return
				case got.FP != s.FP:
					t.Errorf("load returned fingerprint %016x, want %016x", got.FP, s.FP)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st.SetFaultInjector(nil)
	for _, s := range snaps {
		got, err := st.Load(s.FP)
		if err != nil || got.FP != s.FP {
			t.Fatalf("clean load of %016x after the fault storm: %v", s.FP, err)
		}
	}
}
