package snapshot_test

// External test package: the corpus comes from difftest, which imports
// fastliveness (and, now, this package) — an in-package test would cycle.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/backend/difftest"
	"fastliveness/internal/core"
	"fastliveness/internal/snapshot"
)

// captureOne builds a fresh checker for f and captures it.
func captureOne(t testing.TB, i int, seed int64) *snapshot.Snapshot {
	t.Helper()
	f := difftest.Corpus(i+1, seed)[i]
	p, err := backend.Prepare(f)
	if err != nil {
		t.Fatal(err)
	}
	cr := backend.NewCheckerResult(p, core.Options{})
	s, err := snapshot.Capture(p, cr.Checker())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i := 0; i < 16; i++ {
		s := captureOne(t, i, 11)
		buf, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := snapshot.Decode(buf)
		if err != nil {
			t.Fatalf("decode snapshot %d: %v", i, err)
		}
		if got.Flags != s.Flags || got.FP != s.FP ||
			got.NBlocks != s.NBlocks || got.NEdges != s.NEdges || got.NReach != s.NReach {
			t.Fatalf("snapshot %d: header fields changed: %+v vs %+v", i, got, s)
		}
		for j := range s.Idom {
			if got.Idom[j] != s.Idom[j] {
				t.Fatalf("snapshot %d: idom[%d] = %d, want %d", i, j, got.Idom[j], s.Idom[j])
			}
		}
		if len(got.RWords) != len(s.RWords) || len(got.TWords) != len(s.TWords) {
			t.Fatalf("snapshot %d: arena lengths changed", i)
		}
		for j := range s.RWords {
			if got.RWords[j] != s.RWords[j] {
				t.Fatalf("snapshot %d: R word %d changed", i, j)
			}
		}
		for j := range s.TWords {
			if got.TWords[j] != s.TWords[j] {
				t.Fatalf("snapshot %d: T word %d changed", i, j)
			}
		}
		// Determinism: re-encoding the decoded snapshot is byte-identical.
		buf2, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("snapshot %d: re-encode is not byte-identical", i)
		}
	}
}

// Every truncation length must be rejected cleanly.
func TestDecodeRejectsTruncation(t *testing.T) {
	buf, err := captureOne(t, 3, 12).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := snapshot.Decode(buf[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte truncation", n, len(buf))
		}
	}
}

// Every single-bit flip anywhere in the file must be rejected: the header
// checksum covers bytes [0,68) (a flip in its own field mismatches the
// recomputed value), and every payload byte is covered by exactly one of
// the five section checksums.
func TestDecodeRejectsBitFlips(t *testing.T) {
	buf, err := captureOne(t, 5, 13).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			buf[i] ^= 1 << bit
			if _, err := snapshot.Decode(buf); err == nil {
				t.Fatalf("decode accepted a flip of byte %d bit %d", i, bit)
			}
			buf[i] ^= 1 << bit
		}
	}
	if _, err := snapshot.Decode(buf); err != nil {
		t.Fatalf("pristine buffer no longer decodes: %v", err)
	}
}

// A future format version must be rejected by the version check, not by
// an incidental checksum failure — re-seal the checksum so only the
// version differs.
func TestDecodeRejectsWrongVersion(t *testing.T) {
	buf, err := captureOne(t, 2, 14).Encode()
	if err != nil {
		t.Fatal(err)
	}
	current := binary.LittleEndian.Uint32(buf[8:])
	binary.LittleEndian.PutUint32(buf[8:], current+1)
	reseal(buf)
	if _, err := snapshot.Decode(buf); err == nil {
		t.Fatalf("decode accepted format version %d", current+1)
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version rejected by %q, want the version check", err)
	}
	binary.LittleEndian.PutUint32(buf[8:], current)
	reseal(buf)
	if _, err := snapshot.Decode(buf); err != nil {
		t.Fatalf("restored buffer no longer decodes: %v", err)
	}
}

// A version mismatch must be diagnosed before the header checksum: the
// version check is what routes real old-format files into the clean
// recompute-then-rewrite degradation, and old headers place their checksum
// elsewhere, so checking CRC first would misreport every v2 file as
// corrupt rather than outdated. Flipping only the version byte (exactly
// what the CI version-skew smoke does with dd) must therefore yield a
// version error even though the header checksum no longer matches.
func TestVersionCheckPrecedesChecksum(t *testing.T) {
	buf, err := captureOne(t, 2, 14).Encode()
	if err != nil {
		t.Fatal(err)
	}
	buf[8] = 2 // claim v2 without resealing
	if _, err := snapshot.Decode(buf); err == nil {
		t.Fatal("decode accepted a version-skewed buffer")
	} else if !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("version skew rejected by %q, want a version-2 error", err)
	}
}

// Dimension fields that change the payload size are tied to the actual
// byte count even with a valid header checksum: under v3 every header
// dimension — block, edge and reachable counts, and the R/T section byte
// lengths — feeds the exact-total-length check, so a header claiming more
// (or less) data than the buffer holds must fail that check, never
// over-read. (Lies that preserve the totals are caught by the section
// checksums and by Restore's cross-checks against the live function;
// difftest exercises that side.)
func TestDecodeRejectsResealedDimensionLies(t *testing.T) {
	buf, err := captureOne(t, 4, 15).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, lie := range []struct {
		off   int
		delta uint32
	}{
		{24, 2}, // nBlocks: sizes the CFG/DFS/DOM sections
		{28, 1}, // nEdges: sizes the CFG section's succ/pred arrays
		{32, 1}, // nReach: sizes the DFS/DOM order arrays
		{40, 8}, // rBytes: the R section's encoded length
		{44, 8}, // tBytes: the T section's encoded length
	} {
		orig := binary.LittleEndian.Uint32(buf[lie.off:])
		binary.LittleEndian.PutUint32(buf[lie.off:], orig+lie.delta)
		reseal(buf)
		if _, err := snapshot.Decode(buf); err == nil {
			t.Fatalf("decode accepted an inflated count at offset %d", lie.off)
		}
		binary.LittleEndian.PutUint32(buf[lie.off:], orig)
	}
	reseal(buf)
	if _, err := snapshot.Decode(buf); err != nil {
		t.Fatalf("restored buffer no longer decodes: %v", err)
	}
}

// reseal recomputes the v3 header checksum after a deliberate header
// edit, mirroring the format's definition (CRC-32C of bytes [0,68) stored
// at [68,72); the payload sections carry their own checksums and are
// untouched by header edits).
func reseal(buf []byte) {
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(buf[68:], crc32.Checksum(buf[:68], castagnoli))
}

// legacyV2Encode serializes s in the retired v2 layout: a 48-byte header
// (single file-wide CRC-32C at [40,48) over everything but itself) and a
// payload of idom as int32s, padding, then the dense — not run-length
// encoded — R and T arenas. Byte-faithful to what v2 Save wrote, so the
// migration tests exercise exactly the files a pre-v3 process left behind.
func legacyV2Encode(t testing.TB, s *snapshot.Snapshot) []byte {
	t.Helper()
	idomBytes := 4 * s.NBlocks
	pad := (8 - idomBytes%8) % 8
	buf := make([]byte, 48+idomBytes+pad+8*(len(s.RWords)+len(s.TWords)))
	copy(buf, "FLSNAP01")
	binary.LittleEndian.PutUint32(buf[8:], 2)
	binary.LittleEndian.PutUint32(buf[12:], s.Flags)
	binary.LittleEndian.PutUint64(buf[16:], s.FP)
	binary.LittleEndian.PutUint32(buf[24:], uint32(s.NBlocks))
	binary.LittleEndian.PutUint32(buf[28:], uint32(s.NEdges))
	binary.LittleEndian.PutUint32(buf[32:], uint32(s.NReach))
	p := buf[48:]
	for i, d := range s.Idom {
		binary.LittleEndian.PutUint32(p[4*i:], uint32(int32(d)))
	}
	p = p[idomBytes+pad:]
	for i, w := range s.RWords {
		binary.LittleEndian.PutUint64(p[8*i:], w)
	}
	p = p[8*len(s.RWords):]
	for i, w := range s.TWords {
		binary.LittleEndian.PutUint64(p[8*i:], w)
	}
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	c := crc32.Update(0, castagnoli, buf[:40])
	c = crc32.Update(c, castagnoli, buf[48:])
	binary.LittleEndian.PutUint64(buf[40:], uint64(c))
	return buf
}

// A genuine v2 file — valid under the old format's own checksum — must be
// rejected by the version check with a clean "unsupported version" error,
// not misdiagnosed as corruption.
func TestDecodeRejectsLegacyV2(t *testing.T) {
	s := captureOne(t, 6, 22)
	buf := legacyV2Encode(t, s)
	_, err := snapshot.Decode(buf)
	if err == nil {
		t.Fatal("decode accepted a v2 file")
	}
	if !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("v2 file rejected by %q, want a version-2 error", err)
	}
}

// The cross-process migration path: a store directory holding a real v2
// file (what a pre-v3 process left behind) must degrade its load to a
// clean miss, delete the outdated file so Contains cannot dedupe away the
// repairing save, and accept the v3 rewrite.
func TestStoreMigratesLegacyV2(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := captureOne(t, 7, 23)
	v2 := legacyV2Encode(t, s)
	path := filepath.Join(dir, fpName(s.FP))
	if err := os.WriteFile(path, v2, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(s.FP); err == nil || err == snapshot.ErrNotFound {
		t.Fatalf("v2 load: got %v, want a version error", err)
	}
	if st.Contains(s.FP) {
		t.Fatal("v2 file survived the failed load; saves would dedupe against it forever")
	}
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(s.FP)
	if err != nil {
		t.Fatalf("post-migration load: %v", err)
	}
	if got.FP != s.FP || got.NBlocks != s.NBlocks || got.NReach != s.NReach {
		t.Fatal("post-migration load returned a different snapshot")
	}
}

// FuzzDecode hammers the parser with corrupted and arbitrary buffers: the
// contract under test is "error or valid snapshot, never a panic". Seeds
// include a genuine encoded snapshot (so mutation explores the v3
// neighborhood), a genuine legacy v2 file (so mutation explores the
// version-skew path old stores feed the decoder), and assorted prefixes.
func FuzzDecode(f *testing.F) {
	s := captureOne(f, 1, 16)
	buf, err := s.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add(legacyV2Encode(f, s))
	f.Add([]byte{})
	f.Add(buf[:48])
	f.Add(buf[:72])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snapshot.Decode(data)
		if err == nil && s == nil {
			t.Fatal("nil snapshot with nil error")
		}
	})
}

// The portable load path — plain file read instead of mmap, per-word copy
// instead of aliasing — must observe the same bytes and produce the same
// snapshot as the zero-copy fast path. CI runs this on mmap-capable
// platforms, so the code big-endian and mmap-refusing systems always run
// stays covered; the store round trip also exercises the section-checksum
// scans on both paths.
func TestForcedFallbackLoadMatchesMmap(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 8; i++ {
		s := captureOne(t, i, 24)
		fast, err := snapshot.Open(filepath.Join(dir, "fast"), 0)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := snapshot.Open(filepath.Join(dir, "slow"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fast.Save(s); err != nil {
			t.Fatal(err)
		}
		if err := slow.Save(s); err != nil {
			t.Fatal(err)
		}
		a, err := fast.Load(s.FP)
		if err != nil {
			t.Fatalf("mmap load %d: %v", i, err)
		}
		snapshot.SetForceReadFallback(true)
		snapshot.SetForceCopyDecode(true)
		b, err := slow.Load(s.FP)
		snapshot.SetForceReadFallback(false)
		snapshot.SetForceCopyDecode(false)
		if err != nil {
			t.Fatalf("fallback load %d: %v", i, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("snapshot %d: fallback load differs from mmap load", i)
		}
	}
}

// Store accounting: an aliasing file-backed load scans the three
// structural sections and skips the two arena sections, a decoded-cache
// hit scans none, SetVerifyArenas makes a file-backed load scan all
// five, and a load that dies at an early validation skips the sections
// it never reached. (The expectations assume the aliasing decode path —
// the only one CI runs natively; forced-fallback loads scan all five,
// which TestStoreArenaCorruptionVerifyModes covers.)
func TestStoreStatsSectionAccounting(t *testing.T) {
	const numSections = 5
	dir := t.TempDir()
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := captureOne(t, 9, 25)
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(s.FP); err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	if got.DecodedCacheHits != 0 || got.DecodedCacheMisses != 1 ||
		got.SectionScans != 3 || got.SectionSkips != 2 {
		t.Fatalf("after file-backed load: %+v", got)
	}
	if _, err := st.Load(s.FP); err != nil {
		t.Fatal(err)
	}
	got = st.Stats()
	if got.DecodedCacheHits != 1 || got.DecodedCacheMisses != 1 ||
		got.SectionScans != 3 || got.SectionSkips != 2+numSections {
		t.Fatalf("after cached load: %+v", got)
	}

	// Same file through a verify-arenas store: all five sections scanned.
	verif, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	verif.SetVerifyArenas(true)
	if _, err := verif.Load(s.FP); err != nil {
		t.Fatal(err)
	}
	got = verif.Stats()
	if got.SectionScans != numSections || got.SectionSkips != 0 {
		t.Fatalf("after verify-arenas load: %+v", got)
	}

	// A version-skewed file fails before any section scan: all skipped.
	st2, err := snapshot.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(st2.Dir(), fpName(s.FP)), legacyV2Encode(t, s), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Load(s.FP); err == nil {
		t.Fatal("v2 load succeeded")
	}
	got = st2.Stats()
	if got.SectionScans != 0 || got.SectionSkips != numSections {
		t.Fatalf("after version-skewed load: %+v", got)
	}
}

// Structurally distinct graphs must get distinct fingerprints across the
// corpus (collisions are possible in principle at 64 bits; at corpus scale
// one would indicate a framing bug, not bad luck).
func TestFingerprintDistinctAcrossCorpus(t *testing.T) {
	seen := make(map[uint64]string)
	for i, f := range difftest.Corpus(80, 17) {
		p, err := backend.Prepare(f)
		if err != nil {
			t.Fatal(err)
		}
		canon := canonical(p)
		fp := snapshot.Fingerprint(p.Graph, 0)
		if prev, ok := seen[fp]; ok && prev != canon {
			t.Fatalf("corpus func %d: fingerprint %016x collides across distinct structures", i, fp)
		} else if ok && prev == canon {
			continue // structurally identical functions must collide
		}
		seen[fp] = canon
		// Flags are part of the key: the same graph under the exact
		// strategy must not alias the propagate-strategy snapshot.
		if alt := snapshot.Fingerprint(p.Graph, snapshot.FlagsFor(core.Options{Strategy: core.StrategyExact})); alt == fp {
			t.Fatalf("corpus func %d: exact and propagate share fingerprint %016x", i, fp)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("corpus produced only %d distinct structures", len(seen))
	}
}

func canonical(p *backend.Prep) string {
	var b bytes.Buffer
	for _, succs := range p.Graph.Succs {
		fmt.Fprintf(&b, "%v;", succs)
	}
	return b.String()
}

func TestStoreSaveLoadGC(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*snapshot.Snapshot
	for i := 0; i < 6; i++ {
		s := captureOne(t, 2*i, 18) // even corpus indices: structured gen, varied shapes
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	distinct := make(map[uint64]*snapshot.Snapshot)
	for _, s := range snaps {
		distinct[s.FP] = s
	}
	if st.Len() != len(distinct) {
		t.Fatalf("store holds %d files, want %d", st.Len(), len(distinct))
	}
	for fp := range distinct {
		if !st.Contains(fp) {
			t.Fatalf("store lost fingerprint %016x", fp)
		}
		if _, err := st.Load(fp); err != nil {
			t.Fatalf("load %016x: %v", fp, err)
		}
	}
	if _, err := st.Load(0xdeadbeef); err != snapshot.ErrNotFound {
		t.Fatalf("missing fingerprint: got %v, want ErrNotFound", err)
	}

	// GC: re-open with a budget that fits roughly half the files, stamp
	// deterministic mtimes (oldest first in snaps order), and save one
	// more — the oldest must go, the newest must stay.
	total := st.SizeBytes()
	bounded, err := snapshot.Open(dir, total/2)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	base := time.Now().Add(-time.Hour)
	for fp := range distinct {
		path := filepath.Join(dir, fpName(fp))
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
		i++
	}
	fresh := captureOne(t, 13, 19)
	if err := bounded.Save(fresh); err != nil {
		t.Fatal(err)
	}
	if got := bounded.SizeBytes(); got > total/2 {
		t.Fatalf("store holds %d bytes after GC, budget %d", got, total/2)
	}
	if !bounded.Contains(fresh.FP) {
		t.Fatal("GC deleted the snapshot just saved")
	}
}

// A budget smaller than a single snapshot must keep the file just written
// (Save must not immediately unlink its own work).
func TestStoreGCKeepsJustWritten(t *testing.T) {
	st, err := snapshot.Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := captureOne(t, 0, 20)
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(s.FP) {
		t.Fatal("1-byte budget unlinked the snapshot being saved")
	}
}

// A file with a corrupt structural section degrades to a miss and is
// removed so a future save can repair it. Byte 100 sits in the CFG
// section (the first structural bytes after the 72-byte header), which
// every load path scans eagerly.
func TestStoreCorruptFileSelfHeals(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := captureOne(t, 1, 21)
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fpName(s.FP))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0x40
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(s.FP); err == nil || err == snapshot.ErrNotFound {
		t.Fatalf("corrupt load: got %v, want a decode error", err)
	}
	if st.Contains(s.FP) {
		t.Fatal("corrupt file survived the failed load; a save would dedupe against it forever")
	}
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(s.FP); err != nil {
		t.Fatalf("store did not heal: %v", err)
	}
}

// The arena half of the corruption contract, pinned from both sides: a
// bit flip in the R/T payload is *not* scanned for by the default
// aliasing load (that deferral is the sub-linear warm path — see the
// format comment), and *is* caught, with the usual self-heal, by a
// verify-arenas store and by the copying fallback path.
func TestStoreArenaCorruptionVerifyModes(t *testing.T) {
	s := captureOne(t, 1, 21)
	corrupt := func(t *testing.T, dir string) {
		t.Helper()
		path := filepath.Join(dir, fpName(s.FP))
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)-8] ^= 0x40 // last T-section word: always in the arena payload
		if err := os.WriteFile(path, buf, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	save := func(t *testing.T, dir string) *snapshot.Store {
		t.Helper()
		st, err := snapshot.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		corrupt(t, dir)
		return st
	}

	t.Run("default-alias-defers", func(t *testing.T) {
		st := save(t, t.TempDir())
		if _, err := st.Load(s.FP); err != nil {
			t.Fatalf("aliasing load scanned the arenas it defers: %v", err)
		}
		if got := st.Stats(); got.SectionScans != 3 || got.SectionSkips != 2 {
			t.Fatalf("aliasing load accounting: %+v", got)
		}
	})
	t.Run("verify-arenas-catches", func(t *testing.T) {
		st := save(t, t.TempDir())
		st.SetVerifyArenas(true)
		if _, err := st.Load(s.FP); err == nil || err == snapshot.ErrNotFound {
			t.Fatalf("verify-arenas load: got %v, want a T-section checksum error", err)
		}
		if st.Contains(s.FP) {
			t.Fatal("corrupt file survived the failed load")
		}
	})
	t.Run("copy-path-catches", func(t *testing.T) {
		st := save(t, t.TempDir())
		snapshot.SetForceReadFallback(true)
		snapshot.SetForceCopyDecode(true)
		_, err := st.Load(s.FP)
		snapshot.SetForceReadFallback(false)
		snapshot.SetForceCopyDecode(false)
		if err == nil || err == snapshot.ErrNotFound {
			t.Fatalf("copying load: got %v, want a T-section checksum error", err)
		}
	})
}

func fpName(fp uint64) string {
	const hexdigits = "0123456789abcdef"
	name := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		name[i] = hexdigits[fp&0xf]
		fp >>= 4
	}
	return string(name) + ".flsnap"
}
