package snapshot_test

// External test package: the corpus comes from difftest, which imports
// fastliveness (and, now, this package) — an in-package test would cycle.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/backend/difftest"
	"fastliveness/internal/core"
	"fastliveness/internal/snapshot"
)

// captureOne builds a fresh checker for f and captures it.
func captureOne(t testing.TB, i int, seed int64) *snapshot.Snapshot {
	t.Helper()
	f := difftest.Corpus(i+1, seed)[i]
	p, err := backend.Prepare(f)
	if err != nil {
		t.Fatal(err)
	}
	cr := backend.NewCheckerResult(p, core.Options{})
	s, err := snapshot.Capture(p, cr.Checker())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i := 0; i < 16; i++ {
		s := captureOne(t, i, 11)
		buf, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := snapshot.Decode(buf)
		if err != nil {
			t.Fatalf("decode snapshot %d: %v", i, err)
		}
		if got.Flags != s.Flags || got.FP != s.FP ||
			got.NBlocks != s.NBlocks || got.NEdges != s.NEdges || got.NReach != s.NReach {
			t.Fatalf("snapshot %d: header fields changed: %+v vs %+v", i, got, s)
		}
		for j := range s.Idom {
			if got.Idom[j] != s.Idom[j] {
				t.Fatalf("snapshot %d: idom[%d] = %d, want %d", i, j, got.Idom[j], s.Idom[j])
			}
		}
		if len(got.RWords) != len(s.RWords) || len(got.TWords) != len(s.TWords) {
			t.Fatalf("snapshot %d: arena lengths changed", i)
		}
		for j := range s.RWords {
			if got.RWords[j] != s.RWords[j] {
				t.Fatalf("snapshot %d: R word %d changed", i, j)
			}
		}
		for j := range s.TWords {
			if got.TWords[j] != s.TWords[j] {
				t.Fatalf("snapshot %d: T word %d changed", i, j)
			}
		}
		// Determinism: re-encoding the decoded snapshot is byte-identical.
		buf2, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("snapshot %d: re-encode is not byte-identical", i)
		}
	}
}

// Every truncation length must be rejected cleanly.
func TestDecodeRejectsTruncation(t *testing.T) {
	buf, err := captureOne(t, 3, 12).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := snapshot.Decode(buf[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte truncation", n, len(buf))
		}
	}
}

// Every single-bit flip anywhere in the file must be rejected: the
// checksum covers header and payload alike (only its own field is
// excluded, and a flip there mismatches the recomputed value).
func TestDecodeRejectsBitFlips(t *testing.T) {
	buf, err := captureOne(t, 5, 13).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			buf[i] ^= 1 << bit
			if _, err := snapshot.Decode(buf); err == nil {
				t.Fatalf("decode accepted a flip of byte %d bit %d", i, bit)
			}
			buf[i] ^= 1 << bit
		}
	}
	if _, err := snapshot.Decode(buf); err != nil {
		t.Fatalf("pristine buffer no longer decodes: %v", err)
	}
}

// A future format version must be rejected by the version check, not by
// an incidental checksum failure — re-seal the checksum so only the
// version differs.
func TestDecodeRejectsWrongVersion(t *testing.T) {
	buf, err := captureOne(t, 2, 14).Encode()
	if err != nil {
		t.Fatal(err)
	}
	current := binary.LittleEndian.Uint32(buf[8:])
	binary.LittleEndian.PutUint32(buf[8:], current+1)
	reseal(buf)
	if _, err := snapshot.Decode(buf); err == nil {
		t.Fatalf("decode accepted format version %d", current+1)
	}
	binary.LittleEndian.PutUint32(buf[8:], current)
	reseal(buf)
	if _, err := snapshot.Decode(buf); err != nil {
		t.Fatalf("restored buffer no longer decodes: %v", err)
	}
}

// Dimension fields that change the payload size are tied to the actual
// byte count even with a valid checksum: a header claiming more data than
// the buffer holds must fail the length check, never over-read. (Lies the
// length check cannot see — nEdges, or a ±1 nBlocks that aliases into the
// alignment padding — are caught by Restore's cross-checks against the
// live function instead; difftest exercises that side.)
func TestDecodeRejectsResealedDimensionLies(t *testing.T) {
	buf, err := captureOne(t, 4, 15).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, lie := range []struct {
		off   int
		delta uint32
	}{
		{24, 2}, // nBlocks: +2 grows the idom array past the padding slack
		{32, 1}, // nReach: any change resizes both arenas
	} {
		orig := binary.LittleEndian.Uint32(buf[lie.off:])
		binary.LittleEndian.PutUint32(buf[lie.off:], orig+lie.delta)
		reseal(buf)
		if _, err := snapshot.Decode(buf); err == nil {
			t.Fatalf("decode accepted an inflated count at offset %d", lie.off)
		}
		binary.LittleEndian.PutUint32(buf[lie.off:], orig)
	}
}

// reseal recomputes the checksum field after a deliberate header edit,
// mirroring the format's definition (everything except bytes [40,48)).
func reseal(buf []byte) {
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	c := crc32.Update(0, castagnoli, buf[:40])
	c = crc32.Update(c, castagnoli, buf[48:])
	binary.LittleEndian.PutUint64(buf[40:], uint64(c))
}

// FuzzDecode hammers the parser with corrupted and arbitrary buffers: the
// contract under test is "error or valid snapshot, never a panic". Seeds
// include a genuine encoded snapshot so mutation explores the interesting
// neighborhood.
func FuzzDecode(f *testing.F) {
	buf, err := captureOne(f, 1, 16).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{})
	f.Add(buf[:48])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := snapshot.Decode(data)
		if err == nil && s == nil {
			t.Fatal("nil snapshot with nil error")
		}
	})
}

// Structurally distinct graphs must get distinct fingerprints across the
// corpus (collisions are possible in principle at 64 bits; at corpus scale
// one would indicate a framing bug, not bad luck).
func TestFingerprintDistinctAcrossCorpus(t *testing.T) {
	seen := make(map[uint64]string)
	for i, f := range difftest.Corpus(80, 17) {
		p, err := backend.Prepare(f)
		if err != nil {
			t.Fatal(err)
		}
		canon := canonical(p)
		fp := snapshot.Fingerprint(p.Graph, 0)
		if prev, ok := seen[fp]; ok && prev != canon {
			t.Fatalf("corpus func %d: fingerprint %016x collides across distinct structures", i, fp)
		} else if ok && prev == canon {
			continue // structurally identical functions must collide
		}
		seen[fp] = canon
		// Flags are part of the key: the same graph under the exact
		// strategy must not alias the propagate-strategy snapshot.
		if alt := snapshot.Fingerprint(p.Graph, snapshot.FlagsFor(core.Options{Strategy: core.StrategyExact})); alt == fp {
			t.Fatalf("corpus func %d: exact and propagate share fingerprint %016x", i, fp)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("corpus produced only %d distinct structures", len(seen))
	}
}

func canonical(p *backend.Prep) string {
	var b bytes.Buffer
	for _, succs := range p.Graph.Succs {
		fmt.Fprintf(&b, "%v;", succs)
	}
	return b.String()
}

func TestStoreSaveLoadGC(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*snapshot.Snapshot
	for i := 0; i < 6; i++ {
		s := captureOne(t, 2*i, 18) // even corpus indices: structured gen, varied shapes
		if err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	distinct := make(map[uint64]*snapshot.Snapshot)
	for _, s := range snaps {
		distinct[s.FP] = s
	}
	if st.Len() != len(distinct) {
		t.Fatalf("store holds %d files, want %d", st.Len(), len(distinct))
	}
	for fp := range distinct {
		if !st.Contains(fp) {
			t.Fatalf("store lost fingerprint %016x", fp)
		}
		if _, err := st.Load(fp); err != nil {
			t.Fatalf("load %016x: %v", fp, err)
		}
	}
	if _, err := st.Load(0xdeadbeef); err != snapshot.ErrNotFound {
		t.Fatalf("missing fingerprint: got %v, want ErrNotFound", err)
	}

	// GC: re-open with a budget that fits roughly half the files, stamp
	// deterministic mtimes (oldest first in snaps order), and save one
	// more — the oldest must go, the newest must stay.
	total := st.SizeBytes()
	bounded, err := snapshot.Open(dir, total/2)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	base := time.Now().Add(-time.Hour)
	for fp := range distinct {
		path := filepath.Join(dir, fpName(fp))
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
		i++
	}
	fresh := captureOne(t, 13, 19)
	if err := bounded.Save(fresh); err != nil {
		t.Fatal(err)
	}
	if got := bounded.SizeBytes(); got > total/2 {
		t.Fatalf("store holds %d bytes after GC, budget %d", got, total/2)
	}
	if !bounded.Contains(fresh.FP) {
		t.Fatal("GC deleted the snapshot just saved")
	}
}

// A budget smaller than a single snapshot must keep the file just written
// (Save must not immediately unlink its own work).
func TestStoreGCKeepsJustWritten(t *testing.T) {
	st, err := snapshot.Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := captureOne(t, 0, 20)
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(s.FP) {
		t.Fatal("1-byte budget unlinked the snapshot being saved")
	}
}

// A corrupt file degrades to a miss and is removed so a future save can
// repair it.
func TestStoreCorruptFileSelfHeals(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := captureOne(t, 1, 21)
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fpName(s.FP))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x40
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(s.FP); err == nil || err == snapshot.ErrNotFound {
		t.Fatalf("corrupt load: got %v, want a decode error", err)
	}
	if st.Contains(s.FP) {
		t.Fatal("corrupt file survived the failed load; a save would dedupe against it forever")
	}
	if err := st.Save(s); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(s.FP); err != nil {
		t.Fatalf("store did not heal: %v", err)
	}
}

func fpName(fp uint64) string {
	const hexdigits = "0123456789abcdef"
	name := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		name[i] = hexdigits[fp&0xf]
		fp >>= 4
	}
	return string(name) + ".flsnap"
}
