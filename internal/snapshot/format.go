package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sync/atomic"
	"unsafe"

	"fastliveness/internal/backend"
	"fastliveness/internal/bitset"
	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Binary layout, version 3 (all fixed-width fields little-endian):
//
//	offset  size  field
//	0       8     magic "FLSNAP01"
//	8       4     version (currently 3)
//	12      4     flags (FlagsFor bits)
//	16      8     fingerprint
//	24      4     nBlocks   (CFG nodes)
//	28      4     nEdges    (CFG edges)
//	32      4     nReach    (entry-reachable nodes, = matrix dimension)
//	36      4     nBack     (DFS back edges)
//	40      4     rBytes    (encoded length of the R section)
//	44      4     tBytes    (encoded length of the T section)
//	48      4     crcCFG    ┐
//	52      4     crcDFS    │ CRC-32C (Castagnoli) of each payload
//	56      4     crcDOM    │ section's bytes
//	60      4     crcR      │
//	64      4     crcT      ┘
//	68      4     CRC-32C of the header bytes [0,68)
//	72      ...   payload sections, back to back: CFG, DFS, DOM, R, T
//
// Where version 2 stored only the idom array plus the dense R/T arenas and
// re-derived everything else linearly at load (cfg.FromFunc + cfg.NewDFS +
// dom.FromIdom), v3 persists every derivation product the checker adopts,
// as flat 8-byte little-endian integer arrays:
//
//	CFG  succOff[n+1] succs[e] predOff[n+1] preds[e]
//	DFS  pre[n] post[n] parent[n] subtreeMax[n]
//	     preOrder[r] postOrder[r] backEdges[2*nBack] (s,t pairs)
//	DOM  idom[n] num[n] maxNum[n] order[r] childOff[n+1] children[r-1 if r>0]
//
// The header is 72 bytes and every structural element is 8 bytes, so all
// sections stay 8-aligned within the buffer and a 64-bit little-endian
// host aliases the integer arrays straight out of the mapping (adoptInts)
// — a warm load is offset arithmetic plus O(n+e) validation, no
// re-derivation.
//
// The R and T matrices — the O(n²) bulk of the file — are stored dense,
// exactly as the checker holds them in memory (arena word order,
// little-endian), with rBytes = tBytes = 8 · nReach · wordsPerRow(nReach)
// pinned to the header dimensions. Dense storage is what makes a warm
// load sub-linear in the matrix size: on a 64-bit little-endian host the
// arenas are adopted straight out of the mmap'd file (adoptWords), so no
// matrix byte is allocated, zeroed, copied or even read at load time —
// the kernel pages the words in as queries touch them.
//
// One CRC per section, instead of v2's single file-wide checksum, buys
// two things. First, a load that fails an early check (version skew, a
// dimension or structural mismatch, a corrupt structural section) never
// pays the checksum scan for the sections it didn't reach — the store
// counts those as section skips. Second, and the reason the R and T
// arenas are sealed separately: a load may verify the small structural
// sections eagerly while deciding per policy whether to scan the O(n²)
// arenas at all. Decode — the public entry point, and every path that
// copies the payload out of the buffer (big-endian or 32-bit hosts,
// forced-copy mode, the plain-read mmap fallback) — verifies all five
// sections, overlapping the arena scans with the structural adoption on
// a second goroutine. The store's aliasing mmap path instead verifies
// header + CFG + DFS + DOM and defers the arena scans entirely (see
// Store.SetVerifyArenas), because scanning them would re-introduce the
// linear pass over the matrices that dense aliasing exists to remove.
//
// The corruption contract therefore splits by section. Structural
// corruption anywhere — header, CFG, DFS, DOM — fails a checksum on
// every path, and the load degrades to recompute, never a wrong answer;
// the adopting constructors and RestoreFrom's edge-for-edge comparison
// against the live function then re-validate the decoded values
// themselves. Arena corruption is caught on every copying path and under
// SetVerifyArenas; on the default aliasing path it is not scanned for at
// load, matching the usual mmap'd-format trade (LMDB and friends): the
// page cache, not the checksum, is what stands between a query and the
// disk. (Version-2 files fail the version check and are recomputed and
// rewritten in this format; so did v1 files under v2.)
const (
	headerSize    = 72
	formatVersion = 3
)

// numSections counts the checksum-sealed payload sections (CFG, DFS, DOM,
// R, T) — the unit of the store's section scan/skip accounting.
const numSections = 5

var magic = [8]byte{'F', 'L', 'S', 'N', 'A', 'P', '0', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxDim bounds the counts a header may claim, purely as an
// arithmetic-overflow guard; real validation is the exact section-length
// match below, which ties every count to the actual file size.
const maxDim = 1 << 30

// Snapshot is one function's decoded (or about-to-be-encoded) checker
// precomputation: the CFG adjacency arenas, the DFS and dominator-tree
// arrays, and the R/T matrices. The integer slices and the RWords/TWords
// arenas may alias a Decode input buffer — the zero-copy path — so a
// Snapshot adopted into a live checker must outlive its buffer, which it
// does by construction (the slices keep it reachable).
type Snapshot struct {
	Flags   uint32
	FP      uint64
	NBlocks int
	NEdges  int
	NReach  int

	// CFG section: prefix offsets into the flat edge arenas, in
	// cfg.FromFunc's layout (pred rows in source order).
	SuccOff, Succs []int
	PredOff, Preds []int

	// DFS section, mirroring cfg.DFS (subtreeMax included so IsAncestor
	// needs no re-traversal). BackEdges is flattened (s,t) pairs.
	Pre, Post, Parent, SubtreeMax []int
	PreOrder, PostOrder           []int
	BackEdges                     []int

	// DOM section, mirroring dom.Tree; ChildOff is an n+1 prefix-offset
	// array into the flat Children list.
	Idom, Num, MaxNum, Order []int
	ChildOff, Children       []int

	RWords []uint64
	TWords []uint64

	// size is the encoded byte length, recorded by Decode. Encode leaves
	// it alone — concurrent Saves of one snapshot may race, and the dense
	// format's size is pure arithmetic over the dimensions anyway
	// (SizeBytes).
	size int64
}

// ErrNoArena marks checkers that cannot be captured: the SortedT variant
// drops its T arena after conversion, leaving nothing to serialize. (Such
// configs still *load* snapshots — core.Adopt re-runs the conversion.)
var ErrNoArena = errors.New("snapshot: checker dropped its T arena (SortedT); nothing to capture")

// Capture packages a live checker's precomputation for serialization. The
// word slices and the DFS/dominator arrays alias the live structures —
// Encode reads them immediately, so the alias is safe as long as the
// function is not edited in between, and all of them are write-once at
// precompute time. Only the adjacency rows and children lists are
// flattened (copied) here, into the offset-array layout the format
// stores.
func Capture(p *backend.Prep, c *core.Checker) (*Snapshot, error) {
	r, t := c.Matrices()
	if t == nil {
		return nil, ErrNoArena
	}
	g, d, tree := p.Graph, p.DFS, p.Tree
	flags := FlagsFor(c.Options())
	n := g.N()

	s := &Snapshot{
		Flags:   flags,
		FP:      Fingerprint(g, flags),
		NBlocks: n,
		NEdges:  g.NumEdges(),
		NReach:  d.NumReachable,

		Pre: d.Pre, Post: d.Post, Parent: d.Parent, SubtreeMax: d.SubtreeMax(),
		PreOrder: d.PreOrder, PostOrder: d.PostOrder,

		Idom: tree.Idom, Num: tree.Num, MaxNum: tree.MaxNum, Order: tree.Order,

		RWords: r.Words(),
		TWords: t.Words(),
	}
	s.SuccOff, s.Succs = flattenRows(g.Succs, s.NEdges)
	s.PredOff, s.Preds = flattenRows(g.Preds, s.NEdges)
	s.BackEdges = make([]int, 2*len(d.BackEdges))
	for i, e := range d.BackEdges {
		s.BackEdges[2*i], s.BackEdges[2*i+1] = e.S, e.T
	}
	nc := 0
	if d.NumReachable > 0 {
		nc = d.NumReachable - 1
	}
	s.ChildOff, s.Children = flattenRows(tree.Children, nc)
	return s, nil
}

// flattenRows packs a [][]int into a prefix-offset array plus one flat
// arena of the given total size.
func flattenRows(rows [][]int, total int) (off, flat []int) {
	off = make([]int, len(rows)+1)
	flat = make([]int, 0, total)
	for i, row := range rows {
		off[i] = len(flat)
		flat = append(flat, row...)
	}
	off[len(rows)] = len(flat)
	return off, flat
}

// wordsPerRow mirrors the bitset package's row stride.
func wordsPerRow(n int) int { return (n + 63) / 64 }

// sectionSizes computes the three structural sections' byte lengths from
// the header dimensions, or ok=false for counts that are out of range
// (negative, absurdly large, or more reachable nodes than nodes).
func sectionSizes(nBlocks, nEdges, nReach, nBack int) (cfgB, dfsB, domB int64, ok bool) {
	if nBlocks < 0 || nEdges < 0 || nReach < 0 || nBack < 0 ||
		nBlocks > maxDim || nEdges > maxDim || nReach > maxDim || nBack > maxDim ||
		nReach > nBlocks {
		return 0, 0, 0, false
	}
	n, e, r, nb := int64(nBlocks), int64(nEdges), int64(nReach), int64(nBack)
	var nc int64
	if r > 0 {
		nc = r - 1
	}
	cfgB = 8 * (2*(n+1) + 2*e)
	dfsB = 8 * (4*n + 2*r + 2*nb)
	domB = 8 * (3*n + r + (n + 1) + nc)
	return cfgB, dfsB, domB, true
}

// Encode serializes s. The returned buffer is freshly allocated and fully
// self-contained.
func (s *Snapshot) Encode() ([]byte, error) {
	n, e, r := s.NBlocks, s.NEdges, s.NReach
	nb := len(s.BackEdges) / 2
	cfgB, dfsB, domB, ok := sectionSizes(n, e, r, nb)
	if !ok {
		return nil, fmt.Errorf("snapshot: dimensions out of range (%d blocks, %d edges, %d reachable)", n, e, r)
	}
	nc := 0
	if r > 0 {
		nc = r - 1
	}
	arena := r * wordsPerRow(r)
	switch {
	case len(s.SuccOff) != n+1 || len(s.Succs) != e || len(s.PredOff) != n+1 || len(s.Preds) != e:
		return nil, errors.New("snapshot: inconsistent CFG arrays")
	case len(s.Pre) != n || len(s.Post) != n || len(s.Parent) != n || len(s.SubtreeMax) != n ||
		len(s.PreOrder) != r || len(s.PostOrder) != r || len(s.BackEdges) != 2*nb:
		return nil, errors.New("snapshot: inconsistent DFS arrays")
	case len(s.Idom) != n || len(s.Num) != n || len(s.MaxNum) != n || len(s.Order) != r ||
		len(s.ChildOff) != n+1 || len(s.Children) != nc:
		return nil, errors.New("snapshot: inconsistent dominator arrays")
	case len(s.RWords) != arena || len(s.TWords) != arena:
		return nil, fmt.Errorf("snapshot: R/T arenas are %d/%d words, want %d", len(s.RWords), len(s.TWords), arena)
	}
	rB := 8 * int64(arena)
	tB := 8 * int64(arena)
	total := int64(headerSize) + cfgB + dfsB + domB + rB + tB
	if rB > 1<<32-1 || tB > 1<<32-1 || int64(int(total)) != total {
		return nil, fmt.Errorf("snapshot: %d-byte encoding exceeds the format's bounds", total)
	}
	buf := make([]byte, total)

	off := headerSize
	for _, a := range [][]int{
		s.SuccOff, s.Succs, s.PredOff, s.Preds,
		s.Pre, s.Post, s.Parent, s.SubtreeMax, s.PreOrder, s.PostOrder, s.BackEdges,
		s.Idom, s.Num, s.MaxNum, s.Order, s.ChildOff, s.Children,
	} {
		for _, v := range a {
			binary.LittleEndian.PutUint64(buf[off:], uint64(int64(v)))
			off += 8
		}
	}
	off += encodeWords(buf[off:], s.RWords)
	off += encodeWords(buf[off:], s.TWords)
	if int64(off) != total {
		return nil, fmt.Errorf("snapshot: encoder wrote %d of %d bytes", off, total)
	}

	cfgOff := int64(headerSize)
	dfsOff := cfgOff + cfgB
	domOff := dfsOff + dfsB
	rOff := domOff + domB
	tOff := rOff + rB

	copy(buf[0:8], magic[:])
	binary.LittleEndian.PutUint32(buf[8:], formatVersion)
	binary.LittleEndian.PutUint32(buf[12:], s.Flags)
	binary.LittleEndian.PutUint64(buf[16:], s.FP)
	binary.LittleEndian.PutUint32(buf[24:], uint32(n))
	binary.LittleEndian.PutUint32(buf[28:], uint32(e))
	binary.LittleEndian.PutUint32(buf[32:], uint32(r))
	binary.LittleEndian.PutUint32(buf[36:], uint32(nb))
	binary.LittleEndian.PutUint32(buf[40:], uint32(rB))
	binary.LittleEndian.PutUint32(buf[44:], uint32(tB))
	binary.LittleEndian.PutUint32(buf[48:], crc32.Checksum(buf[cfgOff:dfsOff], crcTable))
	binary.LittleEndian.PutUint32(buf[52:], crc32.Checksum(buf[dfsOff:domOff], crcTable))
	binary.LittleEndian.PutUint32(buf[56:], crc32.Checksum(buf[domOff:rOff], crcTable))
	binary.LittleEndian.PutUint32(buf[60:], crc32.Checksum(buf[rOff:tOff], crcTable))
	binary.LittleEndian.PutUint32(buf[64:], crc32.Checksum(buf[tOff:total], crcTable))
	binary.LittleEndian.PutUint32(buf[68:], crc32.Checksum(buf[:68], crcTable))
	return buf, nil
}

// Decode parses and validates a snapshot buffer: magic, version, the
// header checksum, exact section lengths for the claimed dimensions, and
// every section's checksum — all five; only the store's aliasing mmap
// path relaxes the arena scans, and it does so through the internal
// entry point, not this one. Any deviation — truncation, bit flips
// anywhere, an unknown version — is an error, never a panic and never a
// silently corrupt Snapshot. On the happy path the structural integer
// arrays and the R/T arenas alias buf (adoptInts/adoptWords), with the
// arena scans running concurrently with the structural verification.
func Decode(buf []byte) (*Snapshot, error) {
	s, _, err := decode(buf, true)
	return s, err
}

// decode is Decode plus two things the store needs: an explicit arena
// policy — verifyArenas=false lets an aliasing load skip the eager
// crcR/crcT scans (copying paths always verify, they touch every byte
// anyway) — and the number of payload-section checksum scans that
// actually ran (0..numSections); a load that fails early never reads the
// later sections, which the store surfaces as section skips.
func decode(buf []byte, verifyArenas bool) (*Snapshot, int, error) {
	if len(buf) < headerSize {
		return nil, 0, fmt.Errorf("snapshot: %d-byte buffer is shorter than the %d-byte header", len(buf), headerSize)
	}
	if [8]byte(buf[0:8]) != magic {
		return nil, 0, errors.New("snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != formatVersion {
		return nil, 0, fmt.Errorf("snapshot: unsupported format version %d (want %d)", v, formatVersion)
	}
	if got, want := crc32.Checksum(buf[:68], crcTable), binary.LittleEndian.Uint32(buf[68:]); got != want {
		return nil, 0, fmt.Errorf("snapshot: header checksum %08x does not match %08x", got, want)
	}
	s := &Snapshot{
		Flags:   binary.LittleEndian.Uint32(buf[12:]),
		FP:      binary.LittleEndian.Uint64(buf[16:]),
		NBlocks: int(binary.LittleEndian.Uint32(buf[24:])),
		NEdges:  int(binary.LittleEndian.Uint32(buf[28:])),
		NReach:  int(binary.LittleEndian.Uint32(buf[32:])),
	}
	nBack := int(binary.LittleEndian.Uint32(buf[36:]))
	rB := int64(binary.LittleEndian.Uint32(buf[40:]))
	tB := int64(binary.LittleEndian.Uint32(buf[44:]))
	crcCFG := binary.LittleEndian.Uint32(buf[48:])
	crcDFS := binary.LittleEndian.Uint32(buf[52:])
	crcDOM := binary.LittleEndian.Uint32(buf[56:])
	crcR := binary.LittleEndian.Uint32(buf[60:])
	crcT := binary.LittleEndian.Uint32(buf[64:])

	cfgB, dfsB, domB, ok := sectionSizes(s.NBlocks, s.NEdges, s.NReach, nBack)
	arena64 := int64(s.NReach) * int64(wordsPerRow(s.NReach))
	if !ok || rB != 8*arena64 || tB != 8*arena64 {
		return nil, 0, fmt.Errorf("snapshot: implausible dimensions (%d blocks, %d edges, %d reachable, %d back edges, R %d, T %d)",
			s.NBlocks, s.NEdges, s.NReach, nBack, rB, tB)
	}
	total := int64(headerSize) + cfgB + dfsB + domB + rB + tB
	if int64(int(total)) != total || int64(len(buf)) != total {
		return nil, 0, fmt.Errorf("snapshot: buffer is %d bytes, want %d for the claimed dimensions", len(buf), total)
	}
	dfsOff := headerSize + int(cfgB)
	domOff := dfsOff + int(dfsB)
	rOff := domOff + int(domB)
	tOff := rOff + int(rB)

	// The R/T arenas — the O(n²) bulk — are adopted zero-copy when the
	// host allows, which for an mmap'd buffer means no matrix byte is
	// read at all, or decoded by copy otherwise. A copying path verifies
	// the arena checksums while the bytes are in hand (it pays a linear
	// pass regardless); the aliasing path scans them only when the caller
	// asks. Scans run on their own goroutine while this one verifies and
	// adopts the structural sections, so a multicore scanning load pays
	// max(scan, adopt), not the sum.
	arena := int(arena64)
	var rAliased, tAliased bool
	s.RWords, rAliased = adoptWords(buf[rOff:tOff], arena)
	s.TWords, tAliased = adoptWords(buf[tOff:], arena)
	rtScanned := 0
	var rtErr error
	done := make(chan struct{})
	if verifyArenas || !rAliased || !tAliased {
		go func() {
			defer close(done)
			rtScanned = 1
			if got := crc32.Checksum(buf[rOff:tOff], crcTable); got != crcR {
				rtErr = fmt.Errorf("snapshot: R section checksum %08x does not match %08x", got, crcR)
				return
			}
			rtScanned = 2
			if got := crc32.Checksum(buf[tOff:], crcTable); got != crcT {
				rtErr = fmt.Errorf("snapshot: T section checksum %08x does not match %08x", got, crcT)
			}
		}()
	} else {
		close(done)
	}

	scanned := 0
	structural := func() error {
		scanned++
		if got := crc32.Checksum(buf[headerSize:dfsOff], crcTable); got != crcCFG {
			return fmt.Errorf("snapshot: CFG section checksum %08x does not match %08x", got, crcCFG)
		}
		scanned++
		if got := crc32.Checksum(buf[dfsOff:domOff], crcTable); got != crcDFS {
			return fmt.Errorf("snapshot: DFS section checksum %08x does not match %08x", got, crcDFS)
		}
		scanned++
		if got := crc32.Checksum(buf[domOff:rOff], crcTable); got != crcDOM {
			return fmt.Errorf("snapshot: DOM section checksum %08x does not match %08x", got, crcDOM)
		}
		n, e, r := s.NBlocks, s.NEdges, s.NReach
		nc := 0
		if r > 0 {
			nc = r - 1
		}
		cur := headerSize
		next := func(count int) []int {
			a := adoptInts(buf[cur:], count)
			cur += 8 * count
			return a
		}
		s.SuccOff, s.Succs = next(n+1), next(e)
		s.PredOff, s.Preds = next(n+1), next(e)
		s.Pre, s.Post, s.Parent, s.SubtreeMax = next(n), next(n), next(n), next(n)
		s.PreOrder, s.PostOrder = next(r), next(r)
		s.BackEdges = next(2 * nBack)
		s.Idom, s.Num, s.MaxNum, s.Order = next(n), next(n), next(n), next(r)
		s.ChildOff, s.Children = next(n+1), next(nc)
		return nil
	}()
	<-done
	if structural != nil {
		return nil, scanned + rtScanned, structural
	}
	if rtErr != nil {
		return nil, scanned + rtScanned, rtErr
	}
	s.size = total
	return s, scanned + rtScanned, nil
}

// nativeLittleEndian reports whether the host stores words in the file's
// byte order, one of the preconditions for aliasing file bytes directly.
var nativeLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// intIs64 gates aliasing file int64s as Go ints.
const intIs64 = bits.UintSize == 64

// forceCopyDecode, when set, disables the aliasing fast paths in
// adoptInts/adoptWords so the portable per-word decode — the code big-
// endian and 32-bit hosts always run — executes on any host. Test hook;
// see SetForceCopyDecode.
var forceCopyDecode atomic.Bool

// SetForceCopyDecode forces (or, with false, re-enables auto-detection
// for) the portable non-aliasing decode path, so CI on 64-bit
// little-endian machines can cover the byte-by-byte code big-endian and
// 32-bit platforms depend on. Test instrumentation only; toggle it before
// any loads, not concurrently with them.
func SetForceCopyDecode(v bool) { forceCopyDecode.Store(v) }

// decodeAliases reports whether Decode's structural arrays alias the
// input buffer on this host (the store must then keep file mappings alive
// as long as the decoded snapshot).
func decodeAliases() bool {
	return intIs64 && nativeLittleEndian && !forceCopyDecode.Load()
}

// adoptInts views the first 8n bytes of b as n little-endian int64s —
// zero-copy when int is 64 bits, the host is little-endian, and the base
// is 8-aligned (the header and every array boundary are multiples of 8,
// so within any fresh []byte or page-aligned mapping all arrays qualify).
// Otherwise it falls back to a decoding copy, so the function is correct
// on any host; only the constant factor changes. Values are validated by
// the adopting constructors, not here.
func adoptInts(b []byte, n int) []int {
	if n == 0 {
		return nil
	}
	if decodeAliases() && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return out
}

// adoptWords views the first 8n bytes of b as n little-endian uint64s —
// zero-copy (aliased=true) under exactly the conditions adoptInts
// aliases, so a Snapshot never mixes arrays that alias the buffer with
// arrays that would outlive it under the store's unmap policy. Otherwise
// it returns a decoded copy; callers must then verify the source bytes'
// checksum themselves, which the aliasing path may defer.
func adoptWords(b []byte, n int) (words []uint64, aliased bool) {
	if n == 0 {
		return nil, true
	}
	if decodeAliases() && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, false
}

// encodeWords writes words into dst little-endian and returns the byte
// count — a single memmove on a little-endian host (the in-memory arena
// already is the wire format), a per-word encode otherwise.
func encodeWords(dst []byte, words []uint64) int {
	if len(words) == 0 {
		return 0
	}
	if nativeLittleEndian {
		copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), 8*len(words)))
	} else {
		for i, w := range words {
			binary.LittleEndian.PutUint64(dst[8*i:], w)
		}
	}
	return 8 * len(words)
}

// Restore rebuilds a ready-to-query checker result for f from the
// snapshot, skipping both the R/T precompute passes and the linear
// derivations: graph, DFS and dominator tree are adopted straight from
// the snapshot's arrays after validation.
//
// Correctness gate: the snapshot must describe f's *current* CFG under
// the caller's options. Restore fingerprints f (without building its
// graph) and rejects mismatches; RestoreFrom then cross-checks the stored
// successor structure edge-for-edge against f itself and runs every
// adopting constructor's validation — so a snapshot picked up for the
// wrong function, or raced with a CFG edit, fails closed into the
// recompute path rather than answering from someone else's sets.
func (s *Snapshot) Restore(f *ir.Func, opts core.Options) (*backend.CheckerResult, error) {
	if err := ir.Verify(f); err != nil {
		return nil, err
	}
	fp, index := FingerprintFunc(f, s.Flags)
	if fp != s.FP {
		return nil, fmt.Errorf("snapshot: fingerprint %016x does not match function's %016x", s.FP, fp)
	}
	return s.RestoreFrom(f, index, opts)
}

// RestoreFrom is Restore for a caller that has already fingerprinted f
// (obtaining the block-ID index), matched the fingerprint against s.FP,
// and warrants that f passes ir.Verify — the engine's load path computes
// the fingerprint to key its store lookup and tracks verification per
// edit epoch, and this entry point keeps it from paying for either twice.
//
// Validation still runs in full: flags, structural counts, an
// edge-for-edge comparison of the stored successor rows against f's
// current blocks, and the shape/consistency checks inside
// cfg.AdoptGraph, cfg.AdoptDFS, dom.Adopt and bitset.AdoptMatrix. What
// is *trusted* is the content the file captured from a live checker:
// which DFS visit order was taken, which edges are back edges, and the
// R/T words themselves — checksummed at save, scanned at load per the
// store's arena-verification policy (see the format comment's corruption
// contract).
func (s *Snapshot) RestoreFrom(f *ir.Func, index []int, opts core.Options) (*backend.CheckerResult, error) {
	if got := FlagsFor(opts); got != s.Flags {
		return nil, fmt.Errorf("snapshot: flags %#x do not match requested options (%#x)", s.Flags, got)
	}
	n := len(f.Blocks)
	if n != s.NBlocks {
		return nil, fmt.Errorf("snapshot: function has %d blocks, snapshot has %d", n, s.NBlocks)
	}
	if s.NReach != s.NBlocks {
		return nil, fmt.Errorf("snapshot: %d of %d blocks unreachable from entry", s.NBlocks-s.NReach, s.NBlocks)
	}
	g, err := cfg.AdoptGraph(s.SuccOff, s.Succs, s.PredOff, s.Preds)
	if err != nil {
		return nil, err
	}
	// The stored adjacency must be f's adjacency, today: same row lengths,
	// same successors in the same order. This is the edge-level form of
	// the fingerprint match, and it makes the adopted graph
	// indistinguishable from cfg.FromFunc(f)'s.
	for i, b := range f.Blocks {
		row := g.Succs[i]
		if len(row) != len(b.Succs) {
			return nil, fmt.Errorf("snapshot: block %d has %d successors, snapshot has %d", i, len(b.Succs), len(row))
		}
		for j, e := range b.Succs {
			if row[j] != index[e.B.ID] {
				return nil, fmt.Errorf("snapshot: block %d successor %d drifted", i, j)
			}
		}
	}
	var edges []cfg.Edge
	if nb := len(s.BackEdges) / 2; nb > 0 {
		edges = make([]cfg.Edge, nb)
		for i := range edges {
			edges[i] = cfg.Edge{S: s.BackEdges[2*i], T: s.BackEdges[2*i+1]}
		}
	}
	d, err := cfg.AdoptDFS(g, s.Pre, s.Post, s.Parent, s.SubtreeMax, s.PreOrder, s.PostOrder, edges)
	if err != nil {
		return nil, err
	}
	tree, err := dom.Adopt(g, d, s.Idom, s.Num, s.MaxNum, s.Order, s.ChildOff, s.Children)
	if err != nil {
		return nil, err
	}
	nr := d.NumReachable
	r, err := bitset.AdoptMatrix(s.RWords, nr, nr)
	if err != nil {
		return nil, err
	}
	t, err := bitset.AdoptMatrix(s.TWords, nr, nr)
	if err != nil {
		return nil, err
	}
	c, err := core.Adopt(g, d, tree, opts, r, t)
	if err != nil {
		return nil, err
	}
	p := &backend.Prep{F: f, Graph: g, Index: index, DFS: d, Tree: tree}
	return backend.NewCheckerResultFrom(p, c), nil
}

// SizeBytes returns the encoded size of s — recorded by Decode, or
// computed from the dimensions (the dense format's size is a pure
// function of them).
func (s *Snapshot) SizeBytes() int64 {
	if s.size > 0 {
		return s.size
	}
	cfgB, dfsB, domB, ok := sectionSizes(s.NBlocks, s.NEdges, s.NReach, len(s.BackEdges)/2)
	if !ok {
		return 0
	}
	return int64(headerSize) + cfgB + dfsB + domB + 8*int64(len(s.RWords)+len(s.TWords))
}
