package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"fastliveness/internal/backend"
	"fastliveness/internal/bitset"
	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

// Binary layout (all fixed-width fields little-endian):
//
//	offset  size  field
//	0       8     magic "FLSNAP01"
//	8       4     version (currently 2)
//	12      4     flags (FlagsFor bits)
//	16      8     fingerprint
//	24      4     nBlocks  (CFG nodes, = len(idom))
//	28      4     nEdges   (CFG edges; cheap structural cross-check)
//	32      4     nReach   (entry-reachable nodes, = matrix dimension)
//	36      4     reserved (zero)
//	40      8     CRC-32C (Castagnoli) of bytes [0,40) ++ [48,end) in the
//	              low 4 bytes, high 4 bytes zero — everything but this
//	              field itself, so any single corrupted bit anywhere in
//	              the file fails Decode. Castagnoli rather than crc64
//	              because amd64 and arm64 compute it in hardware: the
//	              payload is the O(n²) part of the file, and validating it
//	              must stay far cheaper than recomputing it, or a warm load
//	              hands back the time the snapshot saved. (Version 1 used
//	              crc64/ECMA; v1 files simply fail the version check and
//	              are recomputed and rewritten.)
//	48      ...   payload: idom as nBlocks×int32, zero padding to the next
//	              8-byte boundary, then the R arena (nReach×wpr uint64) and
//	              the T arena (nReach×wpr uint64), wpr = ceil(nReach/64)
//
// The header is 48 bytes — a multiple of 8 — and the idom array is padded
// to 8, so both word arenas sit 8-aligned within the buffer. A Decode of a
// buffer whose base address is itself 8-aligned (every ReadFile buffer and
// every page-aligned mmap in practice) can therefore alias the arenas as
// []uint64 without copying; see adoptWords.
const (
	headerSize    = 48
	formatVersion = 2
)

var magic = [8]byte{'F', 'L', 'S', 'N', 'A', 'P', '0', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxDim bounds the node counts a header may claim, purely as an
// arithmetic-overflow guard; real validation is the exact payload-length
// match below, which ties every count to the actual file size.
const maxDim = 1 << 30

// Snapshot is one function's decoded (or about-to-be-encoded) checker
// precomputation. RWords/TWords may alias a Decode input buffer — the
// zero-copy path — so a Snapshot adopted into a live checker must outlive
// its buffer, which it does by construction (the slices keep it reachable).
type Snapshot struct {
	Flags   uint32
	FP      uint64
	NBlocks int
	NEdges  int
	NReach  int
	Idom    []int32
	RWords  []uint64
	TWords  []uint64
}

// ErrNoArena marks checkers that cannot be captured: the SortedT variant
// drops its T arena after conversion, leaving nothing to serialize. (Such
// configs still *load* snapshots — core.Adopt re-runs the conversion.)
var ErrNoArena = errors.New("snapshot: checker dropped its T arena (SortedT); nothing to capture")

// Capture packages a live checker's precomputation for serialization. The
// word slices alias the checker's arenas — Encode reads them immediately,
// so the alias is safe as long as the checker is not queried *mutably*
// in between, and checker arenas are write-once at precompute time.
func Capture(p *backend.Prep, c *core.Checker) (*Snapshot, error) {
	r, t := c.Matrices()
	if t == nil {
		return nil, ErrNoArena
	}
	g := p.Graph
	flags := FlagsFor(c.Options())
	idom := make([]int32, g.N())
	for i, d := range p.Tree.Idom {
		idom[i] = int32(d)
	}
	return &Snapshot{
		Flags:   flags,
		FP:      Fingerprint(g, flags),
		NBlocks: g.N(),
		NEdges:  g.NumEdges(),
		NReach:  p.DFS.NumReachable,
		Idom:    idom,
		RWords:  r.Words(),
		TWords:  t.Words(),
	}, nil
}

// wordsPerRow mirrors the bitset package's row stride.
func wordsPerRow(n int) int { return (n + 63) / 64 }

// payloadSize returns the byte length of the payload section for the given
// dimensions, or -1 on arithmetic overflow.
func payloadSize(nBlocks, nReach int) int64 {
	if nBlocks < 0 || nReach < 0 || nBlocks > maxDim || nReach > maxDim {
		return -1
	}
	idomBytes := int64(nBlocks) * 4
	pad := (8 - idomBytes%8) % 8
	arena := int64(nReach) * int64(wordsPerRow(nReach)) * 8
	return idomBytes + pad + 2*arena
}

// Encode serializes s. The returned buffer is freshly allocated and fully
// self-contained.
func (s *Snapshot) Encode() ([]byte, error) {
	psize := payloadSize(s.NBlocks, s.NReach)
	if psize < 0 {
		return nil, fmt.Errorf("snapshot: dimensions out of range (%d blocks, %d reachable)", s.NBlocks, s.NReach)
	}
	wpr := wordsPerRow(s.NReach)
	arena := s.NReach * wpr
	if len(s.Idom) != s.NBlocks || len(s.RWords) != arena || len(s.TWords) != arena {
		return nil, fmt.Errorf("snapshot: inconsistent snapshot (idom %d/%d, R %d, T %d, want arena %d)",
			len(s.Idom), s.NBlocks, len(s.RWords), len(s.TWords), arena)
	}
	buf := make([]byte, headerSize+int(psize))

	// Payload first, so the header's checksum field can cover it.
	p := buf[headerSize:]
	off := 0
	for _, d := range s.Idom {
		binary.LittleEndian.PutUint32(p[off:], uint32(d))
		off += 4
	}
	off += (8 - off%8) % 8 // zero padding is already there
	for _, w := range s.RWords {
		binary.LittleEndian.PutUint64(p[off:], w)
		off += 8
	}
	for _, w := range s.TWords {
		binary.LittleEndian.PutUint64(p[off:], w)
		off += 8
	}

	copy(buf[0:8], magic[:])
	binary.LittleEndian.PutUint32(buf[8:], formatVersion)
	binary.LittleEndian.PutUint32(buf[12:], s.Flags)
	binary.LittleEndian.PutUint64(buf[16:], s.FP)
	binary.LittleEndian.PutUint32(buf[24:], uint32(s.NBlocks))
	binary.LittleEndian.PutUint32(buf[28:], uint32(s.NEdges))
	binary.LittleEndian.PutUint32(buf[32:], uint32(s.NReach))
	binary.LittleEndian.PutUint32(buf[36:], 0)
	binary.LittleEndian.PutUint64(buf[40:], checksum(buf))
	return buf, nil
}

// checksum covers the whole buffer except the checksum field itself.
func checksum(buf []byte) uint64 {
	c := crc32.Update(0, crcTable, buf[:40])
	return uint64(crc32.Update(c, crcTable, buf[headerSize:]))
}

// Decode parses and validates a snapshot buffer: magic, version, exact
// payload length for the claimed dimensions, and the payload checksum. Any
// deviation — truncation, bit flips anywhere, an unknown version — is an
// error, never a panic and never a silently corrupt Snapshot. On the happy
// path the R/T word slices alias buf (see adoptWords), so Decode of a
// ReadFile'd buffer performs no per-word copying.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("snapshot: %d-byte buffer is shorter than the %d-byte header", len(buf), headerSize)
	}
	if [8]byte(buf[0:8]) != magic {
		return nil, errors.New("snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != formatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", v, formatVersion)
	}
	s := &Snapshot{
		Flags:   binary.LittleEndian.Uint32(buf[12:]),
		FP:      binary.LittleEndian.Uint64(buf[16:]),
		NBlocks: int(binary.LittleEndian.Uint32(buf[24:])),
		NEdges:  int(binary.LittleEndian.Uint32(buf[28:])),
		NReach:  int(binary.LittleEndian.Uint32(buf[32:])),
	}
	psize := payloadSize(s.NBlocks, s.NReach)
	if psize < 0 || int64(len(buf)-headerSize) != psize {
		return nil, fmt.Errorf("snapshot: payload is %d bytes, want %d for %d blocks / %d reachable",
			len(buf)-headerSize, psize, s.NBlocks, s.NReach)
	}
	if got, want := checksum(buf), binary.LittleEndian.Uint64(buf[40:]); got != want {
		return nil, fmt.Errorf("snapshot: checksum %016x does not match header %016x", got, want)
	}
	p := buf[headerSize:]

	s.Idom = make([]int32, s.NBlocks)
	off := 0
	for i := range s.Idom {
		s.Idom[i] = int32(binary.LittleEndian.Uint32(p[off:]))
		off += 4
	}
	off += (8 - off%8) % 8
	arena := s.NReach * wordsPerRow(s.NReach)
	s.RWords = adoptWords(p[off:off+arena*8], arena)
	off += arena * 8
	s.TWords = adoptWords(p[off:off+arena*8], arena)
	return s, nil
}

// nativeLittleEndian reports whether the host stores uint64s in the file's
// byte order, the precondition for aliasing file bytes as words.
var nativeLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// adoptWords views an 8n-byte buffer as n little-endian uint64s — zero-copy
// when the host is little-endian and the buffer base is 8-aligned (Go's
// allocator 8-aligns every fresh []byte, so ReadFile buffers qualify;
// sub-slices at unpadded offsets would not, which is why the format pads
// the arenas to 8). Otherwise it falls back to a decoding copy, so the
// function is correct on any host; only the constant factor changes.
func adoptWords(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// Restore rebuilds a ready-to-query checker result for f from the
// snapshot, skipping the R/T precompute passes entirely. It re-derives
// everything linear from the live function — graph, block index, DFS,
// dominator tree (from the snapshot's idom via dom.FromIdom) — and adopts
// the word arenas as the checker's matrices.
//
// Correctness gate: the snapshot must describe f's *current* CFG under the
// caller's options. Restore re-fingerprints f and rejects mismatches, plus
// cheaper structural cross-checks (node/edge counts, full reachability) and
// the dominator-tree validation inside FromIdom — so a snapshot picked up
// for the wrong function, or raced with a CFG edit, fails closed into the
// recompute path rather than answering from someone else's sets.
func (s *Snapshot) Restore(f *ir.Func, opts core.Options) (*backend.CheckerResult, error) {
	if err := ir.Verify(f); err != nil {
		return nil, err
	}
	g, index := cfg.FromFunc(f)
	if fp := Fingerprint(g, s.Flags); fp != s.FP {
		return nil, fmt.Errorf("snapshot: fingerprint %016x does not match function's %016x", s.FP, fp)
	}
	return s.RestoreFrom(f, g, index, opts)
}

// RestoreFrom is Restore for a caller that has already derived f's graph
// and block index, matched Fingerprint(g, s.Flags) against s.FP, and
// warrants that f passes ir.Verify — the engine's load path computes the
// graph and fingerprint to key its store lookup and tracks verification per
// edit epoch, and this entry point keeps it from paying for any of them
// twice. All CFG-level validation (flags, structural counts, full
// reachability, the dominator-tree checks in FromIdom, matrix dimensions)
// still runs.
func (s *Snapshot) RestoreFrom(f *ir.Func, g *cfg.Graph, index []int, opts core.Options) (*backend.CheckerResult, error) {
	if got := FlagsFor(opts); got != s.Flags {
		return nil, fmt.Errorf("snapshot: flags %#x do not match requested options (%#x)", s.Flags, got)
	}
	if g.N() != s.NBlocks || g.NumEdges() != s.NEdges {
		return nil, fmt.Errorf("snapshot: CFG is %d nodes/%d edges, snapshot has %d/%d",
			g.N(), g.NumEdges(), s.NBlocks, s.NEdges)
	}
	d := cfg.NewDFS(g)
	if d.NumReachable != g.N() {
		return nil, fmt.Errorf("snapshot: %d of %d blocks unreachable from entry", g.N()-d.NumReachable, g.N())
	}
	if d.NumReachable != s.NReach {
		return nil, fmt.Errorf("snapshot: %d reachable nodes, snapshot has %d", d.NumReachable, s.NReach)
	}
	idom := make([]int, len(s.Idom))
	for i, p := range s.Idom {
		idom[i] = int(p)
	}
	tree, err := dom.FromIdom(g, d, idom)
	if err != nil {
		return nil, err
	}
	n := d.NumReachable
	r, err := bitset.AdoptMatrix(s.RWords, n, n)
	if err != nil {
		return nil, err
	}
	t, err := bitset.AdoptMatrix(s.TWords, n, n)
	if err != nil {
		return nil, err
	}
	c, err := core.Adopt(g, d, tree, opts, r, t)
	if err != nil {
		return nil, err
	}
	p := &backend.Prep{F: f, Graph: g, Index: index, DFS: d, Tree: tree}
	return backend.NewCheckerResultFrom(p, c), nil
}

// SizeBytes returns the encoded size of s without encoding it.
func (s *Snapshot) SizeBytes() int64 {
	return headerSize + payloadSize(s.NBlocks, s.NReach)
}
