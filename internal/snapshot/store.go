package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastliveness/internal/faults"
)

// ErrNotFound is returned by Store.Load when no snapshot exists for the
// fingerprint — the ordinary cache-miss signal, distinct from corruption
// (which surfaces as a Decode error and equally degrades to recompute).
var ErrNotFound = errors.New("snapshot: not found")

const fileExt = ".flsnap"

// Store manages a directory of snapshot files, one per fingerprint
// (<%016x>.flsnap), with a byte budget enforced by mtime-ordered GC —
// effectively LRU, because Load touches the file it hits. Saves go through
// a temp file plus atomic rename, so concurrent processes sharing a
// directory never observe half-written snapshots; the checksum in the
// format catches everything else. The mutex serializes Save/GC within one
// process; cross-process races at worst re-save an identical file or GC a
// file the other process re-creates — benign, because snapshots are pure
// functions of their fingerprint.
//
// Loads are mmap-backed where the platform allows (see mapFile): the
// decoded Snapshot's word arenas alias the read-only mapping, so the
// kernel's page cache — shared across every process mapping the same file
// — is the only copy of the O(n²) payload, and a load moves no matrix
// bytes at all: the R/T arena checksums are not scanned on this path
// unless SetVerifyArenas opts in (structural sections always are; see
// the format comment's corruption contract). Validated snapshots are cached
// per fingerprint for the store's lifetime; since a snapshot is a pure
// function of its fingerprint and Save only ever replaces files via
// rename (new inode, existing mappings untouched), a cached entry can
// never go stale. The flip side of aliasing the file is a contract on
// writers: snapshot files must be replaced atomically, as Save does —
// truncating a file in place while some process has it loaded is
// undefined (SIGBUS territory), exactly as with any mmap'd format.
type Store struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded
	mu       sync.Mutex
	cache    map[uint64]*Snapshot // validated loads, alive for the store's lifetime

	// injector is the store's fault seam (sites FaultSiteLoad and
	// FaultSiteSave, fired on the I/O path before any file is touched).
	// Nil — the production state — costs one atomic load per operation.
	injector atomic.Pointer[faults.Injector]

	// GC accounting, readable without the store lock (GCStats).
	gcRuns atomic.Int64
	gcNs   atomic.Int64

	// Decoded-cache and section-scan accounting (Stats): how many Loads
	// the in-process cache absorbed, and how many per-section checksum
	// scans the v3 format's early-exit validation avoided.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	secScans    atomic.Int64
	secSkips    atomic.Int64

	// verifyArenas forces eager R/T checksum scans on the aliasing mmap
	// path; see SetVerifyArenas.
	verifyArenas atomic.Bool
}

// StoreStats counts a store's load traffic at the layer below the
// engine's hit/miss accounting: whether a Load was absorbed by the
// in-process decoded cache, and — for loads that did touch a file — how
// many of the format's checksum-sealed sections were actually scanned.
type StoreStats struct {
	// DecodedCacheHits and DecodedCacheMisses split Loads by whether the
	// per-store decoded cache already held a validated snapshot for the
	// fingerprint.
	DecodedCacheHits   int64
	DecodedCacheMisses int64
	// SectionScans and SectionSkips count per-section checksum scans run
	// and avoided; each load that finds an entry (cached or on disk)
	// accounts for exactly numSections of them, while a load of a missing
	// fingerprint accounts for none — there were no sections to consider.
	// A cached hit skips all five; an aliasing mmap load scans the three
	// structural sections and skips the two O(n²) arena sections (unless
	// SetVerifyArenas opts in); a copying load scans all five; a load that
	// fails an early validation skips the sections it never reached.
	SectionScans int64
	SectionSkips int64
}

// Stats reports the store's decoded-cache and section-scan counters.
// Store-global: engines sharing one store observe shared counts.
func (st *Store) Stats() StoreStats {
	return StoreStats{
		DecodedCacheHits:   st.cacheHits.Load(),
		DecodedCacheMisses: st.cacheMisses.Load(),
		SectionScans:       st.secScans.Load(),
		SectionSkips:       st.secSkips.Load(),
	}
}

// SetVerifyArenas opts this store's mmap loads into eager R/T arena
// checksum scans. By default the aliasing path verifies the header and
// the three structural sections and defers the O(n²) arena scans —
// that deferral is what makes a warm load sub-linear in the matrix
// size, and it is the standard mmap'd-format trade: a bit flip on disk
// under an already-validated structure would go unscanned until a
// copying load or a recompute touches it. Deployments that would rather
// pay a linear pass per file-backed load for eager end-to-end integrity
// set this once, before loading. (Copying loads — forced fallback,
// non-aliasing hosts — always verify all sections regardless.)
func (st *Store) SetVerifyArenas(v bool) { st.verifyArenas.Store(v) }

// Fault-injection sites the store fires on its I/O paths; see
// SetFaultInjector.
const (
	FaultSiteLoad = "snapshot.load"
	FaultSiteSave = "snapshot.save"
)

// SetFaultInjector arms (or, with nil, disarms) deterministic fault
// injection on the store's I/O paths: FaultSiteLoad fires at the top of
// every Load that misses the in-process cache, FaultSiteSave at the top
// of every Save. Injected errors surface exactly like real disk errors;
// injected delays model a slow disk. Test instrumentation only.
func (st *Store) SetFaultInjector(in *faults.Injector) {
	st.injector.Store(in)
}

// fire triggers the armed injector at site; nil injectors never fire.
func (st *Store) fire(site string) error {
	return st.injector.Load().Fire(site)
}

// Open creates (if needed) and opens a snapshot directory. maxBytes bounds
// the directory's total snapshot size; <= 0 disables the bound.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &Store{dir: dir, maxBytes: maxBytes, cache: make(map[uint64]*Snapshot)}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(fp uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%016x%s", fp, fileExt))
}

// Contains reports whether a snapshot file exists for fp (without reading
// or validating it) — the cheap dedupe check before scheduling a Save.
func (st *Store) Contains(fp uint64) bool {
	_, err := os.Stat(st.path(fp))
	return err == nil
}

// Load returns the decoded snapshot for fp — from the in-process cache
// when this store validated it before, otherwise by mapping and decoding
// the file. Missing files return ErrNotFound; corrupt or mismatched files
// return the Decode/consistency error. A fresh hit touches the file's
// mtime so the GC's eviction order tracks use, not just creation.
func (st *Store) Load(fp uint64) (*Snapshot, error) {
	st.mu.Lock()
	if s, ok := st.cache[fp]; ok {
		st.mu.Unlock()
		st.cacheHits.Add(1)
		st.secSkips.Add(numSections) // validated before; no section re-scanned
		return s, nil
	}
	st.mu.Unlock()
	st.cacheMisses.Add(1)

	if err := st.fire(FaultSiteLoad); err != nil {
		return nil, err
	}
	path := st.path(fp)
	buf, unmap, err := mapFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	s, scanned, err := decode(buf, st.verifyArenas.Load())
	st.secScans.Add(int64(scanned))
	st.secSkips.Add(int64(numSections - scanned))
	if err != nil {
		// The file is demonstrably garbage (or an old format version).
		// Delete it so a future save can repair the store; while it sat
		// there, Contains would dedupe the very save that could fix it.
		// The caller still sees the miss — the degradation path that turns
		// v2 files into recompute-then-rewrite-as-v3.
		os.Remove(path)
		unmap()
		return nil, err
	}
	if s.FP != fp {
		os.Remove(path)
		unmap()
		return nil, fmt.Errorf("snapshot: file %s holds fingerprint %016x", filepath.Base(path), s.FP)
	}
	if !decodeAliases() {
		unmap() // Decode copied the arrays; nothing aliases the mapping
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort recency for GC

	st.mu.Lock()
	defer st.mu.Unlock()
	if prior, ok := st.cache[fp]; ok {
		return prior, nil // a concurrent loader won; this mapping stays too
	}
	st.cache[fp] = s
	return s, nil
}

// Save encodes and writes s, keyed by its fingerprint, then enforces the
// byte budget. Writing an already-present fingerprint replaces the file
// with identical bytes — harmless, and what concurrent savers do to each
// other.
func (st *Store) Save(s *Snapshot) error {
	if err := st.fire(FaultSiteSave); err != nil {
		return err
	}
	buf, err := s.Encode()
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	final := st.path(s.FP)
	tmp, err := os.CreateTemp(st.dir, "tmp-*"+fileExt+".partial")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	st.gcLocked(filepath.Base(final))
	return nil
}

// SizeBytes sums the store's snapshot files.
func (st *Store) SizeBytes() int64 {
	var total int64
	for _, f := range st.files() {
		total += f.size
	}
	return total
}

// Len counts the store's snapshot files.
func (st *Store) Len() int { return len(st.files()) }

// GCStats reports how many byte-budget GC passes Save has run and their
// cumulative wall-clock time — the latency cost of keeping the directory
// inside its budget, exposed through the engine's metrics surface.
func (st *Store) GCStats() (runs int, totalNs int64) {
	return int(st.gcRuns.Load()), st.gcNs.Load()
}

type storeFile struct {
	name  string
	size  int64
	mtime time.Time
}

// files lists the directory's snapshot files (ignoring temp files and
// anything unstattable — it may have been GC'd by a concurrent process).
func (st *Store) files() []storeFile {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var out []storeFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), fileExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, storeFile{name: e.Name(), size: info.Size(), mtime: info.ModTime()})
	}
	return out
}

// gcLocked deletes oldest-first until the directory fits the byte budget,
// never deleting keep (the file just written — a budget smaller than one
// snapshot must not make Save a no-op that immediately unlinks its own
// work).
func (st *Store) gcLocked(keep string) {
	if st.maxBytes <= 0 {
		return
	}
	start := time.Now()
	defer func() {
		st.gcRuns.Add(1)
		st.gcNs.Add(time.Since(start).Nanoseconds())
	}()
	files := st.files()
	var total int64
	for _, f := range files {
		total += f.size
	}
	if total <= st.maxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= st.maxBytes {
			break
		}
		if f.name == keep {
			continue
		}
		if os.Remove(filepath.Join(st.dir, f.name)) == nil {
			total -= f.size
		}
	}
}
