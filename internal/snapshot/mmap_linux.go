//go:build linux

package snapshot

import "syscall"

// populateFlag asks mmap to prefault the whole mapping up front.
// Snapshot loads validate the checksum over every payload byte
// immediately, so the pages are all needed anyway — one MAP_POPULATE
// walk in the kernel is several times cheaper than taking a demand
// fault per 4KiB page during the checksum scan.
const populateFlag = syscall.MAP_POPULATE
