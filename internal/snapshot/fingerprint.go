// Package snapshot persists the checker's CFG-only precomputation across
// processes: a versioned, per-section-checksummed binary format holding
// the CFG edge arenas, the DFS and dominator-tree arrays, and the R/T
// bitset matrices (run-length encoded), keyed by a structural CFG
// fingerprint, plus a size-bounded on-disk Store the engine uses as a disk
// tier under its LRU.
//
// The design leans on the paper's invalidation asymmetry (§4): R and T
// depend only on CFG structure, so the cache key hashes block structure and
// successor lists — never block IDs, instructions or operands. A process
// that edited every instruction in a function still warm-starts from
// yesterday's snapshot; only a CFG edit changes the fingerprint and forces
// the precompute to run again.
package snapshot

import (
	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
	"fastliveness/internal/ir"
)

// Format flag bits. Only knobs that change the *content* of the R/T arenas
// belong here: the T-set strategy does (exact and propagate produce
// different — though answer-equivalent — sets), while the query-time
// ablations (NoSkipSubtrees, NoReducibleFastPath) and the SortedT storage
// variant do not, so configs differing only in those share snapshots.
const (
	flagStrategyExact uint32 = 1 << 0
)

// FlagsFor maps checker options to the snapshot flag word — the
// content-affecting subset only (see the flag constants).
func FlagsFor(opts core.Options) uint32 {
	var f uint32
	if opts.Strategy == core.StrategyExact {
		f |= flagStrategyExact
	}
	return f
}

// Fingerprint hashes the structural identity of g under the given analysis
// flags: FNV-1a 64 over a varint stream of (flags, N, then per node its
// successor count followed by the successor node indices, in node order).
// The framing is injective — every list is length-prefixed — so two graphs
// collide only by genuine 64-bit hash collision, not by ambiguous
// serialization. Node indices are CFG node numbers (block positions), not
// block IDs, so renumbering blocks without changing structure preserves the
// fingerprint, as does any instruction-level edit.
//
// The hash is a fixed public function of the graph — no per-process seed —
// because fingerprints name files shared across processes and runs.
func Fingerprint(g *cfg.Graph, flags uint32) uint64 {
	h := newFNV()
	h.uvarint(uint64(flags))
	h.uvarint(uint64(g.N()))
	for _, succs := range g.Succs {
		h.uvarint(uint64(len(succs)))
		for _, s := range succs {
			h.uvarint(uint64(s))
		}
	}
	return uint64(h)
}

// FingerprintFunc computes Fingerprint(g, flags) for the graph
// cfg.FromFunc(f) would extract, without building the graph — bit
// identical, because the hash stream depends only on the per-block
// successor counts and node indices, both of which read straight off
// f.Blocks. It also returns the block-ID→node index (FromFunc's second
// result), which the hash needs anyway and RestoreFrom wants next. This
// is the warm path's key derivation: under snapshot format v3 the graph
// itself is adopted from the file, so a hit never runs FromFunc at all.
func FingerprintFunc(f *ir.Func, flags uint32) (uint64, []int) {
	index := make([]int, f.NumBlocks())
	for i := range index {
		index[i] = -1
	}
	for i, b := range f.Blocks {
		index[b.ID] = i
	}
	h := newFNV()
	h.uvarint(uint64(flags))
	h.uvarint(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		h.uvarint(uint64(len(b.Succs)))
		for _, e := range b.Succs {
			h.uvarint(uint64(index[e.B.ID]))
		}
	}
	return uint64(h), index
}

// fnv64 is FNV-1a with 64-bit state, written out inline (hash/fnv would
// force a []byte round trip per write; this streams words directly).
type fnv64 uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFNV() fnv64 { return fnvOffset64 }

func (h *fnv64) byte(b byte) {
	*h = (*h ^ fnv64(b)) * fnvPrime64
}

// uvarint feeds x to the hash in base-128 varint framing, the same shape
// encoding/binary.PutUvarint produces.
func (h *fnv64) uvarint(x uint64) {
	for x >= 0x80 {
		h.byte(byte(x) | 0x80)
		x >>= 7
	}
	h.byte(byte(x))
}
