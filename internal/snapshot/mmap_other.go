//go:build !unix

package snapshot

// mapFile on platforms without a (wired-up) mmap reads the whole file; the
// decode path is identical, just with a private copy instead of shared
// pages.
func mapFile(path string) ([]byte, func() error, error) {
	return readFallback(path)
}
