//go:build unix && !linux

package snapshot

// populateFlag: no MAP_POPULATE equivalent; pages fault in on demand
// during the checksum scan.
const populateFlag = 0
