package debugserver

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"fastliveness/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsAndPprof(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("test_hits_total", "a counter").Add(7)
	reg.Histogram("test_ns", "a histogram").Observe(42)

	s, err := Start("127.0.0.1:0", reg.Write)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if err := telemetry.CheckExposition(body); err != nil {
		t.Fatalf("/metrics exposition lint: %v\n%s", err, body)
	}
	if !strings.Contains(body, "test_hits_total 7") {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}

	code, body = get(t, "http://"+s.Addr()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profile listing:\n%.200s", body)
	}

	// /metrics is GET-only.
	resp, err := http.Post("http://"+s.Addr()+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d, want 405", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
