// Package debugserver is the shared HTTP debug endpoint for the CLIs: a
// GET /metrics handler writing the Prometheus text exposition produced
// by a caller-supplied writer function, plus the net/http/pprof profile
// handlers under /debug/pprof/. It registers handlers on its own
// ServeMux — never on http.DefaultServeMux, which importing
// net/http/pprof would otherwise mutate process-wide — and supports
// ":0" addresses so tests can bind an ephemeral port and read it back
// with Addr.
package debugserver

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running debug endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (host:port; ":0" picks an ephemeral port) and serves
// /metrics — rendered by calling metrics with the response writer — and
// the pprof handlers. The caller must Close the returned server.
func Start(addr string, metrics func(io.Writer)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) on Close;
		// either way there is nothing useful to do with it here.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	return s.srv.Close()
}
