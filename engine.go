// Program-level engine: many functions, one analysis service.
//
// The per-function checker of this package precomputes R/T sets in
// near-linear time, but a whole program has thousands of functions and the
// precomputations are completely independent — the natural axis of
// parallelism for a compiler server or JIT that must analyze a module, not
// a procedure. Engine owns that axis: it registers many ir.Funcs,
// precomputes their analyses across a bounded worker pool, keeps the
// results behind sharded thread-safe LRU-cached handles, and batches
// queries so callers amortize per-query overhead.
//
// Concurrency layout (see also rebuild.go):
//
//   - The function index is a lock-free sync.Map; looking up the handle
//     for a function takes no lock at all.
//   - Handles are partitioned across N shards, each with its own mutex,
//     condition variable and LRU list. Queries on functions in different
//     shards never contend; the old single engine mutex is gone.
//   - Per-function staleness is an epoch comparison against atomic
//     counters (ir.Func.CFGEpoch/InstrEpoch) — no lock on that check.
//   - An optional background rebuild pool re-analyzes functions marked
//     dirty by editing passes ahead of the next query (rebuild.go).

package fastliveness

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/ir"
	"fastliveness/internal/retry"
	"fastliveness/internal/telemetry"
)

// defaultShards is the shard count when EngineConfig.Shards is zero: high
// enough that independent query streams rarely share a shard mutex, low
// enough that per-shard state stays negligible.
const defaultShards = 16

// Quarantine pacing: how many backoff-paced retries a panicking build
// gets before the function fails fast until its next edit
// (EngineConfig.MaxBuildRetries overrides the count), and the
// decorrelated-jitter backoff bounds between retries.
const (
	defaultMaxBuildRetries = 2
	quarantineBackoffBase  = 2 * time.Millisecond
	quarantineBackoffCap   = 250 * time.Millisecond
)

// EngineConfig tunes a program-level Engine. The zero value analyzes with
// the paper's per-function configuration, uses one worker per CPU, shards
// the index defaultShards ways, caches every analysis, and runs no
// background rebuild workers.
type EngineConfig struct {
	// Config is the per-function analysis configuration.
	Config Config
	// Parallelism bounds the precompute worker pool and the fan-out of
	// large batched queries. 0 means GOMAXPROCS.
	Parallelism int
	// MaxCached bounds how many per-function analyses stay resident
	// across all shards; the least recently used are evicted and
	// transparently rebuilt on the next request. The bound is global but
	// enforced locally: the shard that overflows it evicts from its own
	// LRU tail, so under concurrent inserts the victim is the least
	// recently used handle of that shard, not necessarily of the whole
	// engine. 0 means unlimited.
	MaxCached int
	// Shards is the number of independent index partitions, each with its
	// own mutex and LRU. Functions are assigned round-robin in
	// registration order — deterministic, perfectly balanced, and
	// equivalent to hashing the function pointer without depending on
	// address-space layout. Query answers, Stats and Rebuilds are
	// invariant under the shard count. 0 means defaultShards.
	Shards int
	// RebuildWorkers starts that many background goroutines that
	// re-analyze functions enqueued by MarkDirty (or Edit) before the
	// next query needs them. 0 disables the pool: stale analyses are
	// rebuilt synchronously on the query path, exactly as before. An
	// engine with workers must be Closed to stop them.
	RebuildWorkers int
	// SnapshotStore adds a persistent disk tier under the LRU (see
	// snapshot.go): analysis builds first try a fingerprint-matched
	// snapshot load, and full precomputes are written back for future
	// processes. Nil disables the tier. Only the checker backend (the
	// default) uses it; its precomputation is the CFG-only one that stays
	// valid across instruction edits and hence across runs. The store's
	// I/O sits behind a circuit breaker: a failing or slow disk degrades
	// builds to recomputation, never to an error or a wrong answer.
	SnapshotStore *SnapshotStore
	// MaxBuildRetries bounds how many backoff-paced retries a function
	// whose build panicked gets before it fails fast (ErrQuarantined)
	// until its next edit. 0 means the default (2); negative quarantines
	// on the first panic with no retries.
	MaxBuildRetries int
	// Tracer receives the engine's lifecycle events (build start/end,
	// query batches, snapshot loads/saves, quarantine enter/clear,
	// breaker transitions, rebuild enqueue/discard). Callbacks run
	// synchronously on the emitting goroutine, sometimes under engine
	// locks — they must be fast, must not block, and must not call back
	// into the engine. Nil means no tracing (zero overhead beyond the
	// always-on atomic counters behind Metrics).
	Tracer telemetry.Tracer
}

func (c EngineConfig) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (c EngineConfig) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return defaultShards
}

func (c EngineConfig) buildRetries() int {
	switch {
	case c.MaxBuildRetries > 0:
		return c.MaxBuildRetries
	case c.MaxBuildRetries < 0:
		return 0
	}
	return defaultMaxBuildRetries
}

// Query is one liveness question: is V live (in or out, per the method
// called) at block B. V and B must belong to the function the batch is
// issued against.
type Query struct {
	V *ir.Value
	B *ir.Block
}

// shard is one partition of the engine's handle index: a mutex, the
// condition variable build-waiters sleep on, the partition's LRU list of
// resident handles, and its share of the rebuild counter. Handles are
// assigned to shards at registration and never migrate.
type shard struct {
	mu       sync.Mutex
	cond     *sync.Cond
	lru      *list.List // resident handles of this shard, most recent first
	rebuilds int        // staleness-forced query-path re-analyses
}

// handle is the engine's per-function cache slot. The irMu field guards
// the function's IR structure against the background rebuild pool (see
// Engine.Edit); every other field is guarded by the owning shard's mutex.
// The Analyze call itself runs unlocked with `building` set so concurrent
// requesters wait instead of duplicating it.
type handle struct {
	f     *ir.Func
	shard *shard

	// irMu is the function-structure guard: Edit write-locks it around
	// mutations, builds (sync and async) and batch query execution
	// read-lock it around IR walks. Callers that never run the rebuild
	// pool and never call Edit pay only uncontended RLocks.
	irMu sync.RWMutex

	live     *Liveness
	err      error          // Analyze failure, held until the function is edited again
	errAt    backend.Epochs // epochs the failure was recorded at
	building bool
	// Quarantine state, set when a build panics (err then holds a
	// *BuildPanicError): panics counts the consecutive panicking builds at
	// the current epochs, retryAt gates the next backoff-paced retry, and
	// backoff produces the decorrelated-jitter delays. All reset on an
	// edit (errAt mismatch) or a successful build.
	panics  int
	retryAt time.Time
	backoff *retry.Backoff
	// verified/verifiedAt record that ir.Verify passed for the function as
	// of verifiedAt's epochs, so rebuilds, eviction refills and snapshot
	// restores of unchanged IR skip the verifier's full IR walk. Only the
	// single in-flight builder (building flag) touches them.
	verified   bool
	verifiedAt backend.Epochs
	queued bool // sitting in the rebuild pool's queue
	// prefetchQueued dedupes the warm-start prefetch queue exactly as
	// queued dedupes the rebuild queue (see Engine.Prefetch).
	prefetchQueued bool
	// snapProbed/snapProbedAt record that a prefetch consulted the
	// snapshot tier for this function's IR as of snapProbedAt and found no
	// usable snapshot, so the immediately following build skips the
	// redundant store probe. Like verified/verifiedAt, only the single
	// in-flight builder touches them.
	snapProbed   bool
	snapProbedAt backend.Epochs
	gen          int // bumped by invalidation and eviction; in-flight builds from older gens are discarded
	elem         *list.Element
}

// Engine analyzes a whole program: a set of functions registered with Add
// (or all at once via AnalyzeProgram), precomputed in parallel by
// Precompute, and queried through per-function Liveness handles or the
// batched query methods. All methods are safe for concurrent use.
//
// Staleness is handled automatically: every cached analysis records the
// function's edit epochs (ir.Func.CFGEpoch/InstrEpoch), and Liveness
// re-analyzes exactly when the recorded epochs say an intervening edit
// invalidated the resident result for the configured backend's
// invalidation class. With the default checker that means rebuilds happen
// only after CFG edits — instruction-only edits (spill code, copy
// insertion, φ elimination) are served by the existing precomputation, the
// paper's §4 property. With a set-producing backend ("dataflow", "lao",
// "pervar", "loops", or "auto" when it picks one) any edit triggers a
// rebuild on the next request. Rebuilds reports how many staleness-forced
// re-analyses the query path has paid; with a rebuild pool
// (EngineConfig.RebuildWorkers) BackgroundRebuilds reports the ones the
// workers absorbed off the hot path instead.
//
// The one hazard left with the caller is handle lifetime: a *Liveness or
// Querier obtained before an edit keeps answering against the pre-edit
// program. Request handles through the engine (or use Oracle, which
// re-fetches on staleness) instead of holding them across edits.
type Engine struct {
	config EngineConfig

	regMu  sync.Mutex // guards funcs and shard assignment
	funcs  []*ir.Func // registration order: the deterministic program order
	index  sync.Map   // map[*ir.Func]*handle; lock-free on the query path
	shards []*shard

	resident atomic.Int64 // resident analyses across all shards
	pool     *rebuildPool // nil unless RebuildWorkers > 0
	snap     snapshotCounters
	closed   atomic.Bool // set by Shutdown; engine methods then fail fast

	// tracer is config.Tracer or NopTracer, so emit sites never nil-check;
	// met is the atomic instrument block behind Metrics()/WriteMetrics.
	// unobserve detaches the engine's breaker-transition observer from the
	// (possibly shared) SnapshotStore at Shutdown.
	tracer    telemetry.Tracer
	met       engineMetrics
	unobserve func()
}

// NewEngine returns an empty engine; register functions with Add. With
// EngineConfig.RebuildWorkers > 0 the background pool starts immediately;
// call Close to stop it.
func NewEngine(config EngineConfig) *Engine {
	e := &Engine{config: config, tracer: config.Tracer}
	if e.tracer == nil {
		e.tracer = telemetry.NopTracer{}
	}
	e.shards = make([]*shard, config.shardCount())
	for i := range e.shards {
		s := &shard{lru: list.New()}
		s.cond = sync.NewCond(&s.mu)
		e.shards[i] = s
	}
	if config.SnapshotStore != nil {
		// Forward the (shared) store's breaker transitions to this engine's
		// tracer; Shutdown detaches.
		e.unobserve = config.SnapshotStore.observeBreaker(func(from, to retry.State) {
			e.tracer.BreakerTransition(from.String(), to.String())
		})
	}
	if config.RebuildWorkers > 0 {
		e.pool = newRebuildPool(e, config.RebuildWorkers)
	}
	return e
}

// AnalyzeProgram builds an engine over funcs and precomputes every
// analysis across the configured worker pool. It fails with the first
// error in registration order; the engine remains usable for the
// functions that analyzed cleanly.
func AnalyzeProgram(funcs []*ir.Func, config EngineConfig) (*Engine, error) {
	e := NewEngine(config)
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		return e, err
	}
	return e, nil
}

// Add registers functions with the engine. Registration is cheap — no
// analysis runs until Precompute or the first query. Re-adding a
// registered function is a no-op. Shards are assigned round-robin in
// registration order, so a fixed registration sequence gets a fixed
// (and balanced) shard layout at every shard count.
func (e *Engine) Add(funcs ...*ir.Func) {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	for _, f := range funcs {
		if _, ok := e.index.Load(f); ok {
			continue
		}
		h := &handle{f: f, shard: e.shards[len(e.funcs)%len(e.shards)]}
		e.funcs = append(e.funcs, f)
		e.index.Store(f, h)
	}
}

// lookup resolves a function to its handle without taking any lock.
func (e *Engine) lookup(f *ir.Func) *handle {
	v, ok := e.index.Load(f)
	if !ok {
		return nil
	}
	return v.(*handle)
}

// Funcs returns the registered functions in registration order.
func (e *Engine) Funcs() []*ir.Func {
	e.regMu.Lock()
	defer e.regMu.Unlock()
	out := make([]*ir.Func, len(e.funcs))
	copy(out, e.funcs)
	return out
}

// Precompute analyzes every registered function that is not already
// resident, spreading the work over the worker pool. The result is
// deterministic regardless of parallelism: each function's analysis
// depends only on that function, and the returned error is the first
// failure in registration order (nil if all succeed). The one
// scheduling-dependent artifact is which analyses remain resident when
// MaxCached is smaller than the program — LRU order follows completion
// order — but evicted analyses rebuild on demand to identical answers.
func (e *Engine) Precompute() error {
	return e.PrecomputeContext(context.Background())
}

// PrecomputeContext is Precompute bounded by a context: when ctx is
// cancelled or its deadline passes, the workers stop claiming functions,
// in-flight builds are detached (they complete and publish on their own —
// see LivenessContext), and the call returns ctx.Err() promptly. The
// engine remains fully usable afterwards: functions that were analyzed
// stay resident, the rest build on demand.
func (e *Engine) PrecomputeContext(ctx context.Context) error {
	funcs := e.Funcs()

	// With a rebuild pool and a snapshot tier, fan warm-start snapshot
	// loads across the pool's workers first: functions whose snapshots
	// validate are published before (or while) the precompute workers
	// below reach them, and a worker arriving mid-prefetch shares the
	// in-flight load through the usual single-flight machinery instead of
	// duplicating it. Functions that miss are built below as always,
	// skipping the store probe the prefetch already paid.
	e.prefetchFuncs(funcs)

	workers := e.config.workers()
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				_, errs[i] = e.LivenessContext(ctx, funcs[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fastliveness: engine precompute %s: %w", funcs[i].Name, err)
		}
	}
	return nil
}

// Liveness returns the analysis for a registered function, building it on
// demand (and transparently rebuilding after eviction or after an edit
// made the resident analysis stale for the configured backend — see the
// Engine invalidation contract). Concurrent calls for the same function
// share one build; a build the rebuild pool already has in flight is
// likewise shared, never duplicated. The returned Liveness stays valid
// even if the engine later evicts it; as with Analyze, its query methods
// reuse a scratch buffer, so use NewQuerier (or the engine's batch
// methods) for concurrent querying.
//
// Errors wrap the package sentinels: ErrUnknownFunc for a function never
// registered with Add, ErrEngineClosed after Shutdown, and ErrQuarantined
// (carrying a *BuildPanicError with the captured stack) for a function
// whose build panicked and is quarantined until its next edit.
func (e *Engine) Liveness(f *ir.Func) (*Liveness, error) {
	return e.LivenessContext(context.Background(), f)
}

// LivenessContext is Liveness bounded by a context. Cancellation is
// honored at every wait: a caller parked on another goroutine's in-flight
// build wakes and returns ctx.Err() immediately, and a caller that is
// itself running the build detaches — the build continues on its own,
// completes, and publishes (or is discarded by the usual generation
// rules), so a cancelled caller never leaves a half-done result behind
// and never wastes the work for the next caller.
func (e *Engine) LivenessContext(ctx context.Context, f *ir.Func) (*Liveness, error) {
	h := e.lookup(f)
	if h == nil {
		return nil, errUnknownFunc(f.Name)
	}
	return e.liveness(ctx, h)
}

// liveness is LivenessContext after handle resolution.
func (e *Engine) liveness(ctx context.Context, h *handle) (*Liveness, error) {
	s := h.shard
	if ctx.Done() != nil {
		// Wake this goroutine's cond.Wait when the context fires; the loop
		// re-checks ctx.Err() on every iteration.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.closed.Load() {
			return nil, fmt.Errorf("fastliveness: %w", ErrEngineClosed)
		}
		switch {
		case h.err != nil:
			// A failure describes the function as of the epochs it was
			// recorded at; once the function is edited again, retry
			// instead of reporting a verdict about a program that no
			// longer exists.
			if h.errAt != backend.EpochsOf(h.f) {
				h.err = nil
				e.clearQuarantine(h)
				continue
			}
			var bp *BuildPanicError
			if errors.As(h.err, &bp) {
				// Quarantined: fail fast while the retry budget is spent
				// or the backoff has not elapsed; otherwise clear the
				// sticky error (keeping the panic count) and retry.
				if h.panics > e.config.buildRetries() || time.Now().Before(h.retryAt) {
					return nil, quarantineErr(h.f.Name, h.err)
				}
				h.err = nil
				continue
			}
			return nil, h.err
		case h.live != nil:
			if h.live.Stale() {
				// An edit invalidated the resident analysis for this
				// backend's invalidation class: drop it and rebuild.
				// In-flight builds from before the drop are discarded via
				// the generation counter, exactly like Invalidate.
				e.drop(h)
				s.rebuilds++
				continue
			}
			s.lru.MoveToFront(h.elem)
			return h.live, nil
		case !h.building:
			return e.startBuild(ctx, h)
		}
		s.cond.Wait()
	}
}

// drop removes h's cached analysis (if resident) and bumps its generation
// so in-flight builds from before the drop are discarded instead of
// cached. Called with h's shard mutex held. Used by staleness rebuilds,
// Invalidate, and LRU eviction — the generation bump on eviction is what
// keeps a function evicted while queued for an async rebuild from being
// resurrected into the cache (see rebuildOne in rebuild.go).
func (e *Engine) drop(h *handle) {
	h.gen++
	if h.elem != nil {
		h.shard.lru.Remove(h.elem)
		e.resident.Add(-1)
	}
	h.live, h.elem = nil, nil
}

// buildResult carries a detached build's outcome back to the caller that
// initiated it.
type buildResult struct {
	live *Liveness
	err  error
}

// startBuild analyzes h.f (which is neither resident nor building) and
// publishes the result. Called — and returns — with h's shard mutex held.
//
// Without a cancellable context the build runs synchronously on this
// goroutine with the shard unlocked, exactly as before. With one, the
// build runs on a detached goroutine that locks the shard and publishes
// on its own whether or not the initiating caller is still waiting:
// cancellation abandons the wait, never the build, so an in-flight build
// is always either fully published or discarded by the generation rules —
// never half-cached, and never wasted for the waiters it wakes.
func (e *Engine) startBuild(ctx context.Context, h *handle) (*Liveness, error) {
	s := h.shard
	h.building = true
	gen := h.gen
	if ctx.Done() == nil {
		s.mu.Unlock()
		live, err := e.runBuild(h)
		s.mu.Lock()
		return e.publishBuild(h, gen, live, err)
	}
	done := make(chan buildResult, 1)
	go func() {
		live, err := e.runBuild(h)
		s.mu.Lock()
		live, err = e.publishBuild(h, gen, live, err)
		s.mu.Unlock()
		done <- buildResult{live, err}
	}()
	s.mu.Unlock()
	var res buildResult
	select {
	case res = <-done:
	case <-ctx.Done():
		s.mu.Lock() // the caller's deferred unlock expects the lock held
		return nil, ctx.Err()
	}
	s.mu.Lock()
	return res.live, res.err
}

// runBuild executes the analysis for h outside any shard lock, converting
// a backend panic into a *BuildPanicError instead of letting it unwind
// into the caller (a query goroutine or a rebuild-pool worker) — this is
// the recover boundary of the engine's failure model. The IR walk runs
// under the function's read lock so it cannot race an Edit; the unlock is
// deferred after the recover, so it still runs when the analysis panics.
func (e *Engine) runBuild(h *handle) (live *Liveness, err error) {
	start := time.Now()
	e.tracer.BuildStart(h.f.Name)
	defer func() {
		if r := recover(); r != nil {
			live, err = nil, &BuildPanicError{Func: h.f.Name, Value: r, Stack: debug.Stack()}
		}
		d := time.Since(start)
		e.met.builds.Inc()
		e.met.buildNs.Observe(d.Nanoseconds())
		e.tracer.BuildEnd(h.f.Name, d, err)
	}()
	h.irMu.RLock()
	defer h.irMu.RUnlock()
	return e.analyze(h)
}

// publishBuild installs a finished build's outcome. Called with h's shard
// mutex held: wakes waiters, discards results whose generation was
// superseded mid-build, records failures (with quarantine accounting for
// panics), and caches successes. Returns the caller-facing outcome.
func (e *Engine) publishBuild(h *handle, gen int, live *Liveness, err error) (*Liveness, error) {
	s := h.shard
	h.building = false
	s.cond.Broadcast()
	if h.gen != gen {
		// Invalidated or evicted mid-build: the result describes a CFG
		// that may no longer exist. Hand it to this caller (whose view
		// predates the invalidation) but do not cache it.
		return live, callerErr(h, err)
	}
	if err != nil {
		h.live, h.err = nil, err
		e.recordFailure(h, err)
		return nil, callerErr(h, err)
	}
	h.live, h.err = live, nil
	e.clearQuarantine(h)
	h.elem = s.lru.PushFront(h)
	e.resident.Add(1)
	e.enforceCacheBound(s)
	return live, nil
}

// recordFailure notes a failed build under the shard mutex: the epochs
// the failure describes, plus quarantine pacing when it was a panic.
func (e *Engine) recordFailure(h *handle, err error) {
	h.errAt = backend.EpochsOf(h.f)
	var bp *BuildPanicError
	if !errors.As(err, &bp) {
		return
	}
	h.panics++
	if h.panics == 1 {
		e.met.quarantined.Add(1)
		e.tracer.QuarantineEnter(h.f.Name)
	}
	if h.backoff == nil {
		h.backoff = retry.NewBackoff(quarantineBackoffBase, quarantineBackoffCap, 0)
	}
	h.retryAt = time.Now().Add(h.backoff.Next())
}

// clearQuarantine resets h's panic-retry state after a successful build
// or an edit. Called with the shard mutex held.
func (e *Engine) clearQuarantine(h *handle) {
	if h.panics > 0 {
		e.met.quarantined.Add(-1)
		e.tracer.QuarantineClear(h.f.Name)
	}
	h.panics, h.retryAt = 0, time.Time{}
	if h.backoff != nil {
		h.backoff.Reset()
	}
}

// callerErr is the caller-facing form of a build error: panic-derived
// errors are wrapped so errors.Is(err, ErrQuarantined) holds from the
// very first failing call, not only for the fail-fast ones.
func callerErr(h *handle, err error) error {
	var bp *BuildPanicError
	if errors.As(err, &bp) {
		return quarantineErr(h.f.Name, err)
	}
	return err
}

// enforceCacheBound evicts from s's LRU tail while the global resident
// count exceeds MaxCached. Called with s's mutex held; only the local
// shard is touched, so enforcement never takes a second lock. Eviction
// goes through drop, so a victim's queued or in-flight rebuild is
// discarded rather than resurrecting it.
func (e *Engine) enforceCacheBound(s *shard) {
	max := e.config.MaxCached
	if max <= 0 {
		return
	}
	for e.resident.Load() > int64(max) && s.lru.Len() > 0 {
		e.drop(s.lru.Back().Value.(*handle))
	}
}

// Invalidate eagerly drops any cached analysis (and any recorded error)
// for f. Since the engine detects stale analyses from the function's edit
// epochs and rebuilds on its own, Invalidate is a now-trivial alias for
// "drop it immediately" — useful to release memory for a function that
// will not be queried again soon, never required for correctness.
// Analyses already handed out keep answering against the old program.
func (e *Engine) Invalidate(f *ir.Func) {
	h := e.lookup(f)
	if h == nil {
		return
	}
	s := h.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	h.err = nil
	e.drop(h)
}

// Resident reports how many per-function analyses are currently cached
// across all shards.
func (e *Engine) Resident() int {
	return int(e.resident.Load())
}

// Shards reports the engine's effective shard count (the configured value,
// or the default when the config left it zero).
func (e *Engine) Shards() int {
	return len(e.shards)
}

// Rebuilds reports how many re-analyses stale results have forced on the
// query path so far — first builds and refills after LRU eviction or
// explicit Invalidate do not count, and neither do rebuilds the
// background pool absorbed (those are BackgroundRebuilds). This is the
// measurable form of the paper's asymmetry: over an instruction-editing
// pipeline (destruction, the spill loop) a checker-backed engine reports
// 0 while set-producing backends pay one rebuild per edit-then-query;
// cmd/benchtables -table pipeline records exactly this per backend. The
// total is invariant under the shard count.
//
// Rebuilds always equals Metrics().Rebuilds — it is the single-field
// accessor kept (like BackgroundRebuilds, QueuedRebuilds and
// SnapshotStats) for callers that want one number without the full
// consolidated snapshot; Metrics() delegates here.
func (e *Engine) Rebuilds() int {
	total := 0
	for _, s := range e.shards {
		s.mu.Lock()
		total += s.rebuilds
		s.mu.Unlock()
	}
	return total
}

// Queries reports how many individual liveness questions the engine has
// answered (batch entries plus Oracle queries) — Metrics().Queries.
func (e *Engine) Queries() int64 { return e.met.queries.Load() }

// BackendStats summarizes the resident analyses served by one backend.
type BackendStats struct {
	// Funcs counts resident analyses this backend produced.
	Funcs int
	// MemoryBytes sums their precomputed-set footprints.
	MemoryBytes int
}

// Stats groups the resident analyses by the backend that produced them.
// With Config.Backend "auto" the keys are the engines the selector
// actually picked per function, which is how callers observe the
// selection mix of a whole program.
func (e *Engine) Stats() map[string]BackendStats {
	out := make(map[string]BackendStats)
	for _, s := range e.shards {
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			live := el.Value.(*handle).live
			st := out[live.Backend()]
			st.Funcs++
			st.MemoryBytes += live.MemoryBytes()
			out[live.Backend()] = st
		}
		s.mu.Unlock()
	}
	return out
}

// MemoryBytes reports the total footprint of the resident precomputed
// sets (§6.1, summed over all shards).
func (e *Engine) MemoryBytes() int {
	total := 0
	for _, s := range e.shards {
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			total += el.Value.(*handle).live.MemoryBytes()
		}
		s.mu.Unlock()
	}
	return total
}

// batchParallelThreshold is the batch size below which sharding the batch
// over goroutines costs more than it saves.
const batchParallelThreshold = 256

// BatchIsLiveIn answers queries[i] = IsLiveIn(V, B) for every query, all
// against function f. One analysis lookup and one query handle serve the
// whole batch (large batches are sharded over the worker pool), so the
// per-query overhead of the one-at-a-time API is paid once. Answers are
// positionally identical to calling Liveness.IsLiveIn per query. The
// batch runs under the function's read lock and re-fetches if an Edit
// lands between the analysis lookup and the batch execution, so it never
// answers from an analysis an edit has invalidated.
func (e *Engine) BatchIsLiveIn(f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(context.Background(), f, queries, (*Querier).IsLiveIn)
}

// BatchIsLiveInContext is BatchIsLiveIn bounded by a context: the
// analysis fetch (and any rebuild it triggers) honors cancellation per
// LivenessContext; the query execution itself is not interrupted once an
// analysis is held.
func (e *Engine) BatchIsLiveInContext(ctx context.Context, f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(ctx, f, queries, (*Querier).IsLiveIn)
}

// BatchIsLiveOut is BatchIsLiveIn for live-out queries.
func (e *Engine) BatchIsLiveOut(f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(context.Background(), f, queries, (*Querier).IsLiveOut)
}

// BatchIsLiveOutContext is BatchIsLiveInContext for live-out queries.
func (e *Engine) BatchIsLiveOutContext(ctx context.Context, f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(ctx, f, queries, (*Querier).IsLiveOut)
}

func (e *Engine) batch(ctx context.Context, f *ir.Func, queries []Query, ask func(*Querier, *ir.Value, *ir.Block) bool) ([]bool, error) {
	h := e.lookup(f)
	if h == nil {
		return nil, errUnknownFunc(f.Name)
	}
	for {
		live, err := e.liveness(ctx, h)
		if err != nil {
			return nil, err
		}
		// Execute under the function's read lock: Edits are excluded for
		// the duration of the batch. If an edit slipped in between the
		// lookup above and the lock, the analysis reads as stale here and
		// the batch re-fetches — a fresh result or a transparent
		// on-demand build, never a stale answer.
		h.irMu.RLock()
		if live.Stale() {
			h.irMu.RUnlock()
			continue
		}
		start := time.Now()
		out := e.runBatch(live, queries, ask)
		h.irMu.RUnlock()
		d := time.Since(start)
		e.met.batches.Inc()
		e.met.queries.Add(int64(len(queries)))
		e.met.batchNs.Observe(d.Nanoseconds())
		e.tracer.QueryBatch(f.Name, len(queries), d)
		return out, nil
	}
}

// runBatch executes the queries against one (fresh) analysis, sharding
// large batches over the worker pool. The caller holds the function's
// read lock; the fan-out goroutines run under it too — RLock is shared,
// so they need no locks of their own.
func (e *Engine) runBatch(live *Liveness, queries []Query, ask func(*Querier, *ir.Value, *ir.Block) bool) []bool {
	out := make([]bool, len(queries))
	workers := e.config.workers()
	if len(queries) < batchParallelThreshold || workers < 2 {
		qr := live.NewQuerier()
		for i, q := range queries {
			out[i] = ask(qr, q.V, q.B)
		}
		return out
	}
	// Shard into contiguous ranges, one querier per shard; each shard
	// writes disjoint indices, so the result is order-independent.
	if workers > len(queries) {
		workers = len(queries)
	}
	per := (len(queries) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(queries); lo += per {
		hi := lo + per
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			qr := live.NewQuerier()
			for i := lo; i < hi; i++ {
				out[i] = ask(qr, queries[i].V, queries[i].B)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Oracle is an auto-refreshing query handle bound to one registered
// function: every query first checks the epochs its current analysis was
// computed at (a lock-free atomic comparison) and transparently
// re-fetches through the engine (which rebuilds stale analyses) when an
// edit invalidated it. It satisfies the liveness-oracle shapes of
// internal/regalloc and internal/destruct, so editing passes run against
// any backend with no manual refresh hooks — rebuild policy lives in the
// epochs, not at the call sites.
//
// An Oracle owns its Querier (scratch buffers and, with Config.CacheUses,
// a use-set cache); like the function it queries, it is single-goroutine.
// Create one per goroutine. Each query executes under the function's
// read lock, so oracle queries are safe against concurrent Engine.Edit
// calls on the same function.
type Oracle struct {
	e    *Engine
	h    *handle
	f    *ir.Func
	live *Liveness
	qr   *Querier
}

// Oracle returns an auto-refreshing query handle for a registered
// function, analyzing it first if needed.
func (e *Engine) Oracle(f *ir.Func) (*Oracle, error) {
	return e.OracleContext(context.Background(), f)
}

// OracleContext is Oracle bounded by a context: the initial analysis
// honors cancellation per LivenessContext. The returned Oracle is not
// bound to ctx — its query methods re-fetch with a background context,
// since they have no error channel to report cancellation through.
func (e *Engine) OracleContext(ctx context.Context, f *ir.Func) (*Oracle, error) {
	h := e.lookup(f)
	if h == nil {
		return nil, errUnknownFunc(f.Name)
	}
	live, err := e.liveness(ctx, h)
	if err != nil {
		return nil, err
	}
	return &Oracle{e: e, h: h, f: f, live: live, qr: live.NewQuerier()}, nil
}

// ensure re-fetches the analysis when the held one went stale. Re-analysis
// can fail — an edit broke the function structurally, or a CFG edit made
// it irreducible under the loops backend — and the query methods have no
// error channel, so the oracle fails closed with a panic rather than
// answering from a dead analysis. Callers that edit CFGs under a
// reducibility-limited backend must re-request oracles through
// Engine.Oracle, where the error is returnable.
//
// ensure runs without the function's read lock held (taking it here
// would deadlock against the build path, which read-locks around its own
// IR walk); the query wrapper re-checks staleness under the lock.
func (o *Oracle) ensure() *Querier {
	if o.live.Stale() {
		live, err := o.e.liveness(context.Background(), o.h)
		if err != nil {
			panic(fmt.Sprintf("fastliveness: oracle re-analysis of %s after edit: %v", o.f.Name, err))
		}
		o.live = live
		o.qr = live.NewQuerier()
	}
	return o.qr
}

// query answers one question under the function's read lock, re-fetching
// until the analysis it holds is fresh at the moment the lock is held.
// The common case (no intervening edit) is one lock-free staleness check
// plus one uncontended RLock.
func (o *Oracle) query(ask func(*Querier) bool) bool {
	for {
		qr := o.ensure()
		o.h.irMu.RLock()
		if !o.live.Stale() {
			v := ask(qr)
			o.h.irMu.RUnlock()
			// One atomic add is the entire per-query instrumentation cost:
			// per-query timing would double the hot path's latency for a
			// distribution the batch/build histograms and the bench latency
			// table already capture.
			o.e.met.queries.Inc()
			return v
		}
		// An edit landed between ensure and the lock: retry.
		o.h.irMu.RUnlock()
	}
}

// IsLiveIn answers against the current program, re-analyzing first if an
// edit made the held analysis stale.
func (o *Oracle) IsLiveIn(v *ir.Value, b *ir.Block) bool {
	return o.query(func(qr *Querier) bool { return qr.IsLiveIn(v, b) })
}

// IsLiveOut is IsLiveIn for live-out queries.
func (o *Oracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	return o.query(func(qr *Querier) bool { return qr.IsLiveOut(v, b) })
}

// Interfere is the Budimlić interference test against the current program.
func (o *Oracle) Interfere(x, y *ir.Value) bool {
	return o.query(func(qr *Querier) bool { return qr.Interfere(x, y) })
}

// Liveness returns the underlying analysis handle, refreshed if stale.
func (o *Oracle) Liveness() *Liveness {
	o.ensure()
	return o.live
}
