// Program-level engine: many functions, one analysis service.
//
// The per-function checker of this package precomputes R/T sets in
// near-linear time, but a whole program has thousands of functions and the
// precomputations are completely independent — the natural axis of
// parallelism for a compiler server or JIT that must analyze a module, not
// a procedure. Engine owns that axis: it registers many ir.Funcs,
// precomputes their analyses across a bounded worker pool, keeps the
// results behind a thread-safe LRU-cached handle, and batches queries so
// callers amortize per-query overhead.

package fastliveness

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fastliveness/internal/ir"
)

// EngineConfig tunes a program-level Engine. The zero value analyzes with
// the paper's per-function configuration, uses one worker per CPU, and
// caches every analysis.
type EngineConfig struct {
	// Config is the per-function analysis configuration.
	Config Config
	// Parallelism bounds the precompute worker pool and the fan-out of
	// large batched queries. 0 means GOMAXPROCS.
	Parallelism int
	// MaxCached bounds how many per-function analyses stay resident; the
	// least recently used are evicted and transparently rebuilt on the
	// next request. 0 means unlimited.
	MaxCached int
}

func (c EngineConfig) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Query is one liveness question: is V live (in or out, per the method
// called) at block B. V and B must belong to the function the batch is
// issued against.
type Query struct {
	V *ir.Value
	B *ir.Block
}

// handle is the engine's per-function cache slot. All fields are guarded
// by the engine mutex; the Analyze call itself runs unlocked with
// `building` set so concurrent requesters wait instead of duplicating it.
type handle struct {
	f        *ir.Func
	live     *Liveness
	err      error // sticky Analyze failure
	building bool
	gen      int // bumped by Invalidate; in-flight builds from older gens are discarded
	elem     *list.Element
}

// Engine analyzes a whole program: a set of functions registered with Add
// (or all at once via AnalyzeProgram), precomputed in parallel by
// Precompute, and queried through per-function Liveness handles or the
// batched query methods. All methods are safe for concurrent use.
//
// The per-function contract carries over, and depends on the configured
// backend: with the default checker a cached analysis stays valid under
// any edit that leaves that function's CFG alone and must be dropped with
// Invalidate only when blocks or edges change; with a set-producing
// backend ("dataflow", "lao", "pervar", "loops", or "auto" when it picks
// one) the cached sets describe the program as of analysis time, so any
// edit to the function — even instruction-only — requires Invalidate.
// Config.CacheUses sits in between: the checker's precomputation itself
// still survives instruction edits, but the cached per-variable use-sets
// describe the def-use chains as of first query, so after editing the uses
// of an already-queried value either Invalidate the function or call
// ResetSets on its Liveness handle.
type Engine struct {
	config EngineConfig

	mu    sync.Mutex
	cond  *sync.Cond
	funcs []*ir.Func // registration order: the deterministic program order
	index map[*ir.Func]*handle
	lru   *list.List // resident handles, most recent first
}

// NewEngine returns an empty engine; register functions with Add.
func NewEngine(config EngineConfig) *Engine {
	e := &Engine{
		config: config,
		index:  make(map[*ir.Func]*handle),
		lru:    list.New(),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// AnalyzeProgram builds an engine over funcs and precomputes every
// analysis across the configured worker pool. It fails with the first
// error in registration order; the engine remains usable for the
// functions that analyzed cleanly.
func AnalyzeProgram(funcs []*ir.Func, config EngineConfig) (*Engine, error) {
	e := NewEngine(config)
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		return e, err
	}
	return e, nil
}

// Add registers functions with the engine. Registration is cheap — no
// analysis runs until Precompute or the first query. Re-adding a
// registered function is a no-op.
func (e *Engine) Add(funcs ...*ir.Func) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, f := range funcs {
		if _, ok := e.index[f]; ok {
			continue
		}
		e.funcs = append(e.funcs, f)
		e.index[f] = &handle{f: f}
	}
}

// Funcs returns the registered functions in registration order.
func (e *Engine) Funcs() []*ir.Func {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*ir.Func, len(e.funcs))
	copy(out, e.funcs)
	return out
}

// Precompute analyzes every registered function that is not already
// resident, spreading the work over the worker pool. The result is
// deterministic regardless of parallelism: each function's analysis
// depends only on that function, and the returned error is the first
// failure in registration order (nil if all succeed). The one
// scheduling-dependent artifact is which analyses remain resident when
// MaxCached is smaller than the program — LRU order follows completion
// order — but evicted analyses rebuild on demand to identical answers.
func (e *Engine) Precompute() error {
	e.mu.Lock()
	funcs := make([]*ir.Func, len(e.funcs))
	copy(funcs, e.funcs)
	e.mu.Unlock()

	workers := e.config.workers()
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				_, errs[i] = e.Liveness(funcs[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fastliveness: engine precompute %s: %w", funcs[i].Name, err)
		}
	}
	return nil
}

// Liveness returns the analysis for a registered function, building it on
// demand (and transparently rebuilding after eviction). Concurrent calls
// for the same function share one build. The returned Liveness stays
// valid even if the engine later evicts it; as with Analyze, its query
// methods reuse a scratch buffer, so use NewQuerier (or the engine's batch
// methods) for concurrent querying.
func (e *Engine) Liveness(f *ir.Func) (*Liveness, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.index[f]
	if !ok {
		return nil, fmt.Errorf("fastliveness: function %s is not registered with the engine", f.Name)
	}
	for {
		switch {
		case h.err != nil:
			return nil, h.err
		case h.live != nil:
			e.lru.MoveToFront(h.elem)
			return h.live, nil
		case !h.building:
			return e.build(h)
		}
		e.cond.Wait()
	}
}

// build analyzes h.f with the engine unlocked, then publishes the result.
// Called (and returns) with e.mu held.
func (e *Engine) build(h *handle) (*Liveness, error) {
	h.building = true
	gen := h.gen
	e.mu.Unlock()
	live, err := Analyze(h.f, e.config.Config)
	e.mu.Lock()
	h.building = false
	e.cond.Broadcast()
	if h.gen != gen {
		// Invalidated mid-build: the result describes a CFG that may no
		// longer exist. Hand it to this caller (whose view predates the
		// invalidation) but do not cache it.
		return live, err
	}
	h.live, h.err = live, err
	if err != nil {
		return nil, err
	}
	h.elem = e.lru.PushFront(h)
	for e.config.MaxCached > 0 && e.lru.Len() > e.config.MaxCached {
		old := e.lru.Remove(e.lru.Back()).(*handle)
		old.live, old.elem = nil, nil
	}
	return live, nil
}

// Invalidate drops any cached analysis (and any sticky error) for f: after
// its CFG changed, or — when the configured backend materializes sets —
// after any edit to f at all (see the Engine invalidation contract). The
// next request re-analyzes. Analyses already handed out keep answering
// against the old program.
func (e *Engine) Invalidate(f *ir.Func) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.index[f]
	if !ok {
		return
	}
	h.gen++
	h.err = nil
	if h.elem != nil {
		e.lru.Remove(h.elem)
	}
	h.live, h.elem = nil, nil
}

// Resident reports how many per-function analyses are currently cached.
func (e *Engine) Resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lru.Len()
}

// BackendStats summarizes the resident analyses served by one backend.
type BackendStats struct {
	// Funcs counts resident analyses this backend produced.
	Funcs int
	// MemoryBytes sums their precomputed-set footprints.
	MemoryBytes int
}

// Stats groups the resident analyses by the backend that produced them.
// With Config.Backend "auto" the keys are the engines the selector
// actually picked per function, which is how callers observe the
// selection mix of a whole program.
func (e *Engine) Stats() map[string]BackendStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]BackendStats)
	for el := e.lru.Front(); el != nil; el = el.Next() {
		live := el.Value.(*handle).live
		s := out[live.Backend()]
		s.Funcs++
		s.MemoryBytes += live.MemoryBytes()
		out[live.Backend()] = s
	}
	return out
}

// MemoryBytes reports the total footprint of the resident precomputed
// sets (§6.1, summed over the cache).
func (e *Engine) MemoryBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for el := e.lru.Front(); el != nil; el = el.Next() {
		total += el.Value.(*handle).live.MemoryBytes()
	}
	return total
}

// batchParallelThreshold is the batch size below which sharding the batch
// over goroutines costs more than it saves.
const batchParallelThreshold = 256

// BatchIsLiveIn answers queries[i] = IsLiveIn(V, B) for every query, all
// against function f. One analysis lookup and one query handle serve the
// whole batch (large batches are sharded over the worker pool), so the
// per-query overhead of the one-at-a-time API is paid once. Answers are
// positionally identical to calling Liveness.IsLiveIn per query.
func (e *Engine) BatchIsLiveIn(f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(f, queries, (*Querier).IsLiveIn)
}

// BatchIsLiveOut is BatchIsLiveIn for live-out queries.
func (e *Engine) BatchIsLiveOut(f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(f, queries, (*Querier).IsLiveOut)
}

func (e *Engine) batch(f *ir.Func, queries []Query, ask func(*Querier, *ir.Value, *ir.Block) bool) ([]bool, error) {
	live, err := e.Liveness(f)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(queries))
	workers := e.config.workers()
	if len(queries) < batchParallelThreshold || workers < 2 {
		qr := live.NewQuerier()
		for i, q := range queries {
			out[i] = ask(qr, q.V, q.B)
		}
		return out, nil
	}
	// Shard into contiguous ranges, one querier per shard; each shard
	// writes disjoint indices, so the result is order-independent.
	if workers > len(queries) {
		workers = len(queries)
	}
	per := (len(queries) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(queries); lo += per {
		hi := lo + per
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			qr := live.NewQuerier()
			for i := lo; i < hi; i++ {
				out[i] = ask(qr, queries[i].V, queries[i].B)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
