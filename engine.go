// Program-level engine: many functions, one analysis service.
//
// The per-function checker of this package precomputes R/T sets in
// near-linear time, but a whole program has thousands of functions and the
// precomputations are completely independent — the natural axis of
// parallelism for a compiler server or JIT that must analyze a module, not
// a procedure. Engine owns that axis: it registers many ir.Funcs,
// precomputes their analyses across a bounded worker pool, keeps the
// results behind a thread-safe LRU-cached handle, and batches queries so
// callers amortize per-query overhead.

package fastliveness

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fastliveness/internal/backend"
	"fastliveness/internal/ir"
)

// EngineConfig tunes a program-level Engine. The zero value analyzes with
// the paper's per-function configuration, uses one worker per CPU, and
// caches every analysis.
type EngineConfig struct {
	// Config is the per-function analysis configuration.
	Config Config
	// Parallelism bounds the precompute worker pool and the fan-out of
	// large batched queries. 0 means GOMAXPROCS.
	Parallelism int
	// MaxCached bounds how many per-function analyses stay resident; the
	// least recently used are evicted and transparently rebuilt on the
	// next request. 0 means unlimited.
	MaxCached int
}

func (c EngineConfig) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Query is one liveness question: is V live (in or out, per the method
// called) at block B. V and B must belong to the function the batch is
// issued against.
type Query struct {
	V *ir.Value
	B *ir.Block
}

// handle is the engine's per-function cache slot. All fields are guarded
// by the engine mutex; the Analyze call itself runs unlocked with
// `building` set so concurrent requesters wait instead of duplicating it.
type handle struct {
	f        *ir.Func
	live     *Liveness
	err      error          // Analyze failure, held until the function is edited again
	errAt    backend.Epochs // epochs the failure was recorded at
	building bool
	gen      int // bumped by invalidation; in-flight builds from older gens are discarded
	elem     *list.Element
}

// Engine analyzes a whole program: a set of functions registered with Add
// (or all at once via AnalyzeProgram), precomputed in parallel by
// Precompute, and queried through per-function Liveness handles or the
// batched query methods. All methods are safe for concurrent use.
//
// Staleness is handled automatically: every cached analysis records the
// function's edit epochs (ir.Func.CFGEpoch/InstrEpoch), and Liveness
// re-analyzes exactly when the recorded epochs say an intervening edit
// invalidated the resident result for the configured backend's
// invalidation class. With the default checker that means rebuilds happen
// only after CFG edits — instruction-only edits (spill code, copy
// insertion, φ elimination) are served by the existing precomputation, the
// paper's §4 property. With a set-producing backend ("dataflow", "lao",
// "pervar", "loops", or "auto" when it picks one) any edit triggers a
// rebuild on the next request. Rebuilds reports how many staleness-forced
// re-analyses have happened; Invalidate remains as an explicit eager drop
// but is no longer required for correctness.
//
// The one hazard left with the caller is handle lifetime: a *Liveness or
// Querier obtained before an edit keeps answering against the pre-edit
// program. Request handles through the engine (or use Oracle, which
// re-fetches on staleness) instead of holding them across edits.
type Engine struct {
	config EngineConfig

	mu       sync.Mutex
	cond     *sync.Cond
	funcs    []*ir.Func // registration order: the deterministic program order
	index    map[*ir.Func]*handle
	lru      *list.List // resident handles, most recent first
	rebuilds int        // staleness-forced re-analyses (not first builds or eviction refills)
}

// NewEngine returns an empty engine; register functions with Add.
func NewEngine(config EngineConfig) *Engine {
	e := &Engine{
		config: config,
		index:  make(map[*ir.Func]*handle),
		lru:    list.New(),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// AnalyzeProgram builds an engine over funcs and precomputes every
// analysis across the configured worker pool. It fails with the first
// error in registration order; the engine remains usable for the
// functions that analyzed cleanly.
func AnalyzeProgram(funcs []*ir.Func, config EngineConfig) (*Engine, error) {
	e := NewEngine(config)
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		return e, err
	}
	return e, nil
}

// Add registers functions with the engine. Registration is cheap — no
// analysis runs until Precompute or the first query. Re-adding a
// registered function is a no-op.
func (e *Engine) Add(funcs ...*ir.Func) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, f := range funcs {
		if _, ok := e.index[f]; ok {
			continue
		}
		e.funcs = append(e.funcs, f)
		e.index[f] = &handle{f: f}
	}
}

// Funcs returns the registered functions in registration order.
func (e *Engine) Funcs() []*ir.Func {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*ir.Func, len(e.funcs))
	copy(out, e.funcs)
	return out
}

// Precompute analyzes every registered function that is not already
// resident, spreading the work over the worker pool. The result is
// deterministic regardless of parallelism: each function's analysis
// depends only on that function, and the returned error is the first
// failure in registration order (nil if all succeed). The one
// scheduling-dependent artifact is which analyses remain resident when
// MaxCached is smaller than the program — LRU order follows completion
// order — but evicted analyses rebuild on demand to identical answers.
func (e *Engine) Precompute() error {
	e.mu.Lock()
	funcs := make([]*ir.Func, len(e.funcs))
	copy(funcs, e.funcs)
	e.mu.Unlock()

	workers := e.config.workers()
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				_, errs[i] = e.Liveness(funcs[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("fastliveness: engine precompute %s: %w", funcs[i].Name, err)
		}
	}
	return nil
}

// Liveness returns the analysis for a registered function, building it on
// demand (and transparently rebuilding after eviction or after an edit
// made the resident analysis stale for the configured backend — see the
// Engine invalidation contract). Concurrent calls for the same function
// share one build. The returned Liveness stays valid even if the engine
// later evicts it; as with Analyze, its query methods reuse a scratch
// buffer, so use NewQuerier (or the engine's batch methods) for concurrent
// querying.
func (e *Engine) Liveness(f *ir.Func) (*Liveness, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.index[f]
	if !ok {
		return nil, fmt.Errorf("fastliveness: function %s is not registered with the engine", f.Name)
	}
	for {
		switch {
		case h.err != nil:
			// A failure describes the function as of the epochs it was
			// recorded at; once the function is edited again, retry
			// instead of reporting a verdict about a program that no
			// longer exists.
			if h.errAt != backend.EpochsOf(f) {
				h.err = nil
				continue
			}
			return nil, h.err
		case h.live != nil:
			if h.live.Stale() {
				// An edit invalidated the resident analysis for this
				// backend's invalidation class: drop it and rebuild.
				// In-flight builds from before the drop are discarded via
				// the generation counter, exactly like Invalidate.
				h.gen++
				if h.elem != nil {
					e.lru.Remove(h.elem)
				}
				h.live, h.elem = nil, nil
				e.rebuilds++
				continue
			}
			e.lru.MoveToFront(h.elem)
			return h.live, nil
		case !h.building:
			return e.build(h)
		}
		e.cond.Wait()
	}
}

// build analyzes h.f with the engine unlocked, then publishes the result.
// Called (and returns) with e.mu held.
func (e *Engine) build(h *handle) (*Liveness, error) {
	h.building = true
	gen := h.gen
	e.mu.Unlock()
	live, err := Analyze(h.f, e.config.Config)
	e.mu.Lock()
	h.building = false
	e.cond.Broadcast()
	if h.gen != gen {
		// Invalidated mid-build: the result describes a CFG that may no
		// longer exist. Hand it to this caller (whose view predates the
		// invalidation) but do not cache it.
		return live, err
	}
	h.live, h.err = live, err
	if err != nil {
		h.errAt = backend.EpochsOf(h.f)
		return nil, err
	}
	h.elem = e.lru.PushFront(h)
	for e.config.MaxCached > 0 && e.lru.Len() > e.config.MaxCached {
		old := e.lru.Remove(e.lru.Back()).(*handle)
		old.live, old.elem = nil, nil
	}
	return live, nil
}

// Invalidate eagerly drops any cached analysis (and any recorded error)
// for f. Since the engine detects stale analyses from the function's edit
// epochs and rebuilds on its own, Invalidate is a now-trivial alias for
// "drop it immediately" — useful to release memory for a function that
// will not be queried again soon, never required for correctness.
// Analyses already handed out keep answering against the old program.
func (e *Engine) Invalidate(f *ir.Func) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.index[f]
	if !ok {
		return
	}
	h.gen++
	h.err = nil
	if h.elem != nil {
		e.lru.Remove(h.elem)
	}
	h.live, h.elem = nil, nil
}

// Resident reports how many per-function analyses are currently cached.
func (e *Engine) Resident() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lru.Len()
}

// Rebuilds reports how many re-analyses stale results have forced so far —
// first builds and refills after LRU eviction or explicit Invalidate do
// not count. This is the measurable form of the paper's asymmetry: over an
// instruction-editing pipeline (destruction, the spill loop) a
// checker-backed engine reports 0 while set-producing backends pay one
// rebuild per edit-then-query; cmd/benchtables -table pipeline records
// exactly this per backend.
func (e *Engine) Rebuilds() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuilds
}

// BackendStats summarizes the resident analyses served by one backend.
type BackendStats struct {
	// Funcs counts resident analyses this backend produced.
	Funcs int
	// MemoryBytes sums their precomputed-set footprints.
	MemoryBytes int
}

// Stats groups the resident analyses by the backend that produced them.
// With Config.Backend "auto" the keys are the engines the selector
// actually picked per function, which is how callers observe the
// selection mix of a whole program.
func (e *Engine) Stats() map[string]BackendStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]BackendStats)
	for el := e.lru.Front(); el != nil; el = el.Next() {
		live := el.Value.(*handle).live
		s := out[live.Backend()]
		s.Funcs++
		s.MemoryBytes += live.MemoryBytes()
		out[live.Backend()] = s
	}
	return out
}

// MemoryBytes reports the total footprint of the resident precomputed
// sets (§6.1, summed over the cache).
func (e *Engine) MemoryBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for el := e.lru.Front(); el != nil; el = el.Next() {
		total += el.Value.(*handle).live.MemoryBytes()
	}
	return total
}

// batchParallelThreshold is the batch size below which sharding the batch
// over goroutines costs more than it saves.
const batchParallelThreshold = 256

// BatchIsLiveIn answers queries[i] = IsLiveIn(V, B) for every query, all
// against function f. One analysis lookup and one query handle serve the
// whole batch (large batches are sharded over the worker pool), so the
// per-query overhead of the one-at-a-time API is paid once. Answers are
// positionally identical to calling Liveness.IsLiveIn per query.
func (e *Engine) BatchIsLiveIn(f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(f, queries, (*Querier).IsLiveIn)
}

// BatchIsLiveOut is BatchIsLiveIn for live-out queries.
func (e *Engine) BatchIsLiveOut(f *ir.Func, queries []Query) ([]bool, error) {
	return e.batch(f, queries, (*Querier).IsLiveOut)
}

// Oracle is an auto-refreshing query handle bound to one registered
// function: every query first checks the epochs its current analysis was
// computed at and transparently re-fetches through the engine (which
// rebuilds stale analyses) when an edit invalidated it. It satisfies the
// liveness-oracle shapes of internal/regalloc and internal/destruct, so
// editing passes run against any backend with no manual refresh hooks —
// rebuild policy lives in the epochs, not at the call sites.
//
// An Oracle owns its Querier (scratch buffers and, with Config.CacheUses,
// a use-set cache); like the function it queries, it is single-goroutine.
// Create one per goroutine.
type Oracle struct {
	e    *Engine
	f    *ir.Func
	live *Liveness
	qr   *Querier
}

// Oracle returns an auto-refreshing query handle for a registered
// function, analyzing it first if needed.
func (e *Engine) Oracle(f *ir.Func) (*Oracle, error) {
	live, err := e.Liveness(f)
	if err != nil {
		return nil, err
	}
	return &Oracle{e: e, f: f, live: live, qr: live.NewQuerier()}, nil
}

// ensure re-fetches the analysis when the held one went stale. Re-analysis
// can fail — an edit broke the function structurally, or a CFG edit made
// it irreducible under the loops backend — and the query methods have no
// error channel, so the oracle fails closed with a panic rather than
// answering from a dead analysis. Callers that edit CFGs under a
// reducibility-limited backend must re-request oracles through
// Engine.Oracle, where the error is returnable.
func (o *Oracle) ensure() *Querier {
	if o.live.Stale() {
		live, err := o.e.Liveness(o.f)
		if err != nil {
			panic(fmt.Sprintf("fastliveness: oracle re-analysis of %s after edit: %v", o.f.Name, err))
		}
		o.live = live
		o.qr = live.NewQuerier()
	}
	return o.qr
}

// IsLiveIn answers against the current program, re-analyzing first if an
// edit made the held analysis stale.
func (o *Oracle) IsLiveIn(v *ir.Value, b *ir.Block) bool { return o.ensure().IsLiveIn(v, b) }

// IsLiveOut is IsLiveIn for live-out queries.
func (o *Oracle) IsLiveOut(v *ir.Value, b *ir.Block) bool { return o.ensure().IsLiveOut(v, b) }

// Interfere is the Budimlić interference test against the current program.
func (o *Oracle) Interfere(x, y *ir.Value) bool { return o.ensure().Interfere(x, y) }

// Liveness returns the underlying analysis handle, refreshed if stale.
func (o *Oracle) Liveness() *Liveness {
	o.ensure()
	return o.live
}

func (e *Engine) batch(f *ir.Func, queries []Query, ask func(*Querier, *ir.Value, *ir.Block) bool) ([]bool, error) {
	live, err := e.Liveness(f)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(queries))
	workers := e.config.workers()
	if len(queries) < batchParallelThreshold || workers < 2 {
		qr := live.NewQuerier()
		for i, q := range queries {
			out[i] = ask(qr, q.V, q.B)
		}
		return out, nil
	}
	// Shard into contiguous ranges, one querier per shard; each shard
	// writes disjoint indices, so the result is order-independent.
	if workers > len(queries) {
		workers = len(queries)
	}
	per := (len(queries) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(queries); lo += per {
		hi := lo + per
		if hi > len(queries) {
			hi = len(queries)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			qr := live.NewQuerier()
			for i := lo; i < hi; i++ {
				out[i] = ask(qr, queries[i].V, queries[i].B)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
