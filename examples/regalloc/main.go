// This example drives the SSA-based register allocator (internal/regalloc)
// with the paper's liveness checker as its oracle: measure register
// pressure, allocate at the chordal optimum, then shrink the budget and
// watch the allocator spill — all without ever re-analyzing, because spill
// code edits instructions, never the CFG, and the checker's precomputation
// depends only on the CFG.
package main

import (
	"fmt"
	"log"
	"sort"

	"fastliveness"
	"fastliveness/internal/ir"
	"fastliveness/internal/regalloc"
)

const program = `
func @poly(%x, %a, %b, %c) {
entry:
  %zero = const 0
  %acc0 = mul %a, %x
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %acc = phi [%acc0, entry], [%accn, body]
  %three = const 3
  %more = cmplt %i, %three
  if %more -> body, done
body:
  %t1 = mul %acc, %x
  %t2 = add %t1, %b
  %t3 = mul %t2, %x
  %accn = add %t3, %c
  %one = const 1
  %inext = add %i, %one
  br head
done:
  %r = add %acc, %a
  ret %r
}
`

func main() {
	f := ir.MustParse(program)
	ref := ir.Clone(f)
	live, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		log.Fatal(err)
	}

	p := regalloc.MeasurePressure(f, live)
	fmt.Printf("register pressure: max %d (in %s), %d oracle queries\n", p.Max, p.MaxBlock, p.Queries)
	for i, b := range f.Blocks {
		fmt.Printf("  %-6s pressure %d\n", b.String()+":", p.PerBlock[i])
	}

	// Spill-free at the chordal optimum: a dominance-order scan needs
	// exactly max-pressure registers on strict SSA.
	alloc, err := regalloc.Run(f, live, p.Max)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk=%d: %d registers used, %d spills, %d oracle queries\n",
		p.Max, alloc.NumRegs, alloc.Stats.Spills, alloc.Stats.Queries())
	printAssignment(f, alloc)
	if err := regalloc.VerifyAllocation(f, alloc); err != nil {
		log.Fatal(err)
	}

	// Now starve it. The spill loop edits the program (stores, reloads,
	// rematerialized constants) and rescans — the edits bump the
	// function's InstrEpoch, but the checker's CFG-only precomputation is
	// not invalidated by that epoch, so the same handle keeps answering:
	// the paper's headline property, now checkable via Stale().
	k := 3
	alloc, err = regalloc.Run(f, live, k)
	if err != nil {
		log.Fatal(err)
	}
	if live.Stale() {
		log.Fatal("checker analysis must survive instruction-only spill edits")
	}
	fmt.Printf("\nk=%d: %d registers used, %d spills (%d stores, %d reloads, %d remats), %d rounds\n",
		k, alloc.NumRegs, alloc.Stats.Spills,
		alloc.Stats.Stores, alloc.Stats.Reloads, alloc.Stats.Remats, alloc.Stats.Rounds)
	for _, v := range alloc.Spilled {
		fmt.Printf("  spilled %s\n", v)
	}
	if err := regalloc.VerifyAllocation(f, alloc); err != nil {
		log.Fatal(err)
	}
	// The rewrite is semantics-preserving: lower out of SSA and compare
	// against the original on random inputs.
	if err := regalloc.CrossCheck(ref, f, 16, 1<<16, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvalidity verified; semantics preserved through destruct+interp")
}

func printAssignment(f *ir.Func, alloc *regalloc.Allocation) {
	var vals []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vals = append(vals, v)
		}
	})
	sort.Slice(vals, func(i, j int) bool { return vals[i].ID < vals[j].ID })
	for _, v := range vals {
		fmt.Printf("  %-6s -> r%d\n", v, alloc.RegOf(v))
	}
}
