// Whole-program liveness: analyze a generated multi-function module with
// the concurrent engine, then serve batched and concurrent queries from
// the shared precomputation.
//
// The per-function checker precomputes R/T sets for one CFG; a compiler
// or JIT has thousands of CFGs, and their precomputations are independent.
// This example builds a 64-function program, precomputes it across a
// worker pool, and shows the three ways to query the result: a cached
// per-function handle, a batched query slice, and per-goroutine Queriers.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"fastliveness"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

func buildProgram(n int) []*ir.Func {
	funcs := make([]*ir.Func, n)
	for i := range funcs {
		c := gen.Default(int64(i)*271 + 9)
		c.TargetBlocks = 20 + (i*13)%50
		f := gen.Generate(fmt.Sprintf("fn%02d", i), c)
		ssa.Construct(f) // generated programs are slot-form; make them SSA
		funcs[i] = f
	}
	return funcs
}

func main() {
	funcs := buildProgram(64)
	blocks := 0
	for _, f := range funcs {
		blocks += len(f.Blocks)
	}
	fmt.Printf("program: %d functions, %d blocks, GOMAXPROCS=%d\n\n",
		len(funcs), blocks, runtime.GOMAXPROCS(0))

	// Precompute every function across a bounded worker pool. The result
	// is deterministic: parallelism only reorders the work, never the
	// answers.
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		start := time.Now()
		if _, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{
			Parallelism: workers,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("precompute with %d worker(s): %v\n", workers, time.Since(start))
	}

	engine, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{
		MaxCached: 16, // keep at most 16 analyses resident; evicted ones rebuild on demand
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncache: %d of %d analyses resident, %d bytes of precomputed sets\n",
		engine.Resident(), len(funcs), engine.MemoryBytes())

	// Batched queries: every (variable, block) pair of one function in a
	// single call, answered positionally.
	f := funcs[7]
	var queries []fastliveness.Query
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		for _, b := range f.Blocks {
			queries = append(queries, fastliveness.Query{V: v, B: b})
		}
	})
	liveIn, err := engine.BatchIsLiveIn(f, queries)
	if err != nil {
		log.Fatal(err)
	}
	hot := 0
	for _, ok := range liveIn {
		if ok {
			hot++
		}
	}
	fmt.Printf("\n%s: %d of %d (var, block) pairs are live-in\n", f.Name, hot, len(queries))

	// Per-goroutine Queriers share one precomputation for concurrent
	// serving; the engine's batch methods do this internally too.
	live, err := engine.Liveness(f)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan int, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			qr := live.NewQuerier()
			n := 0
			for i := w; i < len(queries); i += 4 {
				if qr.IsLiveIn(queries[i].V, queries[i].B) {
					n++
				}
			}
			done <- n
		}(w)
	}
	sum := 0
	for w := 0; w < 4; w++ {
		sum += <-done
	}
	fmt.Printf("4 concurrent queriers agree: %d live-in answers\n", sum)

	// A CFG edit invalidates exactly one function's analysis — and the
	// engine notices on its own: the edit bumps the function's CFGEpoch,
	// the next Liveness request sees the resident analysis is stale and
	// rebuilds it. No Invalidate call; the other 63 analyses stay warm.
	f.Blocks[0].SplitEdge(0)
	if _, err := engine.Liveness(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after one CFG edit: re-analyzed %s automatically (%d stale rebuild), %d analyses still resident\n",
		f.Name, engine.Rebuilds(), engine.Resident())
}
