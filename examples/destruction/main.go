// This example runs the evaluation pipeline of the paper's §6 on one
// generated procedure: build a program, convert to SSA, split critical
// edges, precompute the liveness checker once, and let Sreedhar-III-style
// SSA destruction drive it with interference queries. The interpreter
// confirms the transformation preserved the program's behaviour.
package main

import (
	"fmt"
	"log"

	"fastliveness"
	"fastliveness/internal/destruct"
	"fastliveness/internal/gen"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

// countingOracle adapts the checker as the destruction oracle and counts
// the queries, like the paper's instrumentation does.
type countingOracle struct {
	live    *fastliveness.Liveness
	queries int
}

func (o *countingOracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	o.queries++
	return o.live.IsLiveOut(v, b)
}

func main() {
	cfg := gen.Default(99)
	cfg.TargetBlocks = 45
	f := gen.Generate("example", cfg)
	ssa.Construct(f)
	reference := ir.Clone(f)

	// The one CFG change happens before analysis…
	split := destruct.Prepare(f)

	// …then one precomputation serves every query of the pass, no matter
	// how many copies the pass inserts along the way.
	live, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		log.Fatal(err)
	}
	oracle := &countingOracle{live: live}
	stats := destruct.Run(f, oracle, destruct.ModeCoalesce)

	phis := 0
	reference.Values(func(v *ir.Value) {
		if v.Op == ir.OpPhi {
			phis++
		}
	})
	fmt.Printf("procedure: %d blocks (%d critical edges split), %d φ-functions\n",
		len(f.Blocks), split, phis)
	fmt.Printf("destruction: %d φs eliminated, %d congruence classes,\n",
		stats.Phis, stats.Classes)
	fmt.Printf("             %d operands coalesced, %d copies inserted\n",
		stats.CoalescedArgs, stats.Copies)
	fmt.Printf("queries:     %d liveness queries over %d interference tests\n",
		oracle.queries, stats.InterferenceTests)

	// Semantic check: SSA before vs slots after.
	for _, args := range [][]int64{{0, 0, 0}, {1, -3, 9}, {42, 7, -1}} {
		want, err1 := interp.Run(reference, args, interp.Options{})
		got, err2 := interp.Run(f, args, interp.Options{})
		if err1 != nil || err2 != nil || want.Ret != got.Ret {
			log.Fatalf("semantics broken for %v: %v/%v, %d vs %d",
				args, err1, err2, want.Ret, got.Ret)
		}
		fmt.Printf("f(%v) = %d before and after destruction ✓\n", args, got.Ret)
	}
}
