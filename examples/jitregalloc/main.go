// This example sketches the paper's motivating client (§1): a JIT-style
// register allocator that needs interference information but cannot afford
// to recompute full live sets after every transformation. It builds an
// interference graph with Budimlić-style checks on top of the liveness
// checker and greedily colors it.
package main

import (
	"fmt"
	"log"
	"sort"

	"fastliveness"
	"fastliveness/internal/cfg"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
)

const program = `
func @dot3(%a0, %a1, %a2, %b0, %b1, %b2) {
entry:
  %m0 = mul %a0, %b0
  %m1 = mul %a1, %b1
  %m2 = mul %a2, %b2
  %s1 = add %m0, %m1
  %s2 = add %s1, %m2
  %neg = cmplt %s2, %m0
  if %neg -> adjust, done
adjust:
  %fix = sub %s2, %m0
  br done
done:
  %r = phi [%s2, entry], [%fix, adjust]
  ret %r
}
`

func main() {
	f := ir.MustParse(program)
	live, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Dominance for the SSA interference test: two values can only
	// interfere if one's definition dominates the other's.
	g, index := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	node := func(b *ir.Block) int { return index[b.ID] }

	pos := map[*ir.Value]int{}
	var vars []*ir.Value
	f.Values(func(v *ir.Value) {
		pos[v] = len(vars)
		if v.Op.HasResult() {
			vars = append(vars, v)
		}
	})

	interfere := func(x, y *ir.Value) bool {
		bx, by := node(x.Block), node(y.Block)
		switch {
		case tree.Dominates(bx, by):
		case tree.Dominates(by, bx):
			x, y = y, x
		default:
			return false
		}
		if x.Block == y.Block && pos[x] > pos[y] {
			x, y = y, x
		}
		if live.IsLiveOut(x, y.Block) {
			return true
		}
		for _, u := range x.Uses() {
			if u.User != nil && u.User.Op != ir.OpPhi &&
				u.User.Block == y.Block && pos[u.User] > pos[y] {
				return true
			}
		}
		return false
	}

	// Interference graph.
	adj := map[*ir.Value][]*ir.Value{}
	for i, x := range vars {
		for _, y := range vars[i+1:] {
			if interfere(x, y) {
				adj[x] = append(adj[x], y)
				adj[y] = append(adj[y], x)
			}
		}
	}

	// Greedy coloring in program order (dominance order ⇒ optimal on the
	// chordal interference graphs of strict SSA).
	color := map[*ir.Value]int{}
	maxColor := 0
	for _, v := range vars {
		used := map[int]bool{}
		for _, w := range adj[v] {
			if c, ok := color[w]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}

	sort.Slice(vars, func(i, j int) bool { return vars[i].ID < vars[j].ID })
	fmt.Printf("%d variables, %d registers needed\n\n", len(vars), maxColor)
	for _, v := range vars {
		fmt.Printf("  %-6s -> r%-2d (interferes with %d)\n", v, color[v], len(adj[v]))
	}
}
