// This example reconstructs Figure 3 of the paper and walks through its
// narrative queries: the CFG where x and y are live-in at node 10 but w is
// not, and where a naive reachability argument would wrongly conclude that
// x is live-in at node 4.
package main

import (
	"fmt"

	"fastliveness/internal/cfg"
	"fastliveness/internal/core"
)

func main() {
	// Paper node k is node k-1 here; the printout converts back.
	g := cfg.NewGraph(11)
	edge := func(s, t int) { g.AddEdge(s-1, t-1) }
	edge(1, 2)
	edge(2, 3)
	edge(3, 4)
	edge(3, 8)
	edge(4, 5)
	edge(5, 6)
	edge(6, 7)
	edge(6, 5) // back edge
	edge(7, 2) // back edge
	edge(8, 9)
	edge(9, 10)
	edge(10, 8) // back edge
	edge(9, 6)  // cross edge into the {5,6} loop: irreducible!
	edge(2, 11)

	c := core.New(g, core.Options{})
	paper := func(n int) int { return n + 1 }

	fmt.Println("Figure 3 of Boissinot et al., CGO 2008")
	fmt.Printf("reducible: %v (the cross edge 9→6 gives the {5,6} loop two entries)\n\n", c.Reducible())

	d := c.DFS()
	fmt.Print("back edges (E↑): ")
	for _, e := range d.BackEdges {
		fmt.Printf("(%d,%d) ", paper(e.S), paper(e.T))
	}
	fmt.Println()

	var t10 []int
	for _, v := range c.TSetNodes(10 - 1) {
		t10 = append(t10, paper(v))
	}
	fmt.Printf("T_10 = %v  — \"all back edge targets (8, 5, 2) are reachable from 10\"\n\n", t10)

	// Variables per the figure: w defined at 2 used at 4; x defined at 3
	// used at 9; y defined at 3 used at 5.
	node := func(k int) int { return k - 1 }
	type variable struct {
		name string
		def  int
		uses []int
	}
	vars := []variable{
		{"w", node(2), []int{node(4)}},
		{"x", node(3), []int{node(9)}},
		{"y", node(3), []int{node(5)}},
	}
	for _, v := range vars {
		fmt.Printf("is %s live-in at 10?  %v\n", v.name,
			c.IsLiveIn(v.def, v.uses, node(10)))
	}
	x := vars[1]
	fmt.Printf("is x live-in at 4?   %v  — 8 is reachable from 4 via 4,5,6,7,2,3,8,\n", c.IsLiveIn(x.def, x.uses, node(4)))
	fmt.Println("                            but that path re-enters def(x)'s subtree through 2,")
	fmt.Println("                            so Definition 5 keeps 8 out of T_4.")
	var t4 []int
	for _, v := range c.TSetNodes(node(4)) {
		t4 = append(t4, paper(v))
	}
	fmt.Printf("T_4 = %v\n", t4)
}
