// This example reproduces Figure 2 of the paper: a variable assigned on two
// branches becomes three SSA variables joined by a φ-function. Both SSA
// constructors of this repository are shown — the classic Cytron et al.
// algorithm (dominance frontiers + renaming) and the incremental Braun et
// al. builder.
package main

import (
	"fmt"
	"io"
	"os"

	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

const figure2 = `
func @figure2(%p, %y) {
b0:
  slots 1
  if %p -> b1, b2
b1:
  %c1 = const 1
  slotstore 0, %c1
  br b3
b2:
  %c2 = const 2
  slotstore 0, %c2
  br b3
b3:
  %x = slotload 0
  %z = add %x, %y
  ret %z
}
`

func main() {
	fmt.Println("== non-SSA program (Figure 2a: x assigned twice) ==")
	io.WriteString(os.Stdout, figure2)

	cytron := ir.MustParse(figure2)
	ssa.Construct(cytron)
	fmt.Println("\n== after Cytron et al. construction (Figure 2b: x3 = φ(x1, x2)) ==")
	fmt.Print(ir.Print(cytron))

	braun := ir.MustParse(figure2)
	ssa.ConstructBraun(braun)
	fmt.Println("\n== after Braun et al. construction ==")
	fmt.Print(ir.Print(braun))

	for name, f := range map[string]*ir.Func{"cytron": cytron, "braun": braun} {
		if err := ssa.VerifyStrict(f); err != nil {
			panic(name + ": " + err.Error())
		}
	}
	fmt.Println("\nboth outputs verified strict SSA ✓")
}
