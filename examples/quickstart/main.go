// Quickstart: parse a small SSA function, run the liveness checker, ask
// questions — and keep asking after editing the program, without
// re-analysis.
package main

import (
	"fmt"
	"log"

	"fastliveness"
	"fastliveness/internal/ir"
)

const program = `
func @clamp(%x, %lo, %hi) {
entry:
  %small = cmplt %x, %lo
  if %small -> retlo, checkhi
retlo:
  br join
checkhi:
  %big = cmplt %hi, %x
  if %big -> rethi, join
rethi:
  br join
join:
  %r = phi [%lo, retlo], [%x, checkhi], [%hi, rethi]
  ret %r
}
`

func main() {
	f := ir.MustParse(program)

	// One precomputation per CFG. It depends only on the block/edge
	// structure — never on the variables.
	live, err := fastliveness.Analyze(f, fastliveness.Config{})
	if err != nil {
		log.Fatal(err)
	}

	x := f.ValueByName("x")
	hi := f.ValueByName("hi")
	for _, blockName := range []string{"entry", "retlo", "checkhi", "join"} {
		b := f.BlockByName(blockName)
		fmt.Printf("%-8s live-in(x)=%-5v live-out(x)=%-5v live-in(hi)=%-5v\n",
			b, live.IsLiveIn(x, b), live.IsLiveOut(x, b), live.IsLiveIn(hi, b))
	}

	// The paper's selling point: program edits that keep the CFG intact do
	// not invalidate the analysis. Add a new computation in checkhi…
	checkhi := f.BlockByName("checkhi")
	doubled := checkhi.NewValue(ir.OpAdd, x, x)
	doubled.Name = "doubled"

	// …and query the brand-new variable with the same Liveness object.
	fmt.Printf("\nafter edit: live-out(doubled, checkhi) = %v (no re-analysis needed)\n",
		live.IsLiveOut(doubled, checkhi))
	fmt.Printf("enumerated live-out(entry): %v\n", live.LiveOut(f.BlockByName("entry")))
}
