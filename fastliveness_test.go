package fastliveness

import (
	"fmt"
	"math/rand"
	"testing"

	"fastliveness/internal/dataflow"
	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/lao"
	"fastliveness/internal/loops"
	"fastliveness/internal/pervar"
	"fastliveness/internal/ssa"
)

// engine is the common query surface all five liveness implementations
// share for the agreement tests.
type engine struct {
	name    string
	liveIn  func(*ir.Value, *ir.Block) bool
	liveOut func(*ir.Value, *ir.Block) bool
}

func buildEngines(t *testing.T, f *ir.Func) []engine {
	t.Helper()
	var engines []engine

	for _, cfgVariant := range []struct {
		name string
		c    Config
	}{
		{"checker/propagate", Config{}},
		{"checker/exact", Config{Strategy: StrategyExact}},
		{"checker/sortedT", Config{SortedT: true}},
		{"checker/no-opts", Config{NoSkipSubtrees: true, NoReducibleFastPath: true}},
	} {
		live, err := Analyze(f, cfgVariant.c)
		if err != nil {
			t.Fatalf("%s: %v", cfgVariant.name, err)
		}
		engines = append(engines, engine{cfgVariant.name, live.IsLiveIn, live.IsLiveOut})
	}

	df := dataflow.Analyze(f)
	engines = append(engines, engine{"dataflow", df.IsLiveIn, df.IsLiveOut})

	la := lao.Analyze(f, lao.Options{})
	engines = append(engines, engine{"lao", la.IsLiveIn, la.IsLiveOut})

	pv := pervar.Analyze(f)
	engines = append(engines, engine{"pervar", pv.IsLiveIn, pv.IsLiveOut})

	if lf, err := loops.Liveness(f); err == nil {
		engines = append(engines, engine{"loopforest", lf.IsLiveIn, lf.IsLiveOut})
	} else if err != loops.ErrIrreducible {
		t.Fatalf("loop liveness: %v", err)
	}
	return engines
}

// TestAllEnginesAgree is the repository's flagship invariant: the paper's
// checker (in four configurations), the bit-vector data-flow baseline, the
// LAO-style native baseline, the Appel–Palsberg per-variable engine and the
// loop-forest engine answer every (variable, block) liveness question
// identically, on hundreds of generated SSA programs including irreducible
// ones.
func TestAllEnginesAgree(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		c := gen.Default(int64(trial)*913 + 7)
		c.TargetBlocks = 4 + trial%80
		c.Irreducible = trial%6 == 5
		f := gen.Generate("t", c)
		ssa.Construct(f)
		if err := ssa.VerifyStrict(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		engines := buildEngines(t, f)
		ref := engines[len(engines)-1]
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			for _, b := range f.Blocks {
				wantIn := ref.liveIn(v, b)
				wantOut := ref.liveOut(v, b)
				for _, e := range engines {
					if got := e.liveIn(v, b); got != wantIn {
						t.Fatalf("trial %d: %s: IsLiveIn(%s, %s) = %v, %s says %v",
							trial, e.name, v, b, got, ref.name, wantIn)
					}
					if got := e.liveOut(v, b); got != wantOut {
						t.Fatalf("trial %d: %s: IsLiveOut(%s, %s) = %v, %s says %v",
							trial, e.name, v, b, got, ref.name, wantOut)
					}
				}
			}
		})
	}
}

// The headline robustness property, end to end: after Analyze, insert new
// instructions and variables (CFG untouched) and keep querying the same
// Liveness — answers must track a freshly computed data-flow analysis.
func TestPrecomputationSurvivesProgramEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c := gen.Default(4242)
	c.TargetBlocks = 40
	f := gen.Generate("t", c)
	ssa.Construct(f)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		df := dataflow.Analyze(f)
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			for _, b := range f.Blocks {
				if live.IsLiveIn(v, b) != df.IsLiveIn(v, b) {
					t.Fatalf("%s: IsLiveIn(%s, %s) stale", stage, v, b)
				}
				if live.IsLiveOut(v, b) != df.IsLiveOut(v, b) {
					t.Fatalf("%s: IsLiveOut(%s, %s) stale", stage, v, b)
				}
			}
		})
	}
	check("baseline")

	// Edit 1: add brand-new variables (copies of existing ones) in random
	// blocks.
	var results []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			results = append(results, v)
		}
	})
	for i := 0; i < 10; i++ {
		src := results[rng.Intn(len(results))]
		// Append to src's own block: trivially dominated by the source.
		src.Block.NewValue(ir.OpCopy, src)
	}
	if err := ssa.VerifyStrict(f); err != nil {
		t.Fatal(err)
	}
	check("after adding variables")

	// Edit 2: add new uses of existing variables (extending live ranges).
	for i := 0; i < 10; i++ {
		v := results[rng.Intn(len(results))]
		v.Block.NewValue(ir.OpNeg, v)
	}
	if err := ssa.VerifyStrict(f); err != nil {
		t.Fatal(err)
	}
	check("after adding uses")

	// Edit 3: remove some of the added uses again.
	var removable []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op == ir.OpNeg && v.NumUses() == 0 {
			removable = append(removable, v)
		}
	})
	for _, v := range removable {
		v.Block.RemoveValue(v)
	}
	check("after removing uses")
}

// Queriers share one precomputation but query safely in parallel.
func TestConcurrentQueriers(t *testing.T) {
	c := gen.Default(321)
	c.TargetBlocks = 50
	f := gen.Generate("t", c)
	ssa.Construct(f)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := dataflow.Analyze(f)
	var vars []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vars = append(vars, v)
		}
	})

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			qr := live.NewQuerier()
			for i := 0; i < 2000; i++ {
				v := vars[(i*7+w)%len(vars)]
				b := f.Blocks[(i*13+w)%len(f.Blocks)]
				if qr.IsLiveIn(v, b) != want.IsLiveIn(v, b) {
					errs <- fmt.Errorf("worker %d: IsLiveIn(%s,%s) wrong", w, v, b)
					return
				}
				if qr.IsLiveOut(v, b) != want.IsLiveOut(v, b) {
					errs <- fmt.Errorf("worker %d: IsLiveOut(%s,%s) wrong", w, v, b)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnalyzeRejectsUnreachable(t *testing.T) {
	f := ir.NewFunc("u")
	b0 := f.NewBlock(ir.BlockRet)
	island := f.NewBlock(ir.BlockRet)
	_ = b0
	_ = island
	if _, err := Analyze(f, Config{}); err == nil {
		t.Fatal("Analyze should reject unreachable blocks")
	}
}

func TestAnalyzeRejectsMalformed(t *testing.T) {
	f := ir.NewFunc("m")
	f.NewBlock(ir.BlockPlain) // plain block without successor
	if _, err := Analyze(f, Config{}); err == nil {
		t.Fatal("Analyze should run ir.Verify")
	}
}

func TestFacadeBasics(t *testing.T) {
	f := ir.MustParse(`
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !live.Reducible() {
		t.Fatal("loop CFG should be reducible")
	}
	if live.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
	if live.Func() != f {
		t.Fatal("Func accessor broken")
	}
	n := f.ValueByName("n")
	body := f.BlockByName("body")
	exit := f.BlockByName("exit")
	if !live.IsLiveIn(n, body) || live.IsLiveIn(n, exit) {
		t.Fatal("basic queries wrong")
	}
	// Set enumeration helpers agree with single queries.
	for _, b := range f.Blocks {
		for _, v := range live.LiveIn(b) {
			if !live.IsLiveIn(v, b) {
				t.Fatal("LiveIn enumeration inconsistent")
			}
		}
		for _, v := range live.LiveOut(b) {
			if !live.IsLiveOut(v, b) {
				t.Fatal("LiveOut enumeration inconsistent")
			}
		}
	}
	in := live.LiveIn(body)
	// n, one, i are live into body.
	if len(in) != 3 {
		t.Fatalf("live-in(body) = %v, want 3 values", in)
	}
}
