package fastliveness

// The arena PR's contract: steady-state IsLiveIn/IsLiveOut checker queries
// allocate nothing — not on the default fresh-read path, not on the
// CacheUses path once a value's use-set is built, not through a Querier.
// These tests pin that at 0 allocs/op with testing.AllocsPerRun so a
// regression (a scratch buffer that stops being reused, a row view that
// starts escaping) fails loudly instead of showing up as a benchmark
// drift.

import (
	"testing"

	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/regalloc"
	"fastliveness/internal/ssa"
)

func allocWorkload(t *testing.T) (*ir.Func, []*ir.Value) {
	t.Helper()
	c := gen.Default(987654)
	c.TargetBlocks = 40
	f := gen.Generate("zeroalloc", c)
	ssa.Construct(f)
	var vals []*ir.Value
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vals = append(vals, v)
		}
	})
	if len(vals) == 0 {
		t.Fatal("workload has no values")
	}
	return f, vals
}

func TestCheckerQueriesZeroAlloc(t *testing.T) {
	f, vals := allocWorkload(t)
	for _, tc := range []struct {
		name   string
		config Config
	}{
		{"default", Config{}},
		{"cacheUses", Config{CacheUses: true}},
		{"sortedT", Config{SortedT: true}},
		{"cacheUses+sortedT", Config{CacheUses: true, SortedT: true}},
		{"exact", Config{Strategy: StrategyExact}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live, err := Analyze(f, tc.config)
			if err != nil {
				t.Fatal(err)
			}
			sweep := func(in func(*ir.Value, *ir.Block) bool, out func(*ir.Value, *ir.Block) bool) func() {
				return func() {
					for _, v := range vals {
						for _, b := range f.Blocks {
							in(v, b)
							out(v, b)
						}
					}
				}
			}

			liveSweep := sweep(live.IsLiveIn, live.IsLiveOut)
			liveSweep() // warm: scratch capacity, use-set cache entries
			if avg := testing.AllocsPerRun(10, liveSweep); avg != 0 {
				t.Errorf("Liveness steady-state sweep: %v allocs, want 0", avg)
			}

			qr := live.NewQuerier()
			qrSweep := sweep(qr.IsLiveIn, qr.IsLiveOut)
			qrSweep()
			if avg := testing.AllocsPerRun(10, qrSweep); avg != 0 {
				t.Errorf("Querier steady-state sweep: %v allocs, want 0", avg)
			}
		})
	}
}

// CacheUses answers must track ResetSets: a cached use-set describes the
// uses as of its build, ResetSets flushes every handle's cache (Liveness
// and Queriers alike) through the epoch, and the refreshed answers must
// again match both a fresh analysis and the fresh-read default path.
func TestCacheUsesResetSets(t *testing.T) {
	f, vals := allocWorkload(t)
	cached, err := Analyze(f, Config{CacheUses: true})
	if err != nil {
		t.Fatal(err)
	}
	qr := cached.NewQuerier()

	agree := func(stage string) {
		t.Helper()
		fresh, err := Analyze(f, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			for _, b := range f.Blocks {
				if got, want := cached.IsLiveOut(v, b), fresh.IsLiveOut(v, b); got != want {
					t.Fatalf("%s: cached IsLiveOut(%s, %s) = %v, fresh analysis says %v", stage, v, b, got, want)
				}
				if got, want := qr.IsLiveIn(v, b), fresh.IsLiveIn(v, b); got != want {
					t.Fatalf("%s: cached Querier.IsLiveIn(%s, %s) = %v, fresh analysis says %v", stage, v, b, got, want)
				}
			}
		}
	}
	agree("baseline")

	// Extend a live range: give the first value a brand-new use in every
	// block it dominates... its own block suffices and is always legal.
	v := vals[0]
	added := v.Block.NewValue(ir.OpNeg, v)
	if err := ssa.VerifyStrict(f); err != nil {
		t.Fatal(err)
	}
	cached.ResetSets()
	agree("after adding a use")

	// Shrink it again.
	v.Block.RemoveValue(added)
	cached.ResetSets()
	agree("after removing the use")

	// New values appearing after analysis must be queryable without any
	// reset — they build fresh cache entries past the end of the slice the
	// cache was sized for.
	w := v.Block.NewValue(ir.OpCopy, v)
	vals = append(vals, w)
	agree("after adding a new value")
}

// The register allocator's steady-state query loop rides the same
// zero-allocation contract: one Querier serves every scan, and a rescan of
// an unchanged program — the spill loop's hot path — reuses every buffer.
// Warm-up (first scan: position tables, dominator-path stack, Querier
// scratch) may allocate; rescans may not.
func TestRegallocScanZeroAlloc(t *testing.T) {
	c := gen.HighPressure(24681357)
	c.TargetBlocks = 40
	f := gen.Generate("zeroallocRA", c)
	ssa.Construct(f)
	live, err := Analyze(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	qr := live.NewQuerier() // one handle reused across every scan
	k := regalloc.MeasurePressure(f, qr).Max
	a := regalloc.New(f, qr, k)
	if !a.Scan() {
		t.Fatalf("scan failed at k = max pressure %d", k)
	}
	a.Scan() // settle scratch capacities
	if avg := testing.AllocsPerRun(10, func() {
		if !a.Scan() {
			t.Fatal("rescan failed")
		}
	}); avg != 0 {
		t.Errorf("steady-state rescan: %v allocs, want 0", avg)
	}
}

// The telemetry PR's contract: instrumentation does not buy observability
// with hot-path allocations. An engine-served Oracle on a fully
// instrumented engine (tracer attached, metrics live) still answers
// steady-state queries at 0 allocs/op — the per-query cost is one atomic
// counter add, with no time.Now pair and no tracer callback on the query
// path.
func TestInstrumentedOracleZeroAlloc(t *testing.T) {
	f, vals := allocWorkload(t)
	e := NewEngine(EngineConfig{Tracer: NopTracer{}})
	defer e.Close()
	e.Add(f)
	o, err := e.Oracle(f)
	if err != nil {
		t.Fatal(err)
	}
	sweep := func() {
		for _, v := range vals {
			for _, b := range f.Blocks {
				o.IsLiveIn(v, b)
				o.IsLiveOut(v, b)
			}
		}
	}
	sweep() // warm: analysis build, Querier scratch
	if avg := testing.AllocsPerRun(10, sweep); avg != 0 {
		t.Errorf("instrumented Oracle steady-state sweep: %v allocs, want 0", avg)
	}
	if m := e.Metrics(); m.Queries == 0 {
		t.Error("instrumented sweep left Queries at 0; the counter should have recorded the traffic")
	}
}
