package fastliveness

// Tests for the consolidated observability surface: Metrics() agreeing
// with the legacy accessors it superseded, the quarantine gauge, the
// Tracer event stream, breaker-transition forwarding, and /metrics
// scrapes racing live queriers and editors.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"fastliveness/internal/backend"
	"fastliveness/internal/faults"
	"fastliveness/internal/snapshot"
	"fastliveness/internal/telemetry"
)

// recordingTracer captures every callback under a mutex: per-event counts
// plus the function names seen, for order-insensitive assertions.
type recordingTracer struct {
	mu     sync.Mutex
	counts map[string]int
	names  map[string][]string
}

func newRecordingTracer() *recordingTracer {
	return &recordingTracer{counts: make(map[string]int), names: make(map[string][]string)}
}

func (r *recordingTracer) hit(event, fn string) {
	r.mu.Lock()
	r.counts[event]++
	if fn != "" {
		r.names[event] = append(r.names[event], fn)
	}
	r.mu.Unlock()
}

func (r *recordingTracer) count(event string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[event]
}

func (r *recordingTracer) saw(event, fn string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.names[event] {
		if n == fn {
			return true
		}
	}
	return false
}

func (r *recordingTracer) BuildStart(fn string)                         { r.hit("BuildStart", fn) }
func (r *recordingTracer) BuildEnd(fn string, d time.Duration, e error) { r.hit("BuildEnd", fn) }
func (r *recordingTracer) QueryBatch(fn string, n int, d time.Duration) { r.hit("QueryBatch", fn) }
func (r *recordingTracer) SnapshotLoad(fn string, hit bool, d time.Duration) {
	if hit {
		r.hit("SnapshotLoadHit", fn)
	} else {
		r.hit("SnapshotLoadMiss", fn)
	}
}
func (r *recordingTracer) SnapshotSave(ok bool, d time.Duration) { r.hit("SnapshotSave", "") }
func (r *recordingTracer) QuarantineEnter(fn string)             { r.hit("QuarantineEnter", fn) }
func (r *recordingTracer) QuarantineClear(fn string)             { r.hit("QuarantineClear", fn) }
func (r *recordingTracer) BreakerTransition(from, to string)     { r.hit("Breaker:"+from+">"+to, "") }
func (r *recordingTracer) RebuildEnqueue(fn string)              { r.hit("RebuildEnqueue", fn) }
func (r *recordingTracer) RebuildDiscard(fn string)              { r.hit("RebuildDiscard", fn) }

// TestEngineMetricsConsolidation: Metrics() must agree with every legacy
// accessor it consolidates, and the instruments this layer added must
// account exactly for the work driven through the engine.
func TestEngineMetricsConsolidation(t *testing.T) {
	ss, err := OpenSnapshotStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	funcs := engineCorpus(t, 6, 310)
	e, err := AnalyzeProgram(funcs, EngineConfig{SnapshotStore: ss, RebuildWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	// Traffic: one small batch per function plus two oracle queries each.
	for _, f := range funcs {
		qs := allQueries(f)[:8]
		if _, err := e.BatchIsLiveIn(f, qs); err != nil {
			t.Fatal(err)
		}
		o, err := e.Oracle(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs[:2] {
			o.IsLiveIn(q.V, q.B)
		}
	}
	// One query-path rebuild (CFG edit, no MarkDirty) and one background
	// rebuild (CFG edit plus MarkDirty).
	splitSomeEdge(t, funcs[0])
	if _, err := e.Liveness(funcs[0]); err != nil {
		t.Fatal(err)
	}
	splitSomeEdge(t, funcs[1])
	e.MarkDirty(funcs[1])
	waitFor(t, "background rebuild", func() bool { return e.BackgroundRebuilds() == 1 })
	// Quiesce: drain the pool's pending snapshot saves so the counters
	// below are settled, not racing a write-back worker.
	e.Close()

	m := e.Metrics()
	if m.Funcs != len(funcs) || m.Resident != e.Resident() || m.Shards != e.Shards() {
		t.Fatalf("Funcs/Resident/Shards = %d/%d/%d, want %d/%d/%d",
			m.Funcs, m.Resident, m.Shards, len(funcs), e.Resident(), e.Shards())
	}
	if m.Rebuilds != e.Rebuilds() || m.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d (accessor %d), want 1", m.Rebuilds, e.Rebuilds())
	}
	if m.BackgroundRebuilds != e.BackgroundRebuilds() || m.BackgroundRebuilds != 1 {
		t.Fatalf("BackgroundRebuilds = %d (accessor %d), want 1", m.BackgroundRebuilds, e.BackgroundRebuilds())
	}
	if m.QueuedRebuilds != e.QueuedRebuilds() || m.QueuedRebuilds != 0 {
		t.Fatalf("QueuedRebuilds = %d (accessor %d), want 0", m.QueuedRebuilds, e.QueuedRebuilds())
	}
	if m.RebuildEnqueues != 1 || m.RebuildDiscards != 0 {
		t.Fatalf("RebuildEnqueues/Discards = %d/%d, want 1/0", m.RebuildEnqueues, m.RebuildDiscards)
	}
	if m.Snapshot != e.SnapshotStats() {
		t.Fatalf("Snapshot %+v != SnapshotStats() %+v", m.Snapshot, e.SnapshotStats())
	}
	if m.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0", m.Quarantined)
	}
	// 6 first builds + 1 query-path rebuild + 1 background rebuild.
	if m.Builds != 8 {
		t.Fatalf("Builds = %d, want 8", m.Builds)
	}
	if m.BuildNs.Count != uint64(m.Builds) {
		t.Fatalf("BuildNs.Count = %d, want Builds = %d", m.BuildNs.Count, m.Builds)
	}
	if m.Batches != 6 || m.BatchNs.Count != 6 {
		t.Fatalf("Batches/BatchNs.Count = %d/%d, want 6/6", m.Batches, m.BatchNs.Count)
	}
	// 6×8 batch entries + 6×2 oracle queries.
	if m.Queries != 60 || m.Queries != e.Queries() {
		t.Fatalf("Queries = %d (accessor %d), want 60", m.Queries, e.Queries())
	}
	// Every build consulted the (checker-backed) snapshot tier, so each
	// observed a load latency.
	if m.SnapshotLoadNs.Count != uint64(m.Builds) {
		t.Fatalf("SnapshotLoadNs.Count = %d, want Builds = %d", m.SnapshotLoadNs.Count, m.Builds)
	}
	if m.Snapshot.Hits+m.Snapshot.Misses != int64(m.Builds) {
		t.Fatalf("Hits+Misses = %d, want Builds = %d", m.Snapshot.Hits+m.Snapshot.Misses, m.Builds)
	}
	if m.BreakerState != "closed" || m.BreakerTransitions != 0 {
		t.Fatalf("BreakerState/Transitions = %q/%d, want closed/0", m.BreakerState, m.BreakerTransitions)
	}
}

// TestEngineMetricsQuarantineGauge: a panicking build raises the gauge
// (and fires QuarantineEnter); recovery via an edit plus a clean rebuild
// lowers it (and fires QuarantineClear).
func TestEngineMetricsQuarantineGauge(t *testing.T) {
	funcs := engineCorpus(t, 2, 311)
	victim := funcs[1]
	in := faults.New(31)
	in.Add(faults.Rule{Site: backend.FaultSiteAnalyze + ":" + victim.Name, Action: faults.ActionPanic})
	armFaulty(t, faulty, in)

	tr := newRecordingTracer()
	e := NewEngine(EngineConfig{Config: Config{Backend: "faulty"}, MaxBuildRetries: -1, Tracer: tr})
	e.Add(funcs...)
	if err := e.Precompute(); err == nil {
		t.Fatal("Precompute succeeded despite the injected panic")
	}
	if got := e.Metrics().Quarantined; got != 1 {
		t.Fatalf("Quarantined = %d after panic, want 1", got)
	}
	if tr.count("QuarantineEnter") != 1 || !tr.saw("QuarantineEnter", victim.Name) {
		t.Fatalf("QuarantineEnter events = %d (victim seen: %v), want exactly 1 for the victim",
			tr.count("QuarantineEnter"), tr.saw("QuarantineEnter", victim.Name))
	}

	faulty.SetInjector(nil)
	addSomeUse(t, victim) // the edit invalidates the recorded failure
	if _, err := e.Liveness(victim); err != nil {
		t.Fatalf("post-edit rebuild: %v", err)
	}
	if got := e.Metrics().Quarantined; got != 0 {
		t.Fatalf("Quarantined = %d after recovery, want 0", got)
	}
	if tr.count("QuarantineClear") != 1 {
		t.Fatalf("QuarantineClear events = %d, want 1", tr.count("QuarantineClear"))
	}
}

// TestEngineMetricsTracerEvents drives the remaining tracer callbacks
// through real engine paths: builds, batches, rebuild enqueues, and the
// close-time pending discard (worker parked mid-build via the gate
// backend, second dirty function queued behind it, then Close).
func TestEngineMetricsTracerEvents(t *testing.T) {
	tr := newRecordingTracer()
	funcs := engineCorpus(t, 2, 312)
	f1, f2 := funcs[0], funcs[1]
	e := NewEngine(EngineConfig{Config: Config{Backend: "gate"}, RebuildWorkers: 1, Tracer: tr})
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	if tr.count("BuildStart") != 2 || tr.count("BuildEnd") != 2 {
		t.Fatalf("BuildStart/End = %d/%d after 2 builds", tr.count("BuildStart"), tr.count("BuildEnd"))
	}
	qs := allQueries(f1)[:4]
	if _, err := e.BatchIsLiveIn(f1, qs); err != nil {
		t.Fatal(err)
	}
	if tr.count("QueryBatch") != 1 || !tr.saw("QueryBatch", f1.Name) {
		t.Fatalf("QueryBatch events = %d, want 1 for %s", tr.count("QueryBatch"), f1.Name)
	}

	// Park the worker inside f1's rebuild, queue f2 behind it, then Close:
	// f2's pending entry must be discarded (and traced as such). The gate
	// backend is set-producing, so the instruction edit stales it.
	started, release := gate.Arm()
	addSomeUse(t, f1)
	e.MarkDirty(f1)
	<-started
	addSomeUse(t, f2)
	e.MarkDirty(f2)
	if tr.count("RebuildEnqueue") != 2 {
		t.Fatalf("RebuildEnqueue events = %d, want 2", tr.count("RebuildEnqueue"))
	}
	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	waitFor(t, "pool to begin closing", func() bool {
		e.pool.mu.Lock()
		defer e.pool.mu.Unlock()
		return e.pool.closed
	})
	release()
	<-closed
	if !tr.saw("RebuildDiscard", f2.Name) {
		t.Fatalf("no RebuildDiscard for %s; discard events: %d", f2.Name, tr.count("RebuildDiscard"))
	}
	if got := e.Metrics().RebuildDiscards; got < 1 {
		t.Fatalf("RebuildDiscards = %d, want >= 1", got)
	}
}

// TestEngineMetricsTracerSnapshotEvents: with a checker engine over a
// snapshot store, a cold build traces a load miss and a save, and a
// second engine over the same store traces a load hit.
func TestEngineMetricsTracerSnapshotEvents(t *testing.T) {
	dir := t.TempDir()
	funcs := engineCorpus(t, 1, 316)
	run := func() *recordingTracer {
		ss, err := OpenSnapshotStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr := newRecordingTracer()
		e := NewEngine(EngineConfig{SnapshotStore: ss, Tracer: tr})
		e.Add(funcs...)
		if err := e.Precompute(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
		return tr
	}
	tr := run()
	if tr.count("SnapshotLoadMiss") != 1 || tr.count("SnapshotSave") != 1 {
		t.Fatalf("cold engine: %d misses / %d saves, want 1/1",
			tr.count("SnapshotLoadMiss"), tr.count("SnapshotSave"))
	}
	tr = run() // same store, same corpus: warm start
	if tr.count("SnapshotLoadHit") != 1 || tr.count("SnapshotSave") != 0 {
		t.Fatalf("warm engine: %d hits / %d saves, want 1/0",
			tr.count("SnapshotLoadHit"), tr.count("SnapshotSave"))
	}
}

// TestEngineMetricsBreakerTransitions: breaker state changes reach the
// engine's tracer while it is attached and stop after Shutdown detaches
// it; the store-global transition counter keeps counting either way.
func TestEngineMetricsBreakerTransitions(t *testing.T) {
	ss, err := OpenSnapshotStoreOptions(t.TempDir(), SnapshotStoreOptions{
		BreakerFailures: 1,
		BreakerCooldown: time.Millisecond,
		SaveRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(32)
	in.Add(faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionError})
	ss.store.SetFaultInjector(in)

	tr := newRecordingTracer()
	funcs := engineCorpus(t, 1, 313)
	e := NewEngine(EngineConfig{SnapshotStore: ss, Tracer: tr})
	e.Add(funcs...)
	if err := e.Precompute(); err != nil {
		t.Fatalf("a failing disk must degrade, not error: %v", err)
	}
	if got := tr.count("Breaker:closed>open"); got != 1 {
		t.Fatalf("closed>open transitions traced = %d, want 1", got)
	}
	m := e.Metrics()
	if m.BreakerTransitions != 1 || m.BreakerState != "open" {
		t.Fatalf("BreakerTransitions/State = %d/%q, want 1/open", m.BreakerTransitions, m.BreakerState)
	}

	// Shutdown unregisters the observer: the next transition (cooldown
	// elapsed, Allow admits a half-open probe) bumps the store-global
	// counter but no longer reaches the detached tracer.
	e.Shutdown()
	time.Sleep(5 * time.Millisecond)
	if !ss.breaker.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if got := ss.BreakerTransitions(); got != 2 {
		t.Fatalf("store BreakerTransitions = %d, want 2", got)
	}
	if got := tr.count("Breaker:open>half-open"); got != 0 {
		t.Fatalf("detached tracer still received %d transition(s)", got)
	}
}

// TestEngineMetricsScrapeRace scrapes WriteMetrics and Metrics()
// concurrently with queriers and editors under the race detector, and
// lints every scrape's exposition output. Named TestEngine* so the CI
// race-stress step picks it up.
func TestEngineMetricsScrapeRace(t *testing.T) {
	ss, err := OpenSnapshotStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	funcs := engineCorpus(t, 8, 314)
	e, err := AnalyzeProgram(funcs, EngineConfig{SnapshotStore: ss, RebuildWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()

	const iters = 60
	var wg sync.WaitGroup
	// Queriers: batch traffic on every function.
	for i := range funcs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := funcs[i]
			qs := allQueries(f)[:16]
			for n := 0; n < iters; n++ {
				if _, err := e.BatchIsLiveIn(f, qs); err != nil {
					t.Errorf("%s: %v", f.Name, err)
					return
				}
			}
		}(i)
	}
	// Editors: sanctioned concurrent mutation through Edit.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := funcs[i]
			for n := 0; n < iters; n++ {
				e.Edit(f, func() { addSomeUse(t, f) })
			}
		}(i)
	}
	// Scrapers: the /metrics payload must lint on every concurrent scrape,
	// and the struct snapshot must stay readable mid-traffic.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				var buf bytes.Buffer
				e.WriteMetrics(&buf)
				if err := telemetry.CheckExposition(buf.String()); err != nil {
					t.Errorf("scrape %d: %v", n, err)
					return
				}
				_ = e.Metrics()
			}
		}()
	}
	wg.Wait()
	// Quiesce the pool, then hold the settled exposition to the lint and
	// the cross-field invariants a racing scrape cannot assert.
	e.Close()

	m := e.Metrics()
	if m.Queries == 0 || m.Batches == 0 || m.Builds == 0 {
		t.Fatalf("no traffic recorded: %+v", m)
	}
	if m.BuildNs.Count != uint64(m.Builds) {
		t.Fatalf("BuildNs.Count = %d, want Builds = %d", m.BuildNs.Count, m.Builds)
	}
	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	if err := telemetry.CheckExposition(buf.String()); err != nil {
		t.Fatalf("final scrape: %v", err)
	}
}

// TestEngineMetricsShutdownSafe: Metrics and WriteMetrics still answer on
// a Shutdown engine — monitoring outlives serving.
func TestEngineMetricsShutdownSafe(t *testing.T) {
	funcs := engineCorpus(t, 2, 315)
	e, err := AnalyzeProgram(funcs, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	m := e.Metrics()
	if m.Funcs != 2 || m.Builds != 2 {
		t.Fatalf("post-Shutdown Metrics: Funcs/Builds = %d/%d, want 2/2", m.Funcs, m.Builds)
	}
	var buf bytes.Buffer
	e.WriteMetrics(&buf)
	if err := telemetry.CheckExposition(buf.String()); err != nil {
		t.Fatal(err)
	}
}
