package fastliveness_test

import (
	"math/rand"
	"testing"

	"fastliveness"
	"fastliveness/internal/dataflow"
	"fastliveness/internal/destruct"
	"fastliveness/internal/gen"
	"fastliveness/internal/interp"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

type checkerOracle struct {
	live    *fastliveness.Liveness
	queries int
}

func (o *checkerOracle) IsLiveOut(v *ir.Value, b *ir.Block) bool {
	o.queries++
	return o.live.IsLiveOut(v, b)
}

// TestPaperPipelineEndToEnd runs the paper's full §6 pipeline with the
// checker in the oracle seat: generate → SSA → split critical edges →
// analyze once → destruct (querying the checker while the pass inserts
// copies) → verify the result is φ-free and semantically identical.
//
// This exercises the headline property under real load: the destruction
// pass adds copy instructions between queries, and the analysis stays
// valid because the CFG never changes after Prepare.
func TestPaperPipelineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	totalQueries := 0
	for trial := 0; trial < 60; trial++ {
		c := gen.Default(int64(trial)*501 + 13)
		c.TargetBlocks = 6 + rng.Intn(60)
		c.Irreducible = trial%8 == 3
		f := gen.Generate("p", c)
		ssa.Construct(f)
		ref := ir.Clone(f)

		destruct.Prepare(f)
		live, err := fastliveness.Analyze(f, fastliveness.Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		oracle := &checkerOracle{live: live}
		st := destruct.Run(f, oracle, destruct.ModeCoalesce)
		totalQueries += oracle.queries

		if err := ir.Verify(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f.Values(func(v *ir.Value) {
			if v.Op == ir.OpPhi {
				t.Fatalf("trial %d: φ survived destruction", trial)
			}
		})
		if st.Phis == 0 && oracle.queries > 0 {
			t.Fatalf("trial %d: queries without φs", trial)
		}

		for run := 0; run < 4; run++ {
			args := []int64{rng.Int63n(100) - 50, rng.Int63n(100) - 50, rng.Int63()}
			want, err1 := interp.Run(ref, args, interp.Options{})
			got, err2 := interp.Run(f, args, interp.Options{})
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: interp errors %v / %v", trial, err1, err2)
			}
			if want.Ret != got.Ret {
				t.Fatalf("trial %d args %v: %d before, %d after destruction",
					trial, args, want.Ret, got.Ret)
			}
		}
	}
	if totalQueries == 0 {
		t.Fatal("pipeline issued no queries at all")
	}
}

// The checker-driven destruction must make the same coalescing decisions as
// a dataflow-driven one — same copies, same classes — because the oracles
// agree on every answer.
func TestOracleChoiceDoesNotChangeDecisions(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		c := gen.Default(int64(trial)*77 + 3)
		c.TargetBlocks = 8 + trial
		f1 := gen.Generate("p", c)
		ssa.Construct(f1)
		f2 := ir.Clone(f1)

		destruct.Prepare(f1)
		live, err := fastliveness.Analyze(f1, fastliveness.Config{})
		if err != nil {
			t.Fatal(err)
		}
		s1 := destruct.Run(f1, &checkerOracle{live: live}, destruct.ModeCoalesce)

		destruct.Prepare(f2)
		r := dataflow.Analyze(f2)
		s2 := destruct.Run(f2, oracleFunc(r.IsLiveOut), destruct.ModeCoalesce)

		if s1.Copies != s2.Copies || s1.CoalescedArgs != s2.CoalescedArgs ||
			s1.Classes != s2.Classes || s1.Phis != s2.Phis {
			t.Fatalf("trial %d: decisions differ: checker %+v vs dataflow %+v", trial, s1, s2)
		}
		if ir.Print(f1) != ir.Print(f2) {
			t.Fatalf("trial %d: destructed programs differ", trial)
		}
	}
}
