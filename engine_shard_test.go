package fastliveness

import (
	"reflect"
	"testing"

	"fastliveness/internal/ir"
)

// splitSomeEdge performs a deterministic CFG edit on f: the first block in
// program order that has a successor gets its 0th out-edge split.
func splitSomeEdge(tb testing.TB, f *ir.Func) {
	tb.Helper()
	for _, b := range f.Blocks {
		if len(b.Succs) > 0 {
			b.SplitEdge(0)
			return
		}
	}
	tb.Fatalf("%s: no block with a successor", f.Name)
}

// addSomeUse performs a deterministic instruction edit on f: the first
// result-producing value gains a fresh use in its own block.
func addSomeUse(tb testing.TB, f *ir.Func) {
	tb.Helper()
	var v *ir.Value
	f.Values(func(x *ir.Value) {
		if v == nil && x.Op.HasResult() {
			v = x
		}
	})
	if v == nil {
		tb.Fatalf("%s: no result-producing value", f.Name)
	}
	v.Block.NewValue(ir.OpNeg, v)
}

// TestEngineShardInvariance runs an identical corpus and an identical
// serial edit+query script at shard counts 1, 4 and 16 and demands
// byte-identical observable state: every query answer, Stats, Rebuilds
// and Resident must match the unsharded engine exactly. Sharding is a
// contention optimization, never a semantic one.
func TestEngineShardInvariance(t *testing.T) {
	type outcome struct {
		fingerprint string
		stats       map[string]BackendStats
		rebuilds    int
		resident    int
		memory      int
	}
	run := func(t *testing.T, shards int) outcome {
		funcs := engineCorpus(t, 18, 321)
		e, err := AnalyzeProgram(funcs, EngineConfig{Shards: shards, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint(t, e, funcs)
		// Deterministic edit script: every 3rd function takes a CFG edit
		// (stales the checker), every 2nd an instruction edit (does not).
		for i, f := range funcs {
			if i%3 == 0 {
				splitSomeEdge(t, f)
			}
			if i%2 == 0 {
				addSomeUse(t, f)
			}
		}
		fp += fingerprint(t, e, funcs)
		return outcome{
			fingerprint: fp,
			stats:       e.Stats(),
			rebuilds:    e.Rebuilds(),
			resident:    e.Resident(),
			memory:      e.MemoryBytes(),
		}
	}

	base := run(t, 1)
	if base.rebuilds == 0 {
		t.Fatal("edit script should force rebuilds (CFG edits on a checker engine)")
	}
	if base.resident != 18 {
		t.Fatalf("Resident = %d with unlimited cache, want 18", base.resident)
	}
	for _, shards := range []int{4, 16} {
		got := run(t, shards)
		if got.fingerprint != base.fingerprint {
			t.Errorf("shards=%d: query answers differ from the unsharded engine", shards)
		}
		if !reflect.DeepEqual(got.stats, base.stats) {
			t.Errorf("shards=%d: Stats() = %v, unsharded %v", shards, got.stats, base.stats)
		}
		if got.rebuilds != base.rebuilds {
			t.Errorf("shards=%d: Rebuilds() = %d, unsharded %d", shards, got.rebuilds, base.rebuilds)
		}
		if got.resident != base.resident {
			t.Errorf("shards=%d: Resident() = %d, unsharded %d", shards, got.resident, base.resident)
		}
		if got.memory != base.memory {
			t.Errorf("shards=%d: MemoryBytes() = %d, unsharded %d", shards, got.memory, base.memory)
		}
	}
}

// The round-robin shard layout must spread registered functions evenly:
// with S shards and N registered functions every shard owns ⌈N/S⌉ or
// ⌊N/S⌋ handles, so no shard becomes a hot spot by construction.
func TestEngineShardBalance(t *testing.T) {
	funcs := engineCorpus(t, 21, 17)
	e := NewEngine(EngineConfig{Shards: 4})
	e.Add(funcs...)
	counts := make(map[*shard]int)
	for _, f := range funcs {
		h := e.lookup(f)
		if h == nil {
			t.Fatalf("%s: not indexed", f.Name)
		}
		counts[h.shard]++
	}
	if len(counts) != 4 {
		t.Fatalf("functions landed on %d shards, want 4", len(counts))
	}
	for s, n := range counts {
		if n < 5 || n > 6 {
			t.Fatalf("shard %p owns %d of 21 functions, want 5 or 6", s, n)
		}
	}
}
