package fastliveness

// Warm-start prefetch pipeline tests (Engine.Prefetch): snapshot loads
// fanned across the rebuild pool must publish only fresh results, leave
// misses for the on-demand build without double-probing the store, count
// breaker skips, and survive racing edits, invalidations and shutdowns
// under -race — with every surviving answer validated against a fresh
// recompute.

import (
	"sync"
	"testing"
	"time"

	"fastliveness/internal/faults"
	"fastliveness/internal/ir"
	"fastliveness/internal/snapshot"
)

// warmStore precomputes funcs once through a storeless-pool engine so the
// directory behind ss holds a validated snapshot per shape.
func warmStore(t *testing.T, ss *SnapshotStore, funcs []*ir.Func) {
	t.Helper()
	e, err := AnalyzeProgram(funcs, EngineConfig{Parallelism: 1, SnapshotStore: ss})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if ss.Len() == 0 {
		t.Fatal("warm-up run left no snapshots behind")
	}
}

// Prefetch over a warm store publishes every analysis ahead of demand:
// full residency, all hits, zero computes, answers identical to a
// storeless engine's.
func TestEnginePrefetchWarmStart(t *testing.T) {
	const n = 10
	ss := snapshotDir(t)
	warmStore(t, ss, engineCorpus(t, n, 9001))

	funcs := engineCorpus(t, n, 9001)
	e := NewEngine(EngineConfig{Parallelism: 2, RebuildWorkers: 2, SnapshotStore: ss})
	defer e.Close()
	e.Add(funcs...)
	if got := e.Prefetch(); got != n {
		t.Fatalf("Prefetch enqueued %d, want %d", got, n)
	}
	waitFor(t, "prefetches to publish", func() bool { return e.Resident() == n })
	m := e.Metrics()
	if m.PrefetchHits != n || m.PrefetchMisses != 0 || m.PrefetchBreakerSkips != 0 {
		t.Fatalf("prefetch outcomes: %d hits, %d misses, %d breaker skips; want %d/0/0",
			m.PrefetchHits, m.PrefetchMisses, m.PrefetchBreakerSkips, n)
	}
	if s := e.SnapshotStats(); s.Hits != n || s.Computes != 0 {
		t.Fatalf("snapshot stats after prefetch: %+v, want %d hits / 0 computes", s, n)
	}

	fresh, err := AnalyzeProgram(engineCorpus(t, n, 9001), EngineConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, e, funcs) != fingerprint(t, fresh, fresh.Funcs()) {
		t.Fatal("prefetched answers differ from a storeless engine's")
	}
	// Re-prefetching resident functions enqueues nothing.
	if got := e.Prefetch(); got != 0 {
		t.Fatalf("second Prefetch enqueued %d, want 0", got)
	}
}

// A prefetch over an empty store misses, publishes nothing, and hands the
// probe record to the on-demand build: the store is consulted exactly
// once per function across both phases.
func TestEnginePrefetchMissSkipsDuplicateProbe(t *testing.T) {
	const n = 6
	ss := snapshotDir(t)
	funcs := engineCorpus(t, n, 9002)
	e := NewEngine(EngineConfig{Parallelism: 1, RebuildWorkers: 1, SnapshotStore: ss})
	defer e.Close()
	e.Add(funcs...)
	if got := e.Prefetch(); got != n {
		t.Fatalf("Prefetch enqueued %d, want %d", got, n)
	}
	waitFor(t, "prefetch misses", func() bool { return e.Metrics().PrefetchMisses == n })
	if r := e.Resident(); r != 0 {
		t.Fatalf("%d resident after all-miss prefetch, want 0", r)
	}
	for _, f := range funcs {
		if _, err := e.Liveness(f); err != nil {
			t.Fatal(err)
		}
	}
	s := e.SnapshotStats()
	if s.Hits+s.Misses != n {
		t.Fatalf("store consulted %d times across prefetch + builds, want exactly %d (no double probe)",
			s.Hits+s.Misses, n)
	}
	if s.Computes != n {
		t.Fatalf("%d computes, want %d", s.Computes, n)
	}
	for _, f := range funcs {
		assertMatchesFresh(t, e, f)
	}
}

// Invalidate landing mid-load must discard the prefetched result by
// generation — never resurrect it into the cache — and the next request
// still answers correctly.
func TestEnginePrefetchSupersededByInvalidate(t *testing.T) {
	ss := snapshotDir(t)
	funcs := engineCorpus(t, 1, 9003)
	warmStore(t, ss, funcs)
	f := engineCorpus(t, 1, 9003)[0]

	in := faults.New(41)
	in.Add(faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionDelay, Delay: 30 * time.Millisecond})
	ss.store.SetFaultInjector(in)
	defer ss.store.SetFaultInjector(nil)

	e := NewEngine(EngineConfig{Parallelism: 1, RebuildWorkers: 1, SnapshotStore: ss})
	defer e.Close()
	e.Add(f)
	h := e.lookup(f)
	building := func() bool {
		h.shard.mu.Lock()
		defer h.shard.mu.Unlock()
		return h.building
	}
	if got := e.Prefetch(); got != 1 {
		t.Fatalf("Prefetch enqueued %d, want 1", got)
	}
	waitFor(t, "prefetch load to start", building)
	e.Invalidate(f) // bumps the generation while the load sleeps in the injector
	waitFor(t, "prefetch load to finish", func() bool { return !building() })
	if r := e.Resident(); r != 0 {
		t.Fatal("superseded prefetch was published")
	}
	if m := e.Metrics(); m.PrefetchDiscards == 0 {
		t.Fatalf("superseded prefetch not counted as a discard: %+v", m)
	}
	assertMatchesFresh(t, e, f)
}

// An open circuit breaker skips prefetch loads outright — counted in
// PrefetchBreakerSkips — and the functions recompute correctly on demand.
func TestEnginePrefetchBreakerOpenSkips(t *testing.T) {
	const n = 5
	dir := t.TempDir()
	ss, err := OpenSnapshotStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmStore(t, ss, engineCorpus(t, n, 9004))

	// Fresh handle on the same directory with a one-failure breaker and a
	// single injected load error: the first on-demand build opens it.
	ss2, err := OpenSnapshotStoreOptions(dir, SnapshotStoreOptions{
		BreakerFailures: 1,
		BreakerCooldown: time.Hour, // no half-open probes during this test
	})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(42)
	in.Add(faults.Rule{Site: snapshot.FaultSiteLoad, Action: faults.ActionError, Times: 1})
	ss2.store.SetFaultInjector(in)

	funcs := engineCorpus(t, n, 9004)
	e := NewEngine(EngineConfig{Parallelism: 1, RebuildWorkers: 1, SnapshotStore: ss2})
	defer e.Close()
	e.Add(funcs...)
	if _, err := e.Liveness(funcs[0]); err != nil {
		t.Fatalf("injected load error must degrade the build, not fail it: %v", err)
	}
	if got := ss2.BreakerState(); got != "open" {
		t.Fatalf("breaker state %q after injected failure, want open", got)
	}
	if got := e.Prefetch(); got != n-1 {
		t.Fatalf("Prefetch enqueued %d, want %d (one function already resident)", got, n-1)
	}
	waitFor(t, "prefetch breaker skips", func() bool { return e.Metrics().PrefetchBreakerSkips == n-1 })
	if r := e.Resident(); r != 1 {
		t.Fatalf("%d resident after breaker-skipped prefetch, want 1", r)
	}
	for _, f := range funcs {
		assertMatchesFresh(t, e, f)
	}
	s := e.SnapshotStats()
	if s.Hits != 0 || s.Misses != n || s.Computes != n {
		t.Fatalf("breaker-open run: %+v, want 0 hits / %d misses / %d computes", s, n, n)
	}
}

// Prefetch racing concurrent edits, queries and a Shutdown — run under
// -race in CI. Every answer handed out while the race runs comes from the
// engine's usual staleness machinery, so the property under test is
// freedom from data races and from resurrecting dead results.
func TestEnginePrefetchRacesEditAndShutdown(t *testing.T) {
	ss := snapshotDir(t)
	warmStore(t, ss, engineCorpus(t, 8, 9005))
	funcs := engineCorpus(t, 8, 9005)
	e := NewEngine(EngineConfig{Parallelism: 2, RebuildWorkers: 2, SnapshotStore: ss})
	e.Add(funcs...)

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			e.Prefetch()
			e.Invalidate(funcs[i%len(funcs)])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			f := funcs[i%len(funcs)]
			e.Edit(f, func() { addSomeUse(t, f) })
			// Racing the Shutdown goroutine: ErrEngineClosed is expected
			// once it lands, and any answer handed out before that is
			// covered by the staleness machinery.
			_, _ = e.Liveness(f)
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		e.Shutdown()
	}()
	wg.Wait()
	e.Shutdown() // idempotent
	if got := e.Prefetch(); got != 0 {
		t.Fatalf("Prefetch after Shutdown enqueued %d, want 0", got)
	}
}

// Without a rebuild pool or without a snapshot tier, Prefetch is a
// documented no-op.
func TestEnginePrefetchNoop(t *testing.T) {
	funcs := engineCorpus(t, 2, 9006)
	noPool := NewEngine(EngineConfig{SnapshotStore: snapshotDir(t)})
	noPool.Add(funcs...)
	if got := noPool.Prefetch(); got != 0 {
		t.Fatalf("poolless Prefetch enqueued %d, want 0", got)
	}
	noStore := NewEngine(EngineConfig{RebuildWorkers: 1})
	defer noStore.Close()
	noStore.Add(funcs...)
	if got := noStore.Prefetch(); got != 0 {
		t.Fatalf("storeless Prefetch enqueued %d, want 0", got)
	}
}
