// Background rebuild pool: editing passes (or an explicit MarkDirty)
// enqueue stale functions, and a small set of worker goroutines
// re-analyzes them ahead of the next query, so edit-heavy workloads pay
// re-analysis off the query hot path.
//
// Lifecycle of a dirty function:
//
//	Edit/MarkDirty ──► queued (deduplicated per handle)
//	       │
//	       ▼
//	worker dequeues ──► skipped if: evicted while queued, already
//	       │            building, or no longer stale (a query got there
//	       │            first) — the "no resurrection after eviction"
//	       ▼            guard is the h.live == nil check plus the
//	drop + Analyze      generation bump eviction performs.
//	       │
//	       ▼
//	publish if the generation is unchanged and the result is still
//	fresh; otherwise discard (a query that raced the rebuild either
//	waited on the shared build or builds on demand — never a stale
//	answer).
//
// The pool shares the engine's single-flight machinery: a worker build
// sets handle.building, so a query that arrives mid-rebuild waits on the
// shard's condition variable and is handed the worker's result.

package fastliveness

import (
	"sync"
	"sync/atomic"

	"fastliveness/internal/ir"
)

// rebuildPool runs EngineConfig.RebuildWorkers goroutines over three
// queues in strict priority order: a deduplicated queue of dirty handles
// (rebuilds keep queries fast now), a deduplicated queue of warm-start
// snapshot prefetches (Engine.Prefetch — they only make upcoming first
// touches cheaper), and snapshot write-back jobs (engine.saveSnapshot —
// they only help future processes).
type rebuildPool struct {
	e *Engine

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*handle
	prefetch []*handle
	saves    []func()
	closed   bool

	wg      sync.WaitGroup
	rebuilt atomic.Int64 // analyses the pool rebuilt and published
}

func newRebuildPool(e *Engine, workers int) *rebuildPool {
	p := &rebuildPool{e: e}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *rebuildPool) worker() {
	defer p.wg.Done()
	for {
		h, isPrefetch, save, ok := p.next()
		switch {
		case !ok:
			return
		case h != nil && isPrefetch:
			p.e.prefetchOne(h)
		case h != nil:
			p.e.rebuildOne(h)
		default:
			save()
		}
	}
}

// next blocks until work is queued or the pool is closed, handing out
// rebuilds before prefetches before saves.
func (p *rebuildPool) next() (h *handle, isPrefetch bool, save func(), ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && len(p.prefetch) == 0 && len(p.saves) == 0 && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		return nil, false, nil, false
	}
	if len(p.queue) > 0 {
		h := p.queue[0]
		p.queue = p.queue[1:]
		p.e.met.queueDepth.Add(-1)
		return h, false, nil, true
	}
	if len(p.prefetch) > 0 {
		h := p.prefetch[0]
		p.prefetch = p.prefetch[1:]
		return h, true, nil, true
	}
	save = p.saves[0]
	p.saves = p.saves[1:]
	return nil, false, save, true
}

// enqueueSave adds a snapshot write-back job. On a closed pool the job
// runs inline instead of being dropped: unlike a discarded rebuild (which
// the next query transparently redoes), a dropped save would silently lose
// the warm start the caller already paid the precompute for.
func (p *rebuildPool) enqueueSave(save func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		save()
		return
	}
	p.saves = append(p.saves, save)
	p.mu.Unlock()
	p.cond.Signal()
}

// enqueue adds h to the work queue. The caller has already set h.queued
// under the shard mutex; if the pool is closed the flag is rolled back so
// the handle is not stuck looking queued forever.
func (p *rebuildPool) enqueue(h *handle) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		h.shard.mu.Lock()
		h.queued = false
		h.shard.mu.Unlock()
		return
	}
	p.queue = append(p.queue, h)
	p.e.met.queueDepth.Add(1)
	p.e.met.rebuildEnqueues.Inc()
	p.mu.Unlock()
	p.cond.Signal()
	p.e.tracer.RebuildEnqueue(h.f.Name)
}

// enqueuePrefetch adds h to the warm-start prefetch queue. The caller has
// already set h.prefetchQueued under the shard mutex; on a closed pool
// the flag is rolled back and false returned — a dropped prefetch costs
// nothing, the function just loads (or builds) on its first query.
func (p *rebuildPool) enqueuePrefetch(h *handle) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		h.shard.mu.Lock()
		h.prefetchQueued = false
		h.shard.mu.Unlock()
		return false
	}
	p.prefetch = append(p.prefetch, h)
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

// close stops the workers and waits for them to exit. Pending rebuild
// entries are discarded — an un-rebuilt dirty function is simply rebuilt
// on demand by its next query — and pending prefetches likewise (a
// function not prefetched just loads on first touch); but pending
// snapshot saves are drained to disk, so an engine that was Closed has
// flushed every write-back it scheduled (the property the warm-start
// story rests on: process one Closes, process two hits).
func (p *rebuildPool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := p.queue
	p.queue = nil
	p.e.met.queueDepth.Add(-int64(len(pending)))
	prefetches := p.prefetch
	p.prefetch = nil
	saves := p.saves
	p.saves = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	for _, h := range pending {
		h.shard.mu.Lock()
		h.queued = false
		h.shard.mu.Unlock()
		p.e.met.rebuildDiscards.Inc()
		p.e.tracer.RebuildDiscard(h.f.Name)
	}
	for _, h := range prefetches {
		h.shard.mu.Lock()
		h.prefetchQueued = false
		h.shard.mu.Unlock()
		p.e.met.prefetchDiscards.Inc()
	}
	for _, save := range saves {
		save()
	}
}

// rebuildOne re-analyzes one dequeued handle if it still needs it. The
// decision runs under the shard mutex; the Analyze itself runs unlocked
// (with building set, sharing the single-flight path with queries) and
// under the function's read lock, so it cannot race an Edit.
func (e *Engine) rebuildOne(h *handle) {
	s := h.shard
	s.mu.Lock()
	h.queued = false
	if h.building || h.live == nil || !h.live.Stale() {
		// Already being built (a query got there first and the result
		// will be fresh), evicted or invalidated while queued (must not
		// be resurrected into the cache), or no longer stale (a query
		// already rebuilt it). All are no-ops — but the evicted case is a
		// discard (queued work thrown away), not work done elsewhere.
		discarded := !h.building && h.live == nil
		s.mu.Unlock()
		if discarded {
			e.met.rebuildDiscards.Inc()
			e.tracer.RebuildDiscard(h.f.Name)
		}
		return
	}
	e.drop(h)
	h.building = true
	gen := h.gen
	s.mu.Unlock()

	// runBuild recovers backend panics into a *BuildPanicError, so a
	// panicking analysis quarantines its function (via recordFailure
	// below) instead of killing this pool worker.
	live, err := e.runBuild(h)

	s.mu.Lock()
	h.building = false
	s.cond.Broadcast()
	switch {
	case h.gen != gen:
		// Superseded while building (Invalidate, or an eviction of a
		// racing publisher bumped the generation): discard. Queries that
		// waited on this build find live == nil and build on demand.
		e.met.rebuildDiscards.Inc()
		e.tracer.RebuildDiscard(h.f.Name)
	case err != nil:
		h.err = err
		e.recordFailure(h, err)
	case live.Stale():
		// Another edit landed mid-build; the result is already dead.
		// Leave the slot empty — the next query (or MarkDirty) rebuilds
		// against the newer program.
		e.met.rebuildDiscards.Inc()
		e.tracer.RebuildDiscard(h.f.Name)
	default:
		h.live = live
		e.clearQuarantine(h)
		h.elem = s.lru.PushFront(h)
		e.resident.Add(1)
		e.enforceCacheBound(s)
		if h.elem != nil { // not self-evicted by the bound
			e.pool.rebuilt.Add(1)
		}
	}
	s.mu.Unlock()
}

// MarkDirty tells the engine f may have been edited. With a rebuild pool
// configured, a resident analysis that the function's current epochs
// invalidate is enqueued for background re-analysis, so the next query
// finds it fresh instead of paying the rebuild inline. Without a pool —
// and for an unregistered, evicted, still-fresh, already-queued or
// already-building function — MarkDirty is a cheap safe no-op: staleness
// is detected from the epochs on the query path regardless, so MarkDirty
// is always an optimization hint, never required for correctness.
func (e *Engine) MarkDirty(f *ir.Func) {
	if e.pool == nil {
		return
	}
	h := e.lookup(f)
	if h == nil {
		return
	}
	s := h.shard
	s.mu.Lock()
	if h.live == nil || h.queued || h.building || !h.live.Stale() {
		s.mu.Unlock()
		return
	}
	h.queued = true
	s.mu.Unlock()
	e.pool.enqueue(h)
}

// Edit runs edit — a mutation of f — under f's write lock, excluding the
// background rebuild workers (and any concurrent batch or Oracle query on
// f) for its duration, then marks f dirty so the pool re-analyzes it
// ahead of the next query. This is the sanctioned way to mutate a
// registered function while other goroutines are using the engine; a
// single-goroutine owner that also issues all the queries (a pass
// pipeline) may instead edit the IR directly, as the ir package contract
// always allowed.
//
// edit must not call back into the engine for f (the lock is not
// reentrant); engine calls for other functions are fine. If f is not
// registered, edit runs with no locking and no dirty mark.
func (e *Engine) Edit(f *ir.Func, edit func()) {
	h := e.lookup(f)
	if h == nil {
		edit()
		return
	}
	h.irMu.Lock()
	edit()
	h.irMu.Unlock()
	e.MarkDirty(f)
}

// BackgroundRebuilds reports how many stale analyses the rebuild pool has
// re-analyzed and published so far — re-analysis work absorbed off the
// query path. The query-path counterpart is Rebuilds; an edit-heavy
// workload with enough workers shifts its count from the latter to the
// former. Zero when no pool is configured.
func (e *Engine) BackgroundRebuilds() int {
	if e.pool == nil {
		return 0
	}
	return int(e.pool.rebuilt.Load())
}

// QueuedRebuilds reports how many functions currently sit in the rebuild
// pool's queue — the queue-depth gauge Metrics().QueuedRebuilds reads,
// maintained atomically at enqueue/dequeue so neither caller touches the
// pool lock. Zero when no pool is configured.
func (e *Engine) QueuedRebuilds() int {
	return int(e.met.queueDepth.Load())
}

// Close stops the background rebuild workers, if any, and waits for
// in-flight rebuilds to finish. The engine stays fully usable afterwards
// — stale analyses are simply rebuilt on the query path again, and
// MarkDirty reverts to a no-op. Close is idempotent and a no-op for
// engines without workers.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.close()
	}
}

// Shutdown is the terminal form of Close: it stops the background workers
// (draining pending snapshot saves, like Close) and then marks the engine
// closed, so every subsequent analysis or query request fails fast with
// an error wrapping ErrEngineClosed. Use Close to pause background work
// on an engine that keeps serving; use Shutdown when the engine is done
// for good and late callers should get an error instead of fresh builds.
// Shutdown is idempotent. Analyses and oracles already handed out keep
// answering — they own their precomputed sets and never call back into
// the engine until a staleness re-fetch.
func (e *Engine) Shutdown() {
	if e.closed.Swap(true) {
		return
	}
	e.Close()
	if e.unobserve != nil {
		e.unobserve() // detach from the (possibly shared) snapshot store
	}
	// Wake any waiters parked on in-flight builds so they observe the
	// closed flag instead of sleeping until the build publishes.
	for _, s := range e.shards {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}
