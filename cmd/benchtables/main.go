// Command benchtables regenerates every table and figure of the paper's
// evaluation section (§6) from the calibrated synthetic corpus.
//
// Usage:
//
//	benchtables [-table 1|2|edges|fullprecomp|scaling|queries|engine|backends|regalloc|pipeline|warmstart|latency|all] [-limit N] [-json] [-regs K]
//
// -limit caps the number of procedures generated per benchmark (0 = the
// full corpus, 4823 procedures — Table 2 then takes a few minutes).
// The default limit of 120 yields stable shapes quickly. The engine table
// uses its own whole-program corpus, sized by -funcs and spread over the
// -workers counts; besides the precompute-scaling and batch-query tables
// it runs the sharded-engine contention benchmark (concurrent querier
// goroutines vs. a paced mutator, -shards and -rebuildworkers setting the
// engine shape), and with -json emits that contention report in the
// BENCH_*.json format.
//
// -table backends runs every backend registered with internal/backend over
// the same corpus and query stream — the paper's §6.2 engine comparison
// generalized to the whole registry. With -json the rows are emitted as
// machine-readable JSON (name, ns_per_op, query_ns_per_op, bytes), the
// format of the repository's BENCH_*.json performance trajectory.
//
// -table regalloc times every backend on the register-allocation workload
// (internal/regalloc, the repository's second client pass): the end-to-end
// dominance-order scan with that backend as the liveness oracle — spill
// rounds force re-analyses on set-producing backends but not on the
// checker — plus the recorded allocator query stream replayed per backend,
// with query counts reported. -regs sets the register budget; -json emits
// the rows machine-readably like -table backends.
//
// -table pipeline runs the full pass pipeline (internal/pipeline:
// construct -> split critical edges -> destruct -> regalloc, all liveness
// served by one engine per run) once per backend over identical slot-form
// clones, reporting end-to-end cost, the staleness-forced engine rebuilds
// the editing passes caused (0 for the checker — the paper's §4 property
// measured end to end), per-pass epoch deltas and query counts. -regs
// sets the base register budget; -json emits rows like the other tables.
//
// -table warmstart measures the persistent snapshot tier: a corpus of
// large loopy functions (~500-8000 blocks each) analyzed cold (empty
// snapshot store — full precompute plus write-back), warm (populated
// store, fresh handle per rep — mmap, verify the header and structural
// section checksums, adopt the persisted CFG/DFS/dom arrays and the
// dense R/T arenas zero-copy from the mapping; no structural
// re-derivation, no matrix pass) and with no store at all as the
// baseline. The savings column is the fraction of per-function precompute
// a warm process start no longer pays relative to a cold one; -json emits
// the report in the BENCH_*.json format (BENCH_7.json is the v2 format's
// point, BENCH_10.json the v3 format's).
//
// -table latency replays the recorded SSA-destruction query stream
// through a per-backend engine Oracle, timing each query individually
// into a log-bucketed histogram and interleaving a benign instruction
// edit every -editevery queries. The reported p50/p90/p99/p99.9 expose
// the invalidation asymmetry at the tail: set-producing backends pay an
// inline re-analysis on the first query after each edit (a p99 spike at
// the default edit rate), while the checker's CFG-only precomputation
// stays valid. -json emits the rows in the BENCH_*.json format
// (BENCH_9.json is its first point).
//
// -debug-addr serves GET /metrics (the bench harness's telemetry
// registry, populated by -table latency) and the net/http/pprof handlers
// on the given address for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fastliveness/internal/bench"
	"fastliveness/internal/debugserver"
)

// benchOpts holds every benchtables flag. registerFlags is the single
// registration point, shared with the tests so the flagTables map can be
// checked for drift against the real flag set.
type benchOpts struct {
	table          *string
	limit          *int
	workers        *string
	funcs          *int
	shards         *int
	rebuildWorkers *int
	jsonOut        *bool
	regs           *int
	editEvery      *int
	debugAddr      *string
}

// registerFlags declares all flags on fs and returns their destinations.
func registerFlags(fs *flag.FlagSet) *benchOpts {
	return &benchOpts{
		table:          fs.String("table", "all", "which table: 1|2|edges|fullprecomp|queries|scaling|engine|backends|regalloc|pipeline|warmstart|latency|all"),
		limit:          fs.Int("limit", 120, "procedures per benchmark (0 = full corpus)"),
		workers:        fs.String("workers", "1,2,4,8", "worker/querier counts for -table engine"),
		funcs:          fs.Int("funcs", 128, "corpus size for -table engine"),
		shards:         fs.Int("shards", 0, "engine shard count for -table engine (0 = default)"),
		rebuildWorkers: fs.Int("rebuildworkers", 2, "background rebuild workers for -table engine"),
		jsonOut:        fs.Bool("json", false, "emit -table engine|backends|regalloc|pipeline|warmstart|latency rows as JSON"),
		regs:           fs.Int("regs", 8, "register budget for -table regalloc|pipeline"),
		editEvery:      fs.Int("editevery", 64, "benign instruction edit every N queries for -table latency (0 = no edits)"),
		debugAddr:      fs.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)"),
	}
}

func main() {
	opts := registerFlags(flag.CommandLine)
	flag.Parse()
	table := *opts.table

	jsonTables := map[string]bool{"engine": true, "backends": true, "regalloc": true, "pipeline": true, "warmstart": true, "latency": true}
	if *opts.jsonOut && !jsonTables[table] {
		fmt.Fprintln(os.Stderr, "-json is only supported with -table engine, backends, regalloc, pipeline, warmstart or latency")
		os.Exit(2)
	}
	for _, w := range warnIgnoredFlags(table, flag.CommandLine) {
		fmt.Fprintln(os.Stderr, "benchtables: warning:", w)
	}

	if *opts.debugAddr != "" {
		srv, err := debugserver.Start(*opts.debugAddr, bench.LatencyRegistry.Write)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
	}

	workerCounts, err := parseWorkers(*opts.workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	needCorpus := map[string]bool{"1": true, "2": true, "edges": true,
		"fullprecomp": true, "queries": true, "backends": true,
		"regalloc": true, "latency": true, "all": true}[table]
	var corpora []*bench.Corpus
	if needCorpus {
		fmt.Fprintf(os.Stderr, "generating corpus (limit %d per benchmark)...\n", *opts.limit)
		corpora = bench.BuildAll(*opts.limit)
	}

	switch table {
	case "1":
		fmt.Println(bench.Table1(corpora))
	case "2":
		fmt.Println(bench.Table2(corpora))
	case "edges":
		fmt.Println(bench.EdgeStats(corpora))
	case "fullprecomp":
		fmt.Println(bench.FullPrecompStats(corpora))
	case "queries":
		fmt.Println(bench.DestructionStats(corpora))
	case "scaling":
		fmt.Println(bench.ScalingSeries([]int{64, 128, 256, 512, 1024, 2048, 4096}))
	case "engine":
		rep := bench.MeasureEngineContention(*opts.funcs, workerCounts, *opts.shards, *opts.rebuildWorkers, 0)
		if *opts.jsonOut {
			out, err := bench.EngineContentionJSON(rep)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Println(bench.ProgramTable(*opts.funcs, workerCounts, 3))
			fmt.Println(bench.EngineContentionSection(rep))
		}
	case "backends":
		if *opts.jsonOut {
			rows, err := bench.MeasureBackends(corpora)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, err := bench.BackendJSON(rows)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Println(bench.BackendTable(corpora))
		}
	case "regalloc":
		if *opts.jsonOut {
			rows, _, err := bench.MeasureRegalloc(corpora, *opts.regs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, err := bench.RegallocJSON(rows)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Println(bench.RegallocTable(corpora, *opts.regs))
		}
	case "pipeline":
		if *opts.jsonOut {
			rows, err := bench.MeasurePipeline(*opts.limit, *opts.regs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, err := bench.PipelineJSON(rows)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Println(bench.PipelineTable(*opts.limit, *opts.regs))
		}
	case "warmstart":
		// The warm-start corpus is deliberately small in function count —
		// its functions run to ~8000 blocks each, so 8 and 16 functions
		// already dwarf the other tables' corpora in analysis time.
		rep, err := bench.MeasureWarmStart([]int{8, 16}, 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *opts.jsonOut {
			out, err := bench.WarmStartJSON(rep)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Println(bench.WarmStartSection(rep))
		}
	case "latency":
		if *opts.jsonOut {
			rows, err := bench.MeasureLatency(corpora, *opts.editEvery)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			out, err := bench.LatencyJSON(rows)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Println(bench.LatencyTable(corpora, *opts.editEvery))
		}
	case "all":
		fmt.Println(bench.Table1(corpora))
		fmt.Println(bench.EdgeStats(corpora))
		fmt.Println(bench.Table2(corpora))
		fmt.Println(bench.DestructionStats(corpora))
		fmt.Println(bench.FullPrecompStats(corpora))
		fmt.Println(bench.ScalingSeries([]int{64, 128, 256, 512, 1024, 2048}))
		fmt.Println(bench.ProgramTable(*opts.funcs, workerCounts, 3))
		fmt.Println(bench.EngineContentionSection(
			bench.MeasureEngineContention(*opts.funcs, workerCounts, *opts.shards, *opts.rebuildWorkers, 0)))
		fmt.Println(bench.BackendTable(corpora))
		fmt.Println(bench.RegallocTable(corpora, *opts.regs))
		fmt.Println(bench.PipelineTable(*opts.limit, *opts.regs))
		fmt.Println(bench.LatencyTable(corpora, *opts.editEvery))
		if rep, err := bench.MeasureWarmStart([]int{8, 16}, 3); err == nil {
			fmt.Println(bench.WarmStartSection(rep))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", table)
		os.Exit(2)
	}
}

// flagTables maps each tunable flag to the tables that honor it; a flag
// set on the command line for a table outside its list is silently
// ignored by the measurement, which warnIgnoredFlags turns into an
// explicit warning — a -shards 32 run of a table that never constructs an
// engine should say so rather than let the user believe they measured a
// 32-shard configuration. Flags absent here must appear in
// alwaysHonoredFlags instead (they are validated elsewhere or honored by
// every table) — TestFlagTablesCoverRegisteredFlags enforces that every
// registered flag lands in exactly one of the two.
var flagTables = map[string][]string{
	"limit":          {"1", "2", "edges", "fullprecomp", "queries", "backends", "regalloc", "pipeline", "latency", "all"},
	"workers":        {"engine", "all"},
	"funcs":          {"engine", "all"},
	"shards":         {"engine", "all"},
	"rebuildworkers": {"engine", "all"},
	"regs":           {"regalloc", "pipeline", "all"},
	"editevery":      {"latency", "all"},
}

// alwaysHonoredFlags lists the flags warnIgnoredFlags must never warn
// about: -table selects the table, -json is validated against
// jsonTables up front, and -debug-addr serves whatever the run produces.
var alwaysHonoredFlags = map[string]bool{
	"table":      true,
	"json":       true,
	"debug-addr": true,
}

// warnIgnoredFlags returns a warning per explicitly set flag that the
// selected table ignores, in flag-name order (fs.Visit is lexical).
func warnIgnoredFlags(table string, fs *flag.FlagSet) []string {
	var warns []string
	fs.Visit(func(f *flag.Flag) {
		honored, known := flagTables[f.Name]
		if !known {
			return
		}
		for _, t := range honored {
			if t == table {
				return
			}
		}
		warns = append(warns, fmt.Sprintf("-%s is ignored by -table %s", f.Name, table))
	})
	return warns
}

// parseWorkers reads the -workers list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q (want positive integers, comma-separated)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
