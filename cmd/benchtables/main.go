// Command benchtables regenerates every table and figure of the paper's
// evaluation section (§6) from the calibrated synthetic corpus.
//
// Usage:
//
//	benchtables [-table 1|2|edges|fullprecomp|scaling|queries|engine|all] [-limit N]
//
// -limit caps the number of procedures generated per benchmark (0 = the
// full corpus, 4823 procedures — Table 2 then takes a few minutes).
// The default limit of 120 yields stable shapes quickly. The engine table
// uses its own whole-program corpus, sized by -funcs and spread over the
// -workers counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fastliveness/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table: 1|2|edges|fullprecomp|queries|scaling|engine|all")
	limit := flag.Int("limit", 120, "procedures per benchmark (0 = full corpus)")
	workers := flag.String("workers", "1,2,4,8", "worker counts for -table engine")
	funcs := flag.Int("funcs", 128, "corpus size for -table engine")
	flag.Parse()

	workerCounts, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	needCorpus := map[string]bool{"1": true, "2": true, "edges": true,
		"fullprecomp": true, "queries": true, "all": true}[*table]
	var corpora []*bench.Corpus
	if needCorpus {
		fmt.Fprintf(os.Stderr, "generating corpus (limit %d per benchmark)...\n", *limit)
		corpora = bench.BuildAll(*limit)
	}

	switch *table {
	case "1":
		fmt.Println(bench.Table1(corpora))
	case "2":
		fmt.Println(bench.Table2(corpora))
	case "edges":
		fmt.Println(bench.EdgeStats(corpora))
	case "fullprecomp":
		fmt.Println(bench.FullPrecompStats(corpora))
	case "queries":
		fmt.Println(bench.DestructionStats(corpora))
	case "scaling":
		fmt.Println(bench.ScalingSeries([]int{64, 128, 256, 512, 1024, 2048, 4096}))
	case "engine":
		fmt.Println(bench.ProgramTable(*funcs, workerCounts, 3))
	case "all":
		fmt.Println(bench.Table1(corpora))
		fmt.Println(bench.EdgeStats(corpora))
		fmt.Println(bench.Table2(corpora))
		fmt.Println(bench.DestructionStats(corpora))
		fmt.Println(bench.FullPrecompStats(corpora))
		fmt.Println(bench.ScalingSeries([]int{64, 128, 256, 512, 1024, 2048}))
		fmt.Println(bench.ProgramTable(*funcs, workerCounts, 3))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

// parseWorkers reads the -workers list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q (want positive integers, comma-separated)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
