// Command benchtables regenerates every table and figure of the paper's
// evaluation section (§6) from the calibrated synthetic corpus.
//
// Usage:
//
//	benchtables [-table 1|2|edges|fullprecomp|scaling|queries|all] [-limit N]
//
// -limit caps the number of procedures generated per benchmark (0 = the
// full corpus, 4823 procedures — Table 2 then takes a few minutes).
// The default limit of 120 yields stable shapes quickly.
package main

import (
	"flag"
	"fmt"
	"os"

	"fastliveness/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table: 1|2|edges|fullprecomp|queries|scaling|all")
	limit := flag.Int("limit", 120, "procedures per benchmark (0 = full corpus)")
	flag.Parse()

	needCorpus := map[string]bool{"1": true, "2": true, "edges": true,
		"fullprecomp": true, "queries": true, "all": true}[*table]
	var corpora []*bench.Corpus
	if needCorpus {
		fmt.Fprintf(os.Stderr, "generating corpus (limit %d per benchmark)...\n", *limit)
		corpora = bench.BuildAll(*limit)
	}

	switch *table {
	case "1":
		fmt.Println(bench.Table1(corpora))
	case "2":
		fmt.Println(bench.Table2(corpora))
	case "edges":
		fmt.Println(bench.EdgeStats(corpora))
	case "fullprecomp":
		fmt.Println(bench.FullPrecompStats(corpora))
	case "queries":
		fmt.Println(bench.DestructionStats(corpora))
	case "scaling":
		fmt.Println(bench.ScalingSeries([]int{64, 128, 256, 512, 1024, 2048, 4096}))
	case "all":
		fmt.Println(bench.Table1(corpora))
		fmt.Println(bench.EdgeStats(corpora))
		fmt.Println(bench.Table2(corpora))
		fmt.Println(bench.DestructionStats(corpora))
		fmt.Println(bench.FullPrecompStats(corpora))
		fmt.Println(bench.ScalingSeries([]int{64, 128, 256, 512, 1024, 2048}))
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}
