package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// benchFlags mirrors main's flag registration on a fresh FlagSet so the
// warning logic is testable without running a benchmark.
func benchFlags(t *testing.T, args ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.String("table", "all", "")
	fs.Int("limit", 120, "")
	fs.String("workers", "1,2,4,8", "")
	fs.Int("funcs", 128, "")
	fs.Int("shards", 0, "")
	fs.Int("rebuildworkers", 2, "")
	fs.Bool("json", false, "")
	fs.Int("regs", 8, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWarnIgnoredFlags(t *testing.T) {
	cases := []struct {
		table string
		args  []string
		want  []string
	}{
		// Defaults never warn, whatever the table.
		{"scaling", nil, nil},
		// A flag the table honors stays silent.
		{"backends", []string{"-limit", "10"}, nil},
		{"engine", []string{"-shards", "4", "-funcs", "64"}, nil},
		// The classic trap: -shards on a table that never builds an engine.
		{"backends", []string{"-shards", "32"},
			[]string{"-shards is ignored by -table backends"}},
		{"scaling", []string{"-limit", "10"},
			[]string{"-limit is ignored by -table scaling"}},
		{"engine", []string{"-regs", "4"},
			[]string{"-regs is ignored by -table engine"}},
		// Several ignored flags warn once each, in flag-name order.
		{"warmstart", []string{"-shards", "4", "-regs", "2", "-funcs", "9"},
			[]string{
				"-funcs is ignored by -table warmstart",
				"-regs is ignored by -table warmstart",
				"-shards is ignored by -table warmstart",
			}},
		// "all" honors everything.
		{"all", []string{"-shards", "4", "-regs", "2", "-limit", "10", "-workers", "1"}, nil},
	}
	for _, c := range cases {
		got := warnIgnoredFlags(c.table, benchFlags(t, c.args...))
		if strings.Join(got, ";") != strings.Join(c.want, ";") {
			t.Errorf("table %s args %v:\n got %v\nwant %v", c.table, c.args, got, c.want)
		}
	}
}
