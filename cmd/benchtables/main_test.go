package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// benchFlags runs main's own flag registration on a fresh FlagSet so the
// warning logic is testable without running a benchmark — and cannot
// drift from the real flag set, because it IS the real registration.
func benchFlags(t *testing.T, args ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWarnIgnoredFlags(t *testing.T) {
	cases := []struct {
		table string
		args  []string
		want  []string
	}{
		// Defaults never warn, whatever the table.
		{"scaling", nil, nil},
		// A flag the table honors stays silent.
		{"backends", []string{"-limit", "10"}, nil},
		{"engine", []string{"-shards", "4", "-funcs", "64"}, nil},
		{"latency", []string{"-editevery", "16", "-limit", "10"}, nil},
		// The classic trap: -shards on a table that never builds an engine.
		{"backends", []string{"-shards", "32"},
			[]string{"-shards is ignored by -table backends"}},
		{"scaling", []string{"-limit", "10"},
			[]string{"-limit is ignored by -table scaling"}},
		{"engine", []string{"-regs", "4"},
			[]string{"-regs is ignored by -table engine"}},
		{"pipeline", []string{"-editevery", "8"},
			[]string{"-editevery is ignored by -table pipeline"}},
		// Always-honored flags never warn.
		{"scaling", []string{"-debug-addr", "localhost:0"}, nil},
		// Several ignored flags warn once each, in flag-name order.
		{"warmstart", []string{"-shards", "4", "-regs", "2", "-funcs", "9"},
			[]string{
				"-funcs is ignored by -table warmstart",
				"-regs is ignored by -table warmstart",
				"-shards is ignored by -table warmstart",
			}},
		// "all" honors everything.
		{"all", []string{"-shards", "4", "-regs", "2", "-limit", "10", "-workers", "1"}, nil},
	}
	for _, c := range cases {
		got := warnIgnoredFlags(c.table, benchFlags(t, c.args...))
		if strings.Join(got, ";") != strings.Join(c.want, ";") {
			t.Errorf("table %s args %v:\n got %v\nwant %v", c.table, c.args, got, c.want)
		}
	}
}

// TestFlagTablesCoverRegisteredFlags fails when a flag is registered but
// classified nowhere: every flag must either appear in flagTables (so
// warnIgnoredFlags can police it) or be declared always-honored. This is
// the drift guard — adding a flag without deciding which tables honor it
// is exactly the bug the warning machinery exists to prevent.
func TestFlagTablesCoverRegisteredFlags(t *testing.T) {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	registerFlags(fs)
	fs.VisitAll(func(f *flag.Flag) {
		_, policed := flagTables[f.Name]
		if !policed && !alwaysHonoredFlags[f.Name] {
			t.Errorf("flag -%s is registered but absent from both flagTables and alwaysHonoredFlags", f.Name)
		}
	})
	// The reverse direction: flagTables must not name flags that no
	// longer exist (a stale entry silently polices nothing).
	registered := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })
	for name := range flagTables {
		if !registered[name] {
			t.Errorf("flagTables entry %q names an unregistered flag", name)
		}
	}
	for name := range alwaysHonoredFlags {
		if !registered[name] {
			t.Errorf("alwaysHonoredFlags entry %q names an unregistered flag", name)
		}
	}
}
