// Command irgen emits generated benchmark programs as textual IR, for
// inspection and for feeding cmd/livecheck.
//
// Usage:
//
//	irgen -bench 176.gcc -index 0            # a corpus procedure
//	irgen -seed 7 -blocks 40 -irreducible    # a custom program
//	irgen -list                              # list benchmark names
//
// By default the program is emitted in slot form; -ssa converts to strict
// SSA first.
package main

import (
	"flag"
	"fmt"
	"os"

	"fastliveness/internal/gen"
	"fastliveness/internal/ir"
	"fastliveness/internal/ssa"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (e.g. 176.gcc); empty = custom")
		index     = flag.Int("index", 0, "procedure index within the benchmark")
		seed      = flag.Int64("seed", 1, "custom generation seed")
		blocks    = flag.Int("blocks", 36, "custom target block count")
		irr       = flag.Bool("irreducible", false, "inject a second loop entry")
		toSSA     = flag.Bool("ssa", false, "construct SSA before printing")
		list      = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range gen.SPEC2000 {
			fmt.Printf("%-12s %5d procedures, avg %6.2f blocks, %8d queries\n",
				s.Name, s.Procs, s.AvgBlocks, s.Queries)
		}
		return
	}

	var f *ir.Func
	if *benchName != "" {
		spec := gen.SpecByName(*benchName)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "irgen: unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(2)
		}
		if *index < 0 || *index >= spec.Procs {
			fmt.Fprintf(os.Stderr, "irgen: index out of range [0,%d)\n", spec.Procs)
			os.Exit(2)
		}
		f = spec.GenerateProc(*index)
	} else {
		c := gen.Default(*seed)
		c.TargetBlocks = *blocks
		c.Irreducible = *irr
		f = gen.Generate(fmt.Sprintf("gen_seed%d", *seed), c)
	}
	if *toSSA {
		ssa.Construct(f)
	}
	fmt.Print(ir.Print(f))
}
