package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastliveness/internal/ir"
)

const loopSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.ssair")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunDumpsSets(t *testing.T) {
	p := writeTemp(t, loopSrc)
	for _, engine := range []string{"checker", "dataflow", "lao", "pervar", "loops"} {
		if err := run(p, false, engine, true, true, nil); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
	}
}

func TestRunQueries(t *testing.T) {
	p := writeTemp(t, loopSrc)
	err := run(p, false, "checker", true, false,
		queryList{"%n@body", "out:%i@head", "in:%one@exit"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeTemp(t, loopSrc)
	cases := []struct {
		queries queryList
		engine  string
		want    string
	}{
		{queryList{"%nosuch@body"}, "checker", "unknown value"},
		{queryList{"%n@nowhere"}, "checker", "unknown block"},
		{queryList{"garbage"}, "checker", "bad query"},
		{nil, "frobnicate", "unknown engine"},
	}
	for _, c := range cases {
		err := run(p, false, c.engine, true, false, c.queries)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("queries %v engine %s: err = %v, want %q", c.queries, c.engine, err, c.want)
		}
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), false, "checker", true, false, nil); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunConstructsSlotForm(t *testing.T) {
	slot := `
func @s(%p) {
b0:
  slots 1
  slotstore 0, %p
  br b1
b1:
  %x = slotload 0
  ret %x
}
`
	p := writeTemp(t, slot)
	// Without -construct, strict verification must reject slot ops.
	if err := run(p, false, "checker", true, false, nil); err == nil {
		t.Fatal("slot form should fail strict verification")
	}
	// With -construct it passes.
	if err := run(p, true, "checker", true, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEngineAgreement(t *testing.T) {
	f := ir.MustParse(loopSrc)
	in1, out1, err := buildEngine("checker", f)
	if err != nil {
		t.Fatal(err)
	}
	in2, out2, err := buildEngine("dataflow", f)
	if err != nil {
		t.Fatal(err)
	}
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		for _, b := range f.Blocks {
			if in1(v, b) != in2(v, b) || out1(v, b) != out2(v, b) {
				t.Fatalf("engines disagree at (%s, %s)", v, b)
			}
		}
	})
}
