package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastliveness"
)

const loopSrc = `
func @loop(%n) {
entry:
  %zero = const 0
  %one = const 1
  br head
head:
  %i = phi [%zero, entry], [%inext, body]
  %cmp = cmplt %i, %n
  if %cmp -> body, exit
body:
  %inext = add %i, %one
  br head
exit:
  ret %i
}
`

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.ssair")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// capture redirects the command's output for golden comparisons.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// goldenDump is livecheck's set dump for loopSrc. Every backend must
// reproduce it byte for byte: the -backend flag changes the engine, never
// the answers.
const goldenDump = `entry:
  live-in :
  live-out: %n %one
head:
  live-in : %n %one
  live-out: %n %one %i
body:
  live-in : %n %one %i
  live-out: %n %one
exit:
  live-in : %i
  live-out:
`

// trimLines strips trailing whitespace per line so golden literals need no
// invisible trailing spaces (empty sets print after "live-in : ").
func trimLines(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " \t")
	}
	return strings.Join(lines, "\n")
}

func TestRunGoldenPerBackend(t *testing.T) {
	p := writeTemp(t, loopSrc)
	for _, name := range fastliveness.Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := capture(t, func() error { return run(p, false, name, true, false, 0, nil, nil) })
			if trimLines(got) != trimLines(goldenDump) {
				t.Errorf("backend %s dump:\n%s\nwant:\n%s", name, got, goldenDump)
			}
			queries := capture(t, func() error {
				return run(p, false, name, true, false, 0, nil,
					queryList{"%n@body", "out:%i@head", "in:%one@exit"})
			})
			want := "live-in(%n, body) = true\nlive-out(%i, head) = true\nlive-in(%one, exit) = false\n"
			if queries != want {
				t.Errorf("backend %s queries:\n%s\nwant:\n%s", name, queries, want)
			}
		})
	}
}

func TestRunDumpsSets(t *testing.T) {
	p := writeTemp(t, loopSrc)
	for _, name := range fastliveness.Backends() {
		if err := run(p, false, name, true, true, 0, nil, nil); err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
	}
}

func TestRunQueries(t *testing.T) {
	p := writeTemp(t, loopSrc)
	err := run(p, false, "checker", true, false, 0, nil,
		queryList{"%n@body", "out:%i@head", "in:%one@exit"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeTemp(t, loopSrc)
	cases := []struct {
		queries queryList
		backend string
		want    string
	}{
		{queryList{"%nosuch@body"}, "checker", "unknown value"},
		{queryList{"%n@nowhere"}, "checker", "unknown block"},
		{queryList{"garbage"}, "checker", "bad query"},
		{nil, "frobnicate", "unknown backend"},
	}
	for _, c := range cases {
		err := run(p, false, c.backend, true, false, 0, nil, c.queries)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("queries %v backend %s: err = %v, want %q", c.queries, c.backend, err, c.want)
		}
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), false, "checker", true, false, 0, nil, nil); err == nil {
		t.Error("missing file should error")
	}
}

func TestRunConstructsSlotForm(t *testing.T) {
	slot := `
func @s(%p) {
b0:
  slots 1
  slotstore 0, %p
  br b1
b1:
  %x = slotload 0
  ret %x
}
`
	p := writeTemp(t, slot)
	// Without -construct, strict verification must reject slot ops.
	if err := run(p, false, "checker", true, false, 0, nil, nil); err == nil {
		t.Fatal("slot form should fail strict verification")
	}
	// With -construct it passes.
	if err := run(p, true, "checker", true, false, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
}

const clampSrc = `
func @clamp(%x, %lo, %hi) {
entry:
  %small = cmplt %x, %lo
  if %small -> retlo, checkhi
retlo:
  br join
checkhi:
  %big = cmplt %hi, %x
  if %big -> rethi, join
rethi:
  br join
join:
  %r = phi [%lo, retlo], [%x, checkhi], [%hi, rethi]
  ret %r
}
`

// irrSrc is an irreducible function (the {left,right} loop has two
// entries), which the loops backend rejects — a per-function analysis
// failure the collection tests exercise.
const irrSrc = `
func @irr(%p) {
entry:
  %one = const 1
  %c = cmplt %p, %one
  if %c -> left, right
left:
  br right
right:
  if %c -> left, exit
exit:
  ret %p
}
`

// captureErr is capture for runs that are expected to fail: it returns
// the output and the error instead of fataling.
func captureErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()
	err := fn()
	return buf.String(), err
}

// A whole-program run with broken inputs analyzes everything it can,
// reports each failure in place, and exits non-zero at the end; -fail-fast
// restores the old abort-on-first-error behavior.
func TestRunProgramCollectsFailures(t *testing.T) {
	dir := writeProgram(t, map[string]string{
		"clamp.ssair":   clampSrc,
		"garbage.ssair": "this is not ssair\n",
		"irr.ssair":     irrSrc,
		"loop.ssair":    loopSrc,
	})
	paths, _, _ := programArgs([]string{dir})

	// Collection mode: the loops backend rejects @irr and the parser
	// rejects garbage.ssair; @clamp and @loop still analyze.
	out, err := captureErr(t, func() error {
		return runProgram(paths, false, "loops", true, false, 2, 0, 0, 0, nil, nil, false)
	})
	if err == nil {
		t.Fatalf("run with broken inputs returned nil; output:\n%s", out)
	}
	if !strings.Contains(err.Error(), "2 of 4 functions failed:") ||
		!strings.Contains(err.Error(), "irr.ssair") || !strings.Contains(err.Error(), "garbage.ssair") {
		t.Errorf("error lists the wrong failures:\n%v", err)
	}
	for _, want := range []string{
		"garbage.ssair: FAILED:",
		"irr.ssair: FAILED:",
		"2 functions analyzed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "func @clamp:") || !strings.Contains(out, "func @loop:") {
		t.Errorf("clean functions were not summarized:\n%s", out)
	}

	// -fail-fast: the first failure aborts, nothing is summarized.
	out, err = captureErr(t, func() error {
		return runProgram(paths, false, "loops", true, false, 2, 0, 0, 0, nil, nil, true)
	})
	if err == nil {
		t.Fatal("fail-fast run with broken inputs returned nil")
	}
	if strings.Contains(out, "FAILED") || strings.Contains(out, "functions analyzed") {
		t.Errorf("fail-fast run still produced the collection output:\n%s", out)
	}

	// With zero failures, collection mode's output is byte-identical to
	// fail-fast mode's — the old format.
	cleanDir := writeProgram(t, map[string]string{"clamp.ssair": clampSrc, "loop.ssair": loopSrc})
	cleanPaths, _, _ := programArgs([]string{cleanDir})
	collected := capture(t, func() error {
		return runProgram(cleanPaths, false, "checker", true, false, 2, 0, 0, 0, nil, nil, false)
	})
	fastOut := capture(t, func() error {
		return runProgram(cleanPaths, false, "checker", true, false, 2, 0, 0, 0, nil, nil, true)
	})
	if collected != fastOut {
		t.Errorf("clean-run output differs between modes:\ncollect:\n%s\nfail-fast:\n%s", collected, fastOut)
	}
}

// writeProgram lays out a directory with one .ssair file per function.
func writeProgram(t *testing.T, srcs map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range srcs {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestProgramArgsExpandsDirectories(t *testing.T) {
	dir := writeProgram(t, map[string]string{
		"loop.ssair": loopSrc, "clamp.ssair": clampSrc, "note.txt": "ignored",
	})
	paths, program, err := programArgs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if !program {
		t.Fatal("directory argument should select whole-program mode")
	}
	if len(paths) != 2 {
		t.Fatalf("found %d .ssair files, want 2: %v", len(paths), paths)
	}
	if _, program, _ := programArgs([]string{filepath.Join(dir, "loop.ssair")}); program {
		t.Fatal("single file should stay in single-function mode")
	}
}

func TestRunProgramSummaryAndQueries(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})
	if err := runProgram(paths, false, "checker", true, true, 4, 0, 0, 0, nil, nil, false); err != nil {
		t.Fatal(err)
	}
	qs := queryList{"%i@body@loop", "out:%x@entry@clamp", "in:%r@join@clamp"}
	if err := runProgram(paths, false, "checker", true, false, 2, 0, 0, 0, nil, qs, false); err != nil {
		t.Fatal(err)
	}
}

// -snapshot-dir double run: the first run misses and stores, the second
// run of the same program answers identically with zero misses and zero
// new stores — the warm-start contract, end to end through the CLI. Same
// assertion the CI smoke makes on the built binary.
func TestRunProgramSnapshotDoubleRun(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})
	snap, err := fastliveness.OpenSnapshotStore(filepath.Join(t.TempDir(), "snap"), 0)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() string {
		return capture(t, func() error {
			return runProgram(paths, false, "checker", true, false, 2, 0, 0, 0, snap, nil, false)
		})
	}
	cold, warm := runOnce(), runOnce()
	if !strings.Contains(cold, "snapshot: 0 hits, 2 misses, 2 stored") {
		t.Errorf("cold run summary:\n%s", cold)
	}
	if !strings.Contains(warm, "snapshot: 2 hits, 0 misses, 0 stored") {
		t.Errorf("warm run summary:\n%s", warm)
	}
	if cut := func(s string) string { return s[:strings.Index(s, "snapshot:")] }; cut(cold) != cut(warm) {
		t.Errorf("snapshot-loaded output differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// The second line carries the store-global decoded-cache and v3
	// per-section accounting: the cold run's two loads found no files (no
	// sections to scan), the warm run's two file-backed aliasing loads
	// each scanned the three structural sections and deferred the two
	// arena sections.
	if !strings.Contains(cold, "snapshot-store: 0 cached loads, 2 file loads, 0 section scans, 0 section skips") {
		t.Errorf("cold run store summary:\n%s", cold)
	}
	if !strings.Contains(warm, "snapshot-store: 0 cached loads, 4 file loads, 6 section scans, 4 section skips") {
		t.Errorf("warm run store summary:\n%s", warm)
	}

	// Single-function mode shares the store and the summary line; its one
	// load is absorbed by the shared handle's decoded cache, skipping all
	// five section scans.
	single := capture(t, func() error {
		return run(paths[0], false, "checker", true, false, 0, snap, nil)
	})
	if !strings.Contains(single, "snapshot: 1 hits, 0 misses, 0 stored") {
		t.Errorf("single-function warm run summary:\n%s", single)
	}
	if !strings.Contains(single, "snapshot-store: 1 cached loads, 4 file loads, 6 section scans, 9 section skips") {
		t.Errorf("single-function warm run store summary:\n%s", single)
	}
}

// Whole-program mode accepts every registered backend and answers the same
// queries identically through each.
func TestRunProgramPerBackend(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})
	qs := queryList{"out:%i@head@loop", "in:%r@join@clamp"}
	var want string
	for i, name := range fastliveness.Backends() {
		got := capture(t, func() error { return runProgram(paths, false, name, true, false, 2, 0, 0, 0, nil, qs, false) })
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("backend %s answers:\n%s\nwant (backend %s):\n%s",
				name, got, fastliveness.Backends()[0], want)
		}
	}
}

func TestRunProgramErrors(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})
	cases := []struct {
		queries queryList
		backend string
		want    string
	}{
		{queryList{"%i@body@nosuch"}, "checker", "unknown function"},
		{queryList{"%i@body"}, "checker", "bad query"},
		{nil, "frobnicate", "unknown backend"},
	}
	for _, c := range cases {
		err := runProgram(paths, false, c.backend, true, false, 1, 0, 0, 0, nil, c.queries, false)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("queries %v backend %s: err = %v, want %q", c.queries, c.backend, err, c.want)
		}
	}
	if err := runProgram(nil, false, "checker", true, false, 1, 0, 0, 0, nil, nil, false); err == nil {
		t.Error("empty program should error")
	}
	// Duplicate function names across files are rejected.
	dup := writeProgram(t, map[string]string{"a.ssair": loopSrc, "b.ssair": loopSrc})
	paths, _, _ = programArgs([]string{dup})
	if err := runProgram(paths, false, "checker", true, false, 1, 0, 0, 0, nil, nil, false); err == nil ||
		!strings.Contains(err.Error(), "duplicate function name") {
		t.Errorf("duplicate names: err = %v", err)
	}
	// Single-file program mode may omit the @func component.
	single := writeProgram(t, map[string]string{"loop.ssair": loopSrc})
	paths, _, _ = programArgs([]string{single})
	if err := runProgram(paths, false, "checker", true, false, 1, 0, 0, 0, nil, queryList{"out:%i@head"}, false); err != nil {
		t.Errorf("single-function program without @func: %v", err)
	}
}

// -regalloc prints a deterministic assignment; every backend must agree on
// the assignment (identical answers drive identical scans), and the
// allocation must respect the loop function's pressure.
func TestRunRegallocGoldenPerBackend(t *testing.T) {
	var want string
	for i, name := range fastliveness.Backends() {
		p := writeTemp(t, loopSrc) // fresh file: spills would edit in place
		got := capture(t, func() error { return run(p, false, name, true, false, 4, nil, nil) })
		if i == 0 {
			want = got
			if !strings.Contains(got, "regalloc @loop: k=4:") ||
				!strings.Contains(got, "max pressure 4") ||
				!strings.Contains(got, "0 spills") {
				t.Fatalf("unexpected regalloc output:\n%s", got)
			}
			continue
		}
		if got != want {
			t.Errorf("backend %s regalloc output:\n%s\nwant (backend %s):\n%s",
				name, got, fastliveness.Backends()[0], want)
		}
	}
	// A below-pressure budget forces spilling; the run must still succeed
	// and report it.
	p := writeTemp(t, loopSrc)
	got := capture(t, func() error { return run(p, false, "checker", true, false, 3, nil, nil) })
	if !strings.Contains(got, "spills") || strings.Contains(got, " 0 spills") {
		t.Errorf("k=3 should spill on the loop function:\n%s", got)
	}
}

// -pipeline prints the per-pass epoch/rebuild/query report. Decision
// counters are backend-independent (identical answers drive identical
// passes); the rebuild column is the asymmetry the report exists to show:
// 0 for the checker across the whole instruction-editing tail, a fixed
// positive count for a set-producing backend on the same input.
func TestRunPipelineReport(t *testing.T) {
	p := writeTemp(t, loopSrc)
	got := capture(t, func() error { return runPipeline([]string{p}, "checker", true, 0, 0, 0) })
	for _, want := range []string{
		"pipeline backend=checker: 1 funcs (0 skipped), k=8, 0 stale rebuilds",
		"construct", "split-edges", "destruct", "regalloc",
		"1 phis eliminated, 1 copies, 0 spills",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("pipeline output missing %q:\n%s", want, got)
		}
	}
	// Same input through a set-producing backend: the destruct pass's copy
	// insertion and the φ elimination each stale the sets once before the
	// next query — exactly 2 rebuilds on this function.
	p2 := writeTemp(t, loopSrc)
	got2 := capture(t, func() error { return runPipeline([]string{p2}, "dataflow", true, 0, 0, 0) })
	if !strings.Contains(got2, "pipeline backend=dataflow: 1 funcs (0 skipped), k=8, 2 stale rebuilds") {
		t.Fatalf("dataflow pipeline should report exactly 2 stale rebuilds:\n%s", got2)
	}
}

// -pipeline accepts slot-form inputs: SSA construction is the first pass,
// and its instruction edits show up in the report.
func TestRunPipelineSlotForm(t *testing.T) {
	const slotSrc = `
func @s() {
b0:
  slots 1
  %c = const 7
  slotstore 0, %c
  br b1
b1:
  %l = slotload 0
  ret %l
}
`
	p := writeTemp(t, slotSrc)
	got := capture(t, func() error { return runPipeline([]string{p}, "checker", true, 0, 0, 0) })
	if !strings.Contains(got, "pipeline backend=checker: 1 funcs (0 skipped)") {
		t.Fatalf("slot-form pipeline failed:\n%s", got)
	}
	if !strings.Contains(got, "0 stale rebuilds") {
		t.Fatalf("checker pipeline should not rebuild:\n%s", got)
	}
}

// -regalloc composes with -q in whole-program mode too: queries answer
// first, then each function's assignment prints.
func TestRunProgramRegallocWithQueries(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})
	got := capture(t, func() error {
		return runProgram(paths, false, "checker", true, false, 2, 4, 0, 0, nil, queryList{"out:%i@head@loop"}, false)
	})
	for _, want := range []string{"live-out(%i, head) = true", "regalloc @clamp: k=4:", "regalloc @loop: k=4:"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// The engine-tuning flags (-shards, -rebuild-workers) are contention
// knobs only: whole-program and pipeline output must be byte-identical
// with them on.
func TestEngineTuningFlagsIdenticalOutput(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})
	qs := queryList{"out:%i@head@loop", "in:%r@join@clamp"}
	plain := capture(t, func() error { return runProgram(paths, false, "checker", true, false, 2, 0, 0, 0, nil, qs, false) })
	tuned := capture(t, func() error { return runProgram(paths, false, "checker", true, false, 2, 0, 4, 2, nil, qs, false) })
	if plain != tuned {
		t.Errorf("-shards/-rebuild-workers changed program output:\n%s\nwant:\n%s", tuned, plain)
	}
	plain = capture(t, func() error { return runPipeline(paths, "dataflow", true, 0, 0, 0) })
	tuned = capture(t, func() error { return runPipeline(paths, "dataflow", true, 0, 4, 2) })
	if plain != tuned {
		t.Errorf("-shards/-rebuild-workers changed pipeline output:\n%s\nwant:\n%s", tuned, plain)
	}
}

// A -stats run ends with one "engine: ..." line — the consolidated
// Engine.Metrics snapshot. For a fixed program and query set the counts
// are deterministic, so the line is golden-testable: whole-program mode
// precomputes both functions (2 builds, 2 full computes) and answers the
// three queries through Oracles (the counted query path).
func TestRunProgramStatsEngineLine(t *testing.T) {
	dir := writeProgram(t, map[string]string{"loop.ssair": loopSrc, "clamp.ssair": clampSrc})
	paths, _, _ := programArgs([]string{dir})

	// Summary mode: no queries issued, everything else settled.
	got := capture(t, func() error {
		return runProgram(paths, false, "checker", true, true, 2, 0, 0, 0, nil, nil, false)
	})
	want := "engine: funcs=2 resident=2 builds=2 computes=2 queries=0 batches=0 rebuilds=0 background=0 queued=0 discarded=0 quarantined=0\n"
	if !strings.Contains(got, want) {
		t.Errorf("summary-mode -stats output missing %q:\n%s", want, got)
	}

	// Query mode: each -q answer goes through an Oracle and is counted.
	qs := queryList{"%i@body@loop", "out:%x@entry@clamp", "in:%r@join@clamp"}
	got = capture(t, func() error {
		return runProgram(paths, false, "checker", true, true, 2, 0, 0, 0, nil, qs, false)
	})
	want = "engine: funcs=2 resident=2 builds=2 computes=2 queries=3 batches=0 rebuilds=0 background=0 queued=0 discarded=0 quarantined=0\n"
	if !strings.Contains(got, want) {
		t.Errorf("query-mode -stats output missing %q:\n%s", want, got)
	}

	// Without -stats the line must not appear (the CI warm-start smoke
	// diffs non-snapshot output across runs).
	got = capture(t, func() error {
		return runProgram(paths, false, "checker", true, false, 2, 0, 0, 0, nil, nil, false)
	})
	if strings.Contains(got, "engine:") {
		t.Errorf("engine metrics line printed without -stats:\n%s", got)
	}
}

// Single-function mode routes the per-block set dump through an Oracle
// too, so -stats reports one build and the dump's query traffic.
func TestRunStatsEngineLine(t *testing.T) {
	p := writeTemp(t, loopSrc)
	got := capture(t, func() error {
		return run(p, false, "checker", true, true, 0, nil, nil)
	})
	// loopSrc has 6 result values (the parameter %n included) and 4
	// blocks; the dump asks live-in and live-out for each pair:
	// 6*4*2 = 48 queries.
	want := "engine: funcs=1 resident=1 builds=1 computes=1 queries=48 batches=0 rebuilds=0 background=0 queued=0 discarded=0 quarantined=0\n"
	if !strings.Contains(got, want) {
		t.Errorf("-stats output missing %q:\n%s", want, got)
	}
}
