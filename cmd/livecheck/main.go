// Command livecheck answers liveness queries for textual IR functions.
//
// Usage:
//
//	livecheck [flags] file.ssair
//	livecheck [flags] -            # read from stdin
//	livecheck [flags] dir/         # whole-program mode: every *.ssair below dir
//	livecheck [flags] a.ssair b.ssair ...
//
// With -q, it answers individual queries; without, it dumps the live-in and
// live-out sets of every block (computed through the selected backend's
// characteristic function).
//
//	livecheck -q '%x@b3' -q 'out:%y@b2' prog.ssair
//
// Whole-program mode (a directory argument, or several files) analyzes one
// function per file through the concurrent engine and prints a per-function
// summary; queries then name their function with a third '@' component:
//
//	livecheck -parallel 8 -q '%x@b3@myfunc' build/ssair/
//
// Flags:
//
//	-construct    run SSA construction first (for slot-form inputs)
//	-backend      liveness backend: checker (default) | dataflow | lao |
//	              pervar | loops | auto — any name in the internal/backend
//	              registry. Every backend answers queries identically (the
//	              differential suite proves it), so changing the flag never
//	              changes query answers or set dumps, only the engine that
//	              computes them — -stats output (backend names, set bytes)
//	              naturally differs per backend. Works in single-function
//	              and whole-program mode alike.
//	-verify       verify strict SSA before analyzing (default true)
//	-stats        print CFG/analysis statistics; the run then ends with an
//	              "engine: ..." line summarizing the engine's metrics
//	              snapshot (builds, queries, rebuilds, quarantines — see
//	              Engine.Metrics)
//	-debug-addr   serve GET /metrics (the engine's Prometheus text
//	              exposition) and the net/http/pprof handlers on this
//	              address for the duration of the run
//	-parallel     precompute worker count in whole-program mode (0 = GOMAXPROCS)
//	-regalloc K   run the SSA register allocator (internal/regalloc) with a
//	              budget of K registers against the selected backend's
//	              liveness answers, printing register pressure, spill
//	              counts and the per-value assignment. The oracle is
//	              engine-served and auto-refreshes on the function's edit
//	              epochs: with the default checker backend the spill loop
//	              re-queries the original analysis (spill code never edits
//	              the CFG), other backends transparently re-analyze.
//	-pipeline     drive every input function through the full pass
//	              pipeline (internal/pipeline: construct, split critical
//	              edges, destruct, regalloc with the -regalloc budget or 8)
//	              against the selected backend, printing the per-pass
//	              epoch-delta/rebuild/query report. Inputs may be slot
//	              form; the pipeline constructs SSA itself.
//	-fail-fast    abort a whole-program run on the first failing function.
//	              By default a failing file (parse error, broken SSA, a
//	              backend limit like irreducible CFGs under -backend loops)
//	              is reported as FAILED in place, every other function is
//	              still analyzed, and the run exits non-zero at the end
//	              with a summary of the failures.
//	-snapshot-dir persist checker precomputations to (and load them from)
//	              this directory, keyed by CFG structure: a second run over
//	              the same program skips every per-function precompute. The
//	              run ends with a "snapshot: H hits, M misses, S stored"
//	              summary plus a "snapshot-store: ..." line of decoded-cache
//	              and per-section checksum traffic. Snapshots never change
//	              answers — a stale or
//	              corrupt entry is validated away and recomputed. Only the
//	              checker backend persists; other -backend choices ignore
//	              the directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"fastliveness"
	"fastliveness/internal/cfg"
	"fastliveness/internal/debugserver"
	"fastliveness/internal/dom"
	"fastliveness/internal/ir"
	"fastliveness/internal/pipeline"
	"fastliveness/internal/regalloc"
	"fastliveness/internal/ssa"
)

// stdout is the destination of all normal output; tests retarget it to
// capture golden runs.
var stdout io.Writer = os.Stdout

// debugEngine publishes the run's engine to the -debug-addr /metrics
// handler, which may scrape at any point of the run (including before
// the engine exists — the exposition is then empty, which the format
// allows).
var debugEngine atomic.Pointer[fastliveness.Engine]

// writeDebugMetrics renders the published engine's metrics, if any.
func writeDebugMetrics(w io.Writer) {
	if eng := debugEngine.Load(); eng != nil {
		eng.WriteMetrics(w)
	}
}

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	var (
		construct = flag.Bool("construct", false, "run SSA construction (slot-form inputs)")
		backendN  = flag.String("backend", "checker",
			"liveness backend: "+strings.Join(fastliveness.Backends(), "|"))
		verify   = flag.Bool("verify", true, "verify strict SSA before analyzing")
		stat     = flag.Bool("stats", false, "print CFG/analysis statistics")
		parallel = flag.Int("parallel", 0, "whole-program precompute workers (0 = GOMAXPROCS)")
		regs     = flag.Int("regalloc", 0, "allocate that many registers and print the assignment (0 = off)")
		pipe     = flag.Bool("pipeline", false, "run the full pass pipeline and print the per-pass report")
		shards   = flag.Int("shards", 0, "engine shard count (0 = default); a contention knob, never changes answers")
		rebuild  = flag.Int("rebuild-workers", 0, "background rebuild workers re-analyzing edited functions ahead of queries (0 = off)")
		snapDir   = flag.String("snapshot-dir", "", "persist checker precomputations under this directory and reuse them across runs")
		failFast  = flag.Bool("fail-fast", false, "abort a whole-program run on the first failing function instead of collecting failures")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		queries   queryList
	)
	flag.Var(&queries, "q", "query '[in:|out:]%value@block[@func]' (repeatable)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: livecheck [flags] file.ssair | - | dir/ | file...")
		flag.Usage()
		os.Exit(2)
	}
	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, writeDebugMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "livecheck:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof/)\n", srv.Addr())
	}
	paths, program, err := programArgs(flag.Args())
	var snap *fastliveness.SnapshotStore
	if err == nil && *snapDir != "" {
		snap, err = fastliveness.OpenSnapshotStore(*snapDir, 0)
	}
	if err == nil {
		switch {
		case *pipe:
			err = runPipeline(paths, *backendN, *verify, *regs, *shards, *rebuild)
		case program:
			err = runProgram(paths, *construct, *backendN, *verify, *stat, *parallel, *regs, *shards, *rebuild, snap, queries, *failFast)
		default:
			err = run(flag.Arg(0), *construct, *backendN, *verify, *stat, *regs, snap, queries)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "livecheck:", err)
		os.Exit(1)
	}
}

// programArgs expands directory arguments into their *.ssair files and
// reports whether the invocation is whole-program mode (any directory, or
// more than one file).
func programArgs(args []string) ([]string, bool, error) {
	var paths []string
	program := len(args) > 1
	for _, a := range args {
		info, err := os.Stat(a)
		if err == nil && info.IsDir() {
			program = true
			err := filepath.WalkDir(a, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && strings.HasSuffix(p, ".ssair") {
					paths = append(paths, p)
				}
				return nil
			})
			if err != nil {
				return nil, true, fmt.Errorf("walking %s: %w", a, err)
			}
			continue
		}
		paths = append(paths, a)
	}
	sort.Strings(paths)
	return paths, program, nil
}

// parseFile reads one .ssair file ("-" = stdin) and parses it, wrapping
// errors with the path. Shared by every mode.
func parseFile(p string) (*ir.Func, error) {
	var src []byte
	var err error
	if p == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(p)
	}
	if err != nil {
		return nil, err
	}
	f, err := ir.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	return f, nil
}

// funcFailure is one file a whole-program run could not analyze: parse or
// verification failure, or a per-function engine error (a quarantined
// function, a backend limit like irreducible CFGs under -backend loops).
type funcFailure struct {
	path string
	err  error
}

// failuresError renders the collected failures as the run's error, so the
// process exits non-zero after having processed every function it could.
func failuresError(total int, failures []funcFailure) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d of %d functions failed:", len(failures), total)
	for _, fl := range failures {
		fmt.Fprintf(&sb, "\n  %s: %v", fl.path, fl.err)
	}
	return fmt.Errorf("%s", sb.String())
}

// runProgram is whole-program mode: one function per file, analyzed
// concurrently by the engine with the selected backend, summarized (or
// queried) in sorted file order so output is deterministic regardless of
// parallelism.
//
// A failing function does not abort the run (unless failFast): its file is
// reported as FAILED, every other function is still analyzed, queried and
// summarized, and the run ends with a non-nil error listing the failures —
// so one broken input in a large directory costs one diagnostic, not the
// whole batch. With zero failures the output is byte-identical to the
// pre-collection behavior.
func runProgram(paths []string, construct bool, backendName string, verify, stat bool, parallel, regs, shards, rebuildWorkers int, snap *fastliveness.SnapshotStore, queries queryList, failFast bool) error {
	if len(paths) == 0 {
		return fmt.Errorf("no .ssair files found")
	}
	var failures []funcFailure
	fail := func(p string, err error) error {
		if failFast {
			return err
		}
		failures = append(failures, funcFailure{path: p, err: err})
		fmt.Fprintf(stdout, "%s: FAILED: %v\n", p, err)
		return nil
	}
	funcs := make([]*ir.Func, 0, len(paths))
	okPaths := make([]string, 0, len(paths))
	byName := make(map[string]*ir.Func, len(paths))
	for _, p := range paths {
		f, err := parseFile(p)
		if err != nil {
			if err := fail(p, err); err != nil {
				return err
			}
			continue
		}
		if construct {
			ssa.Construct(f)
		}
		if verify {
			if err := ssa.VerifyStrict(f); err != nil {
				if err := fail(p, fmt.Errorf("not strict SSA: %w", err)); err != nil {
					return err
				}
				continue
			}
		}
		if _, dup := byName[f.Name]; dup {
			if err := fail(p, fmt.Errorf("duplicate function name @%s", f.Name)); err != nil {
				return err
			}
			continue
		}
		byName[f.Name] = f
		funcs = append(funcs, f)
		okPaths = append(okPaths, p)
	}

	eng, err := fastliveness.AnalyzeProgram(funcs, fastliveness.EngineConfig{
		Config:         fastliveness.Config{Backend: backendName},
		Parallelism:    parallel,
		Shards:         shards,
		RebuildWorkers: rebuildWorkers,
		SnapshotStore:  snap,
	})
	if err != nil && failFast {
		return err
	}
	// Without failFast the precompute error is not terminal: the engine
	// stays usable for every function that analyzed cleanly, and the
	// per-function Liveness below re-surfaces each failure individually.
	defer eng.Close()
	debugEngine.Store(eng)

	if len(queries) > 0 {
		if stat {
			for _, f := range funcs {
				printStats(f)
			}
		}
		for _, q := range queries {
			if err := answerProgram(eng, byName, q); err != nil {
				return err
			}
		}
		if regs > 0 {
			for _, f := range funcs {
				oracle, err := eng.Oracle(f)
				if err != nil {
					return err
				}
				if err := printRegalloc(f, oracle, regs); err != nil {
					return err
				}
			}
		}
		printSnapshotStats(eng, snap)
		printEngineMetrics(eng, stat)
		if len(failures) > 0 {
			return failuresError(len(paths), failures)
		}
		return nil
	}

	analyzed := 0
	for i, f := range funcs {
		live, err := eng.Liveness(f)
		if err != nil {
			if err := fail(okPaths[i], err); err != nil {
				return err
			}
			continue
		}
		analyzed++
		fmt.Fprintf(stdout, "%s: ", okPaths[i])
		printStats(f)
		if stat {
			fmt.Fprintf(stdout, "  backend %s, precomputed sets: %dB\n",
				live.Backend(), live.MemoryBytes())
		}
		if regs > 0 {
			oracle, err := eng.Oracle(f)
			if err != nil {
				return err
			}
			if err := printRegalloc(f, oracle, regs); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(stdout, "%d functions analyzed (%d resident, %d bytes of precomputed sets)\n",
		analyzed, eng.Resident(), eng.MemoryBytes())
	printSnapshotStats(eng, snap)
	printEngineMetrics(eng, stat)
	if len(failures) > 0 {
		return failuresError(len(paths), failures)
	}
	return nil
}

// printEngineMetrics ends a -stats run with one deterministic line of the
// engine's consolidated metrics snapshot (Engine.Metrics). Close first so
// background work has settled and the counts are final; like
// printSnapshotStats, the idempotent Close keeps the deferred one
// harmless.
func printEngineMetrics(eng *fastliveness.Engine, stat bool) {
	if !stat {
		return
	}
	eng.Close()
	m := eng.Metrics()
	fmt.Fprintf(stdout, "engine: funcs=%d resident=%d builds=%d computes=%d queries=%d batches=%d rebuilds=%d background=%d queued=%d discarded=%d quarantined=%d\n",
		m.Funcs, m.Resident, m.Builds, m.Snapshot.Computes, m.Queries, m.Batches,
		m.Rebuilds, m.BackgroundRebuilds, m.QueuedRebuilds, m.RebuildDiscards, m.Quarantined)
}

// printSnapshotStats ends a -snapshot-dir run with its disk-tier traffic.
// The first line is the stable scriptable one — the double-run smoke in CI
// greps the second run for "0 misses" — so new counters go on a second
// line: the store's decoded-cache traffic and the v3 per-section checksum
// accounting (scans = sections CRC-verified off disk, skips = sections
// served without a scan — from the decoded cache, as deferred arena
// sections on the aliasing mmap path, or after an early version/header
// reject). Close first so pending asynchronous write-backs land on
// disk before the count is reported (Close is idempotent, so the caller's
// deferred Close stays harmless).
func printSnapshotStats(eng *fastliveness.Engine, snap *fastliveness.SnapshotStore) {
	if snap == nil {
		return
	}
	eng.Close()
	s := eng.SnapshotStats()
	fmt.Fprintf(stdout, "snapshot: %d hits, %d misses, %d stored\n", s.Hits, s.Misses, s.Stores)
	fmt.Fprintf(stdout, "snapshot-store: %d cached loads, %d file loads, %d section scans, %d section skips\n",
		s.DecodedCacheHits, s.DecodedCacheMisses, s.SectionScans, s.SectionSkips)
}

// answerProgram resolves a '[in:|out:]%value@block@func' query against the
// engine, through an Oracle — the counted query path, so a -stats run
// reports these under queries=. With exactly one function loaded, the
// '@func' component may be omitted.
func answerProgram(eng *fastliveness.Engine, byName map[string]*ir.Func, q string) error {
	kind, rest := splitKind(q)
	parts := strings.Split(rest, "@")
	var f *ir.Func
	switch {
	case len(parts) == 3:
		f = byName[parts[2]]
		if f == nil {
			return fmt.Errorf("unknown function %q in query %q", parts[2], q)
		}
		rest = parts[0] + "@" + parts[1]
	case len(parts) == 2 && len(byName) == 1:
		for _, only := range byName {
			f = only
		}
	default:
		return fmt.Errorf("bad query %q (want '[in:|out:]%%value@block@func' in whole-program mode)", q)
	}
	o, err := eng.Oracle(f)
	if err != nil {
		return err
	}
	return answer(f, kind, rest, o.IsLiveIn, o.IsLiveOut)
}

func run(path string, construct bool, backendName string, verify, stat bool, regs int, snap *fastliveness.SnapshotStore, queries queryList) error {
	f, err := parseFile(path)
	if err != nil {
		return err
	}
	if construct {
		ssa.Construct(f)
	}
	if verify {
		if err := ssa.VerifyStrict(f); err != nil {
			return fmt.Errorf("not strict SSA (use -construct for slot form, -verify=false to skip): %w", err)
		}
	}

	// One-function engine: the same analysis serves queries, set dumps and
	// — with -regalloc — the allocator's auto-refreshing oracle, so the
	// function is analyzed exactly once.
	eng := fastliveness.NewEngine(fastliveness.EngineConfig{
		Config:        fastliveness.Config{Backend: backendName},
		SnapshotStore: snap,
	})
	eng.Add(f)
	debugEngine.Store(eng)
	// Queries and set dumps go through an Oracle — the engine's counted
	// (and auto-refreshing) query path, so -stats and /metrics account for
	// them. Analysis failures surface here, as with Liveness.
	oracle, err := eng.Oracle(f)
	if err != nil {
		return err
	}
	liveIn, liveOut := queryFunc(oracle.IsLiveIn), queryFunc(oracle.IsLiveOut)

	if stat {
		printStats(f)
	}

	regallocPass := func() error {
		oracle, err := eng.Oracle(f)
		if err != nil {
			return err
		}
		return printRegalloc(f, oracle, regs)
	}

	if len(queries) > 0 {
		for _, q := range queries {
			kind, rest := splitKind(q)
			if err := answer(f, kind, rest, liveIn, liveOut); err != nil {
				return err
			}
		}
		if regs > 0 {
			if err := regallocPass(); err != nil {
				return err
			}
		}
		printSnapshotStats(eng, snap)
		printEngineMetrics(eng, stat)
		return nil
	}

	// Dump per-block sets.
	for _, b := range f.Blocks {
		var ins, outs []string
		f.Values(func(v *ir.Value) {
			if !v.Op.HasResult() {
				return
			}
			if liveIn(v, b) {
				ins = append(ins, v.String())
			}
			if liveOut(v, b) {
				outs = append(outs, v.String())
			}
		})
		fmt.Fprintf(stdout, "%s:\n  live-in : %s\n  live-out: %s\n",
			b, strings.Join(ins, " "), strings.Join(outs, " "))
	}
	if regs > 0 {
		if err := regallocPass(); err != nil {
			return err
		}
	}
	printSnapshotStats(eng, snap)
	printEngineMetrics(eng, stat)
	return nil
}

// runPipeline drives every input function through the default pass chain
// (internal/pipeline) with one engine on the selected backend, printing
// the per-pass accounting: which edit class each pass exercised (epoch
// deltas), how many engine rebuilds its edits forced, and how many
// liveness queries it issued. Inputs may be slot form — construction is
// the first pass. Output is deterministic (no timings), so it doubles as
// the golden-test surface.
func runPipeline(paths []string, backendName string, verify bool, regs, shards, rebuildWorkers int) error {
	if len(paths) == 0 {
		return fmt.Errorf("no .ssair files found")
	}
	var funcs []*ir.Func
	for _, p := range paths {
		f, err := parseFile(p)
		if err != nil {
			return err
		}
		funcs = append(funcs, f)
	}
	rep, err := pipeline.Run(funcs, pipeline.Config{
		Backend: backendName, Regs: regs, Verify: verify,
		Shards: shards, RebuildWorkers: rebuildWorkers,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pipeline backend=%s: %d funcs (%d skipped), k=%d, %d stale rebuilds, %d queries\n",
		rep.Backend, rep.Funcs, rep.Skipped, rep.Regs, rep.Rebuilds, rep.Queries)
	fmt.Fprintf(stdout, "  %-12s %6s %7s %9s %9s\n", "pass", "dcfg", "dinstr", "rebuilds", "queries")
	for _, ps := range rep.Passes {
		fmt.Fprintf(stdout, "  %-12s %6d %7d %9d %9d\n",
			ps.Pass, ps.CFGEdits, ps.InstrEdits, ps.Rebuilds, ps.Queries)
	}
	fmt.Fprintf(stdout, "  %d phis eliminated, %d copies, %d spills (widest budget %d)\n",
		rep.Phis, rep.Copies, rep.Spills, rep.MaxRegs)
	return nil
}

// printRegalloc runs the register allocator against an engine-served
// oracle and prints pressure, spill statistics and the per-value
// assignment. The oracle auto-refreshes on the function's edit epochs, so
// no per-backend refresh wiring exists here: the checker serves every
// spill round from one precomputation (spill code edits instructions,
// never the CFG) while set-producing backends transparently re-analyze.
func printRegalloc(f *ir.Func, oracle *fastliveness.Oracle, k int) error {
	p := regalloc.MeasurePressure(f, oracle)
	alloc, err := regalloc.Run(f, oracle, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "regalloc @%s: k=%d: %d registers used, max pressure %d (%s), %d spills, %d rounds\n",
		f.Name, k, alloc.NumRegs, p.Max, p.MaxBlock, alloc.Stats.Spills, alloc.Stats.Rounds)
	f.Values(func(v *ir.Value) {
		if !v.Op.HasResult() {
			return
		}
		fmt.Fprintf(stdout, "  %-8s -> r%d\n", v.String(), alloc.RegOf(v))
	})
	return nil
}

type queryFunc func(*ir.Value, *ir.Block) bool

// splitKind strips the optional 'in:'/'out:' query prefix, returning it
// (with the colon) and the remainder.
func splitKind(q string) (kind, rest string) {
	switch {
	case strings.HasPrefix(q, "in:"):
		return "in:", q[3:]
	case strings.HasPrefix(q, "out:"):
		return "out:", q[4:]
	}
	return "", q
}

// answer resolves and prints one query, already split by splitKind into
// its prefix ("", "in:" or "out:") and '%value@block' remainder.
func answer(f *ir.Func, prefix, rest string, liveIn, liveOut queryFunc) error {
	kind := "in"
	if prefix == "out:" {
		kind = "out"
	}
	at := strings.IndexByte(rest, '@')
	if at < 0 || !strings.HasPrefix(rest, "%") {
		return fmt.Errorf("bad query %q (want '[in:|out:]%%value@block')", prefix+rest)
	}
	v := f.ValueByName(rest[1:at])
	if v == nil {
		return fmt.Errorf("unknown value %q", rest[:at])
	}
	b := f.BlockByName(rest[at+1:])
	if b == nil {
		return fmt.Errorf("unknown block %q", rest[at+1:])
	}
	var res bool
	if kind == "in" {
		res = liveIn(v, b)
	} else {
		res = liveOut(v, b)
	}
	fmt.Fprintf(stdout, "live-%s(%s, %s) = %v\n", kind, v, b, res)
	return nil
}

func printStats(f *ir.Func) {
	g, _ := cfg.FromFunc(f)
	d := cfg.NewDFS(g)
	tree := dom.Iterative(g, d)
	vars := 0
	f.Values(func(v *ir.Value) {
		if v.Op.HasResult() {
			vars++
		}
	})
	fmt.Fprintf(stdout, "func @%s: %d blocks, %d edges (%d back), %d variables, reducible=%v\n",
		f.Name, len(f.Blocks), g.NumEdges(), len(d.BackEdges), vars, dom.IsReducible(d, tree))
}
